package radar

import (
	"time"

	"radar/internal/nn"
	"radar/internal/qinfer"
	"radar/internal/serve"
	"radar/internal/tensor"
)

// This file re-exports the stable serving surface: the context-aware,
// multi-model protected inference service built in internal/serve. The
// typical deployment round trip:
//
//	eng, _ := qinfer.Compile(net, qm, calib)
//	p := radar.Protect(qm, radar.DefaultConfig(8))
//	svc, _ := radar.OpenService(
//		radar.WithServedModel("resnet20", eng, p,
//			radar.ServeInputShape(3, 32, 32)),
//	)
//	defer svc.Close()
//	res, _ := svc.Infer(ctx, radar.ServeRequest{Model: "resnet20", Input: x})
//	id, _ := svc.Submit(ctx, radar.ServeRequest{Model: "resnet20", Input: x}) // async
//	res, _ = svc.Wait(ctx, id)
//
// svc.Handler() serves the versioned HTTP control plane
// (/v1/models/{name}/infer, /v1/models/{name}/jobs, /v1/jobs/{id},
// /v1/models, /v1/admin/scrub, /v1/admin/rekey,
// /v1/admin/models/{name}). Multiple services scale out behind the
// radar-fleet consistent-hash router (internal/fleet), which exposes the
// identical /v1 surface.

// Engine is the compiled int8 inference engine a served model runs on;
// see qinfer.Engine.
type Engine = qinfer.Engine

// CompileEngine converts a trained float network plus its quantized
// weight image into an int8 engine, calibrating activation scales on the
// given representative batch; see qinfer.Compile.
func CompileEngine(net *nn.Sequential, qm *QuantModel, calib *tensor.Tensor) (*Engine, error) {
	return qinfer.Compile(net, qm, calib)
}

// Service is the multi-model protected inference front-end; see
// serve.Service.
type Service = serve.Service

// ServeRequest addresses one inference input to a hosted model.
type ServeRequest = serve.Request

// ServeResult is one request's answer (argmax class + logits).
type ServeResult = serve.Result

// ServeConfig tunes one hosted model's runtime; see serve.Config.
type ServeConfig = serve.Config

// ServeSnapshot is a model's live metrics export; see serve.Snapshot.
type ServeSnapshot = serve.Snapshot

// ServedModelInfo is one hosted model's identity + metrics entry.
type ServedModelInfo = serve.ModelInfo

// ServeAdminReport is one model's answer to an admin scrub or rekey.
type ServeAdminReport = serve.AdminReport

// ServiceOption configures OpenService; ModelServeOption tunes one
// registered model.
type (
	ServiceOption    = serve.ServiceOption
	ModelServeOption = serve.ModelOption
)

// JobID and JobStatus identify and describe async inference jobs.
type (
	JobID     = serve.JobID
	JobStatus = serve.JobStatus
)

// ServeModelProvider builds a model runtime on demand for hot-add; see
// serve.ModelProvider.
type ServeModelProvider = serve.ModelProvider

// WithServeModelProvider installs the provider backing hot model adds
// (POST /v1/admin/models/{name} and Service.AddModel).
func WithServeModelProvider(p ServeModelProvider) ServiceOption {
	return serve.WithModelProvider(p)
}

// Serving errors, all errors.Is-able.
var (
	// ErrModelExists: hot-add named an already hosted model (409).
	ErrModelExists = serve.ErrModelExists
	// ErrLastModel: hot-remove would empty the service (409).
	ErrLastModel = serve.ErrLastModel
	// ErrStopping: submission raced a graceful shutdown (HTTP: 503).
	ErrStopping = serve.ErrStopping
	// ErrQueueFull: non-blocking async submit hit a full batch queue (429).
	ErrQueueFull = serve.ErrQueueFull
	// ErrJobsFull: the bounded async job table is at capacity (429).
	ErrJobsFull = serve.ErrJobsFull
	// ErrUnknownModel: the request named an unhosted model (404).
	ErrUnknownModel = serve.ErrUnknownModel
	// ErrUnknownJob: unknown, cancelled, or expired job ID (404).
	ErrUnknownJob = serve.ErrUnknownJob
	// ErrJobCancelled: Wait on a job whose context was cancelled.
	ErrJobCancelled = serve.ErrJobCancelled
)

// OpenService builds and starts a multi-model protected inference service
// from functional options (at least one WithServedModel).
func OpenService(opts ...ServiceOption) (*Service, error) { return serve.Open(opts...) }

// WithServedModel registers one model: an int8 engine plus the protector
// guarding its weight image, under a unique URL-safe name. The first
// model registered is the service default.
func WithServedModel(name string, eng *qinfer.Engine, prot *Protector, opts ...ModelServeOption) ServiceOption {
	return serve.WithModel(name, eng, prot, opts...)
}

// WithJobCapacity bounds the async job table.
func WithJobCapacity(n int) ServiceOption { return serve.WithJobCapacity(n) }

// WithJobTTL sets completed-job retention for polling.
func WithJobTTL(d time.Duration) ServiceOption { return serve.WithJobTTL(d) }

// ServeWithConfig replaces a model's whole serving Config.
func ServeWithConfig(cfg ServeConfig) ModelServeOption { return serve.WithConfig(cfg) }

// ServeBatch sets a model's max batch size and batching latency window.
func ServeBatch(maxBatch int, maxLatency time.Duration) ModelServeOption {
	return serve.WithBatch(maxBatch, maxLatency)
}

// ServeWorkers sets a model's inference worker count.
func ServeWorkers(n int) ModelServeOption { return serve.WithWorkers(n) }

// ServeQueueDepth bounds a model's pending-request queue.
func ServeQueueDepth(n int) ModelServeOption { return serve.WithQueueDepth(n) }

// ServeVerifiedFetch toggles per-layer verification at weight-fetch time.
func ServeVerifiedFetch(on bool) ModelServeOption { return serve.WithVerifiedFetch(on) }

// ServeScrub sets a model's background scrub interval and full-sweep cadence.
func ServeScrub(interval time.Duration, fullEvery int) ModelServeOption {
	return serve.WithScrub(interval, fullEvery)
}

// ServeInputShape pins a model's expected (C, H, W) input shape.
func ServeInputShape(c, h, w int) ModelServeOption { return serve.WithInputShape(c, h, w) }
