# Single entry point shared by CI (.github/workflows/ci.yml) and local dev.

GO ?= go

.PHONY: build test race bench bench-smoke bench-artifacts bench-compare serve-smoke lint fmt

build:
	$(GO) build ./...

test:
	$(GO) test -timeout 30m ./...

# Race-detect the concurrent subsystems: the parallel scan engine, the
# serving stack (batching + scrubber + verified fetch under live flips)
# and the inference engine's pooled conv scratch, plus the differential
# kernel property/fuzz seeds.
race:
	$(GO) test -race -timeout 20m ./internal/core/... ./internal/serve/... ./internal/qinfer/...

# Full benchmark sweep (slow; trains zoo models on first run).
bench:
	$(GO) test -bench=. -benchtime=1x -run '^$$' .

# Fast guard that the scan + serve + conv-kernel benchmarks still compile
# and run (1 iteration; checkpoints come from testdata/models, so no
# training happens).
bench-smoke:
	$(GO) test -bench='Scan|Serve' -benchtime=1x -run '^$$' .
	$(GO) test -bench='Conv' -benchtime=1x -run '^$$' ./internal/qinfer/

# Machine-readable perf artifacts: the scan worker sweep (with the
# old-vs-new checksum kernel record) and the serving-under-attack sweep.
bench-artifacts:
	$(GO) run ./cmd/radar-bench -exp scanscale
	$(GO) run ./cmd/radar-bench -exp servescale

# Benchstat-style diff of benchmarks between HEAD and a base ref
# (default: previous commit). Usage: make bench-compare [REF=<git-ref>]
# [BENCH='<pattern>'] [COUNT=<n>].
bench-compare:
	./scripts/bench_compare.sh $(REF)

# Boot radar-serve on the tiny checkpoint and exercise the HTTP API.
serve-smoke:
	$(GO) build -o radar-serve ./cmd/radar-serve
	./scripts/serve_smoke.sh ./radar-serve
	rm -f radar-serve

lint:
	$(GO) vet ./...
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

fmt:
	gofmt -w .
