# Single entry point shared by CI (.github/workflows/ci.yml) and local dev.

GO ?= go

.PHONY: build test race bench bench-smoke bench-artifacts bench-gate bench-compare serve-smoke fleet-smoke chaos-smoke lint fmt

build:
	$(GO) build ./...

test:
	$(GO) test -timeout 30m ./...

# Race-detect the concurrent subsystems: the parallel scan engine, the
# serving stack (batching + scrubber + verified fetch under live flips),
# the inference engine's pooled conv scratch, the lock-free metrics
# registry under concurrent scrapes, the fleet router, the chaos proxy,
# the mmap store (dirty-tracking observers fire from scan workers), and
# the adversary campaign engine (volleys mount under the layer guard
# while scrubs run), plus the ECC corrector and timing-substrate
# property/fuzz seeds.
race:
	$(GO) test -race -timeout 20m ./internal/core/... ./internal/serve/... ./internal/qinfer/... ./internal/obs/... ./internal/fleet/... ./internal/chaos/... ./internal/store/... ./internal/adversary/... ./internal/ecc/... ./internal/memsim/...

# Full benchmark sweep (slow; trains zoo models on first run).
bench:
	$(GO) test -bench=. -benchtime=1x -run '^$$' .

# Fast guard that the scan + serve + conv-kernel benchmarks still compile
# and run (1 iteration; checkpoints come from testdata/models, so no
# training happens).
bench-smoke:
	$(GO) test -bench='Scan|Serve' -benchtime=1x -run '^$$' .
	$(GO) test -bench='Conv' -benchtime=1x -run '^$$' ./internal/qinfer/

# Machine-readable perf artifacts: the scan worker sweep (with the
# old-vs-new checksum kernel record), the serving-under-attack sweep and
# the fleet routing/availability sweep. BENCH_OUT redirects the output
# directory (default: repo root, i.e. the committed baselines). bigscale
# and recoveryscale are deliberately absent: CI's size-capped quick runs
# are not comparable to the committed full-scale baselines, so both are
# smoke-run and uploaded by CI (with their invariants — the RSS ratio,
# the ECC bit-identical restore — enforced inside the experiment) but
# never gated.
BENCH_OUT ?= .
bench-artifacts:
	$(GO) run ./cmd/radar-bench -exp scanscale -json $(BENCH_OUT)/BENCH_scanscale.json
	$(GO) run ./cmd/radar-bench -exp servescale -json $(BENCH_OUT)/BENCH_servescale.json
	$(GO) run ./cmd/radar-bench -exp fleetscale -json $(BENCH_OUT)/BENCH_fleetscale.json

# CI perf-regression gate: regenerate fresh artifacts and compare them
# against the committed BENCH_*.json baselines; fails on a >MAX_DROP%
# drop in any tracked metric. `[bench-skip]` in the last commit message
# skips the gate. Usage: make bench-gate [MAX_DROP=10].
bench-gate:
	./scripts/bench_compare.sh --gate $(MAX_DROP)

# Benchstat-style diff of benchmarks between HEAD and a base ref
# (default: previous commit). Usage: make bench-compare [REF=<git-ref>]
# [BENCH='<pattern>'] [COUNT=<n>].
bench-compare:
	./scripts/bench_compare.sh $(REF)

# Boot radar-serve on the tiny checkpoint and exercise the HTTP API.
serve-smoke:
	$(GO) build -o radar-serve ./cmd/radar-serve
	./scripts/serve_smoke.sh ./radar-serve
	rm -f radar-serve

# Boot three radar-serve replicas behind radar-fleet and exercise routed
# traffic, a mid-traffic replica kill and a rolling rekey.
fleet-smoke:
	$(GO) build -o radar-serve ./cmd/radar-serve
	$(GO) build -o radar-fleet ./cmd/radar-fleet
	./scripts/fleet_smoke.sh ./radar-serve ./radar-fleet
	rm -f radar-serve radar-fleet

# Boot the fleet with a fault-injecting radar-chaos proxy in front of
# every replica: a reconciliation drill (eject → fleet-wide hot-add →
# repair on readmission) and a gray-failure storm at ≥99% client success.
chaos-smoke:
	$(GO) build -o radar-serve ./cmd/radar-serve
	$(GO) build -o radar-fleet ./cmd/radar-fleet
	$(GO) build -o radar-chaos ./cmd/radar-chaos
	./scripts/chaos_smoke.sh ./radar-serve ./radar-fleet ./radar-chaos
	rm -f radar-serve radar-fleet radar-chaos

lint:
	$(GO) vet ./...
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

fmt:
	gofmt -w .
