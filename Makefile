# Single entry point shared by CI (.github/workflows/ci.yml) and local dev.

GO ?= go

.PHONY: build test race bench bench-smoke lint fmt

build:
	$(GO) build ./...

test:
	$(GO) test -timeout 30m ./...

# Race-detect the parallel scan engine (the only concurrent subsystem).
race:
	$(GO) test -race -timeout 20m ./internal/core/...

# Full benchmark sweep (slow; trains zoo models on first run).
bench:
	$(GO) test -bench=. -benchtime=1x -run '^$$' .

# Fast guard that the scan benchmarks still compile and run (1 iteration;
# checkpoints come from testdata/models, so no training happens).
bench-smoke:
	$(GO) test -bench=Scan -benchtime=1x -run '^$$' .

lint:
	$(GO) vet ./...
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

fmt:
	gofmt -w .
