# Single entry point shared by CI (.github/workflows/ci.yml) and local dev.

GO ?= go

.PHONY: build test race bench bench-smoke serve-smoke lint fmt

build:
	$(GO) build ./...

test:
	$(GO) test -timeout 30m ./...

# Race-detect the concurrent subsystems: the parallel scan engine and the
# serving stack (batching + scrubber + verified fetch under live flips).
race:
	$(GO) test -race -timeout 20m ./internal/core/... ./internal/serve/...

# Full benchmark sweep (slow; trains zoo models on first run).
bench:
	$(GO) test -bench=. -benchtime=1x -run '^$$' .

# Fast guard that the scan + serve benchmarks still compile and run (1
# iteration; checkpoints come from testdata/models, so no training happens).
bench-smoke:
	$(GO) test -bench='Scan|Serve' -benchtime=1x -run '^$$' .

# Boot radar-serve on the tiny checkpoint and exercise the HTTP API.
serve-smoke:
	$(GO) build -o radar-serve ./cmd/radar-serve
	./scripts/serve_smoke.sh ./radar-serve
	rm -f radar-serve

lint:
	$(GO) vet ./...
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

fmt:
	gofmt -w .
