package nn

import (
	"math"
	"math/rand"
	"testing"

	"radar/internal/tensor"
)

// numericalGrad estimates ∂loss/∂w by central differences for the scalar
// parameter element (p, idx) of the given closure.
func numericalGrad(eval func() float64, w *float32, eps float32) float64 {
	orig := *w
	*w = orig + eps
	up := eval()
	*w = orig - eps
	dn := eval()
	*w = orig
	return (up - dn) / float64(2*eps)
}

// gradCheckLayer builds a small pipeline ending in cross-entropy and
// verifies analytic parameter and input gradients against numerical ones.
func gradCheckLayer(t *testing.T, layer Layer, inShape []int, flattenFor func(*tensor.Tensor) *tensor.Tensor, classes int) {
	t.Helper()
	rng := rand.New(rand.NewSource(42))
	x := tensor.New(inShape...)
	x.RandNormal(rng, 1)
	n := inShape[0]
	labels := make([]int, n)
	for i := range labels {
		labels[i] = rng.Intn(classes)
	}

	// Numeric evaluation runs in train mode so that batch-norm layers use
	// batch statistics, matching the analytic backward pass. Train-mode
	// forward is a pure function of inputs and weights (running-stat updates
	// do not feed back into the loss), so central differences are valid.
	eval := func() float64 {
		out := layer.Forward(x, true)
		if flattenFor != nil {
			out = flattenFor(out)
		}
		return CrossEntropyLoss(out, labels)
	}

	// Analytic gradients.
	for _, p := range layer.Params() {
		p.ZeroGrad()
	}
	out := layer.Forward(x, true)
	if flattenFor != nil {
		out = flattenFor(out)
	}
	_, g := SoftmaxCrossEntropy(out, labels)
	gin := layer.Backward(g)

	// Check a sample of parameter gradients.
	for _, p := range layer.Params() {
		idxs := sampleIdx(rng, p.Value.Len(), 6)
		for _, i := range idxs {
			num := numericalGrad(eval, &p.Value.Data[i], 1e-2)
			ana := float64(p.Grad.Data[i])
			if math.Abs(num-ana) > 1e-2+0.05*math.Abs(num) {
				t.Errorf("%s grad[%d]: analytic %v vs numeric %v", p.Name, i, ana, num)
			}
		}
	}
	// Check a sample of input gradients.
	idxs := sampleIdx(rng, x.Len(), 6)
	for _, i := range idxs {
		num := numericalGrad(eval, &x.Data[i], 1e-2)
		ana := float64(gin.Data[i])
		if math.Abs(num-ana) > 1e-2+0.05*math.Abs(num) {
			t.Errorf("input grad[%d]: analytic %v vs numeric %v", i, ana, num)
		}
	}
}

func sampleIdx(rng *rand.Rand, n, k int) []int {
	if k > n {
		k = n
	}
	idx := make([]int, k)
	for i := range idx {
		idx[i] = rng.Intn(n)
	}
	return idx
}

func TestLinearGradCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	l := NewLinear("fc", 6, 4, rng)
	gradCheckLayer(t, l, []int{3, 6}, nil, 4)
}

func TestConvGradCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	conv := NewConv2D("c", 2, 3, 3, 1, 1, rng)
	flat := NewFlatten("f")
	seq := NewSequential("convnet", conv, flat)
	gradCheckLayer(t, seq, []int{2, 2, 4, 4}, nil, 48)
}

func TestConvStridedGradCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	conv := NewConv2D("c", 2, 2, 3, 2, 1, rng)
	flat := NewFlatten("f")
	seq := NewSequential("convnet", conv, flat)
	gradCheckLayer(t, seq, []int{2, 2, 4, 4}, nil, 8)
}

func TestReLUGradCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	seq := NewSequential("net",
		NewLinear("fc", 5, 5, rng),
		NewReLU("r"),
	)
	gradCheckLayer(t, seq, []int{3, 5}, nil, 5)
}

func TestBasicBlockGradCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	blk := NewBasicBlock("b", 2, 4, 2, rng) // with downsample path
	seq := NewSequential("net", blk, NewFlatten("f"))
	gradCheckLayer(t, seq, []int{2, 2, 4, 4}, nil, 16)
}

func TestBasicBlockIdentityGradCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	blk := NewBasicBlock("b", 3, 3, 1, rng) // identity shortcut
	seq := NewSequential("net", blk, NewFlatten("f"))
	gradCheckLayer(t, seq, []int{2, 3, 4, 4}, nil, 48)
}

// TestBatchNormGradCheck exercises BN in train mode through a small
// pipeline. BN's train-mode forward is used by eval here too (statistics
// recomputed per call with momentum side effects frozen out by resetting).
func TestBatchNormGradCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	bn := NewBatchNorm2D("bn", 2)
	flat := NewFlatten("f")

	x := tensor.New(3, 2, 2, 2)
	x.RandNormal(rng, 1)
	labels := []int{1, 5, 2}

	eval := func() float64 {
		// Use train-mode statistics so numerical and analytic paths match,
		// but snapshot/restore running stats to keep eval side-effect free.
		rm := append([]float64(nil), bn.RunningMean...)
		rv := append([]float64(nil), bn.RunningVar...)
		out := flat.Forward(bn.Forward(x, true), false)
		copy(bn.RunningMean, rm)
		copy(bn.RunningVar, rv)
		return CrossEntropyLoss(out, labels)
	}

	bn.Gamma.ZeroGrad()
	bn.Beta.ZeroGrad()
	out := flat.Forward(bn.Forward(x, true), true)
	_, g := SoftmaxCrossEntropy(out, labels)
	gin := bn.Backward(flat.Backward(g))

	for _, p := range []*Param{bn.Gamma, bn.Beta} {
		for i := 0; i < p.Value.Len(); i++ {
			num := numericalGrad(eval, &p.Value.Data[i], 1e-2)
			ana := float64(p.Grad.Data[i])
			if math.Abs(num-ana) > 1e-2+0.05*math.Abs(num) {
				t.Errorf("%s grad[%d]: analytic %v vs numeric %v", p.Name, i, ana, num)
			}
		}
	}
	idx := sampleIdx(rand.New(rand.NewSource(8)), x.Len(), 8)
	for _, i := range idx {
		num := numericalGrad(eval, &x.Data[i], 1e-2)
		ana := float64(gin.Data[i])
		if math.Abs(num-ana) > 2e-2+0.08*math.Abs(num) {
			t.Errorf("input grad[%d]: analytic %v vs numeric %v", i, ana, num)
		}
	}
}

func TestBatchNormRunningStats(t *testing.T) {
	bn := NewBatchNorm2D("bn", 1)
	x := tensor.FromSlice([]float32{2, 2, 2, 2}, 1, 1, 2, 2)
	for i := 0; i < 200; i++ {
		bn.Forward(x, true)
	}
	if math.Abs(bn.RunningMean[0]-2) > 1e-3 {
		t.Fatalf("running mean = %v, want ~2", bn.RunningMean[0])
	}
	if math.Abs(bn.RunningVar[0]) > 1e-3 {
		t.Fatalf("running var = %v, want ~0", bn.RunningVar[0])
	}
	// Eval mode should normalize with running stats: (2-2)/sqrt(0+eps)*1+0=0.
	out := bn.Forward(x, false)
	if math.Abs(float64(out.Data[0])) > 1e-2 {
		t.Fatalf("eval output = %v, want ~0", out.Data[0])
	}
}

func TestSoftmaxCrossEntropyKnownValues(t *testing.T) {
	// Uniform logits over K classes → loss = ln K, grad = (1/K - onehot)/N.
	logits := tensor.New(1, 4)
	loss, grad := SoftmaxCrossEntropy(logits, []int{2})
	if math.Abs(loss-math.Log(4)) > 1e-6 {
		t.Fatalf("loss = %v, want ln4 = %v", loss, math.Log(4))
	}
	if math.Abs(float64(grad.Data[2])-(0.25-1)) > 1e-6 {
		t.Fatalf("grad = %v", grad.Data)
	}
	if math.Abs(float64(grad.Data[0])-0.25) > 1e-6 {
		t.Fatalf("grad = %v", grad.Data)
	}
}

func TestCrossEntropyLossMatchesGradVersion(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	logits := tensor.New(5, 7)
	logits.RandNormal(rng, 3)
	labels := []int{0, 6, 3, 2, 2}
	l1, _ := SoftmaxCrossEntropy(logits, labels)
	l2 := CrossEntropyLoss(logits, labels)
	if math.Abs(l1-l2) > 1e-9 {
		t.Fatalf("loss mismatch: %v vs %v", l1, l2)
	}
}

func TestAccuracy(t *testing.T) {
	logits := tensor.FromSlice([]float32{
		1, 5, 0,
		9, 1, 2,
		0, 0, 7,
	}, 3, 3)
	if acc := Accuracy(logits, []int{1, 0, 2}); acc != 1 {
		t.Fatalf("acc = %v, want 1", acc)
	}
	if acc := Accuracy(logits, []int{0, 0, 2}); math.Abs(acc-2.0/3) > 1e-9 {
		t.Fatalf("acc = %v, want 2/3", acc)
	}
}

func TestSGDMomentumConvergesOnQuadratic(t *testing.T) {
	// Minimize f(w) = ||w - target||² with SGD; must converge.
	w := tensor.FromSlice([]float32{5, -3}, 2)
	p := NewParam("w", w, false)
	opt := NewSGD(0.1, 0.9, 0)
	target := []float32{1, 2}
	for it := 0; it < 200; it++ {
		p.ZeroGrad()
		for i := range w.Data {
			p.Grad.Data[i] = 2 * (w.Data[i] - target[i])
		}
		opt.Step([]*Param{p})
	}
	for i := range target {
		if math.Abs(float64(w.Data[i]-target[i])) > 1e-3 {
			t.Fatalf("SGD did not converge: %v", w.Data)
		}
	}
}

func TestAdamConvergesOnQuadratic(t *testing.T) {
	w := tensor.FromSlice([]float32{5, -3}, 2)
	p := NewParam("w", w, false)
	opt := NewAdam(0.1, 0)
	target := []float32{1, 2}
	for it := 0; it < 500; it++ {
		p.ZeroGrad()
		for i := range w.Data {
			p.Grad.Data[i] = 2 * (w.Data[i] - target[i])
		}
		opt.Step([]*Param{p})
	}
	for i := range target {
		if math.Abs(float64(w.Data[i]-target[i])) > 1e-2 {
			t.Fatalf("Adam did not converge: %v", w.Data)
		}
	}
}

func TestWeightDecayOnlyAppliesToOptIn(t *testing.T) {
	wd := tensor.FromSlice([]float32{1}, 1)
	nd := tensor.FromSlice([]float32{1}, 1)
	pd := NewParam("w", wd, true)
	pn := NewParam("b", nd, false)
	opt := NewSGD(0.1, 0, 0.5)
	pd.ZeroGrad()
	pn.ZeroGrad()
	opt.Step([]*Param{pd, pn})
	if wd.Data[0] >= 1 {
		t.Fatal("weight decay not applied to decaying param")
	}
	if nd.Data[0] != 1 {
		t.Fatal("weight decay applied to non-decaying param")
	}
}

func TestBuildResNet20Shapes(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	cfg := ResNet20Config(8, 10)
	m := BuildResNet(cfg, rng)
	x := tensor.New(2, 3, 16, 16)
	x.RandNormal(rng, 1)
	out := m.Forward(x, false)
	if out.Shape[0] != 2 || out.Shape[1] != 10 {
		t.Fatalf("output shape = %v", out.Shape)
	}
	// ResNet-20 has 9 basic blocks → at least 19 conv/linear weight params.
	convs := 0
	for _, p := range m.Params() {
		if p.WeightDecay {
			convs++
		}
	}
	if convs < 20 {
		t.Fatalf("expected ≥20 weight tensors, got %d", convs)
	}
}

func TestBuildResNet18Shapes(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	cfg := ResNet18Config(8, 20, true)
	m := BuildResNet(cfg, rng)
	x := tensor.New(1, 3, 32, 32)
	x.RandNormal(rng, 1)
	out := m.Forward(x, false)
	if out.Shape[1] != 20 {
		t.Fatalf("output shape = %v", out.Shape)
	}
}

func TestResNetTrainingStepReducesLoss(t *testing.T) {
	// One tiny model, one batch, several steps: loss must drop.
	rng := rand.New(rand.NewSource(12))
	cfg := ResNet20Config(4, 4)
	m := BuildResNet(cfg, rng)
	x := tensor.New(8, 3, 8, 8)
	x.RandNormal(rng, 1)
	labels := make([]int, 8)
	for i := range labels {
		labels[i] = rng.Intn(4)
	}
	opt := NewSGD(0.05, 0.9, 1e-4)
	first, last := 0.0, 0.0
	for it := 0; it < 12; it++ {
		m.ZeroGrad()
		out := m.Forward(x, true)
		loss, g := SoftmaxCrossEntropy(out, labels)
		m.Backward(g)
		opt.Step(m.Params())
		if it == 0 {
			first = loss
		}
		last = loss
	}
	if last >= first {
		t.Fatalf("loss did not decrease: first %v last %v", first, last)
	}
}

func TestSequentialParamNamesUnique(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	m := BuildResNet(ResNet20Config(4, 10), rng)
	seen := map[string]bool{}
	for _, p := range m.Params() {
		if seen[p.Name] {
			t.Fatalf("duplicate parameter name %q", p.Name)
		}
		seen[p.Name] = true
	}
}

func TestMaxPoolLayerRoundTrip(t *testing.T) {
	mp := NewMaxPool2("mp")
	x := tensor.New(1, 1, 4, 4)
	for i := range x.Data {
		x.Data[i] = float32(i)
	}
	out := mp.Forward(x, true)
	if out.Shape[2] != 2 || out.Shape[3] != 2 {
		t.Fatalf("pool shape = %v", out.Shape)
	}
	g := tensor.New(1, 1, 2, 2)
	g.Fill(1)
	back := mp.Backward(g)
	if back.Data[15] != 1 || back.Data[0] != 0 {
		t.Fatalf("pool backward = %v", back.Data)
	}
}
