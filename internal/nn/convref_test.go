package nn

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"radar/internal/tensor"
)

// naiveConv2D is a direct quadruple-loop convolution used only as a
// reference to cross-validate the im2col + matmul implementation.
func naiveConv2D(x *tensor.Tensor, w *tensor.Tensor, inC, outC, k, stride, pad int) *tensor.Tensor {
	n, _, h, ww := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	outH := tensor.ConvOutSize(h, k, stride, pad)
	outW := tensor.ConvOutSize(ww, k, stride, pad)
	out := tensor.New(n, outC, outH, outW)
	for img := 0; img < n; img++ {
		for oc := 0; oc < outC; oc++ {
			for oy := 0; oy < outH; oy++ {
				for ox := 0; ox < outW; ox++ {
					var acc float64
					for ic := 0; ic < inC; ic++ {
						for ky := 0; ky < k; ky++ {
							iy := oy*stride - pad + ky
							if iy < 0 || iy >= h {
								continue
							}
							for kx := 0; kx < k; kx++ {
								ix := ox*stride - pad + kx
								if ix < 0 || ix >= ww {
									continue
								}
								wv := w.Data[oc*inC*k*k+ic*k*k+ky*k+kx]
								xv := x.Data[((img*x.Shape[1]+ic)*h+iy)*ww+ix]
								acc += float64(wv) * float64(xv)
							}
						}
					}
					out.Data[((img*outC+oc)*outH+oy)*outW+ox] = float32(acc)
				}
			}
		}
	}
	return out
}

// TestConvMatchesNaiveReference cross-validates the production convolution
// against the direct definition over random geometries.
func TestConvMatchesNaiveReference(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		inC := 1 + rng.Intn(3)
		outC := 1 + rng.Intn(4)
		k := []int{1, 3, 5}[rng.Intn(3)]
		stride := 1 + rng.Intn(2)
		pad := rng.Intn(k)
		h := k + rng.Intn(6)
		w := k + rng.Intn(6)
		n := 1 + rng.Intn(2)

		conv := NewConv2D("c", inC, outC, k, stride, pad, rng)
		x := tensor.New(n, inC, h, w)
		x.RandNormal(rng, 1)

		got := conv.Forward(x, false)
		want := naiveConv2D(x, conv.Weight.Value, inC, outC, k, stride, pad)
		if !tensor.SameShape(got, want) {
			return false
		}
		for i := range got.Data {
			if math.Abs(float64(got.Data[i]-want.Data[i])) > 1e-3 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestConvLinearity: conv(a·x) == a·conv(x) — a cheap algebraic invariant.
func TestConvLinearity(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	conv := NewConv2D("c", 2, 3, 3, 1, 1, rng)
	x := tensor.New(1, 2, 5, 5)
	x.RandNormal(rng, 1)
	y1 := conv.Forward(x, false).Clone()
	x.Scale(2)
	y2 := conv.Forward(x, false)
	for i := range y1.Data {
		if math.Abs(float64(y2.Data[i]-2*y1.Data[i])) > 1e-4 {
			t.Fatalf("conv not linear at %d: %v vs %v", i, y2.Data[i], 2*y1.Data[i])
		}
	}
}

// TestConvTranslationEquivariance: shifting the input by the stride shifts
// the output by one pixel (interior pixels only, away from padding).
func TestConvTranslationEquivariance(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	conv := NewConv2D("c", 1, 1, 3, 1, 0, rng)
	x := tensor.New(1, 1, 8, 8)
	x.RandNormal(rng, 1)
	y := conv.Forward(x, false)

	// Shift input right by one column.
	xs := tensor.New(1, 1, 8, 8)
	for r := 0; r < 8; r++ {
		for c := 1; c < 8; c++ {
			xs.Set(x.At(0, 0, r, c-1), 0, 0, r, c)
		}
	}
	ys := conv.Forward(xs, false)
	// ys[r][c] should equal y[r][c-1] for interior columns.
	for r := 0; r < y.Shape[2]; r++ {
		for c := 1; c < y.Shape[3]; c++ {
			a := ys.At(0, 0, r, c)
			b := y.At(0, 0, r, c-1)
			if math.Abs(float64(a-b)) > 1e-4 {
				t.Fatalf("equivariance violated at (%d,%d): %v vs %v", r, c, a, b)
			}
		}
	}
}
