package nn

import (
	"fmt"
	"math/rand"
)

// ResNetConfig describes a ResNet topology in the v1 CIFAR/ImageNet basic-
// block family. Width scaling (for tractable pure-Go training) keeps the
// exact depth and wiring of the paper's models while shrinking channel
// counts; see DESIGN.md §1.
type ResNetConfig struct {
	// Name labels the model, e.g. "resnet20s".
	Name string
	// StageChannels lists the output channels of each stage.
	StageChannels []int
	// StageBlocks lists the number of basic blocks per stage.
	StageBlocks []int
	// NumClasses sets the classifier width.
	NumClasses int
	// InChannels is the image channel count (3 for RGB).
	InChannels int
	// StemKernel/StemStride/StemPad configure the first convolution
	// (3/1/1 for CIFAR-style, 7/2/3 for ImageNet-style).
	StemKernel, StemStride, StemPad int
	// StemPool adds a 2×2 max pool after the stem (ImageNet-style).
	StemPool bool
}

// ResNet20Config returns the CIFAR-style 3-stage, 3-blocks-per-stage
// topology of ResNet-20 with the given base width (the paper's model uses
// base 16; the scaled training model uses 8).
func ResNet20Config(base, classes int) ResNetConfig {
	return ResNetConfig{
		Name:          fmt.Sprintf("resnet20-w%d", base),
		StageChannels: []int{base, 2 * base, 4 * base},
		StageBlocks:   []int{3, 3, 3},
		NumClasses:    classes,
		InChannels:    3,
		StemKernel:    3, StemStride: 1, StemPad: 1,
	}
}

// ResNet18Config returns the ImageNet-style 4-stage, 2-blocks-per-stage
// topology of ResNet-18 with the given base width (the paper's model uses
// base 64; the scaled training model uses 16) and a CIFAR-style stem when
// smallStem is true (used for 32×32 synthetic inputs).
func ResNet18Config(base, classes int, smallStem bool) ResNetConfig {
	cfg := ResNetConfig{
		Name:          fmt.Sprintf("resnet18-w%d", base),
		StageChannels: []int{base, 2 * base, 4 * base, 8 * base},
		StageBlocks:   []int{2, 2, 2, 2},
		NumClasses:    classes,
		InChannels:    3,
	}
	if smallStem {
		cfg.StemKernel, cfg.StemStride, cfg.StemPad = 3, 1, 1
	} else {
		cfg.StemKernel, cfg.StemStride, cfg.StemPad = 7, 2, 3
		cfg.StemPool = true
	}
	return cfg
}

// BuildResNet constructs the model described by cfg. rng seeds the weight
// initialization; pass nil to build a zero-weight skeleton (e.g. when
// loading a checkpoint).
func BuildResNet(cfg ResNetConfig, rng *rand.Rand) *Sequential {
	model := NewSequential(cfg.Name)
	c0 := cfg.StageChannels[0]
	model.Add(NewConv2D("stem.conv", cfg.InChannels, c0, cfg.StemKernel, cfg.StemStride, cfg.StemPad, rng))
	model.Add(NewBatchNorm2D("stem.bn", c0))
	model.Add(NewReLU("stem.relu"))
	if cfg.StemPool {
		model.Add(NewMaxPool2("stem.pool"))
	}
	inC := c0
	for s, outC := range cfg.StageChannels {
		for b := 0; b < cfg.StageBlocks[s]; b++ {
			stride := 1
			if s > 0 && b == 0 {
				stride = 2
			}
			name := fmt.Sprintf("stage%d.block%d", s+1, b)
			model.Add(NewBasicBlock(name, inC, outC, stride, rng))
			inC = outC
		}
	}
	model.Add(NewGlobalAvgPool("gap"))
	model.Add(NewLinear("fc", inC, cfg.NumClasses, rng))
	return model
}
