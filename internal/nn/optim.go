package nn

import (
	"math"

	"radar/internal/tensor"
)

// Optimizer updates parameters from their accumulated gradients.
type Optimizer interface {
	// Step applies one update to every parameter and leaves gradients
	// untouched (callers zero them explicitly between batches).
	Step(params []*Param)
	// SetLR changes the learning rate (for schedules).
	SetLR(lr float64)
}

// SGD implements stochastic gradient descent with classical momentum and
// decoupled L2 weight decay on parameters that opt in.
type SGD struct {
	LR          float64
	Momentum    float64
	WeightDecay float64
	velocity    map[*Param]*tensor.Tensor
}

// NewSGD constructs the optimizer.
func NewSGD(lr, momentum, weightDecay float64) *SGD {
	return &SGD{LR: lr, Momentum: momentum, WeightDecay: weightDecay,
		velocity: make(map[*Param]*tensor.Tensor)}
}

// Step implements Optimizer.
func (o *SGD) Step(params []*Param) {
	for _, p := range params {
		v := o.velocity[p]
		if v == nil {
			v = tensor.New(p.Value.Shape...)
			o.velocity[p] = v
		}
		for i := range p.Value.Data {
			g := float64(p.Grad.Data[i])
			if p.WeightDecay {
				g += o.WeightDecay * float64(p.Value.Data[i])
			}
			nv := o.Momentum*float64(v.Data[i]) + g
			v.Data[i] = float32(nv)
			p.Value.Data[i] -= float32(o.LR * nv)
		}
	}
}

// SetLR implements Optimizer.
func (o *SGD) SetLR(lr float64) { o.LR = lr }

// Adam implements the Adam optimizer (Kingma & Ba) with optional L2 decay,
// matching the paper's ResNet-20 training recipe (Adam, lr 0.01, decay 1e-4).
type Adam struct {
	LR, Beta1, Beta2, Eps, WeightDecay float64
	t                                  int
	m, v                               map[*Param]*tensor.Tensor
}

// NewAdam constructs the optimizer with standard β₁=0.9, β₂=0.999.
func NewAdam(lr, weightDecay float64) *Adam {
	return &Adam{LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8, WeightDecay: weightDecay,
		m: make(map[*Param]*tensor.Tensor), v: make(map[*Param]*tensor.Tensor)}
}

// Step implements Optimizer.
func (o *Adam) Step(params []*Param) {
	o.t++
	bc1 := 1 - math.Pow(o.Beta1, float64(o.t))
	bc2 := 1 - math.Pow(o.Beta2, float64(o.t))
	for _, p := range params {
		m := o.m[p]
		v := o.v[p]
		if m == nil {
			m = tensor.New(p.Value.Shape...)
			v = tensor.New(p.Value.Shape...)
			o.m[p] = m
			o.v[p] = v
		}
		for i := range p.Value.Data {
			g := float64(p.Grad.Data[i])
			if p.WeightDecay {
				g += o.WeightDecay * float64(p.Value.Data[i])
			}
			nm := o.Beta1*float64(m.Data[i]) + (1-o.Beta1)*g
			nv := o.Beta2*float64(v.Data[i]) + (1-o.Beta2)*g*g
			m.Data[i] = float32(nm)
			v.Data[i] = float32(nv)
			mHat := nm / bc1
			vHat := nv / bc2
			p.Value.Data[i] -= float32(o.LR * mHat / (math.Sqrt(vHat) + o.Eps))
		}
	}
}

// SetLR implements Optimizer.
func (o *Adam) SetLR(lr float64) { o.LR = lr }
