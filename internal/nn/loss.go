package nn

import (
	"math"

	"radar/internal/tensor"
)

// SoftmaxCrossEntropy computes the mean softmax cross-entropy loss of
// logits (N, K) against integer labels, together with the gradient with
// respect to the logits. The softmax is computed in a numerically stable
// max-shifted form.
func SoftmaxCrossEntropy(logits *tensor.Tensor, labels []int) (loss float64, grad *tensor.Tensor) {
	n, k := logits.Shape[0], logits.Shape[1]
	if len(labels) != n {
		panic("nn: label count does not match batch size")
	}
	grad = tensor.New(n, k)
	invN := 1.0 / float64(n)
	for i := 0; i < n; i++ {
		row := logits.Data[i*k : (i+1)*k]
		maxv := row[0]
		for _, v := range row {
			if v > maxv {
				maxv = v
			}
		}
		var sum float64
		exps := make([]float64, k)
		for j, v := range row {
			e := math.Exp(float64(v - maxv))
			exps[j] = e
			sum += e
		}
		y := labels[i]
		if y < 0 || y >= k {
			panic("nn: label out of range")
		}
		loss += -math.Log(exps[y]/sum + 1e-30)
		for j := 0; j < k; j++ {
			p := exps[j] / sum
			if j == y {
				p -= 1
			}
			grad.Data[i*k+j] = float32(p * invN)
		}
	}
	return loss * invN, grad
}

// CrossEntropyLoss computes only the mean loss (no gradient) of logits
// against labels; used on evaluation paths and by the attack's trial flips.
func CrossEntropyLoss(logits *tensor.Tensor, labels []int) float64 {
	n, k := logits.Shape[0], logits.Shape[1]
	var loss float64
	for i := 0; i < n; i++ {
		row := logits.Data[i*k : (i+1)*k]
		maxv := row[0]
		for _, v := range row {
			if v > maxv {
				maxv = v
			}
		}
		var sum float64
		for _, v := range row {
			sum += math.Exp(float64(v - maxv))
		}
		y := labels[i]
		loss += -(float64(row[y]-maxv) - math.Log(sum))
	}
	return loss / float64(n)
}

// Accuracy returns the fraction of rows whose argmax equals the label.
func Accuracy(logits *tensor.Tensor, labels []int) float64 {
	n, k := logits.Shape[0], logits.Shape[1]
	correct := 0
	for i := 0; i < n; i++ {
		if logits.Argmax(i*k, k) == labels[i] {
			correct++
		}
	}
	return float64(correct) / float64(n)
}
