package nn

import (
	"math"

	"radar/internal/tensor"
)

// BatchNorm2D normalizes each channel of a (N, C, H, W) tensor over the
// batch and spatial dimensions, then applies a learnable affine transform.
// Running statistics are maintained for inference mode.
type BatchNorm2D struct {
	name     string
	C        int
	Eps      float64
	Momentum float64 // running-stat update rate, PyTorch convention

	Gamma, Beta             *Param
	RunningMean, RunningVar []float64

	// FrozenStats, when true, makes train-mode Forward normalize with the
	// running statistics (treated as constants) instead of batch
	// statistics. Backward then differentiates the inference-mode function
	// — exactly what a bit-flip attacker needs, since the attacked network
	// runs in eval mode. Training code leaves this false.
	FrozenStats bool

	// Backward caches.
	xHat    *tensor.Tensor
	invStd  []float64
	inShape []int
}

// NewBatchNorm2D constructs a batch-norm layer with γ=1, β=0.
func NewBatchNorm2D(name string, c int) *BatchNorm2D {
	g := tensor.New(c)
	g.Fill(1)
	b := tensor.New(c)
	rv := make([]float64, c)
	for i := range rv {
		rv[i] = 1
	}
	return &BatchNorm2D{
		name: name, C: c, Eps: 1e-5, Momentum: 0.1,
		Gamma:       NewParam(name+".gamma", g, false),
		Beta:        NewParam(name+".beta", b, false),
		RunningMean: make([]float64, c),
		RunningVar:  rv,
	}
}

// Forward implements Layer.
func (bn *BatchNorm2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	n, c, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	if c != bn.C {
		panic("nn: BatchNorm2D channel mismatch: " + bn.name)
	}
	plane := h * w
	out := tensor.New(x.Shape...)
	if train {
		bn.inShape = append([]int(nil), x.Shape...)
		bn.xHat = tensor.New(x.Shape...)
		bn.invStd = make([]float64, c)
	}
	cnt := float64(n * plane)
	for ch := 0; ch < c; ch++ {
		var mean, variance float64
		if train && bn.FrozenStats {
			mean = bn.RunningMean[ch]
			variance = bn.RunningVar[ch]
		} else if train {
			var s, ss float64
			for i := 0; i < n; i++ {
				base := (i*c + ch) * plane
				for p := 0; p < plane; p++ {
					v := float64(x.Data[base+p])
					s += v
					ss += v * v
				}
			}
			mean = s / cnt
			variance = ss/cnt - mean*mean
			if variance < 0 {
				variance = 0
			}
			bn.RunningMean[ch] = (1-bn.Momentum)*bn.RunningMean[ch] + bn.Momentum*mean
			bn.RunningVar[ch] = (1-bn.Momentum)*bn.RunningVar[ch] + bn.Momentum*variance
		} else {
			mean = bn.RunningMean[ch]
			variance = bn.RunningVar[ch]
		}
		inv := 1.0 / math.Sqrt(variance+bn.Eps)
		g := float64(bn.Gamma.Value.Data[ch])
		b := float64(bn.Beta.Value.Data[ch])
		if train {
			bn.invStd[ch] = inv
		}
		for i := 0; i < n; i++ {
			base := (i*c + ch) * plane
			for p := 0; p < plane; p++ {
				xh := (float64(x.Data[base+p]) - mean) * inv
				if train {
					bn.xHat.Data[base+p] = float32(xh)
				}
				out.Data[base+p] = float32(g*xh + b)
			}
		}
	}
	return out
}

// Backward implements Layer using the standard batch-norm gradient:
// dx = γ·invStd/m · (m·dxhat − Σdxhat − x̂·Σ(dxhat·x̂)). With FrozenStats the
// statistics are constants, so the gradient reduces to dx = γ·invStd·dy.
func (bn *BatchNorm2D) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if bn.xHat == nil {
		panic("nn: BatchNorm2D.Backward without train-mode Forward: " + bn.name)
	}
	n, c := bn.inShape[0], bn.inShape[1]
	plane := bn.inShape[2] * bn.inShape[3]
	m := float64(n * plane)
	dx := tensor.New(bn.inShape...)
	for ch := 0; ch < c; ch++ {
		g := float64(bn.Gamma.Value.Data[ch])
		inv := bn.invStd[ch]
		var sumDy, sumDyXhat float64
		for i := 0; i < n; i++ {
			base := (i*c + ch) * plane
			for p := 0; p < plane; p++ {
				dy := float64(grad.Data[base+p])
				sumDy += dy
				sumDyXhat += dy * float64(bn.xHat.Data[base+p])
			}
		}
		bn.Gamma.Grad.Data[ch] += float32(sumDyXhat)
		bn.Beta.Grad.Data[ch] += float32(sumDy)
		if bn.FrozenStats {
			k := g * inv
			for i := 0; i < n; i++ {
				base := (i*c + ch) * plane
				for p := 0; p < plane; p++ {
					dx.Data[base+p] = float32(k * float64(grad.Data[base+p]))
				}
			}
			continue
		}
		k := g * inv / m
		for i := 0; i < n; i++ {
			base := (i*c + ch) * plane
			for p := 0; p < plane; p++ {
				dy := float64(grad.Data[base+p])
				xh := float64(bn.xHat.Data[base+p])
				dx.Data[base+p] = float32(k * (m*dy - sumDy - xh*sumDyXhat))
			}
		}
	}
	bn.xHat = nil
	return dx
}

// Params implements Layer.
func (bn *BatchNorm2D) Params() []*Param { return []*Param{bn.Gamma, bn.Beta} }

// Name implements Layer.
func (bn *BatchNorm2D) Name() string { return bn.name }
