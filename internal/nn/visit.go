package nn

// Visit walks every layer in the container depth-first, recursing into
// nested Sequentials and BasicBlocks, and calls fn on each leaf layer.
func (s *Sequential) Visit(fn func(Layer)) {
	for _, l := range s.Layers {
		visitLayer(l, fn)
	}
}

func visitLayer(l Layer, fn func(Layer)) {
	switch v := l.(type) {
	case *Sequential:
		v.Visit(fn)
	case *BasicBlock:
		fn(v.Conv1)
		fn(v.BN1)
		fn(v.Conv2)
		fn(v.BN2)
		if v.DownConv != nil {
			fn(v.DownConv)
			fn(v.DownBN)
		}
	default:
		fn(l)
	}
}

// State captures every float tensor a model needs to be reconstructed:
// trainable parameters plus batch-norm running statistics.
type State struct {
	// Params maps parameter name to its values.
	Params map[string][]float32
	// RunningMean and RunningVar map batch-norm layer name to statistics.
	RunningMean map[string][]float64
	// RunningVar — see RunningMean.
	RunningVar map[string][]float64
}

// CaptureState snapshots the model into a serializable State.
func (s *Sequential) CaptureState() *State {
	st := &State{
		Params:      map[string][]float32{},
		RunningMean: map[string][]float64{},
		RunningVar:  map[string][]float64{},
	}
	for _, p := range s.Params() {
		st.Params[p.Name] = append([]float32(nil), p.Value.Data...)
	}
	s.Visit(func(l Layer) {
		if bn, ok := l.(*BatchNorm2D); ok {
			st.RunningMean[bn.Name()] = append([]float64(nil), bn.RunningMean...)
			st.RunningVar[bn.Name()] = append([]float64(nil), bn.RunningVar...)
		}
	})
	return st
}

// AdoptState is LoadState without the copy: the model takes ownership of
// the state's slices, so a freshly decoded checkpoint materializes its
// float tensors exactly once instead of decode-buffer-plus-copy. The
// caller must hand over exclusive ownership — adopting a state that is
// shared (e.g. a cache entry) aliases the cache into the live model and
// every subsequent weight write poisons it; use LoadState there. Missing
// names or size mismatches panic, same contract as LoadState.
func (s *Sequential) AdoptState(st *State) {
	for _, p := range s.Params() {
		data, ok := st.Params[p.Name]
		if !ok {
			panic("nn: state missing parameter " + p.Name)
		}
		if len(data) != p.Value.Len() {
			panic("nn: state size mismatch for " + p.Name)
		}
		p.Value.Data = data
	}
	s.Visit(func(l Layer) {
		if bn, ok := l.(*BatchNorm2D); ok {
			rm, ok1 := st.RunningMean[bn.Name()]
			rv, ok2 := st.RunningVar[bn.Name()]
			if !ok1 || !ok2 {
				panic("nn: state missing BN stats for " + bn.Name())
			}
			if len(rm) != len(bn.RunningMean) || len(rv) != len(bn.RunningVar) {
				panic("nn: state size mismatch for BN stats of " + bn.Name())
			}
			bn.RunningMean = rm
			bn.RunningVar = rv
		}
	})
}

// LoadState restores a snapshot previously captured from a model with the
// same architecture. Unknown or missing names panic: a state/architecture
// mismatch is a programming error, not a recoverable condition.
func (s *Sequential) LoadState(st *State) {
	for _, p := range s.Params() {
		data, ok := st.Params[p.Name]
		if !ok {
			panic("nn: state missing parameter " + p.Name)
		}
		if len(data) != p.Value.Len() {
			panic("nn: state size mismatch for " + p.Name)
		}
		copy(p.Value.Data, data)
	}
	s.Visit(func(l Layer) {
		if bn, ok := l.(*BatchNorm2D); ok {
			rm, ok1 := st.RunningMean[bn.Name()]
			rv, ok2 := st.RunningVar[bn.Name()]
			if !ok1 || !ok2 {
				panic("nn: state missing BN stats for " + bn.Name())
			}
			copy(bn.RunningMean, rm)
			copy(bn.RunningVar, rv)
		}
	})
}
