package nn

import "radar/internal/tensor"

// ReLU is the rectified linear activation, applied elementwise.
type ReLU struct {
	name string
	mask []bool
}

// NewReLU constructs a ReLU layer.
func NewReLU(name string) *ReLU { return &ReLU{name: name} }

// Forward implements Layer.
func (r *ReLU) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	out := tensor.New(x.Shape...)
	if train {
		r.mask = make([]bool, x.Len())
	}
	for i, v := range x.Data {
		if v > 0 {
			out.Data[i] = v
			if train {
				r.mask[i] = true
			}
		}
	}
	return out
}

// Backward implements Layer.
func (r *ReLU) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if r.mask == nil {
		panic("nn: ReLU.Backward without train-mode Forward: " + r.name)
	}
	out := tensor.New(grad.Shape...)
	for i, g := range grad.Data {
		if r.mask[i] {
			out.Data[i] = g
		}
	}
	r.mask = nil
	return out
}

// Params implements Layer.
func (r *ReLU) Params() []*Param { return nil }

// Name implements Layer.
func (r *ReLU) Name() string { return r.name }

// GlobalAvgPool averages each (H, W) plane of a (N, C, H, W) tensor,
// producing (N, C).
type GlobalAvgPool struct {
	name string
	h, w int
}

// NewGlobalAvgPool constructs the pooling layer.
func NewGlobalAvgPool(name string) *GlobalAvgPool { return &GlobalAvgPool{name: name} }

// Forward implements Layer.
func (g *GlobalAvgPool) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	g.h, g.w = x.Shape[2], x.Shape[3]
	return tensor.GlobalAvgPool(x)
}

// Backward implements Layer.
func (g *GlobalAvgPool) Backward(grad *tensor.Tensor) *tensor.Tensor {
	return tensor.GlobalAvgPoolBackward(grad, g.h, g.w)
}

// Params implements Layer.
func (g *GlobalAvgPool) Params() []*Param { return nil }

// Name implements Layer.
func (g *GlobalAvgPool) Name() string { return g.name }

// MaxPool2 is 2×2 max pooling with stride 2.
type MaxPool2 struct {
	name    string
	arg     []int32
	inShape []int
}

// NewMaxPool2 constructs the pooling layer.
func NewMaxPool2(name string) *MaxPool2 { return &MaxPool2{name: name} }

// Forward implements Layer.
func (m *MaxPool2) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	out, arg := tensor.MaxPool2(x)
	if train {
		m.arg = arg
		m.inShape = append([]int(nil), x.Shape...)
	}
	return out
}

// Backward implements Layer.
func (m *MaxPool2) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if m.arg == nil {
		panic("nn: MaxPool2.Backward without train-mode Forward: " + m.name)
	}
	out := tensor.MaxPool2Backward(grad, m.arg, m.inShape)
	m.arg = nil
	return out
}

// Params implements Layer.
func (m *MaxPool2) Params() []*Param { return nil }

// Name implements Layer.
func (m *MaxPool2) Name() string { return m.name }

// Flatten reshapes (N, C, H, W) to (N, C*H*W).
type Flatten struct {
	name    string
	inShape []int
}

// NewFlatten constructs the layer.
func NewFlatten(name string) *Flatten { return &Flatten{name: name} }

// Forward implements Layer.
func (f *Flatten) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	f.inShape = append([]int(nil), x.Shape...)
	n := x.Shape[0]
	return x.Reshape(n, x.Len()/n)
}

// Backward implements Layer.
func (f *Flatten) Backward(grad *tensor.Tensor) *tensor.Tensor {
	return grad.Reshape(f.inShape...)
}

// Params implements Layer.
func (f *Flatten) Params() []*Param { return nil }

// Name implements Layer.
func (f *Flatten) Name() string { return f.name }
