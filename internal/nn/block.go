package nn

import (
	"math/rand"

	"radar/internal/tensor"
)

// BasicBlock is the ResNet v1 basic residual block:
//
//	out = ReLU( BN2(Conv2( ReLU(BN1(Conv1(x))) )) + shortcut(x) )
//
// where shortcut is identity when shapes match and a strided 1×1
// convolution + BN otherwise (option B of He et al.).
type BasicBlock struct {
	name string

	Conv1 *Conv2D
	BN1   *BatchNorm2D
	Relu1 *ReLU
	Conv2 *Conv2D
	BN2   *BatchNorm2D

	// Downsample is nil for identity shortcuts.
	DownConv *Conv2D
	DownBN   *BatchNorm2D

	Relu2 *ReLU
}

// NewBasicBlock constructs a residual block mapping inC→outC channels with
// the given stride on the first convolution.
func NewBasicBlock(name string, inC, outC, stride int, rng *rand.Rand) *BasicBlock {
	b := &BasicBlock{
		name:  name,
		Conv1: NewConv2D(name+".conv1", inC, outC, 3, stride, 1, rng),
		BN1:   NewBatchNorm2D(name+".bn1", outC),
		Relu1: NewReLU(name + ".relu1"),
		Conv2: NewConv2D(name+".conv2", outC, outC, 3, 1, 1, rng),
		BN2:   NewBatchNorm2D(name+".bn2", outC),
		Relu2: NewReLU(name + ".relu2"),
	}
	if stride != 1 || inC != outC {
		b.DownConv = NewConv2D(name+".down.conv", inC, outC, 1, stride, 0, rng)
		b.DownBN = NewBatchNorm2D(name+".down.bn", outC)
	}
	return b
}

// Forward implements Layer.
func (b *BasicBlock) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	main := b.Conv1.Forward(x, train)
	main = b.BN1.Forward(main, train)
	main = b.Relu1.Forward(main, train)
	main = b.Conv2.Forward(main, train)
	main = b.BN2.Forward(main, train)

	var side *tensor.Tensor
	if b.DownConv != nil {
		side = b.DownConv.Forward(x, train)
		side = b.DownBN.Forward(side, train)
	} else {
		side = x
	}
	sum := tensor.Add(main, side)
	return b.Relu2.Forward(sum, train)
}

// Backward implements Layer.
func (b *BasicBlock) Backward(grad *tensor.Tensor) *tensor.Tensor {
	g := b.Relu2.Backward(grad)
	// The addition fans the gradient out to both branches unchanged.
	gMain := b.BN2.Backward(g)
	gMain = b.Conv2.Backward(gMain)
	gMain = b.Relu1.Backward(gMain)
	gMain = b.BN1.Backward(gMain)
	gMain = b.Conv1.Backward(gMain)

	if b.DownConv != nil {
		gSide := b.DownBN.Backward(g)
		gSide = b.DownConv.Backward(gSide)
		return tensor.Add(gMain, gSide)
	}
	return tensor.Add(gMain, g)
}

// Params implements Layer.
func (b *BasicBlock) Params() []*Param {
	ps := append(b.Conv1.Params(), b.BN1.Params()...)
	ps = append(ps, b.Conv2.Params()...)
	ps = append(ps, b.BN2.Params()...)
	if b.DownConv != nil {
		ps = append(ps, b.DownConv.Params()...)
		ps = append(ps, b.DownBN.Params()...)
	}
	return ps
}

// Name implements Layer.
func (b *BasicBlock) Name() string { return b.name }
