package nn

import (
	"math/rand"
	"sync"

	"radar/internal/tensor"
)

// Conv2D is a 2-D convolution over (N, C, H, W) inputs with square kernels,
// implemented as im2col + matrix multiply. Bias is omitted because every
// convolution in the ResNet family is followed by batch normalization.
type Conv2D struct {
	name                string
	InC, OutC           int
	K, Stride, Pad      int
	Weight              *Param // shape (OutC, InC*K*K)
	inShape             []int
	cols                []*tensor.Tensor // cached per-sample im2col matrices
	outH, outW          int
	cachedTrain         bool
	parallelOverSamples bool
}

// NewConv2D constructs a convolution with Kaiming-initialized weights.
// rng may be nil, in which case weights start at zero (useful when the
// caller loads weights afterwards).
func NewConv2D(name string, inC, outC, k, stride, pad int, rng *rand.Rand) *Conv2D {
	w := tensor.New(outC, inC*k*k)
	if rng != nil {
		w.KaimingInit(rng, inC*k*k)
	}
	return &Conv2D{
		name: name, InC: inC, OutC: outC, K: k, Stride: stride, Pad: pad,
		Weight:              NewParam(name+".weight", w, true),
		parallelOverSamples: true,
	}
}

// Forward implements Layer.
func (c *Conv2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	n, ch, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	if ch != c.InC {
		panic("nn: Conv2D input channel mismatch: " + c.name)
	}
	c.outH = tensor.ConvOutSize(h, c.K, c.Stride, c.Pad)
	c.outW = tensor.ConvOutSize(w, c.K, c.Stride, c.Pad)
	out := tensor.New(n, c.OutC, c.outH, c.outW)
	c.inShape = append([]int(nil), x.Shape...)
	c.cachedTrain = train
	if train {
		c.cols = make([]*tensor.Tensor, n)
	}
	plane := c.outH * c.outW
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		run := func(i int) {
			sample := tensor.FromSlice(x.Data[i*ch*h*w:(i+1)*ch*h*w], ch, h, w)
			cols := tensor.Im2Col(sample, c.K, c.K, c.Stride, c.Pad)
			if train {
				c.cols[i] = cols
			}
			prod := tensor.MatMul(c.Weight.Value, cols) // (OutC, plane)
			copy(out.Data[i*c.OutC*plane:(i+1)*c.OutC*plane], prod.Data)
		}
		if c.parallelOverSamples && n > 1 {
			wg.Add(1)
			go func(i int) { defer wg.Done(); run(i) }(i)
		} else {
			run(i)
		}
	}
	wg.Wait()
	return out
}

// Backward implements Layer.
func (c *Conv2D) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if !c.cachedTrain {
		panic("nn: Conv2D.Backward without train-mode Forward: " + c.name)
	}
	n := c.inShape[0]
	ch, h, w := c.inShape[1], c.inShape[2], c.inShape[3]
	plane := c.outH * c.outW
	dx := tensor.New(c.inShape...)

	type partial struct{ dW *tensor.Tensor }
	partials := make([]partial, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		run := func(i int) {
			g := tensor.FromSlice(grad.Data[i*c.OutC*plane:(i+1)*c.OutC*plane], c.OutC, plane)
			// dW_i = g · colsᵀ  → (OutC, InC*K*K)
			partials[i].dW = tensor.MatMulTransB(g, c.cols[i])
			// dcols = Wᵀ · g → (InC*K*K, plane)
			dcols := tensor.MatMulTransA(c.Weight.Value, g)
			dxi := tensor.Col2Im(dcols, ch, h, w, c.K, c.K, c.Stride, c.Pad)
			copy(dx.Data[i*ch*h*w:(i+1)*ch*h*w], dxi.Data)
		}
		if c.parallelOverSamples && n > 1 {
			wg.Add(1)
			go func(i int) { defer wg.Done(); run(i) }(i)
		} else {
			run(i)
		}
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		tensor.AddInPlace(c.Weight.Grad, partials[i].dW)
	}
	c.cols = nil // release the activation cache
	return dx
}

// Params implements Layer.
func (c *Conv2D) Params() []*Param { return []*Param{c.Weight} }

// Name implements Layer.
func (c *Conv2D) Name() string { return c.name }

// Linear is a fully-connected layer y = xWᵀ + b over (N, In) inputs.
type Linear struct {
	name    string
	In, Out int
	Weight  *Param // (Out, In)
	Bias    *Param // (Out)
	inCache *tensor.Tensor
}

// NewLinear constructs a fully-connected layer with Kaiming-initialized
// weights and zero bias.
func NewLinear(name string, in, out int, rng *rand.Rand) *Linear {
	w := tensor.New(out, in)
	if rng != nil {
		w.KaimingInit(rng, in)
	}
	b := tensor.New(out)
	return &Linear{
		name: name, In: in, Out: out,
		Weight: NewParam(name+".weight", w, true),
		Bias:   NewParam(name+".bias", b, false),
	}
}

// Forward implements Layer.
func (l *Linear) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if x.NDim() != 2 || x.Shape[1] != l.In {
		panic("nn: Linear input shape mismatch: " + l.name)
	}
	if train {
		l.inCache = x
	}
	out := tensor.MatMulTransB(x, l.Weight.Value) // (N, Out)
	n := x.Shape[0]
	for i := 0; i < n; i++ {
		row := out.Data[i*l.Out : (i+1)*l.Out]
		for j := range row {
			row[j] += l.Bias.Value.Data[j]
		}
	}
	return out
}

// Backward implements Layer.
func (l *Linear) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if l.inCache == nil {
		panic("nn: Linear.Backward without train-mode Forward: " + l.name)
	}
	// dW = gradᵀ · x ; dx = grad · W ; db = column sums of grad.
	dW := tensor.MatMulTransA(grad, l.inCache)
	tensor.AddInPlace(l.Weight.Grad, dW)
	n := grad.Shape[0]
	for i := 0; i < n; i++ {
		for j := 0; j < l.Out; j++ {
			l.Bias.Grad.Data[j] += grad.Data[i*l.Out+j]
		}
	}
	dx := tensor.MatMul(grad, l.Weight.Value)
	l.inCache = nil
	return dx
}

// Params implements Layer.
func (l *Linear) Params() []*Param { return []*Param{l.Weight, l.Bias} }

// Name implements Layer.
func (l *Linear) Name() string { return l.name }
