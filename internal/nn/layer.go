// Package nn implements the neural-network substrate for the RADAR
// reproduction: convolution, batch normalization, activation, pooling and
// fully-connected layers with manual backpropagation, residual (ResNet)
// blocks, softmax cross-entropy loss and SGD/Adam optimizers. Everything is
// pure Go on top of internal/tensor.
package nn

import (
	"fmt"

	"radar/internal/tensor"
)

// Param is a trainable parameter: a value tensor plus its gradient
// accumulator. Optimizers may attach per-parameter state keyed by the
// parameter pointer.
type Param struct {
	// Name identifies the parameter for reporting and model serialization,
	// e.g. "stage1.block0.conv1.weight".
	Name string
	// Value holds the current parameter values.
	Value *tensor.Tensor
	// Grad accumulates ∂L/∂Value across a backward pass.
	Grad *tensor.Tensor
	// WeightDecay indicates whether L2 regularization applies (true for
	// conv/linear weights, false for BN affine parameters and biases).
	WeightDecay bool
}

// NewParam allocates a parameter with a zeroed gradient of the same shape.
func NewParam(name string, value *tensor.Tensor, decay bool) *Param {
	return &Param{Name: name, Value: value, Grad: tensor.New(value.Shape...), WeightDecay: decay}
}

// ZeroGrad clears the gradient accumulator.
func (p *Param) ZeroGrad() { p.Grad.Zero() }

// Layer is a differentiable module. Forward must cache whatever Backward
// needs; Backward consumes the cached state, accumulates parameter
// gradients, and returns the gradient with respect to its input.
type Layer interface {
	// Forward computes the layer output. When train is true the layer may
	// update internal statistics (e.g. batch-norm running moments) and must
	// cache activations for Backward.
	Forward(x *tensor.Tensor, train bool) *tensor.Tensor
	// Backward propagates the output gradient to the input gradient,
	// accumulating parameter gradients along the way. It must be called
	// after a Forward with train=true.
	Backward(grad *tensor.Tensor) *tensor.Tensor
	// Params returns the layer's trainable parameters (possibly empty).
	Params() []*Param
	// Name returns a short human-readable identifier.
	Name() string
}

// Sequential chains layers; the output of layer i feeds layer i+1.
type Sequential struct {
	Layers []Layer
	label  string
}

// NewSequential builds a named sequential container.
func NewSequential(label string, layers ...Layer) *Sequential {
	return &Sequential{Layers: layers, label: label}
}

// Add appends a layer and returns the container for chaining.
func (s *Sequential) Add(l Layer) *Sequential {
	s.Layers = append(s.Layers, l)
	return s
}

// Forward implements Layer.
func (s *Sequential) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	for _, l := range s.Layers {
		x = l.Forward(x, train)
	}
	return x
}

// Backward implements Layer.
func (s *Sequential) Backward(grad *tensor.Tensor) *tensor.Tensor {
	for i := len(s.Layers) - 1; i >= 0; i-- {
		grad = s.Layers[i].Backward(grad)
	}
	return grad
}

// Params implements Layer.
func (s *Sequential) Params() []*Param {
	var ps []*Param
	for _, l := range s.Layers {
		ps = append(ps, l.Params()...)
	}
	return ps
}

// Name implements Layer.
func (s *Sequential) Name() string { return s.label }

// ZeroGrad clears every parameter gradient in the container.
func (s *Sequential) ZeroGrad() {
	for _, p := range s.Params() {
		p.ZeroGrad()
	}
}

// ParamCount returns the total number of scalar parameters.
func (s *Sequential) ParamCount() int {
	n := 0
	for _, p := range s.Params() {
		n += p.Value.Len()
	}
	return n
}

// Summary returns a one-line-per-parameter description of the model.
func (s *Sequential) Summary() string {
	out := ""
	for _, p := range s.Params() {
		out += fmt.Sprintf("%-40s %v (%d)\n", p.Name, p.Value.Shape, p.Value.Len())
	}
	out += fmt.Sprintf("total parameters: %d\n", s.ParamCount())
	return out
}
