package memsim

import (
	"testing"

	"radar/internal/model"
)

func TestCacheHitsAfterInstall(t *testing.T) {
	c := NewCache(1024, 64, 2)
	if c.Access(0) {
		t.Fatal("cold access must miss")
	}
	if !c.Access(0) {
		t.Fatal("second access must hit")
	}
	if !c.Access(63) {
		t.Fatal("same-line access must hit")
	}
	if c.Access(64) {
		t.Fatal("next line must miss")
	}
	if c.Hits != 2 || c.Misses != 2 {
		t.Fatalf("hits=%d misses=%d", c.Hits, c.Misses)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	// 2-way, 1 set of interest: three conflicting lines evict the oldest.
	c := NewCache(128, 64, 2) // 1 set, 2 ways
	c.Access(0)               // line A
	c.Access(64)              // line B
	c.Access(0)               // touch A (B becomes LRU)
	c.Access(128)             // line C evicts B
	if !c.Access(0) {
		t.Fatal("A should still be resident")
	}
	if c.Access(64) {
		t.Fatal("B should have been evicted")
	}
}

func TestCacheCapacityWorkingSet(t *testing.T) {
	// A working set equal to capacity must fully hit on the second pass.
	c := NewCache(4096, 64, 4)
	for pass := 0; pass < 2; pass++ {
		for a := uint64(0); a < 4096; a += 64 {
			c.Access(a)
		}
	}
	if c.Misses != 64 {
		t.Fatalf("misses = %d, want 64 (cold only)", c.Misses)
	}
	if c.Hits != 64 {
		t.Fatalf("hits = %d, want 64", c.Hits)
	}
}

func TestCacheReset(t *testing.T) {
	c := NewCache(1024, 64, 2)
	c.Access(0)
	c.Reset()
	if c.Hits != 0 || c.Misses != 0 {
		t.Fatal("counters not reset")
	}
	if c.Access(0) {
		t.Fatal("contents not reset")
	}
}

func TestHierarchyLatencies(t *testing.T) {
	h := NewHierarchy()
	// Cold: L1 miss + L2 miss → 1+10+30.
	if lat := h.Access(0); lat != 41 {
		t.Fatalf("cold latency = %d, want 41", lat)
	}
	// Warm: L1 hit.
	if lat := h.Access(1); lat != 1 {
		t.Fatalf("warm latency = %d, want 1", lat)
	}
}

func TestHierarchyL2Hit(t *testing.T) {
	h := NewHierarchy()
	// Fill beyond L1 (32 KB) but within L2 (64 KB), then revisit the start:
	// it must be an L1 miss / L2 hit → 1+10 cycles.
	for a := uint64(0); a < 48*1024; a += 64 {
		h.Access(a)
	}
	if lat := h.Access(0); lat != 11 {
		t.Fatalf("L2-hit latency = %d, want 11", lat)
	}
}

func TestStreamBytesChargesPerLine(t *testing.T) {
	h := NewHierarchy()
	cyc := h.StreamBytes(0, 64*10)
	// 10 cold lines at 41 cycles each.
	if cyc != 410 {
		t.Fatalf("stream cycles = %d, want 410", cyc)
	}
}

func TestStrideLargerThanLineMissesEveryTime(t *testing.T) {
	h := NewHierarchy()
	// Strides of 4 KB over 4 MB: every access cold-misses.
	cyc := h.StrideBytes(0, 1024, 4096)
	if cyc != 1024*41 {
		t.Fatalf("stride cycles = %d, want %d", cyc, 1024*41)
	}
}

func TestSimulateInferenceNearPaperBaselines(t *testing.T) {
	cm := DefaultCostModel()
	r20 := cm.SimulateInference(model.ResNet20CIFARShapes())
	// Paper gem5 baseline: 66.3 ms. Accept ±15% for the substitute model.
	if r20.BaselineSec < 0.0563 || r20.BaselineSec > 0.0763 {
		t.Fatalf("ResNet-20 baseline = %.4fs, paper 0.0663s", r20.BaselineSec)
	}
	r18 := cm.SimulateInference(model.ResNet18ImageNetShapes())
	// Paper: 3.268 s.
	if r18.BaselineSec < 2.7 || r18.BaselineSec > 3.8 {
		t.Fatalf("ResNet-18 baseline = %.3fs, paper 3.268s", r18.BaselineSec)
	}
}

func TestRADAROverheadBands(t *testing.T) {
	cm := DefaultCostModel()
	// Table IV shape: ResNet-20 G=8 overhead a few percent; ResNet-18
	// G=512 under ~3%; interleaving strictly more expensive.
	r20plain := cm.SimulateRADAR(model.ResNet20CIFARShapes(), RADARConfig{G: 8, SigBits: 2})
	r20int := cm.SimulateRADAR(model.ResNet20CIFARShapes(), RADARConfig{G: 8, Interleave: true, SigBits: 2})
	if r20int.DetectionSec <= r20plain.DetectionSec {
		t.Fatal("interleaving must cost more than plain RADAR")
	}
	if p := r20int.OverheadPercent(); p < 1 || p > 10 {
		t.Fatalf("ResNet-20 interleaved overhead = %.2f%%, paper 5.27%%", p)
	}
	r18int := cm.SimulateRADAR(model.ResNet18ImageNetShapes(), RADARConfig{G: 512, Interleave: true, SigBits: 2})
	if p := r18int.OverheadPercent(); p > 5 {
		t.Fatalf("ResNet-18 interleaved overhead = %.2f%%, paper 1.83%%", p)
	}
	r18plain := cm.SimulateRADAR(model.ResNet18ImageNetShapes(), RADARConfig{G: 512, SigBits: 2})
	if p := r18plain.OverheadPercent(); p > 2.5 {
		t.Fatalf("ResNet-18 plain overhead = %.2f%%, paper 0.58%%", p)
	}
}

func TestCRCCostsMoreThanRADAR(t *testing.T) {
	cm := DefaultCostModel()
	for _, tc := range []struct {
		tab *model.ShapeTable
		g   int
	}{
		{model.ResNet20CIFARShapes(), 8},
		{model.ResNet18ImageNetShapes(), 512},
	} {
		radar := cm.SimulateRADAR(tc.tab, RADARConfig{G: tc.g, Interleave: true, SigBits: 2})
		crc := cm.SimulateCRC(tc.tab, tc.g)
		if crc.DetectionSec < 3*radar.DetectionSec {
			t.Fatalf("%s: CRC Δ=%.4fs should be ≫ RADAR Δ=%.4fs",
				tc.tab.Model, crc.DetectionSec, radar.DetectionSec)
		}
	}
}

func TestInterleaveCostAsymmetry(t *testing.T) {
	// The paper's interleave cost is small for ResNet-20 (layers fit in L2)
	// and large for ResNet-18 (gather walks DRAM). Verify the ratio of the
	// interleave surcharge to the plain cost is much larger for ResNet-18.
	cm := DefaultCostModel()
	r20p := cm.SimulateRADAR(model.ResNet20CIFARShapes(), RADARConfig{G: 8, SigBits: 2})
	r20i := cm.SimulateRADAR(model.ResNet20CIFARShapes(), RADARConfig{G: 8, Interleave: true, SigBits: 2})
	r18p := cm.SimulateRADAR(model.ResNet18ImageNetShapes(), RADARConfig{G: 512, SigBits: 2})
	r18i := cm.SimulateRADAR(model.ResNet18ImageNetShapes(), RADARConfig{G: 512, Interleave: true, SigBits: 2})
	s20 := r20i.DetectionSec / r20p.DetectionSec
	s18 := r18i.DetectionSec / r18p.DetectionSec
	if s18 <= s20 {
		t.Fatalf("interleave surcharge ratio: RN18 %.2f should exceed RN20 %.2f", s18, s20)
	}
}

func TestOverheadPercentZeroBaseline(t *testing.T) {
	r := InferenceResult{DetectionSec: 1}
	if r.OverheadPercent() != 0 {
		t.Fatal("zero baseline must yield 0 overhead")
	}
}
