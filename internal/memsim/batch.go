package memsim

import "radar/internal/model"

// BatchResult prices inference at a given batch size: detection runs once
// per weight-chunk load while compute scales with the batch, so the
// relative overhead shrinks — the paper's closing observation in §VII.A
// ("the time overhead can be further reduced in a multi-batch inference
// setting, where each chunk of weights is loaded once and used many
// times").
type BatchResult struct {
	// Batch is the batch size.
	Batch int
	// BaselineSec is batch-inference time without detection.
	BaselineSec float64
	// DetectionSec is the (batch-independent) detection time.
	DetectionSec float64
	// OverheadPct is detection relative to baseline.
	OverheadPct float64
}

// SimulateBatch prices RADAR at several batch sizes.
func (c CostModel) SimulateBatch(tab *model.ShapeTable, cfg RADARConfig, batches []int) []BatchResult {
	single := c.SimulateRADAR(tab, cfg)
	out := make([]BatchResult, 0, len(batches))
	for _, n := range batches {
		if n < 1 {
			n = 1
		}
		base := single.BaselineSec * float64(n)
		res := BatchResult{
			Batch:        n,
			BaselineSec:  base,
			DetectionSec: single.DetectionSec, // weights fetched & checked once
		}
		res.OverheadPct = 100 * res.DetectionSec / base
		out = append(out, res)
	}
	return out
}
