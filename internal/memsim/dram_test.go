package memsim

import "testing"

func TestDRAMSequentialRowHits(t *testing.T) {
	d := NewDRAMTiming()
	// Stream 64 KB sequentially: within each 8 KB row, 127 of 128 line
	// fills hit the open row.
	d.StreamCost(0, 64*1024)
	if rate := d.RowHitRate(); rate < 0.95 {
		t.Fatalf("sequential row-hit rate %.3f, want >0.95", rate)
	}
}

func TestDRAMLargeStrideConflicts(t *testing.T) {
	d := NewDRAMTiming()
	// Stride of one full row × banks: every access reopens a row in the
	// same bank → almost pure conflicts after warmup.
	stride := d.RowBytes * d.Banks
	d.GatherCost(0, 1000, stride)
	if d.RowHits > 10 {
		t.Fatalf("large-stride gather got %d row hits, want ~0", d.RowHits)
	}
}

func TestDRAMLatencyClasses(t *testing.T) {
	d := NewDRAMTiming()
	first := d.Access(0) // row miss: RCD + CAS
	if first != d.RCDLat+d.CASLat {
		t.Fatalf("cold access = %d, want %d", first, d.RCDLat+d.CASLat)
	}
	hit := d.Access(64) // same row
	if hit != d.CASLat {
		t.Fatalf("row hit = %d, want %d", hit, d.CASLat)
	}
	// Another row in the same bank: conflict.
	conflictAddr := uint64(d.RowBytes * d.Banks)
	conflict := d.Access(conflictAddr)
	if conflict != d.RPLat+d.RCDLat+d.CASLat {
		t.Fatalf("row conflict = %d, want %d", conflict, d.RPLat+d.RCDLat+d.CASLat)
	}
}

func TestDRAMBankParallelism(t *testing.T) {
	d := NewDRAMTiming()
	// Consecutive rows map to different banks, so sequential row-sized
	// jumps do not conflict.
	for i := 0; i < d.Banks; i++ {
		lat := d.Access(uint64(i * d.RowBytes))
		if lat != d.RCDLat+d.CASLat {
			t.Fatalf("bank %d first access = %d, want row miss cost", i, lat)
		}
	}
	if d.RowConflicts != 0 {
		t.Fatalf("unexpected conflicts: %d", d.RowConflicts)
	}
}

func TestDRAMReset(t *testing.T) {
	d := NewDRAMTiming()
	d.Access(0)
	d.Reset()
	if d.RowHits+d.RowMisses+d.RowConflicts != 0 {
		t.Fatal("counters not reset")
	}
	if lat := d.Access(0); lat != d.RCDLat+d.CASLat {
		t.Fatal("rows not closed by reset")
	}
}

// TestInterleaveGatherAsymmetryOnDevice demonstrates on the device model
// what the cost-model constants encode: a sequential checksum pass enjoys
// row-buffer locality while an interleaved gather at ResNet-18 stride
// mostly conflicts.
func TestInterleaveGatherAsymmetryOnDevice(t *testing.T) {
	// Sequential checksum pass over 1 MiB at line granularity.
	seq := NewDRAMTiming()
	accesses := 1 << 20 / 64
	perAccessSeq := float64(seq.StreamCost(0, 1<<20)) / float64(accesses)

	// Interleaved gather at ResNet-18 stride: G=512 on a 1 MiB layer puts
	// group members numGroups = 2048 bytes apart.
	gat := NewDRAMTiming()
	perAccessGather := float64(gat.GatherCost(0, accesses, 2048)) / float64(accesses)

	if perAccessGather <= perAccessSeq*1.2 {
		t.Fatalf("gather per-access cost %.2f should clearly exceed sequential %.2f",
			perAccessGather, perAccessSeq)
	}
}
