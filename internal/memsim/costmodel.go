package memsim

import (
	"radar/internal/model"
)

// CostModel prices inference and detection in cycles on the simulated
// system. Constants are calibrated once against the paper's gem5 baselines
// (ResNet-20: 66.3 ms; ResNet-18: 3.268 s at 1 GHz, batch 1) and then used
// unchanged for every overhead experiment; see EXPERIMENTS.md.
type CostModel struct {
	// ClockHz is the core clock (paper: 1 GHz).
	ClockHz float64
	// Cores is the core count available to parallel work (paper: 8).
	Cores int
	// CyclesPerMAC is the effective amortized compute cost of one
	// multiply-accumulate, including load/store and loop overhead, at the
	// parallelism the baseline system achieves.
	CyclesPerMAC float64
	// ChecksumCyclesPerWeight prices RADAR's per-weight work: load, key
	// lookup, conditional negate, accumulate.
	ChecksumCyclesPerWeight float64
	// GroupCycles prices RADAR's per-group work: truncate + compare.
	GroupCycles float64
	// CRCCyclesPerWeight prices bit-serial CRC over an 8-bit weight.
	CRCCyclesPerWeight float64
	// ParallelThreshold is the layer weight count above which detection
	// work spreads across all cores; smaller layers run on one core (the
	// fork/join overhead dominates otherwise).
	ParallelThreshold int
}

// DefaultCostModel returns the calibrated model.
func DefaultCostModel() CostModel {
	return CostModel{
		ClockHz:                 1e9,
		Cores:                   8,
		CyclesPerMAC:            1.70,
		ChecksumCyclesPerWeight: 9,
		GroupCycles:             4,
		CRCCyclesPerWeight:      50,
		ParallelThreshold:       100_000,
	}
}

// Seconds converts cycles to seconds at the model clock.
func (c CostModel) Seconds(cycles float64) float64 { return cycles / c.ClockHz }

// detectionCores returns the core count detection uses for a layer.
func (c CostModel) detectionCores(weights int) int {
	if weights >= c.ParallelThreshold {
		return c.Cores
	}
	return 1
}

// InferenceResult reports the simulated times of one configuration.
type InferenceResult struct {
	// BaselineSec is the unprotected inference time.
	BaselineSec float64
	// DetectionSec is the added detection time (Δ of Tables IV/V).
	DetectionSec float64
	// TotalSec is baseline + detection.
	TotalSec float64
}

// SimulateInference prices one batch-1 inference of the full-size model
// described by tab: compute cycles from the MAC counts plus the DRAM
// streaming of all weights through the hierarchy.
func (c CostModel) SimulateInference(tab *model.ShapeTable) InferenceResult {
	h := NewHierarchy()
	var cycles float64
	var addr uint64
	for _, l := range tab.Layers {
		compute := float64(l.MACs) * c.CyclesPerMAC
		mem := float64(h.StreamBytes(addr, l.Weights))
		addr += uint64(l.Weights)
		// Weight streaming overlaps compute (double buffering); the layer
		// is bound by the slower of the two.
		if compute > mem {
			cycles += compute
		} else {
			cycles += mem
		}
	}
	sec := c.Seconds(cycles)
	return InferenceResult{BaselineSec: sec, TotalSec: sec}
}

// RADARConfig selects the detection variant being priced.
type RADARConfig struct {
	// G is the group size.
	G int
	// Interleave prices the interleaved gather pass.
	Interleave bool
	// SigBits is 2 or 3 (cost identical; storage differs).
	SigBits int
}

// Interleave surcharge constants (cycles per weight). Interleaving adds
// index arithmetic on every weight plus a gather whose locality depends on
// whether the layer fits in the 64 KB L2: small CIFAR-scale layers gather
// out of cache cheaply, the multi-megabyte ImageNet layers walk DRAM. This
// is the paper's asymmetric interleave cost (Table IV: +1.1 ms on
// ResNet-20 vs +41 ms on ResNet-18).
const (
	interleaveIndexCycles = 4.0  // per-weight index arithmetic
	interleaveL2Gather    = 2.0  // per-weight gather, layer fits in L2
	interleaveDRAMGather  = 24.0 // per-weight gather, layer exceeds L2
	l2CapacityBytes       = 64 * 1024
)

// SimulateRADAR prices inference with RADAR detection embedded: the
// checksum accumulation rides the weight fetch; interleaving adds index
// math plus a gather priced by where the layer lives in the hierarchy.
func (c CostModel) SimulateRADAR(tab *model.ShapeTable, cfg RADARConfig) InferenceResult {
	base := c.SimulateInference(tab)
	var detCycles float64
	for _, l := range tab.Layers {
		cores := float64(c.detectionCores(l.Weights))
		groups := (l.Weights + cfg.G - 1) / cfg.G
		perWeight := c.ChecksumCyclesPerWeight
		if cfg.Interleave {
			perWeight += interleaveIndexCycles
			if l.Weights > l2CapacityBytes {
				perWeight += interleaveDRAMGather
			} else {
				perWeight += interleaveL2Gather
			}
		}
		cyc := float64(l.Weights)*perWeight + float64(groups)*c.GroupCycles
		detCycles += cyc / cores
	}
	det := c.Seconds(detCycles)
	return InferenceResult{
		BaselineSec:  base.BaselineSec,
		DetectionSec: det,
		TotalSec:     base.BaselineSec + det,
	}
}

// SimulateCRC prices inference with a bit-serial CRC check over every
// group. The CRC's shift-register dependency chain serializes within a
// group and the reference implementations check groups in fetch order on
// one core — the architectural disadvantage versus RADAR's trivially
// parallel additive checksum.
func (c CostModel) SimulateCRC(tab *model.ShapeTable, g int) InferenceResult {
	base := c.SimulateInference(tab)
	var detCycles float64
	for _, l := range tab.Layers {
		groups := (l.Weights + g - 1) / g
		detCycles += float64(l.Weights)*c.CRCCyclesPerWeight + float64(groups)*c.GroupCycles
	}
	det := c.Seconds(detCycles)
	return InferenceResult{
		BaselineSec:  base.BaselineSec,
		DetectionSec: det,
		TotalSec:     base.BaselineSec + det,
	}
}

// OverheadPercent returns the detection overhead relative to baseline.
func (r InferenceResult) OverheadPercent() float64 {
	if r.BaselineSec == 0 {
		return 0
	}
	return 100 * r.DetectionSec / r.BaselineSec
}
