// Package memsim is the system-level timing substrate standing in for the
// paper's gem5 simulation (8× Arm Cortex-M4F @ 1 GHz, 32 KB L1 + 64 KB L2;
// see DESIGN.md §1). It provides a trace-driven set-associative cache
// hierarchy, a bank/row-buffer DRAM device, and a calibrated cost model
// that prices inference, RADAR detection and CRC detection over the
// *full-size* ResNet-20/ResNet-18 layer shape tables — reproducing
// Table IV and Table V. The same substrate prices the attacker:
// internal/adversary's RateModel derives rowhammer flip throughput from
// DRAMTiming's row-conflict latency and CostModel's clock.
package memsim

// Cache is a set-associative cache with LRU replacement, simulated at
// line granularity.
type Cache struct {
	// LineSize is the cache line size in bytes.
	LineSize int
	// Sets is the number of sets.
	Sets int
	// Ways is the associativity.
	Ways int

	// tags[set][way] holds line tags; lru[set][way] holds recency stamps.
	tags  [][]uint64
	valid [][]bool
	lru   [][]uint64
	clock uint64

	// Hits and Misses count accesses.
	Hits, Misses uint64
}

// NewCache builds a cache of the given total size in bytes.
func NewCache(sizeBytes, lineSize, ways int) *Cache {
	sets := sizeBytes / lineSize / ways
	if sets < 1 {
		sets = 1
	}
	c := &Cache{LineSize: lineSize, Sets: sets, Ways: ways}
	c.tags = make([][]uint64, sets)
	c.valid = make([][]bool, sets)
	c.lru = make([][]uint64, sets)
	for i := range c.tags {
		c.tags[i] = make([]uint64, ways)
		c.valid[i] = make([]bool, ways)
		c.lru[i] = make([]uint64, ways)
	}
	return c
}

// Access touches the byte address and reports whether it hit. On a miss the
// line is installed (allocate-on-miss) with LRU eviction.
func (c *Cache) Access(addr uint64) bool {
	c.clock++
	line := addr / uint64(c.LineSize)
	set := int(line % uint64(c.Sets))
	tag := line / uint64(c.Sets)
	for w := 0; w < c.Ways; w++ {
		if c.valid[set][w] && c.tags[set][w] == tag {
			c.lru[set][w] = c.clock
			c.Hits++
			return true
		}
	}
	c.Misses++
	// Install with LRU eviction.
	victim := 0
	oldest := c.lru[set][0]
	for w := 0; w < c.Ways; w++ {
		if !c.valid[set][w] {
			victim = w
			break
		}
		if c.lru[set][w] < oldest {
			victim, oldest = w, c.lru[set][w]
		}
	}
	c.tags[set][victim] = tag
	c.valid[set][victim] = true
	c.lru[set][victim] = c.clock
	return false
}

// Reset clears contents and counters.
func (c *Cache) Reset() {
	for i := range c.tags {
		for w := range c.tags[i] {
			c.valid[i][w] = false
			c.lru[i][w] = 0
		}
	}
	c.Hits, c.Misses, c.clock = 0, 0, 0
}

// Hierarchy is an L1+L2+DRAM memory system with per-level latencies.
type Hierarchy struct {
	// L1 and L2 are the cache levels.
	L1, L2 *Cache
	// L1Lat, L2Lat and DRAMLat are access latencies in cycles.
	L1Lat, L2Lat, DRAMLat int
	// Cycles accumulates total memory stall cycles.
	Cycles uint64
}

// NewHierarchy builds the paper's memory system: 32 KB L1, 64 KB L2,
// 64-byte lines.
func NewHierarchy() *Hierarchy {
	return &Hierarchy{
		L1:    NewCache(32*1024, 64, 4),
		L2:    NewCache(64*1024, 64, 8),
		L1Lat: 1, L2Lat: 10, DRAMLat: 30,
	}
}

// Access simulates one byte access and returns its latency in cycles.
func (h *Hierarchy) Access(addr uint64) int {
	lat := h.L1Lat
	if !h.L1.Access(addr) {
		lat += h.L2Lat
		if !h.L2.Access(addr) {
			lat += h.DRAMLat
		}
	}
	h.Cycles += uint64(lat)
	return lat
}

// StreamBytes simulates a sequential read of n bytes starting at addr and
// returns the total latency. Only one access per cache line is charged
// (hardware streams within a line).
func (h *Hierarchy) StreamBytes(addr uint64, n int) uint64 {
	var total uint64
	line := uint64(h.L1.LineSize)
	for off := uint64(0); off < uint64(n); off += line {
		total += uint64(h.Access(addr + off))
	}
	return total
}

// StrideBytes simulates n accesses with the given byte stride starting at
// addr (the interleaved gather pattern) and returns total latency. The
// production cost model prices interleave gathers analytically (see the
// interleave surcharge constants in costmodel.go); this trace-driven form
// is kept as the reference those constants are validated against in the
// package tests.
func (h *Hierarchy) StrideBytes(addr uint64, n, stride int) uint64 {
	var total uint64
	for i := 0; i < n; i++ {
		total += uint64(h.Access(addr + uint64(i*stride)))
	}
	return total
}

// Reset clears both cache levels and the stall counter.
func (h *Hierarchy) Reset() {
	h.L1.Reset()
	h.L2.Reset()
	h.Cycles = 0
}
