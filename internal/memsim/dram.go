package memsim

// DRAMTiming models a DDR-style device at the granularity Table IV/V
// need: banks with open-row buffers, where an access to the open row costs
// a CAS latency only, and a row conflict pays precharge + activate + CAS.
// It refines the flat DRAMLat of Hierarchy for traffic-pattern studies
// (sequential streams hit the row buffer almost always; interleaved
// gathers with large strides conflict constantly — the microarchitectural
// root of the paper's asymmetric interleave cost). It also prices the
// attacker: alternating activations of two rows in one bank are all row
// conflicts, which is what makes rowhammer both effective and slow, and
// internal/adversary's RateModel turns that conflict latency into a
// flips-per-scrub-window budget.
type DRAMTiming struct {
	// Banks is the number of banks.
	Banks int
	// RowBytes is the row-buffer size.
	RowBytes int
	// CASLat, RPLat and RCDLat are the access-phase latencies in cycles.
	CASLat, RPLat, RCDLat int

	openRow []int64 // per bank; -1 = closed
	// RowHits and RowConflicts count access outcomes.
	RowHits, RowConflicts, RowMisses uint64
}

// NewDRAMTiming builds a DDR3-1600-like device at a 1 GHz core clock.
func NewDRAMTiming() *DRAMTiming {
	d := &DRAMTiming{
		Banks: 8, RowBytes: 8192,
		CASLat: 14, RPLat: 14, RCDLat: 14,
	}
	d.openRow = make([]int64, d.Banks)
	for i := range d.openRow {
		d.openRow[i] = -1
	}
	return d
}

// Access returns the latency of reading the byte address under an
// open-page policy.
func (d *DRAMTiming) Access(addr uint64) int {
	rowGlobal := int64(addr) / int64(d.RowBytes)
	bank := int(rowGlobal) % d.Banks
	row := rowGlobal / int64(d.Banks)
	switch d.openRow[bank] {
	case row:
		d.RowHits++
		return d.CASLat
	case -1:
		d.RowMisses++
		d.openRow[bank] = row
		return d.RCDLat + d.CASLat
	default:
		d.RowConflicts++
		d.openRow[bank] = row
		return d.RPLat + d.RCDLat + d.CASLat
	}
}

// Reset closes all rows and clears counters.
func (d *DRAMTiming) Reset() {
	for i := range d.openRow {
		d.openRow[i] = -1
	}
	d.RowHits, d.RowConflicts, d.RowMisses = 0, 0, 0
}

// StreamCost returns the total cycles to read n sequential bytes at line
// granularity (64 B per access, the cache-line fill unit).
func (d *DRAMTiming) StreamCost(addr uint64, n int) uint64 {
	var total uint64
	for off := 0; off < n; off += 64 {
		total += uint64(d.Access(addr + uint64(off)))
	}
	return total
}

// GatherCost returns the total cycles for n accesses with the given byte
// stride — the interleaved checksum's access pattern.
func (d *DRAMTiming) GatherCost(addr uint64, n, stride int) uint64 {
	var total uint64
	for i := 0; i < n; i++ {
		total += uint64(d.Access(addr + uint64(i*stride)))
	}
	return total
}

// RowHitRate returns the fraction of accesses served from open rows.
func (d *DRAMTiming) RowHitRate() float64 {
	total := d.RowHits + d.RowConflicts + d.RowMisses
	if total == 0 {
		return 0
	}
	return float64(d.RowHits) / float64(total)
}
