package exp

import (
	"fmt"
	"strings"
	"time"

	"radar/internal/core"
	"radar/internal/model"
	"radar/internal/qinfer"
)

// EngineParityResult validates the int8 integer inference engine (the
// deployment form of the protected model) against the float reference, and
// shows that attack + RADAR recovery act on the same int8 image the engine
// consumes.
type EngineParityResult struct {
	// FloatAcc and Int8Acc are clean accuracies of the two engines.
	FloatAcc, Int8Acc float64
	// Agreement is the top-1 prediction agreement between them.
	Agreement float64
	// Int8Attacked and Int8Recovered trace the attack on the int8 engine.
	Int8Attacked, Int8Recovered float64
}

// EngineParity compiles the int8 engine for the ResNet-20 substitute and
// runs the attack/recovery timeline through it.
func EngineParity(c *Context) EngineParityResult {
	b := model.Load(specFor(ModelRN20))
	eval := c.EvalSet(ModelRN20)
	calib, _ := b.Attack.Batch(0, 64)
	engine, err := qinfer.Compile(b.Net, b.QModel, calib)
	if err != nil {
		panic("exp: engine compile failed: " + err.Error())
	}
	x, labels := eval.Batch(0, eval.Len())

	var res EngineParityResult
	floatOut := b.Net.Forward(x, false)
	intOut := engine.Forward(x)
	k := floatOut.Shape[1]
	fOK, iOK, agree := 0, 0, 0
	for i := range labels {
		fp := floatOut.Argmax(i*k, k)
		ip := intOut.Argmax(i*k, k)
		if fp == labels[i] {
			fOK++
		}
		if ip == labels[i] {
			iOK++
		}
		if fp == ip {
			agree++
		}
	}
	n := float64(len(labels))
	res.FloatAcc = float64(fOK) / n
	res.Int8Acc = float64(iOK) / n
	res.Agreement = float64(agree) / n

	// Attack + recovery operate on b.QModel — the engine aliases its int8
	// storage, so no recompilation is needed.
	prot := core.Protect(b.QModel, core.DefaultConfig(ScaledG(ModelRN20, 8)))
	ApplyProfile(b, c.Profiles(ModelRN20)[0])
	res.Int8Attacked = engine.Accuracy(x, labels)
	prot.DetectAndRecover()
	res.Int8Recovered = engine.Accuracy(x, labels)
	return res
}

// Render prints the parity table.
func (r EngineParityResult) Render() string {
	var sb strings.Builder
	sb.WriteString("int8 engine validation (ResNet-20s)\n")
	sb.WriteString(row("float accuracy", pct(r.FloatAcc)) + "\n")
	sb.WriteString(row("int8 accuracy", pct(r.Int8Acc)) + "\n")
	sb.WriteString(row("top-1 agreement", pct(r.Agreement)) + "\n")
	sb.WriteString(row("int8 attacked", pct(r.Int8Attacked)) + "\n")
	sb.WriteString(row("int8 recovered", pct(r.Int8Recovered)) + "\n")
	return sb.String()
}

// SoftwareOverheadResult measures, in real wall-clock on the host, the
// cost of a full RADAR scan relative to one batch-1 float inference of the
// same model — corroborating the "<2%" claim with an actual software
// implementation rather than the cost model. Host numbers are not gem5
// numbers; the point is the ratio.
type SoftwareOverheadResult struct {
	// InferenceSec and ScanSec are medians over Repeats runs.
	InferenceSec, ScanSec float64
	// OverheadPct is scan relative to inference.
	OverheadPct float64
	// Repeats is the measurement count.
	Repeats int
}

// SoftwareOverhead measures the ResNet-18 substitute.
func SoftwareOverhead() SoftwareOverheadResult {
	b := model.Load(model.ResNet18sSpec())
	prot := core.Protect(b.QModel, core.DefaultConfig(ScaledG(ModelRN18, 512)))
	x, _ := b.Test.Batch(0, 1)

	res := SoftwareOverheadResult{Repeats: 5}
	res.InferenceSec = medianSeconds(res.Repeats, func() { b.Net.Forward(x, false) })
	res.ScanSec = medianSeconds(res.Repeats, func() { prot.Scan() })
	if res.InferenceSec > 0 {
		res.OverheadPct = 100 * res.ScanSec / res.InferenceSec
	}
	return res
}

func medianSeconds(n int, fn func()) float64 {
	times := make([]time.Duration, n)
	for i := range times {
		t0 := time.Now()
		fn()
		times[i] = time.Since(t0)
	}
	// insertion sort (n is tiny)
	for i := 1; i < n; i++ {
		for j := i; j > 0 && times[j] < times[j-1]; j-- {
			times[j], times[j-1] = times[j-1], times[j]
		}
	}
	return times[n/2].Seconds()
}

// Render prints the software measurement.
func (r SoftwareOverheadResult) Render() string {
	var sb strings.Builder
	sb.WriteString("Software scan overhead (host wall-clock, ResNet-18s, batch 1)\n")
	sb.WriteString(row("inference", fmt.Sprintf("%.3fms", 1000*r.InferenceSec)) + "\n")
	sb.WriteString(row("full scan", fmt.Sprintf("%.3fms", 1000*r.ScanSec)) + "\n")
	sb.WriteString(row("overhead", fmt.Sprintf("%.2f%%", r.OverheadPct)) + "\n")
	return sb.String()
}
