package exp

import (
	"strings"
	"testing"
)

func TestMaskingAblationShowsMaskingValue(t *testing.T) {
	opt := Quick()
	opt.MissRounds = 20_000
	r := MaskingAblation(opt)
	// Without masking an opposite-direction pair cancels deterministically.
	if r.DetectedUnmasked != 0 {
		t.Fatalf("unmasked checksum detected %d of %d cancelling pairs (expected 0)",
			r.DetectedUnmasked, r.Rounds)
	}
	// With a random key the pair survives when the two key bits differ
	// (≈50% of pairs). Allow wide slack around 0.5.
	rate := float64(r.DetectedMasked) / float64(r.Rounds)
	if rate < 0.3 || rate > 0.7 {
		t.Fatalf("masked detection rate %.3f outside [0.3, 0.7]", rate)
	}
	if !strings.Contains(r.Render(), "Masking ablation") {
		t.Fatal("render malformed")
	}
}

func TestBatchAmortizationMonotone(t *testing.T) {
	r := BatchAmortization()
	for name, rows := range r.Rows {
		if len(rows) < 2 {
			t.Fatalf("%s: too few batch points", name)
		}
		for i := 1; i < len(rows); i++ {
			if rows[i].OverheadPct >= rows[i-1].OverheadPct {
				t.Errorf("%s: overhead not decreasing with batch: B=%d %.3f%% vs B=%d %.3f%%",
					name, rows[i].Batch, rows[i].OverheadPct, rows[i-1].Batch, rows[i-1].OverheadPct)
			}
		}
		// Detection time itself is batch-independent.
		if rows[0].DetectionSec != rows[len(rows)-1].DetectionSec {
			t.Errorf("%s: detection time should not scale with batch", name)
		}
	}
	if !strings.Contains(r.Render(), "Batch amortization") {
		t.Fatal("render malformed")
	}
}

func TestSigBitsAblationTradeoff(t *testing.T) {
	opt := Quick()
	opt.MissRounds = 20_000
	r := SigBitsAblation(opt)
	// 3-bit signatures cost exactly 1.5× the 2-bit storage.
	ratio := r.Storage3KB / r.Storage2KB
	if ratio < 1.49 || ratio > 1.51 {
		t.Fatalf("storage ratio %.3f, want 1.5", ratio)
	}
	// 3-bit must catch every MSB-1 single flip; 2-bit roughly half.
	if r.Detect3 < 0.999 {
		t.Fatalf("3-bit MSB-1 detection %.4f, want ~1.0", r.Detect3)
	}
	if r.Detect2 < 0.3 || r.Detect2 > 0.7 {
		t.Fatalf("2-bit MSB-1 detection %.3f outside [0.3, 0.7]", r.Detect2)
	}
	if !strings.Contains(r.Render(), "Signature-width") {
		t.Fatal("render malformed")
	}
}

func TestRuntimeDetectionBeatsPeriodic(t *testing.T) {
	r := RuntimeDetection(sharedCtx)
	if r.PeriodicAccuracy >= r.Clean-0.05 {
		t.Fatalf("attack after periodic scan should hurt accuracy: clean %.2f periodic %.2f",
			r.Clean, r.PeriodicAccuracy)
	}
	if r.EmbeddedAccuracy <= r.PeriodicAccuracy {
		t.Fatalf("embedded detection (%.2f) must beat periodic (%.2f)",
			r.EmbeddedAccuracy, r.PeriodicAccuracy)
	}
	if r.EmbeddedDetected < r.Flips-2 {
		t.Fatalf("embedded scan caught only %d of %d flips", r.EmbeddedDetected, r.Flips)
	}
	if !strings.Contains(r.Render(), "Run-time vs periodic") {
		t.Fatal("render malformed")
	}
}

func TestEngineParity(t *testing.T) {
	r := EngineParity(sharedCtx)
	if r.Agreement < 0.85 {
		t.Fatalf("int8/float agreement %.3f too low", r.Agreement)
	}
	if diff := r.FloatAcc - r.Int8Acc; diff > 0.08 || diff < -0.08 {
		t.Fatalf("int8 accuracy %.3f far from float %.3f", r.Int8Acc, r.FloatAcc)
	}
	if r.Int8Attacked >= r.Int8Acc-0.1 {
		t.Fatalf("attack barely moved the int8 engine: %.3f vs %.3f", r.Int8Attacked, r.Int8Acc)
	}
	if r.Int8Recovered < r.Int8Attacked {
		t.Fatalf("recovery hurt the int8 engine: %.3f < %.3f", r.Int8Recovered, r.Int8Attacked)
	}
	if !strings.Contains(r.Render(), "int8 engine") {
		t.Fatal("render malformed")
	}
}

func TestSoftwareOverheadSmall(t *testing.T) {
	r := SoftwareOverhead()
	if r.InferenceSec <= 0 || r.ScanSec <= 0 {
		t.Fatal("non-positive timings")
	}
	// A 394k-weight scan must be far cheaper than a conv inference; the
	// paper's claim is <2% on gem5, software slack allows <25% here.
	if r.OverheadPct > 25 {
		t.Fatalf("software scan overhead %.1f%% implausibly high", r.OverheadPct)
	}
	if !strings.Contains(r.Render(), "Software scan overhead") {
		t.Fatal("render malformed")
	}
}
