package exp

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"radar/internal/attack"
	"radar/internal/core"
	"radar/internal/model"
	"radar/internal/qinfer"
	"radar/internal/quant"
	"radar/internal/rowhammer"
	"radar/internal/serve"
	"radar/internal/tensor"
)

// ServeRun is one serving configuration's measured throughput under a live
// bit-flip adversary.
type ServeRun struct {
	// Name labels the configuration.
	Name string `json:"name"`
	// Scrub / Verify record which protections were active.
	Scrub  bool `json:"scrub"`
	Verify bool `json:"verify"`
	// Requests answered over Seconds of wall time → RPS.
	Requests int     `json:"requests"`
	Seconds  float64 `json:"seconds"`
	RPS      float64 `json:"rps"`
	// P50Ms / P99Ms are end-to-end request latencies.
	P50Ms float64 `json:"p50_ms"`
	P99Ms float64 `json:"p99_ms"`
	// AvgBatch is the mean coalesced batch size.
	AvgBatch float64 `json:"avg_batch"`
	// GroupsFlagged / WeightsZeroed count what the protection caught
	// during the run (0 for the unprotected baseline).
	GroupsFlagged int64 `json:"groups_flagged"`
	WeightsZeroed int64 `json:"weights_zeroed"`
	// ResidualFlagged counts groups still corrupt after traffic stopped
	// (found by a final quiesced sweep; expected 0 when any protection is
	// on, and > 0 for the unprotected baseline under attack).
	ResidualFlagged int `json:"residual_flagged"`
	// MetricsScrapes counts full registry expositions taken concurrently
	// with traffic (one at start, then one per second) — the scrape path
	// runs inside the measured window, so its cost shows up in RPS.
	MetricsScrapes int `json:"metrics_scrapes,omitempty"`
}

// ServeMultiModel is the multi-model scenario's result: N independently
// protected models served from one Service (one scrubber + verifier per
// model behind the routing front-end), concurrent clients spreading
// traffic across all of them, and the adversary attacking every model.
type ServeMultiModel struct {
	// Models is how many models shared the process.
	Models int `json:"models"`
	// Requests / Seconds / RPS aggregate across all models.
	Requests int     `json:"requests"`
	Seconds  float64 `json:"seconds"`
	RPS      float64 `json:"rps"`
	// AsyncJobs counts requests that went through the async job API
	// (Submit/Wait) rather than sync Infer.
	AsyncJobs int `json:"async_jobs"`
	// PerModel holds each model's own flagged/residual accounting.
	PerModel []ServeRun `json:"per_model"`
}

// ServeScalingResult is the serving benchmark: requests/sec of the
// protected inference service with the scrubber and the verified
// weight-fetch path toggled, while a rowhammer adversary flips MSBs
// mid-traffic — plus the multi-model scenario. It is the machine-readable
// seed of the BENCH_*.json trajectory.
type ServeScalingResult struct {
	// Model names the served zoo model.
	Model string `json:"model"`
	// GOMAXPROCS records the host parallelism the numbers were taken at.
	GOMAXPROCS int `json:"gomaxprocs"`
	// Clients is the number of concurrent request streams.
	Clients int `json:"clients"`
	// RequestsPerRun is the traffic volume each configuration serves.
	RequestsPerRun int `json:"requests_per_run"`
	// FlipsPerRound / AttackRounds describe the adversary.
	FlipsPerRound int `json:"flips_per_round"`
	AttackRounds  int `json:"attack_rounds"`
	// Runs holds one entry per single-model configuration.
	Runs []ServeRun `json:"runs"`
	// Multi is the multi-model scenario (all protections on).
	Multi ServeMultiModel `json:"multi"`
}

// ServeScaling measures the serving subsystem end to end on the tiny zoo
// model: four single-model configurations (unprotected, scrubber-only,
// verified-fetch-only, both) each serve the same traffic volume from
// concurrent clients while an adversary mounts MSB flips every few
// requests; then the multi-model scenario serves the same total volume
// across two fully-protected models in one Service, mixing sync inference
// with async jobs. Off-configurations measure the protection's overhead
// honestly: the attack still runs, the defense just doesn't.
func ServeScaling() ServeScalingResult {
	const (
		clients       = 4
		perClient     = 60
		flipsPerRound = 4
		attackEvery   = 40 // requests between attack rounds
	)
	res := ServeScalingResult{
		Model:          "tiny",
		GOMAXPROCS:     runtime.GOMAXPROCS(0),
		Clients:        clients,
		RequestsPerRun: clients * perClient,
		FlipsPerRound:  flipsPerRound,
	}

	configs := []struct {
		name          string
		scrub, verify bool
	}{
		{"baseline", false, false},
		{"scrub", true, false},
		{"verify", false, true},
		{"scrub+verify", true, true},
	}
	for _, c := range configs {
		res.Runs = append(res.Runs, serveOneRun(c.name, c.scrub, c.verify,
			clients, perClient, flipsPerRound, attackEvery, &res.AttackRounds))
	}
	res.Multi = serveMultiRun(2, clients, perClient, flipsPerRound, attackEvery)
	return res
}

// tinyServeModel loads an independent tiny bundle and wraps it for serving.
func tinyServeModel(scrub, verify bool) (*model.Bundle, *qinfer.Engine, *core.Protector, serve.Config) {
	b := model.Load(model.TinySpec())
	calib, _ := b.Attack.Batch(0, 64)
	eng, err := qinfer.Compile(b.Net, b.QModel, calib)
	if err != nil {
		panic(err)
	}
	prot := core.Protect(b.QModel, core.DefaultConfig(8))
	cfg := serve.DefaultConfig()
	cfg.VerifiedFetch = verify
	if scrub {
		cfg.ScrubInterval = 2 * time.Millisecond
	} else {
		cfg.ScrubInterval = 0
	}
	return b, eng, prot, cfg
}

func serveOneRun(name string, scrub, verify bool, clients, perClient, flipsPerRound, attackEvery int, rounds *int) ServeRun {
	b, eng, prot, cfg := tinyServeModel(scrub, verify)
	svc, err := serve.Open(serve.WithModel("tiny", eng, prot, serve.WithConfig(cfg)))
	if err != nil {
		panic(err)
	}

	// Adversary state: a stream of MSB flips mounted through simulated
	// DRAM every attackEvery answered requests.
	atk := model.Load(model.TinySpec())
	dram := rowhammer.New(b.QModel, rowhammer.DefaultGeometry(), 17)
	profiles := attack.RandomMSB(atk.QModel, flipsPerRound*8, 41).Addresses()

	x, _ := b.Test.Batch(0, 32)
	vol := tensor.Volume(x.Shape[1:])
	input := func(i int) *tensor.Tensor {
		t := tensor.New(x.Shape[1:]...)
		copy(t.Data, x.Data[(i%32)*vol:(i%32+1)*vol])
		return t
	}

	// Scrape concurrently with traffic, Prometheus-style: once up front,
	// then every second — the exposition cost lands inside the measured
	// window, so a scrape-path regression shows up in the RPS gate.
	var scrapes atomic.Int64
	scrapeStop := make(chan struct{})
	var scrapeWG sync.WaitGroup
	scrapeWG.Add(1)
	go func() {
		defer scrapeWG.Done()
		t := time.NewTicker(time.Second)
		defer t.Stop()
		svc.WriteMetrics(io.Discard)
		scrapes.Add(1)
		for {
			select {
			case <-scrapeStop:
				return
			case <-t.C:
				svc.WriteMetrics(io.Discard)
				scrapes.Add(1)
			}
		}
	}()

	ctx := context.Background()
	var served int64
	var mu sync.Mutex
	attacks := 0
	t0 := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				if _, err := svc.Infer(ctx, serve.Request{Input: input(c*perClient + i)}); err != nil {
					return
				}
				mu.Lock()
				served++
				if served%int64(attackEvery) == 0 {
					lo := (attacks * flipsPerRound) % len(profiles)
					batch := profiles[lo : lo+flipsPerRound]
					attacks++
					mu.Unlock()
					svc.Inject("tiny", func(m *quant.Model) { dram.MountProfile(batch); dram.Refresh() })
					continue
				}
				mu.Unlock()
			}
		}(c)
	}
	wg.Wait()
	dt := time.Since(t0)
	close(scrapeStop)
	scrapeWG.Wait()
	snap, _ := svc.Snapshot("tiny")
	svc.Close()
	*rounds = attacks

	// Quiesced sweep: how much corruption survived the run? Stats are
	// snapshotted first so the sweep's own finds don't inflate them.
	st := prot.Stats()
	residual, _ := prot.DetectAndRecover()
	return ServeRun{
		Name:            name,
		Scrub:           scrub,
		Verify:          verify,
		Requests:        int(snap.Requests),
		Seconds:         dt.Seconds(),
		RPS:             float64(snap.Requests) / dt.Seconds(),
		P50Ms:           snap.P50Ms,
		P99Ms:           snap.P99Ms,
		AvgBatch:        snap.AvgBatch,
		GroupsFlagged:   st.GroupsFlagged,
		WeightsZeroed:   st.WeightsZeroed,
		ResidualFlagged: len(residual),
		MetricsScrapes:  int(scrapes.Load()),
	}
}

// serveMultiRun is the multi-model scenario: n fully-protected tiny
// models behind one Service, the same total traffic volume spread across
// them (every fourth request via the async job API), and the adversary
// alternating its attack target across models. Each model has its own
// scrubber and verifier; the scrub budget is whatever the shared host
// gives the n loops.
func serveMultiRun(n, clients, perClient, flipsPerRound, attackEvery int) ServeMultiModel {
	names := make([]string, n)
	bundles := make([]*model.Bundle, n)
	prots := make([]*core.Protector, n)
	opts := []serve.ServiceOption{}
	for i := 0; i < n; i++ {
		names[i] = fmt.Sprintf("m%d", i)
		b, eng, prot, cfg := tinyServeModel(true, true)
		bundles[i], prots[i] = b, prot
		opts = append(opts, serve.WithModel(names[i], eng, prot, serve.WithConfig(cfg)))
	}
	svc, err := serve.Open(opts...)
	if err != nil {
		panic(err)
	}

	atk := model.Load(model.TinySpec())
	profiles := attack.RandomMSB(atk.QModel, flipsPerRound*8, 43).Addresses()
	drams := make([]*rowhammer.DRAM, n)
	for i := range drams {
		drams[i] = rowhammer.New(bundles[i].QModel, rowhammer.DefaultGeometry(), int64(19+i))
	}

	x, _ := bundles[0].Test.Batch(0, 32)
	vol := tensor.Volume(x.Shape[1:])
	input := func(i int) *tensor.Tensor {
		t := tensor.New(x.Shape[1:]...)
		copy(t.Data, x.Data[(i%32)*vol:(i%32+1)*vol])
		return t
	}

	ctx := context.Background()
	var served, asyncJobs int64
	var mu sync.Mutex
	attacks := 0
	t0 := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				seq := c*perClient + i
				req := serve.Request{Model: names[seq%n], Input: input(seq)}
				var err error
				if seq%4 == 3 {
					// Async path: submit, then wait — exercises the job
					// table under the same load.
					var id serve.JobID
					if id, err = svc.Submit(ctx, req); err == nil {
						_, err = svc.Wait(ctx, id)
						mu.Lock()
						asyncJobs++
						mu.Unlock()
					}
				} else {
					_, err = svc.Infer(ctx, req)
				}
				if err != nil {
					return
				}
				mu.Lock()
				served++
				if served%int64(attackEvery) == 0 {
					lo := (attacks * flipsPerRound) % len(profiles)
					batch := profiles[lo : lo+flipsPerRound]
					target := attacks % n
					attacks++
					mu.Unlock()
					svc.Inject(names[target], func(m *quant.Model) {
						drams[target].MountProfile(batch)
						drams[target].Refresh()
					})
					continue
				}
				mu.Unlock()
			}
		}(c)
	}
	wg.Wait()
	dt := time.Since(t0)

	out := ServeMultiModel{Models: n, Seconds: dt.Seconds(), AsyncJobs: int(asyncJobs)}
	snaps := make([]serve.Snapshot, n)
	for i, name := range names {
		snaps[i], _ = svc.Snapshot(name)
		out.Requests += int(snaps[i].Requests)
	}
	svc.Close()
	out.RPS = float64(out.Requests) / dt.Seconds()
	for i, name := range names {
		st := prots[i].Stats()
		residual, _ := prots[i].DetectAndRecover()
		out.PerModel = append(out.PerModel, ServeRun{
			Name:            name,
			Scrub:           true,
			Verify:          true,
			Requests:        int(snaps[i].Requests),
			RPS:             float64(snaps[i].Requests) / dt.Seconds(),
			P50Ms:           snaps[i].P50Ms,
			P99Ms:           snaps[i].P99Ms,
			AvgBatch:        snaps[i].AvgBatch,
			GroupsFlagged:   st.GroupsFlagged,
			WeightsZeroed:   st.WeightsZeroed,
			ResidualFlagged: len(residual),
		})
	}
	return out
}

// Render prints the sweep in the repo's table layout.
func (r ServeScalingResult) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Serving under attack — %s model, %d clients × %d requests, %d MSB flips per attack round (GOMAXPROCS=%d)\n",
		r.Model, r.Clients, r.RequestsPerRun/r.Clients, r.FlipsPerRound, r.GOMAXPROCS)
	sb.WriteString(row("config", "req/s", "p50", "p99", "avg batch", "flagged", "residual") + "\n")
	for _, run := range r.Runs {
		sb.WriteString(row(
			run.Name,
			fmt.Sprintf("%.0f", run.RPS),
			fmt.Sprintf("%.1fms", run.P50Ms),
			fmt.Sprintf("%.1fms", run.P99Ms),
			fmt.Sprintf("%.1f", run.AvgBatch),
			fmt.Sprintf("%d", run.GroupsFlagged),
			fmt.Sprintf("%d", run.ResidualFlagged),
		) + "\n")
	}
	fmt.Fprintf(&sb, "\nMulti-model: %d models in one service, %d requests (%d via async jobs) at %.0f req/s aggregate\n",
		r.Multi.Models, r.Multi.Requests, r.Multi.AsyncJobs, r.Multi.RPS)
	for _, run := range r.Multi.PerModel {
		sb.WriteString(row(
			run.Name,
			fmt.Sprintf("%.0f", run.RPS),
			fmt.Sprintf("%.1fms", run.P50Ms),
			fmt.Sprintf("%.1fms", run.P99Ms),
			fmt.Sprintf("%.1f", run.AvgBatch),
			fmt.Sprintf("%d", run.GroupsFlagged),
			fmt.Sprintf("%d", run.ResidualFlagged),
		) + "\n")
	}
	return sb.String()
}

// WriteJSON writes the result as indented JSON — the machine-readable
// BENCH artifact consumed by the benchmark trajectory.
func (r ServeScalingResult) WriteJSON(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
