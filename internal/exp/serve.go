package exp

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strings"
	"sync"
	"time"

	"radar/internal/attack"
	"radar/internal/core"
	"radar/internal/model"
	"radar/internal/qinfer"
	"radar/internal/quant"
	"radar/internal/rowhammer"
	"radar/internal/serve"
	"radar/internal/tensor"
)

// ServeRun is one serving configuration's measured throughput under a live
// bit-flip adversary.
type ServeRun struct {
	// Name labels the configuration.
	Name string `json:"name"`
	// Scrub / Verify record which protections were active.
	Scrub  bool `json:"scrub"`
	Verify bool `json:"verify"`
	// Requests answered over Seconds of wall time → RPS.
	Requests int     `json:"requests"`
	Seconds  float64 `json:"seconds"`
	RPS      float64 `json:"rps"`
	// P50Ms / P99Ms are end-to-end request latencies.
	P50Ms float64 `json:"p50_ms"`
	P99Ms float64 `json:"p99_ms"`
	// AvgBatch is the mean coalesced batch size.
	AvgBatch float64 `json:"avg_batch"`
	// GroupsFlagged / WeightsZeroed count what the protection caught
	// during the run (0 for the unprotected baseline).
	GroupsFlagged int64 `json:"groups_flagged"`
	WeightsZeroed int64 `json:"weights_zeroed"`
	// ResidualFlagged counts groups still corrupt after traffic stopped
	// (found by a final quiesced sweep; expected 0 when any protection is
	// on, and > 0 for the unprotected baseline under attack).
	ResidualFlagged int `json:"residual_flagged"`
}

// ServeScalingResult is the serving benchmark: requests/sec of the
// protected inference server with the scrubber and the verified
// weight-fetch path toggled, while a rowhammer adversary flips MSBs
// mid-traffic. It is the machine-readable seed of the BENCH_*.json
// trajectory.
type ServeScalingResult struct {
	// Model names the served zoo model.
	Model string `json:"model"`
	// GOMAXPROCS records the host parallelism the numbers were taken at.
	GOMAXPROCS int `json:"gomaxprocs"`
	// Clients is the number of concurrent request streams.
	Clients int `json:"clients"`
	// RequestsPerRun is the traffic volume each configuration serves.
	RequestsPerRun int `json:"requests_per_run"`
	// FlipsPerRound / AttackRounds describe the adversary.
	FlipsPerRound int `json:"flips_per_round"`
	AttackRounds  int `json:"attack_rounds"`
	// Runs holds one entry per configuration.
	Runs []ServeRun `json:"runs"`
}

// ServeScaling measures the serving subsystem end to end on the tiny zoo
// model: four configurations (unprotected, scrubber-only, verified-fetch-
// only, both) each serve the same traffic volume from concurrent clients
// while an adversary mounts MSB flips every few requests. Off-
// configurations measure the protection's overhead honestly: the attack
// still runs, the defense just doesn't.
func ServeScaling() ServeScalingResult {
	const (
		clients       = 4
		perClient     = 60
		flipsPerRound = 4
		attackEvery   = 40 // requests between attack rounds
	)
	res := ServeScalingResult{
		Model:          "tiny",
		GOMAXPROCS:     runtime.GOMAXPROCS(0),
		Clients:        clients,
		RequestsPerRun: clients * perClient,
		FlipsPerRound:  flipsPerRound,
	}

	configs := []struct {
		name          string
		scrub, verify bool
	}{
		{"baseline", false, false},
		{"scrub", true, false},
		{"verify", false, true},
		{"scrub+verify", true, true},
	}
	for _, c := range configs {
		res.Runs = append(res.Runs, serveOneRun(c.name, c.scrub, c.verify,
			clients, perClient, flipsPerRound, attackEvery, &res.AttackRounds))
	}
	return res
}

func serveOneRun(name string, scrub, verify bool, clients, perClient, flipsPerRound, attackEvery int, rounds *int) ServeRun {
	b := model.Load(model.TinySpec())
	calib, _ := b.Attack.Batch(0, 64)
	eng, err := qinfer.Compile(b.Net, b.QModel, calib)
	if err != nil {
		panic(err)
	}
	prot := core.Protect(b.QModel, core.DefaultConfig(8))

	cfg := serve.DefaultConfig()
	cfg.VerifiedFetch = verify
	if scrub {
		cfg.ScrubInterval = 2 * time.Millisecond
	} else {
		cfg.ScrubInterval = 0
	}
	srv := serve.New(eng, prot, cfg)
	srv.Start()

	// Adversary state: a stream of MSB flips mounted through simulated
	// DRAM every attackEvery answered requests.
	atk := model.Load(model.TinySpec())
	dram := rowhammer.New(b.QModel, rowhammer.DefaultGeometry(), 17)
	profiles := attack.RandomMSB(atk.QModel, flipsPerRound*8, 41).Addresses()

	x, _ := b.Test.Batch(0, 32)
	vol := tensor.Volume(x.Shape[1:])
	input := func(i int) *tensor.Tensor {
		t := tensor.New(x.Shape[1:]...)
		copy(t.Data, x.Data[(i%32)*vol:(i%32+1)*vol])
		return t
	}

	var served int64
	var mu sync.Mutex
	attacks := 0
	t0 := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				if _, err := srv.Infer(input(c*perClient + i)); err != nil {
					return
				}
				mu.Lock()
				served++
				if served%int64(attackEvery) == 0 {
					lo := (attacks * flipsPerRound) % len(profiles)
					batch := profiles[lo : lo+flipsPerRound]
					attacks++
					mu.Unlock()
					srv.Inject(func(m *quant.Model) { dram.MountProfile(batch); dram.Refresh() })
					continue
				}
				mu.Unlock()
			}
		}(c)
	}
	wg.Wait()
	dt := time.Since(t0)
	snap := srv.Snapshot()
	srv.Stop()
	*rounds = attacks

	// Quiesced sweep: how much corruption survived the run? Stats are
	// snapshotted first so the sweep's own finds don't inflate them.
	st := prot.Stats()
	residual, _ := prot.DetectAndRecover()
	return ServeRun{
		Name:            name,
		Scrub:           scrub,
		Verify:          verify,
		Requests:        int(snap.Requests),
		Seconds:         dt.Seconds(),
		RPS:             float64(snap.Requests) / dt.Seconds(),
		P50Ms:           snap.P50Ms,
		P99Ms:           snap.P99Ms,
		AvgBatch:        snap.AvgBatch,
		GroupsFlagged:   st.GroupsFlagged,
		WeightsZeroed:   st.WeightsZeroed,
		ResidualFlagged: len(residual),
	}
}

// Render prints the sweep in the repo's table layout.
func (r ServeScalingResult) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Serving under attack — %s model, %d clients × %d requests, %d MSB flips per attack round (GOMAXPROCS=%d)\n",
		r.Model, r.Clients, r.RequestsPerRun/r.Clients, r.FlipsPerRound, r.GOMAXPROCS)
	sb.WriteString(row("config", "req/s", "p50", "p99", "avg batch", "flagged", "residual") + "\n")
	for _, run := range r.Runs {
		sb.WriteString(row(
			run.Name,
			fmt.Sprintf("%.0f", run.RPS),
			fmt.Sprintf("%.1fms", run.P50Ms),
			fmt.Sprintf("%.1fms", run.P99Ms),
			fmt.Sprintf("%.1f", run.AvgBatch),
			fmt.Sprintf("%d", run.GroupsFlagged),
			fmt.Sprintf("%d", run.ResidualFlagged),
		) + "\n")
	}
	return sb.String()
}

// WriteJSON writes the result as indented JSON — the machine-readable
// BENCH artifact consumed by the benchmark trajectory.
func (r ServeScalingResult) WriteJSON(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
