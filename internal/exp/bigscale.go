package exp

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"time"

	"radar/internal/core"
	"radar/internal/quant"
	"radar/internal/store"
)

// BigScaleResult is the GB-scale streaming-protection experiment: a
// synthetic multi-GB store checkpoint is written, mapped, protected,
// scanned, attacked, and recovered without the weights ever being loaded
// into process memory. The headline numbers are the streaming scan
// throughput, the incremental (dirty-only) scan latency, and the resident
// high-water mark relative to the checkpoint size — the proof that the
// mmap path protects checkpoints far larger than RAM. Written as
// BENCH_bigscale.json by radar-bench -exp bigscale.
type BigScaleResult struct {
	// Bytes is the checkpoint's weight payload (one byte per int8 weight).
	Bytes int64 `json:"bytes"`
	// Layers is the section count of the synthetic checkpoint.
	Layers int `json:"layers"`
	// Mapped records whether the mmap reader won (false = RAM fallback,
	// which voids the RSS claims).
	Mapped bool `json:"mapped"`
	// GOMAXPROCS records the host parallelism the numbers were taken at.
	GOMAXPROCS int `json:"gomaxprocs"`

	// WriteMBs is the streaming checkpoint-write throughput.
	WriteMBs float64 `json:"write_mbps"`
	// ProtectSeconds and ProtectMBs time the initial golden-signature pass.
	ProtectSeconds float64 `json:"protect_seconds"`
	ProtectMBs     float64 `json:"protect_mbps"`
	// ScanSeconds and ScanMBs time one full streaming scan.
	ScanSeconds float64 `json:"scan_seconds"`
	ScanMBs     float64 `json:"scan_mbps"`
	// DirtyScanSeconds is the incremental ScanDirty latency after the
	// injected flips (two dirty layers, everything else skipped).
	DirtyScanSeconds float64 `json:"dirty_scan_seconds"`
	// RescanSeconds is the post-recovery full verification scan.
	RescanSeconds float64 `json:"rescan_seconds"`
	// SyncSeconds is the msync of the recovered (dirty) sections.
	SyncSeconds float64 `json:"sync_seconds"`

	// Flips, Detected, Zeroed summarize the inject→detect→recover round
	// trip on the mapped image.
	Flips    int `json:"flips"`
	Detected int `json:"detected"`
	Zeroed   int `json:"zeroed"`

	// RSSPeakBytes is the process resident high-water mark (VmHWM) after
	// the full pipeline; RSSRatio divides it by Bytes. RSSEnforced records
	// whether the ratio was asserted (it is skipped when the peak baseline
	// could not be reset and was already polluted by earlier experiments
	// in the same process, or on the RAM fallback).
	RSSPeakBytes int64   `json:"rss_peak_bytes"`
	RSSRatio     float64 `json:"rss_ratio"`
	RSSEnforced  bool    `json:"rss_enforced"`
}

// bigScaleLayerBytes picks the synthetic section size: 64 MiB slabs at GB
// scale, shrinking for capped runs so the checkpoint still has enough
// layers to exercise streaming release.
func bigScaleLayerBytes(total int64) int64 {
	lb := int64(64 << 20)
	for lb > 1<<20 && total/lb < 8 {
		lb /= 2
	}
	return lb
}

// BigScale writes a synthetic store checkpoint of roughly totalBytes of
// int8 weights (a deterministic LCG byte stream, sized in 64 MiB layer
// slabs plus a deliberately odd-length tail layer), then runs the full
// protection pipeline over the mapped file: protect (golden signatures),
// full streaming scan, 16 injected MSB flips across two layers, dirty-only
// rescan, group zero-out recovery, msync of the recovered sections, and a
// final clean verification scan. Every scan pass releases each layer's
// pages as it completes (core.Config.OnLayerScanned →
// store.Checkpoint.ReleaseLayer), which is what keeps the resident
// high-water mark a small fraction of the checkpoint size; at GB scale the
// experiment panics if RSS exceeds half the checkpoint, the acceptance
// bound of the streaming design. The checkpoint lives under (and is
// removed from) the system temp directory.
func BigScale(totalBytes int64) BigScaleResult {
	rssBaselineClean := resetPeakRSS()

	dir, err := os.MkdirTemp("", "radar-bigscale-*")
	if err != nil {
		panic(fmt.Sprintf("exp: bigscale temp dir: %v", err))
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "bigscale.radar")

	res := BigScaleResult{GOMAXPROCS: runtime.GOMAXPROCS(0)}

	// Stream the synthetic checkpoint: full slabs plus an odd tail layer
	// (length % 8 != 0) so the SWAR kernel's scalar tail crosses a page
	// boundary, same edge the store differential tests pin.
	layerBytes := bigScaleLayerBytes(totalBytes)
	slabs := int(totalBytes / layerBytes)
	if slabs < 2 {
		slabs = 2
	}
	const tailBytes = 3*store.PageSize + 1
	t0 := time.Now()
	w, err := store.Create(path)
	if err != nil {
		panic(fmt.Sprintf("exp: bigscale create: %v", err))
	}
	lcg := uint64(0x9E3779B97F4A7C15)
	chunk := make([]byte, 1<<20)
	writeLayer := func(name string, n int64) {
		if err := w.AddLayer(name, 0.02, nil, n); err != nil {
			panic(fmt.Sprintf("exp: bigscale add layer: %v", err))
		}
		for n > 0 {
			c := chunk
			if int64(len(c)) > n {
				c = c[:n]
			}
			for i := range c {
				lcg = lcg*6364136223846793005 + 1442695040888963407
				c[i] = byte(lcg >> 33)
			}
			if _, err := w.Write(c); err != nil {
				panic(fmt.Sprintf("exp: bigscale write: %v", err))
			}
			n -= int64(len(c))
		}
	}
	for i := 0; i < slabs; i++ {
		writeLayer(fmt.Sprintf("slab%03d.weight", i), layerBytes)
	}
	writeLayer("tail.weight", tailBytes)
	if err := w.Close(); err != nil {
		panic(fmt.Sprintf("exp: bigscale close: %v", err))
	}
	writeSec := time.Since(t0).Seconds()

	c, err := store.Open(path)
	if err != nil {
		panic(fmt.Sprintf("exp: bigscale open: %v", err))
	}
	defer c.Close()
	c.AdviseSequential()
	m := c.Model()
	res.Bytes = c.WeightBytes()
	res.Layers = c.NumLayers()
	res.Mapped = c.Mapped()
	mb := float64(res.Bytes) / (1 << 20)
	res.WriteMBs = mb / writeSec

	// Protect with the paper's large-model deployment point; every pass
	// releases each layer's pages as its shards complete.
	cfg := core.DefaultConfig(512)
	cfg.OnLayerScanned = c.ReleaseLayer
	t0 = time.Now()
	p := core.Protect(m, cfg)
	res.ProtectSeconds = time.Since(t0).Seconds()
	res.ProtectMBs = mb / res.ProtectSeconds

	t0 = time.Now()
	if flagged := p.Scan(); len(flagged) != 0 {
		panic(fmt.Sprintf("exp: bigscale clean scan flagged %d groups", len(flagged)))
	}
	res.ScanSeconds = time.Since(t0).Seconds()
	res.ScanMBs = mb / res.ScanSeconds

	// Inject 16 MSB flips across two layers (one slab, plus the odd tail),
	// each in a distinct checksum group so detection is all-or-nothing per
	// flip.
	flips := bigScaleFlips(p, 16)
	for _, a := range flips {
		m.FlipBit(a)
	}
	res.Flips = len(flips)

	t0 = time.Now()
	flagged := p.ScanDirty()
	res.DirtyScanSeconds = time.Since(t0).Seconds()
	res.Detected = p.CountDetected(flips, flagged)
	if res.Detected != res.Flips {
		panic(fmt.Sprintf("exp: bigscale detected %d of %d MSB flips", res.Detected, res.Flips))
	}

	res.Zeroed = p.Recover(flagged)
	if res.Zeroed == 0 {
		panic("exp: bigscale recovery zeroed nothing")
	}
	t0 = time.Now()
	if err := c.SyncDirty(); err != nil {
		panic(fmt.Sprintf("exp: bigscale sync: %v", err))
	}
	res.SyncSeconds = time.Since(t0).Seconds()

	t0 = time.Now()
	if flagged := p.Scan(); len(flagged) != 0 {
		panic(fmt.Sprintf("exp: bigscale post-recovery scan flagged %d groups", len(flagged)))
	}
	res.RescanSeconds = time.Since(t0).Seconds()

	res.RSSPeakBytes = readPeakRSS()
	if res.Bytes > 0 {
		res.RSSRatio = float64(res.RSSPeakBytes) / float64(res.Bytes)
	}
	// Enforce the streaming-memory bound when the measurement is sound:
	// mapped path, peak known, and a baseline that is not already above
	// the limit (earlier experiments in a shared process can pin VmHWM
	// when the kernel refuses the peak reset).
	limit := 1.3 // capped (CI-sized) runs: mapping + page-cache slack
	if res.Bytes >= 1<<30 {
		limit = 0.5 // the acceptance bound: RSS under half the checkpoint
	}
	if res.Mapped && res.RSSPeakBytes > 0 && res.Bytes >= 192<<20 {
		if !rssBaselineClean && res.RSSRatio >= limit {
			// Polluted baseline and over the limit: cannot attribute the
			// peak to this experiment; report unenforced instead of
			// failing spuriously.
			res.RSSEnforced = false
		} else {
			res.RSSEnforced = true
			if res.RSSRatio >= limit {
				panic(fmt.Sprintf("exp: bigscale peak RSS %.0f MiB is %.2fx the %.0f MiB checkpoint (limit %.2fx) — streaming release is broken",
					float64(res.RSSPeakBytes)/(1<<20), res.RSSRatio, mb, limit))
			}
		}
	}
	return res
}

// bigScaleFlips picks n MSB flip addresses, half in slab001 and half in
// the tail layer, spread so every flip lands in a distinct checksum group.
func bigScaleFlips(p *core.Protector, n int) []quant.BitAddress {
	var out []quant.BitAddress
	seen := map[core.GroupID]bool{}
	layers := []int{1, len(p.Model.Layers) - 1}
	for k := 0; k < n; k++ {
		li := layers[k%len(layers)]
		l := p.Model.Layers[li]
		i := (k/len(layers) + 1) * (len(l.Q) / (n/len(layers) + 2))
		a := quant.BitAddress{LayerIndex: li, WeightIndex: i, Bit: quant.MSB}
		for seen[p.GroupOf(a)] {
			a.WeightIndex = (a.WeightIndex + 1) % len(l.Q)
		}
		seen[p.GroupOf(a)] = true
		out = append(out, a)
	}
	return out
}

// readPeakRSS returns the process's resident high-water mark in bytes
// (VmHWM from /proc/self/status), or 0 where unavailable.
func readPeakRSS() int64 {
	data, err := os.ReadFile("/proc/self/status")
	if err != nil {
		return 0
	}
	for _, line := range bytes.Split(data, []byte("\n")) {
		if !bytes.HasPrefix(line, []byte("VmHWM:")) {
			continue
		}
		fields := strings.Fields(string(line[len("VmHWM:"):]))
		if len(fields) < 1 {
			return 0
		}
		kb, err := strconv.ParseInt(fields[0], 10, 64)
		if err != nil {
			return 0
		}
		return kb << 10
	}
	return 0
}

// resetPeakRSS asks the kernel to reset the process's peak-RSS watermark
// (echo 5 > /proc/self/clear_refs), so VmHWM afterwards reflects only this
// experiment. Returns whether the reset (probably) took effect: writing
// clear_refs needs privileges some environments withhold.
func resetPeakRSS() bool {
	f, err := os.OpenFile("/proc/self/clear_refs", os.O_WRONLY, 0)
	if err != nil {
		return false
	}
	defer f.Close()
	w := bufio.NewWriter(f)
	if _, err := w.WriteString("5\n"); err != nil {
		return false
	}
	return w.Flush() == nil
}

// Render prints the streaming pipeline timeline and the memory headline.
func (r BigScaleResult) Render() string {
	var sb strings.Builder
	mode := "mmap"
	if !r.Mapped {
		mode = "in-RAM fallback"
	}
	fmt.Fprintf(&sb, "GB-scale streaming protection — %.0f MiB checkpoint, %d layers, %s, GOMAXPROCS=%d\n",
		float64(r.Bytes)/(1<<20), r.Layers, mode, r.GOMAXPROCS)
	sb.WriteString(row("stage", "time", "MB/s", "") + "\n")
	dur := func(s float64) string {
		return time.Duration(s * float64(time.Second)).Round(time.Millisecond).String()
	}
	sb.WriteString(row("write ckpt", dur(float64(r.Bytes)/(1<<20)/r.WriteMBs), fmt.Sprintf("%.0f", r.WriteMBs), "") + "\n")
	sb.WriteString(row("protect", dur(r.ProtectSeconds), fmt.Sprintf("%.0f", r.ProtectMBs), "") + "\n")
	sb.WriteString(row("full scan", dur(r.ScanSeconds), fmt.Sprintf("%.0f", r.ScanMBs), "") + "\n")
	sb.WriteString(row("dirty scan", dur(r.DirtyScanSeconds), "", fmt.Sprintf("%d/%d flips detected", r.Detected, r.Flips)) + "\n")
	sb.WriteString(row("sync recovery", dur(r.SyncSeconds), "", fmt.Sprintf("%d weights zeroed", r.Zeroed)) + "\n")
	sb.WriteString(row("verify rescan", dur(r.RescanSeconds), "", "clean") + "\n")
	enforced := "not enforced"
	if r.RSSEnforced {
		enforced = "enforced"
	}
	fmt.Fprintf(&sb, "peak RSS %.0f MiB = %.2fx checkpoint (%s)\n",
		float64(r.RSSPeakBytes)/(1<<20), r.RSSRatio, enforced)
	return sb.String()
}

// WriteJSON writes the result as indented JSON — the machine-readable
// BENCH artifact consumed by the benchmark trajectory.
func (r BigScaleResult) WriteJSON(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
