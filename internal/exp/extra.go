package exp

import (
	"fmt"
	"math/rand"
	"strings"

	"radar/internal/attack"
	"radar/internal/core"
	"radar/internal/model"
	"radar/internal/quant"
	"radar/internal/rowhammer"
)

// MissRateResult reproduces the §VI.B micro-experiment: a 512-weight layer
// under repeated rounds of 10 random MSB flips; a round is a miss when no
// group is flagged at all (the attack goes completely undetected).
type MissRateResult struct {
	// Rounds is the number of rounds run.
	Rounds int
	// Misses maps group size to complete-miss counts.
	Misses map[int]int
}

// MissRate runs the micro-experiment for G ∈ {16, 32}.
func MissRate(opt Options) MissRateResult {
	res := MissRateResult{Rounds: opt.MissRounds, Misses: map[int]int{}}
	rng := rand.New(rand.NewSource(opt.Seed))
	const layerSize = 512
	const flips = 10
	base := make([]int8, layerSize)
	for i := range base {
		base[i] = int8(rng.Intn(256) - 128)
	}
	for _, g := range []int{16, 32} {
		s := core.Scheme{G: g, Interleave: true, Offset: core.DefaultOffset,
			Key: uint16(rng.Intn(1 << 16)), SigBits: 2}
		golden := s.Signatures(base)
		misses := 0
		q := make([]int8, layerSize)
		for r := 0; r < opt.MissRounds; r++ {
			copy(q, base)
			for f := 0; f < flips; f++ {
				i := rng.Intn(layerSize)
				q[i] = quant.FlipBit(q[i], quant.MSB)
			}
			if len(core.Compare(golden, s.Signatures(q))) == 0 {
				misses++
			}
		}
		res.Misses[g] = misses
	}
	return res
}

// Render prints the miss-rate result.
func (r MissRateResult) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Detection miss rate (512-weight layer, 10 random MSB flips, %d rounds)\n", r.Rounds)
	for _, g := range []int{16, 32} {
		rate := float64(r.Misses[g]) / float64(r.Rounds)
		sb.WriteString(row(fmt.Sprintf("G=%d", g),
			fmt.Sprintf("misses=%d", r.Misses[g]),
			fmt.Sprintf("rate=%.2e", rate)) + "\n")
	}
	return sb.String()
}

// MSB1Result reproduces §VIII's "avoid flipping MSB" analysis: an attacker
// restricted to MSB-1 needs ~3× the flips for comparable damage, and the
// 3-bit signature restores detection.
type MSB1Result struct {
	// Clean and AttackedMSB are reference accuracies (10 MSB flips).
	Clean, AttackedMSB float64
	// AttackedMSB1At10 and AttackedMSB1At30 are accuracies under the
	// restricted attack at 10 and 30 flips.
	AttackedMSB1At10, AttackedMSB1At30 float64
	// Detected2Bit and Detected3Bit are detected flips (of 30) with 2-bit
	// and 3-bit signatures (G = 16, interleaved).
	Detected2Bit, Detected3Bit float64
	// TotalFlips is the restricted attack budget.
	TotalFlips int
}

// MSB1 runs the restricted attacker on the ResNet-20s model.
func MSB1(c *Context) MSB1Result {
	const budget = 30
	res := MSB1Result{TotalFlips: budget}
	eval := c.EvalSet(ModelRN20)
	res.Clean = model.Load(specFor(ModelRN20)).CleanAccuracy

	// Reference MSB attack at 10 flips (first profile of the shared pool).
	b := model.Load(specFor(ModelRN20))
	ApplyProfile(b, c.Profiles(ModelRN20)[0])
	res.AttackedMSB = model.Evaluate(b.Net, eval, 100)

	// Restricted attack, measured at 10 and 30 flips.
	b1 := model.Load(specFor(ModelRN20))
	cfg := attack.MSB1Config(budget, c.Opt.Seed)
	profile := attack.PBFA(b1.QModel, b1.Attack, cfg)
	b10 := model.Load(specFor(ModelRN20))
	p10 := profile
	if len(p10) > 10 {
		p10 = p10[:10]
	}
	ApplyProfile(b10, p10)
	res.AttackedMSB1At10 = model.Evaluate(b10.Net, eval, 100)
	res.AttackedMSB1At30 = model.Evaluate(b1.Net, eval, 100)

	// Detection of the full restricted profile with 2- vs 3-bit signatures.
	for _, sigBits := range []int{2, 3} {
		bb := model.Load(specFor(ModelRN20))
		cfg := core.DefaultConfig(ScaledG(ModelRN20, 16))
		cfg.SigBits = sigBits
		prot := core.Protect(bb.QModel, cfg)
		ApplyProfile(bb, profile)
		flagged := prot.Scan()
		detected := float64(prot.CountDetected(profile.Addresses(), flagged))
		if sigBits == 2 {
			res.Detected2Bit = detected
		} else {
			res.Detected3Bit = detected
		}
	}
	return res
}

// Render prints the §VIII analysis.
func (r MSB1Result) Render() string {
	var sb strings.Builder
	sb.WriteString("Section VIII: MSB-1 attacker and 3-bit signature (ResNet-20s, G=16)\n")
	sb.WriteString(row("clean", pct(r.Clean)) + "\n")
	sb.WriteString(row("10 MSB flips", pct(r.AttackedMSB)) + "\n")
	sb.WriteString(row("10 MSB-1 flips", pct(r.AttackedMSB1At10)) + "\n")
	sb.WriteString(row("30 MSB-1 flips", pct(r.AttackedMSB1At30)) + "\n")
	sb.WriteString(row("detected (2-bit sig)", fmt.Sprintf("%.0f/%d", r.Detected2Bit, r.TotalFlips)) + "\n")
	sb.WriteString(row("detected (3-bit sig)", fmt.Sprintf("%.0f/%d", r.Detected3Bit, r.TotalFlips)) + "\n")
	return sb.String()
}

// RowhammerResult is the §III end-to-end threat-model integration: PBFA
// profile → DRAM rowhammer mounting → run-time scan → recovery.
type RowhammerResult struct {
	// Mounted is how many profile bits the hammering flipped.
	Mounted int
	// Detected is how many flips landed in flagged groups.
	Detected int
	// Clean, Attacked and Recovered are accuracies along the timeline.
	Clean, Attacked, Recovered float64
}

// Rowhammer runs the integration on the ResNet-20s model with G = 8.
func Rowhammer(c *Context) RowhammerResult {
	profile := c.Profiles(ModelRN20)[0]
	eval := c.EvalSet(ModelRN20)

	victim := model.Load(specFor(ModelRN20))
	res := RowhammerResult{Clean: model.Evaluate(victim.Net, eval, 100)}
	prot := core.Protect(victim.QModel, core.DefaultConfig(ScaledG(ModelRN20, 8)))
	dram := rowhammer.New(victim.QModel, rowhammer.DefaultGeometry(), c.Opt.Seed)

	res.Mounted = dram.MountProfile(profile.Addresses())
	res.Attacked = model.Evaluate(victim.Net, eval, 100)

	flagged, _ := prot.DetectAndRecover()
	res.Detected = prot.CountDetected(profile.Addresses(), flagged)
	res.Recovered = model.Evaluate(victim.Net, eval, 100)
	return res
}

// Render prints the integration summary.
func (r RowhammerResult) Render() string {
	var sb strings.Builder
	sb.WriteString("Rowhammer integration (ResNet-20s, G=8, interleaved)\n")
	sb.WriteString(row("mounted flips", fmt.Sprint(r.Mounted)) + "\n")
	sb.WriteString(row("detected flips", fmt.Sprint(r.Detected)) + "\n")
	sb.WriteString(row("clean", pct(r.Clean)) + "\n")
	sb.WriteString(row("attacked", pct(r.Attacked)) + "\n")
	sb.WriteString(row("recovered", pct(r.Recovered)) + "\n")
	return sb.String()
}
