package exp

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"radar/internal/adversary"
	"radar/internal/core"
	"radar/internal/data"
	"radar/internal/model"
)

// RecoveryRun is one (adversary, recovery-mode) cell of the recovery
// scaling experiment: a full campaign of the named attacker against the
// ResNet-20s model under one defense configuration, with accuracy measured
// clean, at the campaign horizon (undetected flips still live), and after
// the defender's final full scrub.
type RecoveryRun struct {
	// Mode is the defense configuration: "undefended" (no scrubs at all),
	// "zero" (detect + group zero-out, the paper's recovery), or "ecc"
	// (detect + per-group Hamming correction with zeroing fallback).
	Mode string `json:"mode"`
	// Outcome is the campaign ledger: mounted/detected/survived flips,
	// dwell, the defender's corrected/zeroed split, and rowhammer pricing.
	Outcome adversary.Outcome `json:"outcome"`
	// DetectionRate is detected flips over mounted flips (weights and
	// signatures combined); CorrectionRate is flagged groups repaired in
	// place rather than zeroed. Both are 0 when nothing was mounted or
	// flagged.
	DetectionRate  float64 `json:"detection_rate"`
	CorrectionRate float64 `json:"correction_rate"`
	// AccLive is top-1 accuracy at the campaign horizon, before the final
	// scrub; AccSettled is after it. Under "undefended" both measure the
	// unrepaired model.
	AccLive    float64 `json:"acc_live"`
	AccSettled float64 `json:"acc_settled"`
	// BitIdentical reports whether the settled weight image matched the
	// clean checkpoint byte for byte — the ECC headline for single-bit
	// campaigns, and structurally true for sigstore (weights untouched).
	BitIdentical bool `json:"bit_identical"`
}

// RecoveryScaleResult is the accuracy-after-attack comparison across the
// adversary × recovery-mode grid, written as BENCH_recoveryscale.json by
// radar-bench -exp recoveryscale. Each adversary runs the identical
// campaign (same seed, same grouping geometry) against all three defense
// modes, so within an adversary the accuracy columns differ only by how
// the defender reacts.
type RecoveryScaleResult struct {
	// Model is the evaluation model; GPaper is the paper-label group size
	// and GScaled its width-scaled value actually deployed (see ScaledG).
	Model   string `json:"model"`
	GPaper  int    `json:"g_paper"`
	GScaled int    `json:"g_scaled"`
	// Flips/Windows/FullEvery/ScrubMs shape every campaign; SecondsPerFlip
	// and CapPerWindow are the rowhammer pricing all attackers pay.
	Flips          int     `json:"flips"`
	Windows        int     `json:"windows"`
	FullEvery      int     `json:"full_every"`
	ScrubMs        int64   `json:"scrub_ms"`
	SecondsPerFlip float64 `json:"seconds_per_flip"`
	CapPerWindow   int     `json:"cap_per_window"`
	// EvalN is the evaluation-set cap; AccClean the unattacked reference
	// accuracy on it. Mapped records whether the per-run checkpoints took
	// the mmap path (corrected bytes are msync'd back through it).
	EvalN    int     `json:"eval_n"`
	AccClean float64 `json:"acc_clean"`
	Mapped   bool    `json:"mapped"`
	// Runs holds the grid in adversary-major order (adversary.Names() ×
	// undefended/zero/ecc).
	Runs map[string][]RecoveryRun `json:"runs"`
}

// recoveryModes are the defense configurations each adversary is run
// against, in presentation order.
var recoveryModes = []string{"undefended", "zero", "ecc"}

// RecoveryScale runs every adversary campaign against every recovery mode
// on the ResNet-20s model. Each run loads a fresh bundle, maps it onto its
// own temp store checkpoint (so ECC corrections exercise the full
// observer→dirty→msync chain), protects it at the paper's G=128 deployment
// point, executes the campaign window by window against the live defense,
// and measures top-1 accuracy at the horizon and after settling. The flip
// budget is scaled down when the context is test-sized.
func RecoveryScale(c *Context) RecoveryScaleResult {
	const gPaper = 128
	res := RecoveryScaleResult{
		Model:     ModelRN20,
		GPaper:    gPaper,
		GScaled:   ScaledG(ModelRN20, gPaper),
		Flips:     240,
		Windows:   12,
		FullEvery: 4,
		ScrubMs:   100,
		EvalN:     c.Opt.EvalN,
		Runs:      make(map[string][]RecoveryRun, len(adversary.Names())),
	}
	if c.Opt.Rounds20 < 8 { // test-sized context: shrink the campaign
		res.Flips, res.Windows = 48, 6
	}
	rate := adversary.DefaultRateModel()
	res.SecondsPerFlip = rate.SecondsPerFlip()

	dir, err := os.MkdirTemp("", "radar-recoveryscale-*")
	if err != nil {
		panic(fmt.Sprintf("exp: recoveryscale temp dir: %v", err))
	}
	defer os.RemoveAll(dir)

	eval := c.EvalSet(ModelRN20)
	res.AccClean = model.Evaluate(model.Load(specFor(ModelRN20)).Net, eval, 100)

	aopt := adversary.Options{
		Flips:      res.Flips,
		Windows:    res.Windows,
		FullEvery:  res.FullEvery,
		ScrubEvery: time.Duration(res.ScrubMs) * time.Millisecond,
		Rate:       rate,
		Seed:       c.Opt.Seed,
	}
	res.CapPerWindow = aopt.CapPerWindow()

	run := 0
	for _, name := range adversary.Names() {
		for _, mode := range recoveryModes {
			path := filepath.Join(dir, fmt.Sprintf("run%02d.radar", run))
			run++
			r, mapped := recoveryRun(name, mode, aopt, res.GScaled, path, eval, c.Opt.Seed)
			res.Mapped = mapped
			res.Runs[name] = append(res.Runs[name], r)
		}
	}
	return res
}

// recoveryRun executes one campaign cell on a fresh mapped checkpoint.
func recoveryRun(name, mode string, aopt adversary.Options, g int, path string, eval *data.Dataset, seed int64) (RecoveryRun, bool) {
	b := model.Load(specFor(ModelRN20))
	ck, err := model.MapCheckpoint(b, path)
	if err != nil {
		panic(fmt.Sprintf("exp: recoveryscale map %s: %v", path, err))
	}
	defer ck.Close()

	clean := make([][]int8, len(b.QModel.Layers))
	for li, l := range b.QModel.Layers {
		clean[li] = append([]int8(nil), l.Q...)
	}

	cfg := core.DefaultConfig(g)
	cfg.Seed = seed // identical grouping/masks across modes: same campaign
	cfg.Correct = mode == "ecc"
	p := core.Protect(b.QModel, cfg)

	aopt.NoDefense = mode == "undefended"
	atk, err := adversary.New(name)
	if err != nil {
		panic(fmt.Sprintf("exp: recoveryscale: %v", err))
	}
	camp := adversary.NewCampaign(adversary.Target{Model: b.QModel, Prot: p}, atk, aopt)
	camp.Run()
	r := RecoveryRun{Mode: mode, AccLive: model.Evaluate(b.Net, eval, 100)}
	camp.Settle()
	r.Outcome = camp.Outcome()
	r.AccSettled = model.Evaluate(b.Net, eval, 100)
	if err := ck.SyncDirty(); err != nil {
		panic(fmt.Sprintf("exp: recoveryscale sync: %v", err))
	}

	if mounted := r.Outcome.Mounted + r.Outcome.SigMounted; mounted > 0 {
		r.DetectionRate = float64(r.Outcome.Detected+r.Outcome.SigDetected) / float64(mounted)
	}
	if r.Outcome.GroupsFlagged > 0 {
		r.CorrectionRate = float64(r.Outcome.GroupsCorrected) / float64(r.Outcome.GroupsFlagged)
	}
	r.BitIdentical = true
	for li, l := range b.QModel.Layers {
		for i, v := range l.Q {
			if v != clean[li][i] {
				r.BitIdentical = false
				break
			}
		}
		if !r.BitIdentical {
			break
		}
	}
	// Deterministic invariant, not a statistical one: the scrub-timer
	// campaign is single-bit-per-group by construction, so ECC settling
	// must restore the exact clean image.
	if name == "scrub-timer" && mode == "ecc" && !r.BitIdentical {
		panic("exp: recoveryscale: ECC settle of a single-bit campaign is not bit-identical")
	}
	return r, ck.Mapped()
}

// Render prints the grid: one block per adversary, one row per recovery
// mode.
func (r RecoveryScaleResult) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Adversary campaigns vs. recovery modes — %s, G=%d (scaled %d), %d flips over %d windows (full scan every %d), clean %s\n",
		r.Model, r.GPaper, r.GScaled, r.Flips, r.Windows, r.FullEvery, pct(r.AccClean))
	fmt.Fprintf(&sb, "rowhammer pricing: %.1f ms/flip → cap %d flips per %d ms window\n",
		1e3*r.SecondsPerFlip, r.CapPerWindow, r.ScrubMs)
	line := func(cells ...string) {
		// The adversary column needs more room than the shared row() width
		// ("below-threshold" is 15 characters).
		fmt.Fprintf(&sb, "%-17s", cells[0])
		sb.WriteString(row(cells[1:]...) + "\n")
	}
	line("adversary", "mode", "mounted", "detected", "corrected", "zeroed", "acc live", "acc settled")
	for _, name := range adversary.Names() {
		for _, rr := range r.Runs[name] {
			o := rr.Outcome
			det := "—"
			if mounted := o.Mounted + o.SigMounted; mounted > 0 && rr.Mode != "undefended" {
				det = pct(rr.DetectionRate)
			}
			settled := pct(rr.AccSettled)
			if rr.BitIdentical {
				settled += " (bit-identical)"
			}
			line(name, rr.Mode,
				fmt.Sprintf("%d", o.Mounted+o.SigMounted), det,
				fmt.Sprintf("%d", o.GroupsCorrected), fmt.Sprintf("%d", o.GroupsZeroed),
				pct(rr.AccLive), settled)
		}
	}
	return sb.String()
}

// WriteJSON writes the result as indented JSON — the machine-readable
// BENCH artifact consumed by the benchmark trajectory.
func (r RecoveryScaleResult) WriteJSON(path string) error {
	buf, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(buf, '\n'), 0o644)
}
