package exp

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"radar/internal/core"
	"radar/internal/model"
)

// ScanRun is one worker-count sweep of the scan scaling experiment.
type ScanRun struct {
	// Workers is the pool size of this sweep.
	Workers int `json:"workers"`
	// Seconds is the wall-clock time of one full scan.
	Seconds float64 `json:"seconds"`
	// MBs is the resulting scan throughput (MB/s, one byte per weight).
	MBs float64 `json:"mbps"`
	// Speedup is relative to the workers=1 sweep.
	Speedup float64 `json:"speedup"`
}

// ScanKernels is the single-thread before/after of the checksum kernel
// rewrite: the retained PR 1 scalar row-walk (SignaturesRangeRef) against
// the SWAR kernel, measured over the same weight image in the same
// process. This is the machine-readable record of the kernel speedup the
// perf trajectory tracks.
type ScanKernels struct {
	OldMBs     float64 `json:"old_mbps"`
	NewMBs     float64 `json:"new_mbps"`
	KernelGain float64 `json:"kernel_gain"`
}

// ScanScalingResult is the worker-count sweep of the parallel scan engine:
// wall-clock scan time over a full ImageNet ResNet-18-scale weight image at
// each pool size, with the flagged output checked identical across sweeps.
// It is written as BENCH_scanscale.json (same machine-readable shape as
// the servescale artifact) by radar-bench -exp scanscale.
type ScanScalingResult struct {
	// Weights is the scanned weight volume (bytes, one per int8 weight).
	Weights int `json:"weights"`
	// Flagged is the number of corrupted groups every sweep must report.
	Flagged int `json:"flagged"`
	// GOMAXPROCS records the host parallelism the numbers were taken at.
	GOMAXPROCS int `json:"gomaxprocs"`
	// Runs holds one entry per swept pool size.
	Runs []ScanRun `json:"runs"`
	// Kernels is the single-thread old-vs-new checksum kernel comparison.
	Kernels ScanKernels `json:"kernels"`
}

// ScanWorkerSweep returns the worker counts the scaling experiment and the
// BenchmarkScan sub-benchmarks sweep: 1, 2, 4, and GOMAXPROCS, deduplicated
// and ascending.
func ScanWorkerSweep() []int {
	sweep := []int{1, 2, 4}
	n := runtime.GOMAXPROCS(0)
	for _, w := range sweep {
		if w == n {
			return sweep
		}
	}
	out := make([]int, 0, len(sweep)+1)
	for _, w := range sweep {
		if w < n {
			out = append(out, w)
		}
	}
	out = append(out, n)
	for _, w := range sweep {
		if w > n {
			out = append(out, w)
		}
	}
	return out
}

// ScanScaling measures Protector.Scan at each pool size over a synthetic
// ResNet-18 ImageNet weight image (11.7M weights, the paper's G=512
// deployment point) corrupted with scattered MSB flips. Every sweep must
// flag the identical group list — the determinism contract of the sharded
// engine — or the experiment panics. It also times the scalar reference
// kernel against the SWAR kernel single-thread over the same image, the
// old-vs-new record the perf trajectory tracks.
func ScanScaling() ScanScalingResult {
	m := model.SyntheticQuant(model.ResNet18ImageNetShapes())
	cfg := core.DefaultConfig(512)
	cfg.Workers = 1
	p := core.Protect(m, cfg)

	model.ScatterMSBFlips(m, 64)

	res := ScanScalingResult{Weights: m.TotalWeights(), GOMAXPROCS: runtime.GOMAXPROCS(0)}
	mb := float64(res.Weights) / (1 << 20)
	var want []core.GroupID
	for _, w := range ScanWorkerSweep() {
		p.SetWorkers(w)
		t0 := time.Now()
		flagged := p.Scan()
		dt := time.Since(t0)
		if want == nil {
			want = flagged
			res.Flagged = len(flagged)
		} else if !sameGroups(want, flagged) {
			panic(fmt.Sprintf("exp: workers=%d flagged %d groups, workers=%d flagged %d",
				w, len(flagged), res.Runs[0].Workers, len(want)))
		}
		res.Runs = append(res.Runs, ScanRun{
			Workers: w,
			Seconds: dt.Seconds(),
			MBs:     mb / dt.Seconds(),
		})
	}
	base := res.Runs[0].Seconds
	for i := range res.Runs {
		res.Runs[i].Speedup = base / res.Runs[i].Seconds
	}
	res.Kernels = scanKernels(p, mb)
	return res
}

// scanKernels times one single-thread pass of the scalar reference kernel
// and one of the SWAR kernel over every layer of the protected image.
func scanKernels(p *core.Protector, mb float64) ScanKernels {
	timeKernel := func(f func(s core.Scheme, q []int8) []uint8) float64 {
		t0 := time.Now()
		for li, l := range p.Model.Layers {
			f(p.Schemes[li], l.Q)
		}
		return time.Since(t0).Seconds()
	}
	oldSec := timeKernel(func(s core.Scheme, q []int8) []uint8 {
		return s.SignaturesRangeRef(q, 0, s.NumGroups(len(q)))
	})
	newSec := timeKernel(func(s core.Scheme, q []int8) []uint8 {
		return s.Signatures(q)
	})
	return ScanKernels{
		OldMBs:     mb / oldSec,
		NewMBs:     mb / newSec,
		KernelGain: oldSec / newSec,
	}
}

func sameGroups(a, b []core.GroupID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Render prints the sweep with throughput and speedup over workers=1,
// plus the single-thread old/new kernel comparison.
func (r ScanScalingResult) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Parallel scan scaling — ResNet-18 ImageNet image (%.1f MB, G=512, %d corrupted groups, GOMAXPROCS=%d)\n",
		float64(r.Weights)/(1<<20), r.Flagged, r.GOMAXPROCS)
	sb.WriteString(row("workers", "scan time", "MB/s", "speedup") + "\n")
	for _, run := range r.Runs {
		sb.WriteString(row(
			fmt.Sprintf("%d", run.Workers),
			(time.Duration(run.Seconds*float64(time.Second))).Round(time.Microsecond).String(),
			fmt.Sprintf("%.0f", run.MBs),
			fmt.Sprintf("%.2fx", run.Speedup),
		) + "\n")
	}
	fmt.Fprintf(&sb, "checksum kernel (single thread): old %.0f MB/s -> new %.0f MB/s (%.1fx)\n",
		r.Kernels.OldMBs, r.Kernels.NewMBs, r.Kernels.KernelGain)
	return sb.String()
}

// WriteJSON writes the result as indented JSON — the machine-readable
// BENCH artifact consumed by the benchmark trajectory.
func (r ScanScalingResult) WriteJSON(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
