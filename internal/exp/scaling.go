package exp

import (
	"fmt"
	"runtime"
	"strings"
	"time"

	"radar/internal/core"
	"radar/internal/model"
)

// ScanScalingResult is the worker-count sweep of the parallel scan engine:
// wall-clock scan time over a full ImageNet ResNet-18-scale weight image at
// each pool size, with the flagged output checked identical across sweeps.
type ScanScalingResult struct {
	// Weights is the scanned weight volume (bytes, one per int8 weight).
	Weights int
	// Flagged is the number of corrupted groups every sweep must report.
	Flagged int
	// Workers lists the swept pool sizes.
	Workers []int
	// Times holds the per-sweep scan wall time, aligned with Workers.
	Times []time.Duration
}

// ScanWorkerSweep returns the worker counts the scaling experiment and the
// BenchmarkScan sub-benchmarks sweep: 1, 2, 4, and GOMAXPROCS, deduplicated
// and ascending.
func ScanWorkerSweep() []int {
	sweep := []int{1, 2, 4}
	n := runtime.GOMAXPROCS(0)
	for _, w := range sweep {
		if w == n {
			return sweep
		}
	}
	out := make([]int, 0, len(sweep)+1)
	for _, w := range sweep {
		if w < n {
			out = append(out, w)
		}
	}
	out = append(out, n)
	for _, w := range sweep {
		if w > n {
			out = append(out, w)
		}
	}
	return out
}

// ScanScaling measures Protector.Scan at each pool size over a synthetic
// ResNet-18 ImageNet weight image (11.7M weights, the paper's G=512
// deployment point) corrupted with scattered MSB flips. Every sweep must
// flag the identical group list — the determinism contract of the sharded
// engine — or the experiment panics.
func ScanScaling() ScanScalingResult {
	m := model.SyntheticQuant(model.ResNet18ImageNetShapes())
	cfg := core.DefaultConfig(512)
	cfg.Workers = 1
	p := core.Protect(m, cfg)

	model.ScatterMSBFlips(m, 64)

	res := ScanScalingResult{Weights: m.TotalWeights()}
	var want []core.GroupID
	for _, w := range ScanWorkerSweep() {
		p.SetWorkers(w)
		t0 := time.Now()
		flagged := p.Scan()
		dt := time.Since(t0)
		if want == nil {
			want = flagged
			res.Flagged = len(flagged)
		} else if !sameGroups(want, flagged) {
			panic(fmt.Sprintf("exp: workers=%d flagged %d groups, workers=%d flagged %d",
				w, len(flagged), res.Workers[0], len(want)))
		}
		res.Workers = append(res.Workers, w)
		res.Times = append(res.Times, dt)
	}
	return res
}

func sameGroups(a, b []core.GroupID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Render prints the sweep with throughput and speedup over workers=1.
func (r ScanScalingResult) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Parallel scan scaling — ResNet-18 ImageNet image (%.1f MB, G=512, %d corrupted groups)\n",
		float64(r.Weights)/(1<<20), r.Flagged)
	sb.WriteString(row("workers", "scan time", "MB/s", "speedup") + "\n")
	base := r.Times[0].Seconds()
	for i, w := range r.Workers {
		sec := r.Times[i].Seconds()
		sb.WriteString(row(
			fmt.Sprintf("%d", w),
			r.Times[i].Round(time.Microsecond).String(),
			fmt.Sprintf("%.0f", float64(r.Weights)/(1<<20)/sec),
			fmt.Sprintf("%.2fx", base/sec),
		) + "\n")
	}
	return sb.String()
}
