package exp

import (
	"fmt"
	"strings"

	"radar/internal/attack"
	"radar/internal/core"
	"radar/internal/ecc"
	"radar/internal/memsim"
	"radar/internal/model"
)

// TableIResult reproduces Table I: PBFA bit-position statistics.
type TableIResult struct {
	// Stats maps model name to its bit-position counts.
	Stats map[string]attack.BitPositionStats
	// FlipsPerModel is the total flips classified per model.
	FlipsPerModel map[string]int
}

// TableI runs the bit-position characterization on both models.
func TableI(c *Context) TableIResult {
	res := TableIResult{
		Stats:         map[string]attack.BitPositionStats{},
		FlipsPerModel: map[string]int{},
	}
	for _, name := range []string{ModelRN20, ModelRN18} {
		ps := c.Profiles(name)
		res.Stats[name] = attack.Classify(ps)
		n := 0
		for _, p := range ps {
			n += len(p)
		}
		res.FlipsPerModel[name] = n
	}
	return res
}

// Render prints the Table I layout.
func (r TableIResult) Render() string {
	var sb strings.Builder
	sb.WriteString("Table I: Number of PBFA attacks in different bit positions\n")
	sb.WriteString(row("model", "MSB(0→1)", "MSB(1→0)", "others", "total") + "\n")
	for _, name := range []string{ModelRN20, ModelRN18} {
		s := r.Stats[name]
		sb.WriteString(row(name,
			fmt.Sprint(s.MSB01), fmt.Sprint(s.MSB10), fmt.Sprint(s.Others),
			fmt.Sprint(r.FlipsPerModel[name])) + "\n")
	}
	return sb.String()
}

// TableIIResult reproduces Table II: targeted-weight value ranges.
type TableIIResult struct {
	// Stats maps model name to range buckets.
	Stats map[string]attack.WeightRangeStats
}

// TableII buckets the pre-flip values of every targeted weight.
func TableII(c *Context) TableIIResult {
	res := TableIIResult{Stats: map[string]attack.WeightRangeStats{}}
	for _, name := range []string{ModelRN20, ModelRN18} {
		res.Stats[name] = attack.ClassifyRanges(c.Profiles(name))
	}
	return res
}

// Render prints the Table II layout.
func (r TableIIResult) Render() string {
	var sb strings.Builder
	sb.WriteString("Table II: Frequency of targeted weights in different ranges\n")
	sb.WriteString(row("model", "(-128,-32]", "(-32,0]", "(0,32)", "[32,127)") + "\n")
	for _, name := range []string{ModelRN20, ModelRN18} {
		s := r.Stats[name]
		sb.WriteString(row(name,
			fmt.Sprint(s.NegLarge), fmt.Sprint(s.NegSmall),
			fmt.Sprint(s.PosSmall), fmt.Sprint(s.PosLarge)) + "\n")
	}
	return sb.String()
}

// RecoveryCell is one Table III cell: accuracy without and with interleave.
type RecoveryCell struct {
	// Plain and Interleaved are mean recovered accuracies.
	Plain, Interleaved float64
}

// TableIIIResult reproduces Table III: accuracy recovery.
type TableIIIResult struct {
	// Clean maps model name to clean accuracy.
	Clean map[string]float64
	// Attacked maps model/N_BF to the undefended attacked accuracy.
	Attacked map[string]map[int]float64
	// Cells maps model → N_BF → G → recovery accuracies.
	Cells map[string]map[int]map[int]RecoveryCell
	// Gs maps model name to the swept group sizes.
	Gs map[string][]int
}

// TableIIIGroups lists the paper's per-model group-size sweeps.
func TableIIIGroups(name string) []int {
	if name == ModelRN18 {
		return []int{128, 256, 512}
	}
	return []int{8, 16, 32}
}

// TableIII measures recovery accuracy for N_BF ∈ {5, 10} across group
// sizes, with and without interleaving, averaged over RecoverRounds attack
// rounds. A profile's first 5 flips are exactly the 5-flip attack (PBFA is
// progressive), so both N_BF points reuse one profile per round.
func TableIII(c *Context) TableIIIResult {
	res := TableIIIResult{
		Clean:    map[string]float64{},
		Attacked: map[string]map[int]float64{},
		Cells:    map[string]map[int]map[int]RecoveryCell{},
		Gs:       map[string][]int{},
	}
	for _, name := range []string{ModelRN20, ModelRN18} {
		gs := TableIIIGroups(name)
		res.Gs[name] = gs
		res.Attacked[name] = map[int]float64{}
		res.Cells[name] = map[int]map[int]RecoveryCell{}
		eval := c.EvalSet(name)
		res.Clean[name] = model.Load(specFor(name)).CleanAccuracy

		rounds := c.Opt.RecoverRounds
		if rounds > c.Opt.roundsFor(name) {
			rounds = c.Opt.roundsFor(name)
		}
		profiles := c.Profiles(name)[:rounds]

		for _, nbf := range []int{5, 10} {
			res.Cells[name][nbf] = map[int]RecoveryCell{}
			var attackedSum float64
			sums := map[int]*RecoveryCell{}
			for _, g := range gs {
				sums[g] = &RecoveryCell{}
			}
			for _, p := range profiles {
				if nbf < len(p) {
					p = p[:nbf]
				}
				// Undefended accuracy.
				b := model.Load(specFor(name))
				ApplyProfile(b, p)
				attackedSum += model.Evaluate(b.Net, eval, 100)
				// Defended: per G and interleave mode.
				for _, g := range gs {
					for _, inter := range []bool{false, true} {
						bb := model.Load(specFor(name))
						cfg := core.DefaultConfig(ScaledG(name, g))
						cfg.Interleave = inter
						prot := core.Protect(bb.QModel, cfg)
						ApplyProfile(bb, p)
						prot.DetectAndRecover()
						acc := model.Evaluate(bb.Net, eval, 100)
						if inter {
							sums[g].Interleaved += acc
						} else {
							sums[g].Plain += acc
						}
					}
				}
			}
			n := float64(len(profiles))
			res.Attacked[name][nbf] = attackedSum / n
			for _, g := range gs {
				res.Cells[name][nbf][g] = RecoveryCell{
					Plain:       sums[g].Plain / n,
					Interleaved: sums[g].Interleaved / n,
				}
			}
		}
	}
	return res
}

// Render prints the Table III layout.
func (r TableIIIResult) Render() string {
	var sb strings.Builder
	sb.WriteString("Table III: Accuracy recovery of the RADAR scheme\n")
	for _, name := range []string{ModelRN20, ModelRN18} {
		gs := r.Gs[name]
		head := []string{name, "baseline"}
		for _, g := range gs {
			head = append(head, fmt.Sprintf("G=%d", g))
		}
		sb.WriteString(row(head...) + "\n")
		sb.WriteString(row("N_BF=0", pct(r.Clean[name])) + "\n")
		for _, nbf := range []int{5, 10} {
			cells := []string{fmt.Sprintf("N_BF=%d", nbf), pct(r.Attacked[name][nbf])}
			for _, g := range gs {
				c := r.Cells[name][nbf][g]
				cells = append(cells, fmt.Sprintf("%.1f/%.1f", 100*c.Plain, 100*c.Interleaved))
			}
			sb.WriteString(row(cells...) + "\n")
		}
	}
	sb.WriteString("(cells: recovered accuracy %, without/with interleave)\n")
	return sb.String()
}

// TableIVRow is one model's timing row.
type TableIVRow struct {
	// BaselineSec, PlainSec and InterleavedSec are simulated times.
	BaselineSec, PlainSec, InterleavedSec float64
	// PlainPct and InterleavedPct are the overheads.
	PlainPct, InterleavedPct float64
}

// TableIVResult reproduces Table IV: time overhead of RADAR on the
// full-size models (memsim, the gem5 substitute).
type TableIVResult struct {
	// Rows maps model table name to its timing row.
	Rows map[string]TableIVRow
}

// TableIV prices RADAR (G=8 for ResNet-20, G=512 for ResNet-18) on the
// full-size shape tables.
func TableIV() TableIVResult {
	cm := memsim.DefaultCostModel()
	res := TableIVResult{Rows: map[string]TableIVRow{}}
	cfgs := []struct {
		tab *model.ShapeTable
		g   int
	}{
		{model.ResNet20CIFARShapes(), 8},
		{model.ResNet18ImageNetShapes(), 512},
	}
	for _, c := range cfgs {
		plain := cm.SimulateRADAR(c.tab, memsim.RADARConfig{G: c.g, SigBits: 2})
		inter := cm.SimulateRADAR(c.tab, memsim.RADARConfig{G: c.g, Interleave: true, SigBits: 2})
		res.Rows[c.tab.Model] = TableIVRow{
			BaselineSec:    plain.BaselineSec,
			PlainSec:       plain.TotalSec,
			InterleavedSec: inter.TotalSec,
			PlainPct:       plain.OverheadPercent(),
			InterleavedPct: inter.OverheadPercent(),
		}
	}
	return res
}

// Render prints the Table IV layout.
func (r TableIVResult) Render() string {
	var sb strings.Builder
	sb.WriteString("Table IV: Time overhead of RADAR (simulated; interleaved in brackets)\n")
	sb.WriteString(row("model", "original", "RADAR", "overhead") + "\n")
	for _, name := range []string{"resnet20-cifar", "resnet18-imagenet"} {
		w := r.Rows[name]
		sb.WriteString(row(name,
			fmt.Sprintf("%.4fs", w.BaselineSec),
			fmt.Sprintf("%.4fs (%.4fs)", w.PlainSec, w.InterleavedSec),
			fmt.Sprintf("%.2f%% (%.2f%%)", w.PlainPct, w.InterleavedPct)) + "\n")
	}
	return sb.String()
}

// TableVRow compares one scheme on one model.
type TableVRow struct {
	// TotalSec is inference + detection; DeltaSec is detection only.
	TotalSec, DeltaSec float64
	// StorageKB is the check-bit storage.
	StorageKB float64
}

// TableVResult reproduces Table V: overhead comparison with CRC.
type TableVResult struct {
	// Rows maps "scheme/model" to the comparison row.
	Rows map[string]TableVRow
}

// TableV prices RADAR versus CRC on the full-size models, including the
// storage cost of each code (CRC-7 for G=8, CRC-13 for G=512; CRC-10 is
// the MSB-only option priced in the discussion).
func TableV() TableVResult {
	cm := memsim.DefaultCostModel()
	res := TableVResult{Rows: map[string]TableVRow{}}

	weightsOf := func(t *model.ShapeTable) []int {
		var w []int
		for _, l := range t.Layers {
			w = append(w, l.Weights)
		}
		return w
	}
	crcStorageKB := func(weights []int, g, bits int) float64 {
		groups := 0
		for _, l := range weights {
			groups += (l + g - 1) / g
		}
		return float64(groups*bits) / 8 / 1024
	}

	cfgs := []struct {
		tab *model.ShapeTable
		g   int
		crc ecc.CRC
	}{
		{model.ResNet20CIFARShapes(), 8, ecc.CRC7},
		{model.ResNet18ImageNetShapes(), 512, ecc.CRC13},
	}
	for _, c := range cfgs {
		w := weightsOf(c.tab)
		radar := cm.SimulateRADAR(c.tab, memsim.RADARConfig{G: c.g, Interleave: true, SigBits: 2})
		res.Rows["RADAR/"+c.tab.Model] = TableVRow{
			TotalSec:  radar.TotalSec,
			DeltaSec:  radar.DetectionSec,
			StorageKB: core.StorageForWeights(w, c.g, 2, true).SignatureKB(),
		}
		crc := cm.SimulateCRC(c.tab, c.g)
		res.Rows[c.crc.Name()+"/"+c.tab.Model] = TableVRow{
			TotalSec:  crc.TotalSec,
			DeltaSec:  crc.DetectionSec,
			StorageKB: crcStorageKB(w, c.g, c.crc.Width),
		}
	}
	// The MSB-only CRC-10 option for ResNet-18 (discussion in §VII.B).
	r18 := model.ResNet18ImageNetShapes()
	crc10 := cm.SimulateCRC(r18, 512)
	res.Rows["CRC-10/resnet18-imagenet"] = TableVRow{
		TotalSec:  crc10.TotalSec,
		DeltaSec:  crc10.DetectionSec,
		StorageKB: crcStorageKB(weightsOf(r18), 512, ecc.CRC10.Width),
	}
	return res
}

// Render prints the Table V layout.
func (r TableVResult) Render() string {
	var sb strings.Builder
	sb.WriteString("Table V: Overhead comparison with CRC techniques (simulated)\n")
	sb.WriteString(row("scheme/model", "time", "Δ", "storage") + "\n")
	order := []string{
		"CRC-7/resnet20-cifar", "RADAR/resnet20-cifar",
		"CRC-13/resnet18-imagenet", "CRC-10/resnet18-imagenet", "RADAR/resnet18-imagenet",
	}
	for _, k := range order {
		w, ok := r.Rows[k]
		if !ok {
			continue
		}
		sb.WriteString(row(k,
			fmt.Sprintf("%.4fs", w.TotalSec),
			fmt.Sprintf("%.4fs", w.DeltaSec),
			fmt.Sprintf("%.1fKB", w.StorageKB)) + "\n")
	}
	return sb.String()
}
