package exp

import (
	"path/filepath"
	"testing"
)

// TestRecoveryScaleQuick runs the full adversary × recovery-mode grid at
// test scale and asserts the qualitative orderings the artifact is
// committed to demonstrate: ECC never settles below zeroing, single-bit
// campaigns settle bit-identical under ECC, the defense-aware attackers
// actually gain something over the oblivious baseline, and below-threshold
// pairs survive even the final full scrub.
func TestRecoveryScaleQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("trains and evaluates the RN20s model repeatedly")
	}
	r := RecoveryScale(NewContext(Quick()))
	if len(r.Runs) != 4 {
		t.Fatalf("want 4 adversaries, got %d", len(r.Runs))
	}
	if r.SecondsPerFlip <= 0 || r.CapPerWindow <= 0 {
		t.Fatalf("rowhammer pricing missing: %+v", r)
	}

	cell := func(name, mode string) RecoveryRun {
		for _, rr := range r.Runs[name] {
			if rr.Mode == mode {
				return rr
			}
		}
		t.Fatalf("missing cell %s/%s", name, mode)
		return RecoveryRun{}
	}

	for _, name := range []string{"oblivious", "scrub-timer", "below-threshold", "sigstore"} {
		zero, ecc := cell(name, "zero"), cell(name, "ecc")
		if ecc.AccSettled < zero.AccSettled {
			t.Errorf("%s: ECC settled %.4f below zeroing %.4f", name, ecc.AccSettled, zero.AccSettled)
		}
		if mounted := ecc.Outcome.Mounted + ecc.Outcome.SigMounted; mounted == 0 {
			t.Errorf("%s: campaign mounted nothing", name)
		}
	}

	// Single-bit-per-group campaigns must settle bit-identical under ECC
	// (and therefore strictly beat zeroing, which destroys every flagged
	// group).
	for _, name := range []string{"scrub-timer", "sigstore"} {
		ecc := cell(name, "ecc")
		if !ecc.BitIdentical {
			t.Errorf("%s/ecc: settled image is not bit-identical", name)
		}
		if ecc.Outcome.WeightsZeroed != 0 {
			t.Errorf("%s/ecc: zeroed %d weights on a correctable campaign", name, ecc.Outcome.WeightsZeroed)
		}
		if zero := cell(name, "zero"); zero.Outcome.WeightsZeroed == 0 {
			t.Errorf("%s/zero: zeroing recovery destroyed nothing", name)
		}
	}

	// Scrub-timer campaigns are all-MSB, one per group: every flip is
	// detected once the settle scan runs, and none survive it.
	st := cell("scrub-timer", "zero")
	if st.Outcome.Detected != st.Outcome.Mounted || st.Outcome.Survived != 0 {
		t.Errorf("scrub-timer/zero: detected %d of %d, survived %d — MSB flips must be all-or-nothing",
			st.Outcome.Detected, st.Outcome.Mounted, st.Outcome.Survived)
	}

	// Below-threshold evades even the settle scan: survivors must remain.
	bt := cell("below-threshold", "zero")
	if bt.Outcome.Survived == 0 {
		t.Error("below-threshold: no pairs survived the final full scrub")
	}
	if bt.Outcome.Survived >= bt.Outcome.Mounted {
		t.Errorf("below-threshold: survived %d of %d mounted — detection never fired",
			bt.Outcome.Survived, bt.Outcome.Mounted)
	}

	if r.Render() == "" {
		t.Fatal("empty render")
	}
	path := filepath.Join(t.TempDir(), "BENCH_recoveryscale.json")
	if err := r.WriteJSON(path); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
}
