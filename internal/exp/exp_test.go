package exp

import (
	"strings"
	"testing"

	"radar/internal/quant"
)

// sharedCtx caches one Quick-scale context (and its attack profiles) across
// all tests in this package; profiles are the expensive part.
var sharedCtx = NewContext(Quick())

func TestTableIMSBDominance(t *testing.T) {
	r := TableI(sharedCtx)
	for _, name := range []string{ModelRN20, ModelRN18} {
		s := r.Stats[name]
		total := s.MSB01 + s.MSB10 + s.Others
		if total == 0 {
			t.Fatalf("%s: no flips classified", name)
		}
		// Paper Table I: MSB flips dominate overwhelmingly.
		if frac := float64(s.MSB01+s.MSB10) / float64(total); frac < 0.7 {
			t.Errorf("%s: MSB fraction %.2f < 0.7", name, frac)
		}
	}
	if !strings.Contains(r.Render(), "Table I") {
		t.Fatal("Render missing title")
	}
}

func TestTableIIBucketsSumToFlips(t *testing.T) {
	r := TableII(sharedCtx)
	ri := TableI(sharedCtx)
	for _, name := range []string{ModelRN20, ModelRN18} {
		s := r.Stats[name]
		sum := s.NegLarge + s.NegSmall + s.PosSmall + s.PosLarge
		if sum != ri.FlipsPerModel[name] {
			t.Errorf("%s: range buckets %d != flips %d", name, sum, ri.FlipsPerModel[name])
		}
	}
}

func TestFigure2MonotoneTrend(t *testing.T) {
	r := Figure2(sharedCtx)
	for _, name := range []string{ModelRN20, ModelRN18} {
		gs := r.Gs[name]
		first := r.Proportion[name][gs[0]]
		last := r.Proportion[name][gs[len(gs)-1]]
		// The multi-bit proportion must not shrink as groups grow.
		if last < first {
			t.Errorf("%s: proportion decreased from %.2f (G=%d) to %.2f (G=%d)",
				name, first, gs[0], last, gs[len(gs)-1])
		}
	}
}

func TestFigure4DetectionQuality(t *testing.T) {
	r := Figure4(sharedCtx)
	// Paper Fig 4: small G detects ≈ all flips; interleaving keeps
	// detection high at large G.
	// A minority of PBFA flips land on bit 6 (our search is slightly less
	// MSB-exclusive than the paper's Table I), and a bit-6 flip evades the
	// 2-bit signature ~half the time, so the bound allows for that.
	d20small := r.Detected[ModelRN20][Figure2Groups(ModelRN20)[0]]
	if d20small.Plain < float64(r.NumFlips)*0.6 {
		t.Errorf("ResNet-20s G=4 plain detection %.1f too low", d20small.Plain)
	}
	for _, name := range []string{ModelRN20, ModelRN18} {
		gs := r.Gs[name]
		big := r.Detected[name][gs[len(gs)-1]]
		if big.Interleaved+0.75 < big.Plain {
			t.Errorf("%s: interleaving should not hurt detection at large G: %.2f vs %.2f",
				name, big.Interleaved, big.Plain)
		}
		if big.Interleaved < float64(r.NumFlips)*0.7 {
			t.Errorf("%s: interleaved detection %.1f/%d too low at G=%d",
				name, big.Interleaved, r.NumFlips, gs[len(gs)-1])
		}
	}
}

func TestTableIIIRecoveryShape(t *testing.T) {
	r := TableIII(sharedCtx)
	for _, name := range []string{ModelRN20, ModelRN18} {
		clean := r.Clean[name]
		attacked := r.Attacked[name][10]
		if attacked >= clean-0.1 {
			t.Errorf("%s: attack too weak for recovery experiment: clean %.2f attacked %.2f",
				name, clean, attacked)
		}
		for _, g := range r.Gs[name] {
			cell := r.Cells[name][10][g]
			// Recovery must restore a large part of the damage (paper: from
			// 18% back to 60-80%+ of clean).
			if cell.Interleaved < attacked {
				t.Errorf("%s G=%d: recovered %.2f worse than attacked %.2f",
					name, g, cell.Interleaved, attacked)
			}
			if cell.Interleaved < clean-0.35 {
				t.Errorf("%s G=%d: recovered %.2f too far below clean %.2f",
					name, g, cell.Interleaved, clean)
			}
		}
	}
	out := r.Render()
	if !strings.Contains(out, "Table III") || !strings.Contains(out, "N_BF=10") {
		t.Fatal("Render malformed")
	}
}

func TestTableIVPaperShape(t *testing.T) {
	r := TableIV()
	r20 := r.Rows["resnet20-cifar"]
	r18 := r.Rows["resnet18-imagenet"]
	// Baselines near the gem5 numbers.
	if r20.BaselineSec < 0.055 || r20.BaselineSec > 0.080 {
		t.Errorf("ResNet-20 baseline %.4f, paper 0.0663", r20.BaselineSec)
	}
	if r18.BaselineSec < 2.7 || r18.BaselineSec > 3.8 {
		t.Errorf("ResNet-18 baseline %.3f, paper 3.268", r18.BaselineSec)
	}
	// Overheads in the paper's bands: RN20 a few percent, RN18 ≤ ~3%.
	if r20.InterleavedPct < 1 || r20.InterleavedPct > 10 {
		t.Errorf("ResNet-20 interleaved overhead %.2f%%, paper 5.27%%", r20.InterleavedPct)
	}
	if r18.InterleavedPct > 4 {
		t.Errorf("ResNet-18 interleaved overhead %.2f%%, paper 1.83%%", r18.InterleavedPct)
	}
	if r18.PlainPct > r18.InterleavedPct {
		t.Error("plain must be cheaper than interleaved")
	}
}

func TestTableVCRCLosesOnBothAxes(t *testing.T) {
	r := TableV()
	pairs := [][2]string{
		{"CRC-7/resnet20-cifar", "RADAR/resnet20-cifar"},
		{"CRC-13/resnet18-imagenet", "RADAR/resnet18-imagenet"},
		{"CRC-10/resnet18-imagenet", "RADAR/resnet18-imagenet"},
	}
	for _, pr := range pairs {
		crc, radar := r.Rows[pr[0]], r.Rows[pr[1]]
		if crc.DeltaSec <= radar.DeltaSec {
			t.Errorf("%s Δ=%.4f should exceed %s Δ=%.4f", pr[0], crc.DeltaSec, pr[1], radar.DeltaSec)
		}
		if crc.StorageKB <= radar.StorageKB {
			t.Errorf("%s storage %.1fKB should exceed %s %.1fKB",
				pr[0], crc.StorageKB, pr[1], radar.StorageKB)
		}
	}
	// Paper storage anchors: RADAR 5.6 KB and CRC-13 36.4 KB on ResNet-18.
	if s := r.Rows["RADAR/resnet18-imagenet"].StorageKB; s < 5.4 || s > 5.8 {
		t.Errorf("RADAR RN18 storage %.2fKB, paper 5.6KB", s)
	}
	if s := r.Rows["CRC-13/resnet18-imagenet"].StorageKB; s < 34 || s > 40 {
		t.Errorf("CRC-13 RN18 storage %.2fKB, paper 36.4KB", s)
	}
}

func TestMissRateLowAndOrdered(t *testing.T) {
	opt := Quick()
	opt.MissRounds = 50_000
	r := MissRate(opt)
	for _, g := range []int{16, 32} {
		rate := float64(r.Misses[g]) / float64(r.Rounds)
		// Paper: 10⁻⁵ (G=32) and 10⁻⁶ (G=16) on this toy layer. At 5×10⁴
		// rounds we can only bound the rate loosely.
		if rate > 1e-3 {
			t.Errorf("G=%d miss rate %.2e too high", g, rate)
		}
	}
	// Smaller groups must not miss more often than larger ones.
	if r.Misses[16] > r.Misses[32]+2 {
		t.Errorf("G=16 misses (%d) should be ≤ G=32 misses (%d)", r.Misses[16], r.Misses[32])
	}
}

func TestFigure7InterleaveDefendsEvasion(t *testing.T) {
	r := Figure7(sharedCtx)
	// Paper Fig 7: without interleave the paired attack suppresses
	// detection; interleaving restores it. Compare at small-to-mid G where
	// evasion pairs actually land in one contiguous group.
	worse, better := 0, 0
	for _, g := range r.Gs {
		d := r.Detected[g]
		if d.Interleaved > d.Plain+0.25 {
			better++
		}
		if d.Interleaved+0.25 < d.Plain {
			worse++
		}
	}
	if better == 0 {
		t.Error("interleaving never improved detection under paired evasion")
	}
	if worse > better {
		t.Errorf("interleaving hurt detection more often (%d) than it helped (%d)", worse, better)
	}
}

func TestMSB1RestrictedAttackerWeaker(t *testing.T) {
	r := MSB1(sharedCtx)
	// 10 MSB-1 flips must hurt less than 10 MSB flips (paper: ~3× more
	// flips needed), and 30 MSB-1 flips must hurt more than 10.
	if r.AttackedMSB1At10 < r.AttackedMSB-0.05 {
		t.Errorf("10 MSB-1 flips (%.2f) should be weaker than 10 MSB flips (%.2f)",
			r.AttackedMSB1At10, r.AttackedMSB)
	}
	if r.AttackedMSB1At30 > r.AttackedMSB1At10+0.02 {
		t.Errorf("30 MSB-1 flips (%.2f) should hurt more than 10 (%.2f)",
			r.AttackedMSB1At30, r.AttackedMSB1At10)
	}
	// The 3-bit signature must detect the restricted attack better than the
	// 2-bit signature.
	if r.Detected3Bit < r.Detected2Bit {
		t.Errorf("3-bit signature (%.0f) should detect at least as much as 2-bit (%.0f)",
			r.Detected3Bit, r.Detected2Bit)
	}
	if r.Detected3Bit < float64(r.TotalFlips)*0.8 {
		t.Errorf("3-bit signature detected only %.0f of %d MSB-1 flips",
			r.Detected3Bit, r.TotalFlips)
	}
}

func TestRowhammerIntegration(t *testing.T) {
	r := Rowhammer(sharedCtx)
	if r.Mounted != sharedCtx.Opt.NumFlips {
		t.Fatalf("mounted %d of %d flips", r.Mounted, sharedCtx.Opt.NumFlips)
	}
	if r.Detected < r.Mounted-2 {
		t.Errorf("detected %d of %d mounted flips", r.Detected, r.Mounted)
	}
	if r.Attacked >= r.Clean-0.05 {
		t.Errorf("attack ineffective: clean %.2f attacked %.2f", r.Clean, r.Attacked)
	}
	if r.Recovered < r.Attacked {
		t.Errorf("recovery made things worse: %.2f < %.2f", r.Recovered, r.Attacked)
	}
	if r.Recovered < r.Clean-0.3 {
		t.Errorf("recovered %.2f too far below clean %.2f", r.Recovered, r.Clean)
	}
}

func TestRendersNonEmpty(t *testing.T) {
	ctx := sharedCtx
	outs := []string{
		TableI(ctx).Render(),
		TableII(ctx).Render(),
		Figure2(ctx).Render(),
		TableIV().Render(),
		TableV().Render(),
	}
	for i, o := range outs {
		if len(strings.TrimSpace(o)) == 0 {
			t.Errorf("render %d empty", i)
		}
		if !strings.Contains(o, "\n") {
			t.Errorf("render %d single line", i)
		}
	}
}

var _ = quant.MSB // quant referenced by test helpers in other files
