package exp

import (
	"strings"
	"testing"
)

// TestFleetScalingAvailability runs the full fleet experiment — live
// replicas, routed traffic under bit-flip attack, one replica killed
// mid-traffic, rolling rekey under load, a gray-failure chaos storm —
// and holds it to the availability contract: ≥99% of requests succeed
// despite the kill, ≥97% through the storm (two survivors — see the
// bound's comment below), and the rolling rekey completes with zero
// failed requests.
func TestFleetScalingAvailability(t *testing.T) {
	if testing.Short() {
		t.Skip("fleet experiment boots three full services")
	}
	r := FleetScaling()

	if len(r.Phases) != 4 {
		t.Fatalf("expected 4 phases, got %d", len(r.Phases))
	}
	byName := map[string]FleetPhase{}
	for _, p := range r.Phases {
		byName[p.Name] = p
	}
	if p := byName["steady"]; p.Failures != 0 {
		t.Errorf("steady phase had %d failures", p.Failures)
	}
	if p := byName["replica-kill"]; p.SuccessRate < 0.99 {
		t.Errorf("replica-kill success rate %.3f < 0.99 (%d/%d failed)",
			p.SuccessRate, p.Failures, p.Requests)
	}
	if p := byName["rolling-rekey"]; p.Failures != 0 {
		t.Errorf("rolling rekey dropped %d requests, want 0", p.Failures)
	}
	// The chaos storm runs after the replica kill, so only two live
	// replicas remain and a client-visible failure needs two coincident
	// faults (~0.06² per request, expected ≈0.4 failures per 120). The
	// bound is ≥97% — loose enough not to flake on that Poisson tail,
	// tight enough that a broken failover path (which fails ~6% of
	// requests) still trips it hard.
	if p := byName["chaos"]; p.SuccessRate < 0.97 {
		t.Errorf("chaos success rate %.3f < 0.97 (%d/%d failed)",
			p.SuccessRate, p.Failures, p.Requests)
	}
	injected := int64(0)
	for fault, n := range r.ChaosFaults {
		if fault != "none" {
			injected += n
		}
	}
	if injected == 0 {
		t.Error("chaos phase injected no faults")
	}
	if r.InRingAfterKill != r.Replicas-1 {
		t.Errorf("ring has %d members after kill, want %d", r.InRingAfterKill, r.Replicas-1)
	}
	// The rekey reaches every surviving replica (the killed one reports an
	// error and is excluded).
	if r.RekeyedReplicas != r.Replicas-1 {
		t.Errorf("rolling rekey reached %d replicas, want %d", r.RekeyedReplicas, r.Replicas-1)
	}
	if r.AttackRounds == 0 {
		t.Error("adversary never fired")
	}
	if out := r.Render(); !strings.Contains(out, "replica-kill") {
		t.Errorf("render missing phases:\n%s", out)
	}
}
