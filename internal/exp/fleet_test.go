package exp

import (
	"strings"
	"testing"
)

// TestFleetScalingAvailability runs the full fleet experiment — live
// replicas, routed traffic under bit-flip attack, one replica killed
// mid-traffic, rolling rekey under load — and holds it to the
// availability contract: ≥99% of requests succeed despite the kill, and
// the rolling rekey completes with zero failed requests.
func TestFleetScalingAvailability(t *testing.T) {
	if testing.Short() {
		t.Skip("fleet experiment boots three full services")
	}
	r := FleetScaling()

	if len(r.Phases) != 3 {
		t.Fatalf("expected 3 phases, got %d", len(r.Phases))
	}
	byName := map[string]FleetPhase{}
	for _, p := range r.Phases {
		byName[p.Name] = p
	}
	if p := byName["steady"]; p.Failures != 0 {
		t.Errorf("steady phase had %d failures", p.Failures)
	}
	if p := byName["replica-kill"]; p.SuccessRate < 0.99 {
		t.Errorf("replica-kill success rate %.3f < 0.99 (%d/%d failed)",
			p.SuccessRate, p.Failures, p.Requests)
	}
	if p := byName["rolling-rekey"]; p.Failures != 0 {
		t.Errorf("rolling rekey dropped %d requests, want 0", p.Failures)
	}
	if r.InRingAfterKill != r.Replicas-1 {
		t.Errorf("ring has %d members after kill, want %d", r.InRingAfterKill, r.Replicas-1)
	}
	// The rekey reaches every surviving replica (the killed one reports an
	// error and is excluded).
	if r.RekeyedReplicas != r.Replicas-1 {
		t.Errorf("rolling rekey reached %d replicas, want %d", r.RekeyedReplicas, r.Replicas-1)
	}
	if r.AttackRounds == 0 {
		t.Error("adversary never fired")
	}
	if out := r.Render(); !strings.Contains(out, "replica-kill") {
		t.Errorf("render missing phases:\n%s", out)
	}
}
