package exp

import (
	"fmt"
	"strings"

	"radar/internal/core"
	"radar/internal/model"
	"radar/internal/rowhammer"
)

// RuntimeDetectionResult reproduces the paper's motivating comparison with
// periodic integrity checking (§I, citing DeepHammer): a run-time attacker
// flips bits *between* a periodic scan and the moment the corrupted layer
// is consumed. A periodic scheme that validated the model before the
// inference began computes on corrupted weights; RADAR's embedded per-layer
// scan (detection rides the weight fetch) repairs each layer immediately
// before use.
type RuntimeDetectionResult struct {
	// Clean is the reference accuracy.
	Clean float64
	// PeriodicAccuracy is the inference accuracy when the scan ran only
	// before the attack landed.
	PeriodicAccuracy float64
	// EmbeddedAccuracy is the accuracy with the per-layer embedded scan.
	EmbeddedAccuracy float64
	// EmbeddedDetected counts flips caught by the embedded scan.
	EmbeddedDetected int
	// Flips is the attack size.
	Flips int
}

// RuntimeDetection mounts a PBFA profile through rowhammer *after* a full
// periodic scan has passed, then compares the two deployment styles.
func RuntimeDetection(c *Context) RuntimeDetectionResult {
	profile := c.Profiles(ModelRN20)[0]
	eval := c.EvalSet(ModelRN20)
	res := RuntimeDetectionResult{Flips: len(profile)}

	// --- Periodic deployment: scan completes, then the attack lands, then
	// inference runs on whatever is in DRAM.
	periodic := model.Load(specFor(ModelRN20))
	res.Clean = model.Evaluate(periodic.Net, eval, 100)
	prot := core.Protect(periodic.QModel, core.DefaultConfig(ScaledG(ModelRN20, 8)))
	if flagged := prot.Scan(); len(flagged) != 0 { // the periodic check passes…
		panic("exp: clean model flagged")
	}
	dram := rowhammer.New(periodic.QModel, rowhammer.DefaultGeometry(), c.Opt.Seed)
	dram.MountProfile(profile.Addresses()) // …and the attacker strikes after it
	res.PeriodicAccuracy = model.Evaluate(periodic.Net, eval, 100)

	// --- Embedded deployment: same timeline, but each layer is scanned and
	// repaired at fetch time, before its weights are consumed.
	embedded := model.Load(specFor(ModelRN20))
	prot2 := core.Protect(embedded.QModel, core.DefaultConfig(ScaledG(ModelRN20, 8)))
	dram2 := rowhammer.New(embedded.QModel, rowhammer.DefaultGeometry(), c.Opt.Seed)
	dram2.MountProfile(profile.Addresses())
	detected := 0
	for li := range embedded.QModel.Layers {
		flagged := prot2.ScanLayer(li)
		detected += prot2.CountDetected(profile.Addresses(), flagged)
		prot2.Recover(flagged)
	}
	res.EmbeddedDetected = detected
	res.EmbeddedAccuracy = model.Evaluate(embedded.Net, eval, 100)
	return res
}

// Render prints the comparison.
func (r RuntimeDetectionResult) Render() string {
	var sb strings.Builder
	sb.WriteString("Run-time vs periodic detection (attack lands after the periodic scan)\n")
	sb.WriteString(row("clean", pct(r.Clean)) + "\n")
	sb.WriteString(row("periodic check", pct(r.PeriodicAccuracy), "0 flips caught") + "\n")
	sb.WriteString(row("embedded (RADAR)", pct(r.EmbeddedAccuracy),
		fmt.Sprintf("%d/%d flips caught", r.EmbeddedDetected, r.Flips)) + "\n")
	return sb.String()
}
