package exp

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeGateFixture drops a BENCH artifact set into dir with the given
// serving RPS and scan kernel MB/s (all other gated metrics held fixed).
func writeGateFixture(t *testing.T, dir string, rps, mbps float64) {
	t.Helper()
	scan := ScanScalingResult{
		Weights: 100,
		Runs:    []ScanRun{{Workers: 1, MBs: mbps}, {Workers: 2, MBs: mbps * 1.5}},
		Kernels: ScanKernels{OldMBs: mbps / 4, NewMBs: mbps, KernelGain: 4},
	}
	servescale := ServeScalingResult{
		Runs: []ServeRun{
			{Name: "baseline", RPS: rps * 1.2},
			{Name: "scrub+verify", RPS: rps},
		},
		Multi: ServeMultiModel{Models: 2, RPS: rps * 0.9},
	}
	fleetscale := FleetScalingResult{Replicas: 3, RPS: rps * 2, SuccessRate: 0.999}
	if err := scan.WriteJSON(filepath.Join(dir, "BENCH_scanscale.json")); err != nil {
		t.Fatal(err)
	}
	if err := servescale.WriteJSON(filepath.Join(dir, "BENCH_servescale.json")); err != nil {
		t.Fatal(err)
	}
	if err := fleetscale.WriteJSON(filepath.Join(dir, "BENCH_fleetscale.json")); err != nil {
		t.Fatal(err)
	}
}

// TestGatePassesWithinTolerance: a fresh run a few percent slower (well
// inside the 10% envelope) passes, and faster runs obviously pass.
func TestGatePassesWithinTolerance(t *testing.T) {
	base, fresh := t.TempDir(), t.TempDir()
	writeGateFixture(t, base, 1000, 2400)
	writeGateFixture(t, fresh, 950, 2300) // -5%, -4.2%

	res, err := GateArtifacts(base, []string{fresh}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if res.Regressed {
		t.Fatalf("gate failed a -5%% run at 10%% tolerance: %s", res.Render())
	}
	if len(res.Metrics) == 0 || len(res.Skipped) != 0 {
		t.Fatalf("gate compared %d metrics, skipped %v", len(res.Metrics), res.Skipped)
	}
}

// TestGateFailsOnInjectedRegression is the acceptance check: a synthetic
// 20% drop must trip the 10% gate, and the report must name the regressed
// metrics.
func TestGateFailsOnInjectedRegression(t *testing.T) {
	base, fresh := t.TempDir(), t.TempDir()
	writeGateFixture(t, base, 1000, 2400)
	writeGateFixture(t, fresh, 800, 2400) // RPS −20%, scan unchanged

	res, err := GateArtifacts(base, []string{fresh}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Regressed {
		t.Fatalf("gate passed a -20%% regression: %s", res.Render())
	}
	var regressed []string
	for _, m := range res.Metrics {
		if m.Regressed {
			regressed = append(regressed, m.Metric)
		}
	}
	for _, want := range []string{"runs.baseline.rps", "runs.scrub+verify.rps", "multi.rps"} {
		found := false
		for _, got := range regressed {
			if got == want {
				found = true
			}
		}
		if !found {
			t.Fatalf("metric %s (−20%%) not flagged; flagged: %v", want, regressed)
		}
	}
	for _, m := range res.Metrics {
		if strings.Contains(m.Metric, "mbps") && m.Regressed {
			t.Fatalf("unchanged scan metric %s flagged as regressed", m.Metric)
		}
	}
	if !strings.Contains(res.Render(), "REGRESSED") {
		t.Fatal("report does not mark the regression")
	}
}

// TestGateSkipsMissingArtifacts: an artifact absent from the baseline
// (brand new) or the fresh run (retired) is skipped, not failed.
func TestGateSkipsMissingArtifacts(t *testing.T) {
	base, fresh := t.TempDir(), t.TempDir()
	writeGateFixture(t, base, 1000, 2400)
	writeGateFixture(t, fresh, 1000, 2400)
	if err := os.Remove(filepath.Join(base, "BENCH_fleetscale.json")); err != nil {
		t.Fatal(err)
	}

	res, err := GateArtifacts(base, []string{fresh}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if res.Regressed {
		t.Fatalf("gate failed on a skipped artifact: %s", res.Render())
	}
	if len(res.Skipped) != 1 || res.Skipped[0] != "BENCH_fleetscale.json" {
		t.Fatalf("skipped = %v, want [BENCH_fleetscale.json]", res.Skipped)
	}
}

// TestGateMedianAbsorbsOneNoisyRun: with three fresh runs, one run whose
// serving RPS cratered (a CI scheduler stall) must not trip the gate when
// the other two are healthy — the median is what's judged.
func TestGateMedianAbsorbsOneNoisyRun(t *testing.T) {
	base := t.TempDir()
	writeGateFixture(t, base, 1000, 2400)
	r1, r2, r3 := t.TempDir(), t.TempDir(), t.TempDir()
	writeGateFixture(t, r1, 980, 2350)
	writeGateFixture(t, r2, 400, 900) // the stalled run: −60%
	writeGateFixture(t, r3, 1010, 2420)

	res, err := GateArtifacts(base, []string{r1, r2, r3}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if res.Regressed {
		t.Fatalf("median gate tripped by a single noisy run: %s", res.Render())
	}
	if res.FreshRuns != 3 {
		t.Fatalf("FreshRuns = %d, want 3", res.FreshRuns)
	}
	for _, m := range res.Metrics {
		if len(m.Samples) != 3 {
			t.Fatalf("%s/%s carries %d samples, want 3", m.Artifact, m.Metric, len(m.Samples))
		}
	}
	if !strings.Contains(res.Render(), "median of 3 fresh runs") {
		t.Fatal("report does not state the median-of-N policy")
	}
}

// TestGateMedianStillCatchesRealRegression: when the majority of runs
// regress, the median regresses with them — the noise floor must not turn
// into a blind spot.
func TestGateMedianStillCatchesRealRegression(t *testing.T) {
	base := t.TempDir()
	writeGateFixture(t, base, 1000, 2400)
	r1, r2, r3 := t.TempDir(), t.TempDir(), t.TempDir()
	writeGateFixture(t, r1, 780, 2400)
	writeGateFixture(t, r2, 800, 2400)
	writeGateFixture(t, r3, 990, 2400) // one lucky run can't save it

	res, err := GateArtifacts(base, []string{r1, r2, r3}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Regressed {
		t.Fatalf("median gate passed a 2-of-3 −20%% regression: %s", res.Render())
	}
}

func TestMedian(t *testing.T) {
	cases := []struct {
		in   []float64
		want float64
	}{
		{[]float64{3}, 3},
		{[]float64{9, 1, 5}, 5},
		{[]float64{4, 1, 3, 2}, 2.5},
	}
	for _, c := range cases {
		if got := median(c.in); got != c.want {
			t.Errorf("median(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}
