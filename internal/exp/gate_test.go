package exp

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeGateFixture drops a BENCH artifact set into dir with the given
// serving RPS and scan kernel MB/s (all other gated metrics held fixed).
func writeGateFixture(t *testing.T, dir string, rps, mbps float64) {
	t.Helper()
	scan := ScanScalingResult{
		Weights: 100,
		Runs:    []ScanRun{{Workers: 1, MBs: mbps}, {Workers: 2, MBs: mbps * 1.5}},
		Kernels: ScanKernels{OldMBs: mbps / 4, NewMBs: mbps, KernelGain: 4},
	}
	servescale := ServeScalingResult{
		Runs: []ServeRun{
			{Name: "baseline", RPS: rps * 1.2},
			{Name: "scrub+verify", RPS: rps},
		},
		Multi: ServeMultiModel{Models: 2, RPS: rps * 0.9},
	}
	fleetscale := FleetScalingResult{Replicas: 3, RPS: rps * 2, SuccessRate: 0.999}
	if err := scan.WriteJSON(filepath.Join(dir, "BENCH_scanscale.json")); err != nil {
		t.Fatal(err)
	}
	if err := servescale.WriteJSON(filepath.Join(dir, "BENCH_servescale.json")); err != nil {
		t.Fatal(err)
	}
	if err := fleetscale.WriteJSON(filepath.Join(dir, "BENCH_fleetscale.json")); err != nil {
		t.Fatal(err)
	}
}

// TestGatePassesWithinTolerance: a fresh run a few percent slower (well
// inside the 10% envelope) passes, and faster runs obviously pass.
func TestGatePassesWithinTolerance(t *testing.T) {
	base, fresh := t.TempDir(), t.TempDir()
	writeGateFixture(t, base, 1000, 2400)
	writeGateFixture(t, fresh, 950, 2300) // -5%, -4.2%

	res, err := GateArtifacts(base, fresh, 10)
	if err != nil {
		t.Fatal(err)
	}
	if res.Regressed {
		t.Fatalf("gate failed a -5%% run at 10%% tolerance: %s", res.Render())
	}
	if len(res.Metrics) == 0 || len(res.Skipped) != 0 {
		t.Fatalf("gate compared %d metrics, skipped %v", len(res.Metrics), res.Skipped)
	}
}

// TestGateFailsOnInjectedRegression is the acceptance check: a synthetic
// 20% drop must trip the 10% gate, and the report must name the regressed
// metrics.
func TestGateFailsOnInjectedRegression(t *testing.T) {
	base, fresh := t.TempDir(), t.TempDir()
	writeGateFixture(t, base, 1000, 2400)
	writeGateFixture(t, fresh, 800, 2400) // RPS −20%, scan unchanged

	res, err := GateArtifacts(base, fresh, 10)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Regressed {
		t.Fatalf("gate passed a -20%% regression: %s", res.Render())
	}
	var regressed []string
	for _, m := range res.Metrics {
		if m.Regressed {
			regressed = append(regressed, m.Metric)
		}
	}
	for _, want := range []string{"runs.baseline.rps", "runs.scrub+verify.rps", "multi.rps"} {
		found := false
		for _, got := range regressed {
			if got == want {
				found = true
			}
		}
		if !found {
			t.Fatalf("metric %s (−20%%) not flagged; flagged: %v", want, regressed)
		}
	}
	for _, m := range res.Metrics {
		if strings.Contains(m.Metric, "mbps") && m.Regressed {
			t.Fatalf("unchanged scan metric %s flagged as regressed", m.Metric)
		}
	}
	if !strings.Contains(res.Render(), "REGRESSED") {
		t.Fatal("report does not mark the regression")
	}
}

// TestGateSkipsMissingArtifacts: an artifact absent from the baseline
// (brand new) or the fresh run (retired) is skipped, not failed.
func TestGateSkipsMissingArtifacts(t *testing.T) {
	base, fresh := t.TempDir(), t.TempDir()
	writeGateFixture(t, base, 1000, 2400)
	writeGateFixture(t, fresh, 1000, 2400)
	if err := os.Remove(filepath.Join(base, "BENCH_fleetscale.json")); err != nil {
		t.Fatal(err)
	}

	res, err := GateArtifacts(base, fresh, 10)
	if err != nil {
		t.Fatal(err)
	}
	if res.Regressed {
		t.Fatalf("gate failed on a skipped artifact: %s", res.Render())
	}
	if len(res.Skipped) != 1 || res.Skipped[0] != "BENCH_fleetscale.json" {
		t.Fatalf("skipped = %v, want [BENCH_fleetscale.json]", res.Skipped)
	}
}
