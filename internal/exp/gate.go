package exp

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// GateMetric is one higher-is-better number compared across a baseline and
// a fresh BENCH artifact.
type GateMetric struct {
	// Artifact names the BENCH file, Metric the number within it.
	Artifact string  `json:"artifact"`
	Metric   string  `json:"metric"`
	Baseline float64 `json:"baseline"`
	// Fresh is the value the gate judges: the per-metric median across
	// every fresh run that produced the artifact.
	Fresh float64 `json:"fresh"`
	// Samples holds the raw per-run values behind Fresh when the gate saw
	// more than one fresh run — the noise floor the median absorbed.
	Samples []float64 `json:"samples,omitempty"`
	// DeltaPct is (Fresh-Baseline)/Baseline × 100; negative is a slowdown.
	DeltaPct float64 `json:"delta_pct"`
	// Regressed marks a drop beyond the gate's tolerance.
	Regressed bool `json:"regressed"`
}

// GateResult is the perf-regression gate's verdict over every BENCH
// artifact present in both directories.
type GateResult struct {
	// MaxDropPct is the tolerated drop (e.g. 10 = fail below 90% of
	// baseline).
	MaxDropPct float64      `json:"max_drop_pct"`
	Metrics    []GateMetric `json:"metrics"`
	// FreshRuns is how many fresh directories fed the gate; with more than
	// one, each metric compares the baseline against the per-run median.
	FreshRuns int `json:"fresh_runs"`
	// Regressed is true when any metric dropped beyond tolerance.
	Regressed bool `json:"regressed"`
	// Skipped lists artifacts present in only one directory (a brand-new
	// artifact has no baseline yet; its first committed run becomes one).
	Skipped []string `json:"skipped,omitempty"`
}

// gateExtractors maps each BENCH artifact to the metrics the gate guards.
// Every metric is higher-is-better; the trajectory the gate protects is
// the scan kernel's MB/s, the serving RPS under attack, and the fleet's
// routed RPS and availability.
var gateExtractors = map[string]func(raw []byte) ([]GateMetric, error){
	"BENCH_scanscale.json": func(raw []byte) ([]GateMetric, error) {
		var r ScanScalingResult
		if err := json.Unmarshal(raw, &r); err != nil {
			return nil, err
		}
		best := 0.0
		for _, run := range r.Runs {
			if run.MBs > best {
				best = run.MBs
			}
		}
		return []GateMetric{
			{Metric: "kernels.new_mbps", Fresh: r.Kernels.NewMBs},
			{Metric: "best_sweep_mbps", Fresh: best},
		}, nil
	},
	"BENCH_servescale.json": func(raw []byte) ([]GateMetric, error) {
		var r ServeScalingResult
		if err := json.Unmarshal(raw, &r); err != nil {
			return nil, err
		}
		out := make([]GateMetric, 0, len(r.Runs)+1)
		for _, run := range r.Runs {
			out = append(out, GateMetric{Metric: "runs." + run.Name + ".rps", Fresh: run.RPS})
		}
		out = append(out, GateMetric{Metric: "multi.rps", Fresh: r.Multi.RPS})
		return out, nil
	},
	// Fleetscale gates only the availability contract: its RPS is
	// dominated by loopback HTTP round-trips and swings ±20% run to run
	// on small hosts, which would flake the gate. Raw serving throughput
	// is already held by the servescale metrics. The chaos phase's own
	// success rate is gated once an artifact carries one (older baselines
	// predate the phase).
	"BENCH_fleetscale.json": func(raw []byte) ([]GateMetric, error) {
		var r FleetScalingResult
		if err := json.Unmarshal(raw, &r); err != nil {
			return nil, err
		}
		out := []GateMetric{
			{Metric: "success_rate", Fresh: r.SuccessRate},
		}
		for _, p := range r.Phases {
			if p.Name == "chaos" {
				out = append(out, GateMetric{Metric: "chaos.success_rate", Fresh: p.SuccessRate})
			}
		}
		return out, nil
	},
}

// extractMetrics reads one artifact and pulls its gated numbers.
func extractMetrics(dir, artifact string) ([]GateMetric, error) {
	raw, err := os.ReadFile(filepath.Join(dir, artifact))
	if err != nil {
		return nil, err
	}
	metrics, err := gateExtractors[artifact](raw)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", artifact, err)
	}
	for i := range metrics {
		metrics[i].Artifact = artifact
	}
	return metrics, nil
}

// median returns the middle value of vals (mean of the two middles for an
// even count). vals is not modified.
func median(vals []float64) float64 {
	s := append([]float64(nil), vals...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// GateArtifacts compares the BENCH artifacts in the freshDirs against the
// committed baselines in baselineDir and fails any higher-is-better metric
// that dropped more than maxDropPct percent. Each metric's fresh value is
// the median across every fresh run that produced the artifact — a noise
// floor that keeps one unlucky CI run (a scheduler stall mid-sweep, a cold
// page cache) from flaking the gate. Artifacts missing from the baseline or
// from every fresh run are skipped (and reported), not failed: a brand-new
// artifact has no baseline to hold it to, and a baseline whose experiment
// was retired has nothing fresh to compare.
func GateArtifacts(baselineDir string, freshDirs []string, maxDropPct float64) (GateResult, error) {
	res := GateResult{MaxDropPct: maxDropPct, FreshRuns: len(freshDirs)}
	if len(freshDirs) == 0 {
		return res, fmt.Errorf("gate: no fresh directories given")
	}
	// Iterate in a fixed order so reports are stable.
	artifacts := []string{"BENCH_scanscale.json", "BENCH_servescale.json", "BENCH_fleetscale.json"}
	for _, artifact := range artifacts {
		base, berr := extractMetrics(baselineDir, artifact)
		if os.IsNotExist(berr) {
			res.Skipped = append(res.Skipped, artifact)
			continue
		}
		if berr != nil {
			return res, berr
		}
		// Pool per-metric samples across the fresh runs. A run that lacks
		// the artifact entirely is tolerated (retired experiment, partial
		// rerun); a run that has it but dropped a metric is an error — a
		// silent schema drift the gate must not paper over.
		samples := make(map[string][]float64)
		present := 0
		for _, dir := range freshDirs {
			fresh, ferr := extractMetrics(dir, artifact)
			if os.IsNotExist(ferr) {
				continue
			}
			if ferr != nil {
				return res, ferr
			}
			present++
			for _, m := range fresh {
				samples[m.Metric] = append(samples[m.Metric], m.Fresh)
			}
		}
		if present == 0 {
			res.Skipped = append(res.Skipped, artifact)
			continue
		}
		for _, m := range base {
			vals, ok := samples[m.Metric]
			if !ok {
				return res, fmt.Errorf("%s: fresh runs are missing metric %s", artifact, m.Metric)
			}
			if len(vals) != present {
				return res, fmt.Errorf("%s: metric %s present in only %d of %d fresh runs", artifact, m.Metric, len(vals), present)
			}
			gm := GateMetric{Artifact: artifact, Metric: m.Metric, Baseline: m.Fresh, Fresh: median(vals)}
			if len(vals) > 1 {
				gm.Samples = vals
			}
			if gm.Baseline > 0 {
				gm.DeltaPct = (gm.Fresh - gm.Baseline) / gm.Baseline * 100
				gm.Regressed = gm.DeltaPct < -maxDropPct
			}
			if gm.Regressed {
				res.Regressed = true
			}
			res.Metrics = append(res.Metrics, gm)
		}
	}
	return res, nil
}

// Render prints the gate verdict as a GitHub-flavored markdown table, the
// shape CI appends to the job step summary.
func (r GateResult) Render() string {
	var sb strings.Builder
	if r.FreshRuns > 1 {
		fmt.Fprintf(&sb, "### Perf gate (max drop %.0f%%, median of %d fresh runs)\n\n", r.MaxDropPct, r.FreshRuns)
	} else {
		fmt.Fprintf(&sb, "### Perf gate (max drop %.0f%%)\n\n", r.MaxDropPct)
	}
	sb.WriteString("| artifact | metric | baseline | fresh | delta | verdict |\n")
	sb.WriteString("|---|---|---:|---:|---:|---|\n")
	for _, m := range r.Metrics {
		verdict := "ok"
		if m.Regressed {
			verdict = "**REGRESSED**"
		}
		fmt.Fprintf(&sb, "| %s | %s | %.2f | %.2f | %+.1f%% | %s |\n",
			m.Artifact, m.Metric, m.Baseline, m.Fresh, m.DeltaPct, verdict)
	}
	for _, s := range r.Skipped {
		fmt.Fprintf(&sb, "\nskipped %s (missing on one side)\n", s)
	}
	if r.Regressed {
		sb.WriteString("\n**Perf gate FAILED** — a tracked metric dropped beyond tolerance.\n")
	} else {
		sb.WriteString("\nPerf gate passed.\n")
	}
	return sb.String()
}
