package exp

import (
	"fmt"
	"math/rand"
	"strings"

	"radar/internal/core"
	"radar/internal/memsim"
	"radar/internal/model"
	"radar/internal/quant"
)

// MaskingAblationResult isolates the contribution of the secret-key
// masking (DESIGN.md design choice): detection probability of an
// opposite-direction MSB flip pair inside one group, with and without
// masking. Without masking the pair cancels deterministically; with a
// random 16-bit key the pair survives only when the two positions share a
// key bit value (~50%).
type MaskingAblationResult struct {
	// Rounds is the number of random pairs tried.
	Rounds int
	// DetectedUnmasked and DetectedMasked count detections.
	DetectedUnmasked, DetectedMasked int
}

// MaskingAblation runs the micro-experiment on synthetic 256-weight layers
// with G = 16.
func MaskingAblation(opt Options) MaskingAblationResult {
	rng := rand.New(rand.NewSource(opt.Seed))
	res := MaskingAblationResult{Rounds: opt.MissRounds / 10}
	if res.Rounds < 1000 {
		res.Rounds = 1000
	}
	const layerSize = 256
	const g = 16
	for r := 0; r < res.Rounds; r++ {
		q := make([]int8, layerSize)
		for i := range q {
			q[i] = int8(rng.Intn(256) - 128)
		}
		// Pick a group and an opposite-direction MSB pair inside it.
		unmasked := core.Scheme{G: g, Offset: 0, Key: 0xFFFF, SigBits: 2}
		masked := core.Scheme{G: g, Offset: 0, Key: uint16(rng.Intn(1 << 16)), SigBits: 2}
		grp := rng.Intn(unmasked.NumGroups(layerSize))
		members := unmasked.Members(grp, layerSize)
		// Force opposite MSB values on two random members, then flip both.
		i, j := members[rng.Intn(len(members))], members[rng.Intn(len(members))]
		for j == i {
			j = members[rng.Intn(len(members))]
		}
		q[i] = int8(rng.Intn(128))      // MSB 0
		q[j] = int8(-1 - rng.Intn(128)) // MSB 1
		gu := unmasked.Signatures(q)
		gm := masked.Signatures(q)
		q[i] = quant.FlipBit(q[i], quant.MSB) // 0→1
		q[j] = quant.FlipBit(q[j], quant.MSB) // 1→0
		if len(core.Compare(gu, unmasked.Signatures(q))) > 0 {
			res.DetectedUnmasked++
		}
		if len(core.Compare(gm, masked.Signatures(q))) > 0 {
			res.DetectedMasked++
		}
	}
	return res
}

// Render prints the ablation.
func (r MaskingAblationResult) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Masking ablation: opposite-direction MSB pair in one group (%d rounds)\n", r.Rounds)
	sb.WriteString(row("unmasked checksum",
		fmt.Sprintf("detected %s", pct(float64(r.DetectedUnmasked)/float64(r.Rounds)))) + "\n")
	sb.WriteString(row("masked checksum",
		fmt.Sprintf("detected %s", pct(float64(r.DetectedMasked)/float64(r.Rounds)))) + "\n")
	return sb.String()
}

// BatchAmortizationResult reproduces the §VII.A remark: RADAR's relative
// overhead shrinks with batch size because weights are checked once per
// load and reused across the batch.
type BatchAmortizationResult struct {
	// Rows maps model table name to per-batch results.
	Rows map[string][]memsim.BatchResult
}

// BatchAmortization prices batches 1–16 on both full-size models.
func BatchAmortization() BatchAmortizationResult {
	cm := memsim.DefaultCostModel()
	res := BatchAmortizationResult{Rows: map[string][]memsim.BatchResult{}}
	cfgs := []struct {
		tab *model.ShapeTable
		g   int
	}{
		{model.ResNet20CIFARShapes(), 8},
		{model.ResNet18ImageNetShapes(), 512},
	}
	for _, c := range cfgs {
		res.Rows[c.tab.Model] = cm.SimulateBatch(c.tab,
			memsim.RADARConfig{G: c.g, Interleave: true, SigBits: 2},
			[]int{1, 2, 4, 8, 16})
	}
	return res
}

// Render prints the amortization curves.
func (r BatchAmortizationResult) Render() string {
	var sb strings.Builder
	sb.WriteString("Batch amortization of RADAR detection overhead (simulated)\n")
	for _, name := range []string{"resnet20-cifar", "resnet18-imagenet"} {
		cells := []string{name}
		for _, b := range r.Rows[name] {
			cells = append(cells, fmt.Sprintf("B=%d:%.2f%%", b.Batch, b.OverheadPct))
		}
		sb.WriteString(row(cells...) + "\n")
	}
	return sb.String()
}

// SigBitsAblationResult compares 2- vs 3-bit signatures on storage and
// MSB-1 detection — quantifying the §VIII trade-off.
type SigBitsAblationResult struct {
	// Storage2KB and Storage3KB are full-size ResNet-18 signature costs.
	Storage2KB, Storage3KB float64
	// Detect2 and Detect3 are MSB-1 single-flip detection rates over
	// random trials on a synthetic layer.
	Detect2, Detect3 float64
	// Rounds is the trial count.
	Rounds int
}

// SigBitsAblation measures both axes.
func SigBitsAblation(opt Options) SigBitsAblationResult {
	var weights []int
	for _, l := range model.ResNet18ImageNetShapes().Layers {
		weights = append(weights, l.Weights)
	}
	res := SigBitsAblationResult{
		Storage2KB: core.StorageForWeights(weights, 512, 2, true).SignatureKB(),
		Storage3KB: core.StorageForWeights(weights, 512, 3, true).SignatureKB(),
		Rounds:     opt.MissRounds / 10,
	}
	if res.Rounds < 1000 {
		res.Rounds = 1000
	}
	rng := rand.New(rand.NewSource(opt.Seed + 7))
	const layerSize = 512
	det2, det3 := 0, 0
	for r := 0; r < res.Rounds; r++ {
		q := make([]int8, layerSize)
		for i := range q {
			q[i] = int8(rng.Intn(256) - 128)
		}
		key := uint16(rng.Intn(1 << 16))
		s2 := core.Scheme{G: 32, Interleave: true, Offset: 3, Key: key, SigBits: 2}
		s3 := core.Scheme{G: 32, Interleave: true, Offset: 3, Key: key, SigBits: 3}
		g2 := s2.Signatures(q)
		g3 := s3.Signatures(q)
		i := rng.Intn(layerSize)
		q[i] = quant.FlipBit(q[i], 6) // MSB-1
		if len(core.Compare(g2, s2.Signatures(q))) > 0 {
			det2++
		}
		if len(core.Compare(g3, s3.Signatures(q))) > 0 {
			det3++
		}
	}
	res.Detect2 = float64(det2) / float64(res.Rounds)
	res.Detect3 = float64(det3) / float64(res.Rounds)
	return res
}

// Render prints the trade-off.
func (r SigBitsAblationResult) Render() string {
	var sb strings.Builder
	sb.WriteString("Signature-width ablation (ResNet-18 full-size storage; MSB-1 single-flip detection)\n")
	sb.WriteString(row("2-bit", fmt.Sprintf("%.2fKB", r.Storage2KB), "detect "+pct(r.Detect2)) + "\n")
	sb.WriteString(row("3-bit", fmt.Sprintf("%.2fKB", r.Storage3KB), "detect "+pct(r.Detect3)) + "\n")
	return sb.String()
}
