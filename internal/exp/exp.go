// Package exp contains one runner per table and figure of the paper's
// evaluation (see DESIGN.md §3 for the index). Each runner returns a
// structured result with a Render method that prints the same rows/series
// the paper reports. Runners take an Options scale so tests can run small
// while the benchmark harness regenerates the full artifacts.
package exp

import (
	"fmt"
	"strings"
	"sync"

	"radar/internal/attack"
	"radar/internal/data"
	"radar/internal/model"
)

// Options scales the experiments.
type Options struct {
	// Rounds20 and Rounds18 are the PBFA attack rounds used for statistics
	// on the ResNet-20s / ResNet-18s models (paper: 100).
	Rounds20, Rounds18 int
	// NumFlips is N_BF for the statistics experiments (paper: 10).
	NumFlips int
	// EvalN caps the test samples used for accuracy evaluations.
	EvalN int
	// RecoverRounds is how many attack rounds Table III averages over.
	RecoverRounds int
	// MissRounds is the §VI.B micro-experiment round count (paper: 10⁶).
	MissRounds int
	// Seed offsets every per-round seed, keeping runs reproducible.
	Seed int64
}

// Quick returns a scale suitable for unit tests (minutes, not hours).
func Quick() Options {
	return Options{
		Rounds20: 4, Rounds18: 1, NumFlips: 10,
		EvalN: 300, RecoverRounds: 2, MissRounds: 30_000, Seed: 1,
	}
}

// Full returns the scale used to regenerate EXPERIMENTS.md.
func Full() Options {
	return Options{
		Rounds20: 25, Rounds18: 8, NumFlips: 10,
		EvalN: 1000, RecoverRounds: 4, MissRounds: 1_000_000, Seed: 1,
	}
}

// ModelRN20 and ModelRN18 name the two scaled evaluation models.
const (
	ModelRN20 = "resnet20s"
	ModelRN18 = "resnet18s"
)

// specFor maps a model name to its zoo spec.
func specFor(name string) model.Spec {
	switch name {
	case ModelRN20:
		return model.ResNet20sSpec()
	case ModelRN18:
		return model.ResNet18sSpec()
	default:
		panic("exp: unknown model " + name)
	}
}

// attackConfig returns the per-model PBFA configuration. The ResNet-18s
// substitute needs a wider search to approach the paper's damage levels.
func attackConfig(name string, numFlips int, seed int64) attack.Config {
	cfg := attack.DefaultConfig(seed)
	cfg.NumFlips = numFlips
	if name == ModelRN18 {
		cfg.TopWeightsPerLayer = 40
		cfg.TrialCandidates = 24
		cfg.BatchSize = 64
	}
	return cfg
}

// ScaledG maps a paper group size onto the scaled evaluation model. The
// paper's G values are meaningful relative to the model's total weight
// count (a G=512 group is 0.0044% of the real ResNet-18); applying them
// verbatim to the width-scaled models would zero 30× more of the network
// per recovery and skew group-collision statistics. The scaled models use
// G' = max(1, round(G · scaledWeights / fullWeights)) and every result is
// reported under the paper's G label.
func ScaledG(name string, gPaper int) int {
	var ratio float64
	switch name {
	case ModelRN20:
		ratio = 67992.0 / 272474.0
	case ModelRN18:
		ratio = 394500.0 / 11689512.0
	default:
		ratio = 1
	}
	g := int(float64(gPaper)*ratio + 0.5)
	if g < 1 {
		g = 1
	}
	return g
}

// roundsFor returns the configured rounds for a model.
func (o Options) roundsFor(name string) int {
	if name == ModelRN18 {
		return o.Rounds18
	}
	return o.Rounds20
}

// Context caches expensive intermediates — primarily PBFA profiles, which
// several experiments share — so one harness run attacks each model once
// per round rather than once per table.
type Context struct {
	// Opt is the experiment scale.
	Opt Options

	mu       sync.Mutex
	profiles map[string][]attack.Profile
	evals    map[string]*data.Dataset
}

// NewContext builds a context at the given scale.
func NewContext(opt Options) *Context {
	return &Context{
		Opt:      opt,
		profiles: map[string][]attack.Profile{},
		evals:    map[string]*data.Dataset{},
	}
}

// Profiles returns (computing on first use) the per-round PBFA profiles of
// the named model at the context's NumFlips.
func (c *Context) Profiles(name string) []attack.Profile {
	c.mu.Lock()
	got := c.profiles[name]
	c.mu.Unlock()
	if got != nil {
		return got
	}
	rounds := c.Opt.roundsFor(name)
	out := make([]attack.Profile, rounds)
	for r := 0; r < rounds; r++ {
		b := model.Load(specFor(name))
		cfg := attackConfig(name, c.Opt.NumFlips, c.Opt.Seed+int64(r)*101)
		out[r] = attack.PBFA(b.QModel, b.Attack, cfg)
	}
	c.mu.Lock()
	c.profiles[name] = out
	c.mu.Unlock()
	return out
}

// EvalSet returns the (cached) capped evaluation subset for a model.
func (c *Context) EvalSet(name string) *data.Dataset {
	c.mu.Lock()
	defer c.mu.Unlock()
	if d := c.evals[name]; d != nil {
		return d
	}
	b := model.Load(specFor(name))
	d := b.Test
	if c.Opt.EvalN > 0 && c.Opt.EvalN < d.Len() {
		idx := make([]int, c.Opt.EvalN)
		for i := range idx {
			idx[i] = i
		}
		d = d.Subset(idx)
	}
	c.evals[name] = d
	return d
}

// ApplyProfile re-applies a recorded flip sequence to a fresh bundle
// (profiles transfer exactly because every Load returns the same trained
// state).
func ApplyProfile(b *model.Bundle, p attack.Profile) {
	for _, f := range p {
		b.QModel.FlipBit(f.Addr)
	}
}

// row formats a fixed-width table row.
func row(cells ...string) string {
	var sb strings.Builder
	for _, c := range cells {
		fmt.Fprintf(&sb, "%-14s", c)
	}
	return strings.TrimRight(sb.String(), " ")
}

// pct formats a fraction as a percentage.
func pct(f float64) string { return fmt.Sprintf("%.2f%%", 100*f) }
