package exp

import (
	"path/filepath"
	"runtime"
	"testing"
)

// TestBigScalePipeline runs the streaming-protection pipeline end-to-end
// at a test-sized checkpoint (8 MiB): write, map, protect, clean scan,
// inject, dirty-scan detect, recover, sync, verify rescan. The RSS bound
// is only asserted inside BigScale at CI scale and above; here the value
// is just sanity-checked.
func TestBigScalePipeline(t *testing.T) {
	r := BigScale(8 << 20)
	if r.Bytes < 8<<20 || r.Layers < 3 {
		t.Fatalf("checkpoint too small: %d bytes, %d layers", r.Bytes, r.Layers)
	}
	if runtime.GOOS == "linux" && !r.Mapped {
		t.Fatal("mmap reader did not win on linux")
	}
	if r.Detected != r.Flips || r.Flips == 0 {
		t.Fatalf("detected %d of %d flips", r.Detected, r.Flips)
	}
	if r.Zeroed == 0 {
		t.Fatal("recovery zeroed nothing")
	}
	if r.ScanMBs <= 0 || r.WriteMBs <= 0 || r.ProtectMBs <= 0 {
		t.Fatalf("non-positive throughput: %+v", r)
	}
	if r.DirtyScanSeconds <= 0 || r.DirtyScanSeconds >= r.ScanSeconds*10 {
		t.Fatalf("dirty scan latency %v implausible vs full scan %v", r.DirtyScanSeconds, r.ScanSeconds)
	}
	if r.Render() == "" {
		t.Fatal("empty render")
	}
	path := filepath.Join(t.TempDir(), "BENCH_bigscale.json")
	if err := r.WriteJSON(path); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
}

func TestBigScaleLayerBytes(t *testing.T) {
	if got := bigScaleLayerBytes(2 << 30); got != 64<<20 {
		t.Fatalf("2 GiB → layer %d", got)
	}
	if got := bigScaleLayerBytes(8 << 20); got != 1<<20 {
		t.Fatalf("8 MiB → layer %d", got)
	}
}
