package exp

import (
	"fmt"
	"strings"

	"radar/internal/attack"
	"radar/internal/core"
	"radar/internal/model"
)

// Figure2Groups lists the swept group sizes per model (paper Fig 2/4).
func Figure2Groups(name string) []int {
	if name == ModelRN18 {
		return []int{64, 128, 256, 512, 1024}
	}
	return []int{4, 8, 16, 32, 64}
}

// Figure2Result reproduces Fig 2: the proportion of attack rounds in which
// at least one checksum group receives multiple vulnerable bits, as a
// function of group size (contiguous grouping, the pre-interleave view).
type Figure2Result struct {
	// Proportion maps model → G → fraction of rounds with a multi-bit group.
	Proportion map[string]map[int]float64
	// Gs echoes the sweep per model.
	Gs map[string][]int
}

// Figure2 computes group-occupancy statistics of the PBFA profiles.
func Figure2(c *Context) Figure2Result {
	res := Figure2Result{
		Proportion: map[string]map[int]float64{},
		Gs:         map[string][]int{},
	}
	for _, name := range []string{ModelRN20, ModelRN18} {
		res.Gs[name] = Figure2Groups(name)
		res.Proportion[name] = map[int]float64{}
		profiles := c.Profiles(name)
		b := model.Load(specFor(name))
		for _, g := range res.Gs[name] {
			gs := ScaledG(name, g)
			multi := 0
			for _, p := range profiles {
				if hasMultiBitGroup(b, p, gs) {
					multi++
				}
			}
			res.Proportion[name][g] = float64(multi) / float64(len(profiles))
		}
	}
	return res
}

// hasMultiBitGroup reports whether any contiguous group of size g receives
// two or more flips of the profile.
func hasMultiBitGroup(b *model.Bundle, p attack.Profile, g int) bool {
	seen := map[[2]int]int{}
	for _, f := range p {
		key := [2]int{f.Addr.LayerIndex, f.Addr.WeightIndex / g}
		seen[key]++
		if seen[key] >= 2 {
			return true
		}
	}
	return false
}

// Render prints the Fig 2 series.
func (r Figure2Result) Render() string {
	var sb strings.Builder
	sb.WriteString("Figure 2: Proportion of rounds with multiple vulnerable bits in one group\n")
	for _, name := range []string{ModelRN20, ModelRN18} {
		cells := []string{name}
		for _, g := range r.Gs[name] {
			cells = append(cells, fmt.Sprintf("G=%d:%s", g, pct(r.Proportion[name][g])))
		}
		sb.WriteString(row(cells...) + "\n")
	}
	return sb.String()
}

// DetectionCell is one Fig 4 point: mean detected flips out of NumFlips.
type DetectionCell struct {
	// Plain and Interleaved are mean detected counts.
	Plain, Interleaved float64
}

// Figure4Result reproduces Fig 4: average detected bit-flips vs G.
type Figure4Result struct {
	// Detected maps model → G → detection means.
	Detected map[string]map[int]DetectionCell
	// Gs echoes the sweep; NumFlips the attack size.
	Gs       map[string][]int
	NumFlips int
}

// Figure4 protects a fresh model per (G, interleave) configuration,
// replays each PBFA profile, scans, and counts how many of the profile's
// flips land in flagged groups.
func Figure4(c *Context) Figure4Result {
	res := Figure4Result{
		Detected: map[string]map[int]DetectionCell{},
		Gs:       map[string][]int{},
		NumFlips: c.Opt.NumFlips,
	}
	for _, name := range []string{ModelRN20, ModelRN18} {
		res.Gs[name] = Figure2Groups(name)
		res.Detected[name] = map[int]DetectionCell{}
		profiles := c.Profiles(name)
		for _, g := range res.Gs[name] {
			var cell DetectionCell
			for _, inter := range []bool{false, true} {
				var sum float64
				for _, p := range profiles {
					b := model.Load(specFor(name))
					cfg := core.DefaultConfig(ScaledG(name, g))
					cfg.Interleave = inter
					prot := core.Protect(b.QModel, cfg)
					ApplyProfile(b, p)
					flagged := prot.Scan()
					sum += float64(prot.CountDetected(p.Addresses(), flagged))
				}
				mean := sum / float64(len(profiles))
				if inter {
					cell.Interleaved = mean
				} else {
					cell.Plain = mean
				}
			}
			res.Detected[name][g] = cell
		}
	}
	return res
}

// Render prints the Fig 4 series.
func (r Figure4Result) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Figure 4: Average detected bit-flips out of %d (plain/interleave)\n", r.NumFlips)
	for _, name := range []string{ModelRN20, ModelRN18} {
		cells := []string{name}
		for _, g := range r.Gs[name] {
			d := r.Detected[name][g]
			cells = append(cells, fmt.Sprintf("G=%d:%.1f/%.1f", g, d.Plain, d.Interleaved))
		}
		sb.WriteString(row(cells...) + "\n")
	}
	return sb.String()
}

// Figure5Result reproduces Fig 5: ResNet-18 recovery bars (a rendering of
// the Table III data for the ImageNet-substitute model).
type Figure5Result struct {
	// T3 is the underlying Table III data.
	T3 TableIIIResult
}

// Figure5 derives the bar-chart series from Table III.
func Figure5(t3 TableIIIResult) Figure5Result { return Figure5Result{T3: t3} }

// Render prints the Fig 5 bars.
func (r Figure5Result) Render() string {
	var sb strings.Builder
	sb.WriteString("Figure 5: Accuracy recovery on the ResNet-18 substitute (interleaved)\n")
	gs := r.T3.Gs[ModelRN18]
	for _, nbf := range []int{5, 10} {
		cells := []string{fmt.Sprintf("N_BF=%d", nbf), "w/o:" + pct(r.T3.Attacked[ModelRN18][nbf])}
		for _, g := range gs {
			cells = append(cells, fmt.Sprintf("G=%d:%s", g, pct(r.T3.Cells[ModelRN18][nbf][g].Interleaved)))
		}
		sb.WriteString(row(cells...) + "\n")
	}
	fmt.Fprintf(&sb, "clean accuracy: %s\n", pct(r.T3.Clean[ModelRN18]))
	return sb.String()
}

// TradeoffPoint is one Fig 6 point.
type TradeoffPoint struct {
	// G is the group size.
	G int
	// StorageKB is the signature storage on the full-size model.
	StorageKB float64
	// Accuracy is the recovered accuracy on the scaled model (N_BF = 10,
	// interleaved).
	Accuracy float64
}

// Figure6Result reproduces Fig 6: recovery accuracy vs storage overhead.
type Figure6Result struct {
	// Points maps model name to its trade-off curve.
	Points map[string][]TradeoffPoint
}

// Figure6 sweeps G, measuring recovered accuracy on the scaled models and
// signature storage on the full-size shape tables (where the paper's KB
// figures live).
func Figure6(c *Context) Figure6Result {
	res := Figure6Result{Points: map[string][]TradeoffPoint{}}
	fullShapes := map[string]*model.ShapeTable{
		ModelRN20: model.ResNet20CIFARShapes(),
		ModelRN18: model.ResNet18ImageNetShapes(),
	}
	for _, name := range []string{ModelRN20, ModelRN18} {
		eval := c.EvalSet(name)
		rounds := c.Opt.RecoverRounds
		if rounds > c.Opt.roundsFor(name) {
			rounds = c.Opt.roundsFor(name)
		}
		profiles := c.Profiles(name)[:rounds]
		var weights []int
		for _, l := range fullShapes[name].Layers {
			weights = append(weights, l.Weights)
		}
		for _, g := range Figure2Groups(name) {
			var accSum float64
			for _, p := range profiles {
				b := model.Load(specFor(name))
				cfg := core.DefaultConfig(ScaledG(name, g))
				prot := core.Protect(b.QModel, cfg)
				ApplyProfile(b, p)
				prot.DetectAndRecover()
				accSum += model.Evaluate(b.Net, eval, 100)
			}
			res.Points[name] = append(res.Points[name], TradeoffPoint{
				G:         g,
				StorageKB: core.StorageForWeights(weights, g, 2, true).SignatureKB(),
				Accuracy:  accSum / float64(len(profiles)),
			})
		}
	}
	return res
}

// Render prints the Fig 6 curves.
func (r Figure6Result) Render() string {
	var sb strings.Builder
	sb.WriteString("Figure 6: Recovered accuracy vs signature storage (N_BF=10, interleaved)\n")
	for _, name := range []string{ModelRN20, ModelRN18} {
		for _, p := range r.Points[name] {
			sb.WriteString(row(name, fmt.Sprintf("G=%d", p.G),
				fmt.Sprintf("%.2fKB", p.StorageKB), pct(p.Accuracy)) + "\n")
		}
	}
	return sb.String()
}

// Figure7Result reproduces Fig 7: the knowledgeable attacker who appends
// paired opposite-direction flips to evade the addition checksum.
type Figure7Result struct {
	// Detected maps G → mean detected flips (plain/interleaved) out of
	// TotalFlips.
	Detected map[int]DetectionCell
	// Recovered maps G → mean recovered accuracy (plain/interleaved).
	Recovered map[int]RecoveryCell
	// Gs is the sweep; TotalFlips counts base + evasion flips.
	Gs         []int
	TotalFlips int
}

// Figure7 runs the §VIII knowledgeable attacker on the ResNet-20s model:
// each PBFA profile is augmented with one cancelling MSB flip per original
// flip, aimed at the attacker's assumed contiguous group of size G.
func Figure7(c *Context) Figure7Result {
	res := Figure7Result{
		Detected:  map[int]DetectionCell{},
		Recovered: map[int]RecoveryCell{},
		Gs:        Figure2Groups(ModelRN20),
	}
	profiles := c.Profiles(ModelRN20)
	eval := c.EvalSet(ModelRN20)
	for _, g := range res.Gs {
		var det DetectionCell
		var rec RecoveryCell
		for _, inter := range []bool{false, true} {
			var detSum, accSum float64
			for ri, p := range profiles {
				b := model.Load(specFor(ModelRN20))
				gs := ScaledG(ModelRN20, g)
				cfg := core.DefaultConfig(gs)
				cfg.Interleave = inter
				prot := core.Protect(b.QModel, cfg)
				// Mount the base profile, then the paired evasion flips
				// computed against the attacker's contiguous-G assumption.
				ApplyProfile(b, p)
				extra := attack.PairedEvasion(b.QModel, p, maxInt(gs, 2), c.Opt.Seed+int64(ri))
				all := append(append(attack.Profile{}, p...), extra...)
				flagged := prot.Scan()
				detSum += float64(prot.CountDetected(all.Addresses(), flagged))
				prot.Recover(flagged)
				accSum += model.Evaluate(b.Net, eval, 100)
				if res.TotalFlips < len(all) {
					res.TotalFlips = len(all)
				}
			}
			n := float64(len(profiles))
			if inter {
				det.Interleaved, rec.Interleaved = detSum/n, accSum/n
			} else {
				det.Plain, rec.Plain = detSum/n, accSum/n
			}
		}
		res.Detected[g] = det
		res.Recovered[g] = rec
	}
	return res
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Render prints the Fig 7 series.
func (r Figure7Result) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Figure 7: Knowledgeable attacker (%d total flips, plain/interleave)\n", r.TotalFlips)
	for _, g := range r.Gs {
		d, a := r.Detected[g], r.Recovered[g]
		sb.WriteString(row(fmt.Sprintf("G=%d", g),
			fmt.Sprintf("det %.1f/%.1f", d.Plain, d.Interleaved),
			fmt.Sprintf("acc %.1f%%/%.1f%%", 100*a.Plain, 100*a.Interleaved)) + "\n")
	}
	return sb.String()
}
