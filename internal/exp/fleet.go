package exp

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"radar/internal/attack"
	"radar/internal/chaos"
	"radar/internal/core"
	"radar/internal/fleet"
	"radar/internal/model"
	"radar/internal/quant"
	"radar/internal/rowhammer"
	"radar/internal/serve"
	"radar/internal/tensor"
)

// FleetPhase is one traffic phase of the fleet experiment.
type FleetPhase struct {
	// Name labels the phase: steady, replica-kill, rolling-rekey, chaos.
	Name string `json:"name"`
	// Requests issued, Failures among them (non-2xx or transport error).
	Requests int `json:"requests"`
	Failures int `json:"failures"`
	// Seconds of wall time → RPS over the phase.
	Seconds float64 `json:"seconds"`
	RPS     float64 `json:"rps"`
	// SuccessRate is (Requests-Failures)/Requests.
	SuccessRate float64 `json:"success_rate"`
}

// FleetScalingResult is the fleet benchmark: a consistent-hash router in
// front of live radar-serve replicas (each hosting every model, each under
// bit-flip attack, each reached through a fault-injecting chaos proxy),
// driven through four phases — steady routed traffic, one replica killed
// mid-traffic, a zero-downtime rolling rekey with traffic flowing, and a
// gray-failure chaos storm (hangs, TCP resets, 5xx bursts) against the
// survivors. It is written as BENCH_fleetscale.json by
// radar-bench -exp fleetscale.
type FleetScalingResult struct {
	// Replicas / Models describe the fleet topology.
	Replicas int `json:"replicas"`
	Models   int `json:"models"`
	// GOMAXPROCS records the host parallelism the numbers were taken at.
	GOMAXPROCS int `json:"gomaxprocs"`
	// Clients is the number of concurrent request streams per phase.
	Clients int `json:"clients"`
	// FlipsPerRound is the adversary's batch size per attack round.
	FlipsPerRound int `json:"flips_per_round"`
	// AttackRounds counts bit-flip injections across the whole run.
	AttackRounds int `json:"attack_rounds"`
	// Phases holds steady, replica-kill, rolling-rekey and chaos in order.
	Phases []FleetPhase `json:"phases"`
	// Requests / RPS / SuccessRate aggregate across phases.
	Requests    int     `json:"requests"`
	RPS         float64 `json:"rps"`
	SuccessRate float64 `json:"success_rate"`
	// InRingAfterKill is the router's ring size once the killed replica
	// was ejected (replicas-1 when failover worked).
	InRingAfterKill int `json:"in_ring_after_kill"`
	// RekeyedReplicas counts replicas the rolling rekey reached (every
	// live one; the killed replica reports an error and is not counted).
	RekeyedReplicas int `json:"rekeyed_replicas"`
	// ChaosFaults counts the faults the chaos proxies actually injected
	// during the chaos phase, by fault name (the "none" entry is clean
	// passthroughs).
	ChaosFaults map[string]int64 `json:"chaos_faults,omitempty"`
}

// fleetReplica is one live radar-serve instance under the router: the
// service, its HTTP listener, and the per-model adversary state.
type fleetReplica struct {
	svc   *serve.Service
	ts    *httptest.Server
	prots []*core.Protector
	drams []*rowhammer.DRAM
}

// FleetScaling boots nReplicas=3 full serve.Service instances, each
// hosting the same 2 protected tiny models, each fronted by a chaos proxy
// (passthrough until the chaos phase), behind a fleet router, and measures
// the four phases. The adversary keeps flipping MSBs in rotating
// (replica, model) targets throughout — the fleet's job is routing and
// availability; each replica's scrubber still owns recovery.
func FleetScaling() FleetScalingResult {
	const (
		nReplicas     = 3
		nModels       = 2
		clients       = 4
		perClient     = 30
		flipsPerRound = 4
		attackEvery   = 40
	)
	res := FleetScalingResult{
		Replicas:      nReplicas,
		Models:        nModels,
		GOMAXPROCS:    runtime.GOMAXPROCS(0),
		Clients:       clients,
		FlipsPerRound: flipsPerRound,
	}

	names := make([]string, nModels)
	for i := range names {
		names[i] = fmt.Sprintf("m%d", i)
	}

	replicas := make([]*fleetReplica, nReplicas)
	proxies := make([]*chaos.Proxy, nReplicas)
	proxyTS := make([]*httptest.Server, nReplicas)
	urls := make([]string, nReplicas)
	var inputShape []int
	for r := range replicas {
		fr := &fleetReplica{}
		opts := []serve.ServiceOption{}
		for _, name := range names {
			b, eng, prot, cfg := tinyServeModel(true, true)
			if inputShape == nil {
				x, _ := b.Test.Batch(0, 1)
				inputShape = x.Shape[1:]
			}
			fr.prots = append(fr.prots, prot)
			fr.drams = append(fr.drams, rowhammer.New(b.QModel, rowhammer.DefaultGeometry(), int64(23+r*nModels+len(fr.drams))))
			opts = append(opts, serve.WithModel(name, eng, prot, serve.WithConfig(cfg)))
		}
		svc, err := serve.Open(opts...)
		if err != nil {
			panic(err)
		}
		fr.svc = svc
		fr.ts = httptest.NewServer(svc.Handler())
		replicas[r] = fr
		// Each replica sits behind its own chaos proxy — passthrough for
		// the first three phases, fault-injecting in the fourth — so every
		// phase's traffic takes the identical path.
		p, err := chaos.New(chaos.Config{Target: fr.ts.URL, Seed: int64(101 + r)})
		if err != nil {
			panic(err)
		}
		proxies[r] = p
		proxyTS[r] = httptest.NewServer(p.Handler())
		urls[r] = proxyTS[r].URL
	}

	fl, err := fleet.New(fleet.Config{
		Replicas:       urls,
		HealthInterval: 20 * time.Millisecond,
		HealthTimeout:  time.Second,
		DrainWait:      20 * time.Millisecond,
		AttemptTimeout: time.Second,
		BackoffBase:    2 * time.Millisecond,
		BackoffMax:     20 * time.Millisecond,
	})
	if err != nil {
		panic(err)
	}
	fl.Start()
	front := httptest.NewServer(fl.Handler())
	defer func() {
		front.Close()
		fl.Stop()
		for i, fr := range replicas {
			proxies[i].Close()
			proxyTS[i].Close()
			fr.ts.Close()
			fr.svc.Close()
		}
	}()

	// Request bodies: 32 distinct inputs from the shared test set, each
	// marshalled once with an explicit shape.
	atk := model.Load(model.TinySpec())
	profiles := attack.RandomMSB(atk.QModel, flipsPerRound*16, 47).Addresses()
	b := model.Load(model.TinySpec())
	x, _ := b.Test.Batch(0, 32)
	vol := tensor.Volume(x.Shape[1:])
	bodies := make([][]byte, 32)
	for i := range bodies {
		req := serve.InferRequest{Input: x.Data[i*vol : (i+1)*vol], Shape: inputShape}
		bodies[i], _ = json.Marshal(req)
	}

	var (
		mu      sync.Mutex
		served  int64
		attacks int
	)
	// inject mounts one flip batch into a rotating (replica, model) target.
	inject := func() {
		mu.Lock()
		lo := (attacks * flipsPerRound) % len(profiles)
		batch := profiles[lo : lo+flipsPerRound]
		target := attacks % (nReplicas * nModels)
		attacks++
		mu.Unlock()
		fr := replicas[target/nModels]
		mi := target % nModels
		fr.svc.Inject(names[mi], func(m *quant.Model) {
			fr.drams[mi].MountProfile(batch)
			fr.drams[mi].Refresh()
		})
	}

	client := &http.Client{Timeout: 10 * time.Second}
	// runPhase drives clients×perClient routed inferences through the
	// fleet front-end, spreading across models, attacking every
	// attackEvery answers, and calling onRequest(seq) before each send.
	runPhase := func(name string, onRequest func(seq int)) FleetPhase {
		var (
			wg       sync.WaitGroup
			failures int64
		)
		t0 := time.Now()
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				for i := 0; i < perClient; i++ {
					seq := c*perClient + i
					if onRequest != nil {
						onRequest(seq)
					}
					url := front.URL + "/v1/models/" + names[seq%nModels] + "/infer"
					resp, err := client.Post(url, "application/json", bytes.NewReader(bodies[seq%len(bodies)]))
					ok := err == nil && resp.StatusCode == http.StatusOK
					if resp != nil {
						resp.Body.Close()
					}
					mu.Lock()
					if !ok {
						failures++
					}
					served++
					doAttack := served%attackEvery == 0
					mu.Unlock()
					if doAttack {
						inject()
					}
				}
			}(c)
		}
		wg.Wait()
		dt := time.Since(t0)
		n := clients * perClient
		return FleetPhase{
			Name:        name,
			Requests:    n,
			Failures:    int(failures),
			Seconds:     dt.Seconds(),
			RPS:         float64(n) / dt.Seconds(),
			SuccessRate: float64(n-int(failures)) / float64(n),
		}
	}

	// Phase 1: steady routed traffic across the full fleet.
	res.Phases = append(res.Phases, runPhase("steady", nil))

	// Phase 2: one replica dies mid-traffic — after a quarter of the
	// phase's requests are in flight, its listener drops every connection.
	var killOnce sync.Once
	victim := replicas[nReplicas-1]
	res.Phases = append(res.Phases, runPhase("replica-kill", func(seq int) {
		if seq >= clients*perClient/4 {
			killOnce.Do(func() {
				victim.ts.CloseClientConnections()
				victim.ts.Close()
			})
		}
	}))
	res.InRingAfterKill = len(fl.Ring().Members())

	// Phase 3: rolling rekey with traffic flowing. The rekey runs in the
	// background while the same routed load continues; it must finish with
	// zero failed requests.
	rekeyDone := make(chan *fleet.AdminResponse, 1)
	go func() {
		resp, err := client.Post(front.URL+"/v1/admin/rekey", "application/json", strings.NewReader("{}"))
		if err != nil {
			rekeyDone <- nil
			return
		}
		defer resp.Body.Close()
		var ar fleet.AdminResponse
		if json.NewDecoder(resp.Body).Decode(&ar) != nil {
			rekeyDone <- nil
			return
		}
		rekeyDone <- &ar
	}()
	res.Phases = append(res.Phases, runPhase("rolling-rekey", nil))
	if ar := <-rekeyDone; ar != nil {
		for _, rep := range ar.Replicas {
			if rep.Err == "" && rep.Status == http.StatusOK {
				res.RekeyedReplicas++
			}
		}
	}

	// Phase 4: gray-failure chaos storm against the survivors. The proxies
	// switch from passthrough to a mix of hangs (bounded by the fleet's
	// attempt deadline), TCP resets and injected 5xx; the self-healing
	// stack — per-attempt timeouts, jittered failover, fast ejection, probe
	// readmission, panic routing — carries the same routed load through it.
	storm := chaos.Mix{Hang: 0.02, Reset: 0.02, Err5xx: 0.02, HangFor: time.Second}
	before := make([]map[chaos.Fault]int64, nReplicas)
	for i, p := range proxies {
		before[i] = p.Counts()
		if err := p.SetMix(storm); err != nil {
			panic(err)
		}
	}
	res.Phases = append(res.Phases, runPhase("chaos", nil))
	res.ChaosFaults = make(map[string]int64)
	for i, p := range proxies {
		for fault, n := range p.Counts() {
			res.ChaosFaults[string(fault)] += n - before[i][fault]
		}
	}

	res.AttackRounds = attacks
	var sec float64
	for _, p := range res.Phases {
		res.Requests += p.Requests
		sec += p.Seconds
	}
	failed := 0
	for _, p := range res.Phases {
		failed += p.Failures
	}
	res.RPS = float64(res.Requests) / sec
	res.SuccessRate = float64(res.Requests-failed) / float64(res.Requests)
	return res
}

// Render prints the phases in the repo's table layout.
func (r FleetScalingResult) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Fleet routing under attack — %d replicas × %d models, %d clients, %d MSB flips per attack round (GOMAXPROCS=%d)\n",
		r.Replicas, r.Models, r.Clients, r.FlipsPerRound, r.GOMAXPROCS)
	sb.WriteString(row("phase", "requests", "failures", "req/s", "success") + "\n")
	for _, p := range r.Phases {
		sb.WriteString(row(
			p.Name,
			fmt.Sprintf("%d", p.Requests),
			fmt.Sprintf("%d", p.Failures),
			fmt.Sprintf("%.0f", p.RPS),
			fmt.Sprintf("%.1f%%", p.SuccessRate*100),
		) + "\n")
	}
	fmt.Fprintf(&sb, "replica killed mid-traffic: ring %d/%d; rolling rekey reached %d replica(s); %d attack rounds; overall %.1f%% of %d requests\n",
		r.InRingAfterKill, r.Replicas, r.RekeyedReplicas, r.AttackRounds, r.SuccessRate*100, r.Requests)
	if len(r.ChaosFaults) > 0 {
		keys := make([]string, 0, len(r.ChaosFaults))
		for k := range r.ChaosFaults {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		sb.WriteString("chaos phase injected:")
		for _, k := range keys {
			fmt.Fprintf(&sb, " %s=%d", k, r.ChaosFaults[k])
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

// WriteJSON writes the result as indented JSON — the machine-readable
// BENCH artifact consumed by the benchmark trajectory.
func (r FleetScalingResult) WriteJSON(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
