package attack

import (
	"testing"

	"radar/internal/model"
	"radar/internal/nn"
	"radar/internal/quant"
)

// loadTiny returns a fresh trained tiny bundle (cached after first call).
func loadTiny(t testing.TB) *model.Bundle {
	t.Helper()
	return model.Load(model.TinySpec())
}

func TestPBFACommitsRequestedFlips(t *testing.T) {
	b := loadTiny(t)
	cfg := DefaultConfig(1)
	cfg.NumFlips = 5
	p := PBFA(b.QModel, b.Attack, cfg)
	if len(p) != 5 {
		t.Fatalf("committed %d flips, want 5", len(p))
	}
	// Every recorded flip must be reflected in the quantized storage.
	for _, f := range p {
		l := b.QModel.Layers[f.Addr.LayerIndex]
		got := l.Q[f.Addr.WeightIndex]
		// The weight may have been flipped again later in the same profile;
		// at minimum the After value must differ from Before in exactly the
		// recorded bit at commit time.
		if f.After != quant.FlipBit(f.Before, f.Addr.Bit) {
			t.Fatalf("flip record inconsistent: %v", f)
		}
		_ = got
	}
}

func TestPBFADegradesAccuracy(t *testing.T) {
	b := loadTiny(t)
	clean := model.Evaluate(b.Net, b.Test, 100)
	cfg := DefaultConfig(2)
	cfg.NumFlips = 10
	PBFA(b.QModel, b.Attack, cfg)
	attacked := model.Evaluate(b.Net, b.Test, 100)
	if attacked >= clean-0.15 {
		t.Fatalf("PBFA too weak: clean %.3f → attacked %.3f", clean, attacked)
	}
}

func TestPBFAPrefersMSB(t *testing.T) {
	// Observation 1 of the paper: PBFA overwhelmingly targets the MSB.
	var profiles []Profile
	for seed := int64(0); seed < 5; seed++ {
		b := loadTiny(t)
		cfg := DefaultConfig(seed)
		cfg.NumFlips = 5
		profiles = append(profiles, PBFA(b.QModel, b.Attack, cfg))
	}
	s := Classify(profiles)
	total := s.MSB01 + s.MSB10 + s.Others
	if total == 0 {
		t.Fatal("no flips recorded")
	}
	if frac := float64(s.MSB01+s.MSB10) / float64(total); frac < 0.8 {
		t.Fatalf("MSB fraction %.2f < 0.8; PBFA should target MSBs", frac)
	}
}

func TestPBFARangeStatsAccountForAllFlips(t *testing.T) {
	// Observation 3 of the paper (small weights dominate the targets) is an
	// emergent property of full-scale trained weight distributions and is
	// reproduced by the Table II experiment on the scaled ResNets (see
	// internal/exp). Here we only verify the bookkeeping: every committed
	// flip lands in exactly one range bucket.
	var profiles []Profile
	total := 0
	for seed := int64(10); seed < 12; seed++ {
		b := loadTiny(t)
		p := PBFA(b.QModel, b.Attack, DefaultConfig(seed))
		total += len(p)
		profiles = append(profiles, p)
	}
	s := ClassifyRanges(profiles)
	if got := s.NegLarge + s.NegSmall + s.PosSmall + s.PosLarge; got != total {
		t.Fatalf("range buckets sum to %d, want %d", got, total)
	}
}

func TestPBFAIncreasesLossMonotonically(t *testing.T) {
	b := loadTiny(t)
	p := PBFA(b.QModel, b.Attack, DefaultConfig(3))
	for i := 1; i < len(p); i++ {
		if p[i].LossAfter+1e-9 < p[i-1].LossAfter {
			// Progressive search maximizes per-step loss; small decreases can
			// occur because each step is greedy, but a collapse indicates a bug.
			if p[i-1].LossAfter-p[i].LossAfter > 1.0 {
				t.Fatalf("loss collapsed at step %d: %v → %v", i, p[i-1].LossAfter, p[i].LossAfter)
			}
		}
	}
}

func TestPBFADeterministicPerSeed(t *testing.T) {
	b1 := loadTiny(t)
	b2 := loadTiny(t)
	p1 := PBFA(b1.QModel, b1.Attack, DefaultConfig(42))
	p2 := PBFA(b2.QModel, b2.Attack, DefaultConfig(42))
	if len(p1) != len(p2) {
		t.Fatalf("profile lengths differ: %d vs %d", len(p1), len(p2))
	}
	for i := range p1 {
		if p1[i].Addr != p2[i].Addr {
			t.Fatalf("flip %d differs: %v vs %v", i, p1[i].Addr, p2[i].Addr)
		}
	}
}

func TestRandomAttackIsWeak(t *testing.T) {
	// The paper's motivation: random flips barely hurt accuracy.
	b := loadTiny(t)
	clean := model.Evaluate(b.Net, b.Test, 100)
	Random(b.QModel, 20, 7)
	attacked := model.Evaluate(b.Net, b.Test, 100)
	if clean-attacked > 0.25 {
		t.Fatalf("random attack too strong: clean %.3f → %.3f", clean, attacked)
	}
}

func TestRandomMSBFlipsOnlyMSB(t *testing.T) {
	b := loadTiny(t)
	p := RandomMSB(b.QModel, 50, 9)
	for _, f := range p {
		if f.Addr.Bit != quant.MSB {
			t.Fatalf("non-MSB flip in RandomMSB profile: %v", f.Addr)
		}
	}
}

func TestPairedEvasionOppositeDirections(t *testing.T) {
	b := loadTiny(t)
	base := PBFA(b.QModel, b.Attack, DefaultConfig(5))
	extra := PairedEvasion(b.QModel, base, 64, 5)
	if len(extra) == 0 {
		t.Fatal("no evasion flips added")
	}
	// Each extra flip must be an MSB flip in the opposite direction of its
	// base flip and land in the same contiguous group of 64.
	for i, e := range extra {
		if e.Addr.Bit != quant.MSB {
			t.Fatalf("evasion flip %d not on MSB", i)
		}
	}
	// Count directions across base+extra: they must mix 0→1 and 1→0.
	s := Classify([]Profile{base, extra})
	if s.MSB01 == 0 || s.MSB10 == 0 {
		t.Fatalf("paired evasion did not produce opposite directions: %+v", s)
	}
}

func TestMSB1ConfigRestrictsBits(t *testing.T) {
	b := loadTiny(t)
	p := PBFA(b.QModel, b.Attack, MSB1Config(8, 11))
	for _, f := range p {
		if f.Addr.Bit != 6 {
			t.Fatalf("MSB-1 attack flipped bit %d", f.Addr.Bit)
		}
	}
	if len(p) == 0 {
		t.Fatal("MSB-1 attack found no flips")
	}
}

func TestMSB1NeedsMoreFlipsThanMSB(t *testing.T) {
	// Section VIII: restricting to MSB-1 reduces per-flip damage.
	bm := loadTiny(t)
	clean := model.Evaluate(bm.Net, bm.Test, 100)
	cfg := DefaultConfig(21)
	cfg.NumFlips = 6
	PBFA(bm.QModel, bm.Attack, cfg)
	accMSB := model.Evaluate(bm.Net, bm.Test, 100)

	b1 := loadTiny(t)
	PBFA(b1.QModel, b1.Attack, MSB1Config(6, 21))
	accMSB1 := model.Evaluate(b1.Net, b1.Test, 100)

	if accMSB1 < accMSB-0.05 {
		t.Fatalf("MSB-1 attack (%.3f) should be weaker than MSB attack (%.3f), clean %.3f",
			accMSB1, accMSB, clean)
	}
}

func TestClassifyCountsDirections(t *testing.T) {
	p := Profile{
		{Addr: quant.BitAddress{Bit: 7}, Before: 5},   // MSB of 5 is 0 → 0→1
		{Addr: quant.BitAddress{Bit: 7}, Before: -5},  // MSB of −5 is 1 → 1→0
		{Addr: quant.BitAddress{Bit: 3}, Before: 100}, // other
	}
	s := Classify([]Profile{p})
	if s.MSB01 != 1 || s.MSB10 != 1 || s.Others != 1 {
		t.Fatalf("Classify = %+v", s)
	}
}

func TestClassifyRangesBuckets(t *testing.T) {
	p := Profile{
		{Before: -100}, {Before: -10}, {Before: 10}, {Before: 100},
	}
	s := ClassifyRanges([]Profile{p})
	if s.NegLarge != 1 || s.NegSmall != 1 || s.PosSmall != 1 || s.PosLarge != 1 {
		t.Fatalf("ClassifyRanges = %+v", s)
	}
}

func TestTopIndicesByAbs(t *testing.T) {
	v := []float32{0.1, -5, 3, -0.2, 4}
	idx := topIndicesByAbs(v, 3)
	want := map[int]bool{1: true, 4: true, 2: true}
	for _, i := range idx {
		if !want[i] {
			t.Fatalf("unexpected index %d in top-3: %v", i, idx)
		}
	}
}

func TestProfileAddresses(t *testing.T) {
	p := Profile{{Addr: quant.BitAddress{LayerIndex: 1, WeightIndex: 2, Bit: 3}}, {Addr: quant.BitAddress{LayerIndex: 4, WeightIndex: 5, Bit: 6}}}
	a := p.Addresses()
	if len(a) != 2 || a[1] != (quant.BitAddress{LayerIndex: 4, WeightIndex: 5, Bit: 6}) {
		t.Fatalf("Addresses = %v", a)
	}
}

func TestPBFAZeroFlips(t *testing.T) {
	b := loadTiny(t)
	cfg := DefaultConfig(1)
	cfg.NumFlips = 0
	if p := PBFA(b.QModel, b.Attack, cfg); p != nil {
		t.Fatalf("expected nil profile, got %v", p)
	}
}

// Guard: attack must leave float weights exactly on the quantization grid.
func TestAttackKeepsWeightsOnGrid(t *testing.T) {
	b := loadTiny(t)
	PBFA(b.QModel, b.Attack, DefaultConfig(13))
	for _, l := range b.QModel.Layers {
		for i, q := range l.Q {
			if l.Param.Value.Data[i] != float32(q)*l.Scale {
				t.Fatalf("layer %s weight %d off grid after attack", l.Name, i)
			}
		}
	}
}

var _ = nn.CrossEntropyLoss // keep import when test list shrinks
