package attack

import (
	"testing"

	"radar/internal/core"
	"radar/internal/quant"
)

func TestTargetedMisroutesSourceClass(t *testing.T) {
	b := loadTiny(t)
	cfg := DefaultTargetedConfig(0, 2, 9)
	before := MisrouteRate(b.QModel, b.Test, 0, 2)
	p := Targeted(b.QModel, b.Attack, cfg)
	if len(p) == 0 {
		t.Fatal("targeted attack committed no flips")
	}
	after := MisrouteRate(b.QModel, b.Test, 0, 2)
	if after <= before {
		t.Fatalf("targeted attack did not raise misroute rate: %.2f → %.2f", before, after)
	}
}

func TestTargetedPrefersMSBLikePBFA(t *testing.T) {
	b := loadTiny(t)
	p := Targeted(b.QModel, b.Attack, DefaultTargetedConfig(1, 3, 10))
	s := Classify([]Profile{p})
	total := s.MSB01 + s.MSB10 + s.Others
	if total == 0 {
		t.Fatal("no flips")
	}
	if frac := float64(s.MSB01+s.MSB10) / float64(total); frac < 0.5 {
		t.Fatalf("targeted attack MSB fraction %.2f unexpectedly low", frac)
	}
}

// TestRADARDetectsTargetedAttack: the defense is objective-agnostic — the
// targeted variant's MSB flips are flagged exactly like PBFA's.
func TestRADARDetectsTargetedAttack(t *testing.T) {
	b := loadTiny(t)
	prot := core.Protect(b.QModel, core.DefaultConfig(8))
	p := Targeted(b.QModel, b.Attack, DefaultTargetedConfig(0, 1, 11))
	flagged := prot.Scan()
	detected := prot.CountDetected(p.Addresses(), flagged)
	// Non-MSB flips may escape the 2-bit signature, and a pair of MSB flips
	// that shares a group can cancel under the mask (the residual risk the
	// paper quantifies in §VI.B), so allow a small shortfall from the MSB
	// count — but the bulk of the profile must be flagged.
	msb := 0
	for _, f := range p {
		if f.Addr.Bit == quant.MSB {
			msb++
		}
	}
	if detected < msb-2 {
		t.Fatalf("detected %d flips but profile has %d MSB flips", detected, msb)
	}
	if detected*2 < len(p) {
		t.Fatalf("detected only %d of %d targeted flips", detected, len(p))
	}
}

func TestTargetedOnMissingClass(t *testing.T) {
	b := loadTiny(t)
	cfg := DefaultTargetedConfig(99, 0, 1) // class 99 does not exist
	if p := Targeted(b.QModel, b.Attack, cfg); p != nil {
		t.Fatalf("expected nil profile for missing class, got %d flips", len(p))
	}
}

func TestMisrouteRateBounds(t *testing.T) {
	b := loadTiny(t)
	r := MisrouteRate(b.QModel, b.Test, 0, 0)
	// Source == target: rate is the per-class accuracy, within [0,1].
	if r < 0 || r > 1 {
		t.Fatalf("rate out of bounds: %v", r)
	}
	if MisrouteRate(b.QModel, b.Test, 99, 0) != 0 {
		t.Fatal("missing class must yield rate 0")
	}
}
