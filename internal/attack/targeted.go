package attack

import (
	"math/rand"
	"sort"

	"radar/internal/data"
	"radar/internal/nn"
	"radar/internal/quant"
	"radar/internal/tensor"
)

// TargetedConfig controls a targeted bit-flip attack: instead of crushing
// overall accuracy, the attacker forces inputs of a source class to be
// classified as a chosen target class (the T-BFA family that followed
// PBFA; included as an extension because RADAR's detection is
// attack-objective-agnostic — it sees MSB flips either way).
type TargetedConfig struct {
	// SourceClass is the class whose inputs should be misrouted.
	SourceClass int
	// TargetClass is the label the attacker wants them to receive.
	TargetClass int
	// NumFlips is the flip budget.
	NumFlips int
	// BatchSize is the number of source-class samples used for gradients.
	BatchSize int
	// Seed selects the sample batch.
	Seed int64
	// TopWeightsPerLayer / TrialCandidates mirror Config.
	TopWeightsPerLayer, TrialCandidates int
}

// DefaultTargetedConfig returns a working configuration.
func DefaultTargetedConfig(src, dst int, seed int64) TargetedConfig {
	return TargetedConfig{
		SourceClass: src, TargetClass: dst,
		NumFlips: 10, BatchSize: 32, Seed: seed,
		TopWeightsPerLayer: 20, TrialCandidates: 12,
	}
}

// Targeted runs the targeted attack on m: it maximizes the cross-entropy
// of source-class samples toward the *target* label (equivalently,
// minimizes the loss of labeling them as the target class).
func Targeted(m *quant.Model, atk *data.Dataset, cfg TargetedConfig) Profile {
	rng := rand.New(rand.NewSource(cfg.Seed))
	x, labels := sampleClassBatch(atk, cfg.SourceClass, cfg.BatchSize, rng)
	if x == nil {
		return nil
	}
	// Relabel every sample as the target class: decreasing this loss mis-
	// routes the source class.
	for i := range labels {
		labels[i] = cfg.TargetClass
	}
	allowed := []int{0, 1, 2, 3, 4, 5, 6, 7}

	var profile Profile
	for flip := 0; flip < cfg.NumFlips; flip++ {
		grads := computeGrads(m, x, labels)
		var cands []candidate
		for li, l := range m.Layers {
			// The attacker wants the target-label loss to DROP, so the
			// useful candidates have negative linearized gain; negate the
			// gradient to reuse the maximizing search.
			neg := make([]float32, len(grads[li]))
			for i, g := range grads[li] {
				neg[i] = -g
			}
			cands = append(cands, layerCandidates(li, l, neg, cfg.TopWeightsPerLayer, allowed)...)
		}
		if len(cands) == 0 {
			break
		}
		sort.Slice(cands, func(i, j int) bool { return cands[i].gain > cands[j].gain })
		trials := cfg.TrialCandidates
		if trials <= 0 {
			trials = 1
		}
		if trials > len(cands) {
			trials = len(cands)
		}
		bestLoss := 1e30
		bestIdx := -1
		for t := 0; t < trials; t++ {
			m.FlipBit(cands[t].addr)
			loss := nn.CrossEntropyLoss(m.Net.Forward(x, false), labels)
			m.FlipBit(cands[t].addr)
			if loss < bestLoss {
				bestLoss, bestIdx = loss, t
			}
		}
		if bestIdx < 0 {
			break
		}
		before, after := m.FlipBit(cands[bestIdx].addr)
		profile = append(profile, Flip{
			Addr: cands[bestIdx].addr, Before: before, After: after, LossAfter: bestLoss,
		})
	}
	return profile
}

// sampleClassBatch draws up to batch samples of one class from d; returns
// nil when the class is absent.
func sampleClassBatch(d *data.Dataset, class, batch int, rng *rand.Rand) (*tensor.Tensor, []int) {
	var pool []int
	for i, l := range d.Labels {
		if l == class {
			pool = append(pool, i)
		}
	}
	if len(pool) == 0 {
		return nil, nil
	}
	if batch > len(pool) {
		batch = len(pool)
	}
	idx := make([]int, batch)
	for i := range idx {
		idx[i] = pool[rng.Intn(len(pool))]
	}
	s := d.Subset(idx)
	return s.X, s.Labels
}

// MisrouteRate measures the fraction of source-class test samples
// classified as the target class — the targeted attack's success metric.
func MisrouteRate(m *quant.Model, d *data.Dataset, src, dst int) float64 {
	var pool []int
	for i, l := range d.Labels {
		if l == src {
			pool = append(pool, i)
		}
	}
	if len(pool) == 0 {
		return 0
	}
	s := d.Subset(pool)
	out := m.Net.Forward(s.X, false)
	k := out.Shape[1]
	hit := 0
	for i := range pool {
		if out.Argmax(i*k, k) == dst {
			hit++
		}
	}
	return float64(hit) / float64(len(pool))
}
