package attack

import (
	"math/rand"

	"radar/internal/data"
	"radar/internal/quant"
	"radar/internal/tensor"
)

// sampleBatch draws a random batch from d using rng.
func sampleBatch(d *data.Dataset, batch int, rng *rand.Rand) (*tensor.Tensor, []int) {
	if batch <= 0 || batch > d.Len() {
		batch = d.Len()
	}
	idx := make([]int, batch)
	for i := range idx {
		idx[i] = rng.Intn(d.Len())
	}
	s := d.Subset(idx)
	return s.X, s.Labels
}

// Random flips n uniformly random bits in the model — the weak baseline the
// paper dismisses ("randomly flipping 100 bits merely degrades the accuracy
// by less than 1%"). It returns the committed profile.
func Random(m *quant.Model, n int, seed int64) Profile {
	rng := rand.New(rand.NewSource(seed))
	var profile Profile
	for i := 0; i < n; i++ {
		li := rng.Intn(len(m.Layers))
		wi := rng.Intn(len(m.Layers[li].Q))
		b := rng.Intn(8)
		addr := quant.BitAddress{LayerIndex: li, WeightIndex: wi, Bit: b}
		before, after := m.FlipBit(addr)
		profile = append(profile, Flip{Addr: addr, Before: before, After: after})
	}
	return profile
}

// RandomMSB flips n uniformly random MSBs (bit 7) — used by the paper's
// §VI.B detection-miss-rate micro-experiment.
func RandomMSB(m *quant.Model, n int, seed int64) Profile {
	rng := rand.New(rand.NewSource(seed))
	var profile Profile
	for i := 0; i < n; i++ {
		li := rng.Intn(len(m.Layers))
		wi := rng.Intn(len(m.Layers[li].Q))
		addr := quant.BitAddress{LayerIndex: li, WeightIndex: wi, Bit: quant.MSB}
		before, after := m.FlipBit(addr)
		profile = append(profile, Flip{Addr: addr, Before: before, After: after})
	}
	return profile
}

// PairedEvasion implements the §VIII "flip multiple bits in a group"
// knowledgeable attacker: for each flip already committed in base, it adds
// a complementary MSB flip in the opposite direction (0→1 paired with
// 1→0) on a weight the attacker believes shares a checksum group —
// assuming contiguous grouping of size g, since the secret interleaving is
// unknown to the attacker. The extra flips aim to cancel the addition
// checksum. Returns only the extra flips.
func PairedEvasion(m *quant.Model, base Profile, g int, seed int64) Profile {
	rng := rand.New(rand.NewSource(seed))
	var extra Profile
	for _, f := range base {
		l := m.Layers[f.Addr.LayerIndex]
		// Direction of the original MSB transition (0→1 or 1→0).
		origBit := quant.Bit(f.Before, quant.MSB)
		wantBit := 1 - origBit // partner must flip in the opposite direction
		lo := (f.Addr.WeightIndex / g) * g
		hi := lo + g
		if hi > len(l.Q) {
			hi = len(l.Q)
		}
		// Scan the contiguous group for a partner whose MSB currently has
		// the opposite value; prefer a random start to avoid bias.
		n := hi - lo
		start := lo
		if n > 0 {
			start = lo + rng.Intn(n)
		}
		found := -1
		for k := 0; k < n; k++ {
			i := lo + (start-lo+k)%n
			if i == f.Addr.WeightIndex {
				continue
			}
			if quant.Bit(l.Q[i], quant.MSB) == wantBit {
				found = i
				break
			}
		}
		if found < 0 {
			continue // no cancelling partner available in this group
		}
		addr := quant.BitAddress{LayerIndex: f.Addr.LayerIndex, WeightIndex: found, Bit: quant.MSB}
		before, after := m.FlipBit(addr)
		extra = append(extra, Flip{Addr: addr, Before: before, After: after})
	}
	return extra
}

// MSB1Config returns the §VIII configuration of an attacker avoiding the
// MSB entirely: PBFA restricted to bit 6 (MSB-1). The paper observes ~3×
// more flips are needed for comparable damage.
func MSB1Config(numFlips int, seed int64) Config {
	cfg := DefaultConfig(seed)
	cfg.NumFlips = numFlips
	cfg.AllowedBits = []int{6}
	return cfg
}

// BitPositionStats classifies a set of profiles the way Table I does:
// counts of MSB 0→1 flips, MSB 1→0 flips, and flips on any other bit.
type BitPositionStats struct {
	// MSB01 counts MSB flips where the stored bit went 0→1.
	MSB01 int
	// MSB10 counts MSB flips where the stored bit went 1→0.
	MSB10 int
	// Others counts flips on bits 0–6.
	Others int
}

// Classify accumulates Table-I statistics over profiles.
func Classify(profiles []Profile) BitPositionStats {
	var s BitPositionStats
	for _, p := range profiles {
		for _, f := range p {
			if f.Addr.Bit != quant.MSB {
				s.Others++
				continue
			}
			if quant.Bit(f.Before, quant.MSB) == 0 {
				s.MSB01++
			} else {
				s.MSB10++
			}
		}
	}
	return s
}

// WeightRangeStats buckets the pre-flip quantized values of targeted
// weights the way Table II does.
type WeightRangeStats struct {
	// NegLarge counts weights in (−128, −32].
	NegLarge int
	// NegSmall counts weights in (−32, 0].
	NegSmall int
	// PosSmall counts weights in (0, 32).
	PosSmall int
	// PosLarge counts weights in [32, 127].
	PosLarge int
}

// ClassifyRanges accumulates Table-II statistics over profiles.
func ClassifyRanges(profiles []Profile) WeightRangeStats {
	var s WeightRangeStats
	for _, p := range profiles {
		for _, f := range p {
			v := int(f.Before)
			switch {
			case v <= -32:
				s.NegLarge++
			case v <= 0:
				s.NegSmall++
			case v < 32:
				s.PosSmall++
			default:
				s.PosLarge++
			}
		}
	}
	return s
}
