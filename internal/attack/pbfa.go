// Package attack implements the Progressive Bit-Flip Attack (PBFA) of
// Rakin et al. (ICCV 2019) against int8-quantized models, plus the
// knowledgeable-attacker variants of the RADAR paper §VIII and a random
// bit-flip baseline. PBFA is the threat RADAR defends against: it ranks
// weight bits by loss gradient, trial-flips the best candidates and commits
// the flip that maximizes the real loss, repeating progressively.
package attack

import (
	"math/rand"
	"sort"

	"radar/internal/data"
	"radar/internal/nn"
	"radar/internal/quant"
	"radar/internal/tensor"
)

// Flip records one committed bit flip.
type Flip struct {
	// Addr is the flipped bit.
	Addr quant.BitAddress
	// Before and After are the quantized values around the flip.
	Before, After int8
	// LossAfter is the attack-batch loss after committing the flip.
	LossAfter float64
}

// Profile is the ordered list of flips from one attack round — the paper's
// "vulnerable bit profile" that the hardware attacker then mounts through
// rowhammer.
type Profile []Flip

// Addresses returns just the bit addresses of the profile.
func (p Profile) Addresses() []quant.BitAddress {
	out := make([]quant.BitAddress, len(p))
	for i, f := range p {
		out[i] = f.Addr
	}
	return out
}

// Config controls a PBFA run.
type Config struct {
	// NumFlips is the number of bit flips to commit (paper: 5, 10, 20).
	NumFlips int
	// TopWeightsPerLayer is how many gradient-ranked weights per layer are
	// scored as candidates.
	TopWeightsPerLayer int
	// TrialCandidates is how many of the best gradient-ranked candidates
	// (pooled across layers) get a real loss evaluation before committing
	// (the progressive search). Larger is closer to exhaustive BFA but
	// slower.
	TrialCandidates int
	// BatchSize is the attacker's batch size drawn from its dataset.
	BatchSize int
	// Seed selects the attack batch (each round uses a fresh batch,
	// which is where attack-to-attack variability comes from).
	Seed int64
	// AllowedBits restricts which bit positions may be flipped; empty
	// means all 8. Section VIII's MSB-1 attacker passes {6}.
	AllowedBits []int
}

// DefaultConfig returns the configuration used throughout the paper's
// evaluation: 10 flips with a standard progressive search.
func DefaultConfig(seed int64) Config {
	return Config{
		NumFlips:           10,
		TopWeightsPerLayer: 20,
		TrialCandidates:    12,
		BatchSize:          32,
		Seed:               seed,
	}
}

// candidate is a scored potential flip.
type candidate struct {
	addr quant.BitAddress
	gain float64 // estimated loss increase from the gradient linearization
}

// PBFA runs the progressive bit-flip attack on m using batches drawn from
// atk, committing cfg.NumFlips flips into the model's quantized storage
// (and its synchronized float weights). It returns the committed profile.
func PBFA(m *quant.Model, atk *data.Dataset, cfg Config) Profile {
	if cfg.NumFlips <= 0 {
		return nil
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	x, labels := sampleBatch(atk, cfg.BatchSize, rng)

	allowed := cfg.AllowedBits
	if len(allowed) == 0 {
		allowed = []int{0, 1, 2, 3, 4, 5, 6, 7}
	}

	var profile Profile
	for flip := 0; flip < cfg.NumFlips; flip++ {
		grads := computeGrads(m, x, labels)

		// In-layer search: collect the gradient-ranked candidates of every
		// layer into one pool.
		var cands []candidate
		for li, l := range m.Layers {
			cands = append(cands, layerCandidates(li, l, grads[li], cfg.TopWeightsPerLayer, allowed)...)
		}
		if len(cands) == 0 {
			break
		}
		sort.Slice(cands, func(i, j int) bool { return cands[i].gain > cands[j].gain })

		// Cross-layer search: trial the top candidates with a real loss
		// evaluation and commit the strongest.
		trials := cfg.TrialCandidates
		if trials <= 0 {
			trials = 1
		}
		if trials > len(cands) {
			trials = len(cands)
		}
		bestLoss := -1.0
		bestIdx := 0
		for t := 0; t < trials; t++ {
			m.FlipBit(cands[t].addr)
			loss := nn.CrossEntropyLoss(m.Net.Forward(x, false), labels)
			m.FlipBit(cands[t].addr) // undo
			if loss > bestLoss {
				bestLoss, bestIdx = loss, t
			}
		}
		before, after := m.FlipBit(cands[bestIdx].addr)
		profile = append(profile, Flip{
			Addr: cands[bestIdx].addr, Before: before, After: after, LossAfter: bestLoss,
		})
	}
	return profile
}

// layerCandidates scans every weight of a layer, computes the best single
// bit flip by linearized gain ΔL ≈ g · scale · ΔQ, and returns the topK
// candidates by gain. Scanning all weights (rather than only the largest
// gradients) matters: a weight with a moderate gradient whose MSB flip
// moves it by the full ±128 often beats the top-gradient weight whose
// useful bit is already set.
func layerCandidates(li int, l *quant.Layer, grad []float32, topK int, allowed []int) []candidate {
	if topK <= 0 {
		topK = 1
	}
	best := make([]candidate, 0, len(l.Q))
	for i, q := range l.Q {
		g := float64(grad[i])
		if g == 0 {
			continue
		}
		c := candidate{gain: 0}
		found := false
		for _, b := range allowed {
			gain := g * float64(l.Scale) * float64(quant.FlipDelta(q, b))
			if gain > c.gain {
				c = candidate{
					addr: quant.BitAddress{LayerIndex: li, WeightIndex: i, Bit: b},
					gain: gain,
				}
				found = true
			}
		}
		if found {
			best = append(best, c)
		}
	}
	sort.Slice(best, func(a, b int) bool { return best[a].gain > best[b].gain })
	if len(best) > topK {
		best = best[:topK]
	}
	return best
}

// topIndicesByAbs returns the indices of the k largest |v| entries.
func topIndicesByAbs(v []float32, k int) []int {
	if k > len(v) {
		k = len(v)
	}
	idx := make([]int, len(v))
	for i := range idx {
		idx[i] = i
	}
	// Partial selection: full sort is fine at these sizes but avoid it for
	// very large layers with a simple selection of the top k.
	sort.Slice(idx, func(a, b int) bool {
		va, vb := v[idx[a]], v[idx[b]]
		if va < 0 {
			va = -va
		}
		if vb < 0 {
			vb = -vb
		}
		return va > vb
	})
	return idx[:k]
}

// computeGrads runs one forward/backward pass on the attack batch and
// returns a copy of ∂L/∂w for each quantized layer. Batch-norm layers are
// switched to frozen running statistics for the pass, so the gradients are
// those of the inference-mode network the attacker actually corrupts.
func computeGrads(m *quant.Model, x *tensor.Tensor, labels []int) [][]float32 {
	setFrozenBN(m, true)
	defer setFrozenBN(m, false)
	m.Net.ZeroGrad()
	out := m.Net.Forward(x, true)
	_, g := nn.SoftmaxCrossEntropy(out, labels)
	m.Net.Backward(g)
	grads := make([][]float32, len(m.Layers))
	for i, l := range m.Layers {
		grads[i] = append([]float32(nil), l.Param.Grad.Data...)
	}
	return grads
}

// setFrozenBN toggles inference-statistics mode on every batch-norm layer.
func setFrozenBN(m *quant.Model, frozen bool) {
	m.Net.Visit(func(l nn.Layer) {
		if bn, ok := l.(*nn.BatchNorm2D); ok {
			bn.FrozenStats = frozen
		}
	})
}
