// Package chaos is a fault-injecting reverse proxy for driving the fleet
// through gray failures on purpose: it sits between the router and one
// radar-serve replica and, per request, draws from a seeded schedule
// whether to proxy cleanly or to inject one of six faults —
//
//	Delay     — sleep DelayFor, then proxy normally (added latency)
//	Hang      — read the request, never answer (the classic gray failure:
//	            the connection is up, the replica is gone)
//	Reset     — hijack the client connection and close it with SO_LINGER=0,
//	            so the client sees a TCP RST ("connection reset by peer")
//	Blackhole — hold the connection without even reading the request
//	Err5xx    — answer 502 without touching the backend (mid-crash verdict)
//	SlowBody  — proxy, but trickle the response body chunk by chunk
//
// Each fault has its own probability; the draw sequence is a pure
// function of Seed and request order, so a test that replays the same
// request sequence sees the same fault schedule. A backend the proxy
// cannot reach is reported to the client as an inbound connection reset —
// transport failures stay transport failures through the proxy, which is
// what lets the fleet's ejection logic see a killed replica behind a
// still-alive chaos proxy.
//
// The handler also serves a tiny control plane outside the proxied
// namespace: GET /chaos/stats returns per-fault counts, and
// POST /chaos/config swaps the fault mix at runtime (used by
// chaos_smoke.sh to blackhole one replica, let the fleet eject it, and
// then heal it to watch readmission + reconciliation fire).
package chaos

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"time"
)

// Fault names one injected failure mode.
type Fault string

const (
	FaultNone      Fault = "none"
	FaultDelay     Fault = "delay"
	FaultHang      Fault = "hang"
	FaultReset     Fault = "reset"
	FaultBlackhole Fault = "blackhole"
	FaultErr5xx    Fault = "err5xx"
	FaultSlowBody  Fault = "slowbody"
)

// faults is the draw order — fixed, so a schedule is reproducible from
// the seed alone.
var faults = []Fault{FaultDelay, FaultHang, FaultReset, FaultBlackhole, FaultErr5xx, FaultSlowBody}

// Mix is the runtime-swappable slice of Config: the per-request fault
// probabilities and their duration knobs. The zero Mix injects nothing —
// a pass-through proxy.
type Mix struct {
	// Per-request injection probabilities in [0,1]; their sum must stay
	// ≤ 1 (the remainder is the clean-proxy probability).
	Delay     float64 `json:"delay,omitempty"`
	Hang      float64 `json:"hang,omitempty"`
	Reset     float64 `json:"reset,omitempty"`
	Blackhole float64 `json:"blackhole,omitempty"`
	Err5xx    float64 `json:"err5xx,omitempty"`
	SlowBody  float64 `json:"slowbody,omitempty"`

	// DelayFor is the added latency of one Delay fault (default 100ms).
	DelayFor time.Duration `json:"delay_for,omitempty"`
	// HangFor bounds how long Hang/Blackhole hold the connection before
	// resetting it; 0 holds until the client gives up or the proxy
	// closes. A bound keeps sequential admin broadcasts from stalling on
	// a blackholed replica forever.
	HangFor time.Duration `json:"hang_for,omitempty"`
	// SlowBodyChunk / SlowBodyPause trickle the response body
	// SlowBodyChunk bytes at a time with SlowBodyPause between writes
	// (defaults 256 bytes / 20ms).
	SlowBodyChunk int           `json:"slowbody_chunk,omitempty"`
	SlowBodyPause time.Duration `json:"slowbody_pause,omitempty"`
}

func (m *Mix) fillDefaults() {
	if m.DelayFor <= 0 {
		m.DelayFor = 100 * time.Millisecond
	}
	if m.SlowBodyChunk <= 0 {
		m.SlowBodyChunk = 256
	}
	if m.SlowBodyPause <= 0 {
		m.SlowBodyPause = 20 * time.Millisecond
	}
}

func (m *Mix) validate() error {
	sum := 0.0
	for _, p := range []float64{m.Delay, m.Hang, m.Reset, m.Blackhole, m.Err5xx, m.SlowBody} {
		if p < 0 || p > 1 {
			return fmt.Errorf("chaos: fault probability %v outside [0,1]", p)
		}
		sum += p
	}
	if sum > 1 {
		return fmt.Errorf("chaos: fault probabilities sum to %.3f > 1", sum)
	}
	return nil
}

// prob returns the probability configured for one fault.
func (m *Mix) prob(f Fault) float64 {
	switch f {
	case FaultDelay:
		return m.Delay
	case FaultHang:
		return m.Hang
	case FaultReset:
		return m.Reset
	case FaultBlackhole:
		return m.Blackhole
	case FaultErr5xx:
		return m.Err5xx
	case FaultSlowBody:
		return m.SlowBody
	}
	return 0
}

// Config builds a Proxy.
type Config struct {
	// Target is the backend base URL the proxy forwards to. Required.
	Target string
	// Seed drives the deterministic fault schedule.
	Seed int64
	// Mix is the initial fault mix (zero = pass-through).
	Mix Mix
	// Client issues the forwarded requests (default: a fresh Transport —
	// deliberately NOT the shared DefaultTransport, so one proxy's hung
	// backends cannot exhaust another's connection pool).
	Client *http.Client
}

// Proxy is one fault-injecting reverse proxy instance. Safe for
// concurrent use; create with New.
type Proxy struct {
	target *url.URL
	client *http.Client
	done   chan struct{}

	mu     sync.Mutex
	mix    Mix
	rng    *rand.Rand
	counts map[Fault]int64
}

// New validates the config and builds the proxy.
func New(cfg Config) (*Proxy, error) {
	u, err := url.Parse(strings.TrimRight(cfg.Target, "/"))
	if err != nil || u.Scheme == "" || u.Host == "" {
		return nil, fmt.Errorf("chaos: target %q is not an absolute URL", cfg.Target)
	}
	if err := cfg.Mix.validate(); err != nil {
		return nil, err
	}
	cfg.Mix.fillDefaults()
	client := cfg.Client
	if client == nil {
		client = &http.Client{Transport: &http.Transport{}}
	}
	return &Proxy{
		target: u,
		client: client,
		done:   make(chan struct{}),
		mix:    cfg.Mix,
		rng:    rand.New(rand.NewSource(cfg.Seed)),
		counts: make(map[Fault]int64),
	}, nil
}

// Close releases held connections (hangs and blackholes in flight return
// immediately as resets).
func (p *Proxy) Close() {
	select {
	case <-p.done:
	default:
		close(p.done)
	}
}

// SetMix swaps the fault mix at runtime. The schedule's RNG and the
// fault counters carry across the swap.
func (p *Proxy) SetMix(m Mix) error {
	if err := m.validate(); err != nil {
		return err
	}
	m.fillDefaults()
	p.mu.Lock()
	p.mix = m
	p.mu.Unlock()
	return nil
}

// Counts snapshots how many times each fault fired (plus clean proxies
// under "none").
func (p *Proxy) Counts() map[Fault]int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make(map[Fault]int64, len(p.counts))
	for k, v := range p.counts {
		out[k] = v
	}
	return out
}

// draw picks this request's fault from one uniform sample walked down
// the probability ladder, and books it. The mutex serializes draws, so
// the schedule is deterministic for a serial request sequence.
func (p *Proxy) draw() (Fault, Mix) {
	p.mu.Lock()
	defer p.mu.Unlock()
	u := p.rng.Float64()
	mix := p.mix
	acc := 0.0
	for _, f := range faults {
		acc += mix.prob(f)
		if u < acc {
			p.counts[f]++
			return f, mix
		}
	}
	p.counts[FaultNone]++
	return FaultNone, mix
}

// ServeHTTP injects this request's scheduled fault.
func (p *Proxy) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	fault, mix := p.draw()
	switch fault {
	case FaultReset:
		reset(w)
	case FaultHang:
		io.Copy(io.Discard, r.Body)
		p.hold(w, r, mix.HangFor)
	case FaultBlackhole:
		p.hold(w, r, mix.HangFor)
	case FaultErr5xx:
		http.Error(w, "chaos: injected backend error", http.StatusBadGateway)
	case FaultDelay:
		t := time.NewTimer(mix.DelayFor)
		defer t.Stop()
		select {
		case <-t.C:
		case <-r.Context().Done():
			return
		case <-p.done:
			return
		}
		p.forward(w, r, Mix{})
	case FaultSlowBody:
		p.forward(w, r, mix)
	default:
		p.forward(w, r, Mix{})
	}
}

// hold pins the connection without answering — the gray failure the
// per-attempt deadline exists for — until the client hangs up, the proxy
// closes, or the bound elapses; then the connection is reset so no peer
// waits forever.
func (p *Proxy) hold(w http.ResponseWriter, r *http.Request, bound time.Duration) {
	var expire <-chan time.Time
	if bound > 0 {
		t := time.NewTimer(bound)
		defer t.Stop()
		expire = t.C
	}
	select {
	case <-r.Context().Done():
	case <-p.done:
	case <-expire:
	}
	reset(w)
}

// forward proxies the request to the backend. A slow mix (non-zero
// SlowBodyPause from FaultSlowBody) trickles the response body. Backend
// transport failures become inbound connection resets: the proxy must
// not launder a dead backend into a clean HTTP error.
func (p *Proxy) forward(w http.ResponseWriter, r *http.Request, slow Mix) {
	out := p.target.JoinPath(r.URL.Path)
	out.RawQuery = r.URL.RawQuery
	req, err := http.NewRequestWithContext(r.Context(), r.Method, out.String(), r.Body)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadGateway)
		return
	}
	req.Header = r.Header.Clone()
	resp, err := p.client.Do(req)
	if err != nil {
		if r.Context().Err() != nil {
			return
		}
		reset(w)
		return
	}
	defer resp.Body.Close()
	for k, vs := range resp.Header {
		for _, v := range vs {
			w.Header().Add(k, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	if slow.SlowBodyPause <= 0 {
		io.Copy(w, resp.Body)
		return
	}
	flusher, _ := w.(http.Flusher)
	buf := make([]byte, slow.SlowBodyChunk)
	for {
		n, rerr := resp.Body.Read(buf)
		if n > 0 {
			if _, werr := w.Write(buf[:n]); werr != nil {
				return
			}
			if flusher != nil {
				flusher.Flush()
			}
		}
		if rerr != nil {
			return
		}
		t := time.NewTimer(slow.SlowBodyPause)
		select {
		case <-t.C:
		case <-r.Context().Done():
			t.Stop()
			return
		case <-p.done:
			t.Stop()
			return
		}
		t.Stop()
	}
}

// Handler wraps the proxy with its control plane: /chaos/config and
// /chaos/stats are answered locally (the backend never sees them, and no
// fault is ever injected into them — a chaotic control plane cannot heal
// itself); everything else goes through fault injection.
func (p *Proxy) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /chaos/config", p.handleConfig)
	mux.HandleFunc("GET /chaos/stats", p.handleStats)
	mux.Handle("/", p)
	return mux
}

// handleConfig swaps the fault mix: POST /chaos/config with a JSON Mix.
// Durations use Go's nanosecond int64 encoding (e.g. 500000000 = 500ms).
func (p *Proxy) handleConfig(w http.ResponseWriter, r *http.Request) {
	var m Mix
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&m); err != nil {
		http.Error(w, "bad mix: "+err.Error(), http.StatusBadRequest)
		return
	}
	if err := p.SetMix(m); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]string{"status": "ok"})
}

// handleStats reports per-fault counts: GET /chaos/stats.
func (p *Proxy) handleStats(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(p.Counts())
}

// reset aborts the client connection as rudely as the transport allows:
// hijack and close with SO_LINGER=0 so the peer sees a TCP RST. When the
// ResponseWriter cannot be hijacked, panic with ErrAbortHandler — the
// server drops the connection mid-response, which Go clients surface as
// an unexpected-EOF transport error.
func reset(w http.ResponseWriter) {
	hj, ok := w.(http.Hijacker)
	if !ok {
		panic(http.ErrAbortHandler)
	}
	conn, _, err := hj.Hijack()
	if err != nil {
		panic(http.ErrAbortHandler)
	}
	if tcp, ok := conn.(*net.TCPConn); ok {
		tcp.SetLinger(0)
	}
	conn.Close()
}
