package chaos

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// newBackend is a plain echo backend: 200, a recognizable header, and a
// body naming the path.
func newBackend(t *testing.T) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("X-Backend", "real")
		fmt.Fprintf(w, "echo %s %s", r.Method, r.URL.Path)
	}))
	t.Cleanup(ts.Close)
	return ts
}

func newProxy(t *testing.T, target string, mix Mix, seed int64) (*Proxy, *httptest.Server) {
	t.Helper()
	p, err := New(Config{Target: target, Seed: seed, Mix: mix})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(p.Handler())
	// Close the proxy first: it releases held connections (hangs,
	// blackholes) so the server's Close does not wait on them.
	t.Cleanup(func() { p.Close(); ts.Close() })
	return p, ts
}

// TestChaosDeterministicSchedule: two proxies with the same seed and mix
// draw the identical fault sequence — a test that replays the same
// request order sees the same schedule.
func TestChaosDeterministicSchedule(t *testing.T) {
	mix := Mix{Delay: 0.1, Hang: 0.1, Reset: 0.1, Blackhole: 0.1, Err5xx: 0.1, SlowBody: 0.1}
	a, err := New(Config{Target: "http://127.0.0.1:1", Seed: 42, Mix: mix})
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(Config{Target: "http://127.0.0.1:1", Seed: 42, Mix: mix})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		fa, _ := a.draw()
		fb, _ := b.draw()
		if fa != fb {
			t.Fatalf("draw %d diverged: %s vs %s with equal seeds", i, fa, fb)
		}
	}
	// A different seed must actually produce a different schedule.
	c, _ := New(Config{Target: "http://127.0.0.1:1", Seed: 43, Mix: mix})
	diverged := false
	for i := 0; i < 200; i++ {
		fa, _ := a.draw()
		fc, _ := c.draw()
		if fa != fc {
			diverged = true
			break
		}
	}
	if !diverged {
		t.Fatal("schedules for different seeds never diverged")
	}
}

// TestChaosPassthrough: the zero mix is a clean reverse proxy.
func TestChaosPassthrough(t *testing.T) {
	backend := newBackend(t)
	p, ts := newProxy(t, backend.URL, Mix{}, 1)
	resp, err := http.Get(ts.URL + "/v1/models")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK || resp.Header.Get("X-Backend") != "real" {
		t.Fatalf("passthrough → %d %v", resp.StatusCode, resp.Header)
	}
	if string(body) != "echo GET /v1/models" {
		t.Fatalf("passthrough body %q", body)
	}
	if n := p.Counts()[FaultNone]; n != 1 {
		t.Fatalf("clean proxy counted %d, want 1", n)
	}
}

// TestChaosErr5xx: an injected 502 never reaches the backend.
func TestChaosErr5xx(t *testing.T) {
	backend := newBackend(t)
	p, ts := newProxy(t, backend.URL, Mix{Err5xx: 1}, 1)
	resp, err := http.Get(ts.URL + "/v1/models")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("err5xx → %d, want 502", resp.StatusCode)
	}
	if n := p.Counts()[FaultErr5xx]; n != 1 {
		t.Fatalf("err5xx counted %d, want 1", n)
	}
}

// TestChaosDelay: the delay fault adds latency and then proxies cleanly.
func TestChaosDelay(t *testing.T) {
	backend := newBackend(t)
	_, ts := newProxy(t, backend.URL, Mix{Delay: 1, DelayFor: 80 * time.Millisecond}, 1)
	start := time.Now()
	resp, err := http.Get(ts.URL + "/x")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("delayed request → %d", resp.StatusCode)
	}
	if elapsed := time.Since(start); elapsed < 80*time.Millisecond {
		t.Fatalf("delay fault took only %v", elapsed)
	}
}

// TestChaosReset: the reset fault surfaces as a transport error, not an
// HTTP status.
func TestChaosReset(t *testing.T) {
	backend := newBackend(t)
	_, ts := newProxy(t, backend.URL, Mix{Reset: 1}, 1)
	resp, err := http.Get(ts.URL + "/x")
	if err == nil {
		resp.Body.Close()
		t.Fatalf("reset fault answered HTTP %d, want a transport error", resp.StatusCode)
	}
}

// TestChaosHangBounded: a hang held past HangFor resets the connection,
// so even a client with no deadline is eventually released.
func TestChaosHangBounded(t *testing.T) {
	backend := newBackend(t)
	_, ts := newProxy(t, backend.URL, Mix{Hang: 1, HangFor: 100 * time.Millisecond}, 1)
	start := time.Now()
	resp, err := http.Get(ts.URL + "/x")
	if err == nil {
		resp.Body.Close()
		t.Fatalf("hang fault answered HTTP %d", resp.StatusCode)
	}
	elapsed := time.Since(start)
	if elapsed < 100*time.Millisecond || elapsed > 3*time.Second {
		t.Fatalf("bounded hang released after %v, want ≈100ms", elapsed)
	}
}

// TestChaosBlackholeClientDeadline: a blackholed request is released by
// the client's own deadline — the gray failure the fleet's per-attempt
// timeout exists to bound.
func TestChaosBlackholeClientDeadline(t *testing.T) {
	backend := newBackend(t)
	_, ts := newProxy(t, backend.URL, Mix{Blackhole: 1}, 1)
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, ts.URL+"/x", nil)
	start := time.Now()
	resp, err := http.DefaultClient.Do(req)
	if err == nil {
		resp.Body.Close()
		t.Fatalf("blackhole answered HTTP %d", resp.StatusCode)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("blackholed client released after %v, want ≈100ms", elapsed)
	}
}

// TestChaosSlowBody: the trickled body still arrives complete.
func TestChaosSlowBody(t *testing.T) {
	payload := strings.Repeat("radar", 64)
	backend := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, payload)
	}))
	t.Cleanup(backend.Close)
	_, ts := newProxy(t, backend.URL, Mix{
		SlowBody: 1, SlowBodyChunk: 64, SlowBodyPause: 5 * time.Millisecond,
	}, 1)
	start := time.Now()
	resp, err := http.Get(ts.URL + "/x")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || string(body) != payload {
		t.Fatalf("slow body arrived wrong: err=%v len=%d want %d", err, len(body), len(payload))
	}
	if elapsed := time.Since(start); elapsed < 15*time.Millisecond {
		t.Fatalf("trickled body arrived in %v — no pauses applied", elapsed)
	}
}

// TestChaosBackendDownIsReset: a dead backend surfaces as a transport
// error through the proxy — never laundered into a clean HTTP error —
// so the fleet's ejection logic sees a killed replica behind a live
// chaos proxy.
func TestChaosBackendDownIsReset(t *testing.T) {
	backend := newBackend(t)
	target := backend.URL
	backend.Close()
	_, ts := newProxy(t, target, Mix{}, 1)
	resp, err := http.Get(ts.URL + "/x")
	if err == nil {
		resp.Body.Close()
		t.Fatalf("dead backend answered HTTP %d through the proxy, want a transport error", resp.StatusCode)
	}
}

// TestChaosControlPlane: /chaos/config swaps the mix at runtime and
// /chaos/stats reports counts; neither is ever faulted.
func TestChaosControlPlane(t *testing.T) {
	backend := newBackend(t)
	_, ts := newProxy(t, backend.URL, Mix{}, 1)

	// Clean request under the zero mix.
	resp, err := http.Get(ts.URL + "/x")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	// Swap to guaranteed 502s.
	resp, err = http.Post(ts.URL+"/chaos/config", "application/json", strings.NewReader(`{"err5xx":1}`))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("config swap → %d", resp.StatusCode)
	}
	resp, err = http.Get(ts.URL + "/x")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("post-swap request → %d, want 502", resp.StatusCode)
	}

	// Stats see both the clean proxy and the injected fault — and the
	// control-plane requests themselves are not drawn against.
	resp, err = http.Get(ts.URL + "/chaos/stats")
	if err != nil {
		t.Fatal(err)
	}
	var counts map[Fault]int64
	err = json.NewDecoder(resp.Body).Decode(&counts)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if counts[FaultNone] != 1 || counts[FaultErr5xx] != 1 {
		t.Fatalf("stats %v, want none=1 err5xx=1", counts)
	}

	// An invalid mix is rejected and the old one stays live.
	resp, err = http.Post(ts.URL+"/chaos/config", "application/json", strings.NewReader(`{"err5xx":0.9,"reset":0.9}`))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("invalid mix → %d, want 400", resp.StatusCode)
	}
}

// TestChaosMixValidation: probabilities must be in [0,1] and sum ≤ 1.
func TestChaosMixValidation(t *testing.T) {
	if _, err := New(Config{Target: "http://a:1", Mix: Mix{Hang: 1.5}}); err == nil {
		t.Fatal("probability > 1 accepted")
	}
	if _, err := New(Config{Target: "http://a:1", Mix: Mix{Hang: 0.6, Reset: 0.6}}); err == nil {
		t.Fatal("probability sum > 1 accepted")
	}
	if _, err := New(Config{Target: "not a url"}); err == nil {
		t.Fatal("relative target accepted")
	}
}
