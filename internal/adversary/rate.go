package adversary

import (
	"time"

	"radar/internal/memsim"
	"radar/internal/rowhammer"
)

// RateModel prices attack flips through rowhammer physics: one induced
// flip costs HammerThreshold activations of each of the two aggressor
// rows (double-sided rowhammer), every access a DRAM row conflict paying
// the full precharge+activate+CAS path — alternating two rows of one bank
// is precisely what defeats the open-row buffer, which is both why
// rowhammer works and why it is slow. The memsim.DRAMTiming device
// supplies the conflict latency and memsim.CostModel the clock, making
// this the first non-test consumer of the timing substrate.
type RateModel struct {
	// Cost supplies the core clock for cycle→seconds conversion.
	Cost memsim.CostModel
	// Geo supplies the hammer threshold (activations per aggressor before
	// the victim flips).
	Geo rowhammer.Geometry

	spf float64 // memoized seconds per flip
}

// DefaultRateModel prices flips on the calibrated simulation defaults:
// DDR3-1600-like timing at a 1 GHz clock, 50k-activation threshold
// (≈ 4.2 ms per flip, ≈ 23 flips inside a 100 ms scrub window).
func DefaultRateModel() *RateModel {
	return &RateModel{Cost: memsim.DefaultCostModel(), Geo: rowhammer.DefaultGeometry()}
}

// SecondsPerFlip returns the wall-clock cost of inducing one bit flip.
func (r *RateModel) SecondsPerFlip() float64 {
	if r.spf == 0 {
		d := memsim.NewDRAMTiming()
		// Two aggressor rows of one bank, activated alternately: rows
		// rowGlobal 0 and 2·Banks map to bank 0, rows 0 and 2 (the rows
		// flanking victim row 1).
		above := uint64(0)
		below := uint64(2 * d.Banks * d.RowBytes)
		var cycles uint64
		for i := 0; i < r.Geo.HammerThreshold; i++ {
			cycles += uint64(d.Access(above))
			cycles += uint64(d.Access(below))
		}
		r.spf = r.Cost.Seconds(float64(cycles))
	}
	return r.spf
}

// FlipsPerWindow converts a scrub interval into the flip budget an
// attacker can spend inside one window (minimum 1 — a patient attacker
// spreads a slow flip across windows). A non-positive interval means the
// window length is unknown; the cap is waived.
func (r *RateModel) FlipsPerWindow(window time.Duration) int {
	if window <= 0 {
		return 0
	}
	n := int(window.Seconds() / r.SecondsPerFlip())
	if n < 1 {
		return 1
	}
	return n
}
