package adversary

import (
	"math/rand"
	"reflect"
	"testing"
	"time"

	"radar/internal/core"
	"radar/internal/model"
	"radar/internal/quant"
)

func tinyTarget(t *testing.T, correct bool) (Target, [][]int8) {
	t.Helper()
	b := model.Load(model.TinySpec())
	cfg := core.DefaultConfig(16)
	cfg.Correct = correct
	p := core.Protect(b.QModel, cfg)
	return Target{Model: b.QModel, Prot: p}, b.QModel.Snapshot()
}

func modelEquals(m *quant.Model, snap [][]int8) bool {
	for li, l := range m.Layers {
		for i, v := range l.Q {
			if v != snap[li][i] {
				return false
			}
		}
	}
	return true
}

func TestNewKnowsAllNames(t *testing.T) {
	for _, n := range Names() {
		atk, err := New(n)
		if err != nil {
			t.Fatal(err)
		}
		if atk.Name() != n {
			t.Fatalf("attacker %q reports name %q", n, atk.Name())
		}
	}
	if _, err := New("nope"); err == nil {
		t.Fatal("unknown attacker name must error")
	}
}

func TestPlansAreDeterministic(t *testing.T) {
	tgt, _ := tinyTarget(t, false)
	opt := Options{Flips: 24, Windows: 6, FullEvery: 3, Seed: 11}
	for _, n := range Names() {
		atk, _ := New(n)
		a := atk.Plan(tgt, opt, rand.New(rand.NewSource(opt.Seed)))
		b := atk.Plan(tgt, opt, rand.New(rand.NewSource(opt.Seed)))
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("%s: same seed produced different plans", n)
		}
		total := 0
		for _, v := range a {
			total += v.Size()
		}
		if total > opt.Flips {
			t.Fatalf("%s: plan spends %d flips, budget %d", n, total, opt.Flips)
		}
	}
}

func TestRateModelPricesRowhammerPhysics(t *testing.T) {
	r := DefaultRateModel()
	spf := r.SecondsPerFlip()
	// 2 × 50k activations × ~42-cycle row conflicts at 1 GHz ≈ 4.2 ms.
	if spf < 3e-3 || spf > 6e-3 {
		t.Fatalf("seconds per flip = %v, want ≈ 4.2ms", spf)
	}
	cap := r.FlipsPerWindow(100 * time.Millisecond)
	if cap < 15 || cap > 35 {
		t.Fatalf("flips per 100ms window = %d, want ≈ 23", cap)
	}
	if r.FlipsPerWindow(0) != 0 {
		t.Fatal("unknown window length must waive the cap")
	}
	if r.FlipsPerWindow(time.Microsecond) != 1 {
		t.Fatal("a window shorter than one flip still admits a carried-over flip")
	}
}

func TestRateCapBoundsEveryVolley(t *testing.T) {
	tgt, _ := tinyTarget(t, false)
	opt := Options{
		Flips: 500, Windows: 5, FullEvery: 2,
		Rate: DefaultRateModel(), ScrubEvery: 100 * time.Millisecond, Seed: 3,
	}
	cap := opt.CapPerWindow()
	if cap <= 0 {
		t.Fatal("expected a finite cap")
	}
	for _, n := range Names() {
		atk, _ := New(n)
		for w, v := range atk.Plan(tgt, opt, rand.New(rand.NewSource(1))) {
			if v.Size() > cap {
				t.Fatalf("%s: window %d volley %d flips exceeds cap %d", n, w, v.Size(), cap)
			}
		}
	}
}

// TestScrubTimerBeatsObliviousOnHorizonSurvival: against a defender that
// only runs periodic full scans, the schedule-aware attacker has every
// flip still live at the campaign horizon, while the oblivious attacker
// loses every flip mounted before the last full scan.
func TestScrubTimerBeatsObliviousOnHorizonSurvival(t *testing.T) {
	liveAt := func(name string) (live, mounted int) {
		tgt, _ := tinyTarget(t, false)
		atk, _ := New(name)
		c := NewCampaign(tgt, atk, Options{Flips: 12, Windows: 8, FullEvery: 2, Seed: 5})
		c.Run()
		out := c.Outcome()
		return out.Mounted - out.Detected, out.Mounted
	}
	stLive, stMounted := liveAt("scrub-timer")
	obLive, _ := liveAt("oblivious")
	if stLive != stMounted {
		t.Fatalf("scrub-timer: %d/%d flips live at horizon, want all", stLive, stMounted)
	}
	if stLive <= obLive {
		t.Fatalf("scrub-timer live=%d must beat oblivious live=%d", stLive, obLive)
	}
}

// TestScrubTimerCampaignIsExactlyCorrectable: the single-bit-per-group
// campaign is the ECC path's best case — settle restores the pre-attack
// bytes exactly, with zero weights zeroed.
func TestScrubTimerCampaignIsExactlyCorrectable(t *testing.T) {
	tgt, snap := tinyTarget(t, true)
	atk, _ := New("scrub-timer")
	c := NewCampaign(tgt, atk, Options{Flips: 10, Windows: 6, FullEvery: 3, Seed: 9})
	c.Run()
	c.Settle()
	out := c.Outcome()
	if out.Detected != out.Mounted || out.Survived != 0 {
		t.Fatalf("settle should catch all single MSB flips: %+v", out)
	}
	if out.WeightsZeroed != 0 || out.GroupsCorrected != int64(out.Mounted) {
		t.Fatalf("want all %d groups ECC-corrected, got corrected=%d zeroed=%d",
			out.Mounted, out.GroupsCorrected, out.GroupsZeroed)
	}
	if !modelEquals(tgt.Model, snap) {
		t.Fatal("corrected model is not bit-identical to the pre-attack image")
	}
}

// TestBelowThresholdEvadesSettle: about half the paired flips produce a
// zero checksum delta under the secret masking and survive even the final
// full scrub.
func TestBelowThresholdEvadesSettle(t *testing.T) {
	tgt, _ := tinyTarget(t, false)
	atk, _ := New("below-threshold")
	c := NewCampaign(tgt, atk, Options{Flips: 60, Windows: 4, Seed: 21})
	c.Run()
	c.Settle()
	out := c.Outcome()
	if out.Survived == 0 {
		t.Fatalf("no pair evaded the masked signature: %+v", out)
	}
	if out.Survived >= out.Mounted {
		t.Fatalf("every pair evaded — detection is broken: %+v", out)
	}
}

// TestSigstoreWeaponizesZeroingButNotECC: against zeroing-only recovery a
// signature-store campaign destroys healthy weights; with ECC the check
// words certify the weights intact and only the signatures are repaired.
func TestSigstoreWeaponizesZeroingButNotECC(t *testing.T) {
	run := func(correct bool) (Outcome, bool) {
		tgt, snap := tinyTarget(t, correct)
		atk, _ := New("sigstore")
		c := NewCampaign(tgt, atk, Options{Flips: 8, Windows: 4, FullEvery: 2, Seed: 13})
		c.Run()
		c.Settle()
		return c.Outcome(), modelEquals(tgt.Model, snap)
	}
	zero, zeroIntact := run(false)
	if zero.WeightsZeroed == 0 || zeroIntact {
		t.Fatalf("zeroing defense should have destroyed healthy groups: %+v", zero)
	}
	ecc, eccIntact := run(true)
	if ecc.WeightsZeroed != 0 || !eccIntact {
		t.Fatalf("ECC defense must not touch weights under sigstore: %+v", ecc)
	}
	if ecc.GroupsCorrected != int64(ecc.SigDetected) {
		t.Fatalf("every detected sig flip should be a class-0 repair: %+v", ecc)
	}
}

func TestPlanVolleyOneShot(t *testing.T) {
	tgt, _ := tinyTarget(t, false)
	v, err := PlanVolley(tgt, "oblivious", 7, 1)
	if err != nil {
		t.Fatal(err)
	}
	if v.Size() != 7 {
		t.Fatalf("one-shot volley size %d, want 7", v.Size())
	}
	if _, err := PlanVolley(tgt, "bogus", 1, 1); err == nil {
		t.Fatal("unknown adversary must error")
	}
}
