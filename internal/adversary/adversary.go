// Package adversary runs defense-aware attack campaigns against a
// RADAR-protected model. Where internal/attack implements the paper's
// oblivious bit-flip profiles (the attacker does not know a defense
// exists), this package models the next escalation: attackers that read
// the defender's configuration — its scrub schedule, its grouping
// geometry, the location of its signature store — and shape their flips
// around it. Campaigns run in scrub windows against the real protector
// (scans, recovery, ECC correction all live), and flips are optionally
// priced through the memsim DRAM timing model so attack throughput
// reflects rowhammer physics rather than free writes.
//
// Four attackers are provided:
//
//   - oblivious: the baseline. Random MSB flips spread uniformly over the
//     campaign, blind to the defense.
//   - scrub-timer: knows the defender's scrub schedule (which cycles are
//     full scans vs. incremental). It mounts flips immediately *after*
//     full scans — maximizing dwell time — and back-loads its budget into
//     the windows after the last full scan so the flips are live at the
//     campaign horizon. One flip per checksum group, so the whole
//     campaign is single-bit-per-group and ECC-correctable once caught.
//   - below-threshold: knows the grouping geometry. It mounts MSB flips
//     in pairs within one group, choosing weights with opposite sign
//     bits so the checksum delta is 128·(s₂−s₁) for secret mask signs
//     s₁,s₂ — zero with probability ½. Half its pairs are permanently
//     invisible to the signature scan, surviving even full scrubs.
//   - sigstore: attacks the checksum metadata itself, flipping bits of
//     the stored golden signatures. Against zeroing-only recovery every
//     flagged-healthy group is destroyed by the defender's own reaction;
//     ECC-corrected recovery classifies the weights as intact and repairs
//     the signature instead.
//
// All direct weight writes deliberately bypass the quant.Model write
// observers (a physical attack does not announce itself), so incremental
// ScanDirty passes cannot see them — only full scans can, which is the
// scrub-timer attacker's entire premise.
package adversary

import (
	"fmt"
	"math/rand"
	"sort"

	"radar/internal/core"
	"radar/internal/quant"
)

// Target binds the model under attack to the protector defending it.
type Target struct {
	// Model is the attacked weight image.
	Model *quant.Model
	// Prot is the defense; adaptive attackers read its configuration and
	// the sigstore attacker writes its golden store.
	Prot *core.Protector
}

// SigFlip is one bit flip in the stored golden-signature metadata.
type SigFlip struct {
	// Layer and Group select the signature; Bit is the signature bit
	// (0 ≤ Bit < SigBits).
	Layer, Group, Bit int
}

// Volley is the set of flips an attacker mounts within one scrub window.
type Volley struct {
	// Weights are weight-bit flips (mounted as direct writes, invisible
	// to dirty tracking).
	Weights []quant.BitAddress
	// Signatures are golden-store bit flips (sigstore attacker only).
	Signatures []SigFlip
}

// Size returns the total flip count of the volley.
func (v Volley) Size() int { return len(v.Weights) + len(v.Signatures) }

// Attacker plans a campaign: a volley per scrub window, spending at most
// opt.Flips bit flips with at most opt.CapPerWindow() per window.
type Attacker interface {
	// Name is the campaign identifier ("oblivious", "scrub-timer", ...).
	Name() string
	// Plan distributes the budget over opt.Windows volleys. Plans are
	// deterministic in (target, opt, rng) — campaigns are reproducible.
	Plan(t Target, opt Options, rng *rand.Rand) []Volley
}

// Names lists the available attackers in presentation order.
func Names() []string {
	return []string{"oblivious", "scrub-timer", "below-threshold", "sigstore"}
}

// New returns the named attacker.
func New(name string) (Attacker, error) {
	switch name {
	case "oblivious":
		return Oblivious{}, nil
	case "scrub-timer":
		return ScrubTimer{}, nil
	case "below-threshold":
		return BelowThreshold{}, nil
	case "sigstore":
		return SigStore{}, nil
	}
	return nil, fmt.Errorf("adversary: unknown attacker %q (have %v)", name, Names())
}

// Mount applies one volley to the target: weight flips as direct Q writes
// (observer-bypassing, like the physical fault they model) and signature
// flips straight into the golden store. The caller provides exclusion
// against concurrent scans (the campaign engine uses the protector's
// layer guard; the serving layer injects under LockAll).
func Mount(t Target, v Volley) {
	for _, a := range v.Weights {
		l := t.Model.Layers[a.LayerIndex]
		l.Q[a.WeightIndex] = quant.FlipBit(l.Q[a.WeightIndex], a.Bit)
		l.SyncIndex(a.WeightIndex)
	}
	for _, f := range v.Signatures {
		t.Prot.Golden[f.Layer][f.Group] ^= 1 << uint(f.Bit)
	}
}

// PlanVolley plans a one-shot volley of the named attacker — the serving
// layer's injection endpoint and the CLI's single-round mode, where the
// window structure of a full campaign does not apply.
func PlanVolley(t Target, name string, flips int, seed int64) (Volley, error) {
	atk, err := New(name)
	if err != nil {
		return Volley{}, err
	}
	opt := Options{Flips: flips, Windows: 1}
	vs := atk.Plan(t, opt, rand.New(rand.NewSource(seed)))
	out := Volley{}
	for _, v := range vs {
		out.Weights = append(out.Weights, v.Weights...)
		out.Signatures = append(out.Signatures, v.Signatures...)
	}
	return out, nil
}

// totalWeights returns the model's weight count and per-layer prefix
// bounds for uniform sampling.
func totalWeights(m *quant.Model) (total int, bound []int) {
	for _, l := range m.Layers {
		total += len(l.Q)
		bound = append(bound, total)
	}
	return total, bound
}

// sampleWeight draws a uniform (layer, weight) coordinate.
func sampleWeight(rng *rand.Rand, total int, bound []int) (li, wi int) {
	flat := rng.Intn(total)
	li = sort.SearchInts(bound, flat+1)
	if li > 0 {
		flat -= bound[li-1]
	}
	return li, flat
}
