package adversary

import (
	"math/rand"

	"radar/internal/core"
	"radar/internal/quant"
)

// windowPicker assigns flips to uniform random windows subject to the
// per-window rate cap.
type windowPicker struct {
	room []int
}

func newWindowPicker(windows, capPerWindow int) *windowPicker {
	if capPerWindow <= 0 {
		capPerWindow = 1 << 30 // unlimited
	}
	room := make([]int, windows)
	for i := range room {
		room[i] = capPerWindow
	}
	return &windowPicker{room: room}
}

// pick returns a uniform random window with at least need slots free (and
// consumes them), or -1 when the campaign is out of capacity.
func (p *windowPicker) pick(rng *rand.Rand, need int) int {
	open := make([]int, 0, len(p.room))
	for w, r := range p.room {
		if r >= need {
			open = append(open, w)
		}
	}
	if len(open) == 0 {
		return -1
	}
	w := open[rng.Intn(len(open))]
	p.room[w] -= need
	return w
}

// distinctGroups samples up to n weight coordinates lying in pairwise
// distinct checksum groups — the building block of the single-bit-per-
// group campaigns.
func distinctGroups(t Target, n int, rng *rand.Rand) []quant.BitAddress {
	total, bound := totalWeights(t.Model)
	seen := make(map[core.GroupID]bool, n)
	var out []quant.BitAddress
	for tries := 0; len(out) < n && tries < 50*n+100; tries++ {
		li, wi := sampleWeight(rng, total, bound)
		g := core.GroupID{Layer: li, Group: t.Prot.Schemes[li].GroupOf(wi, len(t.Model.Layers[li].Q))}
		if seen[g] {
			continue
		}
		seen[g] = true
		out = append(out, quant.BitAddress{LayerIndex: li, WeightIndex: wi, Bit: quant.MSB})
	}
	return out
}

// Oblivious is the baseline attacker: random MSB flips, uniformly spread
// over the campaign, blind to the defense. It corresponds to the paper's
// random-BFA threat model run over time.
type Oblivious struct{}

// Name implements Attacker.
func (Oblivious) Name() string { return "oblivious" }

// Plan implements Attacker.
func (Oblivious) Plan(t Target, opt Options, rng *rand.Rand) []Volley {
	vs := make([]Volley, opt.Windows)
	pick := newWindowPicker(opt.Windows, opt.CapPerWindow())
	total, bound := totalWeights(t.Model)
	for k := 0; k < opt.Flips; k++ {
		w := pick.pick(rng, 1)
		if w < 0 {
			break
		}
		li, wi := sampleWeight(rng, total, bound)
		vs[w].Weights = append(vs[w].Weights,
			quant.BitAddress{LayerIndex: li, WeightIndex: wi, Bit: quant.MSB})
	}
	return vs
}

// ScrubTimer knows the defender's scrub schedule: which windows run a full
// scan (the only scans that can see observer-bypassing writes) and which
// are incremental. It back-loads its budget into the windows after the
// *last* full scan — those flips are never scanned before the campaign
// horizon — and spills any remainder into the windows right after earlier
// full scans, where dwell time until the next full scan is maximal. It
// hits one checksum group at most once, so its campaign is single-bit per
// group: maximally damaging against zeroing (each caught flip costs the
// defender a whole group) and exactly correctable under ECC.
type ScrubTimer struct{}

// Name implements Attacker.
func (ScrubTimer) Name() string { return "scrub-timer" }

// Plan implements Attacker.
func (ScrubTimer) Plan(t Target, opt Options, rng *rand.Rand) []Volley {
	fe := opt.fullEvery()
	capW := opt.CapPerWindow()
	if capW <= 0 {
		capW = opt.Flips
	}
	addrs := distinctGroups(t, opt.Flips, rng)
	vs := make([]Volley, opt.Windows)
	k := 0
	lastFull := ((opt.Windows - 1) / fe) * fe
	for s := lastFull; s >= 0 && k < len(addrs); s -= fe {
		for w := s; w < opt.Windows && w < s+fe && k < len(addrs); w++ {
			take := capW
			if rest := len(addrs) - k; take > rest {
				take = rest
			}
			vs[w].Weights = append(vs[w].Weights, addrs[k:k+take]...)
			k += take
		}
	}
	return vs
}

// BelowThreshold knows the grouping geometry and stays below the
// signature's detection threshold: it mounts MSB flips in pairs inside a
// single checksum group, so the masked checksum delta is ±128 ± 128 —
// zero whenever the two secret mask signs cancel, which the attacker
// cannot steer but happens with probability ½. Those pairs never flag,
// surviving full scrubs and the campaign settle. Both flips of a pair
// land in the same volley; a split pair would expose a lone flip to an
// intervening scan.
type BelowThreshold struct{}

// Name implements Attacker.
func (BelowThreshold) Name() string { return "below-threshold" }

// Plan implements Attacker.
func (BelowThreshold) Plan(t Target, opt Options, rng *rand.Rand) []Volley {
	vs := make([]Volley, opt.Windows)
	pick := newWindowPicker(opt.Windows, opt.CapPerWindow())
	anchors := distinctGroups(t, opt.Flips/2, rng)
	for _, a := range anchors {
		l := t.Model.Layers[a.LayerIndex]
		s := t.Prot.Schemes[a.LayerIndex]
		m := s.Members(s.GroupOf(a.WeightIndex, len(l.Q)), len(l.Q))
		if len(m) < 2 {
			continue
		}
		w := pick.pick(rng, 2)
		if w < 0 {
			break
		}
		i := rng.Intn(len(m))
		j := rng.Intn(len(m) - 1)
		if j >= i {
			j++
		}
		vs[w].Weights = append(vs[w].Weights,
			quant.BitAddress{LayerIndex: a.LayerIndex, WeightIndex: m[i], Bit: quant.MSB},
			quant.BitAddress{LayerIndex: a.LayerIndex, WeightIndex: m[j], Bit: quant.MSB})
	}
	return vs
}

// SigStore attacks the defense's own metadata: it flips bits of the
// stored golden signatures instead of the weights. Every corrupted
// signature makes a healthy group scan as corrupted, so a zeroing-only
// defender destroys G good weights per flip — the attack weaponizes the
// recovery path. ECC-corrected recovery is the antidote: the group's
// check word certifies the weights intact (class 0) and the signature is
// recomputed instead.
type SigStore struct{}

// Name implements Attacker.
func (SigStore) Name() string { return "sigstore" }

// Plan implements Attacker.
func (SigStore) Plan(t Target, opt Options, rng *rand.Rand) []Volley {
	vs := make([]Volley, opt.Windows)
	pick := newWindowPicker(opt.Windows, opt.CapPerWindow())
	seen := make(map[core.GroupID]bool, opt.Flips)
	for tries := 0; len(seen) < opt.Flips && tries < 50*opt.Flips+100; tries++ {
		li := rng.Intn(len(t.Model.Layers))
		s := t.Prot.Schemes[li]
		n := s.NumGroups(len(t.Model.Layers[li].Q))
		g := core.GroupID{Layer: li, Group: rng.Intn(n)}
		if seen[g] {
			continue
		}
		w := pick.pick(rng, 1)
		if w < 0 {
			break
		}
		seen[g] = true
		vs[w].Signatures = append(vs[w].Signatures,
			SigFlip{Layer: g.Layer, Group: g.Group, Bit: rng.Intn(s.SigBits)})
	}
	return vs
}
