package adversary

import (
	"math/rand"
	"time"

	"radar/internal/core"
	"radar/internal/quant"
)

// Options configures one campaign.
type Options struct {
	// Flips is the campaign's total bit-flip budget (for below-threshold,
	// Flips/2 pairs).
	Flips int
	// Windows is the number of scrub windows the campaign spans. Each
	// window opens with a defender scrub, then the attacker mounts that
	// window's volley.
	Windows int
	// FullEvery makes every FullEvery-th window's scrub a full scan; the
	// others are incremental ScanDirty passes (which cannot see direct
	// writes — the scrub-timer attacker's premise). 0 or 1 = every scrub
	// is full.
	FullEvery int
	// ScrubEvery is the wall-clock length of one window — the defender's
	// scrub interval, used only to convert the rate model's
	// seconds-per-flip into a per-window flip cap.
	ScrubEvery time.Duration
	// Rate prices flips through rowhammer physics; nil = free writes.
	Rate *RateModel
	// NoDefense disables the defender entirely (no scrubs, no settle) —
	// the undefended baseline of the accuracy-after-attack comparison.
	NoDefense bool
	// Seed drives the attacker's plan.
	Seed int64
}

// fullEvery normalizes FullEvery (0 → every scrub full).
func (o Options) fullEvery() int {
	if o.FullEvery <= 0 {
		return 1
	}
	return o.FullEvery
}

// CapPerWindow returns the rate model's per-window flip cap (0 =
// unlimited).
func (o Options) CapPerWindow() int {
	if o.Rate == nil {
		return 0
	}
	return o.Rate.FlipsPerWindow(o.ScrubEvery)
}

// Outcome reports what a campaign achieved and what it cost.
type Outcome struct {
	// Adversary is the attacker name.
	Adversary string `json:"adversary"`
	// Budget is the requested flip count; Mounted/SigMounted are the
	// weight-bit and signature-bit flips actually mounted (the rate cap
	// and group-exhaustion can leave budget unspent).
	Budget     int `json:"budget"`
	Mounted    int `json:"mounted"`
	SigMounted int `json:"sig_mounted,omitempty"`
	// Detected counts mounted weight flips whose group was flagged by any
	// defender scan (including Settle); SigDetected likewise for
	// signature flips. Survived is the evasion count: flips whose group
	// was never flagged.
	Detected    int `json:"detected"`
	SigDetected int `json:"sig_detected,omitempty"`
	Survived    int `json:"survived"`
	// MeanDwellWindows is the mean number of windows a detected flip was
	// live before its group was flagged.
	MeanDwellWindows float64 `json:"mean_dwell_windows"`
	// Defender reaction over the campaign (protector stat deltas).
	GroupsFlagged   int64 `json:"groups_flagged"`
	GroupsCorrected int64 `json:"groups_corrected"`
	GroupsZeroed    int64 `json:"groups_zeroed"`
	WeightsZeroed   int64 `json:"weights_zeroed"`
	// Rowhammer physics (zero when unpriced): seconds to induce one flip
	// and for the whole campaign, and the per-window cap they imply.
	SecondsPerFlip  float64 `json:"seconds_per_flip,omitempty"`
	CampaignSeconds float64 `json:"campaign_seconds,omitempty"`
	CapPerWindow    int     `json:"cap_per_window,omitempty"`
}

// Campaign executes an attacker's plan window by window against a live
// defense. Run leaves the model in its horizon state (undetected flips
// still live) so the caller can measure accuracy under attack; Settle then
// runs the defender's final full scrub for the post-recovery measurement.
type Campaign struct {
	t   Target
	opt Options
	atk Attacker

	volleys  []Volley
	pendingW map[quant.BitAddress]int
	pendingS map[SigFlip]int

	window                int
	mounted, sigMounted   int
	detected, sigDetected int
	dwellSum              int
	start                 core.Stats
}

// NewCampaign plans the attacker's volleys against the target. The
// target's weights and golden store are not touched until Run.
func NewCampaign(t Target, atk Attacker, opt Options) *Campaign {
	if opt.Windows <= 0 {
		opt.Windows = 1
	}
	rng := rand.New(rand.NewSource(opt.Seed))
	return &Campaign{
		t:        t,
		opt:      opt,
		atk:      atk,
		volleys:  atk.Plan(t, opt, rng),
		pendingW: make(map[quant.BitAddress]int),
		pendingS: make(map[SigFlip]int),
		start:    t.Prot.Stats(),
	}
}

// Run executes every window: defender scrub first (full scan every
// FullEvery-th window, incremental otherwise), then the attacker's volley
// for that window. The model is left in the campaign-horizon state.
func (c *Campaign) Run() {
	cap := c.opt.CapPerWindow()
	for c.window = 0; c.window < c.opt.Windows; c.window++ {
		c.scrub(c.window%c.opt.fullEvery() == 0)
		v := c.volleys[c.window]
		if cap > 0 && v.Size() > cap {
			// Defensive truncation; planners already respect the cap.
			over := v.Size() - cap
			if n := len(v.Weights); over <= n {
				v.Weights = v.Weights[:n-over]
			} else {
				v.Signatures = v.Signatures[:len(v.Signatures)-(over-len(v.Weights))]
				v.Weights = nil
			}
		}
		c.mount(v)
	}
}

// Settle runs the defender's final full scrub — the state an operator
// sees after the attack is over and a full scan has run. No-op under
// NoDefense.
func (c *Campaign) Settle() {
	c.window = c.opt.Windows
	c.scrub(true)
}

// scrub runs one defender cycle and accounts which pending flips were
// caught.
func (c *Campaign) scrub(full bool) {
	if c.opt.NoDefense {
		return
	}
	var flagged []core.GroupID
	if full {
		flagged, _ = c.t.Prot.DetectAndRecover()
	} else {
		flagged = c.t.Prot.ScanDirty()
		c.t.Prot.Recover(flagged)
	}
	if len(flagged) == 0 {
		return
	}
	set := make(map[core.GroupID]bool, len(flagged))
	for _, g := range flagged {
		set[g] = true
	}
	for a, w := range c.pendingW {
		if set[c.t.Prot.GroupOf(a)] {
			c.detected++
			c.dwellSum += c.window - w
			delete(c.pendingW, a)
		}
	}
	for f, w := range c.pendingS {
		if set[core.GroupID{Layer: f.Layer, Group: f.Group}] {
			c.sigDetected++
			c.dwellSum += c.window - w
			delete(c.pendingS, f)
		}
	}
}

// mount applies one volley under the protector's write exclusion.
func (c *Campaign) mount(v Volley) {
	if v.Size() == 0 {
		return
	}
	g := c.t.Prot.Guard()
	g.LockAll()
	Mount(c.t, v)
	g.UnlockAll()
	c.mounted += len(v.Weights)
	c.sigMounted += len(v.Signatures)
	for _, a := range v.Weights {
		c.pendingW[a] = c.window
	}
	for _, f := range v.Signatures {
		c.pendingS[f] = c.window
	}
}

// Outcome summarizes the campaign so far (typically called after Settle).
func (c *Campaign) Outcome() Outcome {
	st := c.t.Prot.Stats()
	out := Outcome{
		Adversary:       c.atk.Name(),
		Budget:          c.opt.Flips,
		Mounted:         c.mounted,
		SigMounted:      c.sigMounted,
		Detected:        c.detected,
		SigDetected:     c.sigDetected,
		Survived:        len(c.pendingW) + len(c.pendingS),
		GroupsFlagged:   st.GroupsFlagged - c.start.GroupsFlagged,
		GroupsCorrected: st.GroupsCorrected - c.start.GroupsCorrected,
		GroupsZeroed:    st.GroupsZeroed - c.start.GroupsZeroed,
		WeightsZeroed:   st.WeightsZeroed - c.start.WeightsZeroed,
		CapPerWindow:    c.opt.CapPerWindow(),
	}
	if n := c.detected + c.sigDetected; n > 0 {
		out.MeanDwellWindows = float64(c.dwellSum) / float64(n)
	}
	if c.opt.Rate != nil {
		out.SecondsPerFlip = c.opt.Rate.SecondsPerFlip()
		out.CampaignSeconds = out.SecondsPerFlip * float64(c.mounted+c.sigMounted)
	}
	return out
}
