package store

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"radar/internal/core"
	"radar/internal/quant"
)

// testModel builds a synthetic quantized model (no float side) with layer
// sizes chosen to stress the format: a multi-page layer, a sub-page layer,
// and a tail layer whose length is not a multiple of 8 and crosses a page
// boundary — the SWAR kernel's scalar-tail case landing on an mmap page
// edge.
func testModel(seed int64) *quant.Model {
	rng := rand.New(rand.NewSource(seed))
	sizes := []int{3 * PageSize, 100, 2*PageSize + 1} // 8193 = l%8 ≠ 0 across a page boundary
	m := &quant.Model{}
	for i, n := range sizes {
		l := &quant.Layer{
			Name:  []string{"stage1.conv.weight", "stage2.conv.weight", "fc.weight"}[i],
			Q:     make([]int8, n),
			Scale: float32(i+1) * 0.01,
		}
		if i == 1 {
			l.Scales = []float32{0.01, 0.02, 0.03}
		}
		for j := range l.Q {
			l.Q[j] = int8(rng.Intn(256) - 128)
		}
		m.Layers = append(m.Layers, l)
	}
	return m
}

func saveTestModel(t *testing.T, seed int64) (string, *quant.Model) {
	t.Helper()
	m := testModel(seed)
	path := filepath.Join(t.TempDir(), "ckpt.radar")
	if err := Save(path, m); err != nil {
		t.Fatalf("Save: %v", err)
	}
	return path, m
}

func TestSaveOpenRoundTrip(t *testing.T) {
	for _, mode := range []string{"mapped", "inram"} {
		t.Run(mode, func(t *testing.T) {
			path, m := saveTestModel(t, 1)
			var opts []Option
			if mode == "inram" {
				opts = append(opts, InRAM())
			}
			c, err := Open(path, opts...)
			if err != nil {
				t.Fatalf("Open: %v", err)
			}
			defer c.Close()
			if mode == "inram" && c.Mapped() {
				t.Fatal("InRAM checkpoint reports Mapped")
			}
			got := c.Model()
			if got != c.Model() {
				t.Fatal("Model is not memoized")
			}
			if len(got.Layers) != len(m.Layers) {
				t.Fatalf("layer count %d != %d", len(got.Layers), len(m.Layers))
			}
			var wantBytes int64
			for i, l := range m.Layers {
				g := got.Layers[i]
				if g.Name != l.Name || g.Scale != l.Scale || !reflect.DeepEqual(g.Scales, l.Scales) {
					t.Fatalf("layer %d metadata mismatch: %+v", i, g)
				}
				if !reflect.DeepEqual(g.Q, l.Q) {
					t.Fatalf("layer %d weights differ", i)
				}
				if g.Param != nil {
					t.Fatalf("layer %d has a float param before Attach", i)
				}
				if c.LayerName(i) != l.Name {
					t.Fatalf("LayerName(%d) = %q", i, c.LayerName(i))
				}
				wantBytes += int64(len(l.Q))
			}
			if c.NumLayers() != len(m.Layers) || c.WeightBytes() != wantBytes {
				t.Fatalf("NumLayers=%d WeightBytes=%d", c.NumLayers(), c.WeightBytes())
			}
			if c.Size() <= wantBytes {
				t.Fatalf("Size %d not larger than payload %d", c.Size(), wantBytes)
			}
		})
	}
}

// TestDifferentialScan pins the acceptance criterion that the mmap-backed
// reader is byte-identical to the in-RAM loader: golden signatures, the
// scalar reference kernel over every layer (including the l%8≠0 tail), and
// the flagged-group list after identical injected flips must all match.
func TestDifferentialScan(t *testing.T) {
	path, _ := saveTestModel(t, 2)
	cm, err := Open(path)
	if err != nil {
		t.Fatalf("Open mapped: %v", err)
	}
	defer cm.Close()
	cr, err := Open(path, InRAM())
	if err != nil {
		t.Fatalf("Open in-RAM: %v", err)
	}
	defer cr.Close()

	cfg := core.DefaultConfig(8)
	pm := core.Protect(cm.Model(), cfg)
	pr := core.Protect(cr.Model(), cfg)
	if !reflect.DeepEqual(pm.Golden, pr.Golden) {
		t.Fatal("golden signatures differ between mapped and in-RAM readers")
	}
	// Property-test harness: the scalar reference kernel over random
	// subranges of the mapped view must match the in-RAM view exactly.
	rng := rand.New(rand.NewSource(99))
	for li, lm := range cm.Model().Layers {
		lr := cr.Model().Layers[li]
		s := pm.Schemes[li]
		for trial := 0; trial < 50; trial++ {
			ng := s.NumGroups(len(lm.Q))
			lo := rng.Intn(ng + 1)
			hi := lo + rng.Intn(ng-lo+1)
			got := s.SignaturesRangeRef(lm.Q, lo, hi)
			want := s.SignaturesRangeRef(lr.Q, lo, hi)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("layer %d signatures differ on [%d,%d)", li, lo, hi)
			}
		}
	}
	// Identical injected flips must flag identical groups. The flips
	// include the final weight of the tail layer (index l-1 with l%8≠0,
	// sitting just past an mmap page boundary).
	tail := len(cm.Model().Layers) - 1
	flips := []quant.BitAddress{
		{LayerIndex: 0, WeightIndex: 17, Bit: quant.MSB},
		{LayerIndex: 1, WeightIndex: 3, Bit: 6},
		{LayerIndex: tail, WeightIndex: len(cm.Model().Layers[tail].Q) - 1, Bit: quant.MSB},
	}
	for _, a := range flips {
		cm.Model().FlipBit(a)
		cr.Model().FlipBit(a)
	}
	fm := pm.Scan()
	fr := pr.Scan()
	if len(fm) == 0 || !reflect.DeepEqual(fm, fr) {
		t.Fatalf("flagged groups differ: mapped %v, in-RAM %v", fm, fr)
	}
}

// TestRecoveryPersists pins the acceptance criterion that flip-inject →
// detect → recover round-trips on mapped weights and the recovery writes
// reach the file: after Sync and Close, a fresh reader sees the recovered
// (zeroed) image and a fresh scan comes back clean.
func TestRecoveryPersists(t *testing.T) {
	for _, mode := range []string{"mapped", "inram"} {
		t.Run(mode, func(t *testing.T) {
			path, _ := saveTestModel(t, 3)
			var opts []Option
			if mode == "inram" {
				opts = append(opts, InRAM())
			}
			c, err := Open(path, opts...)
			if err != nil {
				t.Fatalf("Open: %v", err)
			}
			if mode == "mapped" && !c.Mapped() {
				t.Skip("mmap unavailable on this platform/filesystem")
			}
			m := c.Model()
			cfg := core.DefaultConfig(8)
			p := core.Protect(m, cfg)
			flips := []quant.BitAddress{
				{LayerIndex: 0, WeightIndex: 4097, Bit: quant.MSB},
				{LayerIndex: 2, WeightIndex: len(m.Layers[2].Q) - 1, Bit: quant.MSB},
			}
			for _, a := range flips {
				m.FlipBit(a)
			}
			flagged, zeroed := p.DetectAndRecover()
			if p.CountDetected(flips, flagged) != len(flips) {
				t.Fatalf("not all flips detected: flagged %v", flagged)
			}
			if zeroed == 0 {
				t.Fatal("recovery zeroed nothing")
			}
			if f := p.Scan(); len(f) != 0 {
				t.Fatalf("post-recovery scan flagged %v", f)
			}
			if err := c.Sync(); err != nil {
				t.Fatalf("Sync: %v", err)
			}
			if err := c.Close(); err != nil {
				t.Fatalf("Close: %v", err)
			}
			// A fresh in-RAM reader (no mmap aliasing) must see the
			// recovered image: the flipped weights are zero and a fresh
			// protector under the same config scans clean.
			c2, err := Open(path, InRAM())
			if err != nil {
				t.Fatalf("re-Open: %v", err)
			}
			defer c2.Close()
			m2 := c2.Model()
			for _, a := range flips {
				if got := m2.Layers[a.LayerIndex].Q[a.WeightIndex]; got != 0 {
					t.Fatalf("weight %v = %d after recovery+sync, want 0", a, got)
				}
			}
			if f := core.Protect(m2, cfg).Scan(); len(f) != 0 {
				t.Fatalf("fresh scan of synced file flagged %v", f)
			}
		})
	}
}

// TestSyncDirtySelective verifies SyncDirty flushes exactly the layers the
// observer (or MarkLayerDirty) recorded. The in-RAM fallback makes
// selectivity observable: a direct Q mutation that is never marked must not
// reach the file, while a model-API write on another layer must.
func TestSyncDirtySelective(t *testing.T) {
	path, _ := saveTestModel(t, 4)
	c, err := Open(path, InRAM())
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer c.Close()
	m := c.Model()
	m.FlipBit(quant.BitAddress{LayerIndex: 0, WeightIndex: 5, Bit: 3}) // observer marks layer 0
	m.Layers[1].Q[7] = m.Layers[1].Q[7] + 1                            // unmarked direct write
	if err := c.SyncDirty(); err != nil {
		t.Fatalf("SyncDirty: %v", err)
	}
	check, err := Open(path, InRAM())
	if err != nil {
		t.Fatalf("re-Open: %v", err)
	}
	if got, want := check.Model().Layers[0].Q[5], m.Layers[0].Q[5]; got != want {
		t.Fatalf("dirty layer not flushed: %d != %d", got, want)
	}
	if got := check.Model().Layers[1].Q[7]; got == m.Layers[1].Q[7] {
		t.Fatal("clean layer was flushed by SyncDirty")
	}
	check.Close()
	// MarkWritten (the out-of-band notification recovery uses) must reach
	// the checkpoint's dirty tracking through the same observer.
	m.MarkWritten(1)
	if err := c.SyncDirty(); err != nil {
		t.Fatalf("SyncDirty: %v", err)
	}
	check2, err := Open(path, InRAM())
	if err != nil {
		t.Fatalf("re-Open: %v", err)
	}
	defer check2.Close()
	if got := check2.Model().Layers[1].Q[7]; got != m.Layers[1].Q[7] {
		t.Fatal("MarkWritten layer not flushed by SyncDirty")
	}
	// A second SyncDirty with nothing dirty is a no-op that still succeeds.
	if err := c.SyncDirty(); err != nil {
		t.Fatalf("idle SyncDirty: %v", err)
	}
}

// TestReleaseLayerKeepsData pins that ReleaseLayer is a pure RSS release on
// the shared mapping: the layer's bytes (including un-synced in-memory
// writes, which live in the page cache) survive release and re-fault.
func TestReleaseLayerKeepsData(t *testing.T) {
	path, orig := saveTestModel(t, 5)
	c, err := Open(path)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer c.Close()
	if !c.Mapped() {
		t.Skip("mmap unavailable on this platform/filesystem")
	}
	m := c.Model()
	m.Layers[0].Q[123] = 77 // dirty page in the page cache, not yet synced
	c.AdviseSequential()
	for li := range m.Layers {
		c.ReleaseLayer(li)
	}
	if got := m.Layers[0].Q[123]; got != 77 {
		t.Fatalf("released page lost an in-memory write: %d", got)
	}
	for i, l := range m.Layers {
		want := orig.Layers[i].Q
		for j, q := range l.Q {
			if i == 0 && j == 123 {
				continue
			}
			if q != want[j] {
				t.Fatalf("layer %d weight %d corrupted after release: %d != %d", i, j, q, want[j])
			}
		}
	}
}

func TestWriterErrors(t *testing.T) {
	dir := t.TempDir()
	newWriter := func(name string) *Writer {
		w, err := Create(filepath.Join(dir, name))
		if err != nil {
			t.Fatalf("Create: %v", err)
		}
		return w
	}
	t.Run("write before AddLayer", func(t *testing.T) {
		w := newWriter("a")
		if _, err := w.Write([]byte{1}); err == nil {
			t.Fatal("Write before AddLayer succeeded")
		}
		if err := w.Close(); err == nil {
			t.Fatal("Close after error succeeded")
		}
	})
	t.Run("underfill", func(t *testing.T) {
		w := newWriter("b")
		if err := w.AddLayer("l0", 1, nil, 10); err != nil {
			t.Fatal(err)
		}
		if _, err := w.Write(make([]byte, 9)); err != nil {
			t.Fatal(err)
		}
		if err := w.Close(); err == nil {
			t.Fatal("Close of an underfilled layer succeeded")
		}
	})
	t.Run("underfill at next AddLayer", func(t *testing.T) {
		w := newWriter("c")
		if err := w.AddLayer("l0", 1, nil, 10); err != nil {
			t.Fatal(err)
		}
		if err := w.AddLayer("l1", 1, nil, 10); err == nil {
			t.Fatal("AddLayer over an underfilled layer succeeded")
		}
		w.Close()
	})
	t.Run("overflow", func(t *testing.T) {
		w := newWriter("d")
		if err := w.AddLayer("l0", 1, nil, 4); err != nil {
			t.Fatal(err)
		}
		if _, err := w.Write(make([]byte, 5)); err == nil {
			t.Fatal("overflowing Write succeeded")
		}
		w.Close()
	})
	t.Run("duplicate name", func(t *testing.T) {
		w := newWriter("e")
		if err := w.AddLayer("l0", 1, nil, 1); err != nil {
			t.Fatal(err)
		}
		if _, err := w.Write([]byte{1}); err != nil {
			t.Fatal(err)
		}
		if err := w.AddLayer("l0", 1, nil, 1); err == nil {
			t.Fatal("duplicate AddLayer succeeded")
		}
		w.Close()
	})
	t.Run("empty name and zero weights", func(t *testing.T) {
		w := newWriter("f")
		if err := w.AddLayer("", 1, nil, 1); err == nil {
			t.Fatal("empty layer name accepted")
		}
		w = newWriter("g")
		if err := w.AddLayer("l0", 1, nil, 0); err == nil {
			t.Fatal("zero-weight layer accepted")
		}
	})
	t.Run("no layers", func(t *testing.T) {
		w := newWriter("h")
		if err := w.Close(); err == nil {
			t.Fatal("Close of an empty checkpoint succeeded")
		}
	})
	t.Run("double Close", func(t *testing.T) {
		w := newWriter("i")
		if err := w.AddLayer("l0", 1, nil, 1); err != nil {
			t.Fatal(err)
		}
		if _, err := w.Write([]byte{1}); err != nil {
			t.Fatal(err)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		if err := w.Close(); err == nil {
			t.Fatal("second Close succeeded")
		}
	})
}

func TestOpenRejectsCorruption(t *testing.T) {
	path, _ := saveTestModel(t, 6)
	pristine, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	h, err := decodeHeader(pristine)
	if err != nil {
		t.Fatal(err)
	}
	corrupt := func(t *testing.T, mutate func(b []byte) []byte) error {
		t.Helper()
		p := filepath.Join(t.TempDir(), "bad.radar")
		if err := os.WriteFile(p, mutate(append([]byte(nil), pristine...)), 0o644); err != nil {
			t.Fatal(err)
		}
		c, err := Open(p)
		if err == nil {
			c.Close()
		}
		return err
	}
	cases := []struct {
		name   string
		mutate func(b []byte) []byte
	}{
		{"bad magic", func(b []byte) []byte { b[0] ^= 0xFF; return b }},
		{"bad version", func(b []byte) []byte { b[8] ^= 0xFF; return b }},
		{"bad page size", func(b []byte) []byte { b[12] ^= 0xFF; return b }},
		{"table CRC mismatch", func(b []byte) []byte { b[h.tableOff] ^= 0xFF; return b }},
		{"truncated file", func(b []byte) []byte { return b[:len(b)-1] }},
		{"short header", func(b []byte) []byte { return b[:headerSize-1] }},
		// A crafted first entry whose off is page-aligned and huge enough
		// that off+weights wraps int64 negative, with the table CRC fixed up
		// so only the geometry check can reject it.
		{"section offset overflow", func(b []byte) []byte {
			le := binary.LittleEndian
			pos := int(h.tableOff)
			pos += 2 + int(le.Uint16(b[pos:])) // name length + name
			pos += 4                           // scale
			nScales := int(le.Uint32(b[pos:]))
			pos += 4 + 4*nScales
			le.PutUint64(b[pos:], 1<<63-PageSize)
			le.PutUint32(b[20:], crc32.ChecksumIEEE(b[h.tableOff:h.tableOff+h.tableLen]))
			return b
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := corrupt(t, tc.mutate)
			if err == nil {
				t.Fatal("Open accepted a corrupt checkpoint")
			}
			if !errors.Is(err, ErrFormat) {
				t.Fatalf("error %v does not wrap ErrFormat", err)
			}
		})
	}
	// Weight corruption inside a section is the scan's job, not Open's:
	// the file still opens, and the protector flags the damage.
	p2 := filepath.Join(t.TempDir(), "flipped.radar")
	flipped := append([]byte(nil), pristine...)
	flipped[PageSize+42] ^= 1 << quant.MSB
	if err := os.WriteFile(p2, flipped, 0o644); err != nil {
		t.Fatal(err)
	}
	c, err := Open(p2)
	if err != nil {
		t.Fatalf("Open rejected weight-level corruption: %v", err)
	}
	defer c.Close()
}

func TestCloseInvalidatesAndIdempotent(t *testing.T) {
	path, _ := saveTestModel(t, 7)
	c, err := Open(path, InRAM())
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}
