//go:build linux

package store

import (
	"os"
	"syscall"
	"unsafe"
)

// Linux backend: shared writable mapping of the whole file. MAP_SHARED is
// what makes the checkpoint the authoritative DRAM image — recovery writes
// hit the page cache directly and msync pins them to disk — and what makes
// MADV_DONTNEED a pure RSS release rather than a data loss (the pages
// belong to the file, not the process).

const (
	adviceDontNeed   = syscall.MADV_DONTNEED
	adviceSequential = syscall.MADV_SEQUENTIAL
)

// mmapFile maps the file read-write shared. A false return selects the
// read-into-RAM fallback (e.g. a filesystem that rejects shared writable
// mappings).
func mmapFile(f *os.File, size int64) ([]byte, bool) {
	if size <= 0 || size != int64(int(size)) {
		return nil, false
	}
	b, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ|syscall.PROT_WRITE, syscall.MAP_SHARED)
	if err != nil {
		return nil, false
	}
	return b, true
}

// munmapFile releases the mapping.
func munmapFile(b []byte) error { return syscall.Munmap(b) }

// msyncRange synchronously writes the mapped range's dirty pages back to
// the file. The Go syscall package does not wrap msync, so this calls it
// directly; the caller guarantees &b[0] is page-aligned.
func msyncRange(b []byte) error {
	if len(b) == 0 {
		return nil
	}
	_, _, errno := syscall.Syscall(syscall.SYS_MSYNC,
		uintptr(unsafe.Pointer(&b[0])), uintptr(len(b)), uintptr(syscall.MS_SYNC))
	if errno != 0 {
		return errno
	}
	return nil
}

// madviseRange applies advice to the mapped range, best-effort.
func madviseRange(b []byte, advice int) {
	if len(b) == 0 {
		return
	}
	_ = syscall.Madvise(b, advice)
}

// osPageSize returns the host page size (sync/release ranges are rounded
// to it; the format's own alignment is the fixed PageSize).
func osPageSize() int { return os.Getpagesize() }
