package store

import (
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
	"unsafe"

	"radar/internal/quant"
)

// Checkpoint is an opened store file. On platforms with mmap the weight
// sections are memory-mapped shared and writable: the quant.Model returned
// by Model exposes each layer as a zero-copy []int8 view of the file, so
// scans stream through the page cache, recovery zeroes the mapped bytes in
// place, and Sync/SyncDirty (msync) make those writes durable. Elsewhere —
// or under the InRAM option — the file is read into an anonymous buffer
// with the same surface; Sync then writes the buffer sections back.
//
// The checkpoint file is the persistent DRAM image: bit flips injected and
// recoveries performed through the model survive into the file once
// synced. Close invalidates every layer slice handed out by Model.
type Checkpoint struct {
	path   string
	f      *os.File
	data   []byte // whole-file mapping, or heap buffer in the fallback
	mapped bool
	layers []layerMeta
	q      [][]int8

	modelOnce sync.Once
	model     *quant.Model
	unobserve func()

	mu     sync.Mutex
	dirty  []bool
	closed bool
}

// options collects Open configuration.
type options struct {
	inRAM bool
}

// Option configures Open.
type Option func(*options)

// InRAM forces the read-into-RAM loader even where mmap is available —
// the differential baseline the mapped reader is pinned against, and an
// escape hatch for filesystems that reject shared writable mappings.
func InRAM() Option {
	return func(o *options) { o.inRAM = true }
}

// Open validates the checkpoint at path and maps (or loads) its weight
// sections. The file is opened read-write: scans only read, but recovery
// writes through the same mapping. When mmap is unavailable or fails, Open
// silently falls back to the in-RAM loader; Mapped reports which one won.
func Open(path string, opts ...Option) (*Checkpoint, error) {
	var o options
	for _, fn := range opts {
		fn(&o)
	}
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return nil, err
	}
	c, err := open(f, path, o)
	if err != nil {
		f.Close()
		return nil, err
	}
	return c, nil
}

func open(f *os.File, path string, o options) (*Checkpoint, error) {
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := st.Size()
	hbuf := make([]byte, headerSize)
	if _, err := io.ReadFull(io.NewSectionReader(f, 0, headerSize), hbuf); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrFormat, err)
	}
	h, err := decodeHeader(hbuf)
	if err != nil {
		return nil, err
	}
	if int64(h.fileSize) != size {
		return nil, fmt.Errorf("%w: header says %d bytes, file has %d", ErrFormat, h.fileSize, size)
	}
	// Compare without h.tableOff+h.tableLen: the uint64 sum can wrap for a
	// crafted header and slip past a naive end check.
	if h.tableLen > 1<<30 || h.tableOff > h.fileSize || h.tableLen > h.fileSize-h.tableOff {
		return nil, fmt.Errorf("%w: section table at offset %d (%d bytes) exceeds file", ErrFormat, h.tableOff, h.tableLen)
	}
	table := make([]byte, h.tableLen)
	if _, err := io.ReadFull(io.NewSectionReader(f, int64(h.tableOff), int64(h.tableLen)), table); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrFormat, err)
	}
	if crc := crc32.ChecksumIEEE(table); crc != h.tableCRC {
		return nil, fmt.Errorf("%w: section table CRC mismatch (%08x != %08x)", ErrFormat, crc, h.tableCRC)
	}
	layers, err := decodeTable(table, int(h.layers), size)
	if err != nil {
		return nil, err
	}

	c := &Checkpoint{path: path, f: f, layers: layers, dirty: make([]bool, len(layers))}
	if !o.inRAM {
		if data, ok := mmapFile(f, size); ok {
			c.data = data
			c.mapped = true
		}
	}
	if c.data == nil {
		buf := make([]byte, size)
		if _, err := io.ReadFull(io.NewSectionReader(f, 0, size), buf); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrFormat, err)
		}
		c.data = buf
	}
	c.q = make([][]int8, len(layers))
	for i, l := range layers {
		c.q[i] = bytesToInt8(c.data[l.off : l.off+l.weights])
	}
	return c, nil
}

// Model returns the quantized model backed by the checkpoint's sections:
// Layer.Q slices alias the mapping directly (zero-copy), Param is nil
// until the caller attaches a float network (quant.Model.Attach). The
// model is built once; the checkpoint observes it so writes made through
// the model API mark their layers dirty for SyncDirty.
func (c *Checkpoint) Model() *quant.Model {
	c.modelOnce.Do(func() {
		m := &quant.Model{}
		for i, l := range c.layers {
			m.Layers = append(m.Layers, &quant.Layer{
				Name:   l.name,
				Q:      c.q[i],
				Scale:  l.scale,
				Scales: l.scales,
			})
		}
		c.unobserve = m.Observe(c.MarkLayerDirty)
		c.model = m
	})
	return c.model
}

// Mapped reports whether the checkpoint is mmap-backed (true) or loaded
// into RAM by the fallback path (false).
func (c *Checkpoint) Mapped() bool { return c.mapped }

// Size returns the checkpoint file size in bytes.
func (c *Checkpoint) Size() int64 { return int64(len(c.data)) }

// WeightBytes returns the total weight payload (one byte per int8 weight).
func (c *Checkpoint) WeightBytes() int64 {
	var n int64
	for _, l := range c.layers {
		n += l.weights
	}
	return n
}

// NumLayers returns the number of layer sections.
func (c *Checkpoint) NumLayers() int { return len(c.layers) }

// LayerName returns the name of layer li.
func (c *Checkpoint) LayerName(li int) string { return c.layers[li].name }

// MarkLayerDirty records that layer li's weights changed, scheduling its
// section for the next SyncDirty. Writes made through the quant.Model API
// are tracked automatically via the model observer; callers that mutate
// Layer.Q directly use this, mirroring core.Protector.MarkLayerDirty.
func (c *Checkpoint) MarkLayerDirty(li int) {
	c.mu.Lock()
	if li >= 0 && li < len(c.dirty) {
		c.dirty[li] = true
	}
	c.mu.Unlock()
}

// SyncLayer makes layer li's current bytes durable: msync on the mapped
// path, a positional write-back on the RAM fallback.
func (c *Checkpoint) SyncLayer(li int) error {
	if li < 0 || li >= len(c.layers) {
		return fmt.Errorf("store: layer %d out of range", li)
	}
	return c.syncRange(c.layers[li].off, c.layers[li].weights)
}

// Sync makes every section durable.
func (c *Checkpoint) Sync() error {
	for li := range c.layers {
		if err := c.SyncLayer(li); err != nil {
			return err
		}
	}
	return nil
}

// SyncDirty flushes exactly the layers written since the last sync (via
// the model observer or MarkLayerDirty). Flags are cleared before the
// flush reads the bytes, so a write landing mid-sync re-marks its layer
// for the next round — the same discipline ScanDirty uses.
func (c *Checkpoint) SyncDirty() error {
	c.mu.Lock()
	var todo []int
	for li, d := range c.dirty {
		if d {
			todo = append(todo, li)
			c.dirty[li] = false
		}
	}
	c.mu.Unlock()
	for _, li := range todo {
		if err := c.SyncLayer(li); err != nil {
			return err
		}
	}
	return nil
}

// syncRange flushes [off, off+n) of the checkpoint. The mapped path hands
// msync a range rounded down to the OS page size (sections are PageSize
// aligned in the file, which matches or divides the OS page on mainstream
// platforms).
func (c *Checkpoint) syncRange(off, n int64) error {
	if c.mapped {
		lo := off &^ int64(osPageSize()-1)
		return msyncRange(c.data[lo : off+n])
	}
	_, err := c.f.WriteAt(c.data[off:off+n], off)
	return err
}

// ReleaseLayer drops layer li's pages from the process's resident set
// (madvise MADV_DONTNEED on the mapped range). On a shared file mapping
// this never discards data — dirty pages live in the page cache and are
// re-faulted on the next access — it only caps the RSS high-water mark,
// which is what lets a scan stream over a checkpoint far larger than
// memory. Best-effort: a no-op on the RAM fallback and on alignment or
// kernel refusals. Typical use is a Config.OnLayerScanned hook in
// internal/core, releasing each layer as its scan pass completes.
func (c *Checkpoint) ReleaseLayer(li int) {
	if !c.mapped || li < 0 || li >= len(c.layers) {
		return
	}
	l := c.layers[li]
	lo := l.off
	hi := pageAlign(l.off + l.weights)
	if hi > int64(len(c.data)) {
		hi = int64(len(c.data))
	}
	ps := int64(osPageSize())
	if lo%ps != 0 {
		lo = (lo + ps - 1) &^ (ps - 1)
	}
	hi = hi &^ (ps - 1)
	if lo >= hi {
		return
	}
	madviseRange(c.data[lo:hi], adviceDontNeed)
}

// AdviseSequential hints the kernel that the mapping will be read
// front-to-back (readahead-friendly). Best-effort.
func (c *Checkpoint) AdviseSequential() {
	if c.mapped {
		madviseRange(c.data, adviceSequential)
	}
}

// Close detaches the model observer, unmaps (or drops) the weight buffer
// and closes the file. It does not implicitly sync: callers that want
// in-memory writes to be durable must Sync first (munmap of a shared
// mapping lets the kernel write dirty pages back eventually, but Close's
// contract is only that the mapping is gone). Every []int8 obtained from
// Model is invalid after Close; touching one faults on the mapped path.
func (c *Checkpoint) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	c.mu.Unlock()
	if c.unobserve != nil {
		c.unobserve()
	}
	var err error
	if c.mapped {
		err = munmapFile(c.data)
	}
	c.data = nil
	c.q = nil
	if cerr := c.f.Close(); err == nil {
		err = cerr
	}
	return err
}

// bytesToInt8 reinterprets a byte slice as int8 without copying.
func bytesToInt8(b []byte) []int8 {
	if len(b) == 0 {
		return nil
	}
	return unsafe.Slice((*int8)(unsafe.Pointer(&b[0])), len(b))
}

// int8ToBytes reinterprets an int8 slice as bytes without copying.
func int8ToBytes(q []int8) []byte {
	if len(q) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&q[0])), len(q))
}
