//go:build !linux

package store

import "os"

// Fallback backend for platforms without the mmap wiring: Open reads the
// file into RAM, Sync writes sections back with pwrite, and release/advise
// are no-ops. Semantics (including durable recovery via SyncDirty) are
// identical to the mapped path; only the zero-copy and RSS properties are
// lost — which the differential tests in store_test.go pin.

const (
	adviceDontNeed   = 0
	adviceSequential = 0
)

func mmapFile(_ *os.File, _ int64) ([]byte, bool) { return nil, false }

func munmapFile(_ []byte) error { return nil }

func msyncRange(_ []byte) error { return nil }

func madviseRange(_ []byte, _ int) {}

func osPageSize() int { return os.Getpagesize() }
