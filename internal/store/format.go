// Package store implements the on-disk weight-storage subsystem for
// GB-scale protected checkpoints: a versioned, page-aligned binary format
// (header + per-layer section table + raw int8 weight pages) with a
// streaming writer and an mmap-backed zero-copy reader.
//
// The format exists because the gob checkpoint path decodes the full float
// model into heap memory, which caps protected deployments at toy sizes.
// A store checkpoint instead holds the quantized DRAM image itself — the
// exact bytes RADAR defends — and the reader exposes each layer as a
// []int8 view over the mapped file, so multi-GB weights can be protected,
// scanned and recovered as a stream without signatures-plus-weights ever
// co-residing in RAM. Platforms without a usable mmap fall back to a plain
// read-into-RAM loader with identical semantics (see Open).
//
// Layout (all integers little-endian):
//
//	page 0       64-byte header, rest of the page reserved
//	page 1…      per-layer weight sections, each starting on a page boundary
//	tail         section table (name, scales, offset, weight count per layer)
//
// The table lives after the data so the writer can stream layers of
// unknown count; the header (rewritten on Close) points at it. Weight
// bytes are raw two's-complement int8 in layer order — the mapped file is
// byte-identical to the in-memory Layer.Q the rest of the system already
// operates on.
package store

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"os"

	"radar/internal/quant"
)

// PageSize is the section alignment of the format. It matches the common
// 4 KiB virtual-memory page, so a mapped layer starts on an OS page
// boundary on every mainstream platform (larger-page hosts still work;
// sync and release just round to their own page size).
const PageSize = 4096

// Version is the current format version.
const Version = 1

// headerSize is the fixed encoded header length; the rest of page 0 is
// reserved for future use.
const headerSize = 64

// magic identifies a store checkpoint ("RADR STOre v1 family").
var magic = [8]byte{'R', 'A', 'D', 'R', 'S', 'T', 'O', '1'}

// ErrFormat is wrapped by every open-time validation failure: bad magic,
// unsupported version, corrupt table, or geometry that does not fit the
// file. A caller that sees ErrFormat should treat the file as not being a
// (usable) store checkpoint.
var ErrFormat = errors.New("store: invalid checkpoint")

// layerMeta is one section-table entry.
type layerMeta struct {
	name    string
	scale   float32
	scales  []float32
	off     int64 // absolute file offset, page-aligned
	weights int64 // int8 count == byte length
}

// header is the decoded fixed header.
type header struct {
	layers   uint32
	tableCRC uint32
	tableOff uint64
	tableLen uint64
	dataOff  uint64
	fileSize uint64
}

// pageAlign rounds n up to the next PageSize boundary.
func pageAlign(n int64) int64 {
	return (n + PageSize - 1) &^ (PageSize - 1)
}

// encodeHeader renders the fixed header block.
func encodeHeader(h header) []byte {
	buf := make([]byte, headerSize)
	copy(buf, magic[:])
	le := binary.LittleEndian
	le.PutUint32(buf[8:], Version)
	le.PutUint32(buf[12:], PageSize)
	le.PutUint32(buf[16:], h.layers)
	le.PutUint32(buf[20:], h.tableCRC)
	le.PutUint64(buf[24:], h.tableOff)
	le.PutUint64(buf[32:], h.tableLen)
	le.PutUint64(buf[40:], h.dataOff)
	le.PutUint64(buf[48:], h.fileSize)
	return buf
}

// decodeHeader parses and validates the fixed header block.
func decodeHeader(buf []byte) (header, error) {
	var h header
	if len(buf) < headerSize {
		return h, fmt.Errorf("%w: short header (%d bytes)", ErrFormat, len(buf))
	}
	if [8]byte(buf[:8]) != magic {
		return h, fmt.Errorf("%w: bad magic", ErrFormat)
	}
	le := binary.LittleEndian
	if v := le.Uint32(buf[8:]); v != Version {
		return h, fmt.Errorf("%w: unsupported version %d", ErrFormat, v)
	}
	if ps := le.Uint32(buf[12:]); ps != PageSize {
		return h, fmt.Errorf("%w: unsupported page size %d", ErrFormat, ps)
	}
	h.layers = le.Uint32(buf[16:])
	h.tableCRC = le.Uint32(buf[20:])
	h.tableOff = le.Uint64(buf[24:])
	h.tableLen = le.Uint64(buf[32:])
	h.dataOff = le.Uint64(buf[40:])
	h.fileSize = le.Uint64(buf[48:])
	return h, nil
}

// encodeTable renders the section table for the given layers.
func encodeTable(layers []layerMeta) []byte {
	var buf []byte
	le := binary.LittleEndian
	u16 := func(v uint16) { buf = le.AppendUint16(buf, v) }
	u32 := func(v uint32) { buf = le.AppendUint32(buf, v) }
	u64 := func(v uint64) { buf = le.AppendUint64(buf, v) }
	for _, l := range layers {
		u16(uint16(len(l.name)))
		buf = append(buf, l.name...)
		u32(math.Float32bits(l.scale))
		u32(uint32(len(l.scales)))
		for _, s := range l.scales {
			u32(math.Float32bits(s))
		}
		u64(uint64(l.off))
		u64(uint64(l.weights))
	}
	return buf
}

// decodeTable parses n section-table entries and validates their geometry
// against the file size.
func decodeTable(buf []byte, n int, fileSize int64) ([]layerMeta, error) {
	le := binary.LittleEndian
	layers := make([]layerMeta, 0, n)
	seen := make(map[string]bool, n)
	pos := 0
	need := func(k int) error {
		if pos+k > len(buf) {
			return fmt.Errorf("%w: truncated section table", ErrFormat)
		}
		return nil
	}
	for i := 0; i < n; i++ {
		var m layerMeta
		if err := need(2); err != nil {
			return nil, err
		}
		nameLen := int(le.Uint16(buf[pos:]))
		pos += 2
		if err := need(nameLen); err != nil {
			return nil, err
		}
		m.name = string(buf[pos : pos+nameLen])
		pos += nameLen
		if m.name == "" {
			return nil, fmt.Errorf("%w: layer %d has an empty name", ErrFormat, i)
		}
		if seen[m.name] {
			return nil, fmt.Errorf("%w: duplicate layer name %q", ErrFormat, m.name)
		}
		seen[m.name] = true
		if err := need(8); err != nil {
			return nil, err
		}
		m.scale = math.Float32frombits(le.Uint32(buf[pos:]))
		nScales := int(le.Uint32(buf[pos+4:]))
		pos += 8
		if err := need(4 * nScales); err != nil {
			return nil, err
		}
		if nScales > 0 {
			m.scales = make([]float32, nScales)
			for k := range m.scales {
				m.scales[k] = math.Float32frombits(le.Uint32(buf[pos+4*k:]))
			}
		}
		pos += 4 * nScales
		if err := need(16); err != nil {
			return nil, err
		}
		m.off = int64(le.Uint64(buf[pos:]))
		m.weights = int64(le.Uint64(buf[pos+8:]))
		pos += 16
		if m.weights <= 0 {
			return nil, fmt.Errorf("%w: layer %q has %d weights", ErrFormat, m.name, m.weights)
		}
		if m.off%PageSize != 0 {
			return nil, fmt.Errorf("%w: layer %q offset %d is not page-aligned", ErrFormat, m.name, m.off)
		}
		// Bounds without computing m.off+m.weights: for a crafted entry the
		// sum can wrap int64 negative and slip past a naive end check. A
		// huge uint64 off lands negative after the int64 cast and is caught
		// by the headerSize floor; weights <= 0 was rejected above, so
		// fileSize-m.off cannot overflow here.
		if m.off < headerSize || m.off > fileSize || m.weights > fileSize-m.off {
			return nil, fmt.Errorf("%w: layer %q section at offset %d (%d weights) exceeds file size %d",
				ErrFormat, m.name, m.off, m.weights, fileSize)
		}
		layers = append(layers, m)
	}
	if pos != len(buf) {
		return nil, fmt.Errorf("%w: %d trailing bytes after section table", ErrFormat, len(buf)-pos)
	}
	return layers, nil
}

// Writer streams layers into a new checkpoint file. Layers are written in
// order: AddLayer declares the next section, Write appends its weight
// bytes, and Close (after the last layer is complete) emits the section
// table and the header. The file is invalid until Close returns nil.
type Writer struct {
	f       *os.File
	w       *bufio.Writer
	off     int64 // logical write offset
	layers  []layerMeta
	remain  int64 // bytes still owed to the current layer
	closed  bool
	anyErr  error
	padding [PageSize]byte
}

// Create opens path for writing (truncating any existing file) and
// reserves the header page.
func Create(path string) (*Writer, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, err
	}
	w := &Writer{f: f, w: bufio.NewWriterSize(f, 1<<20)}
	if err := w.pad(PageSize); err != nil {
		f.Close()
		return nil, err
	}
	return w, nil
}

// pad writes zero bytes until the logical offset reaches target.
func (w *Writer) pad(target int64) error {
	for w.off < target {
		n := target - w.off
		if n > PageSize {
			n = PageSize
		}
		k, err := w.w.Write(w.padding[:n])
		w.off += int64(k)
		if err != nil {
			return w.fail(err)
		}
	}
	return nil
}

func (w *Writer) fail(err error) error {
	if w.anyErr == nil {
		w.anyErr = err
	}
	return err
}

// AddLayer declares the next layer section: name (must be unique and
// non-empty), its dequantization scale(s), and the exact number of int8
// weights the caller will stream through Write. The section starts on a
// page boundary.
func (w *Writer) AddLayer(name string, scale float32, scales []float32, weights int64) error {
	if w.anyErr != nil {
		return w.anyErr
	}
	if w.closed {
		return w.fail(errors.New("store: AddLayer after Close"))
	}
	if w.remain != 0 {
		return w.fail(fmt.Errorf("store: layer %q is short %d bytes", w.layers[len(w.layers)-1].name, w.remain))
	}
	if name == "" {
		return w.fail(errors.New("store: empty layer name"))
	}
	if weights <= 0 {
		return w.fail(fmt.Errorf("store: layer %q declared with %d weights", name, weights))
	}
	for _, l := range w.layers {
		if l.name == name {
			return w.fail(fmt.Errorf("store: duplicate layer name %q", name))
		}
	}
	if err := w.pad(pageAlign(w.off)); err != nil {
		return err
	}
	w.layers = append(w.layers, layerMeta{name: name, scale: scale, scales: scales, off: w.off, weights: weights})
	w.remain = weights
	return nil
}

// Write streams weight bytes into the current layer. Writing more bytes
// than the layer declared is an error.
func (w *Writer) Write(p []byte) (int, error) {
	if w.anyErr != nil {
		return 0, w.anyErr
	}
	if len(w.layers) == 0 {
		return 0, w.fail(errors.New("store: Write before AddLayer"))
	}
	if int64(len(p)) > w.remain {
		return 0, w.fail(fmt.Errorf("store: layer %q overflows its declared size", w.layers[len(w.layers)-1].name))
	}
	n, err := w.w.Write(p)
	w.off += int64(n)
	w.remain -= int64(n)
	if err != nil {
		return n, w.fail(err)
	}
	return n, nil
}

// Close completes the checkpoint: it validates that the last layer
// received every declared byte, appends the section table, rewrites the
// header, and syncs the file. A Writer whose Close returned an error
// leaves an invalid file behind.
func (w *Writer) Close() error {
	if w.closed {
		return errors.New("store: double Close")
	}
	w.closed = true
	defer w.f.Close()
	if w.anyErr != nil {
		return w.anyErr
	}
	if w.remain != 0 {
		return fmt.Errorf("store: layer %q is short %d bytes", w.layers[len(w.layers)-1].name, w.remain)
	}
	if len(w.layers) == 0 {
		return errors.New("store: checkpoint has no layers")
	}
	if err := w.pad(pageAlign(w.off)); err != nil {
		return err
	}
	table := encodeTable(w.layers)
	tableOff := w.off
	if _, err := w.w.Write(table); err != nil {
		return err
	}
	w.off += int64(len(table))
	if err := w.w.Flush(); err != nil {
		return err
	}
	h := header{
		layers:   uint32(len(w.layers)),
		tableCRC: crc32.ChecksumIEEE(table),
		tableOff: uint64(tableOff),
		tableLen: uint64(len(table)),
		dataOff:  PageSize,
		fileSize: uint64(w.off),
	}
	if _, err := w.f.WriteAt(encodeHeader(h), 0); err != nil {
		return err
	}
	return w.f.Sync()
}

// Save writes m's quantized image as a store checkpoint at path — the
// gob→store conversion path for models that already live in RAM. Layer
// order, names, scales and weight bytes round-trip exactly.
func Save(path string, m *quant.Model) error {
	w, err := Create(path)
	if err != nil {
		return err
	}
	for _, l := range m.Layers {
		if err := w.AddLayer(l.Name, l.Scale, l.Scales, int64(len(l.Q))); err != nil {
			w.Close()
			return err
		}
		if _, err := w.Write(int8ToBytes(l.Q)); err != nil {
			w.Close()
			return err
		}
	}
	return w.Close()
}
