package model

import (
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"radar/internal/core"
	"radar/internal/quant"
	"radar/internal/store"
)

// TestAdoptStateAliases pins the single-materialization contract of the
// checkpoint loader: AdoptState hands the state's backing arrays to the
// network (pointer-identical, zero bytes copied or allocated per weight),
// unlike LoadState which copies.
func TestAdoptStateAliases(t *testing.T) {
	spec := TinySpec()
	src := spec.Arch(rand.New(rand.NewSource(1)))
	st := src.CaptureState()
	net := spec.Arch(rand.New(rand.NewSource(2)))
	net.AdoptState(st)
	for _, p := range net.Params() {
		data := st.Params[p.Name]
		if len(data) == 0 || &p.Value.Data[0] != &data[0] {
			t.Fatalf("param %s was copied, not adopted", p.Name)
		}
	}
	// LoadState keeps its copy semantics: the same state loaded into a
	// third net must not alias.
	net2 := spec.Arch(rand.New(rand.NewSource(3)))
	net2.LoadState(st)
	for _, p := range net2.Params() {
		if &p.Value.Data[0] == &st.Params[p.Name][0] {
			t.Fatalf("LoadState aliased param %s", p.Name)
		}
	}
}

// TestLoadCheckpointIntoMatchesLoadState pins that the adopting disk path
// and the copying fallback produce identical weights.
func TestLoadCheckpointIntoMatchesLoadState(t *testing.T) {
	ResetCache()
	spec := TinySpec()
	spec.Name = "tiny-test-adopt"
	path := filepath.Join(cacheDir(), spec.Name+".gob")
	defer os.Remove(path)
	b1 := Load(spec) // trains, saves checkpoint
	net := spec.Arch(rand.New(rand.NewSource(1)))
	clean, ok := loadCheckpointInto(net, path)
	if !ok {
		t.Fatal("loadCheckpointInto rejected a fresh checkpoint")
	}
	if clean != b1.CleanAccuracy {
		t.Fatalf("clean accuracy %v != %v", clean, b1.CleanAccuracy)
	}
	qm := quant.Quantize(net)
	for i, l := range qm.Layers {
		want := b1.QModel.Layers[i]
		for j := range l.Q {
			if l.Q[j] != want.Q[j] {
				t.Fatalf("layer %d weight %d: %d != %d", i, j, l.Q[j], want.Q[j])
			}
		}
	}
	if _, ok := loadCheckpointInto(net, path+".missing"); ok {
		t.Fatal("loadCheckpointInto accepted a missing file")
	}
}

// TestMapCheckpoint covers the gob→store conversion and rebinding path
// end-to-end: converting a bundle, running flip→detect→recover on the
// mapped image, persisting the recovery with SyncDirty (driven purely by
// the recovery's observer notification), and re-mapping a fresh bundle
// against the now-authoritative file.
func TestMapCheckpoint(t *testing.T) {
	ResetCache()
	spec := TinySpec()
	b := Load(spec)
	path := filepath.Join(t.TempDir(), spec.Name+".radar")
	c, err := MapCheckpoint(b, path)
	if err != nil {
		t.Fatalf("MapCheckpoint: %v", err)
	}
	defer c.Close()
	if b.QModel != c.Model() {
		t.Fatal("bundle not rebound to the store model")
	}
	if b.QModel.Net != b.Net {
		t.Fatal("store model not attached to the bundle's network")
	}
	ref := Load(spec)
	if len(b.QModel.Layers) != len(ref.QModel.Layers) {
		t.Fatal("layer count changed through conversion")
	}
	for i, l := range b.QModel.Layers {
		rl := ref.QModel.Layers[i]
		if l.Name != rl.Name || len(l.Q) != len(rl.Q) {
			t.Fatalf("layer %d shape changed through conversion", i)
		}
		for j := range l.Q {
			if l.Q[j] != rl.Q[j] {
				t.Fatalf("layer %d weight %d changed through conversion", i, j)
			}
		}
		if l.Param == nil || l.Param.Value.Data[0] != float32(l.Q[0])*l.Scale {
			t.Fatalf("layer %d float side not synchronized", i)
		}
	}

	// Flip → detect → recover on the mapped image; SyncDirty persists the
	// zeroing because recovery notifies the model observers, which the
	// checkpoint translates into dirty sections.
	p := core.Protect(b.QModel, core.DefaultConfig(8))
	addr := quant.BitAddress{LayerIndex: 1, WeightIndex: 3, Bit: quant.MSB}
	b.QModel.FlipBit(addr)
	flagged, zeroed := p.DetectAndRecover()
	if p.CountDetected([]quant.BitAddress{addr}, flagged) != 1 || zeroed == 0 {
		t.Fatalf("flip not recovered: flagged=%v zeroed=%d", flagged, zeroed)
	}
	if err := c.SyncDirty(); err != nil {
		t.Fatalf("SyncDirty: %v", err)
	}

	// A fresh bundle mapped against the same file must see the recovered
	// (zeroed) weight — the checkpoint, not the bundle, is authoritative —
	// and its float side must reflect it.
	b2 := Load(spec)
	c2, err := MapCheckpoint(b2, path)
	if err != nil {
		t.Fatalf("re-MapCheckpoint: %v", err)
	}
	defer c2.Close()
	l := b2.QModel.Layers[addr.LayerIndex]
	if l.Q[addr.WeightIndex] != 0 {
		t.Fatalf("recovered weight = %d in re-mapped bundle, want 0", l.Q[addr.WeightIndex])
	}
	if l.Param.Value.Data[addr.WeightIndex] != 0 {
		t.Fatal("float side of recovered weight not synchronized")
	}
}

// TestMapCheckpointRewritesCorruptFile pins the conversion fallback: a
// file that is not a store checkpoint is rewritten from the bundle.
func TestMapCheckpointRewritesCorruptFile(t *testing.T) {
	ResetCache()
	spec := TinySpec()
	b := Load(spec)
	path := filepath.Join(t.TempDir(), "garbage.radar")
	if err := os.WriteFile(path, []byte("not a checkpoint"), 0o644); err != nil {
		t.Fatal(err)
	}
	c, err := MapCheckpoint(b, path)
	if err != nil {
		t.Fatalf("MapCheckpoint over garbage: %v", err)
	}
	defer c.Close()
	if _, err := store.Open(path, store.InRAM()); err != nil {
		t.Fatalf("rewritten file is not a valid checkpoint: %v", err)
	}
}
