package model

import "radar/internal/quant"

// SyntheticQuant builds a quantized weight image with the given layer
// shapes and deterministic pseudo-random int8 weights, without a backing
// float network. It exists so scan/protect benchmarks and the worker-sweep
// experiment can run at the paper's full ImageNet ResNet-18 scale (11.7 MB
// of weights) without training anything. The layers have no Param; the
// float-sync steps of FlipBit, Restore and Recover are no-ops on such pure
// DRAM images, so all protection paths work. Corrupting Layer.Q directly
// also works but bypasses dirty tracking (use MarkLayerDirty, or a full
// Scan).
func SyntheticQuant(tab *ShapeTable) *quant.Model {
	m := &quant.Model{}
	x := uint32(0x9E3779B9)
	for _, ls := range tab.Layers {
		q := make([]int8, ls.Weights)
		for i := range q {
			x = x*1664525 + 1013904223 // LCG: fixed stream, fully reproducible
			q[i] = int8(x >> 24)
		}
		m.Layers = append(m.Layers, &quant.Layer{Name: ls.Name, Q: q, Scale: 1})
	}
	return m
}

// ScatterMSBFlips corrupts k MSBs at fixed, well-scattered positions
// across the model's layers by writing Layer.Q directly (SyntheticQuant
// images have no float side to sync). BenchmarkScan and the scanscale
// experiment share this pattern so they measure the same corruption.
func ScatterMSBFlips(m *quant.Model, k int) {
	for f := 0; f < k; f++ {
		l := m.Layers[(f*7)%len(m.Layers)]
		i := (f * 1_000_003) % len(l.Q)
		l.Q[i] = quant.FlipBit(l.Q[i], quant.MSB)
	}
}
