package model

import (
	"fmt"
	"io"
	"math/rand"

	"radar/internal/data"
	"radar/internal/nn"
	"radar/internal/tensor"
)

// TrainConfig controls a training run.
type TrainConfig struct {
	// Epochs is the number of passes over the training set.
	Epochs int
	// BatchSize is the minibatch size.
	BatchSize int
	// Optimizer selects "sgd" or "adam".
	Optimizer string
	// LR is the initial learning rate.
	LR float64
	// WeightDecay is the L2 coefficient on conv/linear weights.
	WeightDecay float64
	// LRDropEvery halves the learning rate every this many epochs (0 = no
	// schedule).
	LRDropEvery int
	// Seed drives batch shuffling.
	Seed int64
	// Log receives progress lines; nil silences logging.
	Log io.Writer
}

// Train optimizes net on train and returns the final test accuracy.
func Train(net *nn.Sequential, train, test *data.Dataset, cfg TrainConfig) float64 {
	var opt nn.Optimizer
	switch cfg.Optimizer {
	case "adam":
		opt = nn.NewAdam(cfg.LR, cfg.WeightDecay)
	default:
		opt = nn.NewSGD(cfg.LR, 0.9, cfg.WeightDecay)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	lr := cfg.LR
	for e := 0; e < cfg.Epochs; e++ {
		if cfg.LRDropEvery > 0 && e > 0 && e%cfg.LRDropEvery == 0 {
			lr /= 2
			opt.SetLR(lr)
		}
		train.Shuffle(rng)
		var lossSum float64
		batches := 0
		for lo := 0; lo+cfg.BatchSize <= train.Len(); lo += cfg.BatchSize {
			x, labels := train.Batch(lo, lo+cfg.BatchSize)
			net.ZeroGrad()
			out := net.Forward(x, true)
			loss, g := nn.SoftmaxCrossEntropy(out, labels)
			net.Backward(g)
			opt.Step(net.Params())
			lossSum += loss
			batches++
		}
		if cfg.Log != nil {
			acc := Evaluate(net, test, cfg.BatchSize)
			fmt.Fprintf(cfg.Log, "epoch %2d  loss %.4f  test acc %.2f%%\n",
				e+1, lossSum/float64(batches), 100*acc)
		}
	}
	return Evaluate(net, test, cfg.BatchSize)
}

// Evaluate returns the eval-mode accuracy of net on d.
func Evaluate(net *nn.Sequential, d *data.Dataset, batch int) float64 {
	if batch <= 0 {
		batch = 64
	}
	correct := 0
	for lo := 0; lo < d.Len(); lo += batch {
		hi := lo + batch
		if hi > d.Len() {
			hi = d.Len()
		}
		x, labels := d.Batch(lo, hi)
		out := net.Forward(x, false)
		k := out.Shape[1]
		for i := range labels {
			if out.Argmax(i*k, k) == labels[i] {
				correct++
			}
		}
	}
	return float64(correct) / float64(d.Len())
}

// EvaluateLoss returns the eval-mode mean cross-entropy of net on d.
func EvaluateLoss(net *nn.Sequential, d *data.Dataset, batch int) float64 {
	if batch <= 0 {
		batch = 64
	}
	var sum float64
	n := 0
	for lo := 0; lo < d.Len(); lo += batch {
		hi := lo + batch
		if hi > d.Len() {
			hi = d.Len()
		}
		x, labels := d.Batch(lo, hi)
		out := net.Forward(x, false)
		sum += nn.CrossEntropyLoss(out, labels) * float64(hi-lo)
		n += hi - lo
	}
	return sum / float64(n)
}

// Logits runs eval-mode inference on a single batch tensor.
func Logits(net *nn.Sequential, x *tensor.Tensor) *tensor.Tensor {
	return net.Forward(x, false)
}
