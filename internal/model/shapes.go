// Package model provides the model zoo for the RADAR reproduction: the
// scaled trainable ResNet-20/ResNet-18 models used for accuracy
// experiments, gob-based checkpoint caching so expensive training runs
// once, and the exact layer shape tables of the full-size paper models used
// for storage and timing experiments where no trained weights are needed.
package model

import "fmt"

// LayerShape describes one weight tensor of a full-size model together
// with the geometry needed to count inference work.
type LayerShape struct {
	// Name identifies the layer.
	Name string
	// Weights is the number of scalar weights (each 1 byte at int8).
	Weights int
	// MACs is the number of multiply-accumulates one inference of the layer
	// performs at the model's native input resolution.
	MACs int64
}

// ShapeTable is the layer inventory of a full-size model.
type ShapeTable struct {
	// Model names the architecture ("resnet20-cifar" / "resnet18-imagenet").
	Model string
	// Layers lists every weight-carrying layer in execution order.
	Layers []LayerShape
}

// TotalWeights sums the weight counts of all layers.
func (t *ShapeTable) TotalWeights() int {
	n := 0
	for _, l := range t.Layers {
		n += l.Weights
	}
	return n
}

// TotalMACs sums the MAC counts of all layers.
func (t *ShapeTable) TotalMACs() int64 {
	var n int64
	for _, l := range t.Layers {
		n += l.MACs
	}
	return n
}

// convShape computes the weight and MAC counts of a conv layer with square
// kernel k, given input channels, output channels and output spatial size.
func convShape(name string, inC, outC, k, outH, outW int) LayerShape {
	w := outC * inC * k * k
	return LayerShape{Name: name, Weights: w, MACs: int64(w) * int64(outH*outW)}
}

// bnShape counts the affine (γ, β) parameters of a batch-norm layer. They
// are part of the stored model image the paper's signatures cover, but they
// contribute negligible inference MACs (folded at deployment).
func bnShape(name string, c int) LayerShape {
	return LayerShape{Name: name, Weights: 2 * c}
}

// ResNet20CIFARShapes returns the exact layer table of the paper's 8-bit
// ResNet-20 on CIFAR-10 (32×32 input, widths 16/32/64, 10 classes):
// 272,474 parameters in total (270,906 conv/fc + 1,568 BN affine).
func ResNet20CIFARShapes() *ShapeTable {
	t := &ShapeTable{Model: "resnet20-cifar"}
	add := func(l LayerShape) { t.Layers = append(t.Layers, l) }
	add(convShape("stem.conv", 3, 16, 3, 32, 32))
	add(bnShape("stem.bn", 16))
	stageCh := []int{16, 32, 64}
	stageHW := []int{32, 16, 8}
	inC := 16
	for s := 0; s < 3; s++ {
		outC, hw := stageCh[s], stageHW[s]
		for b := 0; b < 3; b++ {
			name := fmt.Sprintf("stage%d.block%d", s+1, b)
			add(convShape(name+".conv1", inC, outC, 3, hw, hw))
			add(bnShape(name+".bn1", outC))
			add(convShape(name+".conv2", outC, outC, 3, hw, hw))
			add(bnShape(name+".bn2", outC))
			if s > 0 && b == 0 {
				add(convShape(name+".down.conv", inC, outC, 1, hw, hw))
				add(bnShape(name+".down.bn", outC))
			}
			inC = outC
		}
	}
	add(LayerShape{Name: "fc", Weights: 64*10 + 10, MACs: 64 * 10})
	return t
}

// ResNet18ImageNetShapes returns the exact layer table of the paper's 8-bit
// ResNet-18 on ImageNet (224×224 input, widths 64/128/256/512, 1000
// classes): 11,689,512 weights in total.
func ResNet18ImageNetShapes() *ShapeTable {
	t := &ShapeTable{Model: "resnet18-imagenet"}
	add := func(l LayerShape) { t.Layers = append(t.Layers, l) }
	add(convShape("stem.conv", 3, 64, 7, 112, 112))
	add(bnShape("stem.bn", 64))
	stageCh := []int{64, 128, 256, 512}
	stageHW := []int{56, 28, 14, 7}
	inC := 64
	for s := 0; s < 4; s++ {
		outC, hw := stageCh[s], stageHW[s]
		for b := 0; b < 2; b++ {
			name := fmt.Sprintf("stage%d.block%d", s+1, b)
			add(convShape(name+".conv1", inC, outC, 3, hw, hw))
			add(bnShape(name+".bn1", outC))
			add(convShape(name+".conv2", outC, outC, 3, hw, hw))
			add(bnShape(name+".bn2", outC))
			if s > 0 && b == 0 {
				add(convShape(name+".down.conv", inC, outC, 1, hw, hw))
				add(bnShape(name+".down.bn", outC))
			}
			inC = outC
		}
	}
	add(LayerShape{Name: "fc", Weights: 512*1000 + 1000, MACs: 512 * 1000})
	return t
}
