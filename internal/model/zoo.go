package model

import (
	"encoding/gob"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"sync"

	"radar/internal/data"
	"radar/internal/nn"
	"radar/internal/quant"
)

// Spec fully describes a zoo model: architecture, data and training recipe.
type Spec struct {
	// Name keys the cache entry.
	Name string
	// Arch builds the (untrained) network.
	Arch func(rng *rand.Rand) *nn.Sequential
	// Data is the synthetic dataset family.
	Data data.SynthConfig
	// TrainN and TestN size the train/test splits.
	TrainN, TestN int
	// Train is the training recipe.
	Train TrainConfig
}

// ResNet20sSpec is the scaled stand-in for the paper's CIFAR-10 ResNet-20:
// identical 3-stage ×3-block topology at base width 8 on 16×16 synthetic
// images. Trained with Adam as in the paper's ResNet-20 recipe.
func ResNet20sSpec() Spec {
	return Spec{
		Name: "resnet20s",
		Arch: func(rng *rand.Rand) *nn.Sequential {
			return nn.BuildResNet(nn.ResNet20Config(8, 10), rng)
		},
		Data:   data.SynthCIFAR(),
		TrainN: 2000, TestN: 1000,
		Train: TrainConfig{
			Epochs: 10, BatchSize: 50, Optimizer: "adam",
			LR: 0.01, WeightDecay: 1e-4, LRDropEvery: 4, Seed: 7,
		},
	}
}

// ResNet18sSpec is the scaled stand-in for the paper's ImageNet ResNet-18:
// identical 4-stage ×2-block topology at base width 12 on 32×32 synthetic
// images with 20 classes. Fine-tuned with SGD as in the paper's recipe.
func ResNet18sSpec() Spec {
	return Spec{
		Name: "resnet18s",
		Arch: func(rng *rand.Rand) *nn.Sequential {
			return nn.BuildResNet(nn.ResNet18Config(12, 20, true), rng)
		},
		Data:   data.SynthImageNet(),
		TrainN: 2000, TestN: 1000,
		Train: TrainConfig{
			Epochs: 8, BatchSize: 50, Optimizer: "sgd",
			LR: 0.05, WeightDecay: 1e-4, LRDropEvery: 3, Seed: 7,
		},
	}
}

// TinySpec is a deliberately small model for fast unit tests: ResNet-20
// topology at base width 4 on 8×8 images.
func TinySpec() Spec {
	cfg := data.SynthConfig{Classes: 4, Size: 8, Channels: 3, Waves: 2, Noise: 0.3, Seed: 3003}
	return Spec{
		Name: "tiny",
		Arch: func(rng *rand.Rand) *nn.Sequential {
			return nn.BuildResNet(nn.ResNet20Config(4, 4), rng)
		},
		Data:   cfg,
		TrainN: 400, TestN: 200,
		Train: TrainConfig{
			Epochs: 4, BatchSize: 40, Optimizer: "adam",
			LR: 0.01, WeightDecay: 1e-4, Seed: 7,
		},
	}
}

// Bundle is a ready-to-attack model instance: a freshly built network with
// trained weights, its quantized DRAM image, and the datasets used to
// attack and evaluate it. Every call to Load returns an independent Bundle,
// so experiments can corrupt weights freely.
type Bundle struct {
	// Spec echoes the zoo entry.
	Spec Spec
	// Net is the float network (weights on the quantization grid).
	Net *nn.Sequential
	// QModel is the quantized weight image wired to Net.
	QModel *quant.Model
	// Test is the held-out evaluation set.
	Test *data.Dataset
	// Attack is the small "attacker's dataset" with the same distribution
	// as training data (the paper's white-box assumption).
	Attack *data.Dataset
	// CleanAccuracy is the test accuracy of the unattacked quantized model.
	CleanAccuracy float64
}

var (
	cacheMu sync.Mutex
	states  = map[string]*nn.State{}
	cleans  = map[string]float64{}
)

// cacheDir resolves the on-disk checkpoint directory (repo testdata),
// locating the repository root relative to this source file so tests and
// benchmarks in any package share one cache.
func cacheDir() string {
	_, file, _, ok := runtime.Caller(0)
	if !ok {
		return "testdata-models"
	}
	return filepath.Join(filepath.Dir(file), "..", "..", "testdata", "models")
}

// Load returns a fresh Bundle for spec, training the model on first use
// and caching the trained state on disk (gob checkpoint). A cached
// checkpoint is decoded straight into the fresh network via AdoptState —
// the decoded tensors become the network's own buffers, so the float
// weights materialize once per Load instead of decode-buffer-plus-copy.
func Load(spec Spec) *Bundle {
	net := spec.Arch(rand.New(rand.NewSource(1)))
	clean, ok := loadCheckpointInto(net, filepath.Join(cacheDir(), spec.Name+".gob"))
	if !ok {
		// No usable disk checkpoint: train (or reuse the state memory-cached
		// by an earlier training whose disk save failed). The memory cache
		// is shared across Loads, so it is copied in, never adopted.
		cacheMu.Lock()
		st, hit := states[spec.Name]
		clean = cleans[spec.Name]
		cacheMu.Unlock()
		if !hit {
			st, clean = trainState(spec)
			cacheMu.Lock()
			states[spec.Name] = st
			cleans[spec.Name] = clean
			cacheMu.Unlock()
		}
		net.LoadState(st)
	}
	qm := quant.Quantize(net)
	test := data.Generate(spec.Data, spec.TestN, 202)
	attack := data.Generate(spec.Data, 256, 909)
	return &Bundle{Spec: spec, Net: net, QModel: qm, Test: test, Attack: attack, CleanAccuracy: clean}
}

// checkpoint is the gob-serialized form of a trained model.
type checkpoint struct {
	State *nn.State
	Clean float64
}

// loadCheckpointInto decodes the gob checkpoint at path directly into net,
// which adopts the decoded tensors as its own buffers (nn.AdoptState): one
// float materialization per load. Returns ok=false — leaving net untouched
// beyond its fresh initialization — when the checkpoint is missing or
// corrupt, so the caller falls back to training.
func loadCheckpointInto(net *nn.Sequential, path string) (clean float64, ok bool) {
	f, err := os.Open(path)
	if err != nil {
		return 0, false
	}
	defer f.Close()
	var ck checkpoint
	if err := gob.NewDecoder(f).Decode(&ck); err != nil || ck.State == nil {
		return 0, false // corrupt checkpoint: caller retrains
	}
	net.AdoptState(ck.State)
	return ck.Clean, true
}

// trainState trains spec's model from scratch, measures its clean
// quantized accuracy, and best-effort persists the result as a gob
// checkpoint for future Loads.
func trainState(spec Spec) (*nn.State, float64) {
	net := spec.Arch(rand.New(rand.NewSource(1)))
	train, test := data.Generate(spec.Data, spec.TrainN, 101), data.Generate(spec.Data, spec.TestN, 202)
	Train(net, train, test, spec.Train)
	// Clean accuracy is measured on the *quantized* model, matching the
	// paper's baselines.
	qnet := spec.Arch(rand.New(rand.NewSource(1)))
	qnet.LoadState(net.CaptureState())
	quant.Quantize(qnet)
	clean := Evaluate(qnet, test, 100)
	st := net.CaptureState()
	saveCheckpoint(filepath.Join(cacheDir(), spec.Name+".gob"), &checkpoint{State: st, Clean: clean})
	return st, clean
}

func saveCheckpoint(path string, ck *checkpoint) {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return // cache is best-effort; training result is still returned
	}
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return
	}
	if err := gob.NewEncoder(f).Encode(ck); err != nil {
		f.Close()
		os.Remove(tmp)
		return
	}
	f.Close()
	os.Rename(tmp, path)
}

// ResetCache drops in-memory cached states (used by tests).
func ResetCache() {
	cacheMu.Lock()
	defer cacheMu.Unlock()
	states = map[string]*nn.State{}
	cleans = map[string]float64{}
}

// MustClean returns the bundle's clean accuracy formatted for reports.
func (b *Bundle) MustClean() string { return fmt.Sprintf("%.2f%%", 100*b.CleanAccuracy) }
