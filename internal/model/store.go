package model

import (
	"errors"
	"os"

	"radar/internal/store"
)

// MapCheckpoint rebinds b's quantized weights to the store checkpoint at
// path, converting on first use: when path is missing (or not a usable
// store file) the bundle's current int8 image is saved there, then the
// checkpoint is opened — mmap-backed where available — and its zero-copy
// layers replace b.QModel. The float network is attached to the mapped
// model, which synchronizes the dequantized file image into the net, so
// inference, attacks, and the RADAR protector all operate on the
// file-backed DRAM image from then on; the checkpoint file, not the
// bundle, is authoritative. The caller owns the returned checkpoint and
// must Close it (syncing first if in-memory recovery writes on the
// fallback path should persist).
func MapCheckpoint(b *Bundle, path string) (*store.Checkpoint, error) {
	if _, err := os.Stat(path); err != nil {
		if err := store.Save(path, b.QModel); err != nil {
			return nil, err
		}
	}
	c, err := store.Open(path)
	if errors.Is(err, store.ErrFormat) {
		// The file exists but is not a valid checkpoint (e.g. a partial
		// write from a crashed conversion): rewrite it from the bundle.
		if err := store.Save(path, b.QModel); err != nil {
			return nil, err
		}
		c, err = store.Open(path)
	}
	if err != nil {
		return nil, err
	}
	m := c.Model()
	if err := m.Attach(b.Net); err != nil {
		c.Close()
		return nil, err
	}
	b.QModel = m
	return c, nil
}
