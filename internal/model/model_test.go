package model

import (
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"radar/internal/data"
	"radar/internal/nn"
)

func TestResNet20CIFARShapeTable(t *testing.T) {
	tab := ResNet20CIFARShapes()
	// The canonical ResNet-20 CIFAR parameter count (weights incl. fc bias,
	// excluding BN affine) is 272,474; conv-only weights are 271,824.
	if got := tab.TotalWeights(); got != 272474 {
		t.Fatalf("ResNet-20 total weights = %d, want 272474", got)
	}
	// 21 conv/fc weight tensors + 21 BN affine tensors + fc = 43 entries.
	if len(tab.Layers) != 43 {
		t.Fatalf("layer count = %d, want 43", len(tab.Layers))
	}
	// ~40.8 MMACs per 32×32 inference is the canonical figure (±10%).
	macs := tab.TotalMACs()
	if macs < 35e6 || macs > 46e6 {
		t.Fatalf("ResNet-20 MACs = %d, want ≈ 40.8M", macs)
	}
}

func TestResNet18ImageNetShapeTable(t *testing.T) {
	tab := ResNet18ImageNetShapes()
	// Canonical ResNet-18 weight count (conv + fc incl. bias, no BN):
	// total: exact.
	got := tab.TotalWeights()
	if got != 11_689_512 {
		t.Fatalf("ResNet-18 total weights = %d, want 11689512", got)
	}
	// ~1.82 GMACs per 224×224 inference.
	macs := tab.TotalMACs()
	if macs < 1.7e9 || macs > 1.9e9 {
		t.Fatalf("ResNet-18 MACs = %d, want ≈ 1.82G", macs)
	}
}

func TestShapeTableLayerOrder(t *testing.T) {
	tab := ResNet20CIFARShapes()
	if tab.Layers[0].Name != "stem.conv" {
		t.Fatalf("first layer = %q", tab.Layers[0].Name)
	}
	if tab.Layers[len(tab.Layers)-1].Name != "fc" {
		t.Fatalf("last layer = %q", tab.Layers[len(tab.Layers)-1].Name)
	}
}

func TestTrainTinyReachesAccuracy(t *testing.T) {
	spec := TinySpec()
	rng := rand.New(rand.NewSource(1))
	net := spec.Arch(rng)
	train, test := data.Generate(spec.Data, spec.TrainN, 101), data.Generate(spec.Data, spec.TestN, 202)
	acc := Train(net, train, test, spec.Train)
	if acc < 0.6 {
		t.Fatalf("tiny model accuracy %.2f too low; training is broken", acc)
	}
}

func TestStateRoundTrip(t *testing.T) {
	spec := TinySpec()
	a := spec.Arch(rand.New(rand.NewSource(1)))
	b := spec.Arch(rand.New(rand.NewSource(2)))
	st := a.CaptureState()
	b.LoadState(st)
	for i, p := range a.Params() {
		q := b.Params()[i]
		for j := range p.Value.Data {
			if p.Value.Data[j] != q.Value.Data[j] {
				t.Fatalf("param %s differs after state round trip", p.Name)
			}
		}
	}
}

func TestLoadBundleCachedAndIndependent(t *testing.T) {
	// Use a temp dir cache via the tiny spec; first Load trains, second
	// must reuse in-memory state and produce an independent copy.
	ResetCache()
	spec := TinySpec()
	spec.Name = "tiny-test-independent"
	defer os.Remove(filepath.Join(cacheDir(), spec.Name+".gob"))

	b1 := Load(spec)
	b2 := Load(spec)
	if b1.Net == b2.Net || b1.QModel == b2.QModel {
		t.Fatal("Load must return independent instances")
	}
	// Mutating one bundle's weights must not affect the other.
	b1.QModel.Layers[0].Q[0] ^= 0x7f
	b1.QModel.SyncAll()
	if b1.QModel.Layers[0].Q[0] == b2.QModel.Layers[0].Q[0] {
		t.Fatal("bundles share quantized storage")
	}
	if b1.CleanAccuracy != b2.CleanAccuracy {
		t.Fatal("clean accuracy must be cached deterministically")
	}
	if b1.CleanAccuracy < 0.6 {
		t.Fatalf("clean accuracy %.2f too low", b1.CleanAccuracy)
	}
}

func TestCheckpointPersistsToDisk(t *testing.T) {
	ResetCache()
	spec := TinySpec()
	spec.Name = "tiny-test-disk"
	path := filepath.Join(cacheDir(), spec.Name+".gob")
	defer os.Remove(path)

	b1 := Load(spec)
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("checkpoint not written: %v", err)
	}
	// Drop in-memory cache; reload must come from disk with same weights.
	ResetCache()
	b2 := Load(spec)
	q1, q2 := b1.QModel.Layers[0].Q, b2.QModel.Layers[0].Q
	for i := range q1 {
		if q1[i] != q2[i] {
			t.Fatal("disk checkpoint does not reproduce weights")
		}
	}
}

func TestEvaluateMatchesManualCount(t *testing.T) {
	spec := TinySpec()
	net := spec.Arch(rand.New(rand.NewSource(3)))
	test := data.Generate(spec.Data, 50, 5)
	acc := Evaluate(net, test, 16)
	// Untrained 4-class model should be near chance (just sanity bounds).
	if acc < 0 || acc > 1 {
		t.Fatalf("accuracy out of range: %v", acc)
	}
}

func TestEvaluateLossFinite(t *testing.T) {
	spec := TinySpec()
	net := spec.Arch(rand.New(rand.NewSource(3)))
	test := data.Generate(spec.Data, 30, 5)
	loss := EvaluateLoss(net, test, 16)
	if loss <= 0 || loss > 100 {
		t.Fatalf("loss out of range: %v", loss)
	}
}

func TestVisitFindsAllBNLayers(t *testing.T) {
	net := nn.BuildResNet(nn.ResNet20Config(4, 4), rand.New(rand.NewSource(1)))
	bns := 0
	net.Visit(func(l nn.Layer) {
		if _, ok := l.(*nn.BatchNorm2D); ok {
			bns++
		}
	})
	// stem + 9 blocks × 2 + 2 downsample BNs = 21.
	if bns != 21 {
		t.Fatalf("found %d BN layers, want 21", bns)
	}
}
