// im2col + register-blocked GEMM convolution kernel.
//
// The historical conv loop (retained as computeRef) carried the padding
// branches and five levels of index arithmetic into the innermost
// multiply; this kernel hoists all of that out of the hot path. Each
// conv stage first packs the receptive field of every output pixel into a
// pixel-major patch matrix (im2col — padding becomes zero bytes written
// once during packing, and a patch row's kx run is a single copy), then a
// 4×4 register-blocked int8×int8→int32 GEMM multiplies the weight matrix
// (outC × K) against the patch matrix (P × K). The blocking keeps 16
// int32 accumulators live across the shared K loop, so every loaded
// weight and patch value is used four times instead of once. Accumulation
// order over K is identical to the reference loop's (ic, ky, kx) order,
// and int32 addition is exact, so the outputs are bit-identical —
// property-tested in gemm_test.go over every layer shape of the
// checkpoint models plus randomized shapes.
package qinfer

// engineScratch is the reusable conv working memory: the im2col patch
// matrix and the GEMM accumulator plane. One instance serves one Forward
// pass; instances cycle through the engine's pool so concurrent inference
// workers (internal/serve runs several over one Engine) never share or
// reallocate buffers in steady state.
type engineScratch struct {
	cols []int8
	acc  []int32
	// hook, when set, overrides the engine-wide fetch hook for the one
	// Forward pass this scratch is checked out for (see ForwardWithHook).
	// Cleared on check-in so a pooled instance never leaks its caller's
	// hook into an unrelated pass.
	hook FetchHook
}

// colsBuf returns an n-element patch buffer, growing only on high-water
// marks. Contents are fully overwritten by im2col, so no zeroing needed.
func (sc *engineScratch) colsBuf(n int) []int8 {
	if cap(sc.cols) < n {
		sc.cols = make([]int8, n)
	}
	return sc.cols[:n]
}

// accBuf returns an n-element accumulator buffer; gemmInt8 overwrites
// every entry, so no zeroing needed.
func (sc *engineScratch) accBuf(n int) []int32 {
	if cap(sc.acc) < n {
		sc.acc = make([]int32, n)
	}
	return sc.acc[:n]
}

// getScratch checks a scratch instance out of the engine pool.
func (e *Engine) getScratch() *engineScratch {
	if sc, ok := e.scratch.Get().(*engineScratch); ok {
		return sc
	}
	return new(engineScratch)
}

func (e *Engine) putScratch(sc *engineScratch) {
	sc.hook = nil
	e.scratch.Put(sc)
}

// im2col packs one image's receptive fields into the pixel-major patch
// matrix: row p = (oy·outW+ox) holds the K = inC·k·k patch of output
// pixel (oy, ox) in the same (ic, ky, kx) order as a weight row, with
// out-of-bounds taps written as zero. Zero taps contribute nothing to an
// integer dot product, exactly like the reference loop's skipped
// iterations.
func (c *qconv) im2col(src []int8, h, w, outH, outW int, cols []int8) {
	k, stride, pad := c.k, c.stride, c.pad
	kk := k * k
	kCols := c.inC * kk
	plane := h * w
	for oy := 0; oy < outH; oy++ {
		iy0 := oy*stride - pad
		for ox := 0; ox < outW; ox++ {
			dst := cols[(oy*outW+ox)*kCols:][:kCols]
			ix0 := ox*stride - pad
			// kx taps with ix0+kx inside [0, w): a single contiguous copy.
			kxLo, kxHi := -ix0, w-ix0
			if kxLo < 0 {
				kxLo = 0
			}
			if kxHi > k {
				kxHi = k
			}
			for ic := 0; ic < c.inC; ic++ {
				icBase := ic * plane
				for ky := 0; ky < k; ky++ {
					d := dst[ic*kk+ky*k:][:k]
					iy := iy0 + ky
					if iy < 0 || iy >= h || kxLo >= kxHi {
						for i := range d {
							d[i] = 0
						}
						continue
					}
					for i := 0; i < kxLo; i++ {
						d[i] = 0
					}
					copy(d[kxLo:kxHi], src[icBase+iy*w+ix0+kxLo:])
					for i := kxHi; i < k; i++ {
						d[i] = 0
					}
				}
			}
		}
	}
}

// gemmInt8 computes out[m·P+p] = Σ_k a[m·K+k]·b[p·K+k] for the row-major
// int8 matrices a (M×K, weight rows) and b (P×K, patch rows), overwriting
// out. The 4×4 micro-kernel walks K with 16 int32 accumulators in
// registers; edge blocks fall to narrower kernels. K iterates ascending
// everywhere, keeping the accumulation order of the reference conv.
func gemmInt8(a, b []int8, out []int32, M, K, P int) {
	m0 := 0
	for ; m0+4 <= M; m0 += 4 {
		a0 := a[m0*K:][:K]
		a1 := a[(m0+1)*K:][:K]
		a2 := a[(m0+2)*K:][:K]
		a3 := a[(m0+3)*K:][:K]
		p0 := 0
		for ; p0+4 <= P; p0 += 4 {
			b0 := b[p0*K:][:K]
			b1 := b[(p0+1)*K:][:K]
			b2 := b[(p0+2)*K:][:K]
			b3 := b[(p0+3)*K:][:K]
			var c00, c01, c02, c03 int32
			var c10, c11, c12, c13 int32
			var c20, c21, c22, c23 int32
			var c30, c31, c32, c33 int32
			for k := 0; k < K; k++ {
				av0, av1, av2, av3 := int32(a0[k]), int32(a1[k]), int32(a2[k]), int32(a3[k])
				bv0, bv1, bv2, bv3 := int32(b0[k]), int32(b1[k]), int32(b2[k]), int32(b3[k])
				c00 += av0 * bv0
				c01 += av0 * bv1
				c02 += av0 * bv2
				c03 += av0 * bv3
				c10 += av1 * bv0
				c11 += av1 * bv1
				c12 += av1 * bv2
				c13 += av1 * bv3
				c20 += av2 * bv0
				c21 += av2 * bv1
				c22 += av2 * bv2
				c23 += av2 * bv3
				c30 += av3 * bv0
				c31 += av3 * bv1
				c32 += av3 * bv2
				c33 += av3 * bv3
			}
			o := out[m0*P+p0:]
			o[0], o[1], o[2], o[3] = c00, c01, c02, c03
			o = out[(m0+1)*P+p0:]
			o[0], o[1], o[2], o[3] = c10, c11, c12, c13
			o = out[(m0+2)*P+p0:]
			o[0], o[1], o[2], o[3] = c20, c21, c22, c23
			o = out[(m0+3)*P+p0:]
			o[0], o[1], o[2], o[3] = c30, c31, c32, c33
		}
		for ; p0 < P; p0++ { // 4×1 edge
			bp := b[p0*K:][:K]
			var s0, s1, s2, s3 int32
			for k := 0; k < K; k++ {
				bv := int32(bp[k])
				s0 += int32(a0[k]) * bv
				s1 += int32(a1[k]) * bv
				s2 += int32(a2[k]) * bv
				s3 += int32(a3[k]) * bv
			}
			out[m0*P+p0] = s0
			out[(m0+1)*P+p0] = s1
			out[(m0+2)*P+p0] = s2
			out[(m0+3)*P+p0] = s3
		}
	}
	for ; m0 < M; m0++ { // 1×1 edge rows
		am := a[m0*K:][:K]
		for p0 := 0; p0 < P; p0++ {
			bp := b[p0*K:][:K]
			var s int32
			for k := 0; k < K; k++ {
				s += int32(am[k]) * int32(bp[k])
			}
			out[m0*P+p0] = s
		}
	}
}
