package qinfer

import (
	"math/rand"
	"testing"

	"radar/internal/attack"
	"radar/internal/core"
	"radar/internal/model"
	"radar/internal/nn"
	"radar/internal/quant"
	"radar/internal/tensor"
)

func compileTiny(t testing.TB) (*model.Bundle, *Engine) {
	t.Helper()
	b := model.Load(model.TinySpec())
	calib, _ := b.Attack.Batch(0, 64)
	e, err := Compile(b.Net, b.QModel, calib)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	return b, e
}

func TestQuantizeDequantizeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x := tensor.New(2, 3, 4, 4)
	x.RandNormal(rng, 1)
	scale := x.MaxAbs() / 127
	q := QuantizeActivations(x, scale)
	back := q.Dequantize()
	for i := range x.Data {
		diff := float64(x.Data[i] - back.Data[i])
		if diff < 0 {
			diff = -diff
		}
		if diff > float64(scale)/2+1e-6 {
			t.Fatalf("element %d: round-trip error %v exceeds scale/2", i, diff)
		}
	}
}

func TestClampQSaturates(t *testing.T) {
	if clampQ(1e9) != 127 || clampQ(-1e9) != -128 {
		t.Fatal("clamp saturation wrong")
	}
	if clampQ(0.4) != 0 || clampQ(0.6) != 1 || clampQ(-0.6) != -1 {
		t.Fatal("clamp rounding wrong")
	}
}

func TestEngineMatchesFloatAccuracy(t *testing.T) {
	b, e := compileTiny(t)
	x, labels := b.Test.Batch(0, 200)
	floatOut := b.Net.Forward(x, false)
	k := floatOut.Shape[1]
	floatAcc := 0
	for i := range labels {
		if floatOut.Argmax(i*k, k) == labels[i] {
			floatAcc++
		}
	}
	intAcc := e.Accuracy(x, labels)
	if diff := float64(floatAcc)/float64(len(labels)) - intAcc; diff > 0.08 || diff < -0.08 {
		t.Fatalf("int8 engine accuracy %.3f differs from float %.3f by more than 8 points",
			intAcc, float64(floatAcc)/float64(len(labels)))
	}
}

func TestEnginePredictionAgreement(t *testing.T) {
	b, e := compileTiny(t)
	x, _ := b.Test.Batch(0, 200)
	floatOut := b.Net.Forward(x, false)
	intOut := e.Forward(x)
	k := floatOut.Shape[1]
	agree := 0
	for i := 0; i < 200; i++ {
		if floatOut.Argmax(i*k, k) == intOut.Argmax(i*k, k) {
			agree++
		}
	}
	if agree < 170 {
		t.Fatalf("int8/float top-1 agreement %d/200 too low", agree)
	}
}

// TestEngineConsumesDRAMImage: the engine aliases the quantized storage, so
// a bit flip in the DRAM image immediately changes int8 inference — no
// separate float copy exists to hide the corruption.
func TestEngineConsumesDRAMImage(t *testing.T) {
	b, e := compileTiny(t)
	x, _ := b.Test.Batch(0, 50)
	before := e.Forward(x).Clone()

	// Flip the MSB of a stem weight directly in the quantized image.
	addr := quant.BitAddress{LayerIndex: 0, WeightIndex: 1, Bit: quant.MSB}
	b.QModel.FlipBit(addr)

	after := e.Forward(x)
	changed := false
	for i := range before.Data {
		if before.Data[i] != after.Data[i] {
			changed = true
			break
		}
	}
	if !changed {
		t.Fatal("bit flip in DRAM image did not affect int8 inference")
	}
}

// TestRADARRecoveryRestoresEngine: protect → attack → recover acts on the
// same int8 image the engine reads, so recovery restores engine behaviour.
func TestRADARRecoveryRestoresEngine(t *testing.T) {
	b, e := compileTiny(t)
	x, labels := b.Test.Batch(0, 200)
	clean := e.Accuracy(x, labels)

	prot := core.Protect(b.QModel, core.DefaultConfig(4))
	cfg := attack.DefaultConfig(5)
	cfg.NumFlips = 6
	attack.PBFA(b.QModel, b.Attack, cfg)
	attacked := e.Accuracy(x, labels)

	prot.DetectAndRecover()
	recovered := e.Accuracy(x, labels)

	if attacked >= clean {
		t.Skipf("attack did not reduce int8 accuracy (%.2f vs %.2f)", attacked, clean)
	}
	if recovered < attacked-0.02 {
		t.Fatalf("recovery hurt engine accuracy: clean %.2f attacked %.2f recovered %.2f",
			clean, attacked, recovered)
	}
}

func TestCompileRejectsNonResNet(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	net := nn.NewSequential("mlp",
		nn.NewLinear("fc", 4, 4, rng),
	)
	qm := quant.Quantize(net)
	x := tensor.New(1, 4)
	if _, err := Compile(net, qm, x); err == nil {
		t.Fatal("expected error for non-ResNet model")
	}
}

func TestEngineDeterministic(t *testing.T) {
	b, e := compileTiny(t)
	x, _ := b.Test.Batch(0, 20)
	a := e.Forward(x)
	bOut := e.Forward(x)
	for i := range a.Data {
		if a.Data[i] != bOut.Data[i] {
			t.Fatal("int8 inference not deterministic")
		}
	}
}

// TestFetchHookCoversEveryLayer: the fetch hook must fire once per conv
// stage, before that stage's weights are consumed, in execution order.
func TestFetchHookCoversEveryLayer(t *testing.T) {
	b, e := compileTiny(t)
	var seen []int
	e.SetFetchHook(func(li int) { seen = append(seen, li) })
	defer e.SetFetchHook(nil)
	x, _ := b.Test.Batch(0, 2)
	e.Forward(x)
	want := e.QuantLayers()
	if len(seen) != len(want) {
		t.Fatalf("hook fired %d times, want %d", len(seen), len(want))
	}
	for i := range want {
		if seen[i] != want[i] {
			t.Fatalf("hook order %v, want %v", seen, want)
		}
	}
	// Every quantized layer except the float classifier is consumed by
	// some conv stage, so the hook must have covered all of them.
	covered := map[int]bool{}
	for _, li := range seen {
		covered[li] = true
	}
	for li := range b.QModel.Layers {
		if b.QModel.Layers[li].Name == "fc.weight" {
			continue // final Linear runs in float, never fetched as int8
		}
		if !covered[li] {
			t.Fatalf("layer %d (%s) never verified", li, b.QModel.Layers[li].Name)
		}
	}
}

// TestWeightGuardLocksFetchedLayer: with a guard installed, inference must
// hold the layer read lock while the conv runs — verified by a guard that
// records lock/unlock pairing.
func TestWeightGuardLocksFetchedLayer(t *testing.T) {
	b, e := compileTiny(t)
	g := &recordingGuard{held: map[int]int{}}
	e.SetWeightGuard(g)
	defer e.SetWeightGuard(nil)
	e.SetFetchHook(func(li int) {
		if g.held[li] != 0 {
			t.Fatalf("hook for layer %d ran under its own read lock", li)
		}
	})
	defer e.SetFetchHook(nil)
	x, _ := b.Test.Batch(0, 2)
	e.Forward(x)
	for li, n := range g.held {
		if n != 0 {
			t.Fatalf("layer %d lock count %d after Forward", li, n)
		}
	}
	if g.locks == 0 {
		t.Fatal("guard never engaged")
	}
}

type recordingGuard struct {
	held  map[int]int
	locks int
}

func (g *recordingGuard) RLockLayer(li int)   { g.held[li]++; g.locks++ }
func (g *recordingGuard) RUnlockLayer(li int) { g.held[li]-- }

func TestEngineWithImageNetStem(t *testing.T) {
	// A small ImageNet-style stem (7×7 stride-2 conv + maxpool) must
	// compile and run.
	rng := rand.New(rand.NewSource(3))
	cfg := nn.ResNet18Config(4, 5, false)
	net := nn.BuildResNet(cfg, rng)
	// Feed a few batches through train mode so BN stats are sane.
	warm := tensor.New(4, 3, 32, 32)
	warm.RandNormal(rng, 1)
	net.Forward(warm, true)
	qm := quant.Quantize(net)
	calib := tensor.New(2, 3, 32, 32)
	calib.RandNormal(rng, 1)
	e, err := Compile(net, qm, calib)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	out := e.Forward(calib)
	if out.Shape[0] != 2 || out.Shape[1] != 5 {
		t.Fatalf("output shape %v", out.Shape)
	}
}
