package qinfer

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"radar/internal/model"
)

// randConv builds a qconv with randomized weights and folded-BN
// parameters for the given geometry.
func randConv(rng *rand.Rand, inC, outC, k, stride, pad int, relu bool) *qconv {
	c := &qconv{
		name:   fmt.Sprintf("rand%dx%dk%ds%dp%d", inC, outC, k, stride, pad),
		w:      make([]int8, outC*inC*k*k),
		wScale: 0.01 + rng.Float32()*0.1,
		inC:    inC, outC: outC,
		k: k, stride: stride, pad: pad,
		bn:       foldedBN{a: make([]float32, outC), b: make([]float32, outC)},
		relu:     relu,
		outScale: 0.05 + rng.Float32()*0.2,
	}
	for i := range c.w {
		c.w[i] = int8(rng.Intn(256) - 128)
	}
	for i := 0; i < outC; i++ {
		c.bn.a[i] = 0.5 + rng.Float32()
		c.bn.b[i] = rng.Float32() - 0.5
	}
	return c
}

func randInput(rng *rand.Rand, n, ch, h, w int) *QTensor {
	x := NewQTensor(0.02+rng.Float32()*0.1, n, ch, h, w)
	for i := range x.Q {
		x.Q[i] = int8(rng.Intn(256) - 128)
	}
	return x
}

// mustMatch fails unless the GEMM and reference outputs are bit-identical.
func mustMatch(t *testing.T, label string, got, want *QTensor) {
	t.Helper()
	if fmt.Sprint(got.Shape) != fmt.Sprint(want.Shape) {
		t.Fatalf("%s: shape %v, want %v", label, got.Shape, want.Shape)
	}
	for i := range want.Q {
		if got.Q[i] != want.Q[i] {
			t.Fatalf("%s: output %d is %d, reference %d", label, i, got.Q[i], want.Q[i])
		}
	}
}

// TestConvGEMMMatchesReferenceRandom pins the im2col+GEMM conv against
// the 7-loop reference on randomized geometries: 1×1 through 7×7 kernels,
// strides, pads (including pad ≥ kernel reach), odd spatial sizes that
// make stride-2 outputs ragged, and batches that exercise scratch reuse
// across images.
func TestConvGEMMMatchesReferenceRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	sc := new(engineScratch)
	for trial := 0; trial < 60; trial++ {
		k := []int{1, 3, 3, 5, 7}[rng.Intn(5)]
		c := randConv(rng,
			1+rng.Intn(9),    // inC
			1+rng.Intn(11),   // outC (exercises 4×4 edge blocks)
			k,                // kernel
			1+rng.Intn(2),    // stride
			rng.Intn(k+1),    // pad
			rng.Intn(2) == 0, // relu
		)
		h := c.k + rng.Intn(10)
		w := c.k + rng.Intn(10)
		x := randInput(rng, 1+rng.Intn(3), c.inC, h, w)
		got := c.compute(x, sc)
		want := c.computeRef(x)
		mustMatch(t, c.name+fmt.Sprintf("/h%dw%d", h, w), got, want)
	}
}

// TestConvGEMMMatchesReferenceCheckpoints pins the GEMM path against the
// reference on every conv stage of the trained checkpoint models — all
// layer shapes of resnet20s.gob and the tiny zoo model — at a few input
// resolutions, so every deployed (inC, outC, k, stride, pad) combination
// is covered bit-for-bit.
func TestConvGEMMMatchesReferenceCheckpoints(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	sc := new(engineScratch)
	for _, spec := range []model.Spec{model.TinySpec(), model.ResNet20sSpec()} {
		b := model.Load(spec)
		calib, _ := b.Attack.Batch(0, 32)
		eng, err := Compile(b.Net, b.QModel, calib)
		if err != nil {
			t.Fatalf("%s: Compile: %v", spec.Name, err)
		}
		var convs []*qconv
		convs = append(convs, eng.stem)
		for _, blk := range eng.blocks {
			convs = append(convs, blk.conv1, blk.conv2)
			if blk.down != nil {
				convs = append(convs, blk.down)
			}
		}
		for ci, c := range convs {
			for _, hw := range []int{c.k, 8, 11} {
				x := randInput(rng, 2, c.inC, hw, hw)
				got := c.compute(x, sc)
				want := c.computeRef(x)
				mustMatch(t, fmt.Sprintf("%s conv %d (%s) hw=%d", spec.Name, ci, c.name, hw), got, want)
			}
		}
	}
}

// TestGEMMKernelEdges drives gemmInt8 directly across the 4×4 blocking
// edges (M, P ≡ 0..3 mod 4, K including 0 and 1).
func TestGEMMKernelEdges(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for _, m := range []int{1, 2, 3, 4, 5, 7, 8, 9} {
		for _, p := range []int{1, 2, 3, 4, 6, 8, 13} {
			for _, k := range []int{1, 2, 9, 27} {
				a := make([]int8, m*k)
				b := make([]int8, p*k)
				for i := range a {
					a[i] = int8(rng.Intn(256) - 128)
				}
				for i := range b {
					b[i] = int8(rng.Intn(256) - 128)
				}
				got := make([]int32, m*p)
				gemmInt8(a, b, got, m, k, p)
				for mi := 0; mi < m; mi++ {
					for pi := 0; pi < p; pi++ {
						var want int32
						for ki := 0; ki < k; ki++ {
							want += int32(a[mi*k+ki]) * int32(b[pi*k+ki])
						}
						if got[mi*p+pi] != want {
							t.Fatalf("M=%d K=%d P=%d: out[%d,%d] = %d, want %d", m, k, p, mi, pi, got[mi*p+pi], want)
						}
					}
				}
			}
		}
	}
}

// TestConcurrentForwardIdentical runs Forward from many goroutines on one
// engine — the serving deployment shape — and checks every result equals
// the sequential one, which exercises the scratch pool for aliasing bugs
// (and races, under -race in CI).
func TestConcurrentForwardIdentical(t *testing.T) {
	b, eng := compileTiny(t)
	x, _ := b.Test.Batch(0, 4)
	want := eng.Forward(x)
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for it := 0; it < 5; it++ {
				out := eng.Forward(x)
				for i := range want.Data {
					if out.Data[i] != want.Data[i] {
						errs <- fmt.Errorf("concurrent Forward diverges at %d: %v vs %v", i, out.Data[i], want.Data[i])
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	if err := <-errs; err != nil {
		t.Fatal(err)
	}
}

// FuzzConvGEMM is the differential fuzz target for the conv kernel:
// arbitrary bytes become weights and activations over a small randomized
// geometry, GEMM vs the reference loop. CI runs the seed corpus under
// -race; `go test -fuzz=FuzzConvGEMM ./internal/qinfer` explores further.
func FuzzConvGEMM(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 250, 130}, uint8(3), uint8(2), uint8(1), uint8(1), uint8(5))
	f.Add([]byte{255, 0, 128, 64}, uint8(1), uint8(1), uint8(2), uint8(0), uint8(4))
	f.Fuzz(func(t *testing.T, raw []byte, k8, stride8, pad8, relu8, hw8 uint8) {
		k := 1 + int(k8)%7
		stride := 1 + int(stride8)%2
		pad := int(pad8) % (k + 1)
		h := k + int(hw8)%8
		if len(raw) == 0 {
			t.Skip()
		}
		rng := rand.New(rand.NewSource(int64(len(raw))))
		c := randConv(rng, 2, 3, k, stride, pad, relu8%2 == 0)
		// Overlay fuzz bytes onto the deterministic weights and input.
		for i := range c.w {
			c.w[i] = int8(raw[i%len(raw)] + byte(i))
		}
		x := randInput(rng, 1, 2, h, h)
		for i := range x.Q {
			x.Q[i] = int8(raw[(i*7)%len(raw)] ^ byte(i))
		}
		got := c.compute(x, new(engineScratch))
		want := c.computeRef(x)
		mustMatch(t, c.name, got, want)
	})
}

// BenchmarkConvGEMM / BenchmarkConvRef measure one mid-network ResNet
// conv stage (64→64 3×3 on a 16×16 plane) through the GEMM path and the
// reference loop — the per-stage speedup behind the serving gains.
func BenchmarkConvGEMM(b *testing.B) {
	rng := rand.New(rand.NewSource(31))
	c := randConv(rng, 64, 64, 3, 1, 1, true)
	x := randInput(rng, 1, 64, 16, 16)
	sc := new(engineScratch)
	b.SetBytes(int64(len(c.w)) * 16 * 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.compute(x, sc)
	}
}

func BenchmarkConvRef(b *testing.B) {
	rng := rand.New(rand.NewSource(31))
	c := randConv(rng, 64, 64, 3, 1, 1, true)
	x := randInput(rng, 1, 64, 16, 16)
	b.SetBytes(int64(len(c.w)) * 16 * 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.computeRef(x)
	}
}
