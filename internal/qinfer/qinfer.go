// Package qinfer is an 8-bit integer inference engine — the deployment
// form of the models the paper protects. Convolutions run on int8 weights
// and int8 activations with int32 accumulators; batch-norm layers are
// folded into per-channel affine rescaling applied at requantization; and
// activations are quantized symmetrically with per-stage scales fixed by a
// one-shot calibration pass. This is the engine whose weight-fetch path
// RADAR's checksum rides in the gem5 experiments (Tables IV/V); it also
// demonstrates that the defense needs no floating-point weight copy:
// detection and recovery act directly on the int8 image this engine
// consumes. The embedded-detection point is exposed in software as a
// per-layer FetchHook (invoked immediately before a conv stage reads its
// weights) plus a WeightGuard (a per-layer read lock held across the
// stage), which is how internal/serve keeps verification, recovery and
// concurrent inference race-free on one shared weight image.
package qinfer

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"radar/internal/nn"
	"radar/internal/quant"
	"radar/internal/tensor"
)

// QTensor is an int8 activation tensor with a symmetric scale:
// real value ≈ Scale · Q.
type QTensor struct {
	// Shape is outermost-first, as in tensor.Tensor.
	Shape []int
	// Q holds the quantized values.
	Q []int8
	// Scale is the dequantization step.
	Scale float32
}

// NewQTensor allocates a zero QTensor.
func NewQTensor(scale float32, shape ...int) *QTensor {
	return &QTensor{Shape: append([]int(nil), shape...), Q: make([]int8, tensor.Volume(shape)), Scale: scale}
}

// QuantizeActivations converts a float tensor to int8 with the given scale.
func QuantizeActivations(x *tensor.Tensor, scale float32) *QTensor {
	out := NewQTensor(scale, x.Shape...)
	for i, v := range x.Data {
		out.Q[i] = clampQ(float64(v) / float64(scale))
	}
	return out
}

// Dequantize converts back to float.
func (q *QTensor) Dequantize() *tensor.Tensor {
	out := tensor.New(q.Shape...)
	for i, v := range q.Q {
		out.Data[i] = float32(v) * q.Scale
	}
	return out
}

func clampQ(v float64) int8 {
	r := math.Round(v)
	if r > 127 {
		return 127
	}
	if r < -128 {
		return -128
	}
	return int8(r)
}

// foldedBN is a batch-norm layer collapsed to y = A·x + B per channel
// (inference-mode statistics baked in).
type foldedBN struct {
	a, b []float32
}

func foldBN(bn *nn.BatchNorm2D) foldedBN {
	n := bn.C
	f := foldedBN{a: make([]float32, n), b: make([]float32, n)}
	for c := 0; c < n; c++ {
		inv := 1.0 / math.Sqrt(bn.RunningVar[c]+bn.Eps)
		g := float64(bn.Gamma.Value.Data[c])
		f.a[c] = float32(g * inv)
		f.b[c] = float32(float64(bn.Beta.Value.Data[c]) - g*inv*bn.RunningMean[c])
	}
	return f
}

// qconv is one quantized convolution stage: int8 weights, folded BN,
// optional ReLU, and a fixed output activation scale.
type qconv struct {
	name           string
	w              []int8 // (outC, inC*k*k) row-major, aliasing quant.Layer.Q
	qLayer         int    // index of the aliased layer in the quant.Model
	wScale         float32
	inC, outC      int
	k, stride, pad int
	bn             foldedBN
	relu           bool
	outScale       float32
}

// forward computes the stage on an int8 input of shape (N, inC, H, W).
// The engine's fetch hook (if any) runs first — before the stage touches
// a single weight — and the stage then holds the layer's read lock (if a
// weight guard is attached) for the duration of the convolution.
func (c *qconv) forward(x *QTensor, e *Engine, sc *engineScratch) *QTensor {
	hook := e.hook
	if sc.hook != nil {
		hook = sc.hook
	}
	if hook != nil {
		hook(c.qLayer)
	}
	if e.guard != nil {
		e.guard.RLockLayer(c.qLayer)
		defer e.guard.RUnlockLayer(c.qLayer)
	}
	start := time.Now()
	out := c.compute(x, sc)
	e.stageNs.Add(time.Since(start).Nanoseconds())
	e.stageCount.Add(1)
	return out
}

// compute is the raw int8 convolution, free of any serving coordination:
// an im2col pack into the scratch patch matrix followed by the blocked
// int8 GEMM (see gemm.go), then the per-channel BN/ReLU requantization.
// Output is bit-identical to computeRef, the retained reference loop.
func (c *qconv) compute(x *QTensor, sc *engineScratch) *QTensor {
	n, ch, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	if ch != c.inC {
		panic("qinfer: channel mismatch in " + c.name)
	}
	outH := tensor.ConvOutSize(h, c.k, c.stride, c.pad)
	outW := tensor.ConvOutSize(w, c.k, c.stride, c.pad)
	out := NewQTensor(c.outScale, n, c.outC, outH, outW)
	kCols := c.inC * c.k * c.k
	plane := outH * outW
	cols := sc.colsBuf(plane * kCols)
	acc := sc.accBuf(c.outC * plane)
	// Effective multiplier from int32 accumulator to real value.
	accScale := float64(c.wScale) * float64(x.Scale)
	outScale := float64(c.outScale)
	for img := 0; img < n; img++ {
		c.im2col(x.Q[img*ch*h*w:][:ch*h*w], h, w, outH, outW, cols)
		gemmInt8(c.w, cols, acc, c.outC, kCols, plane)
		outBase := img * c.outC * plane
		for oc := 0; oc < c.outC; oc++ {
			a := float64(c.bn.a[oc])
			bb := float64(c.bn.b[oc])
			accRow := acc[oc*plane:][:plane]
			outRow := out.Q[outBase+oc*plane:][:plane]
			for p := 0; p < plane; p++ {
				v := a*(accScale*float64(accRow[p])) + bb
				if c.relu && v < 0 {
					v = 0
				}
				outRow[p] = clampQ(v / outScale)
			}
		}
	}
	return out
}

// computeRef is the historical 7-deep nested conv loop, kept verbatim as
// the bit-exactness reference for the GEMM path: the differential
// property tests in gemm_test.go pin compute against it on every
// checkpoint layer shape and on randomized geometries.
func (c *qconv) computeRef(x *QTensor) *QTensor {
	n, ch, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	if ch != c.inC {
		panic("qinfer: channel mismatch in " + c.name)
	}
	outH := tensor.ConvOutSize(h, c.k, c.stride, c.pad)
	outW := tensor.ConvOutSize(w, c.k, c.stride, c.pad)
	out := NewQTensor(c.outScale, n, c.outC, outH, outW)
	kk := c.k * c.k
	cols := c.inC * kk
	// Effective multiplier from int32 accumulator to real value.
	accScale := float64(c.wScale) * float64(x.Scale)
	for img := 0; img < n; img++ {
		inBase := img * ch * h * w
		outBase := img * c.outC * outH * outW
		for oc := 0; oc < c.outC; oc++ {
			wRow := c.w[oc*cols : (oc+1)*cols]
			a := float64(c.bn.a[oc])
			bb := float64(c.bn.b[oc])
			for oy := 0; oy < outH; oy++ {
				for ox := 0; ox < outW; ox++ {
					var acc int32
					for ic := 0; ic < c.inC; ic++ {
						icBase := inBase + ic*h*w
						wBase := ic * kk
						for ky := 0; ky < c.k; ky++ {
							iy := oy*c.stride - c.pad + ky
							if iy < 0 || iy >= h {
								continue
							}
							rowBase := icBase + iy*w
							wRowBase := wBase + ky*c.k
							for kx := 0; kx < c.k; kx++ {
								ix := ox*c.stride - c.pad + kx
								if ix < 0 || ix >= w {
									continue
								}
								acc += int32(wRow[wRowBase+kx]) * int32(x.Q[rowBase+ix])
							}
						}
					}
					v := a*(accScale*float64(acc)) + bb
					if c.relu && v < 0 {
						v = 0
					}
					out.Q[outBase+oc*outH*outW+oy*outW+ox] = clampQ(v / float64(c.outScale))
				}
			}
		}
	}
	return out
}

// qblock is a quantized residual basic block.
type qblock struct {
	conv1, conv2 *qconv
	down         *qconv // nil for identity shortcuts
	outScale     float32
}

func (b *qblock) forward(x *QTensor, e *Engine, sc *engineScratch) *QTensor {
	main := b.conv1.forward(x, e, sc)
	main = b.conv2.forward(main, e, sc)
	side := x
	if b.down != nil {
		side = b.down.forward(x, e, sc)
	}
	// Residual add in the real domain, then ReLU and requantize.
	out := NewQTensor(b.outScale, main.Shape...)
	ms, ss := float64(main.Scale), float64(side.Scale)
	for i := range out.Q {
		v := ms*float64(main.Q[i]) + ss*float64(side.Q[i])
		if v < 0 {
			v = 0
		}
		out.Q[i] = clampQ(v / float64(b.outScale))
	}
	return out
}

// Engine is a compiled int8 inference network mirroring a ResNet built by
// nn.BuildResNet.
type Engine struct {
	inScale float32
	stem    *qconv
	pool    bool
	blocks  []*qblock
	// fc runs in float (a single tiny matmul, standard in int8 deployments).
	fcW *tensor.Tensor
	fcB *tensor.Tensor

	// hook, when set, observes every quantized layer immediately before its
	// weights are consumed — the embedded-detection point of the verified
	// weight-fetch path. See SetFetchHook.
	hook FetchHook
	// guard, when set, read-locks each layer for the duration of its conv
	// stage so recovery writes never race inference reads. See
	// SetWeightGuard.
	guard WeightGuard

	// scratch pools the per-forward im2col/GEMM working buffers; see
	// engineScratch. Safe for concurrent Forward calls — each checks out
	// its own instance.
	scratch sync.Pool

	// stageCount/stageNs accumulate executed conv-stage count and wall time
	// spent inside the int8 GEMM compute (hook and lock wait excluded), the
	// per-stage telemetry behind radar_gemm_stage_seconds_total.
	stageCount atomic.Int64
	stageNs    atomic.Int64
}

// StageStats returns the cumulative number of executed conv stages and the
// total nanoseconds spent in their int8 compute. Safe to call concurrently
// with Forward; a metrics scrape reads it through counter funcs.
func (e *Engine) StageStats() (stages, ns int64) {
	return e.stageCount.Load(), e.stageNs.Load()
}

// FetchHook is called with the quantized-layer index (position in the
// quant.Model the engine was compiled from) immediately before that
// layer's conv stage reads its weights. A serving layer uses it to verify
// the layer's signatures right at the fetch — the paper's embedded
// detection (Tables IV/V) — and to recover before the corrupt weights are
// ever multiplied. The hook runs on the inference goroutine and must not
// hold the layer's read lock when it returns (the engine acquires it next).
type FetchHook func(layer int)

// WeightGuard read-locks a quantized layer around its conv stage.
// *core.LayerGuard satisfies it; the indirection keeps qinfer free of a
// dependency on the protection scheme.
type WeightGuard interface {
	RLockLayer(layer int)
	RUnlockLayer(layer int)
}

// SetFetchHook installs (or clears, with nil) the per-layer fetch hook.
// Not safe to call concurrently with Forward — install before serving.
func (e *Engine) SetFetchHook(h FetchHook) { e.hook = h }

// SetWeightGuard installs (or clears, with nil) the weight read-lock
// guard. Not safe to call concurrently with Forward — install before
// serving. The final float classifier holds no quantized weights and is
// not guarded; it is immutable after Compile (cloned, not aliased).
func (e *Engine) SetWeightGuard(g WeightGuard) { e.guard = g }

// QuantLayers returns the quantized-layer indices the engine consumes, in
// execution order (a layer appears once per conv stage that reads it).
func (e *Engine) QuantLayers() []int {
	var out []int
	out = append(out, e.stem.qLayer)
	for _, b := range e.blocks {
		out = append(out, b.conv1.qLayer, b.conv2.qLayer)
		if b.down != nil {
			out = append(out, b.down.qLayer)
		}
	}
	return out
}

// Compile converts a trained float ResNet plus its quantized weight image
// into an int8 engine. calib is a representative input batch used to fix
// the activation scales (one forward pass through the engine in
// float-observation mode).
func Compile(net *nn.Sequential, qm *quant.Model, calib *tensor.Tensor) (*Engine, error) {
	e := &Engine{}
	var blocks []*qblock
	layers := net.Layers
	li := 0
	qIdx := 0
	nextQ := func(name string) (*quant.Layer, int) {
		if qIdx >= len(qm.Layers) {
			panic("qinfer: ran out of quantized layers at " + name)
		}
		l := qm.Layers[qIdx]
		qIdx++
		if l.Name != name {
			panic(fmt.Sprintf("qinfer: expected quantized layer %s, got %s", name, l.Name))
		}
		return l, qIdx - 1
	}

	makeConv := func(conv *nn.Conv2D, bn *nn.BatchNorm2D, relu bool) *qconv {
		ql, qi := nextQ(conv.Weight.Name)
		return &qconv{
			name:   conv.Name(),
			w:      ql.Q,
			qLayer: qi,
			wScale: ql.Scale,
			inC:    conv.InC, outC: conv.OutC,
			k: conv.K, stride: conv.Stride, pad: conv.Pad,
			bn:   foldBN(bn),
			relu: relu,
		}
	}

	// Stem: Conv2D, BatchNorm2D, ReLU, [MaxPool2].
	conv, ok := layers[li].(*nn.Conv2D)
	if !ok {
		return nil, fmt.Errorf("qinfer: layer 0 is %T, want *nn.Conv2D", layers[li])
	}
	bn, ok := layers[li+1].(*nn.BatchNorm2D)
	if !ok {
		return nil, fmt.Errorf("qinfer: layer 1 is %T, want *nn.BatchNorm2D", layers[li+1])
	}
	e.stem = makeConv(conv, bn, true)
	li += 3 // conv, bn, relu
	if _, isPool := layers[li].(*nn.MaxPool2); isPool {
		e.pool = true
		li++
	}
	for ; li < len(layers); li++ {
		switch l := layers[li].(type) {
		case *nn.BasicBlock:
			qb := &qblock{
				conv1: makeConv(l.Conv1, l.BN1, true),
				conv2: makeConv(l.Conv2, l.BN2, false),
			}
			if l.DownConv != nil {
				qb.down = makeConv(l.DownConv, l.DownBN, false)
			}
			blocks = append(blocks, qb)
		case *nn.GlobalAvgPool:
			// done with conv stages
		case *nn.Linear:
			e.fcW = l.Weight.Value.Clone()
			e.fcB = l.Bias.Value.Clone()
		default:
			return nil, fmt.Errorf("qinfer: unsupported layer %T", l)
		}
	}
	e.blocks = blocks
	if e.fcW == nil {
		return nil, fmt.Errorf("qinfer: model has no final Linear layer")
	}
	e.calibrate(net, calib)
	return e, nil
}

// calibrate runs the float network stage by stage on the calibration batch
// and sets every activation scale to maxAbs/127 of the observed outputs.
func (e *Engine) calibrate(net *nn.Sequential, calib *tensor.Tensor) {
	e.inScale = calib.MaxAbs() / 127
	if e.inScale == 0 {
		e.inScale = 1
	}
	x := calib
	scaleOf := func(t *tensor.Tensor) float32 {
		s := t.MaxAbs() / 127
		if s == 0 {
			s = 1
		}
		return s
	}
	bi := 0
	for _, l := range net.Layers {
		switch v := l.(type) {
		case *nn.Conv2D, *nn.BatchNorm2D, *nn.ReLU, *nn.MaxPool2:
			x = l.Forward(x, false)
			if _, isRelu := v.(*nn.ReLU); isRelu && e.stem.outScale == 0 {
				e.stem.outScale = scaleOf(x)
			}
		case *nn.BasicBlock:
			// Observe the block's internal stages in float.
			mid := v.Conv1.Forward(x, false)
			mid = v.BN1.Forward(mid, false)
			mid = v.Relu1.Forward(mid, false)
			e.blocks[bi].conv1.outScale = scaleOf(mid)
			main := v.Conv2.Forward(mid, false)
			main = v.BN2.Forward(main, false)
			e.blocks[bi].conv2.outScale = scaleOf(main)
			side := x
			if v.DownConv != nil {
				side = v.DownConv.Forward(x, false)
				side = v.DownBN.Forward(side, false)
				e.blocks[bi].down.outScale = scaleOf(side)
			}
			sum := tensor.Add(main, side)
			out := v.Relu2.Forward(sum, false)
			e.blocks[bi].outScale = scaleOf(out)
			x = out
			bi++
		case *nn.GlobalAvgPool, *nn.Linear:
			x = l.Forward(x, false)
		}
	}
}

// Forward runs int8 inference on a float input batch (N, C, H, W) and
// returns float logits (N, classes).
func (e *Engine) Forward(x *tensor.Tensor) *tensor.Tensor {
	return e.ForwardWithHook(x, nil)
}

// ForwardWithHook runs Forward with a per-call fetch hook that overrides
// the engine-wide SetFetchHook hook for this one pass (nil keeps the
// engine-wide hook). Serving workers use it to attribute verified-fetch
// time to the request being traced without installing per-request state on
// the shared engine.
func (e *Engine) ForwardWithHook(x *tensor.Tensor, hook FetchHook) *tensor.Tensor {
	sc := e.getScratch()
	defer e.putScratch(sc)
	sc.hook = hook
	q := QuantizeActivations(x, e.inScale)
	q = e.stem.forward(q, e, sc)
	if e.pool {
		f := q.Dequantize()
		pooled, _ := tensor.MaxPool2(f)
		q = QuantizeActivations(pooled, q.Scale)
	}
	for _, b := range e.blocks {
		q = b.forward(q, e, sc)
	}
	// Global average pool in the real domain, then the float classifier.
	f := q.Dequantize()
	gap := tensor.GlobalAvgPool(f)
	out := tensor.MatMulTransB(gap, e.fcW)
	n, k := out.Shape[0], out.Shape[1]
	for i := 0; i < n; i++ {
		for j := 0; j < k; j++ {
			out.Data[i*k+j] += e.fcB.Data[j]
		}
	}
	return out
}

// Accuracy evaluates top-1 accuracy of the int8 engine.
func (e *Engine) Accuracy(x *tensor.Tensor, labels []int) float64 {
	out := e.Forward(x)
	k := out.Shape[1]
	correct := 0
	for i := range labels {
		if out.Argmax(i*k, k) == labels[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(labels))
}
