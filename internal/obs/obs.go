// Package obs is the dependency-free observability kernel shared by every
// layer of the RADAR serving stack: a Prometheus-text-format metrics
// registry (atomic counters, gauges, fixed-bucket histograms, all with
// label support) plus the bounded per-request trace ring behind the
// /v1/debug/traces endpoint.
//
// Design constraints, in order:
//
//   - Hot paths never take a lock. Counter.Add, Gauge.Set and
//     Histogram.Observe are pure atomics; the only mutexes guard child
//     creation (done once at wiring time) and the trace ring (fed only by
//     explicitly traced requests).
//   - Exposition is the cold path. Registry.WriteTo walks families in
//     registration order and formats `# HELP`/`# TYPE` comment lines plus
//     one sample line per child, so the output is parseable by any
//     Prometheus scraper — and by the minimal line-checkers in the smoke
//     scripts.
//   - Registration is idempotent: asking for an already-registered family
//     with the same type and label names returns the existing one, which
//     is what lets a hot-added model rebind the same per-model series a
//     removed predecessor used.
package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// ExpositionContentType is the Content-Type of the /v1/metrics responses
// (the Prometheus text exposition format, version 0.0.4).
const ExpositionContentType = "text/plain; version=0.0.4; charset=utf-8"

// ValidName reports whether name is a legal metric or label name
// (Prometheus charset: letters, digits, underscores and colons, not
// starting with a digit). The repo-wide radar_ naming convention is
// enforced separately by the lint tests in internal/serve and
// internal/fleet.
func ValidName(name string) bool {
	if name == "" {
		return false
	}
	for i, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == ':':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

type metricType string

const (
	typeCounter   metricType = "counter"
	typeGauge     metricType = "gauge"
	typeHistogram metricType = "histogram"
)

// child is one labeled instance of a metric family.
type child interface {
	// writeSamples emits the child's sample lines. labels is the child's
	// rendered label set without braces (`model="a"`), possibly empty.
	writeSamples(w *bufio.Writer, name, labels string)
}

// family is one metric name: its metadata plus the labeled children.
type family struct {
	name    string
	help    string
	typ     metricType
	labels  []string  // label names, fixed at registration
	buckets []float64 // histogram upper bounds (sorted, no +Inf)

	mu       sync.RWMutex
	children map[string]child // keyed by joined label values
	order    []string
}

// labelKey joins label values into the child map key.
func labelKey(values []string) string { return strings.Join(values, "\xff") }

// renderLabels formats `k1="v1",k2="v2"` for a child's label values.
func renderLabels(names, values []string) string {
	if len(names) == 0 {
		return ""
	}
	var sb strings.Builder
	for i, n := range names {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(n)
		sb.WriteString(`="`)
		sb.WriteString(escapeLabel(values[i]))
		sb.WriteByte('"')
	}
	return sb.String()
}

func escapeLabel(v string) string {
	if !strings.ContainsAny(v, `\"`+"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

func escapeHelp(v string) string {
	if !strings.ContainsAny(v, `\`+"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	return r.Replace(v)
}

// get returns the child for values, creating it with mk on first use.
func (f *family) get(values []string, mk func() child) child {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("obs: metric %s wants %d label values, got %d", f.name, len(f.labels), len(values)))
	}
	k := labelKey(values)
	f.mu.RLock()
	c, ok := f.children[k]
	f.mu.RUnlock()
	if ok {
		return c
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if c, ok = f.children[k]; ok {
		return c
	}
	c = mk()
	f.children[k] = c
	f.order = append(f.order, k)
	return c
}

// delete removes the child for values (a no-op when absent).
func (f *family) delete(values []string) {
	k := labelKey(values)
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, ok := f.children[k]; !ok {
		return
	}
	delete(f.children, k)
	for i, o := range f.order {
		if o == k {
			f.order = append(f.order[:i], f.order[i+1:]...)
			break
		}
	}
}

// Registry is an ordered set of metric families. The zero value is not
// usable; build with NewRegistry.
type Registry struct {
	mu     sync.RWMutex
	fams   []*family
	byName map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

// register returns the family for name, creating it on first registration
// and validating the metadata on re-registration (same type and label
// names required — a name means one thing per registry).
func (r *Registry) register(name, help string, typ metricType, labels []string, buckets []float64) *family {
	if !ValidName(name) {
		panic("obs: invalid metric name " + strconv.Quote(name))
	}
	for _, l := range labels {
		if !ValidName(l) {
			panic("obs: invalid label name " + strconv.Quote(l) + " on metric " + name)
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.byName[name]; ok {
		if f.typ != typ || len(f.labels) != len(labels) {
			panic("obs: conflicting re-registration of metric " + name)
		}
		for i := range labels {
			if f.labels[i] != labels[i] {
				panic("obs: conflicting label names on metric " + name)
			}
		}
		if typ == typeHistogram {
			// A silently returned family with different buckets would put
			// observations in unexpected buckets — same one-name-one-meaning
			// rule as type and label names. Compare sorted, matching how
			// the family stores them.
			b := append([]float64(nil), buckets...)
			sort.Float64s(b)
			if len(b) != len(f.buckets) {
				panic("obs: conflicting buckets on metric " + name)
			}
			for i := range b {
				if b[i] != f.buckets[i] {
					panic("obs: conflicting buckets on metric " + name)
				}
			}
		}
		return f
	}
	f := &family{
		name:     name,
		help:     help,
		typ:      typ,
		labels:   append([]string(nil), labels...),
		buckets:  append([]float64(nil), buckets...),
		children: make(map[string]child),
	}
	sort.Float64s(f.buckets)
	r.fams = append(r.fams, f)
	r.byName[name] = f
	return f
}

// Counter registers (or finds) a counter family.
func (r *Registry) Counter(name, help string, labels ...string) *CounterVec {
	return &CounterVec{fam: r.register(name, help, typeCounter, labels, nil)}
}

// Gauge registers (or finds) a gauge family.
func (r *Registry) Gauge(name, help string, labels ...string) *GaugeVec {
	return &GaugeVec{fam: r.register(name, help, typeGauge, labels, nil)}
}

// Histogram registers (or finds) a fixed-bucket histogram family. buckets
// are the upper bounds (+Inf is implicit).
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...string) *HistogramVec {
	return &HistogramVec{fam: r.register(name, help, typeHistogram, labels, buckets)}
}

// Names returns the registered family names in registration order — the
// input of the metric-naming lint tests.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, len(r.fams))
	for i, f := range r.fams {
		out[i] = f.name
	}
	return out
}

// Prune drops every child whose value for label equals value, across all
// families — how a hot-removed model's per-model series leave the
// exposition. Families without that label are untouched.
func (r *Registry) Prune(label, value string) {
	r.mu.RLock()
	fams := append([]*family(nil), r.fams...)
	r.mu.RUnlock()
	for _, f := range fams {
		idx := -1
		for i, l := range f.labels {
			if l == label {
				idx = i
				break
			}
		}
		if idx < 0 {
			continue
		}
		f.mu.Lock()
		for k := range f.children {
			if strings.Split(k, "\xff")[idx] == value {
				delete(f.children, k)
				for i, o := range f.order {
					if o == k {
						f.order = append(f.order[:i], f.order[i+1:]...)
						break
					}
				}
			}
		}
		f.mu.Unlock()
	}
}

// WriteTo writes the whole registry in the Prometheus text exposition
// format: families in registration order, each with its `# HELP` and
// `# TYPE` lines followed by one sample line per child (histograms emit
// the cumulative _bucket series plus _sum and _count). It implements
// io.WriterTo.
func (r *Registry) WriteTo(w io.Writer) (int64, error) {
	cw := &countingWriter{w: w}
	bw := bufio.NewWriter(cw)
	r.mu.RLock()
	fams := append([]*family(nil), r.fams...)
	r.mu.RUnlock()
	for _, f := range fams {
		f.mu.RLock()
		keys := append([]string(nil), f.order...)
		children := make([]child, len(keys))
		for i, k := range keys {
			children[i] = f.children[k]
		}
		f.mu.RUnlock()
		if len(children) == 0 {
			continue
		}
		fmt.Fprintf(bw, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		fmt.Fprintf(bw, "# TYPE %s %s\n", f.name, f.typ)
		for i, c := range children {
			values := strings.Split(keys[i], "\xff")
			if len(f.labels) == 0 {
				values = nil
			}
			c.writeSamples(bw, f.name, renderLabels(f.labels, values))
		}
	}
	err := bw.Flush()
	return cw.n, err
}

type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

// formatValue renders a sample value: integers print without exponent or
// trailing zeros, everything else in shortest-round-trip form.
func formatValue(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func writeSample(w *bufio.Writer, name, labels, value string) {
	w.WriteString(name)
	if labels != "" {
		w.WriteByte('{')
		w.WriteString(labels)
		w.WriteByte('}')
	}
	w.WriteByte(' ')
	w.WriteString(value)
	w.WriteByte('\n')
}

// --- counters -------------------------------------------------------------

// Counter is a monotonically increasing int64, updated with atomics.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be >= 0 for the exposition to stay monotonic).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

func (c *Counter) writeSamples(w *bufio.Writer, name, labels string) {
	writeSample(w, name, labels, strconv.FormatInt(c.v.Load(), 10))
}

// counterFunc exposes an externally maintained monotonic value (an
// existing atomic counter elsewhere in the stack) as a counter sample.
type counterFunc struct {
	f func() float64
}

func (c *counterFunc) writeSamples(w *bufio.Writer, name, labels string) {
	writeSample(w, name, labels, formatValue(c.f()))
}

// CounterVec is a counter family handle.
type CounterVec struct {
	fam *family
}

// With returns the counter child for the given label values, creating it
// on first use.
func (v *CounterVec) With(labelValues ...string) *Counter {
	c := v.fam.get(labelValues, func() child { return &Counter{} })
	cc, ok := c.(*Counter)
	if !ok {
		panic("obs: metric " + v.fam.name + " child is function-backed")
	}
	return cc
}

// Func binds the child for the given label values to f, read at scrape
// time — the bridge for counters that already live as atomics elsewhere
// (core.Protector.Stats, the engine's stage clock).
func (v *CounterVec) Func(f func() float64, labelValues ...string) {
	v.fam.get(labelValues, func() child { return &counterFunc{f: f} })
}

// Delete drops the child for the given label values.
func (v *CounterVec) Delete(labelValues ...string) { v.fam.delete(labelValues) }

// --- gauges ---------------------------------------------------------------

// Gauge is a float64 that can go up and down, updated with atomics.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the stored value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

func (g *Gauge) writeSamples(w *bufio.Writer, name, labels string) {
	writeSample(w, name, labels, formatValue(g.Value()))
}

type gaugeFunc struct {
	f func() float64
}

func (g *gaugeFunc) writeSamples(w *bufio.Writer, name, labels string) {
	writeSample(w, name, labels, formatValue(g.f()))
}

// GaugeVec is a gauge family handle.
type GaugeVec struct {
	fam *family
}

// With returns the gauge child for the given label values.
func (v *GaugeVec) With(labelValues ...string) *Gauge {
	c := v.fam.get(labelValues, func() child { return &Gauge{} })
	gg, ok := c.(*Gauge)
	if !ok {
		panic("obs: metric " + v.fam.name + " child is function-backed")
	}
	return gg
}

// Func binds the child for the given label values to f, evaluated at
// scrape time — queue depths, table occupancy, ring sizes.
func (v *GaugeVec) Func(f func() float64, labelValues ...string) {
	v.fam.get(labelValues, func() child { return &gaugeFunc{f: f} })
}

// Delete drops the child for the given label values.
func (v *GaugeVec) Delete(labelValues ...string) { v.fam.delete(labelValues) }

// --- histograms -----------------------------------------------------------

// Histogram is a fixed-bucket histogram: one atomic count per bucket, an
// atomic observation count and a CAS-maintained float64 sum. Observe is
// lock-free, so any number of inference workers can share one child.
type Histogram struct {
	buckets []float64 // upper bounds, sorted; +Inf implicit
	counts  []atomic.Int64
	count   atomic.Int64
	sumBits atomic.Uint64
}

func newHistogram(buckets []float64) *Histogram {
	return &Histogram{buckets: buckets, counts: make([]atomic.Int64, len(buckets)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.buckets, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Quantile estimates the q-quantile (q in [0,1]) by linear interpolation
// inside the bucket holding the target rank — the replacement for the
// retired latency-reservoir sort. Values beyond the last finite bucket
// clamp to that bound; an empty histogram reports 0.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	cum := int64(0)
	for i := range h.counts {
		c := h.counts[i].Load()
		if c == 0 {
			cum += c
			continue
		}
		if float64(cum+c) >= rank {
			if i >= len(h.buckets) {
				// +Inf bucket: the best point estimate is the last finite
				// bound (or the mean when there are no finite buckets).
				if len(h.buckets) == 0 {
					return h.Sum() / float64(total)
				}
				return h.buckets[len(h.buckets)-1]
			}
			lo := 0.0
			if i > 0 {
				lo = h.buckets[i-1]
			}
			hi := h.buckets[i]
			frac := (rank - float64(cum)) / float64(c)
			if frac < 0 {
				frac = 0
			}
			return lo + (hi-lo)*frac
		}
		cum += c
	}
	return h.buckets[len(h.buckets)-1]
}

func (h *Histogram) writeSamples(w *bufio.Writer, name, labels string) {
	cum := int64(0)
	for i, ub := range h.buckets {
		cum += h.counts[i].Load()
		le := `le="` + formatValue(ub) + `"`
		if labels != "" {
			le = labels + "," + le
		}
		writeSample(w, name+"_bucket", le, strconv.FormatInt(cum, 10))
	}
	cum += h.counts[len(h.buckets)].Load()
	le := `le="+Inf"`
	if labels != "" {
		le = labels + "," + le
	}
	writeSample(w, name+"_bucket", le, strconv.FormatInt(cum, 10))
	writeSample(w, name+"_sum", labels, formatValue(h.Sum()))
	writeSample(w, name+"_count", labels, strconv.FormatInt(h.count.Load(), 10))
}

// HistogramVec is a histogram family handle.
type HistogramVec struct {
	fam *family
}

// With returns the histogram child for the given label values.
func (v *HistogramVec) With(labelValues ...string) *Histogram {
	c := v.fam.get(labelValues, func() child { return newHistogram(v.fam.buckets) })
	hh, ok := c.(*Histogram)
	if !ok {
		panic("obs: metric " + v.fam.name + " child is not a histogram")
	}
	return hh
}

// Delete drops the child for the given label values.
func (v *HistogramVec) Delete(labelValues ...string) { v.fam.delete(labelValues) }
