package obs

import (
	"strings"
	"sync"
	"testing"
)

// TestExpositionGolden pins the exact text exposition for a small registry
// covering all three metric types, labels, and the histogram sample
// expansion — the format the smoke scripts' line-checkers parse.
func TestExpositionGolden(t *testing.T) {
	r := NewRegistry()
	req := r.Counter("radar_requests_total", "Requests served.", "model")
	req.With("a").Add(3)
	req.With("b").Inc()
	depth := r.Gauge("radar_queue_depth", "Pending requests.", "model")
	depth.With("a").Set(2)
	r.Gauge("radar_uptime_ratio", "Fraction of time up.").Func(func() float64 { return 0.5 })
	lat := r.Histogram("radar_request_latency_seconds", "End-to-end latency.", []float64{0.01, 0.1}, "model")
	h := lat.With("a")
	h.Observe(0.005)
	h.Observe(0.05)
	h.Observe(0.5)

	var sb strings.Builder
	n, err := r.WriteTo(&sb)
	if err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	want := `# HELP radar_requests_total Requests served.
# TYPE radar_requests_total counter
radar_requests_total{model="a"} 3
radar_requests_total{model="b"} 1
# HELP radar_queue_depth Pending requests.
# TYPE radar_queue_depth gauge
radar_queue_depth{model="a"} 2
# HELP radar_uptime_ratio Fraction of time up.
# TYPE radar_uptime_ratio gauge
radar_uptime_ratio 0.5
# HELP radar_request_latency_seconds End-to-end latency.
# TYPE radar_request_latency_seconds histogram
radar_request_latency_seconds_bucket{model="a",le="0.01"} 1
radar_request_latency_seconds_bucket{model="a",le="0.1"} 2
radar_request_latency_seconds_bucket{model="a",le="+Inf"} 3
radar_request_latency_seconds_sum{model="a"} 0.555
radar_request_latency_seconds_count{model="a"} 3
`
	if got := sb.String(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
	if n != int64(len(want)) {
		t.Errorf("WriteTo reported %d bytes, wrote %d", n, len(want))
	}
}

func TestRegistrationIdempotent(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("radar_x_total", "x", "model")
	b := r.Counter("radar_x_total", "x", "model")
	a.With("m").Add(2)
	if got := b.With("m").Value(); got != 2 {
		t.Errorf("re-registered family not shared: got %d, want 2", got)
	}
	defer func() {
		if recover() == nil {
			t.Errorf("conflicting re-registration did not panic")
		}
	}()
	r.Gauge("radar_x_total", "x", "model")
}

func TestInvalidNamePanics(t *testing.T) {
	r := NewRegistry()
	defer func() {
		if recover() == nil {
			t.Errorf("invalid metric name did not panic")
		}
	}()
	r.Counter("radar-bad-name", "nope")
}

func TestPrune(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("radar_requests_total", "r", "model")
	c.With("a").Inc()
	c.With("b").Inc()
	g := r.Gauge("radar_fleet_replica_up", "u", "replica")
	g.With("h1").Set(1)
	r.Prune("model", "a")
	var sb strings.Builder
	r.WriteTo(&sb)
	out := sb.String()
	if strings.Contains(out, `model="a"`) {
		t.Errorf("pruned child still exposed:\n%s", out)
	}
	if !strings.Contains(out, `model="b"`) || !strings.Contains(out, `replica="h1"`) {
		t.Errorf("prune removed unrelated children:\n%s", out)
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := newHistogram([]float64{0.1, 0.2, 0.4, 0.8})
	for i := 0; i < 100; i++ {
		h.Observe(0.15) // all in the (0.1, 0.2] bucket
	}
	if q := h.Quantile(0.5); q < 0.1 || q > 0.2 {
		t.Errorf("p50 = %v, want within (0.1, 0.2]", q)
	}
	h.Observe(100) // lands in +Inf: quantile clamps to last finite bound
	if q := h.Quantile(1); q != 0.8 {
		t.Errorf("p100 with +Inf tail = %v, want clamp to 0.8", q)
	}
	var empty Histogram
	if q := (&empty).Quantile(0.99); q != 0 {
		t.Errorf("empty histogram quantile = %v, want 0", q)
	}
}

// TestConcurrentScrape hammers counters, gauges, and histograms from many
// goroutines while other goroutines scrape — run under -race this proves
// the hot path and exposition are data-race free.
func TestConcurrentScrape(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("radar_requests_total", "r", "model")
	g := r.Gauge("radar_queue_depth", "q", "model")
	h := r.Histogram("radar_request_latency_seconds", "l", []float64{0.001, 0.01, 0.1}, "model")
	models := []string{"a", "b", "c"}

	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 5000; i++ {
				m := models[i%len(models)]
				c.With(m).Inc()
				g.With(m).Set(float64(i % 7))
				h.With(m).Observe(float64(i%100) / 1000)
			}
		}(w)
	}
	for s := 0; s < 2; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				var sb strings.Builder
				if _, err := r.WriteTo(&sb); err != nil {
					t.Errorf("WriteTo: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()

	var sb strings.Builder
	r.WriteTo(&sb)
	if !strings.Contains(sb.String(), `radar_requests_total{model="a"}`) {
		t.Errorf("final scrape missing hammered series")
	}
}

func TestTraceRing(t *testing.T) {
	r := NewTraceRing(3)
	for i := 0; i < 5; i++ {
		r.Add(Trace{ID: string(rune('a' + i))})
	}
	if r.Len() != 3 {
		t.Fatalf("Len = %d, want 3", r.Len())
	}
	got := r.Last(10)
	if len(got) != 3 || got[0].ID != "e" || got[1].ID != "d" || got[2].ID != "c" {
		t.Errorf("Last = %+v, want newest-first e,d,c", got)
	}
	if got := r.Last(1); len(got) != 1 || got[0].ID != "e" {
		t.Errorf("Last(1) = %+v, want just e", got)
	}
}

func TestNewRequestID(t *testing.T) {
	a, b := NewRequestID(), NewRequestID()
	if len(a) != 16 || a == b {
		t.Errorf("request ids not unique 16-hex: %q %q", a, b)
	}
}

// TestConflictingBucketsPanic: re-registering a histogram with different
// buckets must fail loudly, matching the conflicting-metadata behavior
// for type and label names — a silently shared family would put
// observations in unexpected buckets.
func TestConflictingBucketsPanic(t *testing.T) {
	r := NewRegistry()
	a := r.Histogram("radar_y_seconds", "y", []float64{0.1, 1, 10})
	// The same bounds in any order share the family (buckets are stored
	// sorted).
	b := r.Histogram("radar_y_seconds", "y", []float64{10, 0.1, 1})
	if a.fam != b.fam {
		t.Errorf("identical re-registration did not share the family")
	}
	defer func() {
		if recover() == nil {
			t.Errorf("conflicting histogram buckets did not panic")
		}
	}()
	r.Histogram("radar_y_seconds", "y", []float64{0.5, 5})
}
