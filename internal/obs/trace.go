package obs

import (
	"crypto/rand"
	"encoding/hex"
	"sync"
	"time"
)

// Stage is one timed span inside a traced request (queue wait, batch
// assembly, verified fetch, forward pass, ...).
type Stage struct {
	Name string  `json:"name"`
	Ms   float64 `json:"ms"`
}

// Trace is the record of one request's trip through the stack. Replica is
// empty on a replica's own ring and filled in by the fleet router when it
// merges trace dumps across the fleet.
type Trace struct {
	ID      string    `json:"id"`
	Model   string    `json:"model"`
	Replica string    `json:"replica,omitempty"`
	Start   time.Time `json:"start"`
	TotalMs float64   `json:"total_ms"`
	Stages  []Stage   `json:"stages"`
}

// TraceRing is a bounded in-memory ring of completed traces. Only
// explicitly traced requests (those carrying an X-Request-Id) pay the
// mutex; the inference hot path for untraced Go-API calls never touches
// it.
type TraceRing struct {
	mu   sync.Mutex
	buf  []Trace
	next int
	full bool
}

// NewTraceRing returns a ring keeping the last size traces (minimum 1).
func NewTraceRing(size int) *TraceRing {
	if size < 1 {
		size = 1
	}
	return &TraceRing{buf: make([]Trace, size)}
}

// Add records a completed trace, evicting the oldest when full.
func (r *TraceRing) Add(t Trace) {
	r.mu.Lock()
	r.buf[r.next] = t
	r.next++
	if r.next == len(r.buf) {
		r.next = 0
		r.full = true
	}
	r.mu.Unlock()
}

// Last returns up to n traces, newest first.
func (r *TraceRing) Last(n int) []Trace {
	r.mu.Lock()
	defer r.mu.Unlock()
	size := r.next
	if r.full {
		size = len(r.buf)
	}
	if n <= 0 || n > size {
		n = size
	}
	out := make([]Trace, 0, n)
	for i := 0; i < n; i++ {
		idx := r.next - 1 - i
		if idx < 0 {
			idx += len(r.buf)
		}
		out = append(out, r.buf[idx])
	}
	return out
}

// Len returns the number of traces currently held.
func (r *TraceRing) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.full {
		return len(r.buf)
	}
	return r.next
}

// NewRequestID mints a 16-hex-char request id for requests that arrive
// without an X-Request-Id header.
func NewRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand never fails on the supported platforms; a zero id
		// still traces, it just isn't unique.
		return "0000000000000000"
	}
	return hex.EncodeToString(b[:])
}
