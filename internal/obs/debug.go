package obs

import (
	"net/http"
	"net/http/pprof"
)

// PprofHandler returns a mux serving the net/http/pprof surface under
// /debug/pprof/. Both radar-serve and radar-fleet mount it on a separate
// listener behind -debug-addr so profiling never shares a port with the
// public /v1 API.
func PprofHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
