package quant

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"radar/internal/nn"
	"radar/internal/tensor"
)

func tinyNet(seed int64) *nn.Sequential {
	rng := rand.New(rand.NewSource(seed))
	return nn.NewSequential("tiny",
		nn.NewLinear("fc1", 4, 8, rng),
		nn.NewReLU("r"),
		nn.NewLinear("fc2", 8, 3, rng),
	)
}

func TestQuantizeOnlyWeightTensors(t *testing.T) {
	m := Quantize(tinyNet(1))
	if len(m.Layers) != 2 {
		t.Fatalf("expected 2 quantized layers (fc weights), got %d", len(m.Layers))
	}
	for _, l := range m.Layers {
		if l.Scale <= 0 {
			t.Fatalf("non-positive scale on %s", l.Name)
		}
	}
}

func TestQuantizeRoundTripError(t *testing.T) {
	net := tinyNet(2)
	// Save pre-quantization weights.
	var orig []float32
	for _, p := range net.Params() {
		if p.WeightDecay {
			orig = append(orig, append([]float32(nil), p.Value.Data...)...)
		}
	}
	m := Quantize(net)
	i := 0
	for _, l := range m.Layers {
		for j := range l.Q {
			err := math.Abs(float64(l.Param.Value.Data[j] - orig[i]))
			if err > float64(l.Scale)/2+1e-6 {
				t.Fatalf("%s[%d]: quantization error %v exceeds scale/2 %v", l.Name, j, err, l.Scale/2)
			}
			i++
		}
	}
}

func TestQuantizedValuesOnGrid(t *testing.T) {
	m := Quantize(tinyNet(3))
	for _, l := range m.Layers {
		for i, q := range l.Q {
			want := float32(q) * l.Scale
			if l.Param.Value.Data[i] != want {
				t.Fatalf("%s[%d] float weight %v not on grid point %v", l.Name, i, l.Param.Value.Data[i], want)
			}
		}
	}
}

func TestFlipBitInvolution(t *testing.T) {
	f := func(v int8, b uint8) bool {
		bit := int(b % 8)
		return FlipBit(FlipBit(v, bit), bit) == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFlipBitChangesExactlyOneBit(t *testing.T) {
	f := func(v int8, b uint8) bool {
		bit := int(b % 8)
		x := uint8(v) ^ uint8(FlipBit(v, bit))
		return x == 1<<uint(bit)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFlipDeltaMatchesActualChange(t *testing.T) {
	f := func(v int8, b uint8) bool {
		bit := int(b % 8)
		return int(FlipBit(v, bit))-int(v) == FlipDelta(v, bit)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMSBFlipSemantics(t *testing.T) {
	// Flipping the MSB of a small positive weight makes it very negative.
	if got := FlipBit(5, MSB); got != -123 {
		t.Fatalf("FlipBit(5, MSB) = %d, want -123", got)
	}
	// Flipping the MSB of a small negative weight makes it large positive.
	if got := FlipBit(-5, MSB); got != 123 {
		t.Fatalf("FlipBit(-5, MSB) = %d, want 123", got)
	}
	if Bit(-1, MSB) != 1 || Bit(1, MSB) != 0 {
		t.Fatal("Bit(MSB) sign semantics wrong")
	}
}

func TestModelFlipBitSyncsFloat(t *testing.T) {
	m := Quantize(tinyNet(4))
	a := BitAddress{LayerIndex: 0, WeightIndex: 3, Bit: MSB}
	l := m.Layers[0]
	oldQ := l.Q[3]
	old, newQ := m.FlipBit(a)
	if old != oldQ {
		t.Fatalf("reported old value %d, want %d", old, oldQ)
	}
	if newQ != FlipBit(oldQ, MSB) {
		t.Fatalf("flip result %d incorrect", newQ)
	}
	if l.Param.Value.Data[3] != float32(newQ)*l.Scale {
		t.Fatal("float weight not synchronized after flip")
	}
	// Flip back restores exactly.
	m.FlipBit(a)
	if l.Q[3] != oldQ {
		t.Fatal("double flip did not restore")
	}
}

func TestSnapshotRestore(t *testing.T) {
	m := Quantize(tinyNet(5))
	snap := m.Snapshot()
	m.FlipBit(BitAddress{0, 0, 7})
	m.FlipBit(BitAddress{1, 2, 3})
	m.Restore(snap)
	for li, l := range m.Layers {
		for i, q := range l.Q {
			if q != snap[li][i] {
				t.Fatalf("layer %d weight %d not restored", li, i)
			}
			if l.Param.Value.Data[i] != float32(q)*l.Scale {
				t.Fatal("float weights not resynced on restore")
			}
		}
	}
}

func TestTotalWeights(t *testing.T) {
	m := Quantize(tinyNet(6))
	want := 4*8 + 8*3
	if got := m.TotalWeights(); got != want {
		t.Fatalf("TotalWeights = %d, want %d", got, want)
	}
}

func TestLayerByName(t *testing.T) {
	m := Quantize(tinyNet(7))
	if m.LayerByName("fc1.weight") == nil {
		t.Fatal("fc1.weight not found")
	}
	if m.LayerByName("nope") != nil {
		t.Fatal("unexpected layer found")
	}
}

func TestBitAddressString(t *testing.T) {
	s := BitAddress{2, 17, 7}.String()
	if s != "L2[17].b7" {
		t.Fatalf("String = %q", s)
	}
}

func TestQuantizePreservesInference(t *testing.T) {
	// Quantizing must not change predictions dramatically on random inputs:
	// outputs before and after differ by at most a few quantization steps.
	net := tinyNet(8)
	rng := rand.New(rand.NewSource(9))
	x := tensor.New(4, 4)
	x.RandNormal(rng, 1)
	before := net.Forward(x, false).Clone()
	Quantize(net)
	after := net.Forward(x, false)
	for i := range before.Data {
		if math.Abs(float64(before.Data[i]-after.Data[i])) > 0.3 {
			t.Fatalf("output %d moved too much: %v → %v", i, before.Data[i], after.Data[i])
		}
	}
}
