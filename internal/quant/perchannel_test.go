package quant

import "testing"

func TestPerChannelScalesPerRow(t *testing.T) {
	m := QuantizePerChannel(tinyNet(20))
	for _, l := range m.Layers {
		rows := l.Param.Value.Shape[0]
		if len(l.Scales) != rows {
			t.Fatalf("%s: %d scales for %d channels", l.Name, len(l.Scales), rows)
		}
		if l.Scale != l.Scales[0] {
			t.Fatalf("%s: Scale field does not mirror Scales[0]", l.Name)
		}
	}
}

func TestPerChannelReducesQuantError(t *testing.T) {
	// Per-channel quantization must not be worse than per-layer on any
	// layer, and strictly better on at least one (rows have different
	// magnitudes with overwhelming probability).
	netA := tinyNet(21)
	netB := tinyNet(21) // identical weights
	var originals [][]float32
	for _, p := range netA.Params() {
		if p.WeightDecay {
			originals = append(originals, append([]float32(nil), p.Value.Data...))
		}
	}
	perLayer := Quantize(netA)
	perChan := QuantizePerChannel(netB)
	better := false
	for i := range perLayer.Layers {
		eL := perLayer.Layers[i].QuantError(originals[i])
		eC := perChan.Layers[i].QuantError(originals[i])
		if eC > eL*1.0001 {
			t.Fatalf("%s: per-channel error %v worse than per-layer %v",
				perLayer.Layers[i].Name, eC, eL)
		}
		if eC < eL*0.999 {
			better = true
		}
	}
	if !better {
		t.Fatal("per-channel quantization never improved on per-layer")
	}
}

func TestPerChannelSyncUsesRowScale(t *testing.T) {
	m := QuantizePerChannel(tinyNet(22))
	l := m.Layers[0]
	cols := len(l.Q) / len(l.Scales)
	for i, q := range l.Q {
		want := float32(q) * l.Scales[i/cols]
		if l.Param.Value.Data[i] != want {
			t.Fatalf("weight %d synced with wrong scale", i)
		}
	}
}

func TestPerChannelFlipBitSyncs(t *testing.T) {
	m := QuantizePerChannel(tinyNet(23))
	a := BitAddress{LayerIndex: 1, WeightIndex: 4, Bit: MSB}
	m.FlipBit(a)
	l := m.Layers[1]
	cols := len(l.Q) / len(l.Scales)
	want := float32(l.Q[4]) * l.Scales[4/cols]
	if l.Param.Value.Data[4] != want {
		t.Fatal("FlipBit did not sync with per-channel scale")
	}
}
