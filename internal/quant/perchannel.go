package quant

import (
	"math"

	"radar/internal/nn"
)

// QuantizePerChannel is the per-output-channel variant of Quantize: each
// conv/linear output channel gets its own scale (max|w|/127 over the
// channel's row). The paper uses per-layer scales; this variant exists as
// an ablation — per-channel quantization shrinks quantization error, and
// because every stored weight is still a plain int8, PBFA and RADAR apply
// unchanged. The Layer's Scale field holds the first channel's scale for
// compatibility; Scales has the full vector.
func QuantizePerChannel(net *nn.Sequential) *Model {
	m := &Model{Net: net}
	for _, p := range net.Params() {
		if !p.WeightDecay {
			continue
		}
		rows, cols := channelGeometry(p)
		l := &Layer{Name: p.Name, Q: make([]int8, p.Value.Len()), Param: p}
		l.Scales = make([]float32, rows)
		for r := 0; r < rows; r++ {
			var maxAbs float32
			for c := 0; c < cols; c++ {
				v := p.Value.Data[r*cols+c]
				if v < 0 {
					v = -v
				}
				if v > maxAbs {
					maxAbs = v
				}
			}
			if maxAbs == 0 {
				maxAbs = 1
			}
			scale := maxAbs / QMax
			l.Scales[r] = scale
			for c := 0; c < cols; c++ {
				q := int(math.Round(float64(p.Value.Data[r*cols+c] / scale)))
				if q > QMax {
					q = QMax
				}
				if q < -QMax-1 {
					q = -QMax - 1
				}
				l.Q[r*cols+c] = int8(q)
			}
		}
		l.Scale = l.Scales[0]
		m.Layers = append(m.Layers, l)
	}
	m.SyncAll()
	return m
}

// channelGeometry interprets a weight tensor as (outputChannels, rest).
func channelGeometry(p *nn.Param) (rows, cols int) {
	if p.Value.NDim() == 2 {
		return p.Value.Shape[0], p.Value.Shape[1]
	}
	rows = p.Value.Shape[0]
	return rows, p.Value.Len() / rows
}

// scaleAt returns the dequantization scale of weight index i, honoring
// per-channel scales when present.
func (l *Layer) scaleAt(i int) float32 {
	if len(l.Scales) == 0 {
		return l.Scale
	}
	cols := len(l.Q) / len(l.Scales)
	return l.Scales[i/cols]
}

// QuantError returns the RMS quantization error of the layer against the
// float values it was built from (useful to compare per-layer vs
// per-channel ablations).
func (l *Layer) QuantError(original []float32) float64 {
	var sum float64
	for i, q := range l.Q {
		d := float64(original[i]) - float64(q)*float64(l.scaleAt(i))
		sum += d * d
	}
	return math.Sqrt(sum / float64(len(l.Q)))
}
