// Package quant implements 8-bit symmetric per-layer weight quantization
// and the two's-complement bit manipulation primitives used by both the
// PBFA attack and the RADAR defense. Quantized weights are stored as int8
// exactly as they would sit in DRAM; bit index 7 is the most significant
// bit (the sign bit of the two's-complement encoding).
package quant

import (
	"fmt"
	"math"

	"radar/internal/nn"
)

// QMax is the largest representable quantized magnitude (int8 symmetric).
const QMax = 127

// MSB is the index of the most significant (sign) bit of an int8 weight.
const MSB = 7

// Layer is one quantized weight tensor: the int8 values, the shared
// dequantization scale, and a link back to the float parameter that the
// inference engine actually consumes. Q is the authoritative storage (the
// "DRAM copy"); Sync writes its dequantized values into Param.
type Layer struct {
	// Name echoes the parameter name, e.g. "stage1.block0.conv1.weight".
	Name string
	// Q holds the quantized weights in row-major order.
	Q []int8
	// Scale is the per-layer dequantization step: w = scale * q.
	Scale float32
	// Scales, when non-empty, holds per-output-channel scales (the
	// QuantizePerChannel ablation); Scale then mirrors Scales[0].
	Scales []float32
	// Param points at the float tensor used for inference.
	Param *nn.Param
}

// Model wraps a float network with quantized storage for every weight
// tensor that carries weight decay (conv and linear weights — the tensors
// the paper attacks; BN affine parameters and biases stay in float, matching
// the 8-bit weight-quantization setup of the paper).
type Model struct {
	// Net is the underlying float network.
	Net *nn.Sequential
	// Layers lists the quantized weight tensors in network order.
	Layers []*Layer
	// observers are notified with a layer index whenever that layer's
	// quantized storage is mutated through the Model API; see Observe.
	observers []func(layer int)
}

// Observe registers fn to be called with the layer index each time that
// layer's quantized weights change through the Model API (FlipBit,
// Restore). RADAR's incremental scan uses this to track dirty layers.
// Direct writes to Layer.Q bypass notification. Observers run on the
// mutating goroutine and must be cheap and safe for concurrent use if the
// model is mutated from several goroutines. The returned cancel function
// unregisters fn; short-lived observers (e.g. a protector being replaced)
// must call it, or the model keeps them reachable and pays their callback
// on every write forever.
func (m *Model) Observe(fn func(layer int)) (cancel func()) {
	i := len(m.observers)
	for j, o := range m.observers {
		if o == nil { // reuse a cancelled slot so the list stays bounded
			i = j
			break
		}
	}
	if i == len(m.observers) {
		m.observers = append(m.observers, nil)
	}
	m.observers[i] = fn
	cancelled := false
	return func() {
		if !cancelled { // idempotent: the slot may have been reused
			cancelled = true
			m.observers[i] = nil
		}
	}
}

// notifyWrite fans a mutation of layer li out to the observers.
func (m *Model) notifyWrite(li int) {
	for _, fn := range m.observers {
		if fn != nil {
			fn(li)
		}
	}
}

// MarkWritten notifies the model's observers that layer li's quantized
// storage was mutated outside the Model API (e.g. recovery zeroing weights
// through Layer.Q directly). Storage backends use the notification to keep
// dirty-page tracking sound — an mmap-backed checkpoint schedules the
// layer for msync — and incremental scanners re-check the layer on their
// next pass.
func (m *Model) MarkWritten(li int) { m.notifyWrite(li) }

// Attach wires the model to an existing float network: each quantized
// layer binds to the parameter of the same name and the dequantized values
// are synchronized into it, so a model restored from external storage
// (e.g. an mmap-backed store checkpoint, which carries only the int8
// image) drives the network — and the storage, not the network, is
// authoritative from then on. Every layer must find a parameter of
// matching name and size; extra parameters (BN affine terms, biases) are
// left as the network has them.
func (m *Model) Attach(net *nn.Sequential) error {
	params := net.Params()
	byName := make(map[string]*nn.Param, len(params))
	for _, p := range params {
		byName[p.Name] = p
	}
	// Validate everything before binding anything, so a mismatch leaves
	// the model unattached rather than half-wired.
	for _, l := range m.Layers {
		p, ok := byName[l.Name]
		if !ok {
			return fmt.Errorf("quant: no parameter named %q to attach", l.Name)
		}
		if p.Value.Len() != len(l.Q) {
			return fmt.Errorf("quant: layer %q has %d weights, parameter has %d",
				l.Name, len(l.Q), p.Value.Len())
		}
	}
	for _, l := range m.Layers {
		l.Param = byName[l.Name]
	}
	m.Net = net
	m.SyncAll()
	return nil
}

// Quantize converts every conv/linear weight of net to int8 symmetric
// quantization (scale = max|w|/127) and synchronizes the float weights to
// the quantization grid, so subsequent inference exactly reflects the int8
// storage.
func Quantize(net *nn.Sequential) *Model {
	m := &Model{Net: net}
	for _, p := range net.Params() {
		if !p.WeightDecay {
			continue // BN γ/β and biases are not weight-quantized
		}
		maxAbs := p.Value.MaxAbs()
		if maxAbs == 0 {
			maxAbs = 1
		}
		scale := maxAbs / QMax
		l := &Layer{Name: p.Name, Q: make([]int8, p.Value.Len()), Scale: scale, Param: p}
		for i, v := range p.Value.Data {
			q := int(math.Round(float64(v / scale)))
			if q > QMax {
				q = QMax
			}
			if q < -QMax-1 {
				q = -QMax - 1
			}
			l.Q[i] = int8(q)
		}
		m.Layers = append(m.Layers, l)
	}
	m.SyncAll()
	return m
}

// SyncAll writes the dequantized value of every stored int8 weight into the
// float parameters, making the network state match the (possibly attacked)
// DRAM image.
func (m *Model) SyncAll() {
	for _, l := range m.Layers {
		l.Sync()
	}
}

// Sync dequantizes this layer into its float parameter. Layers without a
// float side (pure DRAM images, e.g. model.SyntheticQuant) are left alone,
// so attacks and recovery work on them too.
func (l *Layer) Sync() {
	if l.Param == nil {
		return
	}
	for i, q := range l.Q {
		l.Param.Value.Data[i] = float32(q) * l.scaleAt(i)
	}
}

// SyncIndex dequantizes a single weight (cheap update after one bit flip).
// No-op on layers without a float parameter.
func (l *Layer) SyncIndex(i int) {
	if l.Param == nil {
		return
	}
	l.Param.Value.Data[i] = float32(l.Q[i]) * l.scaleAt(i)
}

// TotalWeights returns the total number of quantized weights in the model.
func (m *Model) TotalWeights() int {
	n := 0
	for _, l := range m.Layers {
		n += len(l.Q)
	}
	return n
}

// LayerByName returns the quantized layer with the given name, or nil.
func (m *Model) LayerByName(name string) *Layer {
	for _, l := range m.Layers {
		if l.Name == name {
			return l
		}
	}
	return nil
}

// Snapshot copies the current int8 image of every layer; Restore puts it
// back. Attacks use this to undo trial flips.
func (m *Model) Snapshot() [][]int8 {
	out := make([][]int8, len(m.Layers))
	for i, l := range m.Layers {
		out[i] = append([]int8(nil), l.Q...)
	}
	return out
}

// Restore reinstates a Snapshot and re-synchronizes the float weights.
func (m *Model) Restore(snap [][]int8) {
	if len(snap) != len(m.Layers) {
		panic("quant: snapshot layer count mismatch")
	}
	for i, l := range m.Layers {
		copy(l.Q, snap[i])
		m.notifyWrite(i)
	}
	m.SyncAll()
}

// BitAddress identifies one bit in the quantized model.
type BitAddress struct {
	// LayerIndex selects the quantized layer.
	LayerIndex int
	// WeightIndex selects the weight within the layer.
	WeightIndex int
	// Bit selects the bit (0 = LSB … 7 = MSB).
	Bit int
}

// String renders a bit address for logs and profiles.
func (a BitAddress) String() string {
	return fmt.Sprintf("L%d[%d].b%d", a.LayerIndex, a.WeightIndex, a.Bit)
}

// FlipBit toggles the addressed bit in the quantized storage and
// synchronizes the dequantized float weight. It returns the old and new
// quantized values.
func (m *Model) FlipBit(a BitAddress) (old, new int8) {
	l := m.Layers[a.LayerIndex]
	old = l.Q[a.WeightIndex]
	l.Q[a.WeightIndex] = FlipBit(old, a.Bit)
	l.SyncIndex(a.WeightIndex)
	m.notifyWrite(a.LayerIndex)
	return old, l.Q[a.WeightIndex]
}

// FlipBit toggles bit b (0..7) of a two's-complement int8 value.
func FlipBit(v int8, b int) int8 {
	return int8(uint8(v) ^ (1 << uint(b)))
}

// Bit reports bit b of the two's-complement encoding of v.
func Bit(v int8, b int) int {
	return int(uint8(v)>>uint(b)) & 1
}

// FlipDelta returns the signed change in quantized value caused by flipping
// bit b of v: +2^b when the bit is currently 0, −2^b when 1, except for the
// MSB whose place value is −128 in two's complement (so flipping MSB 0→1
// subtracts 128 and 1→0 adds 128).
func FlipDelta(v int8, b int) int {
	place := 1 << uint(b)
	if b == MSB {
		place = -128
	}
	if Bit(v, b) == 0 {
		return place
	}
	return -place
}
