package rowhammer

import (
	"testing"

	"radar/internal/attack"
	"radar/internal/core"
	"radar/internal/model"
	"radar/internal/quant"
)

func loadTiny(t testing.TB) *model.Bundle {
	t.Helper()
	return model.Load(model.TinySpec())
}

func TestLocationMappingIsInjective(t *testing.T) {
	b := loadTiny(t)
	d := New(b.QModel, DefaultGeometry(), 1)
	seen := map[Location]bool{}
	for li, l := range b.QModel.Layers {
		for wi := range l.Q {
			loc := d.LocationOf(quant.BitAddress{LayerIndex: li, WeightIndex: wi})
			if seen[loc] {
				t.Fatalf("duplicate location %v", loc)
			}
			seen[loc] = true
		}
	}
	if len(seen) != d.TotalBytes() {
		t.Fatalf("mapped %d locations, want %d", len(seen), d.TotalBytes())
	}
}

func TestFlipRequiresHammering(t *testing.T) {
	b := loadTiny(t)
	d := New(b.QModel, DefaultGeometry(), 1)
	a := quant.BitAddress{LayerIndex: 0, WeightIndex: 3, Bit: 7}
	before := b.QModel.Layers[0].Q[3]
	if d.TryFlip(a) {
		t.Fatal("flip must fail without hammering")
	}
	if b.QModel.Layers[0].Q[3] != before {
		t.Fatal("weight changed without a successful flip")
	}
	// Hammer only one aggressor: still no flip (double-sided required).
	up, down := d.AggressorRows(d.LocationOf(a))
	d.Activate(up, d.Geometry.HammerThreshold)
	if d.TryFlip(a) {
		t.Fatal("single-sided hammering must not flip")
	}
	d.Activate(down, d.Geometry.HammerThreshold)
	if !d.TryFlip(a) {
		t.Fatal("double-sided hammering past threshold must flip")
	}
	if b.QModel.Layers[0].Q[3] != quant.FlipBit(before, 7) {
		t.Fatal("flip not applied to weight storage")
	}
}

func TestRefreshClearsDisturbance(t *testing.T) {
	b := loadTiny(t)
	d := New(b.QModel, DefaultGeometry(), 1)
	a := quant.BitAddress{LayerIndex: 1, WeightIndex: 0, Bit: 7}
	up, down := d.AggressorRows(d.LocationOf(a))
	d.Activate(up, d.Geometry.HammerThreshold)
	d.Activate(down, d.Geometry.HammerThreshold)
	d.Refresh()
	if d.TryFlip(a) {
		t.Fatal("refresh must reset hammer counts")
	}
}

func TestMountProfileFlipsAllBits(t *testing.T) {
	b := loadTiny(t)
	d := New(b.QModel, DefaultGeometry(), 1)
	profile := []quant.BitAddress{
		{LayerIndex: 0, WeightIndex: 1, Bit: 7},
		{LayerIndex: 2, WeightIndex: 10, Bit: 7},
		{LayerIndex: 3, WeightIndex: 5, Bit: 6},
	}
	snap := b.QModel.Snapshot()
	if n := d.MountProfile(profile); n != len(profile) {
		t.Fatalf("mounted %d of %d flips", n, len(profile))
	}
	for _, a := range profile {
		want := quant.FlipBit(snap[a.LayerIndex][a.WeightIndex], a.Bit)
		if got := b.QModel.Layers[a.LayerIndex].Q[a.WeightIndex]; got != want {
			t.Fatalf("bit %v not flipped in storage", a)
		}
	}
	if len(d.FlipLog) != len(profile) {
		t.Fatalf("flip log has %d entries", len(d.FlipLog))
	}
}

func TestProbabilisticFlips(t *testing.T) {
	b := loadTiny(t)
	geo := DefaultGeometry()
	geo.FlipProbability = 0 // never succeeds
	d := New(b.QModel, geo, 1)
	a := quant.BitAddress{LayerIndex: 0, WeightIndex: 0, Bit: 7}
	up, down := d.AggressorRows(d.LocationOf(a))
	d.Activate(up, geo.HammerThreshold)
	d.Activate(down, geo.HammerThreshold)
	if d.TryFlip(a) {
		t.Fatal("flip with probability 0 must fail")
	}
}

// TestEndToEndRowhammerPBFARADAR is the §III integration test: PBFA derives
// a profile offline; rowhammer mounts it on the DRAM copy at "run time";
// RADAR's scan detects the corrupted groups and recovery restores accuracy.
func TestEndToEndRowhammerPBFARADAR(t *testing.T) {
	// Offline phase: attacker computes the vulnerable-bit profile on its
	// own copy of the model.
	atkCopy := loadTiny(t)
	cfg := attack.DefaultConfig(99)
	cfg.NumFlips = 8
	profile := attack.PBFA(atkCopy.QModel, atkCopy.Attack, cfg)

	// Victim system: protected model in DRAM.
	victim := loadTiny(t)
	clean := model.Evaluate(victim.Net, victim.Test, 100)
	prot := core.Protect(victim.QModel, core.DefaultConfig(16))
	dram := New(victim.QModel, DefaultGeometry(), 2)

	// Run-time phase: mount the profile through rowhammer.
	if n := dram.MountProfile(profile.Addresses()); n != len(profile) {
		t.Fatalf("rowhammer mounted %d of %d bits", n, len(profile))
	}
	attacked := model.Evaluate(victim.Net, victim.Test, 100)

	// Detection + recovery.
	// The tiny model's PBFA profile mixes in bit-6 flips and repeated flips
	// of one weight, which a 2-bit signature legitimately misses part of
	// the time; the paper-level detection statistics (≈9.5/10) are
	// verified by the Figure 4 experiment on the scaled models. Here we
	// require that the scan catches a solid share and never false-alarms.
	flagged, _ := prot.DetectAndRecover()
	detected := prot.CountDetected(profile.Addresses(), flagged)
	if detected*2 < len(profile) {
		t.Fatalf("detected only %d of %d rowhammer flips", detected, len(profile))
	}
	if len(flagged) == 0 {
		t.Fatal("no groups flagged")
	}
	// On the tiny 4-class model a zeroed group is a large fraction of the
	// classifier, so zero-out recovery trades corruption for erasure and
	// the net accuracy gain can be ~0; the paper-scale recovery gains are
	// demonstrated on the scaled ResNets by the Table III experiment
	// (internal/exp). Here we assert recovery never makes things worse and
	// that the model still functions.
	recovered := model.Evaluate(victim.Net, victim.Test, 100)
	if recovered < attacked-0.05 {
		t.Fatalf("recovery hurt accuracy: clean %.3f attacked %.3f recovered %.3f",
			clean, attacked, recovered)
	}
}
