// Package rowhammer simulates the hardware half of the paper's threat
// model (§III, Fig 1): a DRAM main memory holding the model's quantized
// weights, and an attacker who induces bit flips in victim rows by
// repeatedly activating aggressor rows. The simulator maps every quantized
// weight to a (bank, row, column) location, tracks per-row activation
// counts, and flips victim bits once the hammer count crosses a threshold —
// delivering exactly the "attacker can flip chosen DRAM bits at run time"
// capability the paper assumes, so integration tests can mount PBFA
// profiles mid-inference.
package rowhammer

import (
	"fmt"
	"math/rand"

	"radar/internal/quant"
)

// Geometry describes the simulated DRAM organization.
type Geometry struct {
	// Banks is the number of banks.
	Banks int
	// RowBytes is the row (page) size in bytes.
	RowBytes int
	// HammerThreshold is the aggressor activation count at which victim
	// bits begin to flip (real DDR3/DDR4 parts: tens to hundreds of
	// thousands; the default is scaled down so tests run quickly).
	HammerThreshold int
	// FlipProbability is the per-targeted-bit success probability once the
	// threshold is reached (real rowhammer is probabilistic; profiles are
	// built from repeatable flip locations).
	FlipProbability float64
}

// DefaultGeometry returns a DDR3-like organization with an 8 KB row.
func DefaultGeometry() Geometry {
	return Geometry{Banks: 8, RowBytes: 8192, HammerThreshold: 50_000, FlipProbability: 1.0}
}

// Location is a physical DRAM coordinate of one weight byte.
type Location struct {
	// Bank, Row and Col identify the byte.
	Bank, Row, Col int
}

// String renders the location.
func (l Location) String() string {
	return fmt.Sprintf("bank%d/row%d/col%d", l.Bank, l.Row, l.Col)
}

// DRAM is the simulated main memory holding a quantized model image.
type DRAM struct {
	// Geometry echoes the configuration.
	Geometry Geometry
	// Model is the weight image stored in this DRAM.
	Model *quant.Model

	// layerBase[i] is the flat byte offset of layer i.
	layerBase []int
	totalSize int
	// activations counts row activations per (bank,row) key.
	activations map[[2]int]int
	rng         *rand.Rand
	// FlipLog records every induced flip.
	FlipLog []quant.BitAddress
}

// New places the model's quantized layers contiguously into the simulated
// DRAM, row-major across banks (bank interleaving at row granularity).
func New(m *quant.Model, geo Geometry, seed int64) *DRAM {
	d := &DRAM{
		Geometry:    geo,
		Model:       m,
		activations: make(map[[2]int]int),
		rng:         rand.New(rand.NewSource(seed)),
	}
	off := 0
	for _, l := range m.Layers {
		d.layerBase = append(d.layerBase, off)
		off += len(l.Q)
	}
	d.totalSize = off
	return d
}

// LocationOf maps a weight to its DRAM coordinates.
func (d *DRAM) LocationOf(a quant.BitAddress) Location {
	flat := d.layerBase[a.LayerIndex] + a.WeightIndex
	rowGlobal := flat / d.Geometry.RowBytes
	return Location{
		Bank: rowGlobal % d.Geometry.Banks,
		Row:  rowGlobal / d.Geometry.Banks,
		Col:  flat % d.Geometry.RowBytes,
	}
}

// AggressorRows returns the two rows the attacker hammers to disturb the
// victim row of the given location (classic double-sided rowhammer).
func (d *DRAM) AggressorRows(victim Location) (above, below Location) {
	above = Location{Bank: victim.Bank, Row: victim.Row - 1}
	below = Location{Bank: victim.Bank, Row: victim.Row + 1}
	return above, below
}

// Activate records n activations of a row (the attacker's hammering reads).
func (d *DRAM) Activate(loc Location, n int) {
	d.activations[[2]int{loc.Bank, loc.Row}] += n
}

// HammerCount returns accumulated activations of a row.
func (d *DRAM) HammerCount(loc Location) int {
	return d.activations[[2]int{loc.Bank, loc.Row}]
}

// TryFlip attempts to flip the addressed bit: it succeeds only when both
// aggressor rows of the victim have crossed the hammer threshold, and then
// only with the configured probability. It reports whether the flip
// landed.
func (d *DRAM) TryFlip(a quant.BitAddress) bool {
	victim := d.LocationOf(a)
	up, down := d.AggressorRows(victim)
	if d.HammerCount(up) < d.Geometry.HammerThreshold ||
		d.HammerCount(down) < d.Geometry.HammerThreshold {
		return false
	}
	if d.rng.Float64() > d.Geometry.FlipProbability {
		return false
	}
	d.Model.FlipBit(a)
	d.FlipLog = append(d.FlipLog, a)
	return true
}

// MountProfile performs the full §III attack sequence for a PBFA-derived
// bit profile: for each vulnerable bit, hammer both aggressor rows past
// the threshold and flip. It returns the number of bits actually flipped.
func (d *DRAM) MountProfile(addrs []quant.BitAddress) int {
	flipped := 0
	for _, a := range addrs {
		victim := d.LocationOf(a)
		up, down := d.AggressorRows(victim)
		d.Activate(up, d.Geometry.HammerThreshold)
		d.Activate(down, d.Geometry.HammerThreshold)
		if d.TryFlip(a) {
			flipped++
		}
	}
	return flipped
}

// Refresh clears all accumulated activations (DRAM refresh resets the
// disturbance state; a real attacker must hammer within a refresh window).
func (d *DRAM) Refresh() {
	d.activations = make(map[[2]int]int)
}

// TotalBytes returns the size of the stored weight image.
func (d *DRAM) TotalBytes() int { return d.totalSize }
