package ecc

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestTableCRCMatchesBitSerial(t *testing.T) {
	tables := []*TableCRC{NewTableCRC(CRC7), NewTableCRC(CRC10), NewTableCRC(CRC13)}
	f := func(data []byte) bool {
		for _, tab := range tables {
			if tab.Compute(data) != tab.CRC.Compute(data) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestTableCRCInt8MatchesBitSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	tab := NewTableCRC(CRC13)
	for trial := 0; trial < 50; trial++ {
		q := make([]int8, 512)
		for i := range q {
			q[i] = int8(rng.Intn(256) - 128)
		}
		if tab.ComputeInt8(q) != CRC13.ComputeInt8(q) {
			t.Fatal("table-driven CRC disagrees with bit-serial reference")
		}
	}
}

func TestTableCRCEmptyInput(t *testing.T) {
	tab := NewTableCRC(CRC7)
	if tab.Compute(nil) != CRC7.Compute(nil) {
		t.Fatal("empty-input mismatch")
	}
}

func TestHammingCorrectSingleLocatesBit(t *testing.T) {
	h := NewHamming(64)
	rng := rand.New(rand.NewSource(2))
	data := make([]uint8, 64)
	for i := range data {
		data[i] = uint8(rng.Intn(2))
	}
	stored := h.Encode(data)
	for i := 0; i < 64; i++ {
		c := append([]uint8(nil), data...)
		c[i] ^= 1
		pos := h.CorrectSingle(stored, h.Encode(c))
		if pos == 0 {
			t.Fatalf("single error at data bit %d not correctable", i)
		}
		if got := h.DataIndexOf(pos); got != i {
			t.Fatalf("correction points at data bit %d, want %d", got, i)
		}
	}
}

func TestHammingCorrectSingleRefusesDouble(t *testing.T) {
	h := NewHamming(64)
	rng := rand.New(rand.NewSource(3))
	data := make([]uint8, 64)
	stored := h.Encode(data)
	for trial := 0; trial < 200; trial++ {
		i, j := rng.Intn(64), rng.Intn(64)
		if i == j {
			continue
		}
		c := append([]uint8(nil), data...)
		c[i] ^= 1
		c[j] ^= 1
		if pos := h.CorrectSingle(stored, h.Encode(c)); pos != 0 {
			t.Fatalf("double error at %d,%d mis-corrected to position %d", i, j, pos)
		}
	}
}

func TestDataIndexOfParityPositions(t *testing.T) {
	h := NewHamming(64)
	for _, p := range []int{1, 2, 4, 8, 16, 32, 64} {
		if h.DataIndexOf(p) != -1 {
			t.Fatalf("position %d is a parity bit, not data", p)
		}
	}
	// Position 3 is the first data bit, position 5 the second, 6 the third.
	if h.DataIndexOf(3) != 0 || h.DataIndexOf(5) != 1 || h.DataIndexOf(6) != 2 {
		t.Fatal("data index mapping wrong")
	}
	if h.DataIndexOf(0) != -1 || h.DataIndexOf(-4) != -1 {
		t.Fatal("non-positive positions must map to -1")
	}
}

func BenchmarkTableCRC13(b *testing.B) {
	tab := NewTableCRC(CRC13)
	q := make([]int8, 4096)
	for i := range q {
		q[i] = int8(i)
	}
	b.SetBytes(int64(len(q)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tab.ComputeInt8(q)
	}
}

func BenchmarkBitSerialCRC13(b *testing.B) {
	q := make([]int8, 4096)
	for i := range q {
		q[i] = int8(i)
	}
	b.SetBytes(int64(len(q)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		CRC13.ComputeInt8(q)
	}
}
