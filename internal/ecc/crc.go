// Package ecc implements the error-detection baselines the paper compares
// RADAR against (§VII.B, Table V): cyclic redundancy checks, Hamming
// SEC-DED codes, and simple parity. These are generic data-integrity codes;
// the comparison point is their much larger storage and time overhead for
// the same group sizes.
package ecc

import "fmt"

// CRC is a w-bit cyclic redundancy check computed MSB-first bit-serially —
// the formulation whose per-bit shift/XOR cost underlies the Table V
// hardware cost model.
type CRC struct {
	// Width is the CRC width in bits (7, 10, 13, ...).
	Width int
	// Poly is the generator polynomial in "normal" form: the low Width
	// coefficient bits with the x^Width term implicit.
	Poly uint32
	name string
}

// The polynomials below are primitive, so each code has period 2^w−1 and
// guarantees detection of all 1- and 2-bit errors (HD ≥ 3) for block
// lengths up to that period — covering the paper's 64-bit (G=8) and
// 4096-bit (G=512) groups. Primitivity is verified by TestCRCPeriods.
var (
	// CRC7 (x⁷+x³+1) protects 64-bit blocks — the G=8 row of Table V.
	CRC7 = CRC{Width: 7, Poly: 0x09, name: "CRC-7"}
	// CRC10 (x¹⁰+x³+1) protects the 512 MSBs of a G=512 group — the
	// paper's "if only the MSBs were to be protected" option.
	CRC10 = CRC{Width: 10, Poly: 0x009, name: "CRC-10"}
	// CRC13 (x¹³+x⁴+x³+x+1) protects 4096-bit blocks — the G=512 row.
	CRC13 = CRC{Width: 13, Poly: 0x001B, name: "CRC-13"}
)

// Name returns the human-readable code name.
func (c CRC) Name() string { return c.name }

// mask returns the Width-bit register mask.
func (c CRC) mask() uint32 { return (uint32(1) << uint(c.Width)) - 1 }

// ComputeBits returns the CRC of a bit stream delivered MSB-first as a
// slice of 0/1 values.
func (c CRC) ComputeBits(bits []uint8) uint32 {
	var reg uint32
	topShift := uint(c.Width - 1)
	m := c.mask()
	for _, in := range bits {
		fb := (reg>>topShift)&1 ^ uint32(in&1)
		reg = (reg << 1) & m
		if fb == 1 {
			reg ^= c.Poly
		}
	}
	return reg
}

// Compute returns the CRC of data bytes, MSB-first within each byte.
func (c CRC) Compute(data []byte) uint32 {
	var reg uint32
	topShift := uint(c.Width - 1)
	m := c.mask()
	for _, b := range data {
		for bit := 7; bit >= 0; bit-- {
			fb := (reg>>topShift)&1 ^ uint32(b>>uint(bit))&1
			reg = (reg << 1) & m
			if fb == 1 {
				reg ^= c.Poly
			}
		}
	}
	return reg
}

// ComputeInt8 adapts Compute to quantized weight groups.
func (c CRC) ComputeInt8(q []int8) uint32 {
	buf := make([]byte, len(q))
	for i, v := range q {
		buf[i] = byte(v)
	}
	return c.Compute(buf)
}

// ComputeMSBs computes the CRC over only the MSB of each weight — the
// reduced-coverage variant the paper prices as CRC-10.
func (c CRC) ComputeMSBs(q []int8) uint32 {
	bits := make([]uint8, len(q))
	for i, v := range q {
		bits[i] = uint8(v) >> 7
	}
	return c.ComputeBits(bits)
}

// Detects reports whether the CRC of corrupted differs from that of
// original — i.e. whether the code detects the corruption.
func (c CRC) Detects(original, corrupted []int8) bool {
	return c.ComputeInt8(original) != c.ComputeInt8(corrupted)
}

// Period returns the multiplicative order of x modulo the generator — the
// maximum total block length (data+CRC) with guaranteed 2-bit error
// detection. For a primitive polynomial this is 2^Width − 1.
func (c CRC) Period() int {
	// Track reg = x^k mod g(x) until it returns to 1.
	m := c.mask()
	topShift := uint(c.Width - 1)
	reg := uint32(2) & m // x
	for k := 1; k <= 1<<uint(c.Width); k++ {
		if reg == 1 {
			return k
		}
		fb := (reg >> topShift) & 1
		reg = (reg << 1) & m
		if fb == 1 {
			reg ^= c.Poly
		}
	}
	return -1
}

// String implements fmt.Stringer.
func (c CRC) String() string {
	return fmt.Sprintf("%s(poly=0x%X)", c.name, c.Poly)
}
