package ecc

// TableCRC is a byte-at-a-time (256-entry table) implementation of the
// same codes as the bit-serial CRC — the standard software optimization.
// It exists for two reasons: it cross-validates the bit-serial reference
// (they must agree on every input), and it quantifies how much of Table
// V's CRC time cost is implementation- rather than algorithm-inherent
// (roughly 8×; the storage disadvantage is untouched either way).
type TableCRC struct {
	// CRC is the underlying code definition.
	CRC CRC
	tab [256]uint32
}

// NewTableCRC precomputes the lookup table for a code.
func NewTableCRC(c CRC) *TableCRC {
	t := &TableCRC{CRC: c}
	w := uint(c.Width)
	top := uint32(1) << (w - 1)
	mask := (uint32(1) << w) - 1
	for b := 0; b < 256; b++ {
		// Process one input byte through the shift register. Align the
		// byte with the register top (for widths < 8 the register cycles
		// faster than the byte, handled by shifting bit by bit).
		reg := uint32(0)
		for bit := 7; bit >= 0; bit-- {
			fb := (reg>>(w-1))&1 ^ uint32(b>>uint(bit))&1
			reg = (reg << 1) & mask
			if fb == 1 {
				reg ^= c.Poly
			}
		}
		t.tab[b] = reg & mask
		_ = top
	}
	return t
}

// Compute returns the CRC of data, matching CRC.Compute exactly.
func (t *TableCRC) Compute(data []byte) uint32 {
	w := uint(t.CRC.Width)
	mask := (uint32(1) << w) - 1
	var reg uint32
	if t.CRC.Width >= 8 {
		for _, b := range data {
			idx := uint8(reg>>(w-8)) ^ b
			reg = ((reg << 8) & mask) ^ t.tab[idx]
		}
		return reg & mask
	}
	// For widths < 8, the table still maps "register state advanced by one
	// byte", but the whole register fits in the top byte: fold the current
	// register into the incoming byte.
	for _, b := range data {
		idx := uint8(reg<<(8-w)) ^ b
		reg = t.tab[idx]
	}
	return reg & mask
}

// ComputeInt8 adapts Compute to weight groups.
func (t *TableCRC) ComputeInt8(q []int8) uint32 {
	buf := make([]byte, len(q))
	for i, v := range q {
		buf[i] = byte(v)
	}
	return t.Compute(buf)
}

// CorrectSingle attempts single-bit error correction with a SEC-DED
// Hamming code: given the stored and freshly computed check words, it
// returns the codeword position (1-based, parity positions included) of
// the flipped bit, or 0 when the difference is not a correctable single
// error. Callers translate the position back to a data-bit index with
// DataIndexOf.
func (h Hamming) CorrectSingle(stored, fresh uint32) int {
	if h.Classify(stored, fresh) != 1 {
		return 0
	}
	synDiff := int((stored >> 1) ^ (fresh >> 1))
	return synDiff // syndrome difference IS the codeword position
}

// DataIndexOf converts a codeword position to a data-bit index, or -1 for
// parity positions.
func (h Hamming) DataIndexOf(codewordPos int) int {
	if codewordPos <= 0 {
		return -1
	}
	if codewordPos&(codewordPos-1) == 0 {
		return -1 // power of two → parity bit
	}
	// Count non-power-of-two positions below codewordPos.
	idx := 0
	for p := 1; p < codewordPos; p++ {
		if p&(p-1) != 0 {
			idx++
		}
	}
	return idx
}
