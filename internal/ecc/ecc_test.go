package ecc

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCRCPeriods(t *testing.T) {
	// All three polynomials must be primitive: period = 2^w − 1. This is
	// what guarantees HD ≥ 3 (all 1- and 2-bit errors detected) out to the
	// paper's block lengths.
	cases := []struct {
		c    CRC
		want int
	}{
		{CRC7, 127},
		{CRC10, 1023},
		{CRC13, 8191},
	}
	for _, c := range cases {
		if got := c.c.Period(); got != c.want {
			t.Errorf("%s period = %d, want %d", c.c.Name(), got, c.want)
		}
	}
}

func TestCRC7DetectsAllSingleAndDoubleBitErrors64(t *testing.T) {
	// Exhaustive over a 64-bit (8-weight) block: every 1-bit and 2-bit
	// corruption must change the CRC-7.
	rng := rand.New(rand.NewSource(1))
	orig := make([]int8, 8)
	for i := range orig {
		orig[i] = int8(rng.Intn(256) - 128)
	}
	base := CRC7.ComputeInt8(orig)
	nbits := len(orig) * 8
	flip := func(q []int8, bit int) {
		q[bit/8] = int8(uint8(q[bit/8]) ^ (1 << uint(7-bit%8)))
	}
	for i := 0; i < nbits; i++ {
		c := append([]int8(nil), orig...)
		flip(c, i)
		if CRC7.ComputeInt8(c) == base {
			t.Fatalf("CRC-7 missed single-bit error at %d", i)
		}
		for j := i + 1; j < nbits; j++ {
			c2 := append([]int8(nil), c...)
			flip(c2, j)
			if CRC7.ComputeInt8(c2) == base {
				t.Fatalf("CRC-7 missed double-bit error at %d,%d", i, j)
			}
		}
	}
}

func TestCRC13DetectsSampledDoubleErrors4096(t *testing.T) {
	// Sampled double-bit errors over a 512-weight (4096-bit) block.
	rng := rand.New(rand.NewSource(2))
	orig := make([]int8, 512)
	for i := range orig {
		orig[i] = int8(rng.Intn(256) - 128)
	}
	base := CRC13.ComputeInt8(orig)
	nbits := len(orig) * 8
	flip := func(q []int8, bit int) {
		q[bit/8] = int8(uint8(q[bit/8]) ^ (1 << uint(7-bit%8)))
	}
	for trial := 0; trial < 3000; trial++ {
		i, j := rng.Intn(nbits), rng.Intn(nbits)
		if i == j {
			continue
		}
		c := append([]int8(nil), orig...)
		flip(c, i)
		flip(c, j)
		if CRC13.ComputeInt8(c) == base {
			t.Fatalf("CRC-13 missed double-bit error at %d,%d", i, j)
		}
	}
}

func TestCRCDeterministicAndDataDependent(t *testing.T) {
	a := []int8{1, 2, 3, 4}
	b := []int8{1, 2, 3, 5}
	if CRC7.ComputeInt8(a) != CRC7.ComputeInt8(a) {
		t.Fatal("CRC not deterministic")
	}
	if CRC7.ComputeInt8(a) == CRC7.ComputeInt8(b) {
		t.Fatal("CRC collision on trivially different data")
	}
}

func TestCRCWidthMask(t *testing.T) {
	f := func(data []byte) bool {
		if len(data) == 0 {
			return true
		}
		for _, c := range []CRC{CRC7, CRC10, CRC13} {
			if c.Compute(data)>>uint(c.Width) != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCRCComputeMSBs(t *testing.T) {
	// Only MSB changes must affect the MSB-stream CRC.
	q := make([]int8, 512)
	base := CRC10.ComputeMSBs(q)
	q[100] = 63 // MSB still 0
	if CRC10.ComputeMSBs(q) != base {
		t.Fatal("non-MSB change altered MSB-stream CRC")
	}
	q[100] = -1 // MSB 1
	if CRC10.ComputeMSBs(q) == base {
		t.Fatal("MSB change not reflected in MSB-stream CRC")
	}
}

func TestCRCDetectsHelper(t *testing.T) {
	orig := []int8{5, -3, 100, 0, 1, 2, 3, 4}
	corr := append([]int8(nil), orig...)
	corr[2] = int8(uint8(corr[2]) ^ 0x80)
	if !CRC7.Detects(orig, corr) {
		t.Fatal("Detects returned false for real corruption")
	}
	if CRC7.Detects(orig, orig) {
		t.Fatal("Detects returned true for identical data")
	}
}

func TestHammingSizing(t *testing.T) {
	// Paper §VII.B: 64 bits need 7 (+1 SEC-DED) check bits; 4096 need 13 (+1).
	if h := NewHamming(64); h.ParityBits != 7 || h.CheckBits() != 8 {
		t.Fatalf("Hamming(64): r=%d", h.ParityBits)
	}
	if h := NewHamming(4096); h.ParityBits != 13 || h.CheckBits() != 14 {
		t.Fatalf("Hamming(4096): r=%d", h.ParityBits)
	}
}

func TestHammingClassifySingleVsDouble(t *testing.T) {
	h := NewHamming(64)
	rng := rand.New(rand.NewSource(3))
	data := make([]uint8, 64)
	for i := range data {
		data[i] = uint8(rng.Intn(2))
	}
	stored := h.Encode(data)

	// Single-bit error → class 1 for every position.
	for i := 0; i < 64; i++ {
		c := append([]uint8(nil), data...)
		c[i] ^= 1
		if got := h.Classify(stored, h.Encode(c)); got != 1 {
			t.Fatalf("single error at %d classified %d", i, got)
		}
	}
	// Double-bit errors → class 2 (sampled).
	for trial := 0; trial < 500; trial++ {
		i, j := rng.Intn(64), rng.Intn(64)
		if i == j {
			continue
		}
		c := append([]uint8(nil), data...)
		c[i] ^= 1
		c[j] ^= 1
		if got := h.Classify(stored, h.Encode(c)); got != 2 {
			t.Fatalf("double error at %d,%d classified %d", i, j, got)
		}
	}
	// No error → class 0.
	if h.Classify(stored, h.Encode(data)) != 0 {
		t.Fatal("clean data classified as error")
	}
}

func TestHammingDetectsInt8MSBs(t *testing.T) {
	h := NewHamming(16)
	orig := make([]int8, 16)
	corr := append([]int8(nil), orig...)
	corr[3] = int8(uint8(corr[3]) ^ 0x80)
	if !h.DetectsInt8MSBs(orig, corr) {
		t.Fatal("MSB flip not detected")
	}
	if h.DetectsInt8MSBs(orig, orig) {
		t.Fatal("false positive")
	}
}

func TestHammingPanicsOnWrongLength(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewHamming(8).Syndrome(make([]uint8, 9))
}

func TestParityDetectsOddMSBFlips(t *testing.T) {
	p := Parity{}
	orig := []int8{1, -2, 3, -4}
	c1 := append([]int8(nil), orig...)
	c1[0] = int8(uint8(c1[0]) ^ 0x80)
	if !p.Detects(orig, c1) {
		t.Fatal("parity missed single MSB flip")
	}
	// Two MSB flips cancel — the weakness that motivates RADAR's S_A.
	c2 := append([]int8(nil), c1...)
	c2[1] = int8(uint8(c2[1]) ^ 0x80)
	if p.Detects(orig, c2) {
		t.Fatal("parity should be blind to double MSB flips")
	}
}

func TestParityIgnoresNonMSBBits(t *testing.T) {
	p := Parity{}
	orig := []int8{0, 0, 0}
	c := []int8{63, 12, 7} // MSBs all still 0
	if p.Detects(orig, c) {
		t.Fatal("parity must only cover MSBs")
	}
}
