package ecc

import "math/bits"

// Hamming implements a SEC-DED (single-error-correct, double-error-detect)
// extended Hamming code over arbitrary-length bit blocks: r parity bits
// where 2^r ≥ data+r+1, plus one overall parity bit. For the paper's
// comparison: 64 data bits need 7+1 bits, 4096 data bits need 13+1.
type Hamming struct {
	// DataBits is the protected block length in bits.
	DataBits int
	// ParityBits is r, excluding the overall parity bit.
	ParityBits int
}

// NewHamming sizes a SEC-DED code for the given data length.
func NewHamming(dataBits int) Hamming {
	r := 0
	for (1 << uint(r)) < dataBits+r+1 {
		r++
	}
	return Hamming{DataBits: dataBits, ParityBits: r}
}

// CheckBits returns the total stored check bits (r + overall parity).
func (h Hamming) CheckBits() int { return h.ParityBits + 1 }

// Syndrome computes the Hamming syndrome and overall parity of a bit
// block laid out in the standard scheme (data bits occupy non-power-of-two
// codeword positions).
func (h Hamming) Syndrome(data []uint8) (syndrome uint32, parity uint8) {
	if len(data) != h.DataBits {
		panic("ecc: data length mismatch")
	}
	pos := 1
	di := 0
	for di < len(data) {
		if pos&(pos-1) == 0 { // parity position
			pos++
			continue
		}
		if data[di]&1 == 1 {
			syndrome ^= uint32(pos)
			parity ^= 1
		}
		pos++
		di++
	}
	return syndrome, parity
}

// Encode returns the check word for a data block: syndrome bits plus the
// overall parity of data and syndrome.
func (h Hamming) Encode(data []uint8) uint32 {
	syn, par := h.Syndrome(data)
	// Overall parity covers data and parity bits; fold syndrome parity in.
	par ^= uint8(bits.OnesCount32(syn) & 1)
	return syn<<1 | uint32(par)
}

// Classify compares stored and recomputed check words and reports the
// error class for the corruption between them: 0 = no error, 1 = single
// (correctable), 2 = double (detectable, uncorrectable).
//
// In the standard SEC-DED decision: overall-parity mismatch → odd number
// of errors (single if syndrome nonzero or parity-bit error); parity match
// with nonzero syndrome difference → double error.
func (h Hamming) Classify(stored, fresh uint32) int {
	if stored == fresh {
		return 0
	}
	synDiff := (stored >> 1) ^ (fresh >> 1)
	parDiff := (stored ^ fresh) & 1
	// Recover the pure data parity difference: Encode folded syndrome
	// parity into the stored parity bit, so undo it.
	parDiff ^= uint32(bits.OnesCount32(synDiff) & 1)
	if parDiff == 1 {
		return 1
	}
	if synDiff != 0 {
		return 2
	}
	return 1 // parity-bit-only change
}

// DetectsInt8MSBs applies the code to the MSB stream of a weight group and
// reports whether corruption is detected (class > 0).
func (h Hamming) DetectsInt8MSBs(original, corrupted []int8) bool {
	toBits := func(q []int8) []uint8 {
		b := make([]uint8, len(q))
		for i, v := range q {
			b[i] = uint8(v) >> 7
		}
		return b
	}
	return h.Classify(h.Encode(toBits(original)), h.Encode(toBits(corrupted))) > 0
}

// Parity is the 1-bit even-parity baseline over a bit block.
type Parity struct{}

// Compute returns the even parity of the MSBs of a weight group.
func (Parity) Compute(q []int8) uint8 {
	var p uint8
	for _, v := range q {
		p ^= uint8(v) >> 7
	}
	return p & 1
}

// Detects reports whether MSB parity differs between the two blocks.
func (p Parity) Detects(original, corrupted []int8) bool {
	return p.Compute(original) != p.Compute(corrupted)
}
