package fleet

import (
	"encoding/json"
	"io"
	"net/http"
	"time"
)

// ReplicaReport is one replica's slice of a fleet admin operation.
type ReplicaReport struct {
	Replica string `json:"replica"`
	Status  int    `json:"status,omitempty"`
	// Body is the replica's raw JSON answer (the serve admin/model
	// response), embedded verbatim.
	Body json.RawMessage `json:"body,omitempty"`
	Err  string          `json:"error,omitempty"`
}

// AdminResponse answers the fleet admin routes with per-replica results.
type AdminResponse struct {
	Op       string          `json:"op"`
	Replicas []ReplicaReport `json:"replicas"`
}

// broadcast replays a buffered admin request against every configured
// replica in order (not just the in-ring ones: hosted model sets must
// stay identical across the fleet, so a drained replica still receives
// membership changes). Admin work runs without the per-attempt deadline —
// a fleet-wide scrub legitimately takes as long as the models are large.
// Failures are reported per replica, never fatal to the whole operation;
// a replica that missed a broadcast while ejected is repaired by the
// readmission reconciler.
func (f *Fleet) broadcast(r *http.Request, path string, body []byte) []ReplicaReport {
	out := make([]ReplicaReport, 0, len(f.order))
	for _, base := range f.order {
		rep := ReplicaReport{Replica: base}
		resp, err := f.sendSlow(r, base, path, body)
		if err != nil {
			rep.Err = err.Error()
			out = append(out, rep)
			continue
		}
		raw, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		rep.Status = resp.StatusCode
		if err != nil {
			rep.Err = err.Error()
		} else if json.Valid(raw) {
			rep.Body = json.RawMessage(raw)
		}
		out = append(out, rep)
	}
	return out
}

// handleBroadcastAdmin fans POST /v1/admin/scrub out to every replica —
// a fleet-wide scrub sweep with one merged report.
func (f *Fleet) handleBroadcastAdmin(w http.ResponseWriter, r *http.Request) {
	body, ok := f.readBody(w, r)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, AdminResponse{
		Op:       "scrub",
		Replicas: f.broadcast(r, r.URL.Path, body),
	})
}

// handleBroadcastModel fans a hot model add/remove out to every replica,
// keeping the fleet's hosted sets identical — a model the ring can route
// anywhere must exist everywhere. The operation also updates the fleet's
// hosted-set intent: a replica that was unreachable for the broadcast is
// diffed against the intent and repaired when the prober readmits it.
func (f *Fleet) handleBroadcastModel(w http.ResponseWriter, r *http.Request) {
	body, ok := f.readBody(w, r)
	if !ok {
		return
	}
	op := "add-model"
	if r.Method == http.MethodDelete {
		op = "remove-model"
	}
	reports := f.broadcast(r, r.URL.Path, body)
	f.recordModelIntent(r.Method, r.PathValue("name"), body, reports)
	writeJSON(w, http.StatusOK, AdminResponse{
		Op:       op,
		Replicas: reports,
	})
}

// handleRollingRekey is the fleet's zero-downtime POST /v1/admin/rekey:
// replicas rekey one at a time, each drained off the ring first so its
// models remap to the surviving owners, then readmitted once its new
// golden signatures are in place. Traffic keeps flowing throughout —
// the exclusive window of each per-replica rekey is only ever behind a
// replica the ring is not routing to.
func (f *Fleet) handleRollingRekey(w http.ResponseWriter, r *http.Request) {
	body, ok := f.readBody(w, r)
	if !ok {
		return
	}
	f.rekeyMu.Lock()
	defer f.rekeyMu.Unlock()
	rekeyStart := time.Now()
	defer func() { f.met.rekeySeconds.Observe(time.Since(rekeyStart).Seconds()) }()
	out := make([]ReplicaReport, 0, len(f.order))
	for _, base := range f.order {
		rep := ReplicaReport{Replica: base}
		f.drain(base)
		// Let requests already routed at the replica finish before its
		// rekey takes the write-exclusive window.
		select {
		case <-time.After(f.cfg.DrainWait):
		case <-r.Context().Done():
			f.undrain(base)
			http.Error(w, r.Context().Err().Error(), http.StatusServiceUnavailable)
			return
		}
		resp, err := f.sendSlow(r, base, "/v1/admin/rekey", body)
		if err != nil {
			rep.Err = err.Error()
		} else {
			raw, rerr := io.ReadAll(resp.Body)
			resp.Body.Close()
			rep.Status = resp.StatusCode
			if rerr != nil {
				rep.Err = rerr.Error()
			} else if json.Valid(raw) {
				rep.Body = json.RawMessage(raw)
			}
		}
		f.undrain(base)
		out = append(out, rep)
	}
	writeJSON(w, http.StatusOK, AdminResponse{Op: "rolling-rekey", Replicas: out})
}
