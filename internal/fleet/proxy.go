package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"

	"radar/internal/obs"
	"radar/internal/serve"
)

// Handler returns the fleet's HTTP front-end. The data-plane routes
// mirror a single replica's /v1 surface exactly — clients cannot tell a
// fleet from one radar-serve — plus GET /v1/fleet for the router's view:
//
//	POST   /v1/models/{model}/infer  — routed by ring owner, retried on failover
//	POST   /v1/models/{model}/jobs   — routed by owner; job pinned to it
//	GET    /v1/jobs/{id}             — sticky: answered by the minting replica
//	DELETE /v1/jobs/{id}             — sticky cancel
//	GET    /v1/models                — merged listing with per-model owners
//	GET    /v1/models/{model}        — routed by owner
//	POST   /v1/admin/scrub           — broadcast to every in-ring replica
//	POST   /v1/admin/rekey           — zero-downtime rolling rekey
//	POST   /v1/admin/models/{name}   — broadcast hot-add
//	DELETE /v1/admin/models/{name}   — broadcast hot-remove
//	GET    /v1/fleet                 — replica health, ring membership
//	GET    /v1/metrics               — router series + replica-labelled scrape
//	GET    /v1/debug/traces          — merged per-stage traces, fleet-wide
func (f *Fleet) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/models/{model}/infer", f.handleInfer)
	mux.HandleFunc("POST /v1/models/{model}/jobs", f.handleSubmitJob)
	mux.HandleFunc("GET /v1/jobs/{id}", f.handleJob)
	mux.HandleFunc("DELETE /v1/jobs/{id}", f.handleJob)
	mux.HandleFunc("GET /v1/models", f.handleModels)
	mux.HandleFunc("GET /v1/models/{model}", f.handleModel)
	mux.HandleFunc("POST /v1/admin/scrub", f.handleBroadcastAdmin)
	mux.HandleFunc("POST /v1/admin/rekey", f.handleRollingRekey)
	mux.HandleFunc("POST /v1/admin/models/{name}", f.handleBroadcastModel)
	mux.HandleFunc("DELETE /v1/admin/models/{name}", f.handleBroadcastModel)
	mux.HandleFunc("GET /v1/fleet", f.handleFleet)
	mux.HandleFunc("GET /v1/metrics", f.handleMetrics)
	mux.HandleFunc("GET /v1/debug/traces", f.handleTraces)
	// The router originates the request id when the client sent none, so
	// every hop — router log, replica trace, response header — shares one
	// id; the per-route counter reads the matched pattern after dispatch.
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := r.Header.Get(serve.RequestIDHeader)
		if id == "" {
			id = obs.NewRequestID()
			r.Header.Set(serve.RequestIDHeader, id)
		}
		w.Header().Set(serve.RequestIDHeader, id)
		mux.ServeHTTP(w, r)
		route := r.Pattern
		if route == "" {
			route = "unmatched"
		}
		f.met.requests.With(route).Inc()
	})
}

// readBody buffers the request body so it can be replayed on failover.
func readBody(r *http.Request) ([]byte, error) {
	defer r.Body.Close()
	return io.ReadAll(r.Body)
}

// clientGone reports whether a client.Do failure was caused by the
// inbound request's own context — the client hung up or timed out — not
// by the replica. The proxied request runs under r.Context(), so such
// failures say nothing about replica health: they must not eject it, and
// replaying against another owner would fail with the same dead context.
func clientGone(r *http.Request, err error) bool {
	return r.Context().Err() != nil ||
		errors.Is(err, context.Canceled) ||
		errors.Is(err, context.DeadlineExceeded)
}

// send replays one buffered request against a replica. A genuine
// transport error (dial refused, connection reset) ejects the replica
// immediately and is returned for the caller's failover decision; a
// failure the client itself caused (see clientGone) leaves the replica's
// health untouched. Any HTTP response — success or error status — is a
// backend verdict and is returned as-is.
func (f *Fleet) send(r *http.Request, base, path string, body []byte) (*http.Response, error) {
	req, err := http.NewRequestWithContext(r.Context(), r.Method, base+path, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	if ct := r.Header.Get("Content-Type"); ct != "" {
		req.Header.Set("Content-Type", ct)
	}
	if id := r.Header.Get(serve.RequestIDHeader); id != "" {
		req.Header.Set(serve.RequestIDHeader, id)
	}
	resp, err := f.client.Do(req)
	if err != nil {
		if !clientGone(r, err) {
			f.noteTransportFailure(base, err)
		}
		return nil, err
	}
	return resp, nil
}

// relay copies a backend response to the client verbatim.
func relay(w http.ResponseWriter, resp *http.Response) {
	defer resp.Body.Close()
	for _, h := range []string{"Content-Type", "Retry-After"} {
		if v := resp.Header.Get(h); v != "" {
			w.Header().Set(h, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	io.Copy(w, resp.Body)
}

// handleInfer routes a sync inference by its model's ring owner. Sync
// inference is idempotent (pure read of the weight image), so a replica
// that fails at the transport level is ejected and the request replays
// against the next distinct owner — and a replica that sheds with 429
// (its bounded queue is full) keeps its ring slot but the request also
// moves on to the next owner, spreading the overload instead of bouncing
// it back to the client. Only when every candidate is down does the
// client see 502; when every candidate shed, the client gets the final
// 429 with its Retry-After.
func (f *Fleet) handleInfer(w http.ResponseWriter, r *http.Request) {
	model := r.PathValue("model")
	body, err := readBody(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	owners := f.ring.Owners(model, len(f.replicas))
	if len(owners) == 0 {
		http.Error(w, "fleet: no healthy replicas", http.StatusServiceUnavailable)
		return
	}
	var lastErr error
	var shedResp *http.Response
	for i, base := range owners {
		resp, err := f.send(r, base, r.URL.Path, body)
		if err != nil {
			if clientGone(r, err) {
				// Nobody is reading the answer, and the remaining owners
				// would fail with the same dead context.
				if shedResp != nil {
					shedResp.Body.Close()
				}
				return
			}
			lastErr = err
			if i < len(owners)-1 {
				f.met.failovers.Inc()
				f.met.retries.Inc()
			}
			continue
		}
		if resp.StatusCode == http.StatusTooManyRequests && i < len(owners)-1 {
			// Queue-full shed: hold the verdict in case everyone sheds,
			// then try the next owner.
			if shedResp != nil {
				shedResp.Body.Close()
			}
			shedResp = resp
			f.met.shedFailovers.Inc()
			f.met.retries.Inc()
			continue
		}
		if shedResp != nil {
			shedResp.Body.Close()
		}
		relay(w, resp)
		return
	}
	if shedResp != nil {
		relay(w, shedResp)
		return
	}
	http.Error(w, fmt.Sprintf("fleet: all candidate replicas failed: %v", lastErr),
		http.StatusBadGateway)
}

// handleSubmitJob routes an async submit by ring owner and pins the
// accepted job to the replica that minted its ID. Submission is not
// idempotent (an accepted job holds a table slot), so there is no
// failover replay — a transport error answers 502 and the client
// resubmits.
func (f *Fleet) handleSubmitJob(w http.ResponseWriter, r *http.Request) {
	model := r.PathValue("model")
	body, err := readBody(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	base := f.ring.Lookup(model)
	if base == "" {
		http.Error(w, "fleet: no healthy replicas", http.StatusServiceUnavailable)
		return
	}
	resp, err := f.send(r, base, r.URL.Path, body)
	if err != nil {
		http.Error(w, fmt.Sprintf("fleet: replica %s: %v", base, err), http.StatusBadGateway)
		return
	}
	defer resp.Body.Close()
	respBody, err := io.ReadAll(resp.Body)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadGateway)
		return
	}
	if resp.StatusCode == http.StatusAccepted {
		var ref serve.JobRef
		if err := json.Unmarshal(respBody, &ref); err == nil && ref.ID != "" {
			f.jobs.Store(string(ref.ID), base)
		}
	}
	for _, h := range []string{"Content-Type", "Retry-After"} {
		if v := resp.Header.Get(h); v != "" {
			w.Header().Set(h, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	w.Write(respBody)
}

// handleJob answers polls and cancels through the sticky job map: only
// the replica that minted an ID can answer for it. A terminal DELETE (or
// a 404 from the backend — the job expired) drops the pin.
func (f *Fleet) handleJob(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	v, ok := f.jobs.Load(id)
	if !ok {
		http.Error(w, "fleet: unknown job "+id, http.StatusNotFound)
		return
	}
	base := v.(string)
	resp, err := f.send(r, base, r.URL.Path, nil)
	if err != nil {
		// Drop the pin only when the replica itself failed — it is gone
		// and the job with it. A poll the client abandoned says nothing
		// about the job, which is still alive on the replica and must
		// stay reachable for the next poll.
		if !clientGone(r, err) {
			f.jobs.Delete(id)
		}
		http.Error(w, fmt.Sprintf("fleet: replica %s lost with job %s: %v", base, id, err),
			http.StatusBadGateway)
		return
	}
	if r.Method == http.MethodDelete || resp.StatusCode == http.StatusNotFound {
		f.jobs.Delete(id)
	}
	relay(w, resp)
}

// ModelEntry is one model in the fleet's merged listing: the owning
// replica's view plus the ownership itself.
type ModelEntry struct {
	serve.ModelInfo
	Owner string `json:"owner"`
}

// ModelsResponse is the fleet's GET /v1/models body: one entry per model
// (as served by its ring owner) and the job tables summed across
// replicas.
type ModelsResponse struct {
	Models []ModelEntry        `json:"models"`
	Jobs   serve.JobTableStats `json:"jobs"`
}

// handleModels merges the listing across in-ring replicas. Each model
// appears once, described by its ring owner (the replica whose metrics
// actually reflect the traffic the fleet routed); replicas that fail the
// fan-out are skipped — the prober will eject them. When members exist
// but none answered, the client gets 502, not a 200 that would be
// indistinguishable from a genuinely empty fleet.
func (f *Fleet) handleModels(w http.ResponseWriter, r *http.Request) {
	members := f.ring.Members()
	if len(members) == 0 {
		http.Error(w, "fleet: no healthy replicas", http.StatusServiceUnavailable)
		return
	}
	var (
		merged   ModelsResponse
		seen     = make(map[string]int) // model name → index in merged.Models
		answered int
	)
	for _, base := range members {
		resp, err := f.send(r, base, "/v1/models", nil)
		if err != nil {
			if clientGone(r, err) {
				return
			}
			continue
		}
		var one serve.ModelsResponse
		err = json.NewDecoder(resp.Body).Decode(&one)
		resp.Body.Close()
		if err != nil || resp.StatusCode != http.StatusOK {
			continue
		}
		answered++
		merged.Jobs.Active += one.Jobs.Active
		merged.Jobs.Submitted += one.Jobs.Submitted
		merged.Jobs.Capacity += one.Jobs.Capacity
		for _, mi := range one.Models {
			owner := f.ring.Lookup(mi.Name)
			entry := ModelEntry{ModelInfo: mi, Owner: owner}
			if i, dup := seen[mi.Name]; dup {
				if owner == base {
					merged.Models[i] = entry
				}
				continue
			}
			seen[mi.Name] = len(merged.Models)
			merged.Models = append(merged.Models, entry)
		}
	}
	if answered == 0 {
		http.Error(w, "fleet: no in-ring replica answered the listing fan-out",
			http.StatusBadGateway)
		return
	}
	writeJSON(w, http.StatusOK, merged)
}

// handleModel routes one model's info request by ring owner, with the
// same idempotent failover as sync inference.
func (f *Fleet) handleModel(w http.ResponseWriter, r *http.Request) {
	model := r.PathValue("model")
	owners := f.ring.Owners(model, len(f.replicas))
	if len(owners) == 0 {
		http.Error(w, "fleet: no healthy replicas", http.StatusServiceUnavailable)
		return
	}
	var lastErr error
	for _, base := range owners {
		resp, err := f.send(r, base, r.URL.Path, nil)
		if err != nil {
			if clientGone(r, err) {
				return
			}
			lastErr = err
			continue
		}
		relay(w, resp)
		return
	}
	http.Error(w, fmt.Sprintf("fleet: all candidate replicas failed: %v", lastErr),
		http.StatusBadGateway)
}

// FleetStatus is the GET /v1/fleet body.
type FleetStatus struct {
	Replicas []ReplicaStatus `json:"replicas"`
	// InRing is how many replicas currently take traffic.
	InRing int `json:"in_ring"`
	// TrackedJobs is the sticky job map's size.
	TrackedJobs int `json:"tracked_jobs"`
}

func (f *Fleet) handleFleet(w http.ResponseWriter, r *http.Request) {
	st := FleetStatus{Replicas: f.statuses(), InRing: len(f.ring.Members())}
	f.jobs.Range(func(any, any) bool { st.TrackedJobs++; return true })
	writeJSON(w, http.StatusOK, st)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}
