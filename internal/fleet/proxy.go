package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"time"

	"radar/internal/obs"
	"radar/internal/serve"
)

// Handler returns the fleet's HTTP front-end. The data-plane routes
// mirror a single replica's /v1 surface exactly — clients cannot tell a
// fleet from one radar-serve — plus GET /v1/fleet for the router's view:
//
//	POST   /v1/models/{model}/infer  — routed by ring owner, retried on failover
//	POST   /v1/models/{model}/jobs   — routed by owner; job pinned to it
//	GET    /v1/jobs/{id}             — sticky: answered by the minting replica
//	DELETE /v1/jobs/{id}             — sticky cancel
//	GET    /v1/models                — merged listing with per-model owners
//	GET    /v1/models/{model}        — routed by owner
//	POST   /v1/admin/scrub           — broadcast to every in-ring replica
//	POST   /v1/admin/rekey           — zero-downtime rolling rekey
//	POST   /v1/admin/models/{name}   — broadcast hot-add
//	DELETE /v1/admin/models/{name}   — broadcast hot-remove
//	GET    /v1/fleet                 — replica health, ring membership
//	GET    /v1/metrics               — router series + replica-labelled scrape
//	GET    /v1/debug/traces          — merged per-stage traces, fleet-wide
func (f *Fleet) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/models/{model}/infer", f.handleInfer)
	mux.HandleFunc("POST /v1/models/{model}/jobs", f.handleSubmitJob)
	mux.HandleFunc("GET /v1/jobs/{id}", f.handleJob)
	mux.HandleFunc("DELETE /v1/jobs/{id}", f.handleJob)
	mux.HandleFunc("GET /v1/models", f.handleModels)
	mux.HandleFunc("GET /v1/models/{model}", f.handleModel)
	mux.HandleFunc("POST /v1/admin/scrub", f.handleBroadcastAdmin)
	mux.HandleFunc("POST /v1/admin/rekey", f.handleRollingRekey)
	mux.HandleFunc("POST /v1/admin/models/{name}", f.handleBroadcastModel)
	mux.HandleFunc("DELETE /v1/admin/models/{name}", f.handleBroadcastModel)
	mux.HandleFunc("GET /v1/fleet", f.handleFleet)
	mux.HandleFunc("GET /v1/metrics", f.handleMetrics)
	mux.HandleFunc("GET /v1/debug/traces", f.handleTraces)
	// The router originates the request id when the client sent none, so
	// every hop — router log, replica trace, response header — shares one
	// id; the per-route counter reads the matched pattern after dispatch.
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := r.Header.Get(serve.RequestIDHeader)
		if id == "" {
			id = obs.NewRequestID()
			r.Header.Set(serve.RequestIDHeader, id)
		}
		w.Header().Set(serve.RequestIDHeader, id)
		mux.ServeHTTP(w, r)
		route := r.Pattern
		if route == "" {
			route = "unmatched"
		}
		f.met.requests.With(route).Inc()
	})
}

// readBody buffers the request body so it can be replayed on failover,
// capped at Config.MaxBodyBytes — an unbounded client body would be held
// in router memory for the whole retry loop. On overflow the client gets
// 413 and the handler must return; other read errors answer 400.
func (f *Fleet) readBody(w http.ResponseWriter, r *http.Request) ([]byte, bool) {
	defer r.Body.Close()
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, f.cfg.MaxBodyBytes))
	if err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			http.Error(w, fmt.Sprintf("fleet: request body exceeds %d bytes", f.cfg.MaxBodyBytes),
				http.StatusRequestEntityTooLarge)
		} else {
			http.Error(w, err.Error(), http.StatusBadRequest)
		}
		return nil, false
	}
	return body, true
}

// clientGone reports whether a client.Do failure was caused by the
// inbound request's own context — the client hung up or timed out — not
// by the replica. Such failures say nothing about replica health: they
// must not eject it, and replaying against another owner would fail with
// the same dead context. An attempt-deadline expiry is NOT client-gone:
// the client is still waiting, the replica is just too slow.
func clientGone(r *http.Request, err error) bool {
	return r.Context().Err() != nil || errors.Is(err, context.Canceled)
}

// attemptTimedOut reports whether the failure was the per-attempt
// deadline expiring while the client's own context was still live — the
// signature of a gray failure: the replica accepted the connection and
// then stalled.
func attemptTimedOut(r *http.Request, err error) bool {
	return r.Context().Err() == nil && errors.Is(err, context.DeadlineExceeded)
}

// cancelBody ties a per-attempt context to the response body's lifetime:
// the attempt deadline covers headers and body, and the context is
// released when the caller finishes reading.
type cancelBody struct {
	io.ReadCloser
	cancel context.CancelFunc
}

func (b cancelBody) Close() error {
	err := b.ReadCloser.Close()
	b.cancel()
	return err
}

// send replays one buffered request against a replica under
// min(client deadline, AttemptTimeout). A genuine transport error (dial
// refused, connection reset) ejects the replica immediately; an attempt
// timeout with the client still live is the same verdict with a "slow"
// cause — both are returned for the caller's failover decision and
// recorded against the replica's shed window. A failure the client
// itself caused (see clientGone) leaves the replica untouched. Any HTTP
// response — success or error status — is a backend verdict returned
// as-is; its body read stays bounded by the attempt deadline.
func (f *Fleet) send(r *http.Request, base, path string, body []byte) (*http.Response, error) {
	ctx := r.Context()
	cancel := context.CancelFunc(func() {})
	if f.cfg.AttemptTimeout > 0 {
		ctx, cancel = context.WithTimeout(ctx, f.cfg.AttemptTimeout)
	}
	resp, err := f.sendCtx(ctx, r, base, path, body)
	if err != nil {
		cancel()
		switch {
		case clientGone(r, err):
			// Nobody is reading the answer; not a replica verdict.
		case attemptTimedOut(r, err):
			f.met.attemptTimeouts.With(f.hostOf(base)).Inc()
			f.recordOutcome(base, true)
			f.noteTransportFailure(base, fmt.Errorf("slow: attempt exceeded %v: %w", f.cfg.AttemptTimeout, err))
		default:
			f.recordOutcome(base, true)
			f.noteTransportFailure(base, err)
		}
		return nil, err
	}
	resp.Body = cancelBody{ReadCloser: resp.Body, cancel: cancel}
	return resp, nil
}

// sendSlow is send without the attempt deadline — the admin plane's
// variant. Scrubs and rekeys legitimately run for as long as the model is
// large; only the client's own deadline bounds them.
func (f *Fleet) sendSlow(r *http.Request, base, path string, body []byte) (*http.Response, error) {
	resp, err := f.sendCtx(r.Context(), r, base, path, body)
	if err != nil && !clientGone(r, err) {
		f.noteTransportFailure(base, err)
	}
	return resp, err
}

// sendCtx issues one proxied request under ctx, copying the relevant
// inbound headers.
func (f *Fleet) sendCtx(ctx context.Context, r *http.Request, base, path string, body []byte) (*http.Response, error) {
	req, err := http.NewRequestWithContext(ctx, r.Method, base+path, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	if ct := r.Header.Get("Content-Type"); ct != "" {
		req.Header.Set("Content-Type", ct)
	}
	if id := r.Header.Get(serve.RequestIDHeader); id != "" {
		req.Header.Set(serve.RequestIDHeader, id)
	}
	return f.client.Do(req)
}

// hostOf maps a replica base URL to its host:port metric label.
func (f *Fleet) hostOf(base string) string {
	if r, ok := f.replicas[base]; ok {
		return r.host
	}
	return base
}

// backoff sleeps the full-jitter exponential backoff for replay n
// (0-based): rand(0, min(BackoffMax, BackoffBase<<n)). Returns false if
// the client's context died during the wait — the failover loop should
// stop, nobody is listening.
func (f *Fleet) backoff(r *http.Request, n int) bool {
	ceil := f.cfg.BackoffBase << n
	if ceil > f.cfg.BackoffMax || ceil <= 0 {
		ceil = f.cfg.BackoffMax
	}
	d := time.Duration(rand.Int63n(int64(ceil) + 1))
	if d == 0 {
		return r.Context().Err() == nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-r.Context().Done():
		return false
	}
}

// heldResponse is a backend verdict drained into memory so the failover
// loop can keep trying other owners and still relay the original verdict
// if every candidate fails the same way. Draining matters: a live
// response body dies with its attempt context, which may expire while
// later attempts run.
type heldResponse struct {
	status     int
	contentTyp string
	retryAfter string
	body       []byte
}

// holdResponse drains up to 64 KiB of a response into a heldResponse and
// closes it.
func holdResponse(resp *http.Response) *heldResponse {
	defer resp.Body.Close()
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 64<<10))
	return &heldResponse{
		status:     resp.StatusCode,
		contentTyp: resp.Header.Get("Content-Type"),
		retryAfter: resp.Header.Get("Retry-After"),
		body:       body,
	}
}

func (h *heldResponse) relay(w http.ResponseWriter) {
	if h.contentTyp != "" {
		w.Header().Set("Content-Type", h.contentTyp)
	}
	if h.retryAfter != "" {
		w.Header().Set("Retry-After", h.retryAfter)
	}
	w.WriteHeader(h.status)
	w.Write(h.body)
}

// relay copies a backend response to the client verbatim.
func relay(w http.ResponseWriter, resp *http.Response) {
	defer resp.Body.Close()
	for _, h := range []string{"Content-Type", "Retry-After"} {
		if v := resp.Header.Get(h); v != "" {
			w.Header().Set(h, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	io.Copy(w, resp.Body)
}

// failoverOwners returns a request's candidate replicas: the ring's
// distinct-owner order for the key, truncated to the retry budget (the
// first owner plus at most RetryBudget replays). When ejections leave
// the ring too thin to fill that budget, off-ring replicas pad the list
// as last-resort backstops — panic routing. An ejected replica is a
// health *estimate*, and when the estimate says most of the fleet is
// dead it is more likely lagging a burst of gray-failure verdicts than
// right; attempting anyway converts a guaranteed failure into a likely
// success, and a replica that really is down just fails its bounded
// attempt like any other failover. Admin-drained replicas are never
// candidates (they are mid-rekey on purpose); soft-drained ones are —
// overloaded beats unavailable.
func (f *Fleet) failoverOwners(key string) []string {
	max := f.cfg.RetryBudget + 1
	owners := f.ring.Owners(key, len(f.replicas))
	if len(owners) > max {
		return owners[:max]
	}
	if len(owners) == len(f.replicas) {
		return owners
	}
	if len(owners) == 0 {
		f.met.panicRoutes.Inc()
	}
	inRing := make(map[string]bool, len(owners))
	for _, base := range owners {
		inRing[base] = true
	}
	for _, base := range f.order {
		if len(owners) >= max {
			break
		}
		if inRing[base] {
			continue
		}
		r := f.replicas[base]
		r.mu.Lock()
		held := r.draining
		r.mu.Unlock()
		if !held {
			owners = append(owners, base)
		}
	}
	return owners
}

// handleInfer routes a sync inference by its model's ring owner. Sync
// inference is idempotent (pure read of the weight image), so failover is
// always safe, and three verdicts move the request to the next distinct
// owner within the retry budget, with full-jitter backoff between
// attempts:
//
//   - a transport failure or attempt timeout — the replica is ejected
//     (the timeout as a "slow" verdict) and the request replays;
//   - a 429 queue-full shed — the replica keeps its ring slot but the
//     request spreads to the next owner;
//   - a 5xx — a gray verdict (chaos faults, mid-crash errors); the
//     request replays and the outcome feeds the soft-drain window.
//
// The first held verdict is relayed only when every candidate failed;
// only when every candidate is down at the transport level does the
// client see 502.
func (f *Fleet) handleInfer(w http.ResponseWriter, r *http.Request) {
	model := r.PathValue("model")
	body, ok := f.readBody(w, r)
	if !ok {
		return
	}
	owners := f.failoverOwners(model)
	if len(owners) == 0 {
		http.Error(w, "fleet: no healthy replicas", http.StatusServiceUnavailable)
		return
	}
	var lastErr error
	var held *heldResponse
	for i, base := range owners {
		if i > 0 && !f.backoff(r, i-1) {
			return
		}
		resp, err := f.send(r, base, r.URL.Path, body)
		if err != nil {
			if clientGone(r, err) {
				return
			}
			lastErr = err
			if i < len(owners)-1 {
				f.met.failovers.Inc()
				f.met.retries.Inc()
			}
			continue
		}
		switch {
		case resp.StatusCode == http.StatusTooManyRequests && i < len(owners)-1:
			// Queue-full shed: hold the verdict in case everyone sheds,
			// then spread to the next owner.
			held = holdResponse(resp)
			f.recordOutcome(base, true)
			f.met.shedFailovers.Inc()
			f.met.retries.Inc()
			continue
		case resp.StatusCode >= http.StatusInternalServerError && i < len(owners)-1:
			// 5xx: a gray backend verdict — retry elsewhere, remember it.
			held = holdResponse(resp)
			f.recordOutcome(base, true)
			f.met.errFailovers.Inc()
			f.met.retries.Inc()
			continue
		}
		f.recordOutcome(base, resp.StatusCode == http.StatusTooManyRequests ||
			resp.StatusCode >= http.StatusInternalServerError)
		relay(w, resp)
		return
	}
	if held != nil {
		held.relay(w)
		return
	}
	http.Error(w, fmt.Sprintf("fleet: all candidate replicas failed: %v", lastErr),
		http.StatusBadGateway)
}

// handleSubmitJob routes an async submit by ring owner and pins the
// accepted job to the replica that minted its ID. Submission is not
// idempotent in general — an accepted job holds a table slot — so a
// transport error or attempt timeout answers 502 and the client
// resubmits (the job may or may not have been accepted; only the client
// can decide to retry). A 429 queue-full shed is the one provably-safe
// failover: the replica answered without taking a slot, so the submit
// moves to the next ring owner like a shed sync infer.
func (f *Fleet) handleSubmitJob(w http.ResponseWriter, r *http.Request) {
	model := r.PathValue("model")
	body, ok := f.readBody(w, r)
	if !ok {
		return
	}
	owners := f.failoverOwners(model)
	if len(owners) == 0 {
		http.Error(w, "fleet: no healthy replicas", http.StatusServiceUnavailable)
		return
	}
	var held *heldResponse
	for i, base := range owners {
		if i > 0 && !f.backoff(r, i-1) {
			return
		}
		resp, err := f.send(r, base, r.URL.Path, body)
		if err != nil {
			if clientGone(r, err) {
				return
			}
			// Ambiguous: the job may hold a slot on the replica. No replay.
			http.Error(w, fmt.Sprintf("fleet: replica %s: %v", base, err), http.StatusBadGateway)
			return
		}
		if resp.StatusCode == http.StatusTooManyRequests && i < len(owners)-1 {
			held = holdResponse(resp)
			f.recordOutcome(base, true)
			f.met.shedFailovers.Inc()
			f.met.retries.Inc()
			continue
		}
		f.recordOutcome(base, resp.StatusCode == http.StatusTooManyRequests)
		f.relaySubmit(w, resp, base)
		return
	}
	// Unreachable unless the loop was exhausted by sheds (the last owner
	// never continues), but keep the verdict path total.
	if held != nil {
		held.relay(w)
		return
	}
	http.Error(w, "fleet: no candidate accepted the submit", http.StatusServiceUnavailable)
}

// relaySubmit relays a submit verdict, pinning an accepted job to the
// replica that minted it.
func (f *Fleet) relaySubmit(w http.ResponseWriter, resp *http.Response, base string) {
	defer resp.Body.Close()
	respBody, err := io.ReadAll(resp.Body)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadGateway)
		return
	}
	if resp.StatusCode == http.StatusAccepted {
		var ref serve.JobRef
		if err := json.Unmarshal(respBody, &ref); err == nil && ref.ID != "" {
			f.jobs.Store(string(ref.ID), base)
		}
	}
	for _, h := range []string{"Content-Type", "Retry-After"} {
		if v := resp.Header.Get(h); v != "" {
			w.Header().Set(h, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	w.Write(respBody)
}

// handleJob answers polls and cancels through the sticky job map: only
// the replica that minted an ID can answer for it. A terminal DELETE (or
// a 404 from the backend — the job expired) drops the pin. Soft-drained
// replicas stay reachable here — the pin routes by base URL, not by the
// ring.
func (f *Fleet) handleJob(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	v, ok := f.jobs.Load(id)
	if !ok {
		http.Error(w, "fleet: unknown job "+id, http.StatusNotFound)
		return
	}
	base := v.(string)
	resp, err := f.send(r, base, r.URL.Path, nil)
	if err != nil {
		// Drop the pin only when the replica itself failed — it is gone
		// and the job with it. A poll the client abandoned says nothing
		// about the job; neither does an attempt timeout (the replica is
		// slow, not gone, and the job may finish once it recovers) — in
		// both cases the pin stays so the next poll can reach it.
		if !clientGone(r, err) && !attemptTimedOut(r, err) {
			f.jobs.Delete(id)
		}
		http.Error(w, fmt.Sprintf("fleet: replica %s lost with job %s: %v", base, id, err),
			http.StatusBadGateway)
		return
	}
	if r.Method == http.MethodDelete || resp.StatusCode == http.StatusNotFound {
		f.jobs.Delete(id)
	}
	relay(w, resp)
}

// ModelEntry is one model in the fleet's merged listing: the owning
// replica's view plus the ownership itself.
type ModelEntry struct {
	serve.ModelInfo
	Owner string `json:"owner"`
}

// ModelsResponse is the fleet's GET /v1/models body: one entry per model
// (as served by its ring owner) and the job tables summed across
// replicas.
type ModelsResponse struct {
	Models []ModelEntry        `json:"models"`
	Jobs   serve.JobTableStats `json:"jobs"`
}

// handleModels merges the listing across in-ring replicas. Each model
// appears once, described by its ring owner (the replica whose metrics
// actually reflect the traffic the fleet routed); replicas that fail the
// fan-out are skipped — the prober will eject them. When members exist
// but none answered, the client gets 502, not a 200 that would be
// indistinguishable from a genuinely empty fleet.
func (f *Fleet) handleModels(w http.ResponseWriter, r *http.Request) {
	members := f.ring.Members()
	if len(members) == 0 {
		http.Error(w, "fleet: no healthy replicas", http.StatusServiceUnavailable)
		return
	}
	var (
		merged   ModelsResponse
		seen     = make(map[string]int) // model name → index in merged.Models
		answered int
	)
	for _, base := range members {
		resp, err := f.send(r, base, "/v1/models", nil)
		if err != nil {
			if clientGone(r, err) {
				return
			}
			continue
		}
		var one serve.ModelsResponse
		err = json.NewDecoder(resp.Body).Decode(&one)
		resp.Body.Close()
		if err != nil || resp.StatusCode != http.StatusOK {
			continue
		}
		answered++
		merged.Jobs.Active += one.Jobs.Active
		merged.Jobs.Submitted += one.Jobs.Submitted
		merged.Jobs.Capacity += one.Jobs.Capacity
		for _, mi := range one.Models {
			owner := f.ring.Lookup(mi.Name)
			entry := ModelEntry{ModelInfo: mi, Owner: owner}
			if i, dup := seen[mi.Name]; dup {
				if owner == base {
					merged.Models[i] = entry
				}
				continue
			}
			seen[mi.Name] = len(merged.Models)
			merged.Models = append(merged.Models, entry)
		}
	}
	if answered == 0 {
		http.Error(w, "fleet: no in-ring replica answered the listing fan-out",
			http.StatusBadGateway)
		return
	}
	writeJSON(w, http.StatusOK, merged)
}

// handleModel routes one model's info request by ring owner, with the
// same idempotent failover as sync inference (transport errors, attempt
// timeouts and 5xx all move to the next owner).
func (f *Fleet) handleModel(w http.ResponseWriter, r *http.Request) {
	model := r.PathValue("model")
	owners := f.failoverOwners(model)
	if len(owners) == 0 {
		http.Error(w, "fleet: no healthy replicas", http.StatusServiceUnavailable)
		return
	}
	var lastErr error
	var held *heldResponse
	for i, base := range owners {
		if i > 0 && !f.backoff(r, i-1) {
			return
		}
		resp, err := f.send(r, base, r.URL.Path, nil)
		if err != nil {
			if clientGone(r, err) {
				return
			}
			lastErr = err
			continue
		}
		if resp.StatusCode >= http.StatusInternalServerError && i < len(owners)-1 {
			held = holdResponse(resp)
			continue
		}
		relay(w, resp)
		return
	}
	if held != nil {
		held.relay(w)
		return
	}
	http.Error(w, fmt.Sprintf("fleet: all candidate replicas failed: %v", lastErr),
		http.StatusBadGateway)
}

// FleetStatus is the GET /v1/fleet body.
type FleetStatus struct {
	Replicas []ReplicaStatus `json:"replicas"`
	// InRing is how many replicas currently take traffic.
	InRing int `json:"in_ring"`
	// TrackedJobs is the sticky job map's size.
	TrackedJobs int `json:"tracked_jobs"`
}

func (f *Fleet) handleFleet(w http.ResponseWriter, r *http.Request) {
	st := FleetStatus{Replicas: f.statuses(), InRing: len(f.ring.Members())}
	f.jobs.Range(func(any, any) bool { st.TrackedJobs++; return true })
	writeJSON(w, http.StatusOK, st)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}
