// Package fleet is the horizontal scaling layer over internal/serve: an
// HTTP front-end that consistent-hashes model names onto a set of
// radar-serve replica base URLs and proxies the full /v1 surface.
//
// Topology: every replica hosts the same model set (radar-serve -model
// flags or the fleet's broadcast hot-add), and the ring decides which
// replica answers for which model. Sync inference and async job submits
// route by model name; job polls and cancels route by the sticky
// job→replica map recorded at submit time (job IDs carry a per-replica
// instance tag, so they never collide). GET /v1/models merges the
// listing across healthy replicas and annotates each model with its
// current owner.
//
// Health: a background prober hits each replica's GET /v1/models on an
// interval; FailThreshold consecutive failures eject the replica from
// the ring (its models remap to the next owners), a later success
// readmits it. A transport error during proxying ejects immediately —
// the prober readmits once the replica answers again.
//
// Admin: POST /v1/admin/rekey is a zero-downtime rolling rekey — each
// replica in turn is drained off the ring, waits DrainWait for in-flight
// requests, rekeys, and is readmitted — and /v1/admin/models/{name}
// broadcasts hot add/remove to every replica so membership changes keep
// the hosted sets identical. GET /v1/fleet reports the router's view.
package fleet

import (
	"errors"
	"fmt"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"radar/internal/obs"
)

// Config tunes a Fleet.
type Config struct {
	// Replicas are the radar-serve base URLs (e.g. http://10.0.0.1:8080).
	// At least one is required.
	Replicas []string
	// VNodes is the ring's virtual-node count per replica (default 64).
	VNodes int
	// HealthInterval is the probe period (default 1s).
	HealthInterval time.Duration
	// HealthTimeout bounds one probe request (default 2s).
	HealthTimeout time.Duration
	// FailThreshold is how many consecutive probe failures eject a
	// replica (default 2). Proxy-side transport errors eject immediately.
	FailThreshold int
	// DrainWait is how long a rolling rekey waits after taking a replica
	// off the ring before rekeying it, letting in-flight requests finish
	// (default 500ms).
	DrainWait time.Duration
	// AttemptTimeout bounds one proxied data-plane attempt — headers and
	// body — at min(client deadline, AttemptTimeout). An attempt that
	// times out while the client's own context is still live is a replica
	// verdict: the replica is ejected as slow and the request fails over,
	// so a hung backend costs one bounded attempt instead of the whole
	// request. Default 10s; negative disables. Admin broadcasts (scrub,
	// rekey) are exempt — they legitimately run long.
	AttemptTimeout time.Duration
	// RetryBudget caps failover replays per request beyond the first
	// attempt (default 3). The ring's distinct-owner order already bounds
	// attempts at the replica count; the budget tightens that on large
	// fleets so one request cannot sweep every replica.
	RetryBudget int
	// BackoffBase / BackoffMax shape the full-jitter backoff slept
	// between failover attempts: attempt n waits rand(0, min(BackoffMax,
	// BackoffBase<<n)). Defaults 10ms / 500ms.
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// MaxBodyBytes caps the client request body the router buffers for
	// failover replay; beyond it the client gets 413 (default 8 MiB).
	MaxBodyBytes int64
	// ShedWindow is the span of the per-replica sliding window that
	// tracks shed/error outcomes (429s, attempt timeouts, 5xx) against
	// total attempts (default 10s).
	ShedWindow time.Duration
	// ShedRate is the bad-outcome fraction over ShedWindow beyond which a
	// replica is soft-drained — weighted out of new sync traffic while
	// sticky jobs stay reachable — once at least ShedMinSamples attempts
	// are in the window (defaults 0.5 and 20). It is readmitted when the
	// window clears. A soft drain never empties the ring.
	ShedRate       float64
	ShedMinSamples int
	// Client is the proxying HTTP client (default: http.DefaultTransport
	// with no overall timeout — inference requests own their deadlines).
	Client *http.Client
}

func (c *Config) fillDefaults() {
	if c.VNodes <= 0 {
		c.VNodes = 64
	}
	if c.HealthInterval <= 0 {
		c.HealthInterval = time.Second
	}
	if c.HealthTimeout <= 0 {
		c.HealthTimeout = 2 * time.Second
	}
	if c.FailThreshold <= 0 {
		c.FailThreshold = 2
	}
	if c.DrainWait <= 0 {
		c.DrainWait = 500 * time.Millisecond
	}
	if c.AttemptTimeout == 0 {
		c.AttemptTimeout = 10 * time.Second
	}
	if c.RetryBudget <= 0 {
		c.RetryBudget = 3
	}
	if c.BackoffBase <= 0 {
		c.BackoffBase = 10 * time.Millisecond
	}
	if c.BackoffMax <= 0 {
		c.BackoffMax = 500 * time.Millisecond
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 8 << 20
	}
	if c.ShedWindow <= 0 {
		c.ShedWindow = 10 * time.Second
	}
	if c.ShedRate <= 0 || c.ShedRate > 1 {
		c.ShedRate = 0.5
	}
	if c.ShedMinSamples <= 0 {
		c.ShedMinSamples = 20
	}
	if c.Client == nil {
		c.Client = &http.Client{}
	}
}

// replica is the router's view of one backend.
type replica struct {
	url  string
	host string // host:port, the replica label on scraped series

	// window tracks recent data-plane outcomes (sheds, attempt timeouts,
	// 5xx vs. successes) for the proactive soft-drain decision.
	window *shedWindow

	// probing guards against overlapping health probes: a replica whose
	// probe is still in flight skips the next tick instead of stacking.
	probing atomic.Bool

	mu       sync.Mutex
	healthy  bool
	draining bool // admin-held off the ring; prober must not readmit
	shedded  bool // soft-drained for persistent overload; prober readmits
	fails    int
	lastErr  string
	lastSeen time.Time
}

// ReplicaStatus is one backend's entry in GET /v1/fleet.
type ReplicaStatus struct {
	URL      string `json:"url"`
	Healthy  bool   `json:"healthy"`
	Draining bool   `json:"draining,omitempty"`
	// SoftDrained marks a replica weighted out of new sync traffic for a
	// persistently high shed/error rate; it rejoins when its window clears.
	SoftDrained bool    `json:"soft_drained,omitempty"`
	ShedRate    float64 `json:"shed_rate,omitempty"`
	InRing      bool    `json:"in_ring"`
	LastErr     string  `json:"last_error,omitempty"`
}

// Fleet routes /v1 traffic across radar-serve replicas. Build with New,
// then Start the health prober; Stop shuts the prober down (backends are
// not touched — they are independent processes).
type Fleet struct {
	cfg      Config
	ring     *Ring
	client   *http.Client
	replicas map[string]*replica // keyed by base URL
	order    []string            // configured order, for stable reporting

	// jobs is the sticky job→replica map: job IDs are minted by one
	// backend and only it can answer for them.
	jobs sync.Map // string(JobID) → base URL

	// intent is the fleet-wide hosted-model intent accumulated from admin
	// broadcasts; readmitted replicas are diffed against it and repaired
	// before they re-enter the ring.
	intent modelIntent

	// rekeyMu serializes rolling rekeys; overlapping drains could empty
	// the ring.
	rekeyMu sync.Mutex

	// obs holds the router's own metric families (routing, health,
	// failover); met is the typed handle onto them. Replica series are not
	// mirrored here — the aggregated scrape re-emits them live.
	obs *obs.Registry
	met *fleetMetrics

	stop    chan struct{}
	wg      sync.WaitGroup
	started atomic.Bool
	stopped atomic.Bool
}

// New validates the config and builds the router. Every replica starts
// healthy and on the ring; the prober corrects that view within one
// interval of Start.
func New(cfg Config) (*Fleet, error) {
	if len(cfg.Replicas) == 0 {
		return nil, errors.New("fleet: at least one replica base URL is required")
	}
	cfg.fillDefaults()
	f := &Fleet{
		cfg:      cfg,
		ring:     NewRing(cfg.VNodes),
		client:   cfg.Client,
		replicas: make(map[string]*replica, len(cfg.Replicas)),
		stop:     make(chan struct{}),
	}
	for _, raw := range cfg.Replicas {
		base := strings.TrimRight(raw, "/")
		u, err := url.Parse(base)
		if err != nil || u.Scheme == "" || u.Host == "" {
			return nil, fmt.Errorf("fleet: replica %q is not an absolute URL", raw)
		}
		if _, dup := f.replicas[base]; dup {
			return nil, fmt.Errorf("fleet: duplicate replica %q", base)
		}
		f.replicas[base] = &replica{
			url: base, host: u.Host, healthy: true,
			window: newShedWindow(cfg.ShedWindow),
		}
		f.order = append(f.order, base)
		f.ring.Add(base)
	}
	f.obs = obs.NewRegistry()
	f.initMetrics(f.obs)
	return f, nil
}

// Start launches the health prober. Idempotent.
func (f *Fleet) Start() {
	if !f.started.CompareAndSwap(false, true) {
		return
	}
	f.wg.Add(1)
	go f.probeLoop()
}

// Stop shuts the prober down. Idempotent.
func (f *Fleet) Stop() {
	if !f.stopped.CompareAndSwap(false, true) {
		return
	}
	close(f.stop)
	f.wg.Wait()
}

// Ring exposes the live hash ring (read-mostly: Lookup/Owners/Members).
// Callers observing routing — experiments, tests — share the router's
// view; mutating it directly would fight the health prober.
func (f *Fleet) Ring() *Ring { return f.ring }

// statuses snapshots every replica in configured order.
func (f *Fleet) statuses() []ReplicaStatus {
	out := make([]ReplicaStatus, 0, len(f.order))
	for _, base := range f.order {
		r := f.replicas[base]
		rate, _ := r.window.rate()
		r.mu.Lock()
		out = append(out, ReplicaStatus{
			URL:         r.url,
			Healthy:     r.healthy,
			Draining:    r.draining,
			SoftDrained: r.shedded,
			ShedRate:    rate,
			InRing:      f.ring.Has(r.url),
			LastErr:     r.lastErr,
		})
		r.mu.Unlock()
	}
	return out
}
