package fleet

import (
	"fmt"
	"testing"
)

// TestRingDeterministicPlacement: ownership is a pure function of the
// member set — two independently built rings agree on every key, and
// lookups are stable across calls.
func TestRingDeterministicPlacement(t *testing.T) {
	members := []string{"http://a:1", "http://b:2", "http://c:3"}
	r1, r2 := NewRing(64), NewRing(64)
	for _, m := range members {
		r1.Add(m)
	}
	// Insertion order must not matter.
	for i := len(members) - 1; i >= 0; i-- {
		r2.Add(members[i])
	}
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("model-%d", i)
		a, b := r1.Lookup(key), r2.Lookup(key)
		if a == "" || a != b {
			t.Fatalf("key %q: ring1 → %q, ring2 → %q", key, a, b)
		}
		if again := r1.Lookup(key); again != a {
			t.Fatalf("key %q: unstable lookup %q then %q", key, a, again)
		}
	}
}

// TestRingSpread: with vnodes, a small fleet still gets every member a
// reasonable share of keys (no member starves).
func TestRingSpread(t *testing.T) {
	r := NewRing(64)
	counts := map[string]int{}
	for i := 0; i < 3; i++ {
		r.Add(fmt.Sprintf("http://replica-%d", i))
	}
	const keys = 3000
	for i := 0; i < keys; i++ {
		counts[r.Lookup(fmt.Sprintf("model-%d", i))]++
	}
	for m, n := range counts {
		if n < keys/10 {
			t.Fatalf("member %s owns only %d/%d keys — spread collapsed", m, n, keys)
		}
	}
}

// TestRingMinimalRemap is the consistent-hashing property test: removing
// one member remaps only the keys it owned (every other key keeps its
// owner), and re-adding it restores the original placement exactly.
func TestRingMinimalRemap(t *testing.T) {
	members := []string{"http://a:1", "http://b:2", "http://c:3", "http://d:4"}
	r := NewRing(64)
	for _, m := range members {
		r.Add(m)
	}
	const keys = 1000
	before := make(map[string]string, keys)
	for i := 0; i < keys; i++ {
		k := fmt.Sprintf("model-%d", i)
		before[k] = r.Lookup(k)
	}

	victim := members[1]
	r.Remove(victim)
	moved := 0
	for k, owner := range before {
		now := r.Lookup(k)
		if owner == victim {
			if now == victim {
				t.Fatalf("key %q still maps to removed member", k)
			}
			moved++
			continue
		}
		if now != owner {
			t.Fatalf("key %q moved %q → %q though its owner never left", k, owner, now)
		}
	}
	if moved == 0 {
		t.Fatal("removed member owned no keys — test is vacuous")
	}

	// Readmission restores the exact original placement.
	r.Add(victim)
	for k, owner := range before {
		if now := r.Lookup(k); now != owner {
			t.Fatalf("after readmission key %q maps to %q, originally %q", k, now, owner)
		}
	}
}

// TestRingOwners: the failover order lists distinct members, owner first.
func TestRingOwners(t *testing.T) {
	r := NewRing(64)
	for i := 0; i < 3; i++ {
		r.Add(fmt.Sprintf("http://replica-%d", i))
	}
	owners := r.Owners("some-model", 5)
	if len(owners) != 3 {
		t.Fatalf("Owners returned %d members, want all 3", len(owners))
	}
	if owners[0] != r.Lookup("some-model") {
		t.Fatalf("Owners[0] %q != Lookup %q", owners[0], r.Lookup("some-model"))
	}
	seen := map[string]bool{}
	for _, o := range owners {
		if seen[o] {
			t.Fatalf("duplicate member %q in owners %v", o, owners)
		}
		seen[o] = true
	}
	if got := r.Owners("some-model", 1); len(got) != 1 || got[0] != owners[0] {
		t.Fatalf("Owners(1) = %v, want [%s]", got, owners[0])
	}
}

// TestRingEmpty: lookups on an empty ring fail soft.
func TestRingEmpty(t *testing.T) {
	r := NewRing(8)
	if got := r.Lookup("x"); got != "" {
		t.Fatalf("empty ring lookup → %q", got)
	}
	if got := r.Owners("x", 3); got != nil {
		t.Fatalf("empty ring owners → %v", got)
	}
	r.Add("http://only")
	r.Remove("http://only")
	r.Remove("http://only") // absent remove is a no-op
	if got := r.Lookup("x"); got != "" {
		t.Fatalf("drained ring lookup → %q", got)
	}
}
