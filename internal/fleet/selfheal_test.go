package fleet

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"radar/internal/serve"
)

// TestFleetHungReplicaBoundedFailover: a replica that accepts the
// connection and never answers — the canonical gray failure — costs the
// client at most one AttemptTimeout: the attempt deadline expires, the
// replica is ejected as slow, and the request fails over to the next
// owner within the same client call.
func TestFleetHungReplicaBoundedFailover(t *testing.T) {
	stubs := make([]*stubReplica, 3)
	urls := make([]string, 3)
	for i := range stubs {
		stubs[i] = newStubReplica(fmt.Sprintf("r%d", i), "m0")
		urls[i] = stubs[i].ts.URL
		t.Cleanup(stubs[i].ts.Close)
	}
	// No Start(): the hung replica's health endpoint still answers, so the
	// prober would readmit it and race the post-ejection assertions.
	const attempt = 200 * time.Millisecond
	f, err := New(Config{
		Replicas:       urls,
		AttemptTimeout: attempt,
		BackoffBase:    time.Millisecond,
		BackoffMax:     5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(f.Handler())
	defer ts.Close()

	owner := f.ring.Lookup("m0")
	victim := stubFor(t, stubs, owner)
	victim.hang.Store(true)

	start := time.Now()
	status, _ := doRead(t, "POST", ts.URL+"/v1/models/m0/infer", `{"input":[1]}`)
	elapsed := time.Since(start)
	if status != http.StatusOK {
		t.Fatalf("infer with hung owner → %d, want 200 via failover", status)
	}
	if elapsed >= 2*attempt {
		t.Fatalf("hung owner delayed the request %v, want at most one AttemptTimeout (%v) plus slack", elapsed, attempt)
	}
	if f.ring.Has(owner) {
		t.Fatal("hung replica still on the ring after an attempt timeout")
	}
	if v := f.met.attemptTimeouts.With(f.hostOf(owner)).Value(); v != 1 {
		t.Fatalf("radar_fleet_attempt_timeouts_total = %d, want exactly 1", v)
	}
	next := f.ring.Lookup("m0")
	if got := stubFor(t, stubs, next).inferCount("m0"); got != 1 {
		t.Fatalf("successor served %d requests, want 1", got)
	}
}

// TestFleetSoftDrainOnShedRate: a replica that keeps shedding 429s is
// proactively weighted out of new sync traffic — off the ring but still
// healthy — and readmitted once its shed window clears.
func TestFleetSoftDrainOnShedRate(t *testing.T) {
	f, stubs := newTestFleetCfg(t, 2, Config{
		ShedWindow:     800 * time.Millisecond,
		ShedMinSamples: 5,
		BackoffBase:    time.Millisecond,
		BackoffMax:     2 * time.Millisecond,
	}, "m0")
	ts := httptest.NewServer(f.Handler())
	defer ts.Close()

	owner := f.ring.Lookup("m0")
	victim := stubFor(t, stubs, owner)
	victim.shed.Store(true)

	// Every request sheds on the owner and fails over; the client never
	// notices, and the owner's window fills with bad outcomes.
	for i := 0; i < 8; i++ {
		if status, _ := doRead(t, "POST", ts.URL+"/v1/models/m0/infer", `{"input":[1]}`); status != http.StatusOK {
			t.Fatalf("infer %d with shedding owner → %d, want 200", i, status)
		}
	}
	if f.ring.Has(owner) {
		t.Fatal("persistently shedding owner still on the ring")
	}
	if v := f.met.softDrains.With(f.hostOf(owner)).Value(); v != 1 {
		t.Fatalf("radar_fleet_soft_drains_total = %d, want 1", v)
	}
	// A soft drain is not an ejection: the replica reports healthy.
	status, body := doRead(t, "GET", ts.URL+"/v1/fleet", "")
	if status != http.StatusOK {
		t.Fatalf("fleet status → %d", status)
	}
	var st FleetStatus
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	for _, rs := range st.Replicas {
		if rs.URL != owner {
			continue
		}
		if !rs.Healthy || !rs.SoftDrained || rs.InRing {
			t.Fatalf("soft-drained replica reports %+v, want healthy, soft_drained, out of ring", rs)
		}
	}

	// Overload ends; the drained replica sees no new sync traffic, its
	// window decays to empty, and the prober readmits it.
	victim.shed.Store(false)
	deadline := time.Now().Add(10 * time.Second)
	for !f.ring.Has(owner) {
		if time.Now().After(deadline) {
			t.Fatal("soft-drained replica never readmitted after its window cleared")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if v := f.met.shedReadmits.With(f.hostOf(owner)).Value(); v != 1 {
		t.Fatalf("radar_fleet_shed_readmits_total = %d, want 1", v)
	}
}

// TestFleetReconcileOnReadmission: membership changes broadcast while a
// replica is ejected are repaired against it — missed adds applied,
// missed removes undone — before it re-enters the ring, without any
// operator action.
func TestFleetReconcileOnReadmission(t *testing.T) {
	f, stubs := newTestFleet(t, 2, "m0", "m1")
	ts := httptest.NewServer(f.Handler())
	defer ts.Close()

	victim, peer := stubs[0], stubs[1]
	victim.broken.Store(true)
	deadline := time.Now().Add(10 * time.Second)
	for f.ring.Has(victim.ts.URL) {
		if time.Now().After(deadline) {
			t.Fatal("broken replica never ejected")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// The fleet's hosted set moves while the victim is unreachable.
	if status, _ := doRead(t, "POST", ts.URL+"/v1/admin/models/extra", `{"source":"tiny"}`); status != http.StatusOK {
		t.Fatal("broadcast add failed")
	}
	if status, _ := doRead(t, "DELETE", ts.URL+"/v1/admin/models/m1", ""); status != http.StatusOK {
		t.Fatal("broadcast remove failed")
	}
	if victim.hostsModel("extra") {
		t.Fatal("broken victim applied the broadcast add")
	}
	if !peer.hostsModel("extra") || peer.hostsModel("m1") {
		t.Fatal("healthy peer did not apply the broadcast")
	}

	// Recovery: the prober repairs the drift before readmission.
	victim.broken.Store(false)
	for !f.ring.Has(victim.ts.URL) {
		if time.Now().After(deadline) {
			t.Fatal("recovered replica never readmitted")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if !victim.hostsModel("extra") {
		t.Fatal("readmitted replica is missing the model added while it was down")
	}
	if victim.hostsModel("m1") {
		t.Fatal("readmitted replica still hosts the model removed while it was down")
	}
	if v := f.met.reconcileRepairs.With(f.hostOf(victim.ts.URL)).Value(); v != 2 {
		t.Fatalf("radar_fleet_reconcile_repairs_total = %d, want 2 (one add, one remove)", v)
	}
}

// TestFleet5xxFailover: a 5xx from the ring owner is a gray verdict —
// the request replays on the next owner instead of relaying the error,
// and only when every candidate answers 5xx does the client see one.
func TestFleet5xxFailover(t *testing.T) {
	stubs := make([]*stubReplica, 2)
	urls := make([]string, 2)
	for i := range stubs {
		stubs[i] = newStubReplica(fmt.Sprintf("r%d", i), "m0")
		urls[i] = stubs[i].ts.URL
		t.Cleanup(stubs[i].ts.Close)
	}
	// No Start(): broken replicas would also fail probes and get ejected,
	// making the 5xx path unreachable.
	f, err := New(Config{
		Replicas:    urls,
		BackoffBase: time.Millisecond,
		BackoffMax:  2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(f.Handler())
	defer ts.Close()

	owner := f.ring.Lookup("m0")
	victim := stubFor(t, stubs, owner)
	victim.broken.Store(true)

	status, _ := doRead(t, "POST", ts.URL+"/v1/models/m0/infer", `{"input":[1]}`)
	if status != http.StatusOK {
		t.Fatalf("infer with 5xx owner → %d, want 200 via failover", status)
	}
	if v := f.met.errFailovers.Value(); v != 1 {
		t.Fatalf("radar_fleet_err_failovers_total = %d, want 1", v)
	}

	// Every candidate 5xxs: the backend verdict is relayed, not replaced
	// by a synthetic 502.
	for _, s := range stubs {
		s.broken.Store(true)
	}
	if status, _ := doRead(t, "POST", ts.URL+"/v1/models/m0/infer", `{"input":[1]}`); status != http.StatusInternalServerError {
		t.Fatalf("all-5xx infer → %d, want the relayed 500", status)
	}
}

// TestFleetBodyCap: the replay buffer is bounded — a client body over
// MaxBodyBytes answers 413 instead of being held in router memory for
// the whole failover loop.
func TestFleetBodyCap(t *testing.T) {
	f, _ := newTestFleetCfg(t, 1, Config{MaxBodyBytes: 1024}, "m0")
	ts := httptest.NewServer(f.Handler())
	defer ts.Close()

	big := `{"input":"` + strings.Repeat("x", 4096) + `"}`
	if status, _ := doRead(t, "POST", ts.URL+"/v1/models/m0/infer", big); status != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized infer body → %d, want 413", status)
	}
	if status, _ := doRead(t, "POST", ts.URL+"/v1/models/m0/jobs", big); status != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized submit body → %d, want 413", status)
	}
	if status, _ := doRead(t, "POST", ts.URL+"/v1/models/m0/infer", `{"input":[1]}`); status != http.StatusOK {
		t.Fatal("normal-sized body no longer flows")
	}
}

// TestFleetSubmitShedFailover: a 429 on job submit is the one
// provably-safe submit failover — the shedding replica answered without
// taking a slot — so the submit moves to the next owner and the job pins
// to the replica that actually minted it.
func TestFleetSubmitShedFailover(t *testing.T) {
	f, stubs := newTestFleetCfg(t, 3, Config{
		BackoffBase: time.Millisecond,
		BackoffMax:  2 * time.Millisecond,
	}, "m0")
	ts := httptest.NewServer(f.Handler())
	defer ts.Close()

	owner := f.ring.Lookup("m0")
	victim := stubFor(t, stubs, owner)
	victim.shed.Store(true)

	status, body := doRead(t, "POST", ts.URL+"/v1/models/m0/jobs", `{"input":[1]}`)
	if status != http.StatusAccepted {
		t.Fatalf("submit with shedding owner → %d, want 202 via next owner", status)
	}
	var ref serve.JobRef
	if err := json.Unmarshal(body, &ref); err != nil {
		t.Fatal(err)
	}
	victim.mu.Lock()
	minted := len(victim.jobs)
	victim.mu.Unlock()
	if minted != 0 {
		t.Fatal("shedding owner minted the job anyway")
	}
	// The pin follows the minting replica, not the ring owner.
	if status, _ := doRead(t, "GET", ts.URL+ref.Location, ""); status != http.StatusOK {
		t.Fatalf("poll of failed-over job → %d, want 200", status)
	}

	// Every owner sheds → the held 429 verdict reaches the client.
	for _, s := range stubs {
		s.shed.Store(true)
	}
	if status, _ := doRead(t, "POST", ts.URL+"/v1/models/m0/jobs", `{"input":[1]}`); status != http.StatusTooManyRequests {
		t.Fatalf("all-shed submit → %d, want 429", status)
	}
}

// TestFleetConcurrentProbes: per-tick probes fan out concurrently, so
// three slow health endpoints cost a tick max(latency), not the sum —
// a failing replica is still ejected promptly.
func TestFleetConcurrentProbes(t *testing.T) {
	f, stubs := newTestFleetCfg(t, 3, Config{FailThreshold: 2}, "m0")
	for _, s := range stubs {
		s.probeSlow.Store(int64(200 * time.Millisecond))
	}
	victim := stubs[0]
	victim.broken.Store(true)

	start := time.Now()
	deadline := start.Add(5 * time.Second)
	for f.ring.Has(victim.ts.URL) {
		if time.Now().After(deadline) {
			t.Fatal("broken replica never ejected")
		}
		time.Sleep(5 * time.Millisecond)
	}
	// Concurrent ticks cost ~200ms each → ejection after 2 failures lands
	// well under 900ms; serialized probes (3×200ms per tick) cannot get
	// there before ~1.2s.
	if elapsed := time.Since(start); elapsed > 900*time.Millisecond {
		t.Fatalf("ejection took %v with three 200ms probes per tick — probes look serialized", elapsed)
	}
}
