package fleet

import (
	"sync"
	"time"
)

// shedBuckets is the sliding window's resolution: outcomes are folded
// into this many coarse time buckets spanning Config.ShedWindow, so
// recording stays O(1) and rate() never walks an unbounded event list.
const shedBuckets = 8

// shedWindow is one replica's sliding outcome window. The proxy records
// every data-plane attempt it sends the replica — successes alongside
// queue-full sheds, attempt timeouts and 5xx verdicts — and the
// soft-drain decision reads the bad fraction over the last ShedWindow.
type shedWindow struct {
	mu    sync.Mutex
	width time.Duration // one bucket's span
	slots [shedBuckets]shedBucket
}

type shedBucket struct {
	epoch      int64 // absolute bucket index the slot currently holds
	total, bad int
}

func newShedWindow(window time.Duration) *shedWindow {
	return &shedWindow{width: window / shedBuckets}
}

// slot rotates the ring to the current bucket and returns it.
func (w *shedWindow) slot(now time.Time) *shedBucket {
	epoch := now.UnixNano() / int64(w.width)
	s := &w.slots[epoch%shedBuckets]
	if s.epoch != epoch {
		*s = shedBucket{epoch: epoch}
	}
	return s
}

// record folds one attempt outcome into the window.
func (w *shedWindow) record(bad bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	s := w.slot(time.Now())
	s.total++
	if bad {
		s.bad++
	}
}

// rate returns the bad fraction and sample count over the live window.
// An empty window reads as rate 0 — a drained replica receives no sync
// traffic, so its window decays to empty and clears the drain.
func (w *shedWindow) rate() (float64, int) {
	w.mu.Lock()
	defer w.mu.Unlock()
	epoch := time.Now().UnixNano() / int64(w.width)
	total, bad := 0, 0
	for i := range w.slots {
		if s := &w.slots[i]; s.epoch > epoch-shedBuckets {
			total += s.total
			bad += s.bad
		}
	}
	if total == 0 {
		return 0, 0
	}
	return float64(bad) / float64(total), total
}

// recordOutcome books one data-plane attempt against a replica's window
// and, on a bad outcome, re-checks the soft-drain threshold.
func (f *Fleet) recordOutcome(base string, bad bool) {
	r, ok := f.replicas[base]
	if !ok {
		return
	}
	r.window.record(bad)
	if bad {
		f.maybeSoftDrain(r)
	}
}

// maybeSoftDrain weighs a persistently overloaded replica out of new
// sync traffic: once its window's bad fraction crosses Config.ShedRate
// with enough samples, it leaves the ring (new routing skips it) while
// staying healthy — sticky jobs still reach it by base URL, broadcasts
// still include it, and the prober readmits it once the window clears.
// The last ring member is never soft-drained: spreading overload needs
// somewhere to spread to.
func (f *Fleet) maybeSoftDrain(r *replica) {
	rate, samples := r.window.rate()
	if rate < f.cfg.ShedRate || samples < f.cfg.ShedMinSamples {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.shedded || !f.ring.Has(r.url) || len(f.ring.Members()) <= 1 {
		return
	}
	r.shedded = true
	f.ring.Remove(r.url)
	f.met.softDrains.With(r.host).Inc()
}

// maybeReadmitShed ends a soft drain once the replica's window has
// cleared: drained replicas see no new sync traffic, so their windows
// decay to empty within ShedWindow, and they rejoin the ring (unless an
// admin drain or health ejection still holds them out). Called from the
// probe loop each tick.
func (f *Fleet) maybeReadmitShed(r *replica) {
	r.mu.Lock()
	shedded := r.shedded
	r.mu.Unlock()
	if !shedded {
		return
	}
	rate, samples := r.window.rate()
	if samples != 0 && rate >= f.cfg.ShedRate/2 {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.shedded {
		return
	}
	r.shedded = false
	f.met.shedReadmits.With(r.host).Inc()
	if r.healthy && !r.draining {
		f.ring.Add(r.url)
	}
}
