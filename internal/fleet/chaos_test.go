package fleet

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"radar/internal/chaos"
)

// TestFleetChaosStorm drives the router through a sustained gray-failure
// storm: every replica sits behind a fault-injecting chaos proxy mixing
// hangs, TCP resets and 5xx bursts, and the self-healing stack — attempt
// deadlines, jittered failover, fast ejection, probe readmission — must
// keep client-visible success at ≥99%.
func TestFleetChaosStorm(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos storm is slow")
	}
	models := []string{"m0", "m1", "m2"}
	const n = 3
	urls := make([]string, n)
	for i := 0; i < n; i++ {
		stub := newStubReplica(fmt.Sprintf("r%d", i), models...)
		t.Cleanup(stub.ts.Close)
		p, err := chaos.New(chaos.Config{
			Target: stub.ts.URL,
			Seed:   int64(i + 1),
			Mix: chaos.Mix{
				Hang:    0.02,
				Reset:   0.02,
				Err5xx:  0.02,
				HangFor: time.Second,
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		ps := httptest.NewServer(p.Handler())
		t.Cleanup(func() { p.Close(); ps.Close() })
		urls[i] = ps.URL
	}

	f, err := New(Config{
		Replicas:       urls,
		AttemptTimeout: 300 * time.Millisecond,
		BackoffBase:    time.Millisecond,
		BackoffMax:     5 * time.Millisecond,
		HealthInterval: 20 * time.Millisecond,
		HealthTimeout:  500 * time.Millisecond,
		FailThreshold:  2,
	})
	if err != nil {
		t.Fatal(err)
	}
	f.Start()
	t.Cleanup(f.Stop)
	ts := httptest.NewServer(f.Handler())
	defer ts.Close()

	const total = 300
	ok := 0
	for i := 0; i < total; i++ {
		status, _ := doRead(t, "POST", ts.URL+"/v1/models/"+models[i%len(models)]+"/infer", `{"input":[1]}`)
		if status == http.StatusOK {
			ok++
		}
	}
	rate := float64(ok) / total
	t.Logf("chaos storm: %d/%d ok (%.2f%%), retries=%d failovers=%d panic=%d",
		ok, total, 100*rate, f.met.retries.Value(), f.met.failovers.Value(), f.met.panicRoutes.Value())
	if rate < 0.99 {
		t.Fatalf("success rate %.2f%% under chaos, want ≥99%%", 100*rate)
	}
}
