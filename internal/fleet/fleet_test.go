package fleet

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"radar/internal/obs"
	"radar/internal/serve"
)

// stubReplica fakes the slice of radar-serve's /v1 surface the router
// touches, with counters so tests can assert where traffic landed.
type stubReplica struct {
	name string
	ts   *httptest.Server

	mu        sync.Mutex
	hosted    map[string]bool // live hosted set, mutated by admin add/remove
	infers    map[string]int  // model → count
	jobs      map[string]bool
	jobSeq    int
	rekeys    int
	scrubs    int
	adds      []string
	removes   []string
	broken    atomic.Bool  // answer 500 on everything (incl. admin) while set
	shed      atomic.Bool  // answer 429 on infer/submit while set (queue full)
	hang      atomic.Bool  // hold infer without answering while set (gray failure)
	probeSlow atomic.Int64 // ns of added latency on GET /v1/models
}

func newStubReplica(name string, models ...string) *stubReplica {
	s := &stubReplica{
		name: name, infers: map[string]int{}, jobs: map[string]bool{},
		hosted: map[string]bool{},
	}
	for _, m := range models {
		s.hosted[m] = true
	}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/models", func(w http.ResponseWriter, r *http.Request) {
		if d := s.probeSlow.Load(); d > 0 {
			time.Sleep(time.Duration(d))
		}
		if s.broken.Load() {
			http.Error(w, "broken", http.StatusInternalServerError)
			return
		}
		resp := serve.ModelsResponse{Jobs: serve.JobTableStats{Capacity: 100}}
		s.mu.Lock()
		hosted := make([]string, 0, len(s.hosted))
		for m := range s.hosted {
			hosted = append(hosted, m)
		}
		s.mu.Unlock()
		sort.Strings(hosted)
		for _, m := range hosted {
			resp.Models = append(resp.Models, serve.ModelInfo{Name: m, Healthy: true})
		}
		json.NewEncoder(w).Encode(resp)
	})
	mux.HandleFunc("POST /v1/models/{model}/infer", func(w http.ResponseWriter, r *http.Request) {
		if s.hang.Load() {
			// Gray failure: the request is accepted and read, the answer
			// never comes. Consuming the body first matters — it arms the
			// server's background read, so the proxy abandoning the attempt
			// cancels this context and releases the handler.
			io.Copy(io.Discard, r.Body)
			<-r.Context().Done()
			return
		}
		if s.broken.Load() {
			http.Error(w, "broken", http.StatusInternalServerError)
			return
		}
		if s.shed.Load() {
			w.Header().Set("Retry-After", "1")
			http.Error(w, "queue full", http.StatusTooManyRequests)
			return
		}
		m := r.PathValue("model")
		s.mu.Lock()
		ok := s.hosted[m]
		s.mu.Unlock()
		if !ok {
			http.Error(w, "unknown model", http.StatusNotFound)
			return
		}
		s.mu.Lock()
		s.infers[m]++
		s.mu.Unlock()
		fmt.Fprintf(w, `{"results":[{"class":1,"logits":[0,1]}]}`)
	})
	mux.HandleFunc("POST /v1/models/{model}/jobs", func(w http.ResponseWriter, r *http.Request) {
		if s.shed.Load() {
			w.Header().Set("Retry-After", "1")
			http.Error(w, "queue full", http.StatusTooManyRequests)
			return
		}
		m := r.PathValue("model")
		s.mu.Lock()
		ok := s.hosted[m]
		s.mu.Unlock()
		if !ok {
			http.Error(w, "unknown model", http.StatusNotFound)
			return
		}
		s.mu.Lock()
		s.jobSeq++
		id := fmt.Sprintf("job-%s-%08x", name, s.jobSeq)
		s.jobs[id] = true
		s.mu.Unlock()
		w.WriteHeader(http.StatusAccepted)
		json.NewEncoder(w).Encode(serve.JobRef{
			ID: serve.JobID(id), Model: m, Location: "/v1/jobs/" + id,
		})
	})
	mux.HandleFunc("GET /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		s.mu.Lock()
		ok := s.jobs[r.PathValue("id")]
		s.mu.Unlock()
		if !ok {
			http.Error(w, "unknown job", http.StatusNotFound)
			return
		}
		fmt.Fprintf(w, `{"id":%q,"state":"done","result":{"class":1}}`, r.PathValue("id"))
	})
	mux.HandleFunc("DELETE /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		s.mu.Lock()
		ok := s.jobs[id]
		delete(s.jobs, id)
		s.mu.Unlock()
		if !ok {
			http.Error(w, "unknown job", http.StatusNotFound)
			return
		}
		fmt.Fprintf(w, `{"id":%q,"state":"cancelled"}`, id)
	})
	mux.HandleFunc("POST /v1/admin/rekey", func(w http.ResponseWriter, r *http.Request) {
		s.mu.Lock()
		s.rekeys++
		s.mu.Unlock()
		fmt.Fprintf(w, `{"results":[{"model":"all","rekeyed":true}]}`)
	})
	mux.HandleFunc("POST /v1/admin/scrub", func(w http.ResponseWriter, r *http.Request) {
		s.mu.Lock()
		s.scrubs++
		s.mu.Unlock()
		fmt.Fprintf(w, `{"results":[{"model":"all","flagged":0,"zeroed":0}]}`)
	})
	mux.HandleFunc("POST /v1/admin/models/{name}", func(w http.ResponseWriter, r *http.Request) {
		if s.broken.Load() {
			http.Error(w, "broken", http.StatusInternalServerError)
			return
		}
		s.mu.Lock()
		s.adds = append(s.adds, r.PathValue("name"))
		s.hosted[r.PathValue("name")] = true
		s.mu.Unlock()
		w.WriteHeader(http.StatusCreated)
		fmt.Fprintf(w, `{"name":%q}`, r.PathValue("name"))
	})
	mux.HandleFunc("DELETE /v1/admin/models/{name}", func(w http.ResponseWriter, r *http.Request) {
		if s.broken.Load() {
			http.Error(w, "broken", http.StatusInternalServerError)
			return
		}
		s.mu.Lock()
		s.removes = append(s.removes, r.PathValue("name"))
		delete(s.hosted, r.PathValue("name"))
		s.mu.Unlock()
		w.WriteHeader(http.StatusNoContent)
	})
	mux.HandleFunc("GET /v1/metrics", func(w http.ResponseWriter, r *http.Request) {
		if s.broken.Load() {
			http.Error(w, "broken", http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", obs.ExpositionContentType)
		fmt.Fprintf(w, "# HELP radar_requests_total Inference requests answered.\n")
		fmt.Fprintf(w, "# TYPE radar_requests_total counter\n")
		s.mu.Lock()
		for _, m := range models {
			fmt.Fprintf(w, "radar_requests_total{model=%q} %d\n", m, s.infers[m])
		}
		s.mu.Unlock()
		fmt.Fprintf(w, "# HELP radar_stub_uptime_seconds Stub liveness.\n")
		fmt.Fprintf(w, "# TYPE radar_stub_uptime_seconds gauge\n")
		fmt.Fprintf(w, "radar_stub_uptime_seconds 1\n")
	})
	mux.HandleFunc("GET /v1/debug/traces", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(serve.NewTracesResponse([]obs.Trace{{
			ID: "req-" + name, Model: models[0], Start: time.Now(), TotalMs: 1.5,
			Stages: []obs.Stage{{Name: "queue", Ms: 0.1}, {Name: "forward", Ms: 1.4}},
		}}))
	})
	s.ts = httptest.NewServer(mux)
	return s
}

func (s *stubReplica) inferCount(model string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.infers[model]
}

func (s *stubReplica) hostsModel(model string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.hosted[model]
}

// newTestFleet boots n stub replicas hosting the given models behind a
// router with test-friendly timings.
func newTestFleet(t *testing.T, n int, models ...string) (*Fleet, []*stubReplica) {
	return newTestFleetCfg(t, n, Config{}, models...)
}

// newTestFleetCfg is newTestFleet with config overrides: zero-valued
// fields get the usual test-friendly timings, everything else is passed
// through (Replicas is always filled from the stubs).
func newTestFleetCfg(t *testing.T, n int, cfg Config, models ...string) (*Fleet, []*stubReplica) {
	t.Helper()
	stubs := make([]*stubReplica, n)
	urls := make([]string, n)
	for i := range stubs {
		stubs[i] = newStubReplica(fmt.Sprintf("r%d", i), models...)
		urls[i] = stubs[i].ts.URL
		t.Cleanup(stubs[i].ts.Close)
	}
	cfg.Replicas = urls
	if cfg.HealthInterval == 0 {
		cfg.HealthInterval = 20 * time.Millisecond
	}
	if cfg.HealthTimeout == 0 {
		cfg.HealthTimeout = time.Second
	}
	if cfg.DrainWait == 0 {
		cfg.DrainWait = 10 * time.Millisecond
	}
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	f.Start()
	t.Cleanup(f.Stop)
	return f, stubs
}

func stubFor(t *testing.T, stubs []*stubReplica, url string) *stubReplica {
	t.Helper()
	for _, s := range stubs {
		if s.ts.URL == url {
			return s
		}
	}
	t.Fatalf("no stub with URL %s", url)
	return nil
}

// doRead issues one request and returns the status plus drained body.
func doRead(t *testing.T, method, url, body string) (int, []byte) {
	t.Helper()
	req, err := http.NewRequest(method, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if body != "" {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, b
}

// TestFleetRoutesByRingOwner: every request for one model lands on its
// ring owner, and different models spread across replicas as the ring
// dictates.
func TestFleetRoutesByRingOwner(t *testing.T) {
	f, stubs := newTestFleet(t, 3, "m0", "m1", "m2")
	ts := httptest.NewServer(f.Handler())
	defer ts.Close()

	const per = 5
	for _, model := range []string{"m0", "m1", "m2"} {
		for i := 0; i < per; i++ {
			status, _ := doRead(t, "POST", ts.URL+"/v1/models/"+model+"/infer", `{"input":[1]}`)
			if status != http.StatusOK {
				t.Fatalf("infer %s → %d", model, status)
			}
		}
		owner := f.ring.Lookup(model)
		own := stubFor(t, stubs, owner)
		if got := own.inferCount(model); got != per {
			t.Fatalf("owner of %s saw %d/%d requests", model, got, per)
		}
		for _, s := range stubs {
			if s != own && s.inferCount(model) != 0 {
				t.Fatalf("non-owner %s saw traffic for %s", s.name, model)
			}
		}
	}
}

// TestFleetJobStickiness: a job submitted through the fleet polls and
// cancels against the replica that minted it, and the pin is dropped on
// DELETE.
func TestFleetJobStickiness(t *testing.T) {
	f, stubs := newTestFleet(t, 3, "m0")
	ts := httptest.NewServer(f.Handler())
	defer ts.Close()

	status, body := doRead(t, "POST", ts.URL+"/v1/models/m0/jobs", `{"input":[1]}`)
	if status != http.StatusAccepted {
		t.Fatalf("submit → %d", status)
	}
	var ref serve.JobRef
	if err := json.Unmarshal(body, &ref); err != nil {
		t.Fatal(err)
	}
	owner := f.ring.Lookup("m0")
	own := stubFor(t, stubs, owner)
	own.mu.Lock()
	minted := own.jobs[string(ref.ID)]
	own.mu.Unlock()
	if !minted {
		t.Fatalf("job %s not minted by ring owner %s", ref.ID, own.name)
	}

	if status, _ := doRead(t, "GET", ts.URL+ref.Location, ""); status != http.StatusOK {
		t.Fatalf("sticky poll → %d", status)
	}
	status, body = doRead(t, "DELETE", ts.URL+ref.Location, "")
	if status != http.StatusOK || !strings.Contains(string(body), "cancelled") {
		t.Fatalf("sticky cancel → %d %s", status, body)
	}
	// The pin is gone: the fleet itself answers 404 now.
	if status, _ := doRead(t, "GET", ts.URL+ref.Location, ""); status != http.StatusNotFound {
		t.Fatalf("poll after cancel → %d, want 404", status)
	}
	if status, _ := doRead(t, "GET", ts.URL+"/v1/jobs/job-unknown-1", ""); status != http.StatusNotFound {
		t.Fatalf("unknown job → %d, want 404", status)
	}
}

// TestFleetFailoverOnDeadReplica: killing a replica mid-fleet ejects it
// on first contact and replays the idempotent request against the next
// owner — the client sees 200, not 502.
func TestFleetFailoverOnDeadReplica(t *testing.T) {
	f, stubs := newTestFleet(t, 3, "m0")
	ts := httptest.NewServer(f.Handler())
	defer ts.Close()

	owner := f.ring.Lookup("m0")
	victim := stubFor(t, stubs, owner)
	victim.ts.CloseClientConnections()
	victim.ts.Close()

	status, _ := doRead(t, "POST", ts.URL+"/v1/models/m0/infer", `{"input":[1]}`)
	if status != http.StatusOK {
		t.Fatalf("failover infer → %d, want 200", status)
	}
	if f.ring.Has(owner) {
		t.Fatal("dead replica still on the ring after transport failure")
	}
	next := f.ring.Lookup("m0")
	if next == owner {
		t.Fatal("model did not remap off the dead replica")
	}
	if got := stubFor(t, stubs, next).inferCount("m0"); got != 1 {
		t.Fatalf("successor served %d requests, want 1", got)
	}

	// The fleet status reflects the ejection.
	status, body := doRead(t, "GET", ts.URL+"/v1/fleet", "")
	if status != http.StatusOK {
		t.Fatalf("fleet status → %d", status)
	}
	var st FleetStatus
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.InRing != 2 {
		t.Fatalf("fleet reports %d in-ring replicas, want 2", st.InRing)
	}
}

// TestFleetHealthEjectReadmit: a replica that starts failing probes is
// ejected after FailThreshold, and readmitted when it recovers.
func TestFleetHealthEjectReadmit(t *testing.T) {
	f, stubs := newTestFleet(t, 2, "m0")
	victim := stubs[0]

	victim.broken.Store(true)
	deadline := time.Now().Add(10 * time.Second)
	for f.ring.Has(victim.ts.URL) {
		if time.Now().After(deadline) {
			t.Fatal("failing replica never ejected")
		}
		time.Sleep(5 * time.Millisecond)
	}

	victim.broken.Store(false)
	for !f.ring.Has(victim.ts.URL) {
		if time.Now().After(deadline) {
			t.Fatal("recovered replica never readmitted")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestFleetMergedModels: the fleet listing names each model once with its
// ring owner and sums the job tables.
func TestFleetMergedModels(t *testing.T) {
	f, _ := newTestFleet(t, 3, "m0", "m1")
	ts := httptest.NewServer(f.Handler())
	defer ts.Close()

	status, body := doRead(t, "GET", ts.URL+"/v1/models", "")
	if status != http.StatusOK {
		t.Fatalf("models → %d", status)
	}
	var merged ModelsResponse
	if err := json.Unmarshal(body, &merged); err != nil {
		t.Fatal(err)
	}
	if len(merged.Models) != 2 {
		t.Fatalf("merged %d models, want 2: %+v", len(merged.Models), merged)
	}
	for _, m := range merged.Models {
		if want := f.ring.Lookup(m.Name); m.Owner != want {
			t.Fatalf("model %s annotated owner %s, ring says %s", m.Name, m.Owner, want)
		}
	}
	if merged.Jobs.Capacity != 300 {
		t.Fatalf("job capacities not summed: %+v", merged.Jobs)
	}
}

// TestFleetBroadcastModelAdmin: hot add/remove fans out to every replica
// so hosted sets stay identical fleet-wide.
func TestFleetBroadcastModelAdmin(t *testing.T) {
	f, stubs := newTestFleet(t, 3, "m0")
	ts := httptest.NewServer(f.Handler())
	defer ts.Close()

	status, body := doRead(t, "POST", ts.URL+"/v1/admin/models/extra", `{"source":"tiny"}`)
	if status != http.StatusOK {
		t.Fatalf("broadcast add → %d", status)
	}
	var resp AdminResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Op != "add-model" || len(resp.Replicas) != 3 {
		t.Fatalf("broadcast add response: %+v", resp)
	}
	for _, s := range stubs {
		s.mu.Lock()
		adds := append([]string(nil), s.adds...)
		s.mu.Unlock()
		if len(adds) != 1 || adds[0] != "extra" {
			t.Fatalf("replica %s saw adds %v", s.name, adds)
		}
	}

	if status, _ := doRead(t, "DELETE", ts.URL+"/v1/admin/models/extra", ""); status != http.StatusOK {
		t.Fatalf("broadcast remove → %d", status)
	}
	for _, s := range stubs {
		s.mu.Lock()
		removes := append([]string(nil), s.removes...)
		s.mu.Unlock()
		if len(removes) != 1 || removes[0] != "extra" {
			t.Fatalf("replica %s saw removes %v", s.name, removes)
		}
	}
}

// TestFleetRollingRekey: the fleet rekey hits every replica exactly once,
// reports per-replica results, and leaves the full ring restored.
func TestFleetRollingRekey(t *testing.T) {
	f, stubs := newTestFleet(t, 3, "m0")
	ts := httptest.NewServer(f.Handler())
	defer ts.Close()

	status, body := doRead(t, "POST", ts.URL+"/v1/admin/rekey", `{}`)
	if status != http.StatusOK {
		t.Fatalf("rolling rekey → %d", status)
	}
	var resp AdminResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Op != "rolling-rekey" || len(resp.Replicas) != 3 {
		t.Fatalf("rekey response: %+v", resp)
	}
	for _, rep := range resp.Replicas {
		if rep.Status != http.StatusOK || rep.Err != "" {
			t.Fatalf("replica report: %+v", rep)
		}
	}
	for _, s := range stubs {
		s.mu.Lock()
		n := s.rekeys
		s.mu.Unlock()
		if n != 1 {
			t.Fatalf("replica %s rekeyed %d times, want 1", s.name, n)
		}
	}
	if got := len(f.ring.Members()); got != 3 {
		t.Fatalf("ring has %d members after rekey, want 3", got)
	}
}

// TestFleetScrubBroadcast: the fleet scrub reaches every replica.
func TestFleetScrubBroadcast(t *testing.T) {
	f, stubs := newTestFleet(t, 2, "m0")
	ts := httptest.NewServer(f.Handler())
	defer ts.Close()

	if status, _ := doRead(t, "POST", ts.URL+"/v1/admin/scrub", `{"full":true}`); status != http.StatusOK {
		t.Fatalf("broadcast scrub failed: %d", status)
	}
	for _, s := range stubs {
		s.mu.Lock()
		n := s.scrubs
		s.mu.Unlock()
		if n != 1 {
			t.Fatalf("replica %s scrubbed %d times, want 1", s.name, n)
		}
	}
	_ = f
}

// TestFleetConfigValidation: bad configs fail fast.
func TestFleetConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("empty replica list accepted")
	}
	if _, err := New(Config{Replicas: []string{"not a url"}}); err == nil {
		t.Fatal("relative replica URL accepted")
	}
	if _, err := New(Config{Replicas: []string{"http://a:1", "http://a:1"}}); err == nil {
		t.Fatal("duplicate replicas accepted")
	}
}

// TestFleetClientCancelDoesNotEject: a client that hangs up mid-infer
// surfaces as a context error on the proxied request. That says nothing
// about replica health, so the owner must keep its ring slot — ejecting
// it (and then failing the remaining owners with the same dead context)
// would briefly empty the ring and 503 all other traffic.
func TestFleetClientCancelDoesNotEject(t *testing.T) {
	f, _ := newTestFleet(t, 3, "m0")
	h := f.Handler()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	req := httptest.NewRequest("POST", "/v1/models/m0/infer",
		strings.NewReader(`{"input":[1]}`)).WithContext(ctx)
	req.Header.Set("Content-Type", "application/json")
	h.ServeHTTP(httptest.NewRecorder(), req)

	if got := len(f.ring.Members()); got != 3 {
		t.Fatalf("ring has %d members after client-canceled infer, want 3", got)
	}
	// The fleet still serves normally.
	rec := httptest.NewRecorder()
	req = httptest.NewRequest("POST", "/v1/models/m0/infer", strings.NewReader(`{"input":[1]}`))
	req.Header.Set("Content-Type", "application/json")
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("infer after canceled request → %d, want 200", rec.Code)
	}
}

// TestFleetCanceledPollKeepsJobPin: a poll the client abandons must not
// drop the sticky job pin — the job is still alive on its replica, and a
// later poll has to reach it.
func TestFleetCanceledPollKeepsJobPin(t *testing.T) {
	f, _ := newTestFleet(t, 3, "m0")
	h := f.Handler()

	rec := httptest.NewRecorder()
	req := httptest.NewRequest("POST", "/v1/models/m0/jobs", strings.NewReader(`{"input":[1]}`))
	req.Header.Set("Content-Type", "application/json")
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusAccepted {
		t.Fatalf("submit → %d", rec.Code)
	}
	var ref serve.JobRef
	if err := json.Unmarshal(rec.Body.Bytes(), &ref); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	h.ServeHTTP(httptest.NewRecorder(),
		httptest.NewRequest("GET", "/v1/jobs/"+string(ref.ID), nil).WithContext(ctx))

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/jobs/"+string(ref.ID), nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("poll after abandoned poll → %d, want 200 (sticky pin dropped)", rec.Code)
	}
}

// TestFleetModelsFanoutFailure: when the ring has members but none of
// them answers the listing fan-out, the client gets 502 — not a 200 with
// an empty model list that is indistinguishable from an empty fleet.
func TestFleetModelsFanoutFailure(t *testing.T) {
	stub := newStubReplica("r0", "m0")
	t.Cleanup(stub.ts.Close)
	// No Start(): the prober must not run, so the replica stays in-ring
	// and the 502 is attributable to the fan-out alone.
	f, err := New(Config{Replicas: []string{stub.ts.URL}})
	if err != nil {
		t.Fatal(err)
	}
	stub.broken.Store(true)

	rec := httptest.NewRecorder()
	f.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/v1/models", nil))
	if rec.Code != http.StatusBadGateway {
		t.Fatalf("models with all fan-out failed → %d, want 502", rec.Code)
	}
}
