package fleet

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"
)

// probeLoop drives the health view: each interval, every replica is
// probed off GET /v1/models (the cheapest request that exercises the
// whole serving stack — registry, metrics, job table). Probes run
// concurrently and independently per replica — the tick never joins on
// them, so one replica hanging at HealthTimeout cannot stall the others'
// probes (and with them every pending readmission); a replica whose
// previous probe is still in flight just skips the tick. Failures
// accumulate toward ejection; one success readmits — after the
// readmission reconciler has repaired any hosted-set drift the replica
// accumulated while it was unreachable. Each tick also re-examines
// soft-drained replicas whose shed windows have cleared.
func (f *Fleet) probeLoop() {
	defer f.wg.Done()
	var wg sync.WaitGroup
	defer wg.Wait()
	t := time.NewTicker(f.cfg.HealthInterval)
	defer t.Stop()
	for {
		select {
		case <-f.stop:
			return
		case <-t.C:
			for _, base := range f.order {
				r := f.replicas[base]
				if !r.probing.CompareAndSwap(false, true) {
					continue
				}
				wg.Add(1)
				go func(r *replica) {
					defer wg.Done()
					defer r.probing.Store(false)
					f.probe(r)
					f.maybeReadmitShed(r)
				}(r)
			}
		}
	}
}

// probe runs one health check and applies its verdict. A success that
// would readmit an ejected replica first runs the model-set
// reconciliation: a replica that missed broadcast membership changes
// while unreachable must not rejoin the ring with a stale hosted set.
func (f *Fleet) probe(r *replica) {
	ctx, cancel := context.WithTimeout(context.Background(), f.cfg.HealthTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, r.url+"/v1/models", nil)
	if err != nil {
		f.noteProbe(r, err)
		return
	}
	resp, err := f.client.Do(req)
	if err != nil {
		f.noteProbe(r, err)
		return
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		f.noteProbe(r, fmt.Errorf("status %d", resp.StatusCode))
		return
	}
	r.mu.Lock()
	wasDown := !r.healthy
	r.mu.Unlock()
	if wasDown {
		f.reconcileModels(r)
	}
	f.noteProbe(r, nil)
}

// noteProbe folds one probe result into the replica's state, ejecting
// from or readmitting to the ring as the verdict flips. A draining
// replica (admin-held off the ring) or a soft-drained one keeps its
// health bookkeeping but is never readmitted here.
func (f *Fleet) noteProbe(r *replica, err error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if err != nil {
		r.fails++
		r.lastErr = err.Error()
		f.met.probeFailures.With(r.host).Inc()
		if r.healthy && r.fails >= f.cfg.FailThreshold {
			r.healthy = false
			f.ring.Remove(r.url)
			f.met.ejections.With(r.host).Inc()
		}
		return
	}
	r.fails = 0
	r.lastErr = ""
	r.lastSeen = time.Now()
	if !r.healthy {
		r.healthy = true
	}
	if !r.draining && !r.shedded {
		f.ring.Add(r.url)
	}
}

// noteTransportFailure is the proxy's fast path to ejection: a connection
// that refuses or resets mid-request — or, with the client still live,
// one that exceeded the attempt deadline — means the replica is broken
// right now, so it leaves the ring immediately instead of waiting out
// the probe threshold. The prober readmits it once it answers again.
func (f *Fleet) noteTransportFailure(base string, err error) {
	r, ok := f.replicas[base]
	if !ok {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.fails = f.cfg.FailThreshold
	r.lastErr = err.Error()
	if r.healthy {
		f.met.ejections.With(r.host).Inc()
	}
	r.healthy = false
	f.ring.Remove(r.url)
}

// drain takes a replica off the ring on the admin's behalf (rolling
// rekey); the prober will not readmit it until undrain.
func (f *Fleet) drain(base string) {
	r := f.replicas[base]
	r.mu.Lock()
	r.draining = true
	f.ring.Remove(base)
	r.mu.Unlock()
}

// undrain releases an admin hold; the replica rejoins the ring at once
// when healthy and not soft-drained (otherwise the prober readmits it on
// its next success or once its shed window clears).
func (f *Fleet) undrain(base string) {
	r := f.replicas[base]
	r.mu.Lock()
	r.draining = false
	if r.healthy && !r.shedded {
		f.ring.Add(base)
	}
	r.mu.Unlock()
}
