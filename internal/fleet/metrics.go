package fleet

import (
	"bufio"
	"context"
	"encoding/json"
	"net/http"
	"sort"
	"strconv"
	"strings"

	"radar/internal/obs"
	"radar/internal/serve"
)

// rekeyBuckets covers rolling-rekey wall time: sub-second for tiny test
// fleets through a minute for many large replicas with long drain waits.
var rekeyBuckets = []float64{0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60}

// fleetMetrics holds the router's own instruments (the replicas' series
// are scraped, not mirrored — see handleMetrics).
type fleetMetrics struct {
	requests          *obs.CounterVec // by matched route pattern
	failovers         *obs.Counter    // transport-error failover replays
	shedFailovers     *obs.Counter    // 429-shed failover replays
	errFailovers      *obs.Counter    // 5xx-verdict failover replays
	retries           *obs.Counter    // all failover replays
	panicRoutes       *obs.Counter    // empty-ring requests routed to all replicas
	attemptTimeouts   *obs.CounterVec // by replica host: slow-replica verdicts
	softDrains        *obs.CounterVec // by replica host: shed-rate soft drains
	shedReadmits      *obs.CounterVec // by replica host: soft-drain readmissions
	reconcileRepairs  *obs.CounterVec // by replica host: model-set drift repairs
	reconcileFailures *obs.CounterVec // by replica host: failed drift repairs
	probeFailures     *obs.CounterVec // by replica host
	ejections         *obs.CounterVec // by replica host
	scrapeErrors      *obs.CounterVec // by replica host
	rekeySeconds      *obs.Histogram
}

// initMetrics registers the router's families on reg and binds the
// per-replica function gauges. Called once from New, after the replica map
// is built.
func (f *Fleet) initMetrics(reg *obs.Registry) {
	f.met = &fleetMetrics{
		requests:          reg.Counter("radar_fleet_requests_total", "Requests handled by the fleet router.", "route"),
		failovers:         reg.Counter("radar_fleet_failovers_total", "Sync requests replayed on another owner after a transport failure.").With(),
		shedFailovers:     reg.Counter("radar_fleet_shed_failover_total", "Sync requests replayed on another owner after a 429 queue-full shed.").With(),
		errFailovers:      reg.Counter("radar_fleet_err_failovers_total", "Sync requests replayed on another owner after a 5xx verdict.").With(),
		retries:           reg.Counter("radar_fleet_retries_total", "All failover replays (transport, shed, 5xx).").With(),
		panicRoutes:       reg.Counter("radar_fleet_panic_routes_total", "Requests routed to all configured replicas because ejections emptied the ring.").With(),
		attemptTimeouts:   reg.Counter("radar_fleet_attempt_timeouts_total", "Proxied attempts that exceeded AttemptTimeout while the client was still live — slow-replica verdicts.", "replica"),
		softDrains:        reg.Counter("radar_fleet_soft_drains_total", "Replicas weighted out of new sync traffic for a persistently high shed/error rate.", "replica"),
		shedReadmits:      reg.Counter("radar_fleet_shed_readmits_total", "Soft-drained replicas readmitted after their shed window cleared.", "replica"),
		reconcileRepairs:  reg.Counter("radar_fleet_reconcile_repairs_total", "Hosted-model drift repairs applied to readmitted replicas.", "replica"),
		reconcileFailures: reg.Counter("radar_fleet_reconcile_failures_total", "Hosted-model drift repairs that failed (retried at the next readmission).", "replica"),
		probeFailures:     reg.Counter("radar_fleet_probe_failures_total", "Failed health probes.", "replica"),
		ejections:         reg.Counter("radar_fleet_replica_ejections_total", "Healthy-to-ejected transitions.", "replica"),
		scrapeErrors:      reg.Counter("radar_fleet_scrape_errors_total", "Failed replica scrapes during aggregated /v1/metrics.", "replica"),
		rekeySeconds:      reg.Histogram("radar_fleet_rekey_seconds", "Wall time of whole rolling rekeys.", rekeyBuckets).With(),
	}
	up := reg.Gauge("radar_fleet_replica_up", "1 while the replica is in the routing ring.", "replica")
	shedRate := reg.Gauge("radar_fleet_replica_shed_rate", "Bad-outcome fraction (429s, attempt timeouts, 5xx) over the replica's sliding shed window.", "replica")
	for _, base := range f.order {
		r := f.replicas[base]
		url := r.url
		up.Func(func() float64 {
			if f.ring.Has(url) {
				return 1
			}
			return 0
		}, r.host)
		win := r.window
		shedRate.Func(func() float64 {
			rate, _ := win.rate()
			return rate
		}, r.host)
	}
	reg.Gauge("radar_fleet_sticky_jobs", "Async jobs currently pinned to their minting replica.").
		Func(func() float64 {
			n := 0
			f.jobs.Range(func(any, any) bool { n++; return true })
			return float64(n)
		})
}

// MetricNames returns the router's registered metric family names — what
// the naming-lint test checks.
func (f *Fleet) MetricNames() []string { return f.obs.Names() }

// WriteMetrics writes the router's own series in the Prometheus text
// format (no replica scraping — that is handleMetrics' job).
func (f *Fleet) WriteMetrics(w *bufio.Writer) error {
	_, err := f.obs.WriteTo(w)
	return err
}

// scrapedFamily is one metric family re-assembled from replica scrapes:
// the metadata lines from the first replica that exposed it plus every
// replica's sample lines, each tagged with that replica's host.
type scrapedFamily struct {
	help    string
	typ     string
	samples []string
}

// injectReplicaLabel rewrites one sample line to carry replica="host" as
// its first label: `name{a="b"} v` → `name{replica="host",a="b"} v` and
// `name v` → `name{replica="host"} v`.
func injectReplicaLabel(line, host string) string {
	tag := `replica="` + host + `"`
	if i := strings.IndexByte(line, '{'); i >= 0 {
		return line[:i+1] + tag + "," + line[i+1:]
	}
	i := strings.IndexByte(line, ' ')
	if i < 0 {
		return line
	}
	return line[:i] + "{" + tag + "}" + line[i:]
}

// scrapeReplica pulls one replica's /v1/metrics and folds its families
// into fams/order under the replica's host label. Sample lines attach to
// the family named by the preceding # TYPE/# HELP comments, so histogram
// _bucket/_sum/_count lines stay grouped with their family.
func (f *Fleet) scrapeReplica(ctx context.Context, base, host string, fams map[string]*scrapedFamily, order *[]string) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/v1/metrics", nil)
	if err != nil {
		return err
	}
	resp, err := f.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return errStatus(resp.StatusCode)
	}
	var cur *scrapedFamily
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	get := func(name string) *scrapedFamily {
		fam, ok := fams[name]
		if !ok {
			fam = &scrapedFamily{}
			fams[name] = fam
			*order = append(*order, name)
		}
		return fam
	}
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "# HELP "):
			rest := line[len("# HELP "):]
			name, help, _ := strings.Cut(rest, " ")
			fam := get(name)
			if fam.help == "" {
				fam.help = help
			}
			cur = fam
		case strings.HasPrefix(line, "# TYPE "):
			rest := line[len("# TYPE "):]
			name, typ, _ := strings.Cut(rest, " ")
			fam := get(name)
			if fam.typ == "" {
				fam.typ = typ
			}
			cur = fam
		case line == "" || strings.HasPrefix(line, "#"):
			// blank or other comment: ignore
		default:
			if cur != nil {
				cur.samples = append(cur.samples, injectReplicaLabel(line, host))
			}
		}
	}
	return sc.Err()
}

type errStatus int

func (e errStatus) Error() string { return "status " + strconv.Itoa(int(e)) }

// handleMetrics is the router's GET /v1/metrics: its own routing series
// first, then every in-ring replica's exposition re-emitted with a
// replica="host:port" label — one scrape sees the whole fleet. A replica
// that fails mid-scrape is skipped (and counted in
// radar_fleet_scrape_errors_total); its series simply go stale for this
// sample.
func (f *Fleet) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", obs.ExpositionContentType)
	bw := bufio.NewWriter(w)
	f.obs.WriteTo(bw)
	fams := make(map[string]*scrapedFamily)
	var order []string
	for _, base := range f.ring.Members() {
		rep, ok := f.replicas[base]
		if !ok {
			continue
		}
		if err := f.scrapeReplica(r.Context(), base, rep.host, fams, &order); err != nil {
			f.met.scrapeErrors.With(rep.host).Inc()
		}
	}
	for _, name := range order {
		fam := fams[name]
		if len(fam.samples) == 0 {
			continue
		}
		if fam.help != "" {
			bw.WriteString("# HELP " + name + " " + fam.help + "\n")
		}
		if fam.typ != "" {
			bw.WriteString("# TYPE " + name + " " + fam.typ + "\n")
		}
		for _, s := range fam.samples {
			bw.WriteString(s + "\n")
		}
	}
	bw.Flush()
}

// handleTraces is the router's GET /v1/debug/traces: it fans out to every
// in-ring replica, tags each returned trace with its replica host, merges
// newest-first and truncates to n — per-stage timings for routed requests,
// fleet-wide.
func (f *Fleet) handleTraces(w http.ResponseWriter, r *http.Request) {
	n := 32
	if raw := r.URL.Query().Get("n"); raw != "" {
		v, err := strconv.Atoi(raw)
		if err != nil || v < 1 {
			http.Error(w, "bad n: want a positive integer", http.StatusBadRequest)
			return
		}
		n = v
	}
	var merged []obs.Trace
	for _, base := range f.ring.Members() {
		rep, ok := f.replicas[base]
		if !ok {
			continue
		}
		resp, err := f.send(r, base, "/v1/debug/traces?n="+strconv.Itoa(n), nil)
		if err != nil {
			continue
		}
		var one serve.TracesResponse
		err = json.NewDecoder(resp.Body).Decode(&one)
		resp.Body.Close()
		if err != nil || resp.StatusCode != http.StatusOK {
			continue
		}
		for _, t := range one.Traces {
			t.Replica = rep.host
			merged = append(merged, t)
		}
	}
	sort.Slice(merged, func(i, j int) bool { return merged[i].Start.After(merged[j].Start) })
	if len(merged) > n {
		merged = merged[:n]
	}
	writeJSON(w, http.StatusOK, serve.NewTracesResponse(merged))
}
