package fleet

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"testing"

	"radar/internal/serve"
)

// metricNameRE mirrors the serve-side lint: radar_ prefix, lowercase snake
// case, optional unit suffix.
var metricNameRE = regexp.MustCompile(`^radar_[a-z0-9]+(_[a-z0-9]+)*(_total|_seconds|_bytes)?$`)

// TestFleetMetricNamingLint rejects router family names outside the
// convention before they ship to a scraper.
func TestFleetMetricNamingLint(t *testing.T) {
	f, _ := newTestFleet(t, 2, "m0")
	names := f.MetricNames()
	if len(names) == 0 {
		t.Fatal("router registered no metric families")
	}
	for _, name := range names {
		if !metricNameRE.MatchString(name) {
			t.Errorf("metric family %q violates the radar_ naming convention", name)
		}
	}
}

// TestFleetAggregatedMetrics: the router's /v1/metrics carries its own
// routing series plus every replica's exposition re-emitted under a
// replica="host:port" label — labelled samples get the tag prepended,
// unlabelled ones get a fresh label set.
func TestFleetAggregatedMetrics(t *testing.T) {
	f, stubs := newTestFleet(t, 2, "m0")
	ts := httptest.NewServer(f.Handler())
	defer ts.Close()

	if status, _ := doRead(t, "POST", ts.URL+"/v1/models/m0/infer", `{"input":[1]}`); status != http.StatusOK {
		t.Fatalf("warmup infer → %d", status)
	}

	status, body := doRead(t, "GET", ts.URL+"/v1/metrics", "")
	if status != http.StatusOK {
		t.Fatalf("GET /v1/metrics → %d", status)
	}
	text := string(body)
	for _, want := range []string{
		"# TYPE radar_fleet_requests_total counter",
		`radar_fleet_requests_total{route="POST /v1/models/{model}/infer"} 1`,
		"# TYPE radar_fleet_replica_up gauge",
		"# TYPE radar_requests_total counter",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("router exposition missing %q", want)
		}
	}
	for _, s := range stubs {
		host := strings.TrimPrefix(s.ts.URL, "http://")
		if !strings.Contains(text, `radar_requests_total{replica="`+host+`",model="m0"}`) {
			t.Errorf("no replica-labelled re-export for %s", host)
		}
		if !strings.Contains(text, `radar_stub_uptime_seconds{replica="`+host+`"} 1`) {
			t.Errorf("unlabelled replica sample not tagged for %s", host)
		}
	}
}

// TestFleetMergedTraces: the router's /v1/debug/traces fans out, tags each
// trace with its replica host, and answers one merged JSON document.
func TestFleetMergedTraces(t *testing.T) {
	f, _ := newTestFleet(t, 2, "m0")
	ts := httptest.NewServer(f.Handler())
	defer ts.Close()

	status, body := doRead(t, "GET", ts.URL+"/v1/debug/traces?n=5", "")
	if status != http.StatusOK {
		t.Fatalf("GET /v1/debug/traces → %d", status)
	}
	var merged serve.TracesResponse
	if err := json.Unmarshal(body, &merged); err != nil {
		t.Fatal(err)
	}
	if merged.Count != 2 {
		t.Fatalf("merged %d traces, want 2: %+v", merged.Count, merged)
	}
	for _, tr := range merged.Traces {
		if tr.Replica == "" {
			t.Errorf("trace %s carries no replica tag", tr.ID)
		}
		if len(tr.Stages) == 0 || tr.Stages[0].Name != "queue" {
			t.Errorf("trace %s lost its stages: %+v", tr.ID, tr.Stages)
		}
	}

	if status, _ := doRead(t, "GET", ts.URL+"/v1/debug/traces?n=bad", ""); status != http.StatusBadRequest {
		t.Fatalf("bad n → %d, want 400", status)
	}
}

// TestFleetShedFailover: a 429 queue-full shed from the ring owner moves
// the sync request to the next owner instead of bouncing the overload back
// to the client; only when every candidate sheds does the client see the
// held 429 with its Retry-After.
func TestFleetShedFailover(t *testing.T) {
	f, stubs := newTestFleet(t, 3, "m0")
	ts := httptest.NewServer(f.Handler())
	defer ts.Close()

	owner := stubFor(t, stubs, f.ring.Lookup("m0"))
	owner.shed.Store(true)

	status, _ := doRead(t, "POST", ts.URL+"/v1/models/m0/infer", `{"input":[1]}`)
	if status != http.StatusOK {
		t.Fatalf("infer with shedding owner → %d, want 200 via next owner", status)
	}
	if got := owner.inferCount("m0"); got != 0 {
		t.Fatalf("shedding owner answered %d requests", got)
	}
	total := 0
	for _, s := range stubs {
		total += s.inferCount("m0")
	}
	if total != 1 {
		t.Fatalf("request answered %d times across the fleet, want 1", total)
	}
	if v := f.met.shedFailovers.Value(); v != 1 {
		t.Fatalf("radar_fleet_shed_failover_total = %d, want 1", v)
	}

	// Everyone sheds → the client gets the held 429, Retry-After intact.
	for _, s := range stubs {
		s.shed.Store(true)
	}
	req, err := http.NewRequest("POST", ts.URL+"/v1/models/m0/infer", strings.NewReader(`{"input":[1]}`))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("all-shed infer → %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("relayed 429 lost its Retry-After")
	}
}
