package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"sync"

	"radar/internal/serve"
)

// modelIntent is the fleet's record of what the hosted model set is
// supposed to look like, accumulated from admin broadcasts: every model
// an operator hot-added (with the add request body, so the add can be
// replayed) and every model an operator hot-removed. A replica that was
// unreachable for a broadcast — ejected, hung, mid-restart — is diffed
// against this intent when the prober readmits it, and repaired with
// per-replica add/remove calls before it re-enters the ring.
//
// Only deltas the fleet itself brokered are tracked; the base set the
// replicas booted with needs no record, because a replica cannot lose it
// by missing a broadcast.
type modelIntent struct {
	mu      sync.Mutex
	added   map[string][]byte // model name → broadcast add body
	removed map[string]struct{}
}

// record folds one broadcast membership change into the intent. Adds and
// removes cancel each other: the latest operation wins.
func (mi *modelIntent) record(method, name string, body []byte) {
	mi.mu.Lock()
	defer mi.mu.Unlock()
	if mi.added == nil {
		mi.added = make(map[string][]byte)
		mi.removed = make(map[string]struct{})
	}
	if method == http.MethodDelete {
		delete(mi.added, name)
		mi.removed[name] = struct{}{}
		return
	}
	delete(mi.removed, name)
	mi.added[name] = append([]byte(nil), body...)
}

// snapshot copies the current intent for lock-free use during a
// reconciliation's HTTP round trips.
func (mi *modelIntent) snapshot() (added map[string][]byte, removed []string) {
	mi.mu.Lock()
	defer mi.mu.Unlock()
	if len(mi.added) == 0 && len(mi.removed) == 0 {
		return nil, nil
	}
	added = make(map[string][]byte, len(mi.added))
	for k, v := range mi.added {
		added[k] = v
	}
	for k := range mi.removed {
		removed = append(removed, k)
	}
	return added, removed
}

// recordModelIntent updates the hosted-set intent after a broadcast
// add/remove. The intent only moves when at least one replica confirmed
// the operation — a change every replica rejected (unknown zoo source,
// removing the last model) never becomes intent, so reconciliation will
// not retry a doomed operation forever.
func (f *Fleet) recordModelIntent(method, name string, body []byte, reports []ReplicaReport) {
	confirmed := false
	for _, rep := range reports {
		if rep.Err == "" && rep.Status >= 200 && rep.Status < 300 {
			confirmed = true
			break
		}
	}
	if !confirmed {
		return
	}
	f.intent.record(method, name, body)
}

// reconcileModels runs just before an ejected replica is readmitted: it
// diffs the replica's live GET /v1/models listing against the fleet's
// hosted-set intent and repairs drift — models the fleet added while the
// replica was unreachable are added, models the fleet removed are
// removed — via that replica's own admin surface. Best-effort: a repair
// that fails is counted and retried at the next readmission; the
// readmission itself proceeds either way, because a stale-but-serving
// replica beats an ejected one.
func (f *Fleet) reconcileModels(r *replica) {
	added, removed := f.intent.snapshot()
	if len(added) == 0 && len(removed) == 0 {
		return
	}
	hosted, err := f.fetchHostedSet(r)
	if err != nil {
		return
	}
	for name, body := range added {
		if _, ok := hosted[name]; ok {
			continue
		}
		f.repair(r, http.MethodPost, name, body)
	}
	for _, name := range removed {
		if _, ok := hosted[name]; !ok {
			continue
		}
		f.repair(r, http.MethodDelete, name, nil)
	}
}

// fetchHostedSet reads one replica's current hosted model names.
func (f *Fleet) fetchHostedSet(r *replica) (map[string]struct{}, error) {
	ctx, cancel := context.WithTimeout(context.Background(), f.cfg.HealthTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, r.url+"/v1/models", nil)
	if err != nil {
		return nil, err
	}
	resp, err := f.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, errStatus(resp.StatusCode)
	}
	var listing serve.ModelsResponse
	if err := json.NewDecoder(resp.Body).Decode(&listing); err != nil {
		return nil, err
	}
	hosted := make(map[string]struct{}, len(listing.Models))
	for _, m := range listing.Models {
		hosted[m.Name] = struct{}{}
	}
	return hosted, nil
}

// repair replays one membership change against one replica's admin
// surface and counts the outcome.
func (f *Fleet) repair(r *replica, method, name string, body []byte) {
	ctx, cancel := context.WithTimeout(context.Background(), f.cfg.HealthTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, method, r.url+"/v1/admin/models/"+name, bytes.NewReader(body))
	if err != nil {
		return
	}
	if len(body) > 0 {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := f.client.Do(req)
	if err != nil {
		f.met.reconcileFailures.With(r.host).Inc()
		return
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode >= 200 && resp.StatusCode < 300 {
		f.met.reconcileRepairs.With(r.host).Inc()
		return
	}
	f.met.reconcileFailures.With(r.host).Inc()
}
