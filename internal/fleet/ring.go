package fleet

import (
	"hash/fnv"
	"sort"
	"strconv"
	"sync"
)

// Ring is a consistent-hash ring mapping string keys (model names) onto
// members (replica base URLs). Each member is projected onto the ring at
// vnodes pseudo-random points, so (a) keys spread evenly even with a
// handful of members and (b) removing a member remaps only the keys it
// owned — the property that lets the fleet drain one replica at a time
// with zero disruption to traffic routed at the others.
//
// Placement is a pure function of the member set: every router instance
// configured with the same replicas and vnode count computes the same
// ownership, no coordination needed.
type Ring struct {
	vnodes int

	mu      sync.RWMutex
	points  []point // sorted by hash
	members map[string]struct{}
}

type point struct {
	hash   uint64
	member string
}

// NewRing builds an empty ring with the given vnode count per member
// (values < 1 are clamped to 1).
func NewRing(vnodes int) *Ring {
	if vnodes < 1 {
		vnodes = 1
	}
	return &Ring{vnodes: vnodes, members: make(map[string]struct{})}
}

// hashKey is FNV-64a pushed through a splitmix64 finalizer — fast,
// dependency-free, and stable across processes (placement must agree
// between router instances). The finalizer matters: vnode labels share
// long common prefixes ("http://host:port#i"), and raw FNV propagates a
// one-character difference as a near-constant delta across every vnode
// pair, which can park one member's entire vnode set immediately after
// another's and starve it of keys. The avalanche step decorrelates them.
func hashKey(s string) uint64 {
	f := fnv.New64a()
	f.Write([]byte(s))
	h := f.Sum64()
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// Add projects a member onto the ring; adding a present member is a no-op.
func (r *Ring) Add(member string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.members[member]; ok {
		return
	}
	r.members[member] = struct{}{}
	for i := 0; i < r.vnodes; i++ {
		r.points = append(r.points, point{hashKey(member + "#" + strconv.Itoa(i)), member})
	}
	sort.Slice(r.points, func(i, j int) bool { return r.points[i].hash < r.points[j].hash })
}

// Remove takes a member off the ring; its keys remap to their next
// clockwise owners. Removing an absent member is a no-op.
func (r *Ring) Remove(member string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.members[member]; !ok {
		return
	}
	delete(r.members, member)
	kept := r.points[:0]
	for _, p := range r.points {
		if p.member != member {
			kept = append(kept, p)
		}
	}
	r.points = kept
}

// Members returns the current member set (unordered).
func (r *Ring) Members() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.members))
	for m := range r.members {
		out = append(out, m)
	}
	return out
}

// Has reports whether member is on the ring.
func (r *Ring) Has(member string) bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	_, ok := r.members[member]
	return ok
}

// Lookup returns the member owning key, or "" on an empty ring.
func (r *Ring) Lookup(key string) string {
	owners := r.Owners(key, 1)
	if len(owners) == 0 {
		return ""
	}
	return owners[0]
}

// Owners returns up to n distinct members in ownership order for key: the
// owner first, then the successors a retry should fall through to. The
// walk is clockwise from the key's hash, skipping vnodes of members
// already collected.
func (r *Ring) Owners(key string, n int) []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.points) == 0 || n < 1 {
		return nil
	}
	if n > len(r.members) {
		n = len(r.members)
	}
	h := hashKey(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	out := make([]string, 0, n)
	seen := make(map[string]struct{}, n)
	for i := 0; i < len(r.points) && len(out) < n; i++ {
		p := r.points[(start+i)%len(r.points)]
		if _, dup := seen[p.member]; dup {
			continue
		}
		seen[p.member] = struct{}{}
		out = append(out, p.member)
	}
	return out
}
