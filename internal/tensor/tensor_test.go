package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestNewShapeAndLen(t *testing.T) {
	x := New(2, 3, 4)
	if x.Len() != 24 {
		t.Fatalf("Len = %d, want 24", x.Len())
	}
	if x.NDim() != 3 || x.Dim(1) != 3 {
		t.Fatalf("bad shape bookkeeping: %v", x.Shape)
	}
}

func TestNewPanicsOnBadShape(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-positive dimension")
		}
	}()
	New(2, 0)
}

func TestAtSetRoundTrip(t *testing.T) {
	x := New(3, 4)
	x.Set(7.5, 2, 1)
	if got := x.At(2, 1); got != 7.5 {
		t.Fatalf("At = %v, want 7.5", got)
	}
	if x.Data[2*4+1] != 7.5 {
		t.Fatal("row-major layout violated")
	}
}

func TestAtPanicsOutOfBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected out-of-bounds panic")
		}
	}()
	New(2, 2).At(2, 0)
}

func TestCloneIsDeep(t *testing.T) {
	x := FromSlice([]float32{1, 2, 3}, 3)
	y := x.Clone()
	y.Data[0] = 99
	if x.Data[0] != 1 {
		t.Fatal("Clone shares storage")
	}
}

func TestReshapeSharesData(t *testing.T) {
	x := FromSlice([]float32{1, 2, 3, 4}, 2, 2)
	y := x.Reshape(4)
	y.Data[3] = 9
	if x.At(1, 1) != 9 {
		t.Fatal("Reshape must share storage")
	}
}

func TestReshapePanicsOnVolumeMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected volume mismatch panic")
		}
	}()
	New(2, 2).Reshape(5)
}

func TestElementwiseOps(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3}, 3)
	b := FromSlice([]float32{4, 5, 6}, 3)
	if got := Add(a, b).Data; got[0] != 5 || got[2] != 9 {
		t.Fatalf("Add = %v", got)
	}
	if got := Sub(b, a).Data; got[0] != 3 || got[2] != 3 {
		t.Fatalf("Sub = %v", got)
	}
	if got := Mul(a, b).Data; got[1] != 10 {
		t.Fatalf("Mul = %v", got)
	}
	AXPY(2, a, b)
	if b.Data[2] != 12 {
		t.Fatalf("AXPY result = %v", b.Data)
	}
}

func TestMatMulSmall(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	b := FromSlice([]float32{7, 8, 9, 10, 11, 12}, 3, 2)
	c := MatMul(a, b)
	want := []float32{58, 64, 139, 154}
	for i := range want {
		if c.Data[i] != want[i] {
			t.Fatalf("MatMul = %v, want %v", c.Data, want)
		}
	}
}

func TestMatMulIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := New(5, 5)
	a.RandNormal(rng, 1)
	id := New(5, 5)
	for i := 0; i < 5; i++ {
		id.Set(1, i, i)
	}
	c := MatMul(a, id)
	for i := range a.Data {
		if !almostEq(float64(c.Data[i]), float64(a.Data[i]), 1e-6) {
			t.Fatal("A·I != A")
		}
	}
}

// TestMatMulTransposeVariants checks MatMulTransA/B against explicit
// Transpose + MatMul references on random matrices.
func TestMatMulTransposeVariants(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := New(7, 4) // k×m for TransA
	b := New(7, 5)
	a.RandNormal(rng, 1)
	b.RandNormal(rng, 1)

	got := MatMulTransA(a, b)
	want := MatMul(Transpose(a), b)
	for i := range want.Data {
		if !almostEq(float64(got.Data[i]), float64(want.Data[i]), 1e-4) {
			t.Fatalf("MatMulTransA mismatch at %d: %v vs %v", i, got.Data[i], want.Data[i])
		}
	}

	c := New(6, 4)
	d := New(5, 4)
	c.RandNormal(rng, 1)
	d.RandNormal(rng, 1)
	got2 := MatMulTransB(c, d)
	want2 := MatMul(c, Transpose(d))
	for i := range want2.Data {
		if !almostEq(float64(got2.Data[i]), float64(want2.Data[i]), 1e-4) {
			t.Fatalf("MatMulTransB mismatch at %d", i)
		}
	}
}

func TestMatMulShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected inner-dimension panic")
		}
	}()
	MatMul(New(2, 3), New(4, 2))
}

// TestMatMulAssociativityProperty uses testing/quick to verify
// (A·B)·v == A·(B·v) on random small matrices — a linear-algebra invariant
// that exercises accumulation order robustness.
func TestMatMulAssociativityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := New(4, 3)
		b := New(3, 2)
		v := New(2, 1)
		a.RandUniform(rng, -2, 2)
		b.RandUniform(rng, -2, 2)
		v.RandUniform(rng, -2, 2)
		left := MatMul(MatMul(a, b), v)
		right := MatMul(a, MatMul(b, v))
		for i := range left.Data {
			if !almostEq(float64(left.Data[i]), float64(right.Data[i]), 1e-3) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestTranspose(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	at := Transpose(a)
	if at.Shape[0] != 3 || at.Shape[1] != 2 {
		t.Fatalf("Transpose shape = %v", at.Shape)
	}
	if at.At(2, 1) != 6 || at.At(0, 1) != 4 {
		t.Fatal("Transpose values wrong")
	}
}

func TestIm2ColIdentityKernel(t *testing.T) {
	// 1×1 kernel, stride 1, no pad: im2col is the identity flatten.
	x := FromSlice([]float32{1, 2, 3, 4}, 1, 2, 2)
	cols := Im2Col(x, 1, 1, 1, 0)
	if cols.Shape[0] != 1 || cols.Shape[1] != 4 {
		t.Fatalf("cols shape = %v", cols.Shape)
	}
	for i, v := range []float32{1, 2, 3, 4} {
		if cols.Data[i] != v {
			t.Fatalf("cols = %v", cols.Data)
		}
	}
}

func TestIm2ColKnown3x3(t *testing.T) {
	// 3×3 input, 3×3 kernel, pad 1 → nine 3×3 output positions; check a
	// couple of hand-computed entries including zero padding.
	x := FromSlice([]float32{1, 2, 3, 4, 5, 6, 7, 8, 9}, 1, 3, 3)
	cols := Im2Col(x, 3, 3, 1, 1)
	if cols.Shape[0] != 9 || cols.Shape[1] != 9 {
		t.Fatalf("cols shape = %v", cols.Shape)
	}
	// Row 4 is the kernel center (ki=1,kj=1): equals the input itself.
	for i := 0; i < 9; i++ {
		if cols.Data[4*9+i] != x.Data[i] {
			t.Fatalf("center row = %v", cols.Data[4*9:5*9])
		}
	}
	// Row 0 (ki=0,kj=0) at output position (0,0) reads x[-1,-1] = padding 0.
	if cols.Data[0] != 0 {
		t.Fatal("padding not zero")
	}
	// Row 0 at output position (1,1) reads x[0,0] = 1.
	if cols.Data[0*9+4] != 1 {
		t.Fatalf("row0 = %v", cols.Data[:9])
	}
}

func TestCol2ImAdjointProperty(t *testing.T) {
	// <Im2Col(x), y> == <x, Col2Im(y)> — the defining adjoint identity.
	rng := rand.New(rand.NewSource(3))
	c, h, w, kh, kw, stride, pad := 2, 6, 5, 3, 3, 2, 1
	x := New(c, h, w)
	x.RandNormal(rng, 1)
	cols := Im2Col(x, kh, kw, stride, pad)
	y := New(cols.Shape...)
	y.RandNormal(rng, 1)
	var lhs float64
	for i := range cols.Data {
		lhs += float64(cols.Data[i]) * float64(y.Data[i])
	}
	back := Col2Im(y, c, h, w, kh, kw, stride, pad)
	var rhs float64
	for i := range x.Data {
		rhs += float64(x.Data[i]) * float64(back.Data[i])
	}
	if !almostEq(lhs, rhs, 1e-2) {
		t.Fatalf("adjoint identity violated: %v vs %v", lhs, rhs)
	}
}

func TestConvOutSize(t *testing.T) {
	cases := []struct{ in, k, s, p, want int }{
		{32, 3, 1, 1, 32},
		{32, 3, 2, 1, 16},
		{224, 7, 2, 3, 112},
		{8, 1, 1, 0, 8},
	}
	for _, c := range cases {
		if got := ConvOutSize(c.in, c.k, c.s, c.p); got != c.want {
			t.Errorf("ConvOutSize(%d,%d,%d,%d) = %d, want %d", c.in, c.k, c.s, c.p, got, c.want)
		}
	}
}

func TestGlobalAvgPool(t *testing.T) {
	x := FromSlice([]float32{1, 2, 3, 4, 10, 20, 30, 40}, 1, 2, 2, 2)
	out := GlobalAvgPool(x)
	if out.At(0, 0) != 2.5 || out.At(0, 1) != 25 {
		t.Fatalf("GlobalAvgPool = %v", out.Data)
	}
	grad := FromSlice([]float32{4, 8}, 1, 2)
	back := GlobalAvgPoolBackward(grad, 2, 2)
	if back.Data[0] != 1 || back.Data[4] != 2 {
		t.Fatalf("GlobalAvgPoolBackward = %v", back.Data)
	}
}

func TestMaxPool2AndBackward(t *testing.T) {
	x := FromSlice([]float32{
		1, 2, 5, 6,
		3, 4, 7, 8,
		9, 1, 2, 3,
		1, 1, 4, 1,
	}, 1, 1, 4, 4)
	out, arg := MaxPool2(x)
	want := []float32{4, 8, 9, 4}
	for i := range want {
		if out.Data[i] != want[i] {
			t.Fatalf("MaxPool2 = %v, want %v", out.Data, want)
		}
	}
	grad := FromSlice([]float32{1, 1, 1, 1}, 1, 1, 2, 2)
	back := MaxPool2Backward(grad, arg, []int{1, 1, 4, 4})
	if back.Data[5] != 1 || back.Data[7] != 1 || back.Data[8] != 1 || back.Data[14] != 1 {
		t.Fatalf("MaxPool2Backward = %v", back.Data)
	}
	var s float32
	for _, v := range back.Data {
		s += v
	}
	if s != 4 {
		t.Fatalf("gradient mass not conserved: %v", s)
	}
}

func TestSumMeanMaxAbs(t *testing.T) {
	x := FromSlice([]float32{-3, 1, 2}, 3)
	if x.Sum() != 0 {
		t.Fatalf("Sum = %v", x.Sum())
	}
	if x.Mean() != 0 {
		t.Fatalf("Mean = %v", x.Mean())
	}
	if x.MaxAbs() != 3 {
		t.Fatalf("MaxAbs = %v", x.MaxAbs())
	}
}

func TestKaimingInitStatistics(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	x := New(10000)
	x.KaimingInit(rng, 50)
	var sumsq float64
	for _, v := range x.Data {
		sumsq += float64(v) * float64(v)
	}
	variance := sumsq / float64(x.Len())
	if !almostEq(variance, 2.0/50.0, 0.005) {
		t.Fatalf("Kaiming variance = %v, want ~%v", variance, 2.0/50.0)
	}
}

func TestParallelForCoversRange(t *testing.T) {
	n := 10_000
	marks := make([]int32, n)
	parallelFor(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			marks[i]++
		}
	})
	for i, m := range marks {
		if m != 1 {
			t.Fatalf("index %d visited %d times", i, m)
		}
	}
}

func BenchmarkMatMul128(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	x := New(128, 128)
	y := New(128, 128)
	x.RandNormal(rng, 1)
	y.RandNormal(rng, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMul(x, y)
	}
}
