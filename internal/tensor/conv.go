package tensor

// Im2Col unfolds an input tensor x of shape (C, H, W) into a matrix of shape
// (C*kh*kw, outH*outW) such that convolution reduces to a matrix product
// with the (outC, C*kh*kw) weight matrix. Zero padding of pad pixels is
// applied on all four sides and the kernel advances by stride.
func Im2Col(x *Tensor, kh, kw, stride, pad int) *Tensor {
	if x.NDim() != 3 {
		panic("tensor: Im2Col requires a (C,H,W) input")
	}
	c, h, w := x.Shape[0], x.Shape[1], x.Shape[2]
	outH := (h+2*pad-kh)/stride + 1
	outW := (w+2*pad-kw)/stride + 1
	cols := New(c*kh*kw, outH*outW)
	for ch := 0; ch < c; ch++ {
		chBase := ch * h * w
		for ki := 0; ki < kh; ki++ {
			for kj := 0; kj < kw; kj++ {
				row := ((ch*kh)+ki)*kw + kj
				dst := cols.Data[row*outH*outW:]
				for oy := 0; oy < outH; oy++ {
					iy := oy*stride - pad + ki
					if iy < 0 || iy >= h {
						continue // leave zeros
					}
					srcRow := chBase + iy*w
					dstRow := oy * outW
					for ox := 0; ox < outW; ox++ {
						ix := ox*stride - pad + kj
						if ix < 0 || ix >= w {
							continue
						}
						dst[dstRow+ox] = x.Data[srcRow+ix]
					}
				}
			}
		}
	}
	return cols
}

// Col2Im folds a (C*kh*kw, outH*outW) column matrix back into a (C, H, W)
// tensor, accumulating overlapping contributions. It is the adjoint of
// Im2Col and is used to propagate gradients to the convolution input.
func Col2Im(cols *Tensor, c, h, w, kh, kw, stride, pad int) *Tensor {
	outH := (h+2*pad-kh)/stride + 1
	outW := (w+2*pad-kw)/stride + 1
	x := New(c, h, w)
	for ch := 0; ch < c; ch++ {
		chBase := ch * h * w
		for ki := 0; ki < kh; ki++ {
			for kj := 0; kj < kw; kj++ {
				row := ((ch*kh)+ki)*kw + kj
				src := cols.Data[row*outH*outW:]
				for oy := 0; oy < outH; oy++ {
					iy := oy*stride - pad + ki
					if iy < 0 || iy >= h {
						continue
					}
					dstRow := chBase + iy*w
					srcRow := oy * outW
					for ox := 0; ox < outW; ox++ {
						ix := ox*stride - pad + kj
						if ix < 0 || ix >= w {
							continue
						}
						x.Data[dstRow+ix] += src[srcRow+ox]
					}
				}
			}
		}
	}
	return x
}

// ConvOutSize returns the spatial output size of a convolution with the
// given input size, kernel, stride and padding.
func ConvOutSize(in, k, stride, pad int) int {
	return (in+2*pad-k)/stride + 1
}
