package tensor

// GlobalAvgPool reduces a (N, C, H, W) tensor to (N, C) by averaging each
// spatial plane.
func GlobalAvgPool(x *Tensor) *Tensor {
	if x.NDim() != 4 {
		panic("tensor: GlobalAvgPool requires (N,C,H,W)")
	}
	n, c, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	out := New(n, c)
	plane := h * w
	inv := 1.0 / float32(plane)
	for i := 0; i < n; i++ {
		for ch := 0; ch < c; ch++ {
			base := (i*c + ch) * plane
			var s float32
			for p := 0; p < plane; p++ {
				s += x.Data[base+p]
			}
			out.Data[i*c+ch] = s * inv
		}
	}
	return out
}

// GlobalAvgPoolBackward spreads a (N, C) gradient uniformly back over the
// (N, C, H, W) input shape.
func GlobalAvgPoolBackward(grad *Tensor, h, w int) *Tensor {
	n, c := grad.Shape[0], grad.Shape[1]
	out := New(n, c, h, w)
	plane := h * w
	inv := 1.0 / float32(plane)
	for i := 0; i < n; i++ {
		for ch := 0; ch < c; ch++ {
			g := grad.Data[i*c+ch] * inv
			base := (i*c + ch) * plane
			for p := 0; p < plane; p++ {
				out.Data[base+p] = g
			}
		}
	}
	return out
}

// MaxPool2 performs 2×2 max pooling with stride 2 on a (N, C, H, W) tensor
// and returns the pooled tensor together with the argmax index map needed
// for the backward pass. H and W must be even.
func MaxPool2(x *Tensor) (*Tensor, []int32) {
	n, c, h, w := x.Shape[0], x.Shape[1], x.Shape[2], x.Shape[3]
	oh, ow := h/2, w/2
	out := New(n, c, oh, ow)
	arg := make([]int32, n*c*oh*ow)
	for i := 0; i < n; i++ {
		for ch := 0; ch < c; ch++ {
			base := (i*c + ch) * h * w
			obase := (i*c + ch) * oh * ow
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					i0 := base + (2*oy)*w + 2*ox
					best, bi := x.Data[i0], i0
					for _, idx := range [3]int{i0 + 1, i0 + w, i0 + w + 1} {
						if x.Data[idx] > best {
							best, bi = x.Data[idx], idx
						}
					}
					out.Data[obase+oy*ow+ox] = best
					arg[obase+oy*ow+ox] = int32(bi)
				}
			}
		}
	}
	return out, arg
}

// MaxPool2Backward routes the pooled gradient back to the argmax positions
// recorded by MaxPool2.
func MaxPool2Backward(grad *Tensor, arg []int32, inShape []int) *Tensor {
	out := New(inShape...)
	for i, g := range grad.Data {
		out.Data[arg[i]] += g
	}
	return out
}
