// Package tensor provides a minimal float32 n-dimensional array with the
// operations needed to train and run convolutional neural networks:
// parallel matrix multiplication, im2col-based convolution, pooling and the
// usual elementwise kernels. It is the numeric substrate for the RADAR
// reproduction and deliberately depends only on the standard library.
package tensor

import (
	"fmt"
	"math"
	"math/rand"
)

// Tensor is a dense, row-major float32 array with an explicit shape.
// The zero value is not useful; construct tensors with New, Zeros, or
// FromSlice.
type Tensor struct {
	// Shape holds the extent of each dimension, outermost first.
	Shape []int
	// Data is the backing storage in row-major order. len(Data) equals the
	// product of Shape.
	Data []float32
}

// New returns a zero-filled tensor with the given shape.
func New(shape ...int) *Tensor {
	n := 1
	for _, s := range shape {
		if s <= 0 {
			panic(fmt.Sprintf("tensor: non-positive dimension %d in shape %v", s, shape))
		}
		n *= s
	}
	return &Tensor{Shape: append([]int(nil), shape...), Data: make([]float32, n)}
}

// Zeros is an alias of New, provided for readability at call sites.
func Zeros(shape ...int) *Tensor { return New(shape...) }

// FromSlice wraps data in a tensor of the given shape. The slice is used
// directly (not copied); its length must match the shape volume.
func FromSlice(data []float32, shape ...int) *Tensor {
	n := 1
	for _, s := range shape {
		n *= s
	}
	if n != len(data) {
		panic(fmt.Sprintf("tensor: data length %d does not match shape %v (volume %d)", len(data), shape, n))
	}
	return &Tensor{Shape: append([]int(nil), shape...), Data: data}
}

// Len returns the total number of elements.
func (t *Tensor) Len() int { return len(t.Data) }

// Dim returns the extent of dimension i.
func (t *Tensor) Dim(i int) int { return t.Shape[i] }

// NDim returns the number of dimensions.
func (t *Tensor) NDim() int { return len(t.Shape) }

// Volume returns the product of the given shape.
func Volume(shape []int) int {
	n := 1
	for _, s := range shape {
		n *= s
	}
	return n
}

// SameShape reports whether a and b have identical shapes.
func SameShape(a, b *Tensor) bool {
	if len(a.Shape) != len(b.Shape) {
		return false
	}
	for i := range a.Shape {
		if a.Shape[i] != b.Shape[i] {
			return false
		}
	}
	return true
}

// Clone returns a deep copy of t.
func (t *Tensor) Clone() *Tensor {
	c := New(t.Shape...)
	copy(c.Data, t.Data)
	return c
}

// Reshape returns a view of t with a new shape of equal volume. The data is
// shared with t.
func (t *Tensor) Reshape(shape ...int) *Tensor {
	if Volume(shape) != len(t.Data) {
		panic(fmt.Sprintf("tensor: cannot reshape volume %d to %v", len(t.Data), shape))
	}
	return &Tensor{Shape: append([]int(nil), shape...), Data: t.Data}
}

// At returns the element at the given multi-index.
func (t *Tensor) At(idx ...int) float32 {
	return t.Data[t.offset(idx)]
}

// Set stores v at the given multi-index.
func (t *Tensor) Set(v float32, idx ...int) {
	t.Data[t.offset(idx)] = v
}

func (t *Tensor) offset(idx []int) int {
	if len(idx) != len(t.Shape) {
		panic(fmt.Sprintf("tensor: index rank %d does not match shape %v", len(idx), t.Shape))
	}
	off := 0
	for i, x := range idx {
		if x < 0 || x >= t.Shape[i] {
			panic(fmt.Sprintf("tensor: index %v out of bounds for shape %v", idx, t.Shape))
		}
		off = off*t.Shape[i] + x
	}
	return off
}

// Fill sets every element to v.
func (t *Tensor) Fill(v float32) {
	for i := range t.Data {
		t.Data[i] = v
	}
}

// Zero resets every element to 0.
func (t *Tensor) Zero() { t.Fill(0) }

// RandNormal fills t with draws from N(0, std²) using rng.
func (t *Tensor) RandNormal(rng *rand.Rand, std float64) {
	for i := range t.Data {
		t.Data[i] = float32(rng.NormFloat64() * std)
	}
}

// RandUniform fills t with draws from U(lo, hi) using rng.
func (t *Tensor) RandUniform(rng *rand.Rand, lo, hi float64) {
	for i := range t.Data {
		t.Data[i] = float32(lo + rng.Float64()*(hi-lo))
	}
}

// KaimingInit fills t with He-normal initialization for a layer with the
// given fan-in, the standard initialization for ReLU networks.
func (t *Tensor) KaimingInit(rng *rand.Rand, fanIn int) {
	std := math.Sqrt(2.0 / float64(fanIn))
	t.RandNormal(rng, std)
}

// MaxAbs returns the largest absolute value in t (0 for empty tensors).
func (t *Tensor) MaxAbs() float32 {
	var m float32
	for _, v := range t.Data {
		if v < 0 {
			v = -v
		}
		if v > m {
			m = v
		}
	}
	return m
}

// Sum returns the sum of all elements in float64 precision.
func (t *Tensor) Sum() float64 {
	var s float64
	for _, v := range t.Data {
		s += float64(v)
	}
	return s
}

// Mean returns the arithmetic mean of all elements.
func (t *Tensor) Mean() float64 {
	if len(t.Data) == 0 {
		return 0
	}
	return t.Sum() / float64(len(t.Data))
}

// String implements fmt.Stringer with a compact shape+preview rendering.
func (t *Tensor) String() string {
	n := len(t.Data)
	if n > 8 {
		n = 8
	}
	return fmt.Sprintf("Tensor%v%v…", t.Shape, t.Data[:n])
}
