package tensor

import (
	"runtime"
	"sync"
)

// maxWorkers bounds the goroutine fan-out used by parallel kernels.
var maxWorkers = runtime.GOMAXPROCS(0)

// parallelFor splits [0,n) into contiguous chunks and runs fn(lo,hi) on each
// concurrently. Small ranges run inline to avoid goroutine overhead.
func parallelFor(n int, fn func(lo, hi int)) {
	const minChunk = 256
	workers := maxWorkers
	if workers > n/minChunk {
		workers = n / minChunk
	}
	if workers <= 1 {
		fn(0, n)
		return
	}
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// Add returns a + b elementwise. Shapes must match.
func Add(a, b *Tensor) *Tensor {
	mustSameShape(a, b, "Add")
	out := New(a.Shape...)
	for i := range a.Data {
		out.Data[i] = a.Data[i] + b.Data[i]
	}
	return out
}

// AddInPlace accumulates b into a elementwise and returns a.
func AddInPlace(a, b *Tensor) *Tensor {
	mustSameShape(a, b, "AddInPlace")
	for i := range a.Data {
		a.Data[i] += b.Data[i]
	}
	return a
}

// Sub returns a - b elementwise.
func Sub(a, b *Tensor) *Tensor {
	mustSameShape(a, b, "Sub")
	out := New(a.Shape...)
	for i := range a.Data {
		out.Data[i] = a.Data[i] - b.Data[i]
	}
	return out
}

// Mul returns the elementwise (Hadamard) product a * b.
func Mul(a, b *Tensor) *Tensor {
	mustSameShape(a, b, "Mul")
	out := New(a.Shape...)
	for i := range a.Data {
		out.Data[i] = a.Data[i] * b.Data[i]
	}
	return out
}

// Scale multiplies every element of t by s in place and returns t.
func (t *Tensor) Scale(s float32) *Tensor {
	for i := range t.Data {
		t.Data[i] *= s
	}
	return t
}

// AXPY performs a += alpha*b in place.
func AXPY(alpha float32, b, a *Tensor) {
	mustSameShape(a, b, "AXPY")
	for i := range a.Data {
		a.Data[i] += alpha * b.Data[i]
	}
}

func mustSameShape(a, b *Tensor, op string) {
	if !SameShape(a, b) {
		panic("tensor: " + op + ": shape mismatch")
	}
}

// MatMul computes the matrix product C = A·B where A is (m×k) and B is
// (k×n). Rows of C are computed in parallel. Inner loops are written in the
// ikj order so that the innermost traversal is contiguous in both B and C.
func MatMul(a, b *Tensor) *Tensor {
	if a.NDim() != 2 || b.NDim() != 2 {
		panic("tensor: MatMul requires 2-D operands")
	}
	m, k := a.Shape[0], a.Shape[1]
	k2, n := b.Shape[0], b.Shape[1]
	if k != k2 {
		panic("tensor: MatMul inner dimension mismatch")
	}
	out := New(m, n)
	parallelForRows(m, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			arow := a.Data[i*k : (i+1)*k]
			crow := out.Data[i*n : (i+1)*n]
			for p := 0; p < k; p++ {
				av := arow[p]
				if av == 0 {
					continue
				}
				brow := b.Data[p*n : (p+1)*n]
				for j := range crow {
					crow[j] += av * brow[j]
				}
			}
		}
	})
	return out
}

// MatMulTransA computes C = Aᵀ·B where A is (k×m) and B is (k×n), producing
// an (m×n) result. Used by convolution backward passes.
func MatMulTransA(a, b *Tensor) *Tensor {
	if a.NDim() != 2 || b.NDim() != 2 {
		panic("tensor: MatMulTransA requires 2-D operands")
	}
	k, m := a.Shape[0], a.Shape[1]
	k2, n := b.Shape[0], b.Shape[1]
	if k != k2 {
		panic("tensor: MatMulTransA inner dimension mismatch")
	}
	out := New(m, n)
	// Parallelize over output rows; each output row i gathers column i of A.
	parallelForRows(m, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			crow := out.Data[i*n : (i+1)*n]
			for p := 0; p < k; p++ {
				av := a.Data[p*m+i]
				if av == 0 {
					continue
				}
				brow := b.Data[p*n : (p+1)*n]
				for j := range crow {
					crow[j] += av * brow[j]
				}
			}
		}
	})
	return out
}

// MatMulTransB computes C = A·Bᵀ where A is (m×k) and B is (n×k), producing
// an (m×n) result.
func MatMulTransB(a, b *Tensor) *Tensor {
	if a.NDim() != 2 || b.NDim() != 2 {
		panic("tensor: MatMulTransB requires 2-D operands")
	}
	m, k := a.Shape[0], a.Shape[1]
	n, k2 := b.Shape[0], b.Shape[1]
	if k != k2 {
		panic("tensor: MatMulTransB inner dimension mismatch")
	}
	out := New(m, n)
	parallelForRows(m, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			arow := a.Data[i*k : (i+1)*k]
			crow := out.Data[i*n : (i+1)*n]
			for j := 0; j < n; j++ {
				brow := b.Data[j*k : (j+1)*k]
				var s float32
				for p := range arow {
					s += arow[p] * brow[p]
				}
				crow[j] = s
			}
		}
	})
	return out
}

// parallelForRows distributes whole rows across workers; unlike parallelFor
// it parallelizes even small row counts because each row can be heavy.
func parallelForRows(rows int, fn func(lo, hi int)) {
	workers := maxWorkers
	if workers > rows {
		workers = rows
	}
	if workers <= 1 {
		fn(0, rows)
		return
	}
	var wg sync.WaitGroup
	chunk := (rows + workers - 1) / workers
	for lo := 0; lo < rows; lo += chunk {
		hi := lo + chunk
		if hi > rows {
			hi = rows
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// Transpose returns the transpose of a 2-D tensor.
func Transpose(a *Tensor) *Tensor {
	if a.NDim() != 2 {
		panic("tensor: Transpose requires a 2-D operand")
	}
	m, n := a.Shape[0], a.Shape[1]
	out := New(n, m)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			out.Data[j*m+i] = a.Data[i*n+j]
		}
	}
	return out
}

// Argmax returns the index of the largest element in a 1-D slice of Data
// starting at off with length n.
func (t *Tensor) Argmax(off, n int) int {
	best, bi := t.Data[off], 0
	for i := 1; i < n; i++ {
		if t.Data[off+i] > best {
			best, bi = t.Data[off+i], i
		}
	}
	return bi
}
