// Package core implements RADAR — the paper's contribution: a run-time
// adversarial weight-attack detection and accuracy-recovery scheme.
//
// Weights of a layer are organized into groups of G (optionally
// interleaved, so group members were originally ≈N positions apart, N being
// the group count). Each weight contributes ±q to an addition checksum M
// according to a per-layer 16-bit secret key ("masking"); the group's
// signature is the 2-bit (or 3-bit) binarization of M:
//
//	S_A = ⌊M/256⌋ mod 2,  S_B = ⌊M/128⌋ mod 2,  (S_C = ⌊M/64⌋ mod 2)
//
// S_B acts as a parity on MSBs (an MSB flip changes M by ±128), S_A
// catches same-direction double flips, masking randomizes the relative
// signs of paired flips, and interleaving scatters spatially clustered
// flips into distinct groups. Golden signatures live in secure on-chip
// storage; a run-time scan recomputes signatures over the fetched weights
// and flags mismatching groups, whose weights are then zeroed (recovery).
package core

import "fmt"

// KeyBits is N_k, the per-layer secret key length of the paper.
const KeyBits = 16

// DefaultOffset is the paper's interleaving offset ("an additional offset
// of 3 in all our experiments").
const DefaultOffset = 3

// Scheme is the per-layer RADAR configuration: grouping geometry, secret
// key and signature width. It is a value type; all methods are pure.
type Scheme struct {
	// G is the group size.
	G int
	// Interleave selects interleaved grouping (members ≈N apart) instead of
	// contiguous grouping.
	Interleave bool
	// Offset is the per-row rotation of the interleaved assignment (secret,
	// per layer; paper default 3).
	Offset int
	// Key is the 16-bit masking key (secret, per layer).
	Key uint16
	// SigBits is 2 (S_A,S_B) or 3 (adds S_C protecting MSB-1).
	SigBits int
}

// Validate panics on nonsensical configurations; schemes are built by
// trusted code paths, so misconfiguration is a programming error.
func (s Scheme) Validate(l int) {
	if s.G <= 0 {
		panic("core: group size must be positive")
	}
	if s.SigBits != 2 && s.SigBits != 3 {
		panic(fmt.Sprintf("core: SigBits must be 2 or 3, got %d", s.SigBits))
	}
	if l <= 0 {
		panic("core: empty layer")
	}
}

// NumGroups returns N = ⌈L/G⌉ for a layer of l weights.
func (s Scheme) NumGroups(l int) int {
	return (l + s.G - 1) / s.G
}

// GroupOf maps weight index i of a layer with l weights to its group.
//
// Interleaved: deal the layer row-wise into N columns; row r = i/N,
// column c = i mod N; the group is (c + Offset·r) mod N, so each group
// receives exactly one element per row and members of a group are ≈N
// positions apart in the original layout.
//
// Contiguous: group = i/G.
func (s Scheme) GroupOf(i, l int) int {
	n := s.NumGroups(l)
	if !s.Interleave {
		return i / s.G
	}
	r := i / n
	c := i % n
	return (c + s.Offset*r) % n
}

// PositionOf returns the weight's position t within its group (0 ≤ t < G),
// which indexes the masking keystream.
func (s Scheme) PositionOf(i, l int) int {
	if !s.Interleave {
		return i % s.G
	}
	return i / s.NumGroups(l)
}

// Members returns the weight indices of group j in ascending position
// order. Virtual padding positions (when G·N > L) are simply absent.
func (s Scheme) Members(j, l int) []int {
	n := s.NumGroups(l)
	if !s.Interleave {
		lo := j * s.G
		hi := lo + s.G
		if hi > l {
			hi = l
		}
		if lo >= l {
			return nil
		}
		out := make([]int, hi-lo)
		for k := range out {
			out[k] = lo + k
		}
		return out
	}
	out := make([]int, 0, s.G)
	for r := 0; r < s.G; r++ {
		c := ((j-s.Offset*r)%n + n) % n
		i := r*n + c
		if i < l {
			out = append(out, i)
		}
	}
	return out
}

// VisitMembers calls visit(t, i) for every weight index i of group j in
// ascending position order t — the allocation-free form of Members, used
// by the per-group checksum and the recovery zeroing paths where a
// fresh index slice per group call would dominate the cost.
func (s Scheme) VisitMembers(j, l int, visit func(t, i int)) {
	n := s.NumGroups(l)
	if !s.Interleave {
		lo := j * s.G
		hi := lo + s.G
		if hi > l {
			hi = l
		}
		for i := lo; i < hi; i++ {
			visit(i-lo, i)
		}
		return
	}
	t := 0
	for r := 0; r < s.G; r++ {
		c := ((j-s.Offset*r)%n + n) % n
		if i := r*n + c; i < l {
			visit(t, i)
			t++
		}
	}
}

// maskSign returns −1 or +1 for keystream position t: key bit 0 means the
// weight enters the checksum two's-complemented (negated), per Algorithm 1.
func (s Scheme) maskSign(t int) int32 {
	if (s.Key>>(uint(t)%KeyBits))&1 == 0 {
		return -1
	}
	return 1
}

// Checksum computes the masked addition checksum M of group j over the
// layer's quantized weights. It is the scalar, one-group-at-a-time
// reference the SWAR kernels are property-tested against; it allocates
// nothing.
func (s Scheme) Checksum(q []int8, j int) int32 {
	var m int32
	s.VisitMembers(j, len(q), func(t, i int) {
		m += s.maskSign(t) * int32(q[i])
	})
	return m
}

// Binarize derives the signature bits from a checksum. Arithmetic shifts
// implement the paper's floor-division semantics exactly, including for
// negative M. Bit layout: bit0 = S_B (⌊M/128⌋ mod 2), bit1 = S_A
// (⌊M/256⌋ mod 2), bit2 = S_C (⌊M/64⌋ mod 2, only when SigBits == 3).
func (s Scheme) Binarize(m int32) uint8 {
	sb := uint8((m >> 7) & 1)
	sa := uint8((m >> 8) & 1)
	sig := sb | sa<<1
	if s.SigBits == 3 {
		sc := uint8((m >> 6) & 1)
		sig |= sc << 2
	}
	return sig
}

// Signature computes the signature of group j directly.
func (s Scheme) Signature(q []int8, j int) uint8 {
	return s.Binarize(s.Checksum(q, j))
}

// Signatures computes the signature of every group of a layer (the form
// the run-time scan uses). It delegates to SignaturesRange and thus the
// SWAR kernel in swar.go, which consumes 8 int8 weights per uint64 load —
// bit-identical to the per-group Checksum path (property-tested; the PR 1
// scalar row-segment walk survives as SignaturesRangeRef).
func (s Scheme) Signatures(q []int8) []uint8 {
	return s.SignaturesRange(q, 0, s.NumGroups(len(q)))
}

// Compare returns the indices of groups whose signatures differ.
func Compare(golden, fresh []uint8) []int {
	if len(golden) != len(fresh) {
		panic("core: signature length mismatch")
	}
	var bad []int
	for i := range golden {
		if golden[i] != fresh[i] {
			bad = append(bad, i)
		}
	}
	return bad
}
