package core

import (
	"radar/internal/ecc"
	"radar/internal/quant"
)

// ECC-corrected recovery. With Config.Correct set, Protect additionally
// encodes one SEC-DED extended-Hamming check word per checksum group over
// the group's full bit image (8 bits per int8 weight, LSB first, members
// in position order). The signature scan stays the detector — the check
// words are never scanned — but when a scan flags a group, recovery
// consults the code before falling back to the paper's zeroing:
//
//   - class 1 (single bit wrong): the flipped bit is located and restored
//     in place, so the group returns to its exact pre-attack bytes instead
//     of losing all G weights;
//   - class 0 (weights verify against the code): the weights are intact,
//     so the *golden signature itself* was corrupted (a signature-store
//     attack); the golden value is recomputed from the verified weights
//     and no weight is touched;
//   - class 2 (double error) or any correction that fails re-verification
//     against the golden signature: fall back to zeroing, never miscorrect
//     silently.
//
// Check words are not sealed by Seal/Unseal (they are derived data and a
// sealed protector simply runs without correction), and like the golden
// signatures they are trusted storage in the threat model — except that
// the sigstore adversary deliberately violates that assumption for
// signatures, which is exactly the case class 0 repairs.

// Correcting reports whether ECC-corrected recovery is enabled.
func (p *Protector) Correcting() bool { return p.correct }

// groupCode sizes the SEC-DED code for group g's member count (tail groups
// and interleaved groups may hold fewer than G weights).
func (p *Protector) groupCode(g GroupID) ecc.Hamming {
	l := p.Model.Layers[g.Layer]
	count := 0
	p.Schemes[g.Layer].VisitMembers(g.Group, len(l.Q), func(_, _ int) { count++ })
	return ecc.NewHamming(count * 8)
}

// appendGroupBits appends group g's bit image (members in position order,
// each weight LSB first) and member indices onto the given buffers.
func (p *Protector) appendGroupBits(bits []uint8, idx []int, g GroupID) ([]uint8, []int) {
	l := p.Model.Layers[g.Layer]
	p.Schemes[g.Layer].VisitMembers(g.Group, len(l.Q), func(_, i int) {
		idx = append(idx, i)
		v := uint8(l.Q[i])
		for b := 0; b < 8; b++ {
			bits = append(bits, (v>>uint(b))&1)
		}
	})
	return bits, idx
}

// encodeGroup computes group g's check word from the live weights.
func (p *Protector) encodeGroup(g GroupID) uint32 {
	bits, _ := p.appendGroupBits(nil, nil, g)
	return ecc.NewHamming(len(bits)).Encode(bits)
}

// refreshChecksLayer recomputes layer li's stored check words from the
// current weights. Called wherever golden signatures are refreshed, so the
// two stay in lockstep; no-op when correction is off.
func (p *Protector) refreshChecksLayer(li int) {
	if !p.correct {
		return
	}
	if len(p.Check) != len(p.Model.Layers) {
		p.Check = make([][]uint32, len(p.Model.Layers))
	}
	l := p.Model.Layers[li]
	n := p.Schemes[li].NumGroups(len(l.Q))
	if len(p.Check[li]) != n {
		p.Check[li] = make([]uint32, n)
	}
	for j := 0; j < n; j++ {
		p.Check[li][j] = p.encodeGroup(GroupID{Layer: li, Group: j})
	}
}

// refreshChecksAll recomputes every layer's check words.
func (p *Protector) refreshChecksAll() {
	if !p.correct {
		return
	}
	for li := range p.Model.Layers {
		p.refreshChecksLayer(li)
	}
}

// repairGroupLocked recovers one flagged group under the layer's write
// lock: with correction enabled it first tries the ECC path, and on
// failure — or with correction off — it falls back to zeroing. It returns
// the number of weights zeroed, whether any weight byte was written (the
// caller's MarkWritten trigger), and whether the ECC path repaired the
// group.
func (p *Protector) repairGroupLocked(g GroupID) (zeroed int, wrote, corrected bool) {
	if p.correct {
		var eccWrote bool
		if corrected, eccWrote = p.correctGroupLocked(g); corrected {
			return 0, eccWrote, true
		}
		wrote = eccWrote // a failed correction may have flipped a bit; zeroing overwrites it
	}
	zeroed = p.recoverGroupLocked(g)
	if p.correct {
		// The zeroed image needs a matching check word or the next flag
		// of this group would "correct" it back toward garbage.
		p.Check[g.Layer][g.Group] = p.encodeGroup(g)
	}
	return zeroed, wrote || zeroed > 0, false
}

// correctGroupLocked consults group g's stored check word and attempts
// repair. It reports whether the group was repaired and whether a weight
// byte was written. On any uncertainty it returns ok=false and lets the
// caller zero the group.
func (p *Protector) correctGroupLocked(g GroupID) (ok, wrote bool) {
	if len(p.Check) <= g.Layer || len(p.Check[g.Layer]) <= g.Group {
		return false, false
	}
	l := p.Model.Layers[g.Layer]
	s := p.Schemes[g.Layer]
	bits, idx := p.appendGroupBits(nil, nil, g)
	h := ecc.NewHamming(len(bits))
	stored := p.Check[g.Layer][g.Group]
	fresh := h.Encode(bits)
	switch h.Classify(stored, fresh) {
	case 0:
		// The weights verify against the code, yet the signature scan
		// flagged the group: the golden signature itself is corrupted
		// (signature-store attack). Restore it from the verified weights.
		p.Golden[g.Layer][g.Group] = s.Signature(l.Q, g.Group)
		return true, false
	case 1:
		pos := h.CorrectSingle(stored, fresh)
		di := h.DataIndexOf(pos)
		if di < 0 || di >= len(bits) {
			// Parity-position or out-of-range correction: the stored word
			// itself is suspect. Fall back.
			return false, false
		}
		wi := idx[di/8]
		l.Q[wi] = quant.FlipBit(l.Q[wi], di%8)
		l.SyncIndex(wi)
		// Never miscorrect silently: the repaired bytes must reproduce the
		// golden signature, or the "single error" was multi-bit aliasing.
		if s.Signature(l.Q, g.Group) != p.Golden[g.Layer][g.Group] {
			return false, true
		}
		return true, true
	default:
		return false, false // double error: detectable, uncorrectable
	}
}
