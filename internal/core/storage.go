package core

// StorageBreakdown itemizes the secure on-chip storage a RADAR deployment
// needs. The paper's headline numbers (8.2 KB for ResNet-20 at G=8, 5.6 KB
// for ResNet-18 at G=512) count the signature bits.
type StorageBreakdown struct {
	// SignatureBits is the total golden-signature storage.
	SignatureBits int
	// KeyBits is the per-layer masking keys (16 bits each).
	KeyBits int
	// OffsetBits is the per-layer interleave offsets (8 bits each,
	// 0 when interleaving is disabled).
	OffsetBits int
}

// TotalBytes returns the full secure-storage requirement in bytes.
func (b StorageBreakdown) TotalBytes() float64 {
	return float64(b.SignatureBits+b.KeyBits+b.OffsetBits) / 8
}

// SignatureKB returns the signature storage in KB (the paper's metric).
func (b StorageBreakdown) SignatureKB() float64 {
	return float64(b.SignatureBits) / 8 / 1024
}

// Storage reports the secure-storage requirement of this protector.
func (p *Protector) Storage() StorageBreakdown {
	var b StorageBreakdown
	for li, l := range p.Model.Layers {
		s := p.Schemes[li]
		b.SignatureBits += s.NumGroups(len(l.Q)) * s.SigBits
		b.KeyBits += KeyBits
		if s.Interleave {
			b.OffsetBits += 8
		}
	}
	return b
}

// StorageForWeights computes the signature storage for an arbitrary layer
// size inventory without instantiating a model — used with the full-size
// shape tables for the paper's storage numbers (Fig 6, Table V).
func StorageForWeights(layerWeights []int, g, sigBits int, interleave bool) StorageBreakdown {
	var b StorageBreakdown
	for _, l := range layerWeights {
		if l == 0 {
			continue
		}
		n := (l + g - 1) / g
		b.SignatureBits += n * sigBits
		b.KeyBits += KeyBits
		if interleave {
			b.OffsetBits += 8
		}
	}
	return b
}
