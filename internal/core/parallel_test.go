package core

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"radar/internal/nn"
	"radar/internal/quant"
	"radar/internal/tensor"
)

// syntheticModel builds a quant.Model with the given layer sizes and
// deterministic weights. Layers carry no Param, so tests corrupt Q
// directly (which also exercises the "dirty tracking misses direct
// writes" contract where relevant).
func syntheticModel(rng *rand.Rand, sizes []int) *quant.Model {
	m := &quant.Model{}
	for _, n := range sizes {
		m.Layers = append(m.Layers, &quant.Layer{Q: randWeights(rng, n), Scale: 1})
	}
	return m
}

// flipRandomBits corrupts k random bits across the model, bypassing the
// Model API (no dirty notification, no float sync).
func flipRandomBits(rng *rand.Rand, m *quant.Model, k int) {
	for f := 0; f < k; f++ {
		l := m.Layers[rng.Intn(len(m.Layers))]
		i := rng.Intn(len(l.Q))
		l.Q[i] = quant.FlipBit(l.Q[i], rng.Intn(8))
	}
}

// TestSignaturesRangeMatchesSignatures: the sharded per-range computation
// is byte-identical to the single-pass full-layer scan over random
// geometries, keys, offsets, and range boundaries.
func TestSignaturesRangeMatchesSignatures(t *testing.T) {
	f := func(seed int64, key uint16, interleave bool) bool {
		rng := rand.New(rand.NewSource(seed))
		l := 1 + rng.Intn(600)
		s := scheme(1+rng.Intn(64), interleave, key)
		s.Offset = rng.Intn(7)
		q := randWeights(rng, l)
		want := s.Signatures(q)
		n := s.NumGroups(l)
		// Full range in one call.
		if got := s.SignaturesRange(q, 0, n); !reflect.DeepEqual(got, want) {
			return false
		}
		// Random chunking must tile to the same signatures.
		lo := 0
		for lo < n {
			hi := lo + 1 + rng.Intn(n-lo)
			got := s.SignaturesRange(q, lo, hi)
			if !reflect.DeepEqual(got, want[lo:hi]) {
				return false
			}
			lo = hi
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestScanParallelMatchesSequential: Scan with Workers: N returns exactly
// the flagged set and order of Workers: 1, over random models, corruption
// patterns, shard sizes, and worker counts. Run under -race this also
// exercises the pool handoff.
func TestScanParallelMatchesSequential(t *testing.T) {
	f := func(seed int64, interleave bool) bool {
		rng := rand.New(rand.NewSource(seed))
		sizes := make([]int, 1+rng.Intn(6))
		for i := range sizes {
			sizes[i] = 1 + rng.Intn(2000)
		}
		m := syntheticModel(rng, sizes)
		cfg := Config{
			G:           1 + rng.Intn(64),
			Interleave:  interleave,
			SigBits:     2 + rng.Intn(2),
			Seed:        seed,
			ShardGroups: 1 + rng.Intn(50),
		}
		cfg.Workers = 1
		p := Protect(m, cfg)
		flipRandomBits(rng, m, 1+rng.Intn(40))
		want := p.Scan()
		for _, w := range []int{2, 3, 8, 0} {
			p.SetWorkers(w)
			if got := p.Scan(); !reflect.DeepEqual(got, want) {
				t.Logf("workers=%d: got %v want %v", w, got, want)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestProtectParallelMatchesSequential: golden signatures are independent
// of the worker count and shard size used to generate them.
func TestProtectParallelMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	m := syntheticModel(rng, []int{3000, 1, 517, 2048})
	cfg := DefaultConfig(32)
	cfg.Workers = 1
	seq := Protect(m, cfg)
	for _, w := range []int{2, 7, 0} {
		c := cfg
		c.Workers = w
		c.ShardGroups = 5
		par := Protect(m, c)
		if !reflect.DeepEqual(par.Schemes, seq.Schemes) {
			t.Fatalf("workers=%d: schemes differ", w)
		}
		if !reflect.DeepEqual(par.Golden, seq.Golden) {
			t.Fatalf("workers=%d: golden signatures differ", w)
		}
	}
}

// TestDetectAndRecoverPipelinedMatchesScan: the overlapped scan/recover
// pipeline flags exactly what a plain Scan reports, recovery leaves the
// model clean, and the result is stable across worker counts.
func TestDetectAndRecoverPipelinedMatchesScan(t *testing.T) {
	for _, workers := range []int{1, 4} {
		rng := rand.New(rand.NewSource(42))
		m := syntheticModel(rng, []int{900, 1300, 700, 2100})
		cfg := DefaultConfig(16)
		cfg.Workers = workers
		cfg.ShardGroups = 9
		p := Protect(m, cfg)
		flipRandomBits(rng, m, 25)
		// Recover would sync nil Params on these synthetic layers; stub the
		// float side in so the full pipeline runs.
		attachParams(m)
		want := p.Scan()
		if len(want) == 0 {
			t.Fatal("corruption not visible to Scan")
		}
		flagged, zeroed := p.DetectAndRecover()
		if !reflect.DeepEqual(flagged, want) {
			t.Fatalf("workers=%d: pipeline flagged %v, Scan flagged %v", workers, flagged, want)
		}
		if zeroed == 0 {
			t.Fatalf("workers=%d: nothing zeroed", workers)
		}
		if again := p.Scan(); len(again) != 0 {
			t.Fatalf("workers=%d: post-recovery scan flagged %v", workers, again)
		}
	}
}

// TestScanDirtyCleanAndAfterAttack: ScanDirty flags nothing on a clean
// model, flags everything a full Scan flags after an attack mounted
// through the Model API, and skips layers that were not rewritten.
func TestScanDirtyCleanAndAfterAttack(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m := syntheticModel(rng, []int{800, 1100, 600})
	attachParams(m)
	cfg := DefaultConfig(8)
	cfg.Workers = 4
	p := Protect(m, cfg)

	if flagged := p.ScanDirty(); flagged != nil {
		t.Fatalf("clean model: ScanDirty flagged %v", flagged)
	}

	// Attack through the Model API so dirty tracking sees it.
	var addrs []quant.BitAddress
	for f := 0; f < 12; f++ {
		li := rng.Intn(len(m.Layers))
		addrs = append(addrs, quant.BitAddress{
			LayerIndex:  li,
			WeightIndex: rng.Intn(len(m.Layers[li].Q)),
			Bit:         quant.MSB,
		})
		m.FlipBit(addrs[f])
	}

	dirty := p.ScanDirty()
	full := p.Scan() // golden untouched, so the full scan sees the same corruption
	if !reflect.DeepEqual(dirty, full) {
		t.Fatalf("ScanDirty %v != Scan %v", dirty, full)
	}
	if len(full) == 0 {
		t.Fatal("attack not detected")
	}

	// Scan cleared all dirty flags and nothing was recovered: the damage is
	// still in DRAM, but no layer is dirty, so the incremental scan skips
	// every layer — that skipping is the entire point of the API.
	if again := p.ScanDirty(); again != nil {
		t.Fatalf("no writes since last scan, yet ScanDirty flagged %v", again)
	}

	// A single new write re-dirties exactly one layer: ScanDirty reports
	// that layer's corruption (old and new) and still skips the others.
	m.FlipBit(quant.BitAddress{LayerIndex: 1, WeightIndex: 5, Bit: quant.MSB})
	for _, g := range p.ScanDirty() {
		if g.Layer != 1 {
			t.Fatalf("clean layer %d scanned: %v", g.Layer, g)
		}
	}
}

// TestDetachStopsDirtyTracking: a detached protector no longer observes
// model writes (the retire path for re-protected models), while an
// attached one on the same model still does.
func TestDetachStopsDirtyTracking(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	m := syntheticModel(rng, []int{400})
	attachParams(m)
	old := Protect(m, DefaultConfig(8))
	old.Detach()
	cur := Protect(m, DefaultConfig(16))
	m.FlipBit(quant.BitAddress{LayerIndex: 0, WeightIndex: 9, Bit: quant.MSB})
	if flagged := old.ScanDirty(); flagged != nil {
		t.Fatalf("detached protector saw the write: %v", flagged)
	}
	if flagged := cur.ScanDirty(); len(flagged) != 1 {
		t.Fatalf("attached protector missed the write: %v", flagged)
	}
}

// TestScanDirtySeesRestore: Restore rewrites every layer through the Model
// API, so a subsequent ScanDirty re-checks the whole model.
func TestScanDirtySeesRestore(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	m := syntheticModel(rng, []int{500, 700})
	attachParams(m)
	p := Protect(m, DefaultConfig(8))
	snap := m.Snapshot()
	m.FlipBit(quant.BitAddress{LayerIndex: 0, WeightIndex: 3, Bit: quant.MSB})
	if flagged := p.ScanDirty(); len(flagged) != 1 {
		t.Fatalf("flip not flagged: %v", flagged)
	}
	m.Restore(snap)
	if flagged := p.ScanDirty(); flagged != nil {
		t.Fatalf("restored model flagged %v", flagged)
	}
}

// attachParams wires a float tensor to each synthetic layer so SyncIndex
// has somewhere to write during FlipBit/Recover.
func attachParams(m *quant.Model) {
	for _, l := range m.Layers {
		if l.Param == nil {
			l.Param = nn.NewParam("test", tensor.New(len(l.Q)), true)
		}
	}
}
