package core

import (
	"sync"
	"testing"

	"radar/internal/model"
	"radar/internal/quant"
)

func guardTestModel() *quant.Model {
	tab := &model.ShapeTable{Layers: []model.LayerShape{
		{Name: "l0", Weights: 400},
		{Name: "l1", Weights: 640},
		{Name: "l2", Weights: 250},
	}}
	return model.SyntheticQuant(tab)
}

func TestVerifyAndRecoverLayer(t *testing.T) {
	m := guardTestModel()
	p := Protect(m, Config{G: 16, Interleave: true, SigBits: 2, Seed: 5})
	p.Coordinate(NewLayerGuard(len(m.Layers)))

	// Clean layer: nothing flagged, nothing zeroed.
	if flagged, zeroed := p.VerifyAndRecoverLayer(1); len(flagged) != 0 || zeroed != 0 {
		t.Fatalf("clean layer flagged %v zeroed %d", flagged, zeroed)
	}

	// Corrupt layer 1 directly (bypassing the API, like hardware would).
	m.Layers[1].Q[17] = quant.FlipBit(m.Layers[1].Q[17], quant.MSB)
	flagged, zeroed := p.VerifyAndRecoverLayer(1)
	if len(flagged) != 1 || flagged[0].Layer != 1 {
		t.Fatalf("flagged %v, want one group in layer 1", flagged)
	}
	if zeroed == 0 {
		t.Fatal("nothing zeroed")
	}
	// The verify is also the recovery: an immediate rescan is clean.
	if again, _ := p.VerifyAndRecoverLayer(1); len(again) != 0 {
		t.Fatalf("recovery did not stick: %v", again)
	}
	// Result must equal what a full scan would now report: nothing.
	if s := p.Scan(); len(s) != 0 {
		t.Fatalf("full scan still flags %v", s)
	}
}

func TestProtectorStats(t *testing.T) {
	m := guardTestModel()
	p := Protect(m, Config{G: 16, Interleave: true, SigBits: 2, Seed: 5})
	if st := p.Stats(); st != (Stats{}) {
		t.Fatalf("fresh protector has nonzero stats: %+v", st)
	}
	p.Scan()
	m.Layers[0].Q[3] = quant.FlipBit(m.Layers[0].Q[3], quant.MSB)
	flagged := p.Scan()
	zeroed := p.Recover(flagged)
	st := p.Stats()
	if st.Scans != 2 {
		t.Fatalf("Scans = %d, want 2", st.Scans)
	}
	if st.GroupsFlagged != int64(len(flagged)) || len(flagged) == 0 {
		t.Fatalf("GroupsFlagged = %d, flagged %d", st.GroupsFlagged, len(flagged))
	}
	if st.GroupsRecovered != int64(len(flagged)) || st.WeightsZeroed != int64(zeroed) {
		t.Fatalf("recovery stats %+v, want %d groups / %d weights", st, len(flagged), zeroed)
	}
}

func TestDirtyCount(t *testing.T) {
	m := guardTestModel()
	p := Protect(m, Config{G: 16, SigBits: 2, Seed: 5})
	if n := p.DirtyCount(); n != 0 {
		t.Fatalf("fresh DirtyCount = %d", n)
	}
	p.MarkLayerDirty(0)
	p.MarkLayerDirty(2)
	p.MarkLayerDirty(2)
	if n := p.DirtyCount(); n != 2 {
		t.Fatalf("DirtyCount = %d, want 2", n)
	}
	p.ScanDirty()
	if n := p.DirtyCount(); n != 0 {
		t.Fatalf("DirtyCount after ScanDirty = %d", n)
	}
}

// TestGuardedRecoverConcurrentWithScans: with a guard attached, Recover
// may run while other goroutines scan — the coordination that makes the
// serving subsystem race-free. (Run under -race via `make race`.)
func TestGuardedRecoverConcurrentWithScans(t *testing.T) {
	m := guardTestModel()
	p := Protect(m, Config{G: 16, Interleave: true, SigBits: 2, Seed: 5, Workers: 2})
	g := NewLayerGuard(len(m.Layers))
	p.Coordinate(g)

	var wg sync.WaitGroup
	for c := 0; c < 3; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				p.Scan()
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			// Writers go through the guard, like Server.Inject does.
			a := quant.BitAddress{LayerIndex: i % 3, WeightIndex: i * 7 % 250, Bit: quant.MSB}
			g.LockLayer(a.LayerIndex)
			m.FlipBit(a)
			g.UnlockLayer(a.LayerIndex)
			p.DetectAndRecover()
		}
	}()
	wg.Wait()
	if flagged, _ := p.DetectAndRecover(); len(flagged) != 0 {
		t.Fatalf("still corrupt after quiesce: %v", flagged)
	}
}

func TestNilGuardNoops(t *testing.T) {
	var g *LayerGuard
	g.RLockLayer(0)
	g.RUnlockLayer(0)
	g.LockLayer(0)
	g.UnlockLayer(0)
	g.LockAll()
	g.UnlockAll()
}
