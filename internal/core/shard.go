package core

// DefaultShardGroups is the default number of checksum groups per parallel
// scan shard. At the paper's ResNet-18 deployment point (G=512) one shard
// covers ~half a megabyte of weights — big enough to amortize scheduling,
// small enough that a large layer still splits across the pool.
const DefaultShardGroups = 1024

// shard is one unit of parallel scan work: the group range [lo, hi) of one
// layer. Shards are totally ordered by (layer, lo); concatenating per-shard
// results in that order yields exactly the sequential scan order (layer
// ascending, group ascending).
type shard struct {
	layer, lo, hi int
}

// layerShards splits one layer's group range into chunks of at most
// shardGroups groups, in ascending group order.
func (p *Protector) layerShards(li int) []shard {
	sg := p.shardGroups
	if sg <= 0 {
		sg = DefaultShardGroups
	}
	n := p.Schemes[li].NumGroups(len(p.Model.Layers[li].Q))
	out := make([]shard, 0, (n+sg-1)/sg)
	for lo := 0; lo < n; lo += sg {
		hi := lo + sg
		if hi > n {
			hi = n
		}
		out = append(out, shard{layer: li, lo: lo, hi: hi})
	}
	return out
}

// shards splits every layer of the protected model, ordered by (layer, lo).
func (p *Protector) shards() []shard {
	var out []shard
	for li := range p.Model.Layers {
		out = append(out, p.layerShards(li)...)
	}
	return out
}

// SignaturesRange computes the signatures of groups [lo, hi) of a layer —
// the per-shard unit of the parallel engine. It returns exactly
// Signatures(q)[lo:hi]: the checksum of each group accumulates the same
// terms in the same row order, so the parallel scan is byte-identical to
// the sequential one. The interleaved path walks row segments (contiguous
// in memory) rather than group member lists, keeping the per-shard access
// pattern as cache-friendly as the full-layer single pass.
func (s Scheme) SignaturesRange(q []int8, lo, hi int) []uint8 {
	l := len(q)
	s.Validate(l)
	n := s.NumGroups(l)
	if hi > n {
		hi = n
	}
	if lo < 0 || lo >= hi {
		return nil
	}
	sums := make([]int32, hi-lo)
	if !s.Interleave {
		for j := lo; j < hi; j++ {
			base := j * s.G
			end := base + s.G
			if end > l {
				end = l
			}
			var m int32
			for i := base; i < end; i++ {
				m += s.maskSign(i-base) * int32(q[i])
			}
			sums[j-lo] = m
		}
	} else {
		rows := (l + n - 1) / n
		for r := 0; r < rows; r++ {
			sign := s.maskSign(r)
			base := r * n
			// Column of group lo in row r; consecutive groups occupy
			// consecutive columns (mod n), so the inner loop is sequential.
			c := ((lo-s.Offset*r)%n + n) % n
			for j := lo; j < hi; j++ {
				if i := base + c; i < l {
					sums[j-lo] += sign * int32(q[i])
				}
				c++
				if c == n {
					c = 0
				}
			}
		}
	}
	out := make([]uint8, hi-lo)
	for k, m := range sums {
		out[k] = s.Binarize(m)
	}
	return out
}

// scanShard recomputes one shard's signatures and compares them against the
// golden slice, returning flagged groups in ascending group order.
func (p *Protector) scanShard(sh shard) []GroupID {
	l := p.Model.Layers[sh.layer]
	fresh := p.Schemes[sh.layer].SignaturesRange(l.Q, sh.lo, sh.hi)
	golden := p.Golden[sh.layer][sh.lo:sh.hi]
	var out []GroupID
	for k := range fresh {
		if fresh[k] != golden[k] {
			out = append(out, GroupID{Layer: sh.layer, Group: sh.lo + k})
		}
	}
	return out
}

// scanShards runs the shard list on the worker pool and merges the
// per-shard results in shard order. Because shards arrive sorted by
// (layer, lo) and each shard reports ascending groups, the merged list is
// deterministically sorted by layer then group — identical to a
// single-goroutine scan regardless of worker count or scheduling. On a
// coordinated protector each shard reads its layer under the layer's read
// lock, so scans may overlap inference fetches but never a recovery write.
func (p *Protector) scanShards(sh []shard) []GroupID {
	return p.runShards(sh, true)
}

// scanShardsLocked is the variant for callers that already hold the write
// lock of every scanned layer (VerifyAndRecoverLayer): taking the read
// lock again would self-deadlock, and exclusion is already guaranteed.
func (p *Protector) scanShardsLocked(sh []shard) []GroupID {
	return p.runShards(sh, false)
}

func (p *Protector) runShards(sh []shard, lock bool) []GroupID {
	results := make([][]GroupID, len(sh))
	runTasks(p.poolSize(), len(sh), func(k int) {
		if lock {
			p.guard.RLockLayer(sh[k].layer)
			defer p.guard.RUnlockLayer(sh[k].layer)
		}
		results[k] = p.scanShard(sh[k])
	})
	var flagged []GroupID
	for _, r := range results {
		flagged = append(flagged, r...)
	}
	if len(flagged) > 0 {
		p.stats.groupsFlagged.Add(int64(len(flagged)))
	}
	return flagged
}
