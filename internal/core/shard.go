package core

import "sync/atomic"

// DefaultShardGroups is the default number of checksum groups per parallel
// scan shard. At the paper's ResNet-18 deployment point (G=512) one shard
// covers ~half a megabyte of weights — big enough to amortize scheduling,
// small enough that a large layer still splits across the pool.
const DefaultShardGroups = 1024

// shard is one unit of parallel scan work: the group range [lo, hi) of one
// layer. Shards are totally ordered by (layer, lo); concatenating per-shard
// results in that order yields exactly the sequential scan order (layer
// ascending, group ascending).
type shard struct {
	layer, lo, hi int
}

// appendLayerShards appends one layer's group range, split into chunks of
// at most shardGroups groups in ascending group order, onto dst. Appending
// into a caller-owned (pooled) slice keeps steady-state scans
// allocation-free.
func (p *Protector) appendLayerShards(dst []shard, li int) []shard {
	sg := p.shardGroups
	if sg <= 0 {
		sg = DefaultShardGroups
	}
	n := p.Schemes[li].NumGroups(len(p.Model.Layers[li].Q))
	for lo := 0; lo < n; lo += sg {
		hi := lo + sg
		if hi > n {
			hi = n
		}
		dst = append(dst, shard{layer: li, lo: lo, hi: hi})
	}
	return dst
}

// appendShards appends every layer's shards onto dst, ordered by
// (layer, lo).
func (p *Protector) appendShards(dst []shard) []shard {
	for li := range p.Model.Layers {
		dst = p.appendLayerShards(dst, li)
	}
	return dst
}

// SignaturesRange computes the signatures of groups [lo, hi) of a layer —
// the per-shard unit of the parallel engine. It returns exactly
// Signatures(q)[lo:hi]: the checksum of each group accumulates the same
// terms in the same row order, so the parallel scan is byte-identical to
// the sequential one. The heavy lifting is the SWAR kernel in swar.go,
// which consumes 8 weights per uint64 load; see SignaturesRangeRef for the
// retained scalar reference.
func (s Scheme) SignaturesRange(q []int8, lo, hi int) []uint8 {
	lo, hi, ok := s.clampRange(q, lo, hi)
	if !ok {
		return nil
	}
	out := make([]uint8, hi-lo)
	s.checksumRange(q, lo, hi, func(j int, m int32) {
		out[j-lo] = s.Binarize(m)
	})
	return out
}

// signaturesInto computes the signatures of groups [lo, hi) directly into
// dst (len hi−lo), allocating nothing — the form RefreshAll uses to write
// golden signatures in place.
func (s Scheme) signaturesInto(dst []uint8, q []int8, lo, hi int) {
	lo, hi, ok := s.clampRange(q, lo, hi)
	if !ok {
		return
	}
	s.checksumRange(q, lo, hi, func(j int, m int32) {
		dst[j-lo] = s.Binarize(m)
	})
}

// SignaturesRangeRef is the scalar reference kernel: the PR 1 row-segment
// walk, one multiply-add per weight. It is retained as the differential
// baseline the SWAR kernel is property-tested against and as the
// "old kernel" side of the scanscale before/after measurement; results are
// bit-identical to SignaturesRange.
func (s Scheme) SignaturesRangeRef(q []int8, lo, hi int) []uint8 {
	lo, hi, ok := s.clampRange(q, lo, hi)
	if !ok {
		return nil
	}
	l := len(q)
	n := s.NumGroups(l)
	sums := make([]int32, hi-lo)
	if !s.Interleave {
		for j := lo; j < hi; j++ {
			base := j * s.G
			end := base + s.G
			if end > l {
				end = l
			}
			var m int32
			for i := base; i < end; i++ {
				m += s.maskSign(i-base) * int32(q[i])
			}
			sums[j-lo] = m
		}
	} else {
		rows := (l + n - 1) / n
		for r := 0; r < rows; r++ {
			sign := s.maskSign(r)
			base := r * n
			// Column of group lo in row r; consecutive groups occupy
			// consecutive columns (mod n), so the inner loop is sequential.
			c := ((lo-s.Offset*r)%n + n) % n
			for j := lo; j < hi; j++ {
				if i := base + c; i < l {
					sums[j-lo] += sign * int32(q[i])
				}
				c++
				if c == n {
					c = 0
				}
			}
		}
	}
	out := make([]uint8, hi-lo)
	for k, m := range sums {
		out[k] = s.Binarize(m)
	}
	return out
}

// clampRange validates the layer and normalizes a group range the way the
// historical SignaturesRange did: hi clamped to NumGroups, empty or
// inverted ranges rejected.
func (s Scheme) clampRange(q []int8, lo, hi int) (int, int, bool) {
	l := len(q)
	s.Validate(l)
	if n := s.NumGroups(l); hi > n {
		hi = n
	}
	if lo < 0 || lo >= hi {
		return 0, 0, false
	}
	return lo, hi, true
}

// scanShard recomputes one shard's signatures and compares them against
// the golden slice as they are produced — no signature buffer is
// materialized, so a clean shard allocates nothing. Flagged groups are
// returned in ascending group order.
func (p *Protector) scanShard(sh shard) []GroupID {
	l := p.Model.Layers[sh.layer]
	s := p.Schemes[sh.layer]
	golden := p.Golden[sh.layer]
	var out []GroupID
	s.checksumRange(l.Q, sh.lo, sh.hi, func(j int, m int32) {
		if s.Binarize(m) != golden[j] {
			out = append(out, GroupID{Layer: sh.layer, Group: j})
		}
	})
	return out
}

// scanShardGuarded scans one shard, under the layer's read lock when lock
// is set (released on panic too, matching the fan-out path's defer).
func (p *Protector) scanShardGuarded(sh shard, lock bool) []GroupID {
	if lock {
		p.guard.RLockLayer(sh.layer)
		defer p.guard.RUnlockLayer(sh.layer)
	}
	return p.scanShard(sh)
}

// scanShards runs the shard list on the worker pool and merges the
// per-shard results in shard order. Because shards arrive sorted by
// (layer, lo) and each shard reports ascending groups, the merged list is
// deterministically sorted by layer then group — identical to a
// single-goroutine scan regardless of worker count or scheduling. On a
// coordinated protector each shard reads its layer under the layer's read
// lock, so scans may overlap inference fetches but never a recovery write.
func (p *Protector) scanShards(sh []shard, sc *scanScratch) []GroupID {
	return p.runShards(sh, sc, true)
}

// scanShardsLocked is the variant for callers that already hold the write
// lock of every scanned layer (VerifyAndRecoverLayer): taking the read
// lock again would self-deadlock, and exclusion is already guaranteed.
func (p *Protector) scanShardsLocked(sh []shard, sc *scanScratch) []GroupID {
	return p.runShards(sh, sc, false)
}

func (p *Protector) runShards(sh []shard, sc *scanScratch, lock bool) []GroupID {
	results := sc.resultsBuf(len(sh))
	cd := p.shardCountdown(sh)
	if workers := p.poolSize(); workers <= 1 {
		// Run the loop inline rather than through runTasks: its fan-out
		// path captures the task closure in goroutines, so a closure
		// shared with it would be heap-allocated even when only the
		// sequential path runs, breaking the zero-alloc steady state.
		for k := range sh {
			results[k] = p.scanShardGuarded(sh[k], lock)
			cd.shardDone(k)
		}
	} else {
		runTasks(workers, len(sh), func(k int) {
			if lock {
				p.guard.RLockLayer(sh[k].layer)
				defer p.guard.RUnlockLayer(sh[k].layer)
			}
			results[k] = p.scanShard(sh[k])
			cd.shardDone(k)
		})
	}
	var flagged []GroupID
	for _, r := range results {
		flagged = append(flagged, r...)
	}
	if len(flagged) > 0 {
		p.stats.groupsFlagged.Add(int64(len(flagged)))
	}
	return flagged
}

// shardCountdown tracks, for one scan/protect pass, how many shards of
// each layer are still outstanding, and fires the pass's OnLayerScanned
// hook when a layer's count reaches zero. A nil countdown (hook unset) is
// valid and free — shardDone no-ops — so the zero-alloc steady state of
// hookless scans is preserved.
type shardCountdown struct {
	fn     func(layer int)
	layers []int          // slot → layer index
	left   []atomic.Int32 // slot → shards outstanding
	idx    []int          // shard k → slot
}

// shardCountdown builds the countdown for a shard list (sorted by layer,
// possibly covering a non-contiguous layer subset, e.g. ScanDirty).
// Returns nil when no hook is configured.
func (p *Protector) shardCountdown(sh []shard) *shardCountdown {
	if p.onLayerScanned == nil || len(sh) == 0 {
		return nil
	}
	c := &shardCountdown{fn: p.onLayerScanned, idx: make([]int, len(sh))}
	var counts []int32
	for k, s := range sh {
		if len(c.layers) == 0 || c.layers[len(c.layers)-1] != s.layer {
			c.layers = append(c.layers, s.layer)
			counts = append(counts, 0)
		}
		counts[len(counts)-1]++
		c.idx[k] = len(c.layers) - 1
	}
	c.left = make([]atomic.Int32, len(c.layers))
	for i, n := range counts {
		c.left[i].Store(n)
	}
	return c
}

// shardDone records completion of shard k, firing the hook if it was the
// layer's last outstanding shard. Safe on a nil countdown.
func (c *shardCountdown) shardDone(k int) {
	if c == nil {
		return
	}
	slot := c.idx[k]
	if c.left[slot].Add(-1) == 0 {
		c.fn(c.layers[slot])
	}
}
