package core

import "sync"

// LayerGuard is the read-write coordination layer between concurrent
// consumers of one quantized model: inference engines and scans *read*
// layer weights under a per-layer read lock, while recovery zeroing and
// injected attack writes take the per-layer write lock. A protector that
// has been handed a guard via Coordinate routes every scan read and every
// Recover write through it, which is what makes serving inference
// concurrently with DetectAndRecover race-free by construction.
//
// Locks are per layer, so recovering layer i never stalls inference that
// is fetching layer j — the pipelined DetectAndRecover keeps its overlap.
// All methods are safe on a nil *LayerGuard (they no-op), so single-
// threaded callers pay nothing.
type LayerGuard struct {
	mus []sync.RWMutex
}

// NewLayerGuard returns a guard for a model with the given layer count.
func NewLayerGuard(layers int) *LayerGuard {
	return &LayerGuard{mus: make([]sync.RWMutex, layers)}
}

// RLockLayer takes the read lock of layer li (weight fetch, scan).
func (g *LayerGuard) RLockLayer(li int) {
	if g != nil {
		g.mus[li].RLock()
	}
}

// RUnlockLayer releases the read lock of layer li.
func (g *LayerGuard) RUnlockLayer(li int) {
	if g != nil {
		g.mus[li].RUnlock()
	}
}

// LockLayer takes the write lock of layer li (recovery, attack injection).
func (g *LayerGuard) LockLayer(li int) {
	if g != nil {
		g.mus[li].Lock()
	}
}

// UnlockLayer releases the write lock of layer li.
func (g *LayerGuard) UnlockLayer(li int) {
	if g != nil {
		g.mus[li].Unlock()
	}
}

// LockAll write-locks every layer in ascending order — the whole-model
// exclusive section used to run an adversary (whose target layers are
// unknown in advance) against a live model. Unlock with UnlockAll.
// Ascending acquisition order makes LockAll deadlock-free against the
// single-layer lockers, which never hold two layers at once.
func (g *LayerGuard) LockAll() {
	if g != nil {
		for i := range g.mus {
			g.mus[i].Lock()
		}
	}
}

// UnlockAll releases every layer's write lock.
func (g *LayerGuard) UnlockAll() {
	if g != nil {
		for i := len(g.mus) - 1; i >= 0; i-- {
			g.mus[i].Unlock()
		}
	}
}

// Coordinate attaches a guard to the protector: from then on scans take
// each layer's read lock while recomputing its signatures, and Recover
// takes the write lock while zeroing. Attach the guard before the
// protector is used from multiple goroutines; the guard must cover at
// least as many layers as the model.
func (p *Protector) Coordinate(g *LayerGuard) { p.guard = g }

// Guard returns the coordination guard attached via Coordinate (nil when
// uncoordinated).
func (p *Protector) Guard() *LayerGuard { return p.guard }

// VerifyAndRecoverLayer is the embedded-detection primitive of the
// verified weight-fetch path (the run of RADAR inside the inference
// weight fetch, Tables IV/V): under the layer's exclusive lock it rescans
// layer li and immediately zeroes any flagged groups, so a caller that
// fetches the layer's weights right afterwards consumes verified data.
// It returns the flagged groups and the number of weights zeroed.
// Holding the write lock for the scan (rather than the read lock) lets
// detection and recovery happen atomically with respect to concurrent
// writers — no flip can land between the scan and the zeroing.
func (p *Protector) VerifyAndRecoverLayer(li int) (flagged []GroupID, zeroed int) {
	p.guard.LockLayer(li)
	defer p.guard.UnlockLayer(li)
	p.clearDirty(li)
	p.stats.scans.Add(1)
	p.addBytesScanned(li)
	sc := getScratch()
	defer putScratch(sc)
	sc.shards = p.appendLayerShards(sc.shards, li)
	flagged = p.scanShardsLocked(sc.shards, sc)
	corrected, wrote := 0, false
	for _, g := range flagged {
		z, w, c := p.repairGroupLocked(g)
		zeroed += z
		wrote = wrote || w
		if c {
			corrected++
		}
	}
	if wrote {
		p.Model.MarkWritten(li) // repair bypassed the model write path
	}
	p.addRecoveryStats(len(flagged), corrected, zeroed)
	return flagged, zeroed
}

// DetectAndRecoverExclusive is DetectAndRecover for a caller that already
// holds exclusive access to the whole model (e.g. LayerGuard.LockAll): no
// guard locks are taken, so it cannot deadlock against the caller's own
// write exclusion. The serving layer's live rekey uses it to close the
// window between the ordinary (guard-routed) pre-rekey scrub and the
// golden-signature recompute — any flip that lands in that window is
// repaired here, under the same exclusion the recompute runs in, instead
// of being laundered into the fresh goldens.
func (p *Protector) DetectAndRecoverExclusive() (flagged []GroupID, zeroed int) {
	p.clearDirty(-1)
	p.stats.scans.Add(1)
	p.addBytesScanned(-1)
	sc := getScratch()
	defer putScratch(sc)
	sc.shards = p.appendShards(sc.shards)
	flagged = p.scanShardsLocked(sc.shards, sc)
	corrected := 0
	for lo := 0; lo < len(flagged); {
		hi := lo
		layerZeroed, layerWrote := 0, false
		for hi < len(flagged) && flagged[hi].Layer == flagged[lo].Layer {
			z, w, c := p.repairGroupLocked(flagged[hi])
			layerZeroed += z
			layerWrote = layerWrote || w
			if c {
				corrected++
			}
			hi++
		}
		if layerWrote {
			p.Model.MarkWritten(flagged[lo].Layer) // repair bypassed the model write path
		}
		zeroed += layerZeroed
		lo = hi
	}
	p.addRecoveryStats(len(flagged), corrected, zeroed)
	return flagged, zeroed
}

// Stats is a snapshot of the protector's activity counters, the
// scrubber-facing accounting a serving layer exports as metrics.
type Stats struct {
	// Scans counts scan operations (Scan, ScanLayer, ScanDirty,
	// DetectAndRecover, VerifyAndRecoverLayer). A ScanDirty that found no
	// dirty layers still counts: the protector did decide all layers were
	// clean.
	Scans int64
	// BytesScanned counts weight bytes covered by scans (one byte per int8
	// weight) — divided by uptime it is the scan-bytes/s figure the serving
	// metrics export.
	BytesScanned int64
	// GroupsFlagged counts signature mismatches reported across all scans.
	GroupsFlagged int64
	// GroupsRecovered counts groups repaired (corrected or zeroed) by
	// Recover / VerifyAndRecoverLayer.
	GroupsRecovered int64
	// GroupsCorrected counts flagged groups repaired in place by the ECC
	// path (always 0 without Config.Correct); see correct.go.
	GroupsCorrected int64
	// GroupsZeroed counts flagged groups recovered by zeroing — the
	// fallback with correction on, the only path without it.
	GroupsZeroed int64
	// WeightsZeroed counts individual weights zeroed during recovery.
	WeightsZeroed int64
	// Rekeys counts full signature-key rotations (Rekey calls).
	Rekeys int64
}

// Stats returns the current activity counters. Safe to call concurrently
// with scans and recovery.
func (p *Protector) Stats() Stats {
	return Stats{
		Scans:           p.stats.scans.Load(),
		BytesScanned:    p.stats.bytesScanned.Load(),
		GroupsFlagged:   p.stats.groupsFlagged.Load(),
		GroupsRecovered: p.stats.groupsRecovered.Load(),
		GroupsCorrected: p.stats.groupsCorrected.Load(),
		GroupsZeroed:    p.stats.groupsZeroed.Load(),
		WeightsZeroed:   p.stats.weightsZeroed.Load(),
		Rekeys:          p.stats.rekeys.Load(),
	}
}

// DirtyCount reports how many layers are currently marked dirty — the
// scrubber uses it to choose between an incremental ScanDirty and letting
// the cycle budget go to a periodic full Scan.
func (p *Protector) DirtyCount() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.ensureDirtyLocked()
	n := 0
	for _, d := range p.dirty {
		if d {
			n++
		}
	}
	return n
}
