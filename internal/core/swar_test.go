package core

import (
	"math/rand"
	"testing"
)

// refSignatures is the slowest, most obviously correct implementation:
// one per-group Checksum (itself a scalar VisitMembers walk) per group.
func refSignatures(s Scheme, q []int8) []uint8 {
	out := make([]uint8, s.NumGroups(len(q)))
	for j := range out {
		out[j] = s.Binarize(s.Checksum(q, j))
	}
	return out
}

// swarGeometries spans the shapes that stress the SWAR kernels: word-sized
// and sub-word groups, ragged l%8 ≠ 0 tails, G > l single-group layers,
// group counts around the 8-lane chunk width, and lengths that put the
// interleaved ring wrap in every position.
func swarGeometries() []struct{ g, l int } {
	return []struct{ g, l int }{
		{1, 1}, {1, 17}, {2, 15}, {3, 100}, {5, 64}, {7, 49},
		{8, 8}, {8, 64}, {8, 65}, {8, 1000}, {16, 1024}, {17, 389},
		{512, 512}, {512, 4096}, {512, 4100}, {512, 100000},
		{100, 7}, {1000, 999}, {64, 8192}, {511, 65536}, {513, 65521},
	}
}

// TestSWARMatchesChecksumReference pins the word-parallel Signatures path
// bit-identical to the per-group Checksum reference across group size,
// interleaving, offset, key and ragged-tail lengths.
func TestSWARMatchesChecksumReference(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, geo := range swarGeometries() {
		for _, interleave := range []bool{false, true} {
			for trial := 0; trial < 4; trial++ {
				s := Scheme{
					G:          geo.g,
					Interleave: interleave,
					Offset:     DefaultOffset + rng.Intn(8),
					Key:        uint16(rng.Intn(1 << KeyBits)),
					SigBits:    2 + rng.Intn(2),
				}
				q := randWeights(rng, geo.l)
				want := refSignatures(s, q)
				got := s.Signatures(q)
				if len(got) != len(want) {
					t.Fatalf("G=%d l=%d interleave=%v: %d signatures, want %d",
						geo.g, geo.l, interleave, len(got), len(want))
				}
				for j := range want {
					if got[j] != want[j] {
						t.Fatalf("G=%d l=%d interleave=%v offset=%d key=%#x group %d: SWAR %03b, reference %03b (checksum %d)",
							geo.g, geo.l, interleave, s.Offset, s.Key, j, got[j], want[j], s.Checksum(q, j))
					}
				}
			}
		}
	}
}

// TestSWARMatchesScalarRangeKernel pins SignaturesRange against the
// retained scalar row-walk SignaturesRangeRef on random subranges — the
// exact per-shard unit the parallel engine runs.
func TestSWARMatchesScalarRangeKernel(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, geo := range swarGeometries() {
		for _, interleave := range []bool{false, true} {
			s := Scheme{
				G:          geo.g,
				Interleave: interleave,
				Offset:     DefaultOffset + rng.Intn(8),
				Key:        uint16(rng.Intn(1 << KeyBits)),
				SigBits:    2,
			}
			q := randWeights(rng, geo.l)
			n := s.NumGroups(geo.l)
			for trial := 0; trial < 8; trial++ {
				lo := rng.Intn(n)
				hi := lo + 1 + rng.Intn(n-lo)
				got := s.SignaturesRange(q, lo, hi)
				want := s.SignaturesRangeRef(q, lo, hi)
				if len(got) != len(want) {
					t.Fatalf("G=%d l=%d interleave=%v [%d,%d): len %d vs %d",
						geo.g, geo.l, interleave, lo, hi, len(got), len(want))
				}
				for k := range want {
					if got[k] != want[k] {
						t.Fatalf("G=%d l=%d interleave=%v key=%#x [%d,%d): group %d differs",
							geo.g, geo.l, interleave, s.Key, lo, hi, lo+k)
					}
				}
			}
		}
	}
}

// TestLaneMaskCompilation checks the compiled per-phase masks against the
// keystream bit by bit: +1 positions carry the plain excess-128 bias 0x80,
// −1 positions compose it with the byte-wise NOT (0x7F), and the phase
// bias is the closed-form constant one masked word contributes.
func TestLaneMaskCompilation(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 64; trial++ {
		key := uint16(rng.Intn(1 << KeyBits))
		lm := compileLaneMasks(key)
		s := Scheme{G: 16, Key: key, SigBits: 2}
		for ph := 0; ph < 2; ph++ {
			var wantBias int32
			for b := 0; b < 8; b++ {
				lane := uint8(lm.xor[ph] >> (8 * b))
				if s.maskSign(ph*8+b) == 1 {
					if lane != 0x80 {
						t.Fatalf("key %#x phase %d byte %d: lane %#x, want 0x80", key, ph, b, lane)
					}
					wantBias += 128
				} else {
					if lane != 0x7F {
						t.Fatalf("key %#x phase %d byte %d: lane %#x, want 0x7F", key, ph, b, lane)
					}
					wantBias += 127
				}
			}
			if lm.bias[ph] != wantBias {
				t.Fatalf("key %#x phase %d: bias %d, want %d", key, ph, lm.bias[ph], wantBias)
			}
		}
	}
}

// TestVisitMembersMatchesMembers pins the allocation-free iteration path
// to the slice-returning Members across both grouping modes.
func TestVisitMembersMatchesMembers(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, geo := range swarGeometries() {
		for _, interleave := range []bool{false, true} {
			s := Scheme{G: geo.g, Interleave: interleave, Offset: DefaultOffset + rng.Intn(4), Key: 0xBEEF, SigBits: 2}
			for j := 0; j < s.NumGroups(geo.l); j++ {
				want := s.Members(j, geo.l)
				var got []int
				lastT := -1
				s.VisitMembers(j, geo.l, func(tt, i int) {
					if tt != lastT+1 {
						t.Fatalf("G=%d l=%d group %d: position %d after %d", geo.g, geo.l, j, tt, lastT)
					}
					lastT = tt
					got = append(got, i)
				})
				if len(got) != len(want) {
					t.Fatalf("G=%d l=%d group %d: %d members, want %d", geo.g, geo.l, j, len(got), len(want))
				}
				for k := range want {
					if got[k] != want[k] {
						t.Fatalf("G=%d l=%d group %d member %d: %d, want %d", geo.g, geo.l, j, k, got[k], want[k])
					}
				}
			}
		}
	}
}

// TestChecksumAllocationFree verifies the satellite fix: the per-group
// checksum and the recovery member walk no longer allocate a Members
// slice per call.
func TestChecksumAllocationFree(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	q := randWeights(rng, 4096)
	for _, interleave := range []bool{false, true} {
		s := Scheme{G: 64, Interleave: interleave, Offset: DefaultOffset, Key: 0xBEEF, SigBits: 2}
		var sink int32
		allocs := testing.AllocsPerRun(100, func() {
			sink += s.Checksum(q, 3)
		})
		if allocs != 0 {
			t.Errorf("interleave=%v: Checksum allocates %.1f objects per call, want 0", interleave, allocs)
		}
		_ = sink
	}
}

// TestScanZeroAlloc verifies the arena satellite: with a single worker
// (no goroutine fan-out) a steady-state full Scan and an incremental
// ScanDirty of a clean model allocate nothing — the scratch pool and the
// register-resident kernels absorb all working memory.
func TestScanZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops items randomly under the race detector; allocation counts are not meaningful")
	}
	rng := rand.New(rand.NewSource(13))
	m := syntheticModel(rng, []int{100000, 4096, 9408})
	cfg := DefaultConfig(512)
	cfg.Workers = 1
	p := Protect(m, cfg)
	p.Scan() // warm the pools
	if allocs := testing.AllocsPerRun(20, func() {
		if flagged := p.Scan(); len(flagged) != 0 {
			t.Fatal("clean model flagged")
		}
	}); allocs != 0 {
		t.Errorf("steady-state Scan allocates %.1f objects per run, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(20, func() {
		p.MarkLayerDirty(0)
		if flagged := p.ScanDirty(); len(flagged) != 0 {
			t.Fatal("clean model flagged")
		}
	}); allocs != 0 {
		t.Errorf("steady-state dirty ScanDirty allocates %.1f objects per run, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(20, func() {
		if flagged := p.ScanDirty(); flagged != nil {
			t.Fatal("clean ScanDirty returned non-nil")
		}
	}); allocs != 0 {
		t.Errorf("clean ScanDirty allocates %.1f objects per run, want 0", allocs)
	}
}

// FuzzSignatures is the differential fuzz target behind the property
// tests: arbitrary weights and scheme parameters, SWAR vs the per-group
// Checksum reference. CI runs the seed corpus under -race on every push;
// `go test -fuzz=FuzzSignatures ./internal/core` explores further.
func FuzzSignatures(f *testing.F) {
	f.Add([]byte{1, 255, 3, 128, 5, 6, 7, 8, 9}, uint16(0xBEEF), 8, 3, true)
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0}, uint16(0), 1, 0, false)
	f.Add([]byte{127, 128, 64, 32}, uint16(0xFFFF), 512, 6, true)
	f.Fuzz(func(t *testing.T, raw []byte, key uint16, g, offset int, interleave bool) {
		if len(raw) == 0 || g <= 0 || g > 4096 || offset < 0 || offset > 64 {
			t.Skip()
		}
		q := make([]int8, len(raw))
		for i, b := range raw {
			q[i] = int8(b)
		}
		s := Scheme{G: g, Interleave: interleave, Offset: offset, Key: key, SigBits: 2}
		want := refSignatures(s, q)
		got := s.Signatures(q)
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("G=%d offset=%d key=%#x interleave=%v l=%d group %d: SWAR %03b, reference %03b",
					g, offset, key, interleave, len(q), j, got[j], want[j])
			}
		}
	})
}
