package core

import (
	"encoding/binary"
	"errors"
	"fmt"

	"radar/internal/quant"
)

// SecureStore is the bit-exact serialized form of a protector's secret
// state — what a deployment would burn into secure on-chip memory. Golden
// signatures are packed at their true 2- or 3-bit width (the storage the
// paper's KB figures count), followed by the per-layer keys and interleave
// offsets.
//
// Layout (little-endian):
//
//	magic "RdR1" | uint16 layerCount
//	per layer: uint32 numGroups | uint8 sigBits | uint8 flags(bit0=interleave)
//	           uint16 key | uint8 offset | uint32 G
//	           packed signature bits (ceil(numGroups*sigBits/8) bytes)
type SecureStore struct {
	// Blob is the serialized state.
	Blob []byte
}

var storeMagic = [4]byte{'R', 'd', 'R', '1'}

// Seal packs the protector's golden signatures and per-layer secrets.
func (p *Protector) Seal() SecureStore {
	var out []byte
	out = append(out, storeMagic[:]...)
	out = binary.LittleEndian.AppendUint16(out, uint16(len(p.Schemes)))
	for li, s := range p.Schemes {
		golden := p.Golden[li]
		out = binary.LittleEndian.AppendUint32(out, uint32(len(golden)))
		out = append(out, uint8(s.SigBits))
		var flags uint8
		if s.Interleave {
			flags |= 1
		}
		out = append(out, flags)
		out = binary.LittleEndian.AppendUint16(out, s.Key)
		out = append(out, uint8(s.Offset))
		out = binary.LittleEndian.AppendUint32(out, uint32(s.G))
		out = append(out, packBits(golden, s.SigBits)...)
	}
	return SecureStore{Blob: out}
}

// UnsealProtector reconstructs a protector bound to the given quantized
// model from sealed state. It fails if the sealed geometry does not match
// the model (wrong model, wrong group size, corrupted blob).
func UnsealProtector(m *quant.Model, store SecureStore) (*Protector, error) {
	schemes, golden, err := parseStore(store.Blob)
	if err != nil {
		return nil, err
	}
	if len(schemes) != len(m.Layers) {
		return nil, fmt.Errorf("core: sealed store has %d layers, model has %d",
			len(schemes), len(m.Layers))
	}
	for i, s := range schemes {
		if want := s.NumGroups(len(m.Layers[i].Q)); want != len(golden[i]) {
			return nil, fmt.Errorf("core: layer %d: sealed %d groups, model needs %d",
				i, len(golden[i]), want)
		}
	}
	p := &Protector{Model: m, Schemes: schemes, Golden: golden,
		dirty: make([]bool, len(m.Layers))}
	p.unobserve = m.Observe(p.markDirty)
	return p, nil
}

// packBits packs values of width bits (1..8) densely, LSB-first.
func packBits(vals []uint8, width int) []byte {
	nbits := len(vals) * width
	out := make([]byte, (nbits+7)/8)
	bit := 0
	for _, v := range vals {
		for b := 0; b < width; b++ {
			if v>>uint(b)&1 == 1 {
				out[bit/8] |= 1 << uint(bit%8)
			}
			bit++
		}
	}
	return out
}

// unpackBits reverses packBits.
func unpackBits(data []byte, n, width int) []uint8 {
	out := make([]uint8, n)
	bit := 0
	for i := 0; i < n; i++ {
		var v uint8
		for b := 0; b < width; b++ {
			if data[bit/8]>>uint(bit%8)&1 == 1 {
				v |= 1 << uint(b)
			}
			bit++
		}
		out[i] = v
	}
	return out
}

// Size returns the sealed blob size in bytes.
func (s SecureStore) Size() int { return len(s.Blob) }

// parseStore decodes the blob into schemes and golden signatures.
func parseStore(blob []byte) ([]Scheme, [][]uint8, error) {
	if len(blob) < 6 || blob[0] != 'R' || blob[1] != 'd' || blob[2] != 'R' || blob[3] != '1' {
		return nil, nil, errors.New("core: bad secure-store magic")
	}
	n := int(binary.LittleEndian.Uint16(blob[4:6]))
	pos := 6
	schemes := make([]Scheme, 0, n)
	golden := make([][]uint8, 0, n)
	for i := 0; i < n; i++ {
		if pos+13 > len(blob) {
			return nil, nil, fmt.Errorf("core: truncated store at layer %d header", i)
		}
		groups := int(binary.LittleEndian.Uint32(blob[pos:]))
		sigBits := int(blob[pos+4])
		flags := blob[pos+5]
		key := binary.LittleEndian.Uint16(blob[pos+6:])
		offset := int(blob[pos+8])
		g := int(binary.LittleEndian.Uint32(blob[pos+9:]))
		pos += 13
		packed := (groups*sigBits + 7) / 8
		if pos+packed > len(blob) {
			return nil, nil, fmt.Errorf("core: truncated store at layer %d signatures", i)
		}
		schemes = append(schemes, Scheme{
			G: g, Interleave: flags&1 == 1, Offset: offset, Key: key, SigBits: sigBits,
		})
		golden = append(golden, unpackBits(blob[pos:pos+packed], groups, sigBits))
		pos += packed
	}
	if pos != len(blob) {
		return nil, nil, errors.New("core: trailing bytes in secure store")
	}
	return schemes, golden, nil
}
