package core

// RefreshLayer recomputes the golden signatures of one layer from its
// current weights. Deployments call this after a *legitimate* weight
// update (fine-tuning, OTA model patch) so the new values are what the
// run-time scan defends; calling it with corrupted weights would launder
// the corruption, so the caller must hold the same trust as the original
// Protect invocation.
func (p *Protector) RefreshLayer(li int) {
	// Clear before reading the weights: a write landing mid-refresh
	// re-marks the layer and the next ScanDirty re-checks it.
	p.clearDirty(li)
	p.Golden[li] = p.Schemes[li].Signatures(p.Model.Layers[li].Q)
	p.refreshChecksLayer(li)
}

// RefreshAll recomputes every layer's golden signatures (a full re-protect
// without re-drawing the secrets), sharded across the worker pool.
func (p *Protector) RefreshAll() {
	p.clearDirty(-1)
	p.Golden = make([][]uint8, len(p.Model.Layers))
	for li, l := range p.Model.Layers {
		p.Golden[li] = make([]uint8, p.Schemes[li].NumGroups(len(l.Q)))
	}
	sh := p.appendShards(nil)
	cd := p.shardCountdown(sh)
	runTasks(p.poolSize(), len(sh), func(k int) {
		s := sh[k]
		p.Schemes[s.layer].signaturesInto(p.Golden[s.layer][s.lo:s.hi],
			p.Model.Layers[s.layer].Q, s.lo, s.hi)
		cd.shardDone(k)
	})
	p.refreshChecksAll()
}

// Rekey draws fresh per-layer keys and offsets from the scheme seeds in
// cfg and recomputes all golden signatures. Rotating the secrets bounds
// how long a side-channel leak of one key is useful to an attacker. The
// protector keeps its existing model observation (no new observer is
// registered) and its tuned Workers/ShardGroups/OnLayerScanned unless cfg
// sets them. ECC correction survives a rekey: a protector that corrects
// stays correcting (check words are recomputed alongside the goldens)
// regardless of cfg.Correct — a key rotation must not silently downgrade
// the recovery mode.
func (p *Protector) Rekey(cfg Config) {
	p.mu.Lock()
	if cfg.Workers == 0 {
		cfg.Workers = p.workers
	}
	if cfg.ShardGroups == 0 {
		cfg.ShardGroups = p.shardGroups
	}
	if cfg.OnLayerScanned == nil {
		cfg.OnLayerScanned = p.onLayerScanned
	}
	cfg.Correct = cfg.Correct || p.correct
	p.mu.Unlock()
	fresh := newProtector(p.Model, cfg)
	p.Schemes = fresh.Schemes
	p.Golden = fresh.Golden
	p.Check = fresh.Check
	p.correct = fresh.correct
	p.mu.Lock()
	p.workers = fresh.workers
	p.shardGroups = fresh.shardGroups
	p.onLayerScanned = fresh.onLayerScanned
	p.mu.Unlock()
	p.stats.rekeys.Add(1)
}
