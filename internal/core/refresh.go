package core

// RefreshLayer recomputes the golden signatures of one layer from its
// current weights. Deployments call this after a *legitimate* weight
// update (fine-tuning, OTA model patch) so the new values are what the
// run-time scan defends; calling it with corrupted weights would launder
// the corruption, so the caller must hold the same trust as the original
// Protect invocation.
func (p *Protector) RefreshLayer(li int) {
	p.Golden[li] = p.Schemes[li].Signatures(p.Model.Layers[li].Q)
}

// RefreshAll recomputes every layer's golden signatures (a full re-protect
// without re-drawing the secrets).
func (p *Protector) RefreshAll() {
	for li := range p.Model.Layers {
		p.RefreshLayer(li)
	}
}

// Rekey draws fresh per-layer keys and offsets from the scheme seeds in
// cfg and recomputes all golden signatures. Rotating the secrets bounds
// how long a side-channel leak of one key is useful to an attacker.
func (p *Protector) Rekey(cfg Config) {
	fresh := Protect(p.Model, cfg)
	p.Schemes = fresh.Schemes
	p.Golden = fresh.Golden
}
