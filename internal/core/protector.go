package core

import (
	"math/rand"

	"radar/internal/quant"
)

// Config selects the model-wide RADAR parameters. Per-layer secrets (keys
// and interleave offsets) are derived from Seed.
type Config struct {
	// G is the group size (paper: 8 for ResNet-20, 512 for ResNet-18).
	G int
	// Interleave enables the interleaved grouping.
	Interleave bool
	// SigBits is 2 or 3 (3 extends protection to MSB-1, §VIII).
	SigBits int
	// Seed derives the per-layer secret keys and offsets.
	Seed int64
}

// DefaultConfig returns the paper's standard configuration for a given
// group size: interleaving on, 2-bit signatures.
func DefaultConfig(g int) Config {
	return Config{G: g, Interleave: true, SigBits: 2, Seed: 0xADA1}
}

// GroupID identifies one checksum group of a protected model.
type GroupID struct {
	// Layer is the quantized-layer index.
	Layer int
	// Group is the group index within the layer.
	Group int
}

// Protector binds a RADAR configuration to a quantized model: it holds the
// per-layer schemes and the golden signatures ("securely stored on-chip").
type Protector struct {
	// Model is the protected quantized model.
	Model *quant.Model
	// Schemes holds the per-layer scheme (same order as Model.Layers).
	Schemes []Scheme
	// Golden holds the per-layer golden signatures.
	Golden [][]uint8
}

// Protect computes golden signatures for every quantized layer of m under
// cfg and returns the Protector. The per-layer 16-bit keys and interleave
// offsets are drawn from cfg.Seed — these are the secrets of the scheme.
func Protect(m *quant.Model, cfg Config) *Protector {
	if cfg.SigBits == 0 {
		cfg.SigBits = 2
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	p := &Protector{Model: m}
	for _, l := range m.Layers {
		s := Scheme{
			G:          cfg.G,
			Interleave: cfg.Interleave,
			Offset:     DefaultOffset + rng.Intn(4), // per-layer secret offset
			Key:        uint16(rng.Intn(1 << KeyBits)),
			SigBits:    cfg.SigBits,
		}
		p.Schemes = append(p.Schemes, s)
		p.Golden = append(p.Golden, s.Signatures(l.Q))
	}
	return p
}

// Scan recomputes every layer's signatures over the current (possibly
// corrupted) quantized weights and returns the mismatching groups. This is
// the operation embedded in the inference weight-fetch path.
func (p *Protector) Scan() []GroupID {
	var flagged []GroupID
	for li, l := range p.Model.Layers {
		fresh := p.Schemes[li].Signatures(l.Q)
		for _, j := range Compare(p.Golden[li], fresh) {
			flagged = append(flagged, GroupID{Layer: li, Group: j})
		}
	}
	return flagged
}

// ScanLayer scans a single layer (used by the run-time embedded detection,
// which checks each layer as its weights are fetched).
func (p *Protector) ScanLayer(li int) []GroupID {
	fresh := p.Schemes[li].Signatures(p.Model.Layers[li].Q)
	var flagged []GroupID
	for _, j := range Compare(p.Golden[li], fresh) {
		flagged = append(flagged, GroupID{Layer: li, Group: j})
	}
	return flagged
}

// Recover zeroes every weight of every flagged group (de-interleaving back
// to original positions), resynchronizes the float weights, and refreshes
// the golden signatures of the zeroed groups so subsequent scans accept the
// recovered state. It returns the number of weights zeroed.
func (p *Protector) Recover(flagged []GroupID) int {
	zeroed := 0
	for _, g := range flagged {
		l := p.Model.Layers[g.Layer]
		s := p.Schemes[g.Layer]
		for _, i := range s.Members(g.Group, len(l.Q)) {
			if l.Q[i] != 0 {
				l.Q[i] = 0
				zeroed++
			}
			l.SyncIndex(i)
		}
		// A zeroed group has checksum 0 → signature 0.
		p.Golden[g.Layer][g.Group] = s.Binarize(0)
	}
	return zeroed
}

// DetectAndRecover is the full run-time reaction: scan, zero out flagged
// groups, and report what happened.
func (p *Protector) DetectAndRecover() (flagged []GroupID, zeroed int) {
	flagged = p.Scan()
	zeroed = p.Recover(flagged)
	return flagged, zeroed
}

// GroupOf maps a bit address to its checksum group under this protector.
func (p *Protector) GroupOf(a quant.BitAddress) GroupID {
	l := p.Model.Layers[a.LayerIndex]
	return GroupID{
		Layer: a.LayerIndex,
		Group: p.Schemes[a.LayerIndex].GroupOf(a.WeightIndex, len(l.Q)),
	}
}

// CountDetected returns how many of the given flipped bits lie in flagged
// groups — the paper's "number of detected bit-flips out of N" metric.
func (p *Protector) CountDetected(addrs []quant.BitAddress, flagged []GroupID) int {
	set := make(map[GroupID]bool, len(flagged))
	for _, g := range flagged {
		set[g] = true
	}
	n := 0
	for _, a := range addrs {
		if set[p.GroupOf(a)] {
			n++
		}
	}
	return n
}

// NumGroups returns the total number of checksum groups in the model.
func (p *Protector) NumGroups() int {
	n := 0
	for li, l := range p.Model.Layers {
		n += p.Schemes[li].NumGroups(len(l.Q))
	}
	return n
}
