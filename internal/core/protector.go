package core

import (
	"math/rand"
	"sync"
	"sync/atomic"

	"radar/internal/quant"
)

// Config selects the model-wide RADAR parameters. Per-layer secrets (keys
// and interleave offsets) are derived from Seed.
type Config struct {
	// G is the group size (paper: 8 for ResNet-20, 512 for ResNet-18).
	G int
	// Interleave enables the interleaved grouping.
	Interleave bool
	// SigBits is 2 or 3 (3 extends protection to MSB-1, §VIII).
	SigBits int
	// Seed derives the per-layer secret keys and offsets.
	Seed int64
	// Workers bounds the worker pool of the parallel scan/protect engine.
	// Zero or negative selects runtime.GOMAXPROCS(0). Workers: 1 runs the
	// engine sequentially; any value produces identical results.
	Workers int
	// ShardGroups caps the checksum groups per parallel scan shard. Zero
	// selects DefaultShardGroups. Shard geometry never changes results,
	// only load balance.
	ShardGroups int
	// OnLayerScanned, when set, is called with the layer index each time a
	// scan or protect pass finishes the last shard of that layer — once per
	// layer per pass, possibly from a worker goroutine, so it must be cheap
	// and safe for concurrent use. Streaming deployments use it to release
	// a memory-mapped layer's pages (store.Checkpoint.ReleaseLayer) as soon
	// as the pass is done with them, which is what bounds resident memory
	// when protecting checkpoints far larger than RAM. The hook observes
	// pass progress only; results are identical with or without it.
	OnLayerScanned func(layer int)
	// Correct enables ECC-corrected recovery: Protect additionally stores
	// one SEC-DED Hamming check word per group, and recovery repairs
	// single-bit-corrupted groups in place (see correct.go) instead of
	// zeroing them. Costs 4 bytes of trusted storage per group and one
	// extra encoding pass at protect/refresh time; scans are unaffected.
	Correct bool
}

// DefaultConfig returns the paper's standard configuration for a given
// group size: interleaving on, 2-bit signatures, worker pool sized to the
// machine.
func DefaultConfig(g int) Config {
	return Config{G: g, Interleave: true, SigBits: 2, Seed: 0xADA1}
}

// GroupID identifies one checksum group of a protected model.
type GroupID struct {
	// Layer is the quantized-layer index.
	Layer int
	// Group is the group index within the layer.
	Group int
}

// Protector binds a RADAR configuration to a quantized model: it holds the
// per-layer schemes and the golden signatures ("securely stored on-chip").
type Protector struct {
	// Model is the protected quantized model.
	Model *quant.Model
	// Schemes holds the per-layer scheme (same order as Model.Layers).
	Schemes []Scheme
	// Golden holds the per-layer golden signatures.
	Golden [][]uint8
	// Check holds the per-layer per-group SEC-DED check words when
	// Config.Correct is set (nil otherwise); see correct.go.
	Check [][]uint32

	// workers is the configured pool size (0 = GOMAXPROCS, resolved at
	// scan time so a zero-valued Protector still works).
	workers int
	// shardGroups is the configured shard size (0 = DefaultShardGroups).
	shardGroups int
	// onLayerScanned is Config.OnLayerScanned (nil = no per-layer
	// completion notifications).
	onLayerScanned func(layer int)
	// correct is Config.Correct: recovery consults the Check words before
	// zeroing.
	correct bool

	// mu guards dirty. Write notifications arrive via the model observer
	// and may race with scans; the flags are the only shared mutable state.
	mu sync.Mutex
	// dirty marks layers written through the quant.Model API since the
	// layer was last scanned; ScanDirty skips clean layers.
	dirty []bool
	// unobserve detaches this protector's write observer from the model;
	// see Detach.
	unobserve func()

	// guard, when set via Coordinate, serializes scan reads against
	// recovery/attack writes per layer; nil means uncoordinated (all guard
	// methods no-op on nil).
	guard *LayerGuard
	// stats are the activity counters exported by Stats.
	stats struct {
		scans, bytesScanned, groupsFlagged, groupsRecovered, weightsZeroed, rekeys atomic.Int64
		groupsCorrected, groupsZeroed                                              atomic.Int64
	}
}

// Protect computes golden signatures for every quantized layer of m under
// cfg and returns the Protector. The per-layer 16-bit keys and interleave
// offsets are drawn from cfg.Seed — these are the secrets of the scheme.
// Signature generation fans out over cfg.Workers; the golden values are
// identical for every worker count. The protector registers itself as a
// write observer of m, so mutations made through the quant.Model API
// (FlipBit, Restore) mark the touched layers dirty for ScanDirty.
func Protect(m *quant.Model, cfg Config) *Protector {
	p := newProtector(m, cfg)
	p.unobserve = m.Observe(p.markDirty)
	return p
}

// newProtector builds the protector state without registering observers
// (Rekey reuses it to avoid piling observers onto the model).
func newProtector(m *quant.Model, cfg Config) *Protector {
	if cfg.SigBits == 0 {
		cfg.SigBits = 2
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	p := &Protector{
		Model:          m,
		workers:        cfg.Workers,
		shardGroups:    cfg.ShardGroups,
		onLayerScanned: cfg.OnLayerScanned,
		correct:        cfg.Correct,
		dirty:          make([]bool, len(m.Layers)),
	}
	// Secrets are drawn sequentially so the scheme stream depends only on
	// cfg.Seed, never on worker scheduling.
	for range m.Layers {
		p.Schemes = append(p.Schemes, Scheme{
			G:          cfg.G,
			Interleave: cfg.Interleave,
			Offset:     DefaultOffset + rng.Intn(4), // per-layer secret offset
			Key:        uint16(rng.Intn(1 << KeyBits)),
			SigBits:    cfg.SigBits,
		})
	}
	p.RefreshAll()
	return p
}

// poolSize resolves the configured worker count at call time (under mu:
// SetWorkers may tune it from another goroutine).
func (p *Protector) poolSize() int {
	p.mu.Lock()
	w := p.workers
	p.mu.Unlock()
	return resolveWorkers(w)
}

// Workers reports the resolved worker-pool size the engine will use.
func (p *Protector) Workers() int { return p.poolSize() }

// SetWorkers re-sizes the worker pool of an existing protector (w <= 0
// selects GOMAXPROCS). Scan results are identical for every setting; this
// exists so benchmarks and deployments can tune concurrency without
// re-deriving secrets or golden signatures. Safe to call concurrently
// with scans; in-flight scans keep their pool size.
func (p *Protector) SetWorkers(w int) {
	p.mu.Lock()
	p.workers = w
	p.mu.Unlock()
}

// Detach unregisters the protector's write observer from the model. Call
// it when retiring a protector whose model lives on (e.g. after
// re-protecting with a different configuration); afterwards ScanDirty no
// longer sees new writes, so only Scan/ScanLayer give sound results.
func (p *Protector) Detach() {
	if p.unobserve != nil {
		p.unobserve()
		p.unobserve = nil
	}
}

// MarkLayerDirty flags a layer for the next ScanDirty. Callers that mutate
// Layer.Q directly (bypassing the quant.Model API and its write
// notifications) use this to keep incremental scanning sound.
func (p *Protector) MarkLayerDirty(li int) { p.markDirty(li) }

// markDirty records a write to layer li (observer callback; safe for
// concurrent use).
func (p *Protector) markDirty(li int) {
	p.mu.Lock()
	p.ensureDirtyLocked()
	if li >= 0 && li < len(p.dirty) {
		p.dirty[li] = true
	}
	p.mu.Unlock()
}

// ensureDirtyLocked sizes the dirty bitmap for protectors built without
// newProtector (e.g. unsealed or zero-valued ones). Caller holds mu.
func (p *Protector) ensureDirtyLocked() {
	if len(p.dirty) != len(p.Model.Layers) {
		d := make([]bool, len(p.Model.Layers))
		copy(d, p.dirty)
		p.dirty = d
	}
}

// clearDirty resets the dirty flag of the given layer (negative: all
// layers). Flags are cleared before the scan reads the weights, so a write
// landing mid-scan re-marks its layer and is caught by the next ScanDirty.
func (p *Protector) clearDirty(li int) {
	p.mu.Lock()
	p.ensureDirtyLocked()
	if li < 0 {
		for i := range p.dirty {
			p.dirty[i] = false
		}
	} else if li < len(p.dirty) {
		p.dirty[li] = false
	}
	p.mu.Unlock()
}

// takeDirty snapshots and clears the dirty layer set, appending the layer
// indices in ascending order onto dst (a pooled buffer, so the steady-state
// incremental scan allocates nothing).
func (p *Protector) takeDirty(dst []int) []int {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.ensureDirtyLocked()
	for li, d := range p.dirty {
		if d {
			dst = append(dst, li)
			p.dirty[li] = false
		}
	}
	return dst
}

// Scan recomputes every layer's signatures over the current (possibly
// corrupted) quantized weights and returns the mismatching groups, sorted
// by layer then group. The work is sharded across the worker pool; the
// flagged list is byte-identical to a sequential scan for every worker
// count. This is the operation embedded in the inference weight-fetch path.
func (p *Protector) Scan() []GroupID {
	p.clearDirty(-1)
	p.stats.scans.Add(1)
	p.addBytesScanned(-1)
	sc := getScratch()
	defer putScratch(sc)
	sc.shards = p.appendShards(sc.shards)
	return p.scanShards(sc.shards, sc)
}

// addBytesScanned accounts one scan pass over layer li (negative: all
// layers) in the BytesScanned counter — one byte per int8 weight, the
// scan-throughput figure the serving metrics export.
func (p *Protector) addBytesScanned(li int) {
	if li >= 0 {
		p.stats.bytesScanned.Add(int64(len(p.Model.Layers[li].Q)))
		return
	}
	total := 0
	for _, l := range p.Model.Layers {
		total += len(l.Q)
	}
	p.stats.bytesScanned.Add(int64(total))
}

// ScanLayer scans a single layer (used by the run-time embedded detection,
// which checks each layer as its weights are fetched). Shards of the layer
// fan out over the worker pool.
func (p *Protector) ScanLayer(li int) []GroupID {
	p.clearDirty(li)
	p.stats.scans.Add(1)
	p.addBytesScanned(li)
	sc := getScratch()
	defer putScratch(sc)
	sc.shards = p.appendLayerShards(sc.shards, li)
	return p.scanShards(sc.shards, sc)
}

// ScanDirty is the incremental scan: it checks only layers written through
// the quant.Model API since they were last scanned (by Scan, ScanLayer, or
// a previous ScanDirty) and skips clean layers entirely. On a clean model
// it touches no weights and returns nil. Corruption that bypasses the
// model API (direct writes to Layer.Q) is invisible to dirty tracking and
// needs a full Scan. Flagged groups are sorted by layer then group, and
// for the dirty layers the result equals what Scan would report.
func (p *Protector) ScanDirty() []GroupID {
	p.stats.scans.Add(1)
	sc := getScratch()
	defer putScratch(sc)
	sc.dirty = p.takeDirty(sc.dirty)
	if len(sc.dirty) == 0 {
		return nil
	}
	for _, li := range sc.dirty {
		p.addBytesScanned(li)
		sc.shards = p.appendLayerShards(sc.shards, li)
	}
	return p.scanShards(sc.shards, sc)
}

// Recover repairs every flagged group and returns the number of weights
// zeroed. Without correction (the paper's scheme) a flagged group is
// zeroed outright: every weight is cleared (de-interleaving back to
// original positions), the float weights resynchronized, and the group's
// golden signature refreshed so subsequent scans accept the recovered
// state. With Config.Correct, the group's ECC check word is consulted
// first and single-bit-corrupted groups are restored in place — those
// contribute nothing to the returned zeroed count (see correct.go).
//
// When the protector is coordinated (see Coordinate), each layer's repair
// happens under that layer's write lock, so recovery is safe to run while
// other goroutines read the same model for inference. Consecutive flagged
// groups of the same layer share one lock acquisition — the flagged lists
// produced by scans are sorted by layer, so each layer is locked once.
func (p *Protector) Recover(flagged []GroupID) int {
	zeroed := 0
	corrected := 0
	for lo := 0; lo < len(flagged); {
		hi := lo
		for hi < len(flagged) && flagged[hi].Layer == flagged[lo].Layer {
			hi++
		}
		li := flagged[lo].Layer
		layerZeroed, layerWrote := 0, false
		p.guard.LockLayer(li)
		for _, g := range flagged[lo:hi] {
			z, w, c := p.repairGroupLocked(g)
			layerZeroed += z
			layerWrote = layerWrote || w
			if c {
				corrected++
			}
		}
		p.guard.UnlockLayer(li)
		if layerWrote {
			// Recovery writes Layer.Q directly, bypassing the quant.Model
			// write path; notify the observers so external storage (an
			// mmap-backed checkpoint scheduling the layer for msync) and
			// incremental scanners stay sound.
			p.Model.MarkWritten(li)
		}
		zeroed += layerZeroed
		lo = hi
	}
	p.addRecoveryStats(len(flagged), corrected, zeroed)
	return zeroed
}

// addRecoveryStats accounts one recovery batch: n flagged groups of which
// corrected were ECC-repaired and the rest zeroed, clearing zeroedWeights
// individual weights.
func (p *Protector) addRecoveryStats(n, corrected, zeroedWeights int) {
	if n == 0 {
		return
	}
	p.stats.groupsRecovered.Add(int64(n))
	p.stats.weightsZeroed.Add(int64(zeroedWeights))
	p.stats.groupsCorrected.Add(int64(corrected))
	p.stats.groupsZeroed.Add(int64(n - corrected))
}

// recoverGroupLocked zeroes one flagged group and refreshes its golden
// signature. The caller holds the layer's write lock (or is otherwise the
// only goroutine touching the model).
func (p *Protector) recoverGroupLocked(g GroupID) int {
	zeroed := 0
	l := p.Model.Layers[g.Layer]
	s := p.Schemes[g.Layer]
	s.VisitMembers(g.Group, len(l.Q), func(_, i int) {
		if l.Q[i] != 0 {
			l.Q[i] = 0
			zeroed++
		}
		l.SyncIndex(i)
	})
	// A zeroed group has checksum 0 → signature 0.
	p.Golden[g.Layer][g.Group] = s.Binarize(0)
	return zeroed
}

// DetectAndRecover is the full run-time reaction: scan, zero out flagged
// groups, and report what happened. Scanning and recovery are pipelined —
// while layer i's flagged groups are being zeroed, the worker pool is
// already scanning layer i+1 (recovery only touches already-scanned
// layers, so the stages never share data). The flagged list and zeroed
// count are identical to a sequential scan-then-recover.
func (p *Protector) DetectAndRecover() (flagged []GroupID, zeroed int) {
	p.clearDirty(-1)
	p.stats.scans.Add(1)
	p.addBytesScanned(-1)
	ch := make(chan []GroupID, 1)
	go func() {
		sc := getScratch()
		defer putScratch(sc)
		for li := range p.Model.Layers {
			sc.shards = p.appendLayerShards(sc.shards[:0], li)
			ch <- p.scanShards(sc.shards, sc)
		}
		close(ch)
	}()
	done := false
	defer func() {
		if !done { // unblock the scanner if Recover panicked mid-pipeline
			for range ch {
			}
		}
	}()
	for f := range ch {
		flagged = append(flagged, f...)
		zeroed += p.Recover(f)
	}
	done = true
	return flagged, zeroed
}

// GroupOf maps a bit address to its checksum group under this protector.
func (p *Protector) GroupOf(a quant.BitAddress) GroupID {
	l := p.Model.Layers[a.LayerIndex]
	return GroupID{
		Layer: a.LayerIndex,
		Group: p.Schemes[a.LayerIndex].GroupOf(a.WeightIndex, len(l.Q)),
	}
}

// CountDetected returns how many of the given flipped bits lie in flagged
// groups — the paper's "number of detected bit-flips out of N" metric.
func (p *Protector) CountDetected(addrs []quant.BitAddress, flagged []GroupID) int {
	set := make(map[GroupID]bool, len(flagged))
	for _, g := range flagged {
		set[g] = true
	}
	n := 0
	for _, a := range addrs {
		if set[p.GroupOf(a)] {
			n++
		}
	}
	return n
}

// NumGroups returns the total number of checksum groups in the model.
func (p *Protector) NumGroups() int {
	n := 0
	for li, l := range p.Model.Layers {
		n += p.Schemes[li].NumGroups(len(l.Q))
	}
	return n
}
