package core

import (
	"math/rand"
	"testing"

	"radar/internal/quant"
)

func correctingConfig(g int) Config {
	cfg := DefaultConfig(g)
	cfg.Correct = true
	return cfg
}

// modelEquals reports whether the model's quantized bytes are bit-identical
// to the snapshot.
func modelEquals(m *quant.Model, snap [][]int8) bool {
	for li, l := range m.Layers {
		for i, v := range l.Q {
			if v != snap[li][i] {
				return false
			}
		}
	}
	return true
}

// TestCorrectRestoresSingleBitFlipsExactly: one MSB flip per hit group (a
// guaranteed-detected single-bit error) must come back bit-identical to
// the pre-attack image via the ECC path, with nothing zeroed.
func TestCorrectRestoresSingleBitFlipsExactly(t *testing.T) {
	b := loadTiny(t)
	p := Protect(b.QModel, correctingConfig(16))
	snap := b.QModel.Snapshot()
	rng := rand.New(rand.NewSource(7))
	var hit []quant.BitAddress
	for li, l := range b.QModel.Layers {
		seen := map[int]bool{}
		for k := 0; k < 3; k++ {
			i := rng.Intn(len(l.Q))
			g := p.Schemes[li].GroupOf(i, len(l.Q))
			if seen[g] { // one flip per group keeps the error single-bit
				continue
			}
			seen[g] = true
			hit = append(hit, quant.BitAddress{LayerIndex: li, WeightIndex: i, Bit: quant.MSB})
		}
	}
	for _, a := range hit {
		b.QModel.FlipBit(a)
	}
	flagged, zeroed := p.DetectAndRecover()
	if len(flagged) != len(hit) {
		t.Fatalf("flagged %d groups, want %d (MSB flips are always detected)", len(flagged), len(hit))
	}
	if zeroed != 0 {
		t.Fatalf("zeroed %d weights; single-bit groups must be corrected, not zeroed", zeroed)
	}
	if !modelEquals(b.QModel, snap) {
		t.Fatal("corrected model is not bit-identical to the pre-attack image")
	}
	st := p.Stats()
	if st.GroupsCorrected != int64(len(hit)) || st.GroupsZeroed != 0 {
		t.Fatalf("stats corrected=%d zeroed=%d, want %d/0", st.GroupsCorrected, st.GroupsZeroed, len(hit))
	}
	if again := p.Scan(); len(again) != 0 {
		t.Fatalf("rescan after correction flagged %d groups", len(again))
	}
}

// TestCorrectDoubleBitFallsBackToZeroing: two MSB flips in one group are
// beyond SEC-DED correction; every detected group must be zeroed — never a
// silent miscorrection into some third state.
func TestCorrectDoubleBitFallsBackToZeroing(t *testing.T) {
	b := loadTiny(t)
	p := Protect(b.QModel, correctingConfig(16))
	li := 1
	l := b.QModel.Layers[li]
	s := p.Schemes[li]
	// Pair MSB flips inside many groups; masking cancels ~half of the
	// pairs, so scan over enough groups that some are detected.
	pairs := 0
	for j := 0; j < s.NumGroups(len(l.Q)) && pairs < 16; j++ {
		m := s.Members(j, len(l.Q))
		if len(m) < 2 {
			continue
		}
		b.QModel.FlipBit(quant.BitAddress{LayerIndex: li, WeightIndex: m[0], Bit: quant.MSB})
		b.QModel.FlipBit(quant.BitAddress{LayerIndex: li, WeightIndex: m[1], Bit: quant.MSB})
		pairs++
	}
	flagged, _ := p.DetectAndRecover()
	if len(flagged) == 0 {
		t.Fatal("no pair detected; expected ~half of same-direction pairs to flip S_A")
	}
	for _, g := range flagged {
		s.VisitMembers(g.Group, len(l.Q), func(_, i int) {
			if l.Q[i] != 0 {
				t.Fatalf("group %v weight %d = %d after double-error recovery, want 0", g, i, l.Q[i])
			}
		})
	}
	st := p.Stats()
	if st.GroupsCorrected != 0 {
		t.Fatalf("corrected %d double-error groups; must fall back to zeroing", st.GroupsCorrected)
	}
	if st.GroupsZeroed != int64(len(flagged)) {
		t.Fatalf("stats zeroed=%d, want %d", st.GroupsZeroed, len(flagged))
	}
}

// TestCorrectRepairsCorruptedGoldenSignature: flipping stored golden bits
// (the signature-store attack) flags healthy groups; the class-0 ECC path
// must restore the golden value from the verified weights instead of
// destroying the group.
func TestCorrectRepairsCorruptedGoldenSignature(t *testing.T) {
	b := loadTiny(t)
	p := Protect(b.QModel, correctingConfig(16))
	snap := b.QModel.Snapshot()
	p.Golden[0][3] ^= 1
	p.Golden[2][0] ^= 2
	flagged, zeroed := p.DetectAndRecover()
	if len(flagged) != 2 {
		t.Fatalf("flagged %d groups, want 2", len(flagged))
	}
	if zeroed != 0 || !modelEquals(b.QModel, snap) {
		t.Fatal("signature-store repair must not touch the weights")
	}
	if st := p.Stats(); st.GroupsCorrected != 2 {
		t.Fatalf("corrected=%d, want 2", st.GroupsCorrected)
	}
	if again := p.Scan(); len(again) != 0 {
		t.Fatalf("goldens not restored: rescan flagged %d groups", len(again))
	}
}

// TestZeroingDestroysGroupsUnderSigstoreWithoutCorrection is the
// counterpoint: the paper's zeroing-only recovery launders a signature-
// store attack into real weight damage.
func TestZeroingDestroysGroupsUnderSigstoreWithoutCorrection(t *testing.T) {
	b := loadTiny(t)
	p := Protect(b.QModel, DefaultConfig(16))
	p.Golden[0][3] ^= 1
	_, zeroed := p.DetectAndRecover()
	if zeroed == 0 {
		t.Fatal("zeroing-only recovery should have destroyed the healthy group")
	}
}

// TestCorrectSurvivesRekey: rotating keys must keep correction enabled and
// its check words consistent with the fresh goldens.
func TestCorrectSurvivesRekey(t *testing.T) {
	b := loadTiny(t)
	p := Protect(b.QModel, correctingConfig(16))
	p.Rekey(DefaultConfig(16)) // note: cfg.Correct is false here
	if !p.Correcting() {
		t.Fatal("rekey disabled correction")
	}
	snap := b.QModel.Snapshot()
	a := quant.BitAddress{LayerIndex: 0, WeightIndex: 5, Bit: quant.MSB}
	b.QModel.FlipBit(a)
	if _, zeroed := p.DetectAndRecover(); zeroed != 0 {
		t.Fatalf("zeroed %d weights after rekey; want ECC correction", zeroed)
	}
	if !modelEquals(b.QModel, snap) {
		t.Fatal("post-rekey correction not bit-identical")
	}
}

// TestCorrectorPropertyAtMostTwoFlips is the corrector's core safety
// property, checked over randomized campaigns: with at most two flipped
// bits per group, every flagged group ends recovery either bit-identical
// to the original (ECC-corrected) or all-zero (fallback) — never any
// third, silently miscorrected state. (Three or more flips can alias both
// the SEC-DED code and the 2-bit signature, which no corrector at this
// redundancy can exclude; the adversaries in internal/adversary stay
// within the 2-flip regime per group by construction or get zeroed.)
func TestCorrectorPropertyAtMostTwoFlips(t *testing.T) {
	for trial := 0; trial < 25; trial++ {
		checkCorrectorProperty(t, int64(trial))
	}
}

// FuzzCorrectorAtMostTwoFlips fuzzes the same property over arbitrary
// seeds.
func FuzzCorrectorAtMostTwoFlips(f *testing.F) {
	for s := int64(0); s < 4; s++ {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		checkCorrectorProperty(t, seed)
	})
}

func checkCorrectorProperty(t *testing.T, seed int64) {
	t.Helper()
	b := loadTiny(t)
	cfg := correctingConfig(8)
	cfg.Seed = seed
	p := Protect(b.QModel, cfg)
	snap := b.QModel.Snapshot()
	rng := rand.New(rand.NewSource(seed ^ 0x5EED))

	// Flip 1 or 2 random bits in each of several random groups; track the
	// per-group flip count.
	perGroup := map[GroupID]int{}
	for k := 0; k < 12; k++ {
		li := rng.Intn(len(b.QModel.Layers))
		l := b.QModel.Layers[li]
		s := p.Schemes[li]
		j := rng.Intn(s.NumGroups(len(l.Q)))
		g := GroupID{Layer: li, Group: j}
		if perGroup[g] > 0 {
			continue
		}
		m := s.Members(j, len(l.Q))
		flips := 1 + rng.Intn(2)
		if flips > len(m) {
			flips = len(m)
		}
		for _, mi := range rng.Perm(len(m))[:flips] {
			b.QModel.FlipBit(quant.BitAddress{LayerIndex: li, WeightIndex: m[mi], Bit: rng.Intn(8)})
		}
		perGroup[g] = flips
	}

	flagged, _ := p.DetectAndRecover()
	for _, g := range flagged {
		l := b.QModel.Layers[g.Layer]
		identical, allZero := true, true
		p.Schemes[g.Layer].VisitMembers(g.Group, len(l.Q), func(_, i int) {
			if l.Q[i] != snap[g.Layer][i] {
				identical = false
			}
			if l.Q[i] != 0 {
				allZero = false
			}
		})
		if !identical && !allZero {
			t.Fatalf("seed %d: group %v (flips=%d) left in a third state: neither original nor zero",
				seed, g, perGroup[g])
		}
		if perGroup[g] == 1 && !identical {
			t.Fatalf("seed %d: single-bit group %v was zeroed, want exact correction", seed, g)
		}
	}
	if again := p.Scan(); len(again) != 0 {
		t.Fatalf("seed %d: rescan after recovery flagged %d groups", seed, len(again))
	}
}
