package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"radar/internal/model"
	"radar/internal/quant"
)

func TestPackUnpackBitsRoundTrip(t *testing.T) {
	f := func(seed int64, widthSel uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		width := 1 + int(widthSel%8)
		n := rng.Intn(200)
		vals := make([]uint8, n)
		for i := range vals {
			vals[i] = uint8(rng.Intn(1 << uint(width)))
		}
		packed := packBits(vals, width)
		wantLen := (n*width + 7) / 8
		if len(packed) != wantLen {
			return false
		}
		back := unpackBits(packed, n, width)
		for i := range vals {
			if back[i] != vals[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSealUnsealRoundTrip(t *testing.T) {
	b := loadTiny(t)
	p := Protect(b.QModel, DefaultConfig(16))
	store := p.Seal()

	p2, err := UnsealProtector(b.QModel, store)
	if err != nil {
		t.Fatalf("UnsealProtector: %v", err)
	}
	if len(p2.Schemes) != len(p.Schemes) {
		t.Fatal("scheme count mismatch")
	}
	for i := range p.Schemes {
		if p.Schemes[i] != p2.Schemes[i] {
			t.Fatalf("scheme %d differs: %+v vs %+v", i, p.Schemes[i], p2.Schemes[i])
		}
		for j := range p.Golden[i] {
			if p.Golden[i][j] != p2.Golden[i][j] {
				t.Fatalf("golden signature L%d[%d] differs", i, j)
			}
		}
	}
	// The unsealed protector must detect attacks identically.
	addr := quant.BitAddress{LayerIndex: 2, WeightIndex: 9, Bit: quant.MSB}
	b.QModel.FlipBit(addr)
	f1 := p.Scan()
	f2 := p2.Scan()
	if len(f1) != len(f2) || len(f1) == 0 || f1[0] != f2[0] {
		t.Fatalf("unsealed scan differs: %v vs %v", f1, f2)
	}
}

func TestSealedSizeMatchesStorageAccounting(t *testing.T) {
	b := loadTiny(t)
	p := Protect(b.QModel, DefaultConfig(32))
	store := p.Seal()
	st := p.Storage()
	// Blob = 6 header bytes + 13 bytes/layer metadata + packed signatures.
	// The packed signature payload must match SignatureBits to within the
	// per-layer byte-rounding slack.
	layers := len(p.Schemes)
	meta := 6 + 13*layers
	payload := store.Size() - meta
	minBytes := st.SignatureBits / 8
	maxBytes := st.SignatureBits/8 + layers // ≤1 byte rounding per layer
	if payload < minBytes || payload > maxBytes {
		t.Fatalf("packed payload %d bytes, accounting says %d bits (%d–%d bytes)",
			payload, st.SignatureBits, minBytes, maxBytes)
	}
}

func TestUnsealRejectsWrongModel(t *testing.T) {
	b := loadTiny(t)
	p := Protect(b.QModel, DefaultConfig(16))
	store := p.Seal()

	other := model.Load(model.TinySpec())
	pOther := Protect(other.QModel, DefaultConfig(64))
	_ = pOther
	// Tamper: claim a different group geometry by truncating the blob.
	bad := SecureStore{Blob: store.Blob[:len(store.Blob)-3]}
	if _, err := UnsealProtector(b.QModel, bad); err == nil {
		t.Fatal("expected error for truncated blob")
	}
	// Bad magic.
	corrupt := append([]byte(nil), store.Blob...)
	corrupt[0] = 'X'
	if _, err := UnsealProtector(b.QModel, SecureStore{Blob: corrupt}); err == nil {
		t.Fatal("expected error for bad magic")
	}
}

func TestUnsealRejectsTrailingGarbage(t *testing.T) {
	b := loadTiny(t)
	store := Protect(b.QModel, DefaultConfig(16)).Seal()
	garbage := SecureStore{Blob: append(append([]byte(nil), store.Blob...), 0xFF)}
	if _, err := UnsealProtector(b.QModel, garbage); err == nil {
		t.Fatal("expected error for trailing bytes")
	}
}

func TestSeal3BitSignatures(t *testing.T) {
	b := loadTiny(t)
	cfg := DefaultConfig(16)
	cfg.SigBits = 3
	p := Protect(b.QModel, cfg)
	p2, err := UnsealProtector(b.QModel, p.Seal())
	if err != nil {
		t.Fatalf("UnsealProtector(3-bit): %v", err)
	}
	for i := range p.Golden {
		for j := range p.Golden[i] {
			if p.Golden[i][j] != p2.Golden[i][j] {
				t.Fatal("3-bit golden signatures corrupted by seal round trip")
			}
		}
	}
}

func TestRefreshLayerAcceptsLegitimateUpdate(t *testing.T) {
	b := loadTiny(t)
	p := Protect(b.QModel, DefaultConfig(16))
	// A legitimate update: rewrite a whole layer (e.g. fine-tuned weights).
	l := b.QModel.Layers[2]
	for i := range l.Q {
		l.Q[i] = int8((i*13)%250 - 125)
	}
	l.Sync()
	if len(p.ScanLayer(2)) == 0 {
		t.Fatal("update should initially mismatch the golden signatures")
	}
	p.RefreshLayer(2)
	if flagged := p.Scan(); len(flagged) != 0 {
		t.Fatalf("scan after refresh flagged %v", flagged)
	}
	// Detection still works after refresh.
	b.QModel.FlipBit(quant.BitAddress{LayerIndex: 2, WeightIndex: 1, Bit: quant.MSB})
	if len(p.ScanLayer(2)) != 1 {
		t.Fatal("refreshed layer no longer detects flips")
	}
}

func TestRekeyChangesSecretsKeepsDetection(t *testing.T) {
	b := loadTiny(t)
	cfg := DefaultConfig(16)
	p := Protect(b.QModel, cfg)
	oldKeys := make([]uint16, len(p.Schemes))
	for i, s := range p.Schemes {
		oldKeys[i] = s.Key
	}
	cfg.Seed = 0x5EED
	p.Rekey(cfg)
	same := 0
	for i, s := range p.Schemes {
		if s.Key == oldKeys[i] {
			same++
		}
	}
	if same == len(p.Schemes) {
		t.Fatal("rekey did not rotate any keys")
	}
	if flagged := p.Scan(); len(flagged) != 0 {
		t.Fatalf("clean model flagged after rekey: %v", flagged)
	}
	b.QModel.FlipBit(quant.BitAddress{LayerIndex: 0, WeightIndex: 0, Bit: quant.MSB})
	if len(p.Scan()) != 1 {
		t.Fatal("detection broken after rekey")
	}
}
