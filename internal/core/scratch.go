package core

import "sync"

// scanScratch is the reusable working memory of one scan operation: the
// shard list, the per-shard result table and the dirty-layer snapshot.
// Instances cycle through a sync.Pool so steady-state ScanDirty and full
// scans allocate nothing (verified by testing.AllocsPerRun in
// swar_test.go); the checksum kernels themselves hold their accumulators
// in registers and need no scratch at all. Flagged GroupID slices are the
// one exception — they are freshly allocated because they escape to the
// caller, and a clean scan never creates any.
type scanScratch struct {
	shards  []shard
	results [][]GroupID
	dirty   []int
}

var scanScratchPool = sync.Pool{New: func() any { return new(scanScratch) }}

func getScratch() *scanScratch {
	return scanScratchPool.Get().(*scanScratch)
}

// putScratch returns the scratch to the pool, dropping references to
// flagged slices that escaped to callers so the pool does not pin them.
func putScratch(sc *scanScratch) {
	for i := range sc.results {
		sc.results[i] = nil
	}
	sc.shards = sc.shards[:0]
	sc.dirty = sc.dirty[:0]
	scanScratchPool.Put(sc)
}

// resultsBuf returns a length-n per-shard result table backed by the
// scratch, growing the backing array only on high-water marks.
func (sc *scanScratch) resultsBuf(n int) [][]GroupID {
	if cap(sc.results) < n {
		sc.results = make([][]GroupID, n)
	}
	sc.results = sc.results[:n]
	return sc.results
}
