package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"radar/internal/model"
	"radar/internal/quant"
)

func randWeights(rng *rand.Rand, n int) []int8 {
	q := make([]int8, n)
	for i := range q {
		q[i] = int8(rng.Intn(256) - 128)
	}
	return q
}

func scheme(g int, interleave bool, key uint16) Scheme {
	return Scheme{G: g, Interleave: interleave, Offset: DefaultOffset, Key: key, SigBits: 2}
}

// TestGroupingIsPartition: every index belongs to exactly one group and
// Members/GroupOf agree — for both grouping modes over many geometries.
func TestGroupingIsPartition(t *testing.T) {
	f := func(seed int64, interleave bool) bool {
		rng := rand.New(rand.NewSource(seed))
		l := 1 + rng.Intn(500)
		g := 1 + rng.Intn(64)
		s := scheme(g, interleave, 0xBEEF)
		s.Offset = rng.Intn(7)
		n := s.NumGroups(l)
		seen := make([]int, l)
		for j := 0; j < n; j++ {
			for _, i := range s.Members(j, l) {
				if i < 0 || i >= l {
					return false
				}
				seen[i]++
				if s.GroupOf(i, l) != j {
					return false
				}
			}
		}
		for _, c := range seen {
			if c != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestGroupSizeBounds: no group exceeds G members; interleaved groups have
// exactly one member per row.
func TestGroupSizeBounds(t *testing.T) {
	f := func(seed int64, interleave bool) bool {
		rng := rand.New(rand.NewSource(seed))
		l := 1 + rng.Intn(800)
		g := 1 + rng.Intn(64)
		s := scheme(g, interleave, 1)
		n := s.NumGroups(l)
		for j := 0; j < n; j++ {
			if len(s.Members(j, l)) > g {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestInterleaveScatters: members of an interleaved group are at least
// N−Offset apart in the original layout (the paper's "k locations apart").
func TestInterleaveScatters(t *testing.T) {
	s := scheme(16, true, 0xFFFF)
	l := 512
	n := s.NumGroups(l) // 32
	for j := 0; j < n; j++ {
		m := s.Members(j, l)
		for k := 1; k < len(m); k++ {
			gap := m[k] - m[k-1]
			if gap < n-s.Offset {
				t.Fatalf("group %d members %d,%d only %d apart (N=%d)", j, m[k-1], m[k], gap, n)
			}
		}
	}
}

func TestPositionOfMatchesMembersOrder(t *testing.T) {
	for _, interleave := range []bool{false, true} {
		s := scheme(8, interleave, 0xACE1)
		l := 100
		n := s.NumGroups(l)
		for j := 0; j < n; j++ {
			for t2, i := range s.Members(j, l) {
				if got := s.PositionOf(i, l); got != t2 {
					t.Fatalf("interleave=%v: PositionOf(%d)=%d, want %d", interleave, i, got, t2)
				}
			}
		}
	}
}

func TestBinarizeFloorSemantics(t *testing.T) {
	s := scheme(8, false, 0xFFFF)
	cases := []struct {
		m  int32
		sa uint8
		sb uint8
	}{
		{0, 0, 0},
		{127, 0, 0},
		{128, 0, 1},
		{256, 1, 0},
		{384, 1, 1},
		{-1, 1, 1},   // ⌊−1/256⌋ = −1 (odd) ; ⌊−1/128⌋ = −1 (odd)
		{-128, 1, 1}, // ⌊−128/256⌋ = −1 ; ⌊−128/128⌋ = −1
		{-129, 1, 0}, // ⌊−129/128⌋ = −2 (even)
		{-256, 1, 0},
		{-257, 0, 1}, // ⌊−257/256⌋ = −2 ; ⌊−257/128⌋ = −3
	}
	for _, c := range cases {
		sig := s.Binarize(c.m)
		if sb := sig & 1; sb != c.sb {
			t.Errorf("M=%d: S_B=%d, want %d", c.m, sb, c.sb)
		}
		if sa := (sig >> 1) & 1; sa != c.sa {
			t.Errorf("M=%d: S_A=%d, want %d", c.m, sa, c.sa)
		}
	}
}

// TestSingleMSBFlipAlwaysDetected: the parity bit S_B catches every single
// MSB flip regardless of key, interleaving, group size, or weight values.
func TestSingleMSBFlipAlwaysDetected(t *testing.T) {
	f := func(seed int64, key uint16, interleave bool) bool {
		rng := rand.New(rand.NewSource(seed))
		l := 16 + rng.Intn(400)
		g := 4 << rng.Intn(5)
		s := scheme(g, interleave, key)
		q := randWeights(rng, l)
		golden := s.Signatures(q)
		i := rng.Intn(l)
		q[i] = quant.FlipBit(q[i], quant.MSB)
		fresh := s.Signatures(q)
		bad := Compare(golden, fresh)
		return len(bad) == 1 && bad[0] == s.GroupOf(i, l)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestOddMSBFlipsDetected: any odd number of MSB flips in one group flips
// the group parity.
func TestOddMSBFlipsDetected(t *testing.T) {
	f := func(seed int64, key uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		s := scheme(32, false, key)
		q := randWeights(rng, 64)
		golden := s.Signatures(q)
		// Flip 1, 3, or 5 distinct MSBs inside group 0.
		k := []int{1, 3, 5}[rng.Intn(3)]
		perm := rng.Perm(32)[:k]
		for _, i := range perm {
			q[i] = quant.FlipBit(q[i], quant.MSB)
		}
		fresh := s.Signatures(q)
		for _, j := range Compare(golden, fresh) {
			if j == 0 {
				return true
			}
		}
		return false
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestSameDirectionDoubleFlipDetected: with an all-ones key (no masking),
// two MSB flips in the same direction change M by ±256 — S_B is blind but
// S_A toggles.
func TestSameDirectionDoubleFlipDetected(t *testing.T) {
	s := scheme(8, false, 0xFFFF)
	q := make([]int8, 8) // all zeros: MSB=0 everywhere
	golden := s.Signatures(q)
	q[1] = quant.FlipBit(q[1], quant.MSB) // 0→1
	q[5] = quant.FlipBit(q[5], quant.MSB) // 0→1, same direction
	fresh := s.Signatures(q)
	if len(Compare(golden, fresh)) != 1 {
		t.Fatal("same-direction double MSB flip must be detected by S_A")
	}
}

// TestOppositeDoubleFlipBlindWithoutMasking: the documented weakness —
// (0→1, 1→0) in one group cancels in the unmasked sum.
func TestOppositeDoubleFlipBlindWithoutMasking(t *testing.T) {
	s := scheme(8, false, 0xFFFF) // all-ones key: every weight enters as +q
	q := make([]int8, 8)
	q[1] = 5  // MSB 0
	q[5] = -5 // MSB 1
	golden := s.Signatures(q)
	q[1] = quant.FlipBit(q[1], quant.MSB) // 0→1: ΔQ = −128
	q[5] = quant.FlipBit(q[5], quant.MSB) // 1→0: ΔQ = +128
	fresh := s.Signatures(q)
	if len(Compare(golden, fresh)) != 0 {
		t.Fatal("opposite-direction flips should cancel without masking (this is the weakness masking addresses)")
	}
}

// TestMaskingBreaksCancellation: with a key whose bits differ at the two
// positions, the same opposite-direction pair no longer cancels.
func TestMaskingBreaksCancellation(t *testing.T) {
	// Key bit 1 = 1 (+), key bit 5 = 0 (−): positions 1 and 5 of group 0.
	key := uint16(0xFFFF) &^ (1 << 5)
	s := scheme(8, false, key)
	q := make([]int8, 8)
	q[1] = 5
	q[5] = -5
	golden := s.Signatures(q)
	q[1] = quant.FlipBit(q[1], quant.MSB)
	q[5] = quant.FlipBit(q[5], quant.MSB)
	fresh := s.Signatures(q)
	if len(Compare(golden, fresh)) == 0 {
		t.Fatal("masking with differing key bits must expose the paired flip")
	}
}

// TestMSB1FlipNeedsThreeBits: a single MSB-1 (bit 6) flip changes M by ±64:
// invisible to the 2-bit signature when it lands inside a 128-aligned
// half-interval, but always caught by the 3-bit signature's S_C.
func TestMSB1FlipNeedsThreeBits(t *testing.T) {
	f := func(seed int64, key uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		s3 := Scheme{G: 16, Offset: DefaultOffset, Key: key, SigBits: 3}
		q := randWeights(rng, 64)
		golden := s3.Signatures(q)
		i := rng.Intn(64)
		q[i] = quant.FlipBit(q[i], 6)
		fresh := s3.Signatures(q)
		bad := Compare(golden, fresh)
		return len(bad) == 1 && bad[0] == s3.GroupOf(i, 64)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestTwoBitSignatureSometimesMissesMSB1(t *testing.T) {
	// Construct an explicit miss: M=0, flip bit 6 of a weight with bit6=0
	// (Δ=+64) → M=64 → S_A=S_B=0 unchanged.
	s := scheme(8, false, 0xFFFF)
	q := make([]int8, 8) // zeros
	golden := s.Signatures(q)
	q[0] = quant.FlipBit(q[0], 6) // 0 → 64
	fresh := s.Signatures(q)
	if len(Compare(golden, fresh)) != 0 {
		t.Fatal("expected the 2-bit signature to miss this MSB-1 flip")
	}
}

func TestValidatePanics(t *testing.T) {
	cases := []Scheme{
		{G: 0, SigBits: 2},
		{G: 8, SigBits: 4},
	}
	for _, s := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Validate(%+v) did not panic", s)
				}
			}()
			s.Validate(10)
		}()
	}
}

func TestComparePanicsOnLengthMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Compare([]uint8{1}, []uint8{1, 2})
}

// --- Protector (model-level) tests ---

func loadTiny(t testing.TB) *model.Bundle {
	t.Helper()
	return model.Load(model.TinySpec())
}

func TestProtectScanCleanModel(t *testing.T) {
	b := loadTiny(t)
	for _, g := range []int{4, 16, 64} {
		for _, inter := range []bool{false, true} {
			cfg := DefaultConfig(g)
			cfg.Interleave = inter
			p := Protect(b.QModel, cfg)
			if flagged := p.Scan(); len(flagged) != 0 {
				t.Fatalf("G=%d interleave=%v: clean model flagged %d groups", g, inter, len(flagged))
			}
		}
	}
}

func TestProtectorDetectsInjectedFlips(t *testing.T) {
	b := loadTiny(t)
	p := Protect(b.QModel, DefaultConfig(16))
	addr := quant.BitAddress{LayerIndex: 2, WeightIndex: 33, Bit: quant.MSB}
	b.QModel.FlipBit(addr)
	flagged := p.Scan()
	if len(flagged) != 1 {
		t.Fatalf("flagged %d groups, want 1", len(flagged))
	}
	if flagged[0] != p.GroupOf(addr) {
		t.Fatalf("flagged wrong group %v", flagged[0])
	}
	if p.CountDetected([]quant.BitAddress{addr}, flagged) != 1 {
		t.Fatal("CountDetected should report the flip")
	}
}

func TestRecoverZeroesFlaggedGroupAndRescansClean(t *testing.T) {
	b := loadTiny(t)
	p := Protect(b.QModel, DefaultConfig(16))
	addr := quant.BitAddress{LayerIndex: 1, WeightIndex: 7, Bit: quant.MSB}
	b.QModel.FlipBit(addr)
	flagged, zeroed := p.DetectAndRecover()
	if len(flagged) != 1 {
		t.Fatalf("flagged %d groups", len(flagged))
	}
	if zeroed == 0 {
		t.Fatal("no weights zeroed")
	}
	// All members of the flagged group must now be zero in Q and float.
	l := b.QModel.Layers[flagged[0].Layer]
	s := p.Schemes[flagged[0].Layer]
	for _, i := range s.Members(flagged[0].Group, len(l.Q)) {
		if l.Q[i] != 0 {
			t.Fatalf("member %d not zeroed", i)
		}
		if l.Param.Value.Data[i] != 0 {
			t.Fatalf("float weight %d not zeroed", i)
		}
	}
	// Post-recovery scan must be clean (golden refreshed).
	if again := p.Scan(); len(again) != 0 {
		t.Fatalf("post-recovery scan flagged %v", again)
	}
}

func TestRecoverOnlyTouchesFlaggedGroups(t *testing.T) {
	b := loadTiny(t)
	p := Protect(b.QModel, DefaultConfig(16))
	before := b.QModel.Snapshot()
	addr := quant.BitAddress{LayerIndex: 0, WeightIndex: 3, Bit: quant.MSB}
	b.QModel.FlipBit(addr)
	flagged, _ := p.DetectAndRecover()
	g := p.GroupOf(addr)
	if len(flagged) != 1 || flagged[0] != g {
		t.Fatalf("unexpected flags %v", flagged)
	}
	members := map[int]bool{}
	for _, i := range p.Schemes[g.Layer].Members(g.Group, len(b.QModel.Layers[g.Layer].Q)) {
		members[i] = true
	}
	for li, l := range b.QModel.Layers {
		for i := range l.Q {
			if li == g.Layer && members[i] {
				if l.Q[i] != 0 {
					t.Fatal("flagged group member not zeroed")
				}
				continue
			}
			if l.Q[i] != before[li][i] {
				t.Fatalf("untouched weight L%d[%d] changed", li, i)
			}
		}
	}
}

func TestProtectorStorageScalesWithG(t *testing.T) {
	b := loadTiny(t)
	s8 := Protect(b.QModel, DefaultConfig(8)).Storage()
	s64 := Protect(b.QModel, DefaultConfig(64)).Storage()
	if s8.SignatureBits <= s64.SignatureBits {
		t.Fatalf("smaller G must cost more signature bits: %d vs %d", s8.SignatureBits, s64.SignatureBits)
	}
}

// TestPaperStorageNumbers reproduces the paper's headline storage overheads
// from the full-size shape tables: ≈8.2 KB for ResNet-20 at G=8 and
// ≈5.6 KB for ResNet-18 at G=512 (2-bit signatures).
func TestPaperStorageNumbers(t *testing.T) {
	r20 := model.ResNet20CIFARShapes()
	var w20 []int
	for _, l := range r20.Layers {
		w20 = append(w20, l.Weights)
	}
	kb20 := StorageForWeights(w20, 8, 2, true).SignatureKB()
	if kb20 < 8.0 || kb20 > 8.5 {
		t.Fatalf("ResNet-20 G=8 signature storage = %.2f KB, paper ≈ 8.2 KB", kb20)
	}

	r18 := model.ResNet18ImageNetShapes()
	var w18 []int
	for _, l := range r18.Layers {
		w18 = append(w18, l.Weights)
	}
	kb18 := StorageForWeights(w18, 512, 2, true).SignatureKB()
	if kb18 < 5.4 || kb18 > 5.8 {
		t.Fatalf("ResNet-18 G=512 signature storage = %.2f KB, paper ≈ 5.6 KB", kb18)
	}
}

func TestStorageBreakdownTotals(t *testing.T) {
	b := StorageBreakdown{SignatureBits: 800, KeyBits: 160, OffsetBits: 40}
	if b.TotalBytes() != 125 {
		t.Fatalf("TotalBytes = %v", b.TotalBytes())
	}
	if b.SignatureKB() != 800.0/8/1024 {
		t.Fatalf("SignatureKB = %v", b.SignatureKB())
	}
}

func TestSchemeDeterministicSignatures(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	q := randWeights(rng, 300)
	s := scheme(32, true, 0x1234)
	a := s.Signatures(q)
	b := s.Signatures(q)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("signatures not deterministic")
		}
	}
}

// TestSignaturesMatchPerGroupComputation cross-checks the single-pass scan
// against the direct per-group Checksum/Signature path.
func TestSignaturesMatchPerGroupComputation(t *testing.T) {
	f := func(seed int64, key uint16, interleave bool) bool {
		rng := rand.New(rand.NewSource(seed))
		l := 8 + rng.Intn(300)
		s := scheme(1+rng.Intn(32), interleave, key)
		s.Offset = rng.Intn(5)
		q := randWeights(rng, l)
		fast := s.Signatures(q)
		for j := range fast {
			if fast[j] != s.Signature(q, j) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestScanLayerMatchesScan(t *testing.T) {
	b := loadTiny(t)
	p := Protect(b.QModel, DefaultConfig(8))
	b.QModel.FlipBit(quant.BitAddress{LayerIndex: 3, WeightIndex: 10, Bit: 7})
	full := p.Scan()
	var perLayer []GroupID
	for li := range b.QModel.Layers {
		perLayer = append(perLayer, p.ScanLayer(li)...)
	}
	if len(full) != len(perLayer) {
		t.Fatalf("Scan %v vs per-layer %v", full, perLayer)
	}
	for i := range full {
		if full[i] != perLayer[i] {
			t.Fatalf("Scan %v vs per-layer %v", full, perLayer)
		}
	}
}
