//go:build race

package core

// raceEnabled reports that the race detector is instrumenting this build;
// allocation-count assertions are skipped under it (sync.Pool drops items
// randomly when instrumented, so AllocsPerRun is not meaningful).
const raceEnabled = true
