package core

import (
	"encoding/binary"
	"sync"
	"unsafe"
)

// SWAR (SIMD-within-a-register) checksum kernels.
//
// The masked addition checksum of a group is Σ ±q[i], the sign drawn from
// the 16-bit key at keystream position t mod 16. The scalar kernels pay a
// multiply and an add per weight; the kernels in this file instead load 8
// int8 weights per uint64 and process them word-parallel:
//
//   - Each byte is re-biased to excess-128 (b ^ 0x80), making every lane a
//     non-negative u = q+128 that sums without sign handling.
//   - A negated weight is folded into the same domain with a byte-wise NOT:
//     u ^ 0xFF = 255−u = 127−q, so XORing a minus lane with 0xFF *adds the
//     negated weight* up to a constant that is settled at flush time. Bias
//     and sign therefore collapse into one XOR mask per word: 0x80 in +1
//     lanes, 0x7F in −1 lanes.
//   - The ±1 keystream is precompiled per scheme into these sign-partitioned
//     8-byte lane masks (compileLaneMasks). The key is 16 bits and a word
//     covers 8 positions, so the keystream seen by consecutive words is
//     periodic with period 2 — each G-sized group needs at most the 2
//     precompiled mask phrases, whatever G is.
//   - Masked words are widened pairwise (byte lanes → 16-bit lanes) so
//     repeated adds cannot carry into a neighbour, and accumulated; 16-bit
//     lanes are flushed into an int32 before they can saturate. The flush
//     subtracts the accumulated constant in closed form:
//     Σ ±q = Σ lanes − (128·#plus + 127·#minus).
//
// The contiguous path consumes each group's weights whole-word-at-a-time;
// the interleaved path consumes whole row segments word-at-a-time (8
// consecutive weights of a row belong to 8 consecutive groups and share
// one sign, so a loaded word lands in per-group 16-bit lanes held in two
// registers per 8-group chunk). Both feed the existing Binarize and are
// property-tested bit-identical to the per-group Checksum reference.

const (
	// swarBias re-biases each int8 byte lane to excess-128.
	swarBias = 0x8080808080808080
	// swarLowBytes selects the even byte lanes of a word — the pairwise
	// widening mask (byte lanes → 16-bit lanes).
	swarLowBytes = 0x00FF00FF00FF00FF
	// swarLow16 selects the even 16-bit lanes (16-bit → 32-bit widening).
	swarLow16 = 0x0000FFFF0000FFFF
)

// laneMasks is the compiled form of a scheme's ±1 masking keystream: for
// each of the two word phases (key bits 0–7, key bits 8–15), the combined
// bias+sign XOR mask and the constant one word of that phase adds.
type laneMasks struct {
	// xor[ph] has 0x80 in byte lane b if keystream position ph·8+b is +1
	// (plain excess-128 bias) and 0x7F if it is −1 (bias plus byte-wise
	// NOT, which negates the weight in the biased domain).
	xor [2]uint64
	// bias[ph] = 128·#plus + 127·#minus of phase ph — the constant a word
	// XORed with xor[ph] contributes on top of Σ ±q.
	bias [2]int32
}

// compileLaneMasks partitions the 16 keystream signs into the two 8-byte
// lane-mask phrases. Key bit 1 means the weight is added, bit 0 means it
// enters negated (maskSign).
func compileLaneMasks(key uint16) laneMasks {
	var lm laneMasks
	for ph := 0; ph < 2; ph++ {
		for b := 0; b < 8; b++ {
			if (key>>(uint(ph*8+b)))&1 == 1 {
				lm.xor[ph] |= 0x80 << (8 * b)
				lm.bias[ph] += 128
			} else {
				lm.xor[ph] |= 0x7F << (8 * b)
				lm.bias[ph] += 127
			}
		}
	}
	return lm
}

// asBytes reinterprets the weight slice as bytes for word loads. int8 and
// byte have identical size and alignment, so the view is exact; the loads
// below go through encoding/binary, which handles unaligned addresses.
func asBytes(q []int8) []byte {
	if len(q) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&q[0])), len(q))
}

// kernelScratch is the per-call working memory of the interleaved kernel:
// the per-group int32 sums and the 16-bit lane accumulator words, a few KB
// that stay L1-resident across the row sweep. Pooled so steady-state scans
// allocate nothing; each concurrent shard scan checks out its own
// instance.
type kernelScratch struct {
	sums       []int32
	accE, accO []uint64
}

var kernelScratchPool = sync.Pool{New: func() any { return new(kernelScratch) }}

func getKernelScratch() *kernelScratch {
	return kernelScratchPool.Get().(*kernelScratch)
}

func putKernelScratch(ks *kernelScratch) { kernelScratchPool.Put(ks) }

// sumsBuf returns a zeroed length-n sum buffer backed by the scratch,
// growing the backing array only on high-water marks.
func (ks *kernelScratch) sumsBuf(n int) []int32 {
	if cap(ks.sums) < n {
		ks.sums = make([]int32, n)
	}
	ks.sums = ks.sums[:n]
	for i := range ks.sums {
		ks.sums[i] = 0
	}
	return ks.sums
}

// accBufs returns zeroed length-n even/odd lane accumulator buffers backed
// by the scratch.
func (ks *kernelScratch) accBufs(n int) ([]uint64, []uint64) {
	if cap(ks.accE) < n {
		ks.accE = make([]uint64, n)
		ks.accO = make([]uint64, n)
	}
	ks.accE, ks.accO = ks.accE[:n], ks.accO[:n]
	for i := range ks.accE {
		ks.accE[i] = 0
		ks.accO[i] = 0
	}
	return ks.accE, ks.accO
}

// hsum16x4 sums the four 16-bit lanes of an accumulator word into a scalar
// by widening twice (16→32→64 bits).
func hsum16x4(x uint64) int32 {
	s := (x & swarLow16) + ((x >> 16) & swarLow16)
	return int32((s & 0xFFFFFFFF) + (s >> 32))
}

// checksumRange computes the masked checksum of every group in [lo, hi)
// and hands each (group index, checksum) to emit in ascending group order.
// It is the shared word-parallel kernel under SignaturesRange, the golden
// refresh and the scan compare path; emit runs inline on the caller's
// stack, so a non-escaping closure keeps the whole scan allocation-free.
// Callers guarantee 0 ≤ lo < hi ≤ NumGroups(len(q)).
func (s Scheme) checksumRange(q []int8, lo, hi int, emit func(j int, m int32)) {
	if s.Interleave {
		s.checksumInterleaved(q, lo, hi, emit)
	} else {
		s.checksumContiguous(q, lo, hi, emit)
	}
}

// checksumContiguous is the word-parallel kernel for contiguous grouping:
// group j owns q[jG:(j+1)G], whose keystream starts at phase 0, so words
// alternate between the two mask phrases. Each word adds at most 510 per
// 16-bit lane, so the accumulator is flushed every 128 words, before a
// lane can saturate.
func (s Scheme) checksumContiguous(q []int8, lo, hi int, emit func(j int, m int32)) {
	l := len(q)
	lm := compileLaneMasks(s.Key)
	qb := asBytes(q)
	for j := lo; j < hi; j++ {
		base := j * s.G
		end := base + s.G
		if end > l {
			end = l
		}
		gl := end - base
		words := gl >> 3
		var m int32
		if words > 0 {
			var acc uint64
			var bias int32
			inAcc := 0
			for wi := 0; wi < words; wi++ {
				ph := wi & 1
				ux := binary.LittleEndian.Uint64(qb[base+wi*8:]) ^ lm.xor[ph]
				acc += (ux & swarLowBytes) + ((ux >> 8) & swarLowBytes)
				bias += lm.bias[ph]
				if inAcc++; inAcc == 128 {
					m += hsum16x4(acc) - bias
					acc, bias, inAcc = 0, 0, 0
				}
			}
			m += hsum16x4(acc) - bias
		}
		for t := words << 3; t < gl; t++ { // ragged tail, scalar
			m += s.maskSign(t) * int32(q[base+t])
		}
		emit(j, m)
	}
}

// checksumInterleaved is the word-parallel kernel for interleaved
// grouping. Within one row every weight carries the same sign (the
// keystream position is the row index) and consecutive weights belong to
// consecutive groups, so the kernel sweeps each row's group segment — a
// contiguous ~shard-sized run of memory, which the hardware prefetcher
// streams — XORs each word with the row's uniform bias+sign mask (0x80
// per byte for +1 rows, 0x7F for −1 rows: excess-128 bias, composed with
// the byte-wise NOT that negates a weight in that domain), splits it into
// even and odd byte lanes and adds it to per-group 16-bit lane
// accumulators (two uint64 words per 8 groups, L1-resident in the pooled
// scratch). The lane grid realigns with the segment each row (the
// interleave offset rotates the segment under the groups), so up to 7
// head/tail lanes per run are handled scalar, adding sign·q plus the
// row's bias constant directly so that *every* lane accrues exactly one
// biasRow per row; a single closed-form subtraction at emit time then
// settles the bias for word and scalar contributions alike:
//
//	checksum = Σ lanes − Σ_rows biasRow,  biasRow = 128 (+1) or 127 (−1)
//
// Lane accumulators are flushed into the int32 sums every 255 rows, before
// a 16-bit lane (≤ 255 per row) can saturate. The checksum is an exact
// int32 sum, so none of this reordering changes the result — it is
// bit-identical to the per-group reference.
func (s Scheme) checksumInterleaved(q []int8, lo, hi int, emit func(j int, m int32)) {
	l := len(q)
	n := s.NumGroups(l)
	rows := (l + n - 1) / n
	rowsFull := l / n // rows r < rowsFull have all n members in range
	off := s.Offset % n
	if off < 0 {
		off += n
	}
	qb := asBytes(q)
	S := hi - lo
	ks := getKernelScratch()
	sums := ks.sumsBuf(S)
	accE, accO := ks.accBufs(S >> 3)
	// The keystream repeats every KeyBits rows: precompile the row masks,
	// bias constants and scalar signs once per call.
	var maskTab [KeyBits]uint64
	var biasTab [KeyBits]int32
	var signTab [KeyBits]int32
	for t := 0; t < KeyBits; t++ {
		if (s.Key>>uint(t))&1 == 1 {
			maskTab[t] = swarBias
			biasTab[t] = 128
			signTab[t] = 1
		} else {
			maskTab[t] = swarBias ^ ^uint64(0)
			biasTab[t] = 127
			signTab[t] = -1
		}
	}
	var biasAcc int32 // Σ biasRow over all rows, subtracted once at emit
	rowsInAcc := 0
	c := lo % n // column of group lo, maintained per row
	for r := 0; r < rows; r++ {
		t := r & (KeyBits - 1)
		mask, biasRow, sign := maskTab[t], biasTab[t], signTab[t]
		base := r * n
		if r >= rowsFull {
			// Ragged last row: scalar with presence checks. Absent lanes
			// still accrue biasRow so the uniform settlement stays exact.
			for k := 0; k < S; k++ {
				cc := c + k
				if cc >= n {
					cc -= n
				}
				if i := base + cc; i < l {
					sums[k] += sign*int32(q[i]) + biasRow
				} else {
					sums[k] += biasRow
				}
			}
		} else {
			// Run 1: lanes [0, S1) at memory base+c+lane — lane 0 is
			// word-aligned with the accumulator grid by construction.
			S1 := n - c
			if S1 > S {
				S1 = S
			}
			w1 := S1 >> 3
			aE, aO := accE[:w1], accO[:w1]
			idx := base + c
			for w := 0; w < w1; w++ {
				ux := binary.LittleEndian.Uint64(qb[idx:]) ^ mask
				aE[w] += ux & swarLowBytes
				aO[w] += (ux >> 8) & swarLowBytes
				idx += 8
			}
			for k := w1 << 3; k < S1; k++ { // run-1 tail lanes
				sums[k] += sign*int32(q[base+c+k]) + biasRow
			}
			if S1 < S {
				// Run 2 (ring wrap): lanes [S1, S) at memory base+lane−S1.
				// Scalar until the lane grid realigns, then words again.
				a2 := (S1 + 7) &^ 7
				if a2 > S {
					a2 = S
				}
				for k := S1; k < a2; k++ {
					sums[k] += sign*int32(q[base+k-S1]) + biasRow
				}
				b2 := S &^ 7
				idx = base + a2 - S1
				for w := a2 >> 3; w < b2>>3; w++ {
					ux := binary.LittleEndian.Uint64(qb[idx:]) ^ mask
					accE[w] += ux & swarLowBytes
					accO[w] += (ux >> 8) & swarLowBytes
					idx += 8
				}
				if b2 < a2 {
					b2 = a2
				}
				for k := b2; k < S; k++ {
					sums[k] += sign*int32(q[base+k-S1]) + biasRow
				}
			}
		}
		biasAcc += biasRow
		if rowsInAcc++; rowsInAcc == 255 {
			drainAcc(sums, accE, accO)
			rowsInAcc = 0
		}
		if c -= off; c < 0 {
			c += n
		}
	}
	drainAcc(sums, accE, accO)
	for k := 0; k < S; k++ {
		emit(lo+k, sums[k]-biasAcc)
	}
	putKernelScratch(ks)
}

// drainAcc flushes the 16-bit lane accumulators into the per-group int32
// sums and zeroes them. 16-bit lane t of accE[w] / accO[w] belongs to
// sums[8w+2t] / sums[8w+2t+1].
func drainAcc(sums []int32, accE, accO []uint64) {
	for w := range accE {
		e, o := accE[w], accO[w]
		accE[w], accO[w] = 0, 0
		k0 := 8 * w
		lane := sums[k0 : k0+8 : k0+8]
		for t := 0; t < 4; t++ {
			sh := uint(16 * t)
			lane[2*t] += int32((e >> sh) & 0xFFFF)
			lane[2*t+1] += int32((o >> sh) & 0xFFFF)
		}
	}
}
