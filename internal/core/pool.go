package core

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// resolveWorkers maps a Config.Workers value to a concrete pool size:
// non-positive means one worker per available CPU.
func resolveWorkers(w int) int {
	if w <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return w
}

// runTasks executes task(0) … task(n-1) on at most workers goroutines.
// Workers claim task indices from a shared atomic counter, so imbalance
// between tasks is absorbed without pre-partitioning. Callers must make
// tasks write to disjoint destinations; the result is then independent of
// the claiming order. workers <= 1 degenerates to a plain sequential loop
// with no goroutine or synchronization cost.
func runTasks(workers, n int, task func(i int)) {
	if n == 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			task(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				task(i)
			}
		}()
	}
	wg.Wait()
}
