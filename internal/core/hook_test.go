package core

import (
	"reflect"
	"sort"
	"sync"
	"testing"

	"radar/internal/quant"
)

// hookRecorder is a concurrency-safe OnLayerScanned sink.
type hookRecorder struct {
	mu     sync.Mutex
	layers []int
}

func (r *hookRecorder) hook(li int) {
	r.mu.Lock()
	r.layers = append(r.layers, li)
	r.mu.Unlock()
}

func (r *hookRecorder) take() []int {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := append([]int(nil), r.layers...)
	r.layers = r.layers[:0]
	sort.Ints(out)
	return out
}

// TestOnLayerScannedHook pins the hook contract: every scan/protect pass
// fires the hook exactly once per covered layer, after that layer's last
// shard — across the sequential path, the parallel fan-out, incremental
// scans, and the initial Protect.
func TestOnLayerScannedHook(t *testing.T) {
	for _, workers := range []int{1, 4} {
		m := hookTestModel()
		var rec hookRecorder
		cfg := DefaultConfig(8)
		cfg.Workers = workers
		cfg.ShardGroups = 2 // force several shards per layer
		cfg.OnLayerScanned = rec.hook
		p := Protect(m, cfg)
		all := []int{0, 1, 2}
		if got := rec.take(); !reflect.DeepEqual(got, all) {
			t.Fatalf("workers=%d Protect fired %v, want %v", workers, got, all)
		}
		p.Scan()
		if got := rec.take(); !reflect.DeepEqual(got, all) {
			t.Fatalf("workers=%d Scan fired %v, want %v", workers, got, all)
		}
		p.ScanLayer(1)
		if got := rec.take(); !reflect.DeepEqual(got, []int{1}) {
			t.Fatalf("workers=%d ScanLayer(1) fired %v", workers, got)
		}
		m.FlipBit(quant.BitAddress{LayerIndex: 2, WeightIndex: 7, Bit: 3})
		p.ScanDirty()
		if got := rec.take(); !reflect.DeepEqual(got, []int{2}) {
			t.Fatalf("workers=%d ScanDirty fired %v, want [2]", workers, got)
		}
		if p.ScanDirty(); len(rec.take()) != 0 {
			t.Fatalf("workers=%d clean ScanDirty fired the hook", workers)
		}
		p.DetectAndRecover()
		if got := rec.take(); !reflect.DeepEqual(got, all) {
			t.Fatalf("workers=%d DetectAndRecover fired %v, want %v", workers, got, all)
		}
		p.RefreshAll()
		if got := rec.take(); !reflect.DeepEqual(got, all) {
			t.Fatalf("workers=%d RefreshAll fired %v, want %v", workers, got, all)
		}
	}
}

// TestRekeySwapsLayerScannedHook pins that Rekey honors a new
// OnLayerScanned in its Config like the other tuned fields: scans after
// the rekey fire the replacement hook, not the original, and a cfg that
// leaves the hook nil keeps the existing one.
func TestRekeySwapsLayerScannedHook(t *testing.T) {
	m := hookTestModel()
	var recA, recB hookRecorder
	cfg := DefaultConfig(8)
	cfg.OnLayerScanned = recA.hook
	p := Protect(m, cfg)

	swap := DefaultConfig(8)
	swap.OnLayerScanned = recB.hook
	p.Rekey(swap)
	recA.take() // drain the initial Protect
	recB.take() // drain the rekey's own signature recompute
	all := []int{0, 1, 2}
	p.Scan()
	if got := recB.take(); !reflect.DeepEqual(got, all) {
		t.Fatalf("post-rekey scan fired new hook for %v, want %v", got, all)
	}
	if got := recA.take(); len(got) != 0 {
		t.Fatalf("post-rekey scan still fired the replaced hook for %v", got)
	}

	// A rekey without a hook keeps the current one.
	p.Rekey(DefaultConfig(8))
	recB.take()
	p.Scan()
	if got := recB.take(); !reflect.DeepEqual(got, all) {
		t.Fatalf("scan after hookless rekey fired %v, want %v", got, all)
	}
}

func hookTestModel() *quant.Model {
	m := &quant.Model{}
	for i, n := range []int{96, 41, 120} {
		l := &quant.Layer{Name: []string{"a", "b", "c"}[i], Q: make([]int8, n), Scale: 1}
		for j := range l.Q {
			l.Q[j] = int8((j*31 + i*7) % 251)
		}
		m.Layers = append(m.Layers, l)
	}
	return m
}

// TestRecoveryNotifiesObservers pins that Recover (and the guarded
// variants) report their direct Layer.Q zeroing through the model's write
// observers — the notification an mmap-backed store relies on to schedule
// recovered layers for msync.
func TestRecoveryNotifiesObservers(t *testing.T) {
	m := hookTestModel()
	p := Protect(m, DefaultConfig(8))
	m.FlipBit(quant.BitAddress{LayerIndex: 1, WeightIndex: 5, Bit: quant.MSB})
	var rec hookRecorder
	cancel := m.Observe(rec.hook)
	defer cancel()
	flagged, zeroed := p.DetectAndRecover()
	if len(flagged) == 0 || zeroed == 0 {
		t.Fatalf("flip not recovered: flagged=%v zeroed=%d", flagged, zeroed)
	}
	if got := rec.take(); !reflect.DeepEqual(got, []int{1}) {
		t.Fatalf("recovery notified %v, want [1]", got)
	}
	// A scan of the now-clean model recovers nothing and must not notify.
	p.Scan()
	if got := rec.take(); len(got) != 0 {
		t.Fatalf("clean scan notified %v", got)
	}
}
