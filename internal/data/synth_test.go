package data

import (
	"math"
	"math/rand"
	"testing"
)

func TestGenerateDeterministic(t *testing.T) {
	cfg := SynthCIFAR()
	a := Generate(cfg, 20, 7)
	b := Generate(cfg, 20, 7)
	for i := range a.X.Data {
		if a.X.Data[i] != b.X.Data[i] {
			t.Fatal("same seed must reproduce identical data")
		}
	}
	for i := range a.Labels {
		if a.Labels[i] != b.Labels[i] {
			t.Fatal("labels must be deterministic")
		}
	}
}

func TestGenerateStreamsDiffer(t *testing.T) {
	cfg := SynthCIFAR()
	a := Generate(cfg, 20, 7)
	b := Generate(cfg, 20, 8)
	same := true
	for i := range a.X.Data {
		if a.X.Data[i] != b.X.Data[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different streams produced identical data")
	}
}

func TestGenerateShapesAndLabels(t *testing.T) {
	cfg := SynthImageNet()
	d := Generate(cfg, 50, 1)
	if d.Len() != 50 {
		t.Fatalf("Len = %d", d.Len())
	}
	want := []int{50, 3, 32, 32}
	for i, w := range want {
		if d.X.Shape[i] != w {
			t.Fatalf("shape = %v", d.X.Shape)
		}
	}
	for _, l := range d.Labels {
		if l < 0 || l >= cfg.Classes {
			t.Fatalf("label %d out of range", l)
		}
	}
}

func TestAllClassesRepresented(t *testing.T) {
	cfg := SynthCIFAR()
	d := Generate(cfg, 500, 3)
	seen := make([]bool, cfg.Classes)
	for _, l := range d.Labels {
		seen[l] = true
	}
	for c, s := range seen {
		if !s {
			t.Fatalf("class %d missing from 500 samples", c)
		}
	}
}

func TestClassesAreSeparable(t *testing.T) {
	// A nearest-class-mean classifier on raw pixels should beat chance by a
	// wide margin — sanity that the generator encodes class information.
	cfg := SynthCIFAR()
	train := Generate(cfg, 400, 11)
	test := Generate(cfg, 200, 12)
	sz := train.X.Len() / train.Len()
	means := make([][]float64, cfg.Classes)
	counts := make([]int, cfg.Classes)
	for c := range means {
		means[c] = make([]float64, sz)
	}
	for i := 0; i < train.Len(); i++ {
		c := train.Labels[i]
		counts[c]++
		for j := 0; j < sz; j++ {
			means[c][j] += float64(train.X.Data[i*sz+j])
		}
	}
	for c := range means {
		if counts[c] == 0 {
			continue
		}
		for j := range means[c] {
			means[c][j] /= float64(counts[c])
		}
	}
	correct := 0
	for i := 0; i < test.Len(); i++ {
		best, bestD := -1, math.Inf(1)
		for c := range means {
			var dist float64
			for j := 0; j < sz; j++ {
				d := float64(test.X.Data[i*sz+j]) - means[c][j]
				dist += d * d
			}
			if dist < bestD {
				best, bestD = c, dist
			}
		}
		if best == test.Labels[i] {
			correct++
		}
	}
	acc := float64(correct) / float64(test.Len())
	if acc < 0.5 {
		t.Fatalf("nearest-mean accuracy %v too low; classes not separable", acc)
	}
}

func TestBatch(t *testing.T) {
	d := Generate(SynthCIFAR(), 10, 1)
	x, labels := d.Batch(2, 5)
	if x.Shape[0] != 3 || len(labels) != 3 {
		t.Fatalf("batch shapes wrong: %v %d", x.Shape, len(labels))
	}
	sz := d.X.Len() / d.Len()
	if x.Data[0] != d.X.Data[2*sz] {
		t.Fatal("batch content wrong")
	}
}

func TestBatchPanicsOnBadRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Generate(SynthCIFAR(), 4, 1).Batch(3, 3)
}

func TestSubset(t *testing.T) {
	d := Generate(SynthCIFAR(), 10, 1)
	s := d.Subset([]int{9, 0, 4})
	if s.Len() != 3 {
		t.Fatalf("subset len = %d", s.Len())
	}
	if s.Labels[0] != d.Labels[9] || s.Labels[2] != d.Labels[4] {
		t.Fatal("subset labels wrong")
	}
}

func TestShufflePreservesPairs(t *testing.T) {
	d := Generate(SynthCIFAR(), 30, 1)
	// Record checksum of each (image, label) pair before shuffling.
	sz := d.X.Len() / d.Len()
	sig := func(i int) float64 {
		var s float64
		for j := 0; j < sz; j++ {
			s += float64(d.X.Data[i*sz+j]) * float64(j+1)
		}
		return s + 1e6*float64(d.Labels[i])
	}
	before := map[int64]int{}
	for i := 0; i < d.Len(); i++ {
		before[int64(sig(i)*1e3)]++
	}
	d.Shuffle(rand.New(rand.NewSource(5)))
	after := map[int64]int{}
	for i := 0; i < d.Len(); i++ {
		after[int64(sig(i)*1e3)]++
	}
	if len(before) != len(after) {
		t.Fatal("shuffle changed the multiset of samples")
	}
	for k, v := range before {
		if after[k] != v {
			t.Fatal("shuffle broke an (image,label) pair")
		}
	}
}
