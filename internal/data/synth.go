// Package data generates the deterministic synthetic image-classification
// datasets that stand in for CIFAR-10 and ImageNet in this offline
// reproduction (see DESIGN.md §1). Each class is defined by a random but
// fixed combination of oriented sinusoid textures; samples add per-image
// phase jitter, amplitude variation and Gaussian noise, so the task is
// learnable but not trivial and gradients through a trained model are
// informative — which is all PBFA and RADAR require of the data.
package data

import (
	"math"
	"math/rand"

	"radar/internal/tensor"
)

// Dataset is an in-memory labeled image set with shape (N, C, H, W).
type Dataset struct {
	// X holds the images.
	X *tensor.Tensor
	// Labels holds the class index of each image.
	Labels []int
	// Classes is the number of distinct labels.
	Classes int
}

// Len returns the number of samples.
func (d *Dataset) Len() int { return d.X.Shape[0] }

// Batch copies samples [lo,hi) into a fresh tensor + label slice.
func (d *Dataset) Batch(lo, hi int) (*tensor.Tensor, []int) {
	n, c, h, w := d.X.Shape[0], d.X.Shape[1], d.X.Shape[2], d.X.Shape[3]
	if lo < 0 || hi > n || lo >= hi {
		panic("data: bad batch range")
	}
	bn := hi - lo
	x := tensor.New(bn, c, h, w)
	copy(x.Data, d.X.Data[lo*c*h*w:hi*c*h*w])
	return x, d.Labels[lo:hi]
}

// Subset returns a view dataset containing the samples at the given indices.
func (d *Dataset) Subset(idx []int) *Dataset {
	c, h, w := d.X.Shape[1], d.X.Shape[2], d.X.Shape[3]
	x := tensor.New(len(idx), c, h, w)
	labels := make([]int, len(idx))
	sz := c * h * w
	for i, j := range idx {
		copy(x.Data[i*sz:(i+1)*sz], d.X.Data[j*sz:(j+1)*sz])
		labels[i] = d.Labels[j]
	}
	return &Dataset{X: x, Labels: labels, Classes: d.Classes}
}

// Shuffle permutes the dataset in place using rng.
func (d *Dataset) Shuffle(rng *rand.Rand) {
	n := d.Len()
	sz := d.X.Len() / n
	tmp := make([]float32, sz)
	for i := n - 1; i > 0; i-- {
		j := rng.Intn(i + 1)
		if i == j {
			continue
		}
		copy(tmp, d.X.Data[i*sz:(i+1)*sz])
		copy(d.X.Data[i*sz:(i+1)*sz], d.X.Data[j*sz:(j+1)*sz])
		copy(d.X.Data[j*sz:(j+1)*sz], tmp)
		d.Labels[i], d.Labels[j] = d.Labels[j], d.Labels[i]
	}
}

// SynthConfig parameterizes a synthetic dataset family.
type SynthConfig struct {
	// Classes is the number of classes.
	Classes int
	// Size is the square image side length.
	Size int
	// Channels is the image channel count.
	Channels int
	// Waves is the number of sinusoid components per class prototype.
	Waves int
	// Noise is the additive Gaussian noise standard deviation.
	Noise float64
	// Confuse is the maximum blend fraction of a random other class's
	// prototype mixed into each sample. Values near 0.5 make samples
	// genuinely ambiguous, setting a realistic accuracy ceiling (conv nets
	// average pure pixel noise away, so noise alone cannot do this).
	Confuse float64
	// Seed fixes the class prototypes; a dataset generated twice with the
	// same seed and sample count is identical.
	Seed int64
}

// SynthCIFAR returns the configuration standing in for CIFAR-10:
// 10 classes of 3×16×16 images.
func SynthCIFAR() SynthConfig {
	return SynthConfig{Classes: 10, Size: 16, Channels: 3, Waves: 3, Noise: 0.5, Confuse: 0.58, Seed: 1001}
}

// SynthImageNet returns the configuration standing in for ImageNet:
// 20 classes of 3×32×32 images with more texture components and noise,
// making the task harder than SynthCIFAR.
func SynthImageNet() SynthConfig {
	return SynthConfig{Classes: 20, Size: 32, Channels: 3, Waves: 4, Noise: 0.6, Confuse: 1.0, Seed: 2002}
}

// classProto is one sinusoid component of a class prototype.
type classProto struct {
	fx, fy, phase, amp float64
	channel            int
}

// Generate synthesizes n samples from cfg using the stream identified by
// streamSeed (different streams share class prototypes but draw disjoint
// noise/jitter, so train/test splits are honest).
func Generate(cfg SynthConfig, n int, streamSeed int64) *Dataset {
	protoRng := rand.New(rand.NewSource(cfg.Seed))
	protos := make([][]classProto, cfg.Classes)
	for c := range protos {
		comps := make([]classProto, cfg.Waves)
		for i := range comps {
			comps[i] = classProto{
				fx:      (protoRng.Float64()*3 + 0.5) * 2 * math.Pi / float64(cfg.Size),
				fy:      (protoRng.Float64()*3 + 0.5) * 2 * math.Pi / float64(cfg.Size),
				phase:   protoRng.Float64() * 2 * math.Pi,
				amp:     0.6 + protoRng.Float64()*0.8,
				channel: protoRng.Intn(cfg.Channels),
			}
		}
		protos[c] = comps
	}

	rng := rand.New(rand.NewSource(streamSeed ^ cfg.Seed<<1))
	x := tensor.New(n, cfg.Channels, cfg.Size, cfg.Size)
	labels := make([]int, n)
	sz := cfg.Channels * cfg.Size * cfg.Size
	for i := 0; i < n; i++ {
		class := rng.Intn(cfg.Classes)
		labels[i] = class
		img := x.Data[i*sz : (i+1)*sz]
		jitter := rng.Float64() * 2 * math.Pi
		ampJit := 0.8 + rng.Float64()*0.4
		addProto := func(class int, weight float64) {
			for _, p := range protos[class] {
				base := p.channel * cfg.Size * cfg.Size
				for yy := 0; yy < cfg.Size; yy++ {
					for xx := 0; xx < cfg.Size; xx++ {
						v := weight * p.amp * ampJit * math.Sin(p.fx*float64(xx)+p.fy*float64(yy)+p.phase+jitter*0.15)
						img[base+yy*cfg.Size+xx] += float32(v)
					}
				}
			}
		}
		// Blend in a random other class to create genuinely ambiguous
		// samples (α near 0.5 is a coin toss even for an ideal classifier).
		alpha := 0.0
		if cfg.Confuse > 0 && cfg.Classes > 1 {
			alpha = rng.Float64() * cfg.Confuse
			if alpha > 0.5 {
				alpha = 0.5 // a 50/50 blend is maximally ambiguous
			}
		}
		addProto(class, 1-alpha)
		if alpha > 0 {
			other := rng.Intn(cfg.Classes - 1)
			if other >= class {
				other++
			}
			addProto(other, alpha)
		}
		for j := range img {
			img[j] += float32(rng.NormFloat64() * cfg.Noise)
		}
	}
	return &Dataset{X: x, Labels: labels, Classes: cfg.Classes}
}

// TrainTest generates a deterministic train/test split with nTrain and
// nTest samples drawn from independent streams of cfg.
func TrainTest(cfg SynthConfig, nTrain, nTest int) (train, test *Dataset) {
	return Generate(cfg, nTrain, 101), Generate(cfg, nTest, 202)
}
