package serve

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync/atomic"
	"time"

	"radar/internal/core"
	"radar/internal/obs"
	"radar/internal/qinfer"
	"radar/internal/quant"
	"radar/internal/tensor"
)

// Request is one inference input addressed to a hosted model. An empty
// Model selects the service's default model (the first one registered) —
// the single-model deployment shorthand.
type Request struct {
	Model string
	// Input is the (C, H, W) — or (1, C, H, W) — image.
	Input *tensor.Tensor
	// RequestID, when set, traces the request: per-stage span timings are
	// recorded into the service trace ring under this id (the X-Request-Id
	// of HTTP-originated requests). Empty skips tracing.
	RequestID string
}

// ServiceOption configures a Service under construction; see Open.
type ServiceOption func(*serviceConfig) error

// ModelOption tunes one registered model's serving Config; see WithModel.
type ModelOption func(*Config)

type modelSpec struct {
	name string
	eng  *qinfer.Engine
	prot *core.Protector
	cfg  Config
}

type serviceConfig struct {
	models   []modelSpec
	jobCap   int
	jobTTL   time.Duration
	provider ModelProvider
}

// DefaultJobCapacity bounds the async job table when WithJobCapacity is
// not given.
const DefaultJobCapacity = 1024

// DefaultJobTTL is how long a completed job's result stays pollable when
// WithJobTTL is not given.
const DefaultJobTTL = time.Minute

// WithModel registers one model under name: an int8 engine plus the
// protector guarding the engine's weight image (the protector must
// protect the same quant.Model the engine was compiled from — same
// contract as New). Each model gets its own independently configured
// runtime — batching queue, inference workers, background scrubber and
// verified-fetch verifier — tuned by the ModelOptions. Names must be
// non-empty, unique, and URL-safe (letters, digits, '.', '_', '-'); the
// first model registered is the service's default.
func WithModel(name string, eng *qinfer.Engine, prot *core.Protector, opts ...ModelOption) ServiceOption {
	return func(sc *serviceConfig) error {
		if err := validModelName(name); err != nil {
			return err
		}
		if eng == nil || prot == nil {
			return fmt.Errorf("serve: model %q needs a non-nil engine and protector", name)
		}
		cfg := DefaultConfig()
		for _, o := range opts {
			o(&cfg)
		}
		sc.models = append(sc.models, modelSpec{name: name, eng: eng, prot: prot, cfg: cfg})
		return nil
	}
}

// WithConfig replaces the model's whole serving Config (unset fields are
// filled with defaults). Later ModelOptions still apply on top.
func WithConfig(cfg Config) ModelOption {
	return func(c *Config) { *c = cfg }
}

// WithBatch sets the model's max batch size and batching latency window.
func WithBatch(maxBatch int, maxLatency time.Duration) ModelOption {
	return func(c *Config) { c.MaxBatch = maxBatch; c.MaxLatency = maxLatency }
}

// WithWorkers sets the model's inference worker count.
func WithWorkers(n int) ModelOption {
	return func(c *Config) { c.Workers = n }
}

// WithQueueDepth bounds the model's pending-request queue.
func WithQueueDepth(n int) ModelOption {
	return func(c *Config) { c.QueueDepth = n }
}

// WithVerifiedFetch toggles per-layer signature verification in the
// weight-fetch path.
func WithVerifiedFetch(on bool) ModelOption {
	return func(c *Config) { c.VerifiedFetch = on }
}

// WithScrub sets the background scrub interval (0 disables) and how often
// a cycle is a full pipelined DetectAndRecover instead of an incremental
// ScanDirty.
func WithScrub(interval time.Duration, fullEvery int) ModelOption {
	return func(c *Config) { c.ScrubInterval = interval; c.ScrubFullEvery = fullEvery }
}

// WithInputShape pins the model's expected per-request input shape.
func WithInputShape(ch, h, w int) ModelOption {
	return func(c *Config) { c.InputShape = []int{ch, h, w} }
}

// WithJobCapacity bounds the async job table (default DefaultJobCapacity).
// Submissions beyond it fail with ErrJobsFull instead of growing memory.
func WithJobCapacity(n int) ServiceOption {
	return func(sc *serviceConfig) error {
		if n <= 0 {
			return fmt.Errorf("serve: job capacity %d, want > 0", n)
		}
		sc.jobCap = n
		return nil
	}
}

// WithJobTTL sets how long completed jobs stay pollable before they are
// reaped (default DefaultJobTTL).
func WithJobTTL(d time.Duration) ServiceOption {
	return func(sc *serviceConfig) error {
		if d <= 0 {
			return fmt.Errorf("serve: job TTL %v, want > 0", d)
		}
		sc.jobTTL = d
		return nil
	}
}

// ModelProvider materializes a model from a wire-level add request: given
// the name to host it under and an opaque source string (for radar-serve,
// a zoo model name), it builds the engine + protector pair and any
// per-model options. It backs POST /v1/admin/models/{name}; a service
// without a provider answers that route 501.
type ModelProvider func(name, source string) (*qinfer.Engine, *core.Protector, []ModelOption, error)

// WithModelProvider installs the provider the HTTP admin plane uses to
// hot-add models by source name.
func WithModelProvider(p ModelProvider) ServiceOption {
	return func(sc *serviceConfig) error {
		sc.provider = p
		return nil
	}
}

func validModelName(name string) error {
	if name == "" {
		return errors.New("serve: model name must not be empty")
	}
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '.', r == '_', r == '-':
		default:
			return fmt.Errorf("serve: model name %q not URL-safe (letters, digits, '.', '_', '-')", name)
		}
	}
	return nil
}

// Service is the multi-model serving front-end: a registry of protected
// model runtimes, a bounded async job table, and the versioned HTTP
// control plane (Handler). Build with Open; Close shuts everything down
// gracefully.
type Service struct {
	reg      *Registry
	jobs     *jobTable
	provider ModelProvider
	obs      *obs.Registry  // every hosted model's metric families
	traces   *obs.TraceRing // completed request traces, service-wide
	closed   atomic.Bool
}

// Open builds and starts a Service from functional options. At least one
// WithModel is required; every registered model's runtime (workers,
// batcher, scrubber) is started before Open returns, so the service is
// immediately ready to answer Infer/Submit and HTTP traffic.
func Open(opts ...ServiceOption) (*Service, error) {
	sc := serviceConfig{jobCap: DefaultJobCapacity, jobTTL: DefaultJobTTL}
	for _, o := range opts {
		if err := o(&sc); err != nil {
			return nil, err
		}
	}
	if len(sc.models) == 0 {
		return nil, errors.New("serve: Open needs at least one WithModel")
	}
	mreg := obs.NewRegistry()
	traces := obs.NewTraceRing(defaultTraceRingSize)
	reg := &Registry{byName: make(map[string]*hostedModel, len(sc.models))}
	for _, ms := range sc.models {
		hm := &hostedModel{
			name: ms.name,
			eng:  ms.eng,
			prot: ms.prot,
			srv:  newServerIn(ms.eng, ms.prot, ms.cfg, mreg, ms.name, traces),
		}
		if err := reg.add(hm); err != nil {
			return nil, err
		}
	}
	for _, hm := range reg.snapshot() {
		hm.srv.Start()
	}
	jobs := newJobTable(sc.jobCap, sc.jobTTL)
	mreg.Gauge("radar_jobs_active", "Async jobs currently held by the bounded job table.").
		Func(func() float64 { active, _ := jobs.stats(); return float64(active) })
	mreg.Counter("radar_jobs_submitted_total", "Async jobs accepted over the service lifetime.").
		Func(func() float64 { _, submitted := jobs.stats(); return float64(submitted) })
	mreg.Counter("radar_jobs_cancelled_total", "Async jobs cancelled before completion.").
		Func(func() float64 { return float64(jobs.cancelledCount()) })
	return &Service{reg: reg, jobs: jobs, provider: sc.provider, obs: mreg, traces: traces}, nil
}

// Close gracefully stops every hosted model: new submissions fail with
// ErrStopping, queued requests (including pending async jobs) are still
// answered, and the scrubbers exit. Idempotent.
func (s *Service) Close() {
	if !s.closed.CompareAndSwap(false, true) {
		return
	}
	for _, hm := range s.reg.snapshot() {
		hm.srv.Stop()
	}
}

// AddModel hot-adds a model to a running service: the runtime (workers,
// batcher, scrubber, verifier) is built and started exactly as in Open,
// then the name is published to the registry, so the first request routed
// to it already finds a live runtime. Same contract as WithModel: the
// protector must protect the quant.Model the engine was compiled from,
// and the engine becomes owned by the service.
func (s *Service) AddModel(name string, eng *qinfer.Engine, prot *core.Protector, opts ...ModelOption) error {
	if s.closed.Load() {
		return ErrStopping
	}
	if err := validModelName(name); err != nil {
		return err
	}
	if eng == nil || prot == nil {
		return fmt.Errorf("serve: model %q needs a non-nil engine and protector", name)
	}
	cfg := DefaultConfig()
	for _, o := range opts {
		o(&cfg)
	}
	hm := &hostedModel{name: name, eng: eng, prot: prot, srv: newServerIn(eng, prot, cfg, s.obs, name, s.traces)}
	hm.srv.Start()
	if err := s.reg.add(hm); err != nil {
		hm.srv.Stop() // name collision: tear the fresh runtime back down
		return err
	}
	return nil
}

// RemoveModel hot-removes a hosted model: the name is unpublished first
// (new requests fail with ErrUnknownModel), then the runtime drains —
// queued requests are still answered — and stops. The last hosted model
// cannot be removed; removing the default promotes the next-oldest
// registration.
func (s *Service) RemoveModel(name string) error {
	if s.closed.Load() {
		return ErrStopping
	}
	hm, err := s.reg.remove(name)
	if err != nil {
		return err
	}
	hm.srv.Stop()
	// Drop the removed model's series so a scrape no longer reports it; a
	// later AddModel under the same name re-binds fresh children.
	s.obs.Prune("model", name)
	return nil
}

// Infer answers one request synchronously, honoring ctx deadlines and
// cancellation while the input waits in the model's batch queue and while
// the batched forward runs.
func (s *Service) Infer(ctx context.Context, req Request) (Result, error) {
	hm, err := s.reg.lookup(req.Model)
	if err != nil {
		return Result{}, err
	}
	return hm.srv.inferContext(ctx, req.Input, req.RequestID)
}

// Submit enqueues one request as an async job and returns immediately
// with its ID — no goroutine or connection is parked waiting for the
// result. The enqueue itself never blocks: a full batch queue fails fast
// with ErrQueueFull, and the bounded job table fails with ErrJobsFull.
// ctx governs the job's lifetime, not just the submission: cancelling it
// before the result is computed cancels the job, drops its queued work,
// and reaps it from the table. Pass a background context for
// fire-and-forget jobs.
func (s *Service) Submit(ctx context.Context, req Request) (JobID, error) {
	hm, err := s.reg.lookup(req.Model)
	if err != nil {
		return "", err
	}
	// Every job gets its own cancel handle layered over the submission
	// context, so Cancel (and DELETE /v1/jobs/{id}) can kill it even when
	// the submitter's context never fires.
	jctx, jcancel := context.WithCancel(ctx)
	j, err := s.jobs.create(hm.name, jcancel)
	if err != nil {
		jcancel()
		return "", err
	}
	ch, err := hm.srv.trySubmit(jctx, req.Input, req.RequestID)
	if err != nil {
		s.jobs.abort(j.id)
		jcancel()
		return "", err
	}
	go s.jobs.watch(j, jctx, ch)
	return j.id, nil
}

// Cancel cancels a pending job — its queued work is dropped before the
// forward pass, its table slot is freed immediately, and any Wait returns
// ErrJobCancelled — and returns the job's final status. Cancelling a job
// that already completed removes it from the table (the DELETE-a-resource
// reading) and reports its terminal "done" state. Unknown, expired or
// already-cancelled IDs return ErrUnknownJob.
func (s *Service) Cancel(id JobID) (JobStatus, error) {
	return s.jobs.cancel(id)
}

// Poll reports a job's current status without blocking. Unknown IDs —
// never submitted, cancelled, or expired past the job TTL — return
// ErrUnknownJob.
func (s *Service) Poll(id JobID) (JobStatus, error) {
	j, err := s.jobs.get(id)
	if err != nil {
		return JobStatus{}, err
	}
	return s.jobs.status(j), nil
}

// Wait blocks until the job completes (returning its Result), the job is
// cancelled (ErrJobCancelled), or ctx is done. The job stays pollable
// after Wait until its TTL expires. A Wait that begins after a cancelled
// job was already reaped sees ErrUnknownJob instead, like any lookup of
// a reaped ID.
func (s *Service) Wait(ctx context.Context, id JobID) (Result, error) {
	j, err := s.jobs.get(id)
	if err != nil {
		return Result{}, err
	}
	select {
	case <-j.done:
	case <-ctx.Done():
		return Result{}, ctx.Err()
	}
	st := s.jobs.status(j)
	if st.State == JobCancelled || st.Result == nil {
		return Result{}, ErrJobCancelled
	}
	return *st.Result, nil
}

// Models snapshots every hosted model's identity, configuration and live
// metrics, in registration order.
func (s *Service) Models() []ModelInfo {
	hms := s.reg.snapshot()
	out := make([]ModelInfo, 0, len(hms))
	for _, hm := range hms {
		out = append(out, hm.info())
	}
	return out
}

// Snapshot returns one model's live metrics (empty name: default model).
func (s *Service) Snapshot(model string) (Snapshot, error) {
	hm, err := s.reg.lookup(model)
	if err != nil {
		return Snapshot{}, err
	}
	return hm.srv.Snapshot(), nil
}

// Scrub forces one scrub cycle on the named model, or on every model when
// name is empty, and reports what each cycle found. full selects the
// pipelined whole-model DetectAndRecover over the incremental ScanDirty.
func (s *Service) Scrub(model string, full bool) ([]AdminReport, error) {
	var out []AdminReport
	err := s.reg.each(model, func(hm *hostedModel) error {
		out = append(out, hm.scrub(full))
		return nil
	})
	return out, err
}

// Rekey rotates the named model's protection secrets live (every model
// when name is empty): a full scrub first, then fresh per-layer keys and
// offsets with all golden signatures recomputed under whole-model write
// exclusion. Traffic keeps flowing; only the exclusive recompute itself
// briefly stalls fetches.
func (s *Service) Rekey(model string) ([]AdminReport, error) {
	var out []AdminReport
	err := s.reg.each(model, func(hm *hostedModel) error {
		out = append(out, hm.rekey())
		return nil
	})
	return out, err
}

// Inject runs an adversary against the named model's live weight image
// under whole-model write exclusion (empty name: default model) — the
// attack-injection hook tests and benchmarks mount rowhammer profiles
// through.
func (s *Service) Inject(model string, f func(*quant.Model)) error {
	hm, err := s.reg.lookup(model)
	if err != nil {
		return err
	}
	hm.inject(f)
	return nil
}

// InjectAdversary plans and mounts one volley of the named adversary
// (see internal/adversary) against the named model's live weight image —
// or, for the sigstore adversary, against its golden-signature store —
// under whole-model write exclusion (empty model: default model). The
// smoke and chaos tooling uses it to exercise the recovery paths end to
// end through HTTP.
func (s *Service) InjectAdversary(model, adversary string, flips int, seed int64) (InjectReport, error) {
	hm, err := s.reg.lookup(model)
	if err != nil {
		return InjectReport{}, err
	}
	return hm.injectAdversary(adversary, flips, seed)
}

// Protector exposes the named model's protector (empty name: default
// model), e.g. for stats or a quiesced final sweep in tests.
func (s *Service) Protector(model string) (*core.Protector, error) {
	hm, err := s.reg.lookup(model)
	if err != nil {
		return nil, err
	}
	return hm.prot, nil
}

// WriteMetrics writes every hosted model's series (plus the service-wide
// job-table figures) in the Prometheus text exposition format — the body
// of GET /v1/metrics. Safe under full traffic: instruments are atomics and
// the exposition only read-locks family bookkeeping.
func (s *Service) WriteMetrics(w io.Writer) (int64, error) {
	return s.obs.WriteTo(w)
}

// MetricNames returns every registered metric family name, in
// registration order — what the naming-lint test checks.
func (s *Service) MetricNames() []string {
	return s.obs.Names()
}

// Traces returns up to n completed request traces, newest first (n <= 0:
// all retained). Only requests carrying a RequestID (every HTTP request;
// Go-API calls that set Request.RequestID) are traced.
func (s *Service) Traces(n int) []obs.Trace {
	return s.traces.Last(n)
}
