package serve

import (
	"sync/atomic"
	"time"

	"radar/internal/core"
)

// verifier implements the verified weight-fetch path with per-layer epoch
// caching. Every write to a layer (observed through the quant.Model API or
// injected via Server.Inject, which goes through FlipBit/Restore too)
// bumps that layer's epoch. A fetch first compares the layer's epoch
// against the epoch at which it was last verified clean: equal means no
// write has landed since, and the fetch proceeds for the cost of two
// atomic loads. On a miss the layer is rescanned and recovered atomically
// under its write lock (core.Protector.VerifyAndRecoverLayer) and the
// clean mark advances.
//
// The clean mark stores verifiedEpoch+1 so the zero value means "never
// verified". The epoch is sampled before the locked scan; a write that
// lands between the sample and the lock bumps the live epoch past the
// sample, so the stale clean mark simply forces one extra scan on the next
// fetch — the cache errs only toward re-scanning, never toward trusting a
// written layer.
type verifier struct {
	prot   *core.Protector
	met    *metrics
	scanNs atomic.Int64    // cumulative wall time inside fetch-path scans
	cur    []atomic.Uint64 // write epoch per layer
	clean  []atomic.Uint64 // 1 + epoch last verified clean; 0 = never
}

func newVerifier(prot *core.Protector, met *metrics, layers int) *verifier {
	return &verifier{
		prot:  prot,
		met:   met,
		cur:   make([]atomic.Uint64, layers),
		clean: make([]atomic.Uint64, layers),
	}
}

// bump records a write to layer li (model observer callback).
func (v *verifier) bump(li int) {
	if li >= 0 && li < len(v.cur) {
		v.cur[li].Add(1)
	}
}

// check is the engine's FetchHook: it runs immediately before layer li's
// conv stage reads its weights.
func (v *verifier) check(li int) { v.checkTimed(li) }

// checkTimed is check returning the nanoseconds the fetch spent scanning
// (zero on an epoch-cache hit). Workers use it to attribute verify time to
// the request trace without cross-request bookkeeping — the returned span
// belongs entirely to the calling forward pass.
func (v *verifier) checkTimed(li int) int64 {
	e := v.cur[li].Load()
	if v.clean[li].Load() == e+1 {
		v.met.verifyHits.Inc()
		return 0
	}
	v.met.verifyScans.Inc()
	start := time.Now()
	flagged, zeroed := v.prot.VerifyAndRecoverLayer(li)
	ns := time.Since(start).Nanoseconds()
	v.scanNs.Add(ns)
	if len(flagged) > 0 {
		v.met.verifyFlagged.Add(int64(len(flagged)))
		v.met.verifyZeroed.Add(int64(zeroed))
	}
	mark := e + 1
	if zeroed > 0 {
		// The repair's own zeroing is observed as a write — it must be, so
		// mapped storage can flush it — bumping the epoch by exactly one
		// before VerifyAndRecoverLayer returns (still under the layer
		// lock). Fold that bump into the clean mark so a just-repaired
		// layer is cache-clean on the next fetch; any concurrent write
		// still leaves the mark behind the live epoch and forces a rescan.
		mark++
	}
	v.clean[li].Store(mark)
	return ns
}
