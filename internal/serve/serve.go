// Package serve is the protected inference serving subsystem: it keeps
// RADAR-protected quantized models continuously safe while answering
// inference traffic — the paper's run-time deployment model turned into an
// actual server.
//
// The public surface is the Service, built with Open from functional
// options: it hosts any number of independently configured models (each an
// engine + protector + scrubber + verifier tuple, see WithModel) behind a
// routing front-end keyed by model name. Sync inference is
// Service.Infer(ctx, Request) — context deadlines and cancellation are
// honored all the way into the batch queue — and the async job API
// (Submit / Poll / Wait, backed by a bounded job table) answers traffic
// without parking a connection per request; DELETE /v1/jobs/{id} (Cancel)
// tears a pending job down. Handler exposes the versioned HTTP control
// plane (/v1/models/{name}/infer, /v1/models/{name}/jobs, /v1/jobs/{id},
// /v1/models, /v1/admin/scrub, /v1/admin/rekey,
// /v1/admin/models/{name}). The model set is mutable at run time via
// AddModel/RemoveModel — the hook a fleet router's control plane drives.
//
// Per hosted model, four cooperating pieces share one int8 weight image:
//
//   - A batching queue (bounded, with a max-batch-size and max-latency
//     flush policy) that coalesces single-input requests into batched
//     forward passes on a pool of inference workers.
//   - A background scrubber goroutine that periodically runs the
//     incremental ScanDirty (falling back to a pipelined full
//     DetectAndRecover every few cycles) and zeroes whatever it flags.
//   - A verified weight-fetch path: when enabled, every quantized layer is
//     re-verified immediately before its conv stage executes, with a
//     per-layer epoch cache so a layer that has not been written since its
//     last verification costs two atomic loads instead of a scan.
//   - An attack-injection hook that runs an adversary (e.g. a rowhammer
//     simulator mounting a PBFA profile) against the live model under
//     whole-model write exclusion, so integration tests and benchmarks can
//     flip bits mid-traffic without tripping the race detector.
//
// All cross-goroutine access to a weight image is coordinated through one
// core.LayerGuard per model: inference and scans take per-layer read
// locks, recovery and injected attacks take per-layer write locks. The
// subsystem is therefore -race-clean by construction while flips, scrubs,
// verified fetches and batched forwards all land on the same storage.
package serve

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"radar/internal/core"
	"radar/internal/obs"
	"radar/internal/qinfer"
	"radar/internal/quant"
	"radar/internal/tensor"
)

// Config tunes the serving subsystem.
type Config struct {
	// MaxBatch is the largest number of requests coalesced into one
	// forward pass (default 8).
	MaxBatch int
	// MaxLatency is how long the batcher waits for a batch to fill before
	// flushing a partial one (default 2ms).
	MaxLatency time.Duration
	// Workers is the number of inference worker goroutines (default
	// GOMAXPROCS).
	Workers int
	// QueueDepth bounds the pending-request queue; submitters block once
	// it is full (default 256).
	QueueDepth int
	// VerifiedFetch enables per-layer signature verification in the
	// weight-fetch path of every conv stage (the embedded detection of
	// Tables IV/V). Clean layers are skipped via the epoch cache.
	VerifiedFetch bool
	// ScrubInterval is the background scrubber period; zero disables the
	// scrubber entirely.
	ScrubInterval time.Duration
	// ScrubFullEvery makes every Nth scrub cycle a full pipelined
	// DetectAndRecover instead of an incremental ScanDirty, catching
	// corruption that bypassed the model API (default 8; 1 means every
	// cycle is full).
	ScrubFullEvery int
	// InputShape, when set, is the expected per-request input shape
	// (C, H, W); Infer and the HTTP front-end validate against it.
	InputShape []int
}

// DefaultConfig returns serving defaults: batches of up to 8 with a 2ms
// window, one worker per CPU, verified fetch on, and a 100ms scrubber.
func DefaultConfig() Config {
	return Config{
		MaxBatch:       8,
		MaxLatency:     2 * time.Millisecond,
		Workers:        runtime.GOMAXPROCS(0),
		QueueDepth:     256,
		VerifiedFetch:  true,
		ScrubInterval:  100 * time.Millisecond,
		ScrubFullEvery: 8,
	}
}

func (c *Config) fillDefaults() {
	if c.MaxBatch <= 0 {
		c.MaxBatch = 8
	}
	if c.MaxLatency <= 0 {
		c.MaxLatency = 2 * time.Millisecond
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 256
	}
	if c.ScrubFullEvery <= 0 {
		c.ScrubFullEvery = 8
	}
}

// Result is one request's answer. It serializes with lower-case keys —
// the async job route embeds it verbatim in the JobStatus body.
type Result struct {
	// Class is the argmax of Logits.
	Class int `json:"class"`
	// Logits is the classifier output row for this input.
	Logits []float32 `json:"logits"`
}

// request is one queued inference input awaiting batching.
type request struct {
	ctx context.Context // submitter's context; cancelled requests are skipped
	x   *tensor.Tensor  // (C, H, W)
	id  string          // X-Request-Id when traced; "" skips trace recording
	enq time.Time
	out chan Result
}

// ErrStopping is returned by submissions that race a graceful shutdown:
// the server has begun stopping and accepts no new work. It is stable
// (errors.Is-able); the HTTP front-ends map it to 503 with a Retry-After
// header so load balancers retry elsewhere.
var ErrStopping = errors.New("serve: server stopping")

// ErrQueueFull is returned by non-blocking submissions (the async job
// path) when the bounded request queue is at capacity. The HTTP front-end
// maps it to 429.
var ErrQueueFull = errors.New("serve: request queue full")

// Server binds an int8 inference engine to a RADAR protector and serves
// batched, continuously-verified inference. It is the per-model runtime a
// Service hosts one of per registered model; the registry builds one with
// newServer, Starts it, and Stops it (draining in-flight requests) on
// removal or shutdown. Use Open/Service — Server has no public
// constructor since the pre-v1 surface was retired.
type Server struct {
	cfg    Config
	name   string // hosted-model name, the `model` label on every series
	eng    *qinfer.Engine
	prot   *core.Protector
	model  *quant.Model
	guard  *core.LayerGuard
	ver    *verifier
	met    *metrics
	traces *obs.TraceRing // shared service-wide ring; never nil

	reqs    chan *request
	batches chan []*request

	// submitMu lets Stop wait out in-flight Infer sends before closing
	// reqs; stopping flips first so new submitters bail out.
	submitMu sync.RWMutex
	stopping atomic.Bool
	started  atomic.Bool

	scrubStop chan struct{}
	scrubWG   sync.WaitGroup
	workWG    sync.WaitGroup
	unobserve func()
	start     time.Time
}

// newServer wires a standalone server around an engine and protector with
// a private metrics registry and trace ring — the direct-construction path
// package tests use. Service-hosted models go through newServerIn so every
// model's series share the service registry.
func newServer(eng *qinfer.Engine, prot *core.Protector, cfg Config) *Server {
	return newServerIn(eng, prot, cfg, obs.NewRegistry(), "default", obs.NewTraceRing(defaultTraceRingSize))
}

// defaultTraceRingSize bounds the per-service trace ring: enough to hold a
// burst of routed requests for /v1/debug/traces without unbounded growth.
const defaultTraceRingSize = 256

// newServerIn wires a server around an engine and the protector guarding
// the engine's weight image, binding its metrics to reg under the `model`
// label name and its request traces to traces. The engine becomes owned by
// the server: the fetch hook and weight guard are installed here, so it
// must not be used for unrelated inference afterwards. The protector must
// protect the same quant.Model the engine was compiled from.
func newServerIn(eng *qinfer.Engine, prot *core.Protector, cfg Config, reg *obs.Registry, name string, traces *obs.TraceRing) *Server {
	cfg.fillDefaults()
	m := prot.Model
	s := &Server{
		cfg:       cfg,
		name:      name,
		eng:       eng,
		prot:      prot,
		model:     m,
		guard:     core.NewLayerGuard(len(m.Layers)),
		met:       newMetrics(reg, name),
		traces:    traces,
		reqs:      make(chan *request, cfg.QueueDepth),
		batches:   make(chan []*request, cfg.Workers),
		scrubStop: make(chan struct{}),
	}
	prot.Coordinate(s.guard)
	eng.SetWeightGuard(s.guard)
	s.ver = newVerifier(prot, s.met, len(m.Layers))
	if cfg.VerifiedFetch {
		eng.SetFetchHook(s.ver.check)
	}
	s.registerFuncs(reg, name)
	// Every write through the model API bumps the written layer's epoch so
	// the verified-fetch cache knows to re-verify it.
	s.unobserve = m.Observe(s.ver.bump)
	return s
}

// Start launches the batcher, the inference workers and (when configured)
// the background scrubber.
func (s *Server) Start() {
	if !s.started.CompareAndSwap(false, true) {
		return
	}
	s.start = time.Now()
	s.workWG.Add(1)
	go s.dispatch()
	for w := 0; w < s.cfg.Workers; w++ {
		s.workWG.Add(1)
		go s.worker()
	}
	if s.cfg.ScrubInterval > 0 {
		s.scrubWG.Add(1)
		go s.scrubLoop()
	}
}

// Stop gracefully shuts the server down: new submissions fail immediately
// with ErrStopping, already-queued requests are batched, answered and
// counted, and the scrubber exits after its current cycle. Stop returns
// once every goroutine has finished; it is idempotent.
func (s *Server) Stop() {
	if !s.stopping.CompareAndSwap(false, true) {
		return
	}
	// Wait for in-flight submitters (they hold submitMu.RLock while
	// sending), then close the intake so the dispatcher drains and exits.
	s.submitMu.Lock()
	close(s.reqs)
	s.submitMu.Unlock()
	s.workWG.Wait()
	close(s.scrubStop)
	s.scrubWG.Wait()
	if s.unobserve != nil {
		s.unobserve()
		s.unobserve = nil
	}
}

// InferContext submits one input of shape (C, H, W) — or (1, C, H, W) —
// and blocks until its result is ready or ctx is done. Cancellation is
// honored at every stage: while waiting for space in the bounded request
// queue, and while waiting for the batched forward pass (a request whose
// context is cancelled before its batch runs is dropped by the workers
// without being computed). Safe for any number of concurrent callers;
// concurrent submissions are what the batcher coalesces.
func (s *Server) InferContext(ctx context.Context, x *tensor.Tensor) (Result, error) {
	return s.inferContext(ctx, x, "")
}

// inferContext is InferContext carrying a request id for tracing; the
// empty id skips trace recording (the Go-API hot path).
func (s *Server) inferContext(ctx context.Context, x *tensor.Tensor, id string) (Result, error) {
	ch, err := s.submit(ctx, x, id)
	if err != nil {
		return Result{}, err
	}
	select {
	case res := <-ch:
		return res, nil
	case <-ctx.Done():
		return Result{}, ctx.Err()
	}
}

// newRequest validates one input and wraps it for the queue.
func (s *Server) newRequest(ctx context.Context, x *tensor.Tensor, id string) (*request, error) {
	shape := x.Shape
	if len(shape) == 4 && shape[0] == 1 {
		shape = shape[1:]
	}
	if len(shape) != 3 {
		return nil, fmt.Errorf("serve: input shape %v, want (C,H,W)", x.Shape)
	}
	if want := s.cfg.InputShape; len(want) == 3 {
		if shape[0] != want[0] || shape[1] != want[1] || shape[2] != want[2] {
			return nil, fmt.Errorf("serve: input shape %v, want %v", shape, want)
		}
	}
	return &request{ctx: ctx, x: x, id: id, enq: time.Now(), out: make(chan Result, 1)}, nil
}

// submit validates and enqueues one input, returning the channel its
// result will arrive on. It blocks while the queue is full, bailing out
// when ctx is done. Used by InferContext and by the HTTP front-ends
// (which submit a whole JSON body before collecting, so multi-input
// requests batch naturally).
func (s *Server) submit(ctx context.Context, x *tensor.Tensor, id string) (<-chan Result, error) {
	r, err := s.newRequest(ctx, x, id)
	if err != nil {
		return nil, err
	}
	s.submitMu.RLock()
	defer s.submitMu.RUnlock()
	if s.stopping.Load() || !s.started.Load() {
		return nil, ErrStopping
	}
	select {
	case s.reqs <- r:
		return r.out, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// trySubmit is the non-blocking submit the async job path uses: a full
// queue returns ErrQueueFull immediately instead of parking the caller.
func (s *Server) trySubmit(ctx context.Context, x *tensor.Tensor, id string) (<-chan Result, error) {
	r, err := s.newRequest(ctx, x, id)
	if err != nil {
		return nil, err
	}
	s.submitMu.RLock()
	defer s.submitMu.RUnlock()
	if s.stopping.Load() || !s.started.Load() {
		return nil, ErrStopping
	}
	select {
	case s.reqs <- r:
		return r.out, nil
	default:
		return nil, ErrQueueFull
	}
}

// Inject runs an adversary against the live model under whole-model write
// exclusion: no inference fetch, scan or recovery overlaps f. This is the
// attack-injection hook — hand it a closure that mounts a rowhammer
// profile or flips chosen bits, and the serving stack will detect and
// recover on the following fetches and scrub cycles.
func (s *Server) Inject(f func(m *quant.Model)) {
	s.guard.LockAll()
	f(s.model)
	s.guard.UnlockAll()
	s.met.injections.Inc()
}

// Protector exposes the protector (e.g. for stats).
func (s *Server) Protector() *core.Protector { return s.prot }

// Healthy reports whether the server is started and not stopping.
func (s *Server) Healthy() bool { return s.started.Load() && !s.stopping.Load() }
