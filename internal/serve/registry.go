package serve

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"radar/internal/adversary"
	"radar/internal/core"
	"radar/internal/qinfer"
	"radar/internal/quant"
)

// ErrUnknownModel is returned (wrapped, errors.Is-able) when a request
// names a model the registry does not host. The HTTP front-end maps it
// to 404.
var ErrUnknownModel = errors.New("serve: unknown model")

// ErrModelExists is returned by AddModel when the name is already hosted.
// The HTTP front-end maps it to 409.
var ErrModelExists = errors.New("serve: model already hosted")

// ErrLastModel is returned by RemoveModel when removing the name would
// leave the service empty — a service always hosts at least one model.
// The HTTP front-end maps it to 409.
var ErrLastModel = errors.New("serve: cannot remove the last hosted model")

// hostedModel is one registry entry: a name bound to an engine, the
// protector guarding its weight image, and the per-model serving runtime
// (batcher + scrubber + verifier + metrics).
type hostedModel struct {
	name string
	eng  *qinfer.Engine
	prot *core.Protector
	srv  *Server

	// rekeyMu serializes admin rekeys of this model: Rekey swaps the
	// protector's schemes and golden signatures wholesale, so two
	// concurrent rekeys must not interleave their scrub/swap phases.
	rekeyMu sync.Mutex
}

// Registry hosts the service's models. The model set is mutable at run
// time — AddModel/RemoveModel grow and shrink it under write exclusion
// while lookups take the read side — which is what lets a fleet router
// change a replica's hosted set without restarting the process. Per-model
// mutable state lives behind each model's own runtime.
type Registry struct {
	mu     sync.RWMutex
	byName map[string]*hostedModel
	order  []string // registration order; order[0] is the default model
	// reserved marks names with a hot-add in flight (reserve/release); the
	// HTTP admin plane holds a reservation across its ModelProvider call.
	reserved map[string]bool
}

// lookup resolves a model name; the empty name selects the default model
// (the first registered still hosted), the single-model deployment
// shorthand.
func (r *Registry) lookup(name string) (*hostedModel, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if name == "" {
		return r.byName[r.order[0]], nil
	}
	hm, ok := r.byName[name]
	if !ok {
		return nil, fmt.Errorf("%w %q", ErrUnknownModel, name)
	}
	return hm, nil
}

// add registers a new hosted model; the name must be free.
func (r *Registry) add(hm *hostedModel) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.byName[hm.name]; dup {
		return fmt.Errorf("%w: %q", ErrModelExists, hm.name)
	}
	r.byName[hm.name] = hm
	r.order = append(r.order, hm.name)
	return nil
}

// reserve marks name as having an add in flight, failing with
// ErrModelExists when it is already hosted or already reserved. The HTTP
// admin plane reserves the name BEFORE invoking the ModelProvider, so a
// provider with side effects — radar-serve rebinds the name's store
// checkpoint, unmapping whatever was bound to it before — never runs for
// a name that is currently serving, even under concurrent adds.
func (r *Registry) reserve(name string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.byName[name]; dup {
		return fmt.Errorf("%w: %q", ErrModelExists, name)
	}
	if r.reserved[name] {
		return fmt.Errorf("%w: %q (add in flight)", ErrModelExists, name)
	}
	if r.reserved == nil {
		r.reserved = make(map[string]bool)
	}
	r.reserved[name] = true
	return nil
}

// release frees a reservation taken with reserve. Safe to call after the
// add published the name: lookups go through byName, so the registration
// itself keeps blocking duplicates once the reservation is gone.
func (r *Registry) release(name string) {
	r.mu.Lock()
	delete(r.reserved, name)
	r.mu.Unlock()
}

// remove unregisters a hosted model and returns it so the caller can stop
// its runtime outside the registry lock. Removing the default model
// promotes the next-oldest registration; removing the last model is
// refused (the empty-name route must always resolve).
func (r *Registry) remove(name string) (*hostedModel, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	hm, ok := r.byName[name]
	if !ok {
		return nil, fmt.Errorf("%w %q", ErrUnknownModel, name)
	}
	if len(r.order) == 1 {
		return nil, fmt.Errorf("%w (%q)", ErrLastModel, name)
	}
	delete(r.byName, name)
	for i, n := range r.order {
		if n == name {
			r.order = append(r.order[:i], r.order[i+1:]...)
			break
		}
	}
	return hm, nil
}

// Names returns the hosted model names in registration order.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return append([]string(nil), r.order...)
}

// snapshot returns the hosted models in registration order. Long-running
// per-model work (scrubs, rekeys) iterates the snapshot without holding
// the registry lock, so hot add/remove is never blocked behind it; a
// model removed mid-iteration still finishes its cycle harmlessly.
func (r *Registry) snapshot() []*hostedModel {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]*hostedModel, 0, len(r.order))
	for _, n := range r.order {
		out = append(out, r.byName[n])
	}
	return out
}

// each runs f over the hosted models in registration order, or over just
// the named one; empty name means all (the admin endpoints' convention).
func (r *Registry) each(name string, f func(*hostedModel) error) error {
	if name != "" {
		hm, err := r.lookup(name)
		if err != nil {
			return err
		}
		return f(hm)
	}
	for _, hm := range r.snapshot() {
		if err := f(hm); err != nil {
			return err
		}
	}
	return nil
}

// ModelInfo is one model's identity, configuration and live metrics — an
// entry of GET /v1/models and of Service.Models.
type ModelInfo struct {
	Name          string `json:"name"`
	Layers        int    `json:"layers"`
	Groups        int    `json:"groups"`
	InputShape    []int  `json:"input_shape,omitempty"`
	VerifiedFetch bool   `json:"verified_fetch"`
	// Correcting reports whether this model's recovery consults per-group
	// ECC check words before falling back to zeroing.
	Correcting bool     `json:"correcting"`
	ScrubMs    int64    `json:"scrub_interval_ms"`
	Healthy    bool     `json:"healthy"`
	Metrics    Snapshot `json:"metrics"`
}

// info snapshots one hosted model.
func (hm *hostedModel) info() ModelInfo {
	return ModelInfo{
		Name:          hm.name,
		Layers:        len(hm.prot.Model.Layers),
		Groups:        hm.prot.NumGroups(),
		InputShape:    hm.srv.cfg.InputShape,
		VerifiedFetch: hm.srv.cfg.VerifiedFetch,
		Correcting:    hm.prot.Correcting(),
		ScrubMs:       hm.srv.cfg.ScrubInterval.Milliseconds(),
		Healthy:       hm.srv.Healthy(),
		Metrics:       hm.srv.Snapshot(),
	}
}

// scrub runs one scrub cycle on this model (see Server.Scrub).
func (hm *hostedModel) scrub(full bool) AdminReport {
	flagged, zeroed := hm.srv.Scrub(full)
	return AdminReport{Model: hm.name, Flagged: len(flagged), Zeroed: zeroed}
}

// rekey rotates this model's protection secrets live: a full
// detect-and-recover sweep first (so live corruption is repaired, not
// laundered into the new golden signatures), then — under the layer
// guard's whole-model write exclusion, so no scan or fetch observes a
// half-swapped scheme set — fresh per-layer keys and offsets are drawn
// and every golden signature is recomputed via the protector's sharded
// RefreshAll. Because the first sweep releases its locks before LockAll
// is acquired, a final DetectAndRecoverExclusive runs inside the
// exclusive section to repair anything that landed in between; only then
// are the new goldens derived. Inference stalls only for the exclusive
// section; the verified-fetch epoch cache stays valid because the
// (recovered) weights are what the new golden values are computed from.
func (hm *hostedModel) rekey() AdminReport {
	hm.rekeyMu.Lock()
	defer hm.rekeyMu.Unlock()
	flagged, zeroed := hm.srv.Scrub(true)
	sch := hm.prot.Schemes[0]
	cfg := core.Config{
		G:          sch.G,
		Interleave: sch.Interleave,
		SigBits:    sch.SigBits,
		Seed:       rekeySeed(),
	}
	hm.srv.guard.LockAll()
	lateFlagged, lateZeroed := hm.prot.DetectAndRecoverExclusive()
	hm.prot.Rekey(cfg)
	hm.srv.guard.UnlockAll()
	hm.srv.met.rekeys.Inc()
	return AdminReport{
		Model:   hm.name,
		Flagged: len(flagged) + len(lateFlagged),
		Zeroed:  zeroed + lateZeroed,
		Rekeyed: true,
	}
}

// rekeySeed draws a fresh secret seed for a live rekey. Entropy quality
// is not load-bearing here (the scheme's threat model is bit-flips, not
// key recovery from ciphertext), but successive rekeys must not repeat.
func rekeySeed() int64 {
	return time.Now().UnixNano() ^ rand.Int63()
}

// inject runs an adversary against this model under write exclusion.
func (hm *hostedModel) inject(f func(*quant.Model)) { hm.srv.Inject(f) }

// injectAdversary plans one volley of the named adversary against this
// model and mounts it under whole-model write exclusion — the live-attack
// hook behind POST /v1/admin/inject. The volley is planned outside the
// exclusive section (planning only reads geometry) and mounted inside it.
func (hm *hostedModel) injectAdversary(name string, flips int, seed int64) (InjectReport, error) {
	tgt := adversary.Target{Model: hm.prot.Model, Prot: hm.prot}
	v, err := adversary.PlanVolley(tgt, name, flips, seed)
	if err != nil {
		return InjectReport{}, err
	}
	hm.srv.Inject(func(*quant.Model) { adversary.Mount(tgt, v) })
	hm.srv.met.advFlips.Add(int64(v.Size()))
	return InjectReport{
		Model:       hm.name,
		Adversary:   name,
		WeightFlips: len(v.Weights),
		SigFlips:    len(v.Signatures),
	}, nil
}

// InjectReport is one model's answer to an adversary injection.
type InjectReport struct {
	Model     string `json:"model"`
	Adversary string `json:"adversary"`
	// WeightFlips / SigFlips count the mounted weight-bit and
	// golden-signature-bit flips.
	WeightFlips int `json:"weight_flips"`
	SigFlips    int `json:"sig_flips,omitempty"`
}

// AdminReport is one model's answer to an admin scrub or rekey.
type AdminReport struct {
	Model string `json:"model"`
	// Flagged / Zeroed report what the (pre-rekey) scrub cycle found.
	Flagged int `json:"flagged"`
	Zeroed  int `json:"zeroed"`
	// Rekeyed is true when the model's secrets were rotated.
	Rekeyed bool `json:"rekeyed,omitempty"`
}
