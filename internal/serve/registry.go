package serve

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"radar/internal/core"
	"radar/internal/qinfer"
	"radar/internal/quant"
)

// ErrUnknownModel is returned (wrapped, errors.Is-able) when a request
// names a model the registry does not host. The HTTP front-end maps it
// to 404.
var ErrUnknownModel = errors.New("serve: unknown model")

// hostedModel is one registry entry: a name bound to an engine, the
// protector guarding its weight image, and the per-model serving runtime
// (batcher + scrubber + verifier + metrics).
type hostedModel struct {
	name string
	eng  *qinfer.Engine
	prot *core.Protector
	srv  *Server

	// rekeyMu serializes admin rekeys of this model: Rekey swaps the
	// protector's schemes and golden signatures wholesale, so two
	// concurrent rekeys must not interleave their scrub/swap phases.
	rekeyMu sync.Mutex
}

// Registry hosts the service's models. It is immutable after Open (the
// model set is fixed for the process lifetime), so lookups are lock-free;
// per-model mutable state lives behind each model's own runtime.
type Registry struct {
	byName map[string]*hostedModel
	order  []string // registration order; order[0] is the default model
}

// lookup resolves a model name; the empty name selects the default model
// (the first registered), which is what the deprecated pre-v1 routes and
// single-model deployments use.
func (r *Registry) lookup(name string) (*hostedModel, error) {
	if name == "" {
		return r.byName[r.order[0]], nil
	}
	hm, ok := r.byName[name]
	if !ok {
		return nil, fmt.Errorf("%w %q", ErrUnknownModel, name)
	}
	return hm, nil
}

// Names returns the hosted model names in registration order.
func (r *Registry) Names() []string {
	return append([]string(nil), r.order...)
}

// each runs f over the hosted models in registration order, or over just
// the named one; empty name means all (the admin endpoints' convention).
func (r *Registry) each(name string, f func(*hostedModel) error) error {
	if name != "" {
		hm, err := r.lookup(name)
		if err != nil {
			return err
		}
		return f(hm)
	}
	for _, n := range r.order {
		if err := f(r.byName[n]); err != nil {
			return err
		}
	}
	return nil
}

// ModelInfo is one model's identity, configuration and live metrics — an
// entry of GET /v1/models and of Service.Models.
type ModelInfo struct {
	Name          string   `json:"name"`
	Layers        int      `json:"layers"`
	Groups        int      `json:"groups"`
	InputShape    []int    `json:"input_shape,omitempty"`
	VerifiedFetch bool     `json:"verified_fetch"`
	ScrubMs       int64    `json:"scrub_interval_ms"`
	Healthy       bool     `json:"healthy"`
	Metrics       Snapshot `json:"metrics"`
}

// info snapshots one hosted model.
func (hm *hostedModel) info() ModelInfo {
	return ModelInfo{
		Name:          hm.name,
		Layers:        len(hm.prot.Model.Layers),
		Groups:        hm.prot.NumGroups(),
		InputShape:    hm.srv.cfg.InputShape,
		VerifiedFetch: hm.srv.cfg.VerifiedFetch,
		ScrubMs:       hm.srv.cfg.ScrubInterval.Milliseconds(),
		Healthy:       hm.srv.Healthy(),
		Metrics:       hm.srv.Snapshot(),
	}
}

// scrub runs one scrub cycle on this model (see Server.Scrub).
func (hm *hostedModel) scrub(full bool) AdminReport {
	flagged, zeroed := hm.srv.Scrub(full)
	return AdminReport{Model: hm.name, Flagged: len(flagged), Zeroed: zeroed}
}

// rekey rotates this model's protection secrets live: a full
// detect-and-recover sweep first (so live corruption is repaired, not
// laundered into the new golden signatures), then — under the layer
// guard's whole-model write exclusion, so no scan or fetch observes a
// half-swapped scheme set — fresh per-layer keys and offsets are drawn
// and every golden signature is recomputed via the protector's sharded
// RefreshAll. Because the first sweep releases its locks before LockAll
// is acquired, a final DetectAndRecoverExclusive runs inside the
// exclusive section to repair anything that landed in between; only then
// are the new goldens derived. Inference stalls only for the exclusive
// section; the verified-fetch epoch cache stays valid because the
// (recovered) weights are what the new golden values are computed from.
func (hm *hostedModel) rekey() AdminReport {
	hm.rekeyMu.Lock()
	defer hm.rekeyMu.Unlock()
	flagged, zeroed := hm.srv.Scrub(true)
	sch := hm.prot.Schemes[0]
	cfg := core.Config{
		G:          sch.G,
		Interleave: sch.Interleave,
		SigBits:    sch.SigBits,
		Seed:       rekeySeed(),
	}
	hm.srv.guard.LockAll()
	lateFlagged, lateZeroed := hm.prot.DetectAndRecoverExclusive()
	hm.prot.Rekey(cfg)
	hm.srv.guard.UnlockAll()
	hm.srv.met.rekeys.Add(1)
	return AdminReport{
		Model:   hm.name,
		Flagged: len(flagged) + len(lateFlagged),
		Zeroed:  zeroed + lateZeroed,
		Rekeyed: true,
	}
}

// rekeySeed draws a fresh secret seed for a live rekey. Entropy quality
// is not load-bearing here (the scheme's threat model is bit-flips, not
// key recovery from ciphertext), but successive rekeys must not repeat.
func rekeySeed() int64 {
	return time.Now().UnixNano() ^ rand.Int63()
}

// inject runs an adversary against this model under write exclusion.
func (hm *hostedModel) inject(f func(*quant.Model)) { hm.srv.Inject(f) }

// AdminReport is one model's answer to an admin scrub or rekey.
type AdminReport struct {
	Model string `json:"model"`
	// Flagged / Zeroed report what the (pre-rekey) scrub cycle found.
	Flagged int `json:"flagged"`
	Zeroed  int `json:"zeroed"`
	// Rekeyed is true when the model's secrets were rotated.
	Rekeyed bool `json:"rekeyed,omitempty"`
}
