package serve

import (
	"context"
	crand "crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// ErrUnknownJob is returned when a job ID is not in the table — never
// submitted, cancelled and reaped, or expired past the retention TTL.
var ErrUnknownJob = errors.New("serve: unknown job")

// ErrJobsFull is returned by Submit when the bounded job table is at
// capacity even after reaping expired entries. The HTTP front-end maps it
// to 429.
var ErrJobsFull = errors.New("serve: job table full")

// ErrJobCancelled is returned by Wait for a job whose submission context
// was cancelled before its result was computed.
var ErrJobCancelled = errors.New("serve: job cancelled")

// JobID identifies one async inference job for Poll/Wait and the
// /v1/jobs/{id} route.
type JobID string

// JobState is a job's lifecycle position.
type JobState string

const (
	// JobPending: submitted, waiting in (or moving through) the batch queue.
	JobPending JobState = "pending"
	// JobDone: the result is available via Poll or Wait.
	JobDone JobState = "done"
	// JobCancelled: the submission context was cancelled — or the job was
	// cancelled via Cancel / DELETE /v1/jobs/{id} — before completion; the
	// job is reaped from the table right after entering this state.
	JobCancelled JobState = "cancelled"
)

// JobStatus is a point-in-time view of one job (the Poll answer and the
// GET /v1/jobs/{id} body). Result is set only in state "done".
type JobStatus struct {
	ID     JobID    `json:"id"`
	Model  string   `json:"model"`
	State  JobState `json:"state"`
	Result *Result  `json:"result,omitempty"`
	// AgeMs is milliseconds since submission.
	AgeMs int64 `json:"age_ms"`
}

// job is one table entry. Mutable fields are guarded by the table mutex;
// done is closed exactly once on completion or cancellation (via finish).
type job struct {
	id      JobID
	model   string
	created time.Time
	done    chan struct{}
	// cancel tears down the job's own context layer: dropping its queued
	// work and waking its watcher. Set at creation, never mutated after.
	cancel context.CancelFunc

	state    JobState
	res      Result
	finished time.Time
}

// jobTable is the bounded async-job store. Submission reserves a slot (so
// capacity is enforced before any work is queued), completion keeps the
// entry around for ttl so clients can poll the result, and cancelled jobs
// are removed immediately. Expired entries are reaped lazily on every
// create and on any poll that touches them — no background sweeper
// goroutine is needed.
type jobTable struct {
	mu       sync.Mutex
	cap      int
	ttl      time.Duration
	seq      uint64
	instance string // random per-table tag making IDs unique across replicas
	jobs     map[JobID]*job

	submitted int64 // lifetime jobs accepted
	cancelled int64 // lifetime jobs cancelled before completion
}

func newJobTable(capacity int, ttl time.Duration) *jobTable {
	// Job IDs carry a per-instance tag so IDs minted by different replicas
	// of the same deployment never collide — a fleet router keys its
	// sticky job→replica map on the raw ID. The tag is 64 crypto-random
	// bits: seq counters all start at 1, so a tag collision between two
	// replicas would make their IDs collide systematically, and the ID is
	// opaque to clients so the extra width costs nothing.
	return &jobTable{
		cap:      capacity,
		ttl:      ttl,
		instance: newInstanceTag(),
		jobs:     make(map[JobID]*job),
	}
}

// newInstanceTag draws the 16-hex-digit per-table tag from crypto/rand,
// falling back to math/rand only if the entropy source is unreadable.
func newInstanceTag() string {
	var b [8]byte
	if _, err := crand.Read(b[:]); err != nil {
		return fmt.Sprintf("%016x", rand.Uint64())
	}
	return fmt.Sprintf("%016x", binary.BigEndian.Uint64(b[:]))
}

// create reserves a slot for a new pending job, reaping expired finished
// entries first; a table still at capacity returns ErrJobsFull.
func (t *jobTable) create(model string, cancel context.CancelFunc) (*job, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.jobs) >= t.cap {
		t.reapLocked(time.Now())
	}
	if len(t.jobs) >= t.cap {
		return nil, fmt.Errorf("%w (%d jobs)", ErrJobsFull, len(t.jobs))
	}
	t.seq++
	j := &job{
		id:      JobID(fmt.Sprintf("job-%s-%08x", t.instance, t.seq)),
		model:   model,
		created: time.Now(),
		done:    make(chan struct{}),
		cancel:  cancel,
		state:   JobPending,
	}
	t.jobs[j.id] = j
	t.submitted++
	return j, nil
}

// reapLocked deletes finished jobs older than the retention TTL.
func (t *jobTable) reapLocked(now time.Time) {
	for id, j := range t.jobs {
		if j.state == JobDone && now.Sub(j.finished) > t.ttl {
			delete(t.jobs, id)
		}
	}
}

// abort drops a job whose submission failed after the slot was reserved
// and undoes its accounting — a rejected submission (full queue, server
// stopping) never counts as an accepted job.
func (t *jobTable) abort(id JobID) {
	t.mu.Lock()
	if _, ok := t.jobs[id]; ok {
		delete(t.jobs, id)
		t.submitted--
	}
	t.mu.Unlock()
}

// finish moves a pending job into a terminal state, closing done exactly
// once. It returns false when the job already finished — the loser of a
// completion/cancellation race must not touch the entry again. Cancelled
// jobs are reaped immediately; done jobs stay for the retention TTL.
func (t *jobTable) finish(j *job, state JobState, res *Result) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	if j.state != JobPending {
		return false
	}
	j.state = state
	j.finished = time.Now()
	if res != nil {
		j.res = *res
	}
	if state == JobCancelled {
		delete(t.jobs, j.id)
		t.cancelled++
	}
	close(j.done)
	return true
}

// watch runs on its own goroutine per in-flight job: it completes the job
// when the batch workers answer, or cancels and reaps it when the job
// context is done first (submission context cancelled, or an explicit
// Cancel tearing down the job's own context layer). Because results
// arrive on a buffered channel, a late answer to a cancelled job is
// simply dropped; finish resolves the race so done closes exactly once.
// The job's cancel func is released on exit either way.
func (t *jobTable) watch(j *job, ctx context.Context, ch <-chan Result) {
	defer j.cancel()
	select {
	case res := <-ch:
		t.finish(j, JobDone, &res)
	case <-ctx.Done():
		t.finish(j, JobCancelled, nil)
	}
}

// cancel implements DELETE /v1/jobs/{id}: a pending job's context layer is
// torn down (dropping its queued work and waking its watcher) and the
// entry reaped; a finished job is simply removed from the table. Either
// way the returned status is the job's final state, and the ID is unknown
// from then on.
func (t *jobTable) cancel(id JobID) (JobStatus, error) {
	j, err := t.get(id)
	if err != nil {
		return JobStatus{}, err
	}
	j.cancel()
	if !t.finish(j, JobCancelled, nil) {
		// Already done: DELETE still removes the resource.
		t.mu.Lock()
		delete(t.jobs, id)
		t.mu.Unlock()
	}
	return t.status(j), nil
}

// get returns the live table entry (expired entries are reaped on touch).
func (t *jobTable) get(id JobID) (*job, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	j, ok := t.jobs[id]
	if !ok {
		return nil, fmt.Errorf("%w %q", ErrUnknownJob, id)
	}
	if j.state == JobDone && time.Since(j.finished) > t.ttl {
		delete(t.jobs, id)
		return nil, fmt.Errorf("%w %q (expired)", ErrUnknownJob, id)
	}
	return j, nil
}

// status snapshots a job under the table lock.
func (t *jobTable) status(j *job) JobStatus {
	t.mu.Lock()
	defer t.mu.Unlock()
	st := JobStatus{
		ID:    j.id,
		Model: j.model,
		State: j.state,
		AgeMs: time.Since(j.created).Milliseconds(),
	}
	if j.state == JobDone {
		res := j.res
		st.Result = &res
	}
	return st
}

// active reports how many jobs the table currently holds.
func (t *jobTable) active() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.jobs)
}

// stats returns (active, lifetime-submitted).
func (t *jobTable) stats() (int, int64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.jobs), t.submitted
}

// cancelledCount returns the lifetime count of jobs cancelled before
// completion (the radar_jobs_cancelled_total series).
func (t *jobTable) cancelledCount() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.cancelled
}
