package serve

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"radar/internal/core"
	"radar/internal/model"
	"radar/internal/qinfer"
	"radar/internal/quant"
	"radar/internal/tensor"
)

// infer is the test shorthand for a background-context InferContext.
func infer(srv *Server, x *tensor.Tensor) (Result, error) {
	return srv.InferContext(context.Background(), x)
}

// newTinyServer boots a server on the tiny test model. Each call builds an
// independent bundle, so tests may corrupt weights freely.
func newTinyServer(t testing.TB, cfg Config) (*model.Bundle, *Server) {
	t.Helper()
	b := model.Load(model.TinySpec())
	calib, _ := b.Attack.Batch(0, 64)
	eng, err := qinfer.Compile(b.Net, b.QModel, calib)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	prot := core.Protect(b.QModel, core.DefaultConfig(4))
	cfg.InputShape = []int{b.Spec.Data.Channels, b.Spec.Data.Size, b.Spec.Data.Size}
	srv := newServer(eng, prot, cfg)
	srv.Start()
	t.Cleanup(srv.Stop)
	return b, srv
}

// sample extracts input i of a dataset batch as a standalone (C,H,W) tensor.
func sample(x *tensor.Tensor, i int) *tensor.Tensor {
	shape := x.Shape[1:]
	vol := tensor.Volume(shape)
	out := tensor.New(shape...)
	copy(out.Data, x.Data[i*vol:(i+1)*vol])
	return out
}

func TestServeMatchesDirectEngine(t *testing.T) {
	b := model.Load(model.TinySpec())
	calib, _ := b.Attack.Batch(0, 64)
	eng, err := qinfer.Compile(b.Net, b.QModel, calib)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	// Reference answers before the engine is handed to the server.
	x, _ := b.Test.Batch(0, 16)
	ref := eng.Forward(x)
	k := ref.Shape[1]

	prot := core.Protect(b.QModel, core.DefaultConfig(4))
	srv := newServer(eng, prot, DefaultConfig())
	srv.Start()
	defer srv.Stop()

	var wg sync.WaitGroup
	results := make([]Result, 16)
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := infer(srv, sample(x, i))
			if err != nil {
				t.Errorf("Infer %d: %v", i, err)
				return
			}
			results[i] = res
		}(i)
	}
	wg.Wait()
	for i, res := range results {
		if want := ref.Argmax(i*k, k); res.Class != want {
			t.Fatalf("input %d: served class %d, direct engine %d", i, res.Class, want)
		}
		for j, v := range res.Logits {
			if v != ref.Data[i*k+j] {
				t.Fatalf("input %d logit %d: served %v, direct %v", i, j, v, ref.Data[i*k+j])
			}
		}
	}
	snap := srv.Snapshot()
	if snap.Requests != 16 {
		t.Fatalf("snapshot counted %d requests, want 16", snap.Requests)
	}
	if snap.Batches >= 16 {
		t.Fatalf("no batching happened: %d batches for 16 concurrent requests", snap.Batches)
	}
}

func TestServeRejectsBadShape(t *testing.T) {
	_, srv := newTinyServer(t, DefaultConfig())
	if _, err := infer(srv, tensor.New(1, 2, 3)); err == nil {
		t.Fatal("mismatched input shape accepted")
	}
	if _, err := infer(srv, tensor.New(5)); err == nil {
		t.Fatal("rank-1 input accepted")
	}
}

func TestGracefulShutdown(t *testing.T) {
	b, srv := newTinyServer(t, DefaultConfig())
	x, _ := b.Test.Batch(0, 8)
	var wg sync.WaitGroup
	errs := make([]error, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = infer(srv, sample(x, i))
		}(i)
	}
	wg.Wait()
	srv.Stop()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("pre-stop request %d failed: %v", i, err)
		}
	}
	if _, err := infer(srv, sample(x, 0)); !errors.Is(err, ErrStopping) {
		t.Fatalf("post-stop Infer returned %v, want ErrStopping", err)
	}
	srv.Stop() // idempotent
}

// TestVerifiedFetchEpochCache: repeated inference on a clean model must be
// served from the epoch cache; a write invalidates exactly the written
// layer and the fetch path catches and repairs the corruption.
func TestVerifiedFetchEpochCache(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ScrubInterval = 0 // isolate the fetch path
	b, srv := newTinyServer(t, cfg)
	x, _ := b.Test.Batch(0, 4)

	if _, err := infer(srv, sample(x, 0)); err != nil {
		t.Fatal(err)
	}
	warm := srv.Snapshot()
	if warm.VerifyScans == 0 {
		t.Fatal("first inference did not verify any layer")
	}
	if _, err := infer(srv, sample(x, 1)); err != nil {
		t.Fatal(err)
	}
	after := srv.Snapshot()
	if after.VerifyScans != warm.VerifyScans {
		t.Fatalf("clean re-inference rescanned layers: %d -> %d scans",
			warm.VerifyScans, after.VerifyScans)
	}
	if after.VerifyHits <= warm.VerifyHits {
		t.Fatal("clean re-inference did not hit the epoch cache")
	}

	// Flip an MSB in layer 0 through the injection hook: the next fetch of
	// layer 0 must rescan, flag and zero it before the conv runs.
	srv.Inject(func(m *quant.Model) {
		m.FlipBit(quant.BitAddress{LayerIndex: 0, WeightIndex: 3, Bit: quant.MSB})
	})
	if _, err := infer(srv, sample(x, 2)); err != nil {
		t.Fatal(err)
	}
	hit := srv.Snapshot()
	if hit.VerifyScans != after.VerifyScans+1 {
		t.Fatalf("flip invalidated %d layers, want exactly 1", hit.VerifyScans-after.VerifyScans)
	}
	if hit.VerifyFlagged == 0 || hit.VerifyZeroed == 0 {
		t.Fatalf("fetch path missed the flip: %+v", hit)
	}
	// Verified state is cached again.
	if _, err := infer(srv, sample(x, 3)); err != nil {
		t.Fatal(err)
	}
	if end := srv.Snapshot(); end.VerifyScans != hit.VerifyScans {
		t.Fatal("repaired layer was rescanned on the next request")
	}
}

// TestScrubberRepairsBypassingWrites: corruption written directly to
// Layer.Q (bypassing the model API, like a true hardware flip) is invisible
// to dirty tracking and the epoch cache, but the periodic full scrub cycle
// catches it.
func TestScrubberRepairsBypassingWrites(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ScrubInterval = 0 // drive cycles by hand for determinism
	b, srv := newTinyServer(t, cfg)

	l := b.QModel.Layers[1]
	srv.Inject(func(m *quant.Model) {
		l.Q[7] = quant.FlipBit(l.Q[7], quant.MSB) // direct write, no notify
	})
	if flagged, _ := srv.Scrub(false); len(flagged) != 0 {
		t.Fatalf("incremental scrub saw a bypassing write: %v", flagged)
	}
	flagged, zeroed := srv.Scrub(true)
	if len(flagged) == 0 || zeroed == 0 {
		t.Fatal("full scrub missed direct corruption")
	}
	if flagged[0].Layer != 1 {
		t.Fatalf("flagged layer %d, want 1", flagged[0].Layer)
	}
	snap := srv.Snapshot()
	if snap.ScrubCycles != 2 || snap.ScrubFlagged == 0 || snap.ScrubZeroed == 0 {
		t.Fatalf("scrub metrics wrong: %+v", snap)
	}
}

// TestBatchWindowFlush: a single request must not wait forever for a full
// batch — the MaxLatency timer flushes it.
func TestBatchWindowFlush(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxBatch = 64
	cfg.MaxLatency = 5 * time.Millisecond
	b, srv := newTinyServer(t, cfg)
	x, _ := b.Test.Batch(0, 1)
	done := make(chan struct{})
	go func() {
		defer close(done)
		if _, err := infer(srv, sample(x, 0)); err != nil {
			t.Errorf("Infer: %v", err)
		}
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("lone request never flushed")
	}
}
