package serve

import (
	"sync"
	"testing"
	"time"

	"radar/internal/attack"
	"radar/internal/core"
	"radar/internal/model"
	"radar/internal/qinfer"
	"radar/internal/quant"
	"radar/internal/rowhammer"
)

// TestEndToEndResilience boots the server on the ResNet-20 substitute
// (testdata/models/resnet20s.gob), takes a clean-baseline answer set,
// mounts PBFA-style MSB flips through the rowhammer simulator mid-traffic,
// and asserts that (a) the flipped groups were flagged and recovered
// without stopping traffic, and (b) post-attack answers match the
// clean-model baseline (recovery zeroes only the few corrupted groups, so
// predictions must agree on nearly every probe).
func TestEndToEndResilience(t *testing.T) {
	b := model.Load(model.ResNet20sSpec())
	calib, _ := b.Attack.Batch(0, 64)
	eng, err := qinfer.Compile(b.Net, b.QModel, calib)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	// The paper's ResNet-20 deployment point: G=8.
	prot := core.Protect(b.QModel, core.DefaultConfig(8))

	cfg := DefaultConfig()
	cfg.ScrubInterval = 2 * time.Millisecond
	cfg.ScrubFullEvery = 4
	cfg.InputShape = []int{b.Spec.Data.Channels, b.Spec.Data.Size, b.Spec.Data.Size}
	srv := newServer(eng, prot, cfg)
	srv.Start()
	defer srv.Stop()

	const probes = 40
	x, _ := b.Test.Batch(0, probes)
	baseline := make([]int, probes)
	for i := 0; i < probes; i++ {
		res, err := infer(srv, sample(x, i))
		if err != nil {
			t.Fatal(err)
		}
		baseline[i] = res.Class
	}

	// Mid-traffic attack: PBFA-style MSB flips mounted through the DRAM
	// simulator while client goroutines keep the server busy.
	atk := model.Load(model.ResNet20sSpec())
	addrs := attack.RandomMSB(atk.QModel, 12, 99).Addresses()
	dram := rowhammer.New(b.QModel, rowhammer.DefaultGeometry(), 7)

	stop := make(chan struct{})
	var traffic sync.WaitGroup
	for c := 0; c < 3; c++ {
		traffic.Add(1)
		go func(c int) {
			defer traffic.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := infer(srv, sample(x, (c*13+i)%probes)); err != nil {
					t.Errorf("traffic: %v", err)
					return
				}
			}
		}(c)
	}

	srv.Inject(func(m *quant.Model) {
		if mounted := dram.MountProfile(addrs); mounted != len(addrs) {
			t.Errorf("mounted %d/%d flips", mounted, len(addrs))
		}
	})

	// Let traffic + scrubber + verified fetch chew on the corruption.
	time.Sleep(50 * time.Millisecond)
	close(stop)
	traffic.Wait()

	// Quiesce: one final sweep must find nothing left to repair.
	if flagged, _ := prot.DetectAndRecover(); len(flagged) != 0 {
		t.Fatalf("corruption survived serving + scrubbing: %v", flagged)
	}
	st := prot.Stats()
	if st.GroupsFlagged == 0 || st.GroupsRecovered == 0 || st.WeightsZeroed == 0 {
		t.Fatalf("attack was never detected/recovered: %+v", st)
	}

	// Detection coverage: every mounted MSB flip lies in a group that was
	// eventually flagged and recovered (MSB flips always flip signature
	// S_B, so a scan of the corrupt state cannot miss them — they can only
	// be caught by fetch-verify or scrubber, both of which recover).
	agree := 0
	for i := 0; i < probes; i++ {
		res, err := infer(srv, sample(x, i))
		if err != nil {
			t.Fatal(err)
		}
		if res.Class == baseline[i] {
			agree++
		}
	}
	// Recovery zeroes ~12 groups of 8 weights out of ~70k — predictions
	// must be essentially unchanged. Require 90% agreement to keep the
	// test robust across seeds.
	if agree < probes*9/10 {
		t.Fatalf("post-recovery answers agree on %d/%d probes", agree, probes)
	}
	snap := srv.Snapshot()
	if snap.ScrubCycles == 0 {
		t.Fatal("scrubber never ran")
	}
	t.Logf("resilience: %d/%d probes agree post-attack; stats %+v; snapshot %+v",
		agree, probes, st, snap)
}
