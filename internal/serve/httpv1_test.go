package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"radar/internal/core"
	"radar/internal/model"
	"radar/internal/qinfer"
	"radar/internal/quant"
	"radar/internal/tensor"
)

// tinyBody builds a valid single-input body for the tiny spec's (3,8,8).
func tinyBody(t testing.TB, x *tensor.Tensor) string {
	t.Helper()
	b, err := json.Marshal(InferRequest{Input: x.Data})
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestHTTPV1Routes is the table-driven status contract of the v1 surface:
// unknown model → 404, malformed tensor/body → 400, wrong method → 405.
func TestHTTPV1Routes(t *testing.T) {
	svc, b, _ := openTiny(t, 2, []ModelOption{WithScrub(0, 0)})
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()
	x, _ := b[0].Test.Batch(0, 1)
	good := tinyBody(t, sample(x, 0))

	cases := []struct {
		name   string
		method string
		path   string
		body   string
		want   int
	}{
		{"sync infer ok", "POST", "/v1/models/m0/infer", good, 200},
		{"second model ok", "POST", "/v1/models/m1/infer", good, 200},
		{"bad model name", "POST", "/v1/models/nope/infer", good, 404},
		{"bad model job", "POST", "/v1/models/nope/jobs", good, 404},
		{"malformed JSON", "POST", "/v1/models/m0/infer", `{"input":[`, 400},
		{"malformed tensor", "POST", "/v1/models/m0/infer", `{"input":[1,2,3]}`, 400},
		{"no inputs", "POST", "/v1/models/m0/infer", `{}`, 400},
		{"bad shape", "POST", "/v1/models/m0/infer", `{"input":[1,2],"shape":[2]}`, 400},
		{"multi-input job", "POST", "/v1/models/m0/jobs", fmt.Sprintf(`{"inputs":[%s,%s]}`, "[0.1]", "[0.2]"), 400},
		{"unknown job", "GET", "/v1/jobs/job-ffffffff", "", 404},
		{"models list", "GET", "/v1/models", "", 200},
		{"model info", "GET", "/v1/models/m1", "", 200},
		{"model info 404", "GET", "/v1/models/zzz", "", 404},
		{"infer is POST-only", "GET", "/v1/models/m0/infer", "", 405},
		{"jobs is POST-only", "GET", "/v1/models/m0/jobs", "", 405},
		{"admin scrub bad JSON", "POST", "/v1/admin/scrub", `{`, 400},
		{"admin scrub unknown model", "POST", "/v1/admin/scrub", `{"model":"zzz"}`, 404},
		{"admin rekey unknown model", "POST", "/v1/admin/rekey", `{"model":"zzz"}`, 404},
		{"admin scrub is POST-only", "GET", "/v1/admin/scrub", "", 405},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			req, err := http.NewRequest(tc.method, ts.URL+tc.path, strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != tc.want {
				t.Fatalf("%s %s → %d, want %d", tc.method, tc.path, resp.StatusCode, tc.want)
			}
		})
	}
}

// TestHTTPJobRoundTrip drives the async wire protocol: 202 + job ref on
// submit, pollable status, and the result embedded once state is "done".
func TestHTTPJobRoundTrip(t *testing.T) {
	svc, b, _ := openTiny(t, 1, []ModelOption{WithScrub(0, 0)})
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()
	x, _ := b[0].Test.Batch(0, 1)

	resp, err := http.Post(ts.URL+"/v1/models/m0/jobs", "application/json",
		strings.NewReader(tinyBody(t, sample(x, 0))))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("job submit status %d, want 202", resp.StatusCode)
	}
	var ref JobRef
	if err := json.NewDecoder(resp.Body).Decode(&ref); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if ref.ID == "" || ref.Model != "m0" || ref.Location != "/v1/jobs/"+string(ref.ID) {
		t.Fatalf("job ref: %+v", ref)
	}

	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := http.Get(ts.URL + ref.Location)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("poll status %d", resp.StatusCode)
		}
		var st JobStatus
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if st.State == JobDone {
			if st.Result == nil || len(st.Result.Logits) == 0 {
				t.Fatalf("done job carries no result: %+v", st)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job never completed: %+v", st)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestHTTPQueueAndTableSaturation: a wedged model with a capacity-1 job
// table answers the first job with 202 and the second with 429 +
// Retry-After — the connection is never parked.
func TestHTTPQueueAndTableSaturation(t *testing.T) {
	svc, b, _ := openTiny(t, 1,
		[]ModelOption{WithScrub(0, 0)},
		WithJobCapacity(1))
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()
	x, _ := b[0].Test.Batch(0, 1)
	body := tinyBody(t, sample(x, 0))
	release := wedge(t, svc, "m0")
	defer release()

	resp, err := http.Post(ts.URL+"/v1/models/m0/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first job status %d, want 202", resp.StatusCode)
	}
	resp, err = http.Post(ts.URL+"/v1/models/m0/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-capacity job status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	release()
}

// TestHTTPStopping: after Close, submissions answer 503 with Retry-After.
func TestHTTPStopping(t *testing.T) {
	svc, b, _ := openTiny(t, 1, []ModelOption{WithScrub(0, 0)})
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()
	x, _ := b[0].Test.Batch(0, 1)
	body := tinyBody(t, sample(x, 0))
	svc.Close()

	for _, path := range []string{"/v1/models/m0/infer", "/v1/models/m0/jobs"} {
		resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("POST %s on stopped service → %d, want 503", path, resp.StatusCode)
		}
		if resp.Header.Get("Retry-After") == "" {
			t.Fatalf("POST %s: 503 without Retry-After", path)
		}
	}
}

// TestHTTPModelsAndAdmin exercises the control plane end to end: the
// models listing carries per-model metrics and job-table stats, admin
// scrub reports per-model findings, and admin rekey answers with
// rekeyed=true while the model keeps serving.
func TestHTTPModelsAndAdmin(t *testing.T) {
	svc, b, _ := openTiny(t, 2, []ModelOption{WithScrub(0, 0), WithVerifiedFetch(false)})
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()
	x, _ := b[0].Test.Batch(0, 1)
	body := tinyBody(t, sample(x, 0))

	if resp, err := http.Post(ts.URL+"/v1/models/m0/infer", "application/json", strings.NewReader(body)); err != nil || resp.StatusCode != 200 {
		t.Fatalf("warmup infer: %v %v", err, resp.StatusCode)
	} else {
		resp.Body.Close()
	}

	resp, err := http.Get(ts.URL + "/v1/models")
	if err != nil {
		t.Fatal(err)
	}
	var models ModelsResponse
	if err := json.NewDecoder(resp.Body).Decode(&models); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(models.Models) != 2 || models.Models[0].Name != "m0" || models.Models[1].Name != "m1" {
		t.Fatalf("models listing: %+v", models)
	}
	if models.Models[0].Metrics.Requests != 1 || models.Models[1].Metrics.Requests != 0 {
		t.Fatalf("per-model request accounting leaked: %+v", models)
	}
	if models.Jobs.Capacity != DefaultJobCapacity {
		t.Fatalf("job stats: %+v", models.Jobs)
	}

	// Corrupt m1 directly (bypassing the model API) and scrub everything.
	l := b[1].QModel.Layers[0]
	if err := svc.Inject("m1", func(m *quant.Model) {
		l.Q[3] = quant.FlipBit(l.Q[3], quant.MSB)
	}); err != nil {
		t.Fatal(err)
	}
	resp, err = http.Post(ts.URL+"/v1/admin/scrub", "application/json",
		strings.NewReader(`{"full":true}`))
	if err != nil {
		t.Fatal(err)
	}
	var admin adminResponse
	if err := json.NewDecoder(resp.Body).Decode(&admin); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(admin.Results) != 2 || admin.Results[0].Flagged != 0 || admin.Results[1].Flagged == 0 {
		t.Fatalf("admin scrub results: %+v", admin)
	}

	resp, err = http.Post(ts.URL+"/v1/admin/rekey", "application/json",
		strings.NewReader(`{"model":"m0"}`))
	if err != nil {
		t.Fatal(err)
	}
	admin = adminResponse{}
	if err := json.NewDecoder(resp.Body).Decode(&admin); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(admin.Results) != 1 || !admin.Results[0].Rekeyed || admin.Results[0].Model != "m0" {
		t.Fatalf("admin rekey results: %+v", admin)
	}
	if resp, err := http.Post(ts.URL+"/v1/models/m0/infer", "application/json", strings.NewReader(body)); err != nil || resp.StatusCode != 200 {
		t.Fatalf("post-rekey infer: %v %v", err, resp.StatusCode)
	} else {
		resp.Body.Close()
	}
}

// TestHTTPLegacyShimsGone: the pre-v1 routes were removed after their
// deprecation window — they must 404, not silently route anywhere.
func TestHTTPLegacyShimsGone(t *testing.T) {
	svc, b, _ := openTiny(t, 1, []ModelOption{WithScrub(0, 0)})
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()
	x, _ := b[0].Test.Batch(0, 1)

	resp, err := http.Post(ts.URL+"/infer", "application/json",
		strings.NewReader(tinyBody(t, sample(x, 0))))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("removed POST /infer answered %d, want 404", resp.StatusCode)
	}
	for _, path := range []string{"/healthz", "/metrics"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("removed GET %s answered %d, want 404", path, resp.StatusCode)
		}
	}
}

// TestHTTPJobCancel drives DELETE /v1/jobs/{id} over the wire: a pending
// job answers with state "cancelled", its table slot is freed, and the ID
// is unknown afterwards.
func TestHTTPJobCancel(t *testing.T) {
	svc, b, _ := openTiny(t, 1, []ModelOption{WithScrub(0, 0)})
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()
	x, _ := b[0].Test.Batch(0, 1)
	release := wedge(t, svc, "m0")
	defer release()

	resp, err := http.Post(ts.URL+"/v1/models/m0/jobs", "application/json",
		strings.NewReader(tinyBody(t, sample(x, 0))))
	if err != nil {
		t.Fatal(err)
	}
	var ref JobRef
	if err := json.NewDecoder(resp.Body).Decode(&ref); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	del, err := http.NewRequest(http.MethodDelete, ts.URL+ref.Location, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err = http.DefaultClient.Do(del)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel status %d, want 200", resp.StatusCode)
	}
	var st JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.State != JobCancelled || st.ID != ref.ID {
		t.Fatalf("cancel answered %+v", st)
	}
	if n := svc.jobs.active(); n != 0 {
		t.Fatalf("cancelled job still holds a table slot (%d active)", n)
	}

	// The ID is gone: polling and re-cancelling both 404.
	for _, method := range []string{http.MethodGet, http.MethodDelete} {
		req, _ := http.NewRequest(method, ts.URL+ref.Location, nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("%s on cancelled job → %d, want 404", method, resp.StatusCode)
		}
	}
}

// tinyProvider backs the admin hot-add route in tests: every source builds
// a fresh tiny model.
func tinyProvider(name, source string) (*qinfer.Engine, *core.Protector, []ModelOption, error) {
	b := model.Load(model.TinySpec())
	calib, _ := b.Attack.Batch(0, 64)
	eng, err := qinfer.Compile(b.Net, b.QModel, calib)
	if err != nil {
		return nil, nil, nil, err
	}
	prot := core.Protect(b.QModel, core.DefaultConfig(4))
	return eng, prot, []ModelOption{
		WithInputShape(b.Spec.Data.Channels, b.Spec.Data.Size, b.Spec.Data.Size),
		WithScrub(0, 0),
	}, nil
}

// TestHTTPAddModelDuplicateSkipsProvider pins the hot-add ordering: a POST
// for a name that is already serving must 409 BEFORE the ModelProvider
// runs. radar-serve's provider rebinds the name's store checkpoint as a
// side effect, which would unmap weights the live engine still reads —
// the name is reserved first so that path never executes for a duplicate.
func TestHTTPAddModelDuplicateSkipsProvider(t *testing.T) {
	var calls atomic.Int32
	counting := func(name, source string) (*qinfer.Engine, *core.Protector, []ModelOption, error) {
		calls.Add(1)
		return tinyProvider(name, source)
	}
	svc, _, _ := openTiny(t, 1, []ModelOption{WithScrub(0, 0)}, WithModelProvider(counting))
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	resp, err := http.Post(ts.URL+"/v1/admin/models/m0", "application/json",
		strings.NewReader(`{"source":"tiny"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("duplicate add → %d, want 409", resp.StatusCode)
	}
	if n := calls.Load(); n != 0 {
		t.Fatalf("provider ran %d time(s) for an already-served name", n)
	}

	// A free name still goes through the provider and registers, and the
	// released reservation doesn't block it.
	resp, err = http.Post(ts.URL+"/v1/admin/models/fresh", "application/json",
		strings.NewReader(`{"source":"tiny"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("add of a free name → %d, want 201", resp.StatusCode)
	}
	if n := calls.Load(); n != 1 {
		t.Fatalf("provider ran %d time(s) for a free name, want 1", n)
	}

	// Once registered, the name conflicts again without a provider call.
	resp, _ = http.Post(ts.URL+"/v1/admin/models/fresh", "application/json",
		strings.NewReader(`{"source":"tiny"}`))
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("re-add of registered name → %d, want 409", resp.StatusCode)
	}
	if n := calls.Load(); n != 1 {
		t.Fatalf("provider ran %d time(s) after re-add, want still 1", n)
	}
}

// TestHTTPAdminModels exercises hot add/remove over the wire: 501 without
// a provider, 201 + served traffic after an add, 409 on duplicate names
// and on removing the last model, 204 + 404 after a remove.
func TestHTTPAdminModels(t *testing.T) {
	bare, b, _ := openTiny(t, 1, []ModelOption{WithScrub(0, 0)})
	bareTS := httptest.NewServer(bare.Handler())
	defer bareTS.Close()
	x, _ := b[0].Test.Batch(0, 1)
	body := tinyBody(t, sample(x, 0))

	resp, err := http.Post(bareTS.URL+"/v1/admin/models/extra", "application/json",
		strings.NewReader(`{"source":"tiny"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotImplemented {
		t.Fatalf("add without provider → %d, want 501", resp.StatusCode)
	}

	svc, _, _ := openTiny(t, 1, []ModelOption{WithScrub(0, 0)},
		WithModelProvider(tinyProvider))
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	resp, err = http.Post(ts.URL+"/v1/admin/models/extra", "application/json",
		strings.NewReader(`{"source":"tiny"}`))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("hot add → %d, want 201", resp.StatusCode)
	}
	var info ModelInfo
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if info.Name != "extra" || !info.Healthy {
		t.Fatalf("hot add info: %+v", info)
	}

	// The added model serves immediately.
	resp, err = http.Post(ts.URL+"/v1/models/extra/infer", "application/json",
		strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("infer on hot-added model → %d", resp.StatusCode)
	}

	// Duplicate name → 409.
	resp, _ = http.Post(ts.URL+"/v1/admin/models/extra", "application/json",
		strings.NewReader(`{"source":"tiny"}`))
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("duplicate add → %d, want 409", resp.StatusCode)
	}

	// Remove it; traffic now 404s and a re-remove 404s too.
	del, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/admin/models/extra", nil)
	resp, err = http.DefaultClient.Do(del)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("hot remove → %d, want 204", resp.StatusCode)
	}
	resp, _ = http.Post(ts.URL+"/v1/models/extra/infer", "application/json",
		strings.NewReader(body))
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("infer on removed model → %d, want 404", resp.StatusCode)
	}

	// The last hosted model is protected → 409.
	del, _ = http.NewRequest(http.MethodDelete, ts.URL+"/v1/admin/models/m0", nil)
	resp, err = http.DefaultClient.Do(del)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("remove last model → %d, want 409", resp.StatusCode)
	}
}
