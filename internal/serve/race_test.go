package serve

import (
	"sync"
	"testing"
	"time"

	"radar/internal/attack"
	"radar/internal/model"
	"radar/internal/quant"
	"radar/internal/rowhammer"
)

// TestServeRaceUnderLiveFlips is the -race contract of the subsystem: it
// serves inference from several clients while (a) a rowhammer adversary
// flips bits in the live weight image, (b) the background scrubber scans
// and recovers, (c) a foreground goroutine hammers DetectAndRecover — the
// exact read/write collision that was latent before recovery was routed
// through the layer guard — and (d) metrics are polled. Run under
// `go test -race ./internal/serve/`; any unguarded access fails the build.
func TestServeRaceUnderLiveFlips(t *testing.T) {
	cfg := DefaultConfig()
	cfg.ScrubInterval = time.Millisecond
	cfg.ScrubFullEvery = 2
	cfg.MaxLatency = 500 * time.Microsecond
	b, srv := newTinyServer(t, cfg)

	// A precomputed MSB profile to mount repeatedly through the simulated
	// DRAM; computed on a separate attacker copy so profiling itself does
	// not touch the victim.
	atk := model.Load(model.TinySpec())
	addrs := attack.RandomMSB(atk.QModel, 8, 11).Addresses()
	dram := rowhammer.New(b.QModel, rowhammer.DefaultGeometry(), 1)

	x, _ := b.Test.Batch(0, 8)
	const (
		clients   = 4
		perClient = 25
		atkRounds = 20
		drRounds  = 10
	)
	var wg sync.WaitGroup

	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				if _, err := infer(srv, sample(x, (c+i)%8)); err != nil {
					t.Errorf("client %d: %v", c, err)
					return
				}
			}
		}(c)
	}

	wg.Add(1)
	go func() { // live rowhammer adversary
		defer wg.Done()
		for i := 0; i < atkRounds; i++ {
			srv.Inject(func(m *quant.Model) {
				dram.MountProfile(addrs)
				dram.Refresh()
			})
			time.Sleep(100 * time.Microsecond)
		}
	}()

	wg.Add(1)
	go func() { // foreground detect-and-recover alongside the scrubber
		defer wg.Done()
		for i := 0; i < drRounds; i++ {
			srv.Protector().DetectAndRecover()
			time.Sleep(200 * time.Microsecond)
		}
	}()

	wg.Add(1)
	go func() { // metrics poller
		defer wg.Done()
		for i := 0; i < 50; i++ {
			srv.Snapshot()
			time.Sleep(50 * time.Microsecond)
		}
	}()

	wg.Wait()
	snap := srv.Snapshot()
	if snap.Requests != clients*perClient {
		t.Fatalf("served %d requests, want %d", snap.Requests, clients*perClient)
	}
	if snap.Injections != atkRounds {
		t.Fatalf("recorded %d injections, want %d", snap.Injections, atkRounds)
	}
	srv.Stop()
	// After traffic stops, one final full sweep must leave the model clean.
	if flagged, _ := srv.Protector().DetectAndRecover(); len(flagged) != 0 {
		// The last injection may have landed after the last scrub; a second
		// sweep on a quiesced model must be clean.
		if flagged2, _ := srv.Protector().DetectAndRecover(); len(flagged2) != 0 {
			t.Fatalf("model still corrupt after quiesced sweep: %v", flagged2)
		}
	}
}
