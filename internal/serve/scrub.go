package serve

import (
	"time"

	"radar/internal/core"
)

// scrubLoop is the background scrubber: every ScrubInterval it runs one
// scrub cycle, alternating cheap incremental scans with a periodic full
// sweep. It exits when Stop closes scrubStop.
func (s *Server) scrubLoop() {
	defer s.scrubWG.Done()
	ticker := time.NewTicker(s.cfg.ScrubInterval)
	defer ticker.Stop()
	cycle := 0
	for {
		select {
		case <-s.scrubStop:
			return
		case <-ticker.C:
			s.Scrub(cycle%s.cfg.ScrubFullEvery == 0)
			cycle++
		}
	}
}

// Scrub runs one scrub cycle and reports what it found. A full cycle runs
// the pipelined DetectAndRecover (scan of layer i+1 overlaps recovery of
// layer i), catching even corruption that bypassed the model API; an
// incremental cycle scans only layers written since their last scan and
// recovers whatever they flag. Both paths go through the layer guard, so
// scrubbing never stalls traffic for longer than one layer's recovery.
// Exported so tests, benchmarks and operators (via a future admin
// endpoint) can force a cycle without waiting for the ticker.
func (s *Server) Scrub(full bool) (flagged []core.GroupID, zeroed int) {
	if full {
		flagged, zeroed = s.prot.DetectAndRecover()
	} else {
		flagged = s.prot.ScanDirty()
		if len(flagged) > 0 {
			zeroed = s.prot.Recover(flagged)
		}
	}
	s.met.scrubCycles.Inc()
	if len(flagged) > 0 {
		s.met.scrubFlagged.Add(int64(len(flagged)))
		s.met.scrubZeroed.Add(int64(zeroed))
	}
	return flagged, zeroed
}
