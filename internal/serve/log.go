package serve

import (
	"log/slog"
	"net/http"
	"time"

	"radar/internal/obs"
)

// statusRecorder captures the status code a handler writes so the request
// log can report it.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

// LogRequests wraps h with structured slog request logging: one line per
// request with method, path, status, duration and the request id (minted
// here when the client sent none, so the log line, the response header and
// the trace all agree). Both radar-serve and radar-fleet mount it behind
// their -log-requests flag; it is opt-in because a log line per request is
// measurable overhead at benchmark rates.
func LogRequests(h http.Handler, l *slog.Logger) http.Handler {
	if l == nil {
		l = slog.Default()
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := r.Header.Get(RequestIDHeader)
		if id == "" {
			id = obs.NewRequestID()
			r.Header.Set(RequestIDHeader, id)
		}
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		start := time.Now()
		h.ServeHTTP(rec, r)
		l.Info("request",
			"id", id,
			"method", r.Method,
			"path", r.URL.Path,
			"status", rec.status,
			"duration_ms", float64(time.Since(start))/float64(time.Millisecond),
		)
	})
}
