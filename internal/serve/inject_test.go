package serve

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"radar/internal/core"
)

func postJSON(t *testing.T, url, body string) (*http.Response, string) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	return resp, string(b)
}

// TestInjectAdversaryHTTP drives POST /v1/admin/inject end to end: a
// sigstore volley against a correcting model is flagged by the next full
// scrub and repaired by the class-0 ECC path — weights untouched, golden
// signatures restored — with the adversary and correction counters
// visible in /v1/metrics.
func TestInjectAdversaryHTTP(t *testing.T) {
	svc, _, prots := openTiny(t, 1, []ModelOption{WithScrub(0, 0)})
	cfg := core.DefaultConfig(4)
	cfg.Correct = true
	cfg.Seed = 2
	prots[0].Rekey(cfg)
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	resp, body := postJSON(t, ts.URL+"/v1/admin/inject",
		`{"model":"m0","adversary":"sigstore","flips":3,"seed":7}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("inject: status %d body %s", resp.StatusCode, body)
	}
	var rep InjectReport
	if err := json.Unmarshal([]byte(body), &rep); err != nil {
		t.Fatal(err)
	}
	if rep.SigFlips != 3 || rep.WeightFlips != 0 {
		t.Fatalf("sigstore volley report %+v, want 3 signature flips", rep)
	}

	resp, body = postJSON(t, ts.URL+"/v1/admin/scrub", `{"model":"m0","full":true}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("scrub: status %d body %s", resp.StatusCode, body)
	}
	st := prots[0].Stats()
	if st.GroupsCorrected != 3 || st.WeightsZeroed != 0 {
		t.Fatalf("want 3 class-0 corrections and no zeroing, got %+v", st)
	}

	mresp, err := http.Get(ts.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mbody, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	for _, want := range []string{
		`radar_adversary_flips_total{model="m0"} 3`,
		`radar_groups_corrected_total{model="m0"} 3`,
		`radar_groups_zeroed_total{model="m0"} 0`,
	} {
		if !strings.Contains(string(mbody), want) {
			t.Errorf("metrics exposition missing %q", want)
		}
	}

	info := svc.Models()[0]
	if !info.Correcting {
		t.Fatal("ModelInfo.Correcting should report the ECC mode")
	}
}

// TestInjectAdversaryValidation: unknown adversaries, absent models and
// non-positive budgets are rejected before anything is mounted.
func TestInjectAdversaryValidation(t *testing.T) {
	svc, _, prots := openTiny(t, 1, []ModelOption{WithScrub(0, 0)})
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	for _, tc := range []struct {
		body string
		want int
	}{
		{`{"model":"m0","adversary":"bogus","flips":3}`, http.StatusBadRequest},
		{`{"model":"m0","adversary":"oblivious","flips":0}`, http.StatusBadRequest},
		{`{"model":"nope","adversary":"oblivious","flips":3}`, http.StatusNotFound},
	} {
		resp, body := postJSON(t, ts.URL+"/v1/admin/inject", tc.body)
		if resp.StatusCode != tc.want {
			t.Errorf("%s: status %d (%s), want %d", tc.body, resp.StatusCode, body, tc.want)
		}
	}
	if st := prots[0].Stats(); st.GroupsFlagged != 0 {
		t.Fatal("rejected injections must not have touched the model")
	}
}

// TestInjectAdversaryZeroingFallback: without correction the same
// injected corruption lands on the zeroing path and the split counters
// say so.
func TestInjectAdversaryZeroingFallback(t *testing.T) {
	svc, _, prots := openTiny(t, 1, []ModelOption{WithScrub(0, 0)})
	if _, err := svc.InjectAdversary("m0", "oblivious", 4, 5); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Scrub("m0", true); err != nil {
		t.Fatal(err)
	}
	st := prots[0].Stats()
	if st.GroupsZeroed == 0 || st.GroupsCorrected != 0 {
		t.Fatalf("zeroing-only model: want zeroed>0 corrected=0, got %+v", st)
	}
	snap, err := svc.Snapshot("m0")
	if err != nil {
		t.Fatal(err)
	}
	if snap.GroupsZeroed != st.GroupsZeroed || snap.GroupsCorrected != 0 {
		t.Fatalf("snapshot split mismatch: %+v vs %+v", snap, st)
	}
}
