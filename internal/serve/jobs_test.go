package serve

import (
	"context"
	"errors"
	"testing"
	"time"
)

// TestJobLifecycle is the submit → poll pending → wait → completed round
// trip, with the workers wedged long enough to observe the pending state
// deterministically.
func TestJobLifecycle(t *testing.T) {
	svc, b, _ := openTiny(t, 1, []ModelOption{WithScrub(0, 0)})
	x, _ := b[0].Test.Batch(0, 4)

	// Reference answer through the sync path first.
	ref, err := svc.Infer(context.Background(), Request{Input: sample(x, 0)})
	if err != nil {
		t.Fatal(err)
	}

	release := wedge(t, svc, "m0")
	defer release()
	id, err := svc.Submit(context.Background(), Request{Model: "m0", Input: sample(x, 0)})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	st, err := svc.Poll(id)
	if err != nil {
		t.Fatalf("Poll: %v", err)
	}
	if st.State != JobPending || st.Model != "m0" || st.Result != nil {
		t.Fatalf("pre-completion status: %+v", st)
	}

	release()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	res, err := svc.Wait(ctx, id)
	if err != nil {
		t.Fatalf("Wait: %v", err)
	}
	if res.Class != ref.Class {
		t.Fatalf("job answered class %d, sync path %d", res.Class, ref.Class)
	}
	// The result stays pollable after Wait (until the TTL).
	st, err = svc.Poll(id)
	if err != nil {
		t.Fatalf("post-Wait Poll: %v", err)
	}
	if st.State != JobDone || st.Result == nil || st.Result.Class != ref.Class {
		t.Fatalf("post-completion status: %+v", st)
	}

	if _, err := svc.Poll(JobID("job-ffffffff")); !errors.Is(err, ErrUnknownJob) {
		t.Fatalf("unknown job Poll: %v", err)
	}
	if _, err := svc.Wait(ctx, JobID("job-ffffffff")); !errors.Is(err, ErrUnknownJob) {
		t.Fatalf("unknown job Wait: %v", err)
	}
}

// TestJobCancelledReaped: cancelling a job's submission context before it
// runs drops its queued work and removes it from the table.
func TestJobCancelledReaped(t *testing.T) {
	svc, b, _ := openTiny(t, 1, []ModelOption{WithScrub(0, 0)})
	x, _ := b[0].Test.Batch(0, 1)
	release := wedge(t, svc, "m0")
	defer release()

	ctx, cancel := context.WithCancel(context.Background())
	id, err := svc.Submit(ctx, Request{Input: sample(x, 0)})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	waitDone := make(chan error, 1)
	go func() {
		_, err := svc.Wait(context.Background(), id)
		waitDone <- err
	}()
	// Let Wait park on the job before cancelling; if cancellation still
	// wins the race, the reap turns Wait's lookup into ErrUnknownJob,
	// which the assertion below also accepts.
	time.Sleep(20 * time.Millisecond)
	cancel()

	// The watcher reaps asynchronously; poll until the ID is gone.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if _, err := svc.Poll(id); errors.Is(err, ErrUnknownJob) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("cancelled job never reaped from the table")
		}
		time.Sleep(time.Millisecond)
	}
	select {
	case err := <-waitDone:
		if !errors.Is(err, ErrJobCancelled) && !errors.Is(err, ErrUnknownJob) {
			t.Fatalf("Wait on cancelled job returned %v, want ErrJobCancelled (or ErrUnknownJob when the reap wins)", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Wait never returned for the cancelled job")
	}
	if n := svc.jobs.active(); n != 0 {
		t.Fatalf("job table still holds %d entries", n)
	}
}

// TestJobTableBounded: the table refuses submissions past its capacity
// with a typed ErrJobsFull, and frees the slot again once jobs expire.
func TestJobTableBounded(t *testing.T) {
	svc, b, _ := openTiny(t, 1,
		[]ModelOption{WithScrub(0, 0)},
		WithJobCapacity(1), WithJobTTL(10*time.Millisecond))
	x, _ := b[0].Test.Batch(0, 2)
	release := wedge(t, svc, "m0")
	defer release()

	id, err := svc.Submit(context.Background(), Request{Input: sample(x, 0)})
	if err != nil {
		t.Fatalf("first Submit: %v", err)
	}
	if _, err := svc.Submit(context.Background(), Request{Input: sample(x, 1)}); !errors.Is(err, ErrJobsFull) {
		t.Fatalf("over-capacity Submit returned %v, want ErrJobsFull", err)
	}

	release()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if _, err := svc.Wait(ctx, id); err != nil {
		t.Fatalf("Wait: %v", err)
	}
	// Past the TTL the finished job is reaped on the next touch, freeing
	// capacity and invalidating the old ID.
	time.Sleep(20 * time.Millisecond)
	if _, err := svc.Submit(context.Background(), Request{Input: sample(x, 0)}); err != nil {
		t.Fatalf("Submit after TTL reap: %v", err)
	}
	if _, err := svc.Poll(id); !errors.Is(err, ErrUnknownJob) {
		t.Fatalf("expired job still pollable: %v", err)
	}
}

// TestSubmitQueueFullTyped: the async path never parks — once the
// bounded request queue is saturated, Submit fails fast with
// ErrQueueFull instead of blocking the caller.
func TestSubmitQueueFullTyped(t *testing.T) {
	svc, b, _ := openTiny(t, 1, []ModelOption{
		WithScrub(0, 0),
		WithWorkers(1),
		WithBatch(1, time.Millisecond),
		WithQueueDepth(1),
	})
	x, _ := b[0].Test.Batch(0, 1)
	release := wedge(t, svc, "m0")
	defer release()

	deadline := time.Now().Add(10 * time.Second)
	for {
		t0 := time.Now()
		_, err := svc.Submit(context.Background(), Request{Input: sample(x, 0)})
		if errors.Is(err, ErrQueueFull) {
			if dt := time.Since(t0); dt > time.Second {
				t.Fatalf("queue-full Submit took %v — it must not block", dt)
			}
			break
		}
		if err != nil {
			t.Fatalf("Submit: %v", err)
		}
		if time.Now().After(deadline) {
			t.Fatal("queue never reported full")
		}
	}
	release()
}

// TestJobCancelAPI is the Service.Cancel contract: a pending job is
// cancelled and reaped (freeing its table slot before the forward pass
// ever runs), a finished job is removed but reports its terminal state,
// and unknown IDs stay typed.
func TestJobCancelAPI(t *testing.T) {
	svc, b, _ := openTiny(t, 1, []ModelOption{WithScrub(0, 0)})
	x, _ := b[0].Test.Batch(0, 2)
	release := wedge(t, svc, "m0")
	defer release()

	id, err := svc.Submit(context.Background(), Request{Input: sample(x, 0)})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	st, err := svc.Cancel(id)
	if err != nil {
		t.Fatalf("Cancel: %v", err)
	}
	if st.State != JobCancelled || st.ID != id {
		t.Fatalf("Cancel status: %+v", st)
	}
	if n := svc.jobs.active(); n != 0 {
		t.Fatalf("cancelled job still holds a slot (%d active)", n)
	}
	if _, err := svc.Poll(id); !errors.Is(err, ErrUnknownJob) {
		t.Fatalf("Poll after Cancel: %v, want ErrUnknownJob", err)
	}
	if _, err := svc.Cancel(id); !errors.Is(err, ErrUnknownJob) {
		t.Fatalf("double Cancel: %v, want ErrUnknownJob", err)
	}

	// Cancelling a completed job removes it but reports the done state.
	release()
	id2, err := svc.Submit(context.Background(), Request{Input: sample(x, 1)})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if _, err := svc.Wait(ctx, id2); err != nil {
		t.Fatalf("Wait: %v", err)
	}
	st, err = svc.Cancel(id2)
	if err != nil {
		t.Fatalf("Cancel done job: %v", err)
	}
	if st.State != JobDone || st.Result == nil {
		t.Fatalf("Cancel of done job lost its terminal state: %+v", st)
	}
	if _, err := svc.Poll(id2); !errors.Is(err, ErrUnknownJob) {
		t.Fatalf("done job survived its DELETE: %v", err)
	}
}

// TestJobIDsCarryInstanceTag: IDs embed the table's random instance tag so
// two replicas of one deployment never mint colliding IDs — the property
// a fleet router's sticky job map depends on.
func TestJobIDsCarryInstanceTag(t *testing.T) {
	svc, b, _ := openTiny(t, 1, []ModelOption{WithScrub(0, 0)})
	x, _ := b[0].Test.Batch(0, 1)
	id, err := svc.Submit(context.Background(), Request{Input: sample(x, 0)})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	want := "job-" + svc.jobs.instance + "-"
	if len(svc.jobs.instance) != 16 {
		t.Fatalf("instance tag %q is %d hex digits, want 16 (64 bits)",
			svc.jobs.instance, len(svc.jobs.instance))
	}
	if len(id) != len("job-xxxxxxxxxxxxxxxx-00000000") || string(id[:len(want)]) != want {
		t.Fatalf("job ID %q does not carry instance tag %q", id, svc.jobs.instance)
	}
}
