package serve

import (
	"time"

	"radar/internal/obs"
	"radar/internal/tensor"
)

// dispatch is the batching queue: it pulls requests off the intake channel
// and groups them into batches of at most MaxBatch, flushing early when the
// oldest queued request has waited MaxLatency. One dispatcher feeds all
// inference workers; it exits (closing the batch channel) when the intake
// channel is closed by Stop, after flushing whatever was still queued.
func (s *Server) dispatch() {
	defer s.workWG.Done()
	defer close(s.batches)
	timer := time.NewTimer(time.Hour)
	if !timer.Stop() {
		<-timer.C
	}
	var batch []*request
	flush := func() {
		if len(batch) > 0 {
			s.met.batches.Inc()
			s.met.batched.Add(int64(len(batch)))
			s.met.occupancy.Observe(float64(len(batch)))
			s.batches <- batch
			batch = nil
		}
	}
	for {
		if len(batch) == 0 {
			// Idle: block for the first request of the next batch.
			r, ok := <-s.reqs
			if !ok {
				return
			}
			batch = append(batch, r)
			timer.Reset(s.cfg.MaxLatency)
		}
		if len(batch) >= s.cfg.MaxBatch {
			stopTimer(timer)
			flush()
			continue
		}
		select {
		case r, ok := <-s.reqs:
			if !ok {
				stopTimer(timer)
				flush()
				return
			}
			if !sameShape(r.x, batch[0].x) {
				// A shape change (possible only when Config.InputShape is
				// unset) ends the batch: one forward pass has one geometry.
				flush()
				stopTimer(timer)
				timer.Reset(s.cfg.MaxLatency)
			}
			batch = append(batch, r)
		case <-timer.C:
			flush()
		}
	}
}

// sameShape reports whether two inputs can share a forward pass (their
// (C,H,W) geometry matches; a leading batch dim of 1 is ignored).
func sameShape(a, b *tensor.Tensor) bool {
	as, bs := a.Shape, b.Shape
	if len(as) == 4 {
		as = as[1:]
	}
	if len(bs) == 4 {
		bs = bs[1:]
	}
	if len(as) != len(bs) {
		return false
	}
	for i := range as {
		if as[i] != bs[i] {
			return false
		}
	}
	return true
}

// stopTimer stops t and drains a pending fire so the next Reset is clean.
func stopTimer(t *time.Timer) {
	if !t.Stop() {
		select {
		case <-t.C:
		default:
		}
	}
}

// worker runs batches to completion until the batch channel closes.
func (s *Server) worker() {
	defer s.workWG.Done()
	for batch := range s.batches {
		s.runBatch(batch)
	}
}

// runBatch assembles one (N, C, H, W) tensor from the batched requests,
// runs a single engine forward (verified fetch and weight locking happen
// inside, per layer) and fans the logit rows back out. Requests whose
// context was cancelled while they waited in the queue are dropped here —
// their submitters have already returned, so computing them would be
// wasted work (a whole batch of cancellations skips the forward pass
// entirely).
func (s *Server) runBatch(batch []*request) {
	start := time.Now() // batch dequeued: queue wait ends here
	live := batch[:0]
	traced := false
	for _, r := range batch {
		if r.ctx != nil && r.ctx.Err() != nil {
			s.met.cancelled.Inc()
			continue
		}
		if r.id != "" {
			traced = true
		}
		live = append(live, r)
	}
	batch = live
	if len(batch) == 0 {
		return
	}
	shape := batch[0].x.Shape
	if len(shape) == 4 {
		shape = shape[1:]
	}
	vol := tensor.Volume(shape)
	x := tensor.New(append([]int{len(batch)}, shape...)...)
	for i, r := range batch {
		copy(x.Data[i*vol:(i+1)*vol], r.x.Data)
	}
	assembled := time.Now()
	// When any request in the batch is traced and verified fetch is on,
	// run the forward with a per-call hook that attributes fetch-path scan
	// time to this batch — verifyNs is local to this worker, so no
	// cross-batch accounting races.
	var out *tensor.Tensor
	var verifyNs int64
	if traced && s.cfg.VerifiedFetch {
		out = s.eng.ForwardWithHook(x, func(li int) { verifyNs += s.ver.checkTimed(li) })
	} else {
		out = s.eng.Forward(x)
	}
	k := out.Shape[1]
	now := time.Now()
	verify := time.Duration(verifyNs)
	forward := now.Sub(assembled) - verify
	for i, r := range batch {
		logits := append([]float32(nil), out.Data[i*k:(i+1)*k]...)
		s.met.requests.Inc()
		s.met.observeLatency(now.Sub(r.enq))
		if r.id != "" {
			s.traces.Add(obs.Trace{
				ID:      r.id,
				Model:   s.name,
				Start:   r.enq,
				TotalMs: float64(now.Sub(r.enq)) / float64(time.Millisecond),
				Stages: []obs.Stage{
					{Name: "queue", Ms: float64(start.Sub(r.enq)) / float64(time.Millisecond)},
					{Name: "batch", Ms: float64(assembled.Sub(start)) / float64(time.Millisecond)},
					{Name: "verify", Ms: float64(verify) / float64(time.Millisecond)},
					{Name: "forward", Ms: float64(forward) / float64(time.Millisecond)},
				},
			})
		}
		r.out <- Result{Class: out.Argmax(i*k, k), Logits: logits}
	}
}
