package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"radar/internal/obs"
)

// JobRef answers POST /v1/models/{name}/jobs: the accepted job's identity
// and where to poll it.
type JobRef struct {
	ID    JobID  `json:"id"`
	Model string `json:"model"`
	// Location is the polling route for this job.
	Location string `json:"location"`
}

// ModelsResponse is the body of GET /v1/models.
type ModelsResponse struct {
	Models []ModelInfo `json:"models"`
	// Jobs summarizes the service-wide async job table.
	Jobs JobTableStats `json:"jobs"`
}

// JobTableStats is the job table's live occupancy.
type JobTableStats struct {
	Active    int   `json:"active"`
	Submitted int64 `json:"submitted"`
	Capacity  int   `json:"capacity"`
}

// adminRequest is the body of POST /v1/admin/scrub and /v1/admin/rekey.
// An empty Model targets every hosted model.
type adminRequest struct {
	Model string `json:"model,omitempty"`
	// Full selects the pipelined whole-model sweep (scrub only).
	Full bool `json:"full,omitempty"`
}

// adminResponse answers the admin routes with one report per model acted on.
type adminResponse struct {
	Results []AdminReport `json:"results"`
}

// Handler returns the versioned HTTP front-end of the whole service:
//
//	POST   /v1/models/{model}/infer  — sync inference (honors client disconnect)
//	POST   /v1/models/{model}/jobs   — submit an async job, 202 + job ID
//	GET    /v1/jobs/{id}             — poll a job; result once state is "done"
//	DELETE /v1/jobs/{id}             — cancel a job, dropping queued work
//	GET    /v1/models                — hosted models, health, live metrics
//	GET    /v1/models/{model}        — one model's info/metrics
//	POST   /v1/admin/scrub           — force a scrub cycle ({"model","full"})
//	POST   /v1/admin/rekey           — rotate protection secrets live ({"model"})
//	POST   /v1/admin/models/{name}   — hot-add a model ({"source"}; needs a provider)
//	DELETE /v1/admin/models/{name}   — hot-remove a model (drains first)
//	POST   /v1/admin/inject          — mount an adversary volley ({"model","adversary","flips","seed"})
//	GET    /v1/metrics               — Prometheus text exposition, all models
//	GET    /v1/debug/traces          — recent per-request stage traces (?n=K)
//
// The pre-v1 shims (POST /infer, GET /healthz, GET /metrics) were removed
// after their one-release deprecation window; only the /v1 surface is
// served (metrics now live under the versioned path).
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/models/{model}/infer", s.handleInferV1)
	mux.HandleFunc("POST /v1/models/{model}/jobs", s.handleSubmitJob)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancelJob)
	mux.HandleFunc("GET /v1/models", s.handleModels)
	mux.HandleFunc("GET /v1/models/{model}", s.handleModel)
	mux.HandleFunc("POST /v1/admin/scrub", s.handleScrub)
	mux.HandleFunc("POST /v1/admin/rekey", s.handleRekey)
	mux.HandleFunc("POST /v1/admin/inject", s.handleInject)
	mux.HandleFunc("POST /v1/admin/models/{name}", s.handleAddModel)
	mux.HandleFunc("DELETE /v1/admin/models/{name}", s.handleRemoveModel)
	mux.HandleFunc("GET /v1/metrics", s.handleMetrics)
	mux.HandleFunc("GET /v1/debug/traces", s.handleTraces)
	return mux
}

// httpError maps the service's typed errors onto wire status codes:
// unknown model/job → 404, duplicate/last model → 409, stopping → 503 +
// Retry-After, saturated queue or job table → 429 + Retry-After, anything
// else (malformed tensors, bad shapes) → 400.
func httpError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, ErrUnknownModel), errors.Is(err, ErrUnknownJob):
		http.Error(w, err.Error(), http.StatusNotFound)
	case errors.Is(err, ErrModelExists), errors.Is(err, ErrLastModel):
		http.Error(w, err.Error(), http.StatusConflict)
	case errors.Is(err, ErrStopping):
		w.Header().Set("Retry-After", "1")
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
	case errors.Is(err, ErrQueueFull), errors.Is(err, ErrJobsFull):
		w.Header().Set("Retry-After", "1")
		http.Error(w, err.Error(), http.StatusTooManyRequests)
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		// The client went away or ran out its deadline mid-request; the
		// response is mostly moot but keep the mapping honest.
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
	default:
		http.Error(w, err.Error(), http.StatusBadRequest)
	}
}

func (s *Service) handleInferV1(w http.ResponseWriter, r *http.Request) {
	hm, err := s.reg.lookup(r.PathValue("model"))
	if err != nil {
		httpError(w, err)
		return
	}
	hm.srv.serveInfer(w, r)
}

func (s *Service) handleSubmitJob(w http.ResponseWriter, r *http.Request) {
	hm, err := s.reg.lookup(r.PathValue("model"))
	if err != nil {
		httpError(w, err)
		return
	}
	inputs, err := hm.srv.decodeInferRequest(r)
	if err != nil {
		httpError(w, err)
		return
	}
	if len(inputs) != 1 {
		httpError(w, errors.New("a job carries exactly one input"))
		return
	}
	// The job must outlive this HTTP exchange: detach it from the request
	// context. Cancellation is explicit — DELETE /v1/jobs/{id} tears down
	// the per-job context layer Submit installs on top of this one.
	id, err := s.Submit(context.WithoutCancel(r.Context()),
		Request{Model: hm.name, Input: inputs[0], RequestID: requestID(w, r)})
	if err != nil {
		httpError(w, err)
		return
	}
	writeJSONStatus(w, http.StatusAccepted,
		JobRef{ID: id, Model: hm.name, Location: "/v1/jobs/" + string(id)})
}

func (s *Service) handleJob(w http.ResponseWriter, r *http.Request) {
	st, err := s.Poll(JobID(r.PathValue("id")))
	if err != nil {
		httpError(w, err)
		return
	}
	writeJSON(w, st)
}

func (s *Service) handleCancelJob(w http.ResponseWriter, r *http.Request) {
	st, err := s.Cancel(JobID(r.PathValue("id")))
	if err != nil {
		httpError(w, err)
		return
	}
	writeJSON(w, st)
}

func (s *Service) handleModels(w http.ResponseWriter, r *http.Request) {
	active, submitted := s.jobs.stats()
	writeJSON(w, ModelsResponse{
		Models: s.Models(),
		Jobs:   JobTableStats{Active: active, Submitted: submitted, Capacity: s.jobs.cap},
	})
}

func (s *Service) handleModel(w http.ResponseWriter, r *http.Request) {
	hm, err := s.reg.lookup(r.PathValue("model"))
	if err != nil {
		httpError(w, err)
		return
	}
	writeJSON(w, hm.info())
}

func (s *Service) handleScrub(w http.ResponseWriter, r *http.Request) {
	var req adminRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, fmt.Errorf("bad JSON: %w", err))
		return
	}
	reports, err := s.Scrub(req.Model, req.Full)
	if err != nil {
		httpError(w, err)
		return
	}
	writeJSON(w, adminResponse{Results: reports})
}

func (s *Service) handleRekey(w http.ResponseWriter, r *http.Request) {
	var req adminRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, fmt.Errorf("bad JSON: %w", err))
		return
	}
	reports, err := s.Rekey(req.Model)
	if err != nil {
		httpError(w, err)
		return
	}
	writeJSON(w, adminResponse{Results: reports})
}

// injectRequest is the body of POST /v1/admin/inject: which adversary to
// run against which model (empty: default model), its flip budget, and
// the plan seed (0 = fixed default plan).
type injectRequest struct {
	Model     string `json:"model,omitempty"`
	Adversary string `json:"adversary"`
	Flips     int    `json:"flips"`
	Seed      int64  `json:"seed,omitempty"`
}

func (s *Service) handleInject(w http.ResponseWriter, r *http.Request) {
	var req injectRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, fmt.Errorf("bad JSON: %w", err))
		return
	}
	if req.Flips <= 0 {
		httpError(w, fmt.Errorf("serve: inject needs a positive flip budget, got %d", req.Flips))
		return
	}
	rep, err := s.InjectAdversary(req.Model, req.Adversary, req.Flips, req.Seed)
	if err != nil {
		httpError(w, err)
		return
	}
	writeJSON(w, rep)
}

// addModelRequest is the body of POST /v1/admin/models/{name}: the opaque
// source string the installed ModelProvider resolves (for radar-serve, a
// zoo model name).
type addModelRequest struct {
	Source string `json:"source"`
}

func (s *Service) handleAddModel(w http.ResponseWriter, r *http.Request) {
	if s.provider == nil {
		http.Error(w, "serve: no model provider configured", http.StatusNotImplemented)
		return
	}
	name := r.PathValue("name")
	var req addModelRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, fmt.Errorf("bad JSON: %w", err))
		return
	}
	if err := validModelName(name); err != nil {
		httpError(w, err)
		return
	}
	// Reserve the name before the provider runs: a hosted or concurrently
	// adding name 409s here, so the provider's side effects (radar-serve
	// remaps the store checkpoint under this name) never touch a model
	// that is already serving.
	if err := s.reg.reserve(name); err != nil {
		httpError(w, err)
		return
	}
	defer s.reg.release(name)
	eng, prot, opts, err := s.provider(name, req.Source)
	if err != nil {
		httpError(w, err)
		return
	}
	if err := s.AddModel(name, eng, prot, opts...); err != nil {
		httpError(w, err)
		return
	}
	hm, err := s.reg.lookup(name)
	if err != nil {
		httpError(w, err)
		return
	}
	writeJSONStatus(w, http.StatusCreated, hm.info())
}

func (s *Service) handleRemoveModel(w http.ResponseWriter, r *http.Request) {
	if err := s.RemoveModel(r.PathValue("name")); err != nil {
		httpError(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Service) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", obs.ExpositionContentType)
	s.WriteMetrics(w)
}

// TracesResponse is the body of GET /v1/debug/traces: the retained traces
// (newest first) with summary latency quantiles over them.
type TracesResponse struct {
	Count  int         `json:"count"`
	P50Ms  float64     `json:"p50_ms"`
	P99Ms  float64     `json:"p99_ms"`
	Traces []obs.Trace `json:"traces"`
}

// NewTracesResponse summarizes a trace dump: nearest-rank p50/p99 over the
// traces' total latencies. Exported because the fleet router reuses it
// after merging the replicas' dumps.
func NewTracesResponse(traces []obs.Trace) TracesResponse {
	samples := make([]time.Duration, len(traces))
	for i, t := range traces {
		samples[i] = time.Duration(t.TotalMs * float64(time.Millisecond))
	}
	qs := quantiles(samples, 0.50, 0.99)
	return TracesResponse{
		Count:  len(traces),
		P50Ms:  float64(qs[0]) / float64(time.Millisecond),
		P99Ms:  float64(qs[1]) / float64(time.Millisecond),
		Traces: traces,
	}
}

func (s *Service) handleTraces(w http.ResponseWriter, r *http.Request) {
	n := 32
	if raw := r.URL.Query().Get("n"); raw != "" {
		v, err := strconv.Atoi(raw)
		if err != nil || v < 1 {
			httpError(w, fmt.Errorf("bad n %q: want a positive integer", raw))
			return
		}
		n = v
	}
	writeJSON(w, NewTracesResponse(s.Traces(n)))
}
