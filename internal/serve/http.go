package serve

import (
	"encoding/json"
	"fmt"
	"net/http"

	"radar/internal/tensor"
)

// InferRequest is the JSON body of POST /infer: either a single input or a
// list of inputs, each a flat float array of volume C·H·W. Shape defaults
// to the server's configured input shape.
type InferRequest struct {
	// Input is a single flattened (C,H,W) image.
	Input []float32 `json:"input,omitempty"`
	// Inputs holds several flattened images; they are submitted together
	// and batched by the server.
	Inputs [][]float32 `json:"inputs,omitempty"`
	// Shape is the per-input shape (C,H,W); optional when the server was
	// configured with one.
	Shape []int `json:"shape,omitempty"`
}

// InferResult is one input's answer in the JSON response.
type InferResult struct {
	Class  int       `json:"class"`
	Logits []float32 `json:"logits"`
}

// InferResponse is the JSON body answering POST /infer.
type InferResponse struct {
	Results []InferResult `json:"results"`
}

// healthResponse is the JSON body of GET /healthz.
type healthResponse struct {
	Status        string `json:"status"`
	Layers        int    `json:"layers"`
	Groups        int    `json:"groups"`
	InputShape    []int  `json:"input_shape,omitempty"`
	VerifiedFetch bool   `json:"verified_fetch"`
	ScrubMs       int64  `json:"scrub_interval_ms"`
}

// Handler returns the HTTP front-end:
//
//	POST /infer   — run inference on one or more inputs
//	GET  /healthz — liveness and model identity
//	GET  /metrics — the full metrics Snapshot as JSON
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/infer", s.handleInfer)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/metrics", s.handleMetrics)
	return mux
}

func (s *Server) handleInfer(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var req InferRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, "bad JSON: "+err.Error(), http.StatusBadRequest)
		return
	}
	inputs := req.Inputs
	if len(req.Input) > 0 {
		inputs = append([][]float32{req.Input}, inputs...)
	}
	if len(inputs) == 0 {
		http.Error(w, "no inputs", http.StatusBadRequest)
		return
	}
	shape := req.Shape
	if len(shape) == 0 {
		shape = s.cfg.InputShape
	}
	if len(shape) != 3 {
		http.Error(w, "shape must be (C,H,W)", http.StatusBadRequest)
		return
	}
	vol := tensor.Volume(shape)
	// Submit everything first so a multi-input request fills batches, then
	// collect in order.
	chans := make([]<-chan Result, len(inputs))
	for i, in := range inputs {
		if len(in) != vol {
			http.Error(w, fmt.Sprintf("input %d has %d values, shape %v needs %d",
				i, len(in), shape, vol), http.StatusBadRequest)
			return
		}
		x := tensor.New(shape...)
		copy(x.Data, in)
		ch, err := s.submit(x)
		if err != nil {
			status := http.StatusBadRequest
			if err == ErrServerClosed {
				status = http.StatusServiceUnavailable
			}
			http.Error(w, err.Error(), status)
			return
		}
		chans[i] = ch
	}
	resp := InferResponse{Results: make([]InferResult, len(chans))}
	for i, ch := range chans {
		res := <-ch
		resp.Results[i] = InferResult{Class: res.Class, Logits: res.Logits}
	}
	writeJSON(w, resp)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if !s.Healthy() {
		w.WriteHeader(http.StatusServiceUnavailable)
		writeJSON(w, healthResponse{Status: "stopping"})
		return
	}
	writeJSON(w, healthResponse{
		Status:        "ok",
		Layers:        len(s.model.Layers),
		Groups:        s.prot.NumGroups(),
		InputShape:    s.cfg.InputShape,
		VerifiedFetch: s.cfg.VerifiedFetch,
		ScrubMs:       s.cfg.ScrubInterval.Milliseconds(),
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, s.Snapshot())
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}
