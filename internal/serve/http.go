package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"radar/internal/obs"
	"radar/internal/tensor"
)

// InferRequest is the JSON body of POST /v1/models/{model}/infer: either
// a single input or a list of inputs, each a flat float array of volume
// C·H·W. Shape defaults to the model's configured input shape.
type InferRequest struct {
	// Input is a single flattened (C,H,W) image.
	Input []float32 `json:"input,omitempty"`
	// Inputs holds several flattened images; they are submitted together
	// and batched by the server.
	Inputs [][]float32 `json:"inputs,omitempty"`
	// Shape is the per-input shape (C,H,W); optional when the server was
	// configured with one.
	Shape []int `json:"shape,omitempty"`
}

// InferResult is one input's answer in the JSON response.
type InferResult struct {
	Class  int       `json:"class"`
	Logits []float32 `json:"logits"`
}

// InferResponse is the JSON body answering the sync inference route.
type InferResponse struct {
	Results []InferResult `json:"results"`
}

// decodeInferRequest parses an InferRequest body into per-input tensors
// against the server's configured shape (or the request's override).
func (s *Server) decodeInferRequest(r *http.Request) ([]*tensor.Tensor, error) {
	var req InferRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		return nil, fmt.Errorf("bad JSON: %w", err)
	}
	inputs := req.Inputs
	if len(req.Input) > 0 {
		inputs = append([][]float32{req.Input}, inputs...)
	}
	if len(inputs) == 0 {
		return nil, errors.New("no inputs")
	}
	shape := req.Shape
	if len(shape) == 0 {
		shape = s.cfg.InputShape
	}
	if len(shape) != 3 {
		return nil, errors.New("shape must be (C,H,W)")
	}
	vol := tensor.Volume(shape)
	out := make([]*tensor.Tensor, len(inputs))
	for i, in := range inputs {
		if len(in) != vol {
			return nil, fmt.Errorf("input %d has %d values, shape %v needs %d", i, len(in), shape, vol)
		}
		x := tensor.New(shape...)
		copy(x.Data, in)
		out[i] = x
	}
	return out, nil
}

// RequestIDHeader carries the request id the router generates (or the
// client supplies) through router → replica → batch queue → worker; the
// replica echoes it on the response and keys the request's trace on it.
const RequestIDHeader = "X-Request-Id"

// requestID returns r's X-Request-Id, minting one when absent, and echoes
// it on the response so the caller can correlate its trace.
func requestID(w http.ResponseWriter, r *http.Request) string {
	id := r.Header.Get(RequestIDHeader)
	if id == "" {
		id = obs.NewRequestID()
	}
	w.Header().Set(RequestIDHeader, id)
	return id
}

// serveInfer is the sync-inference handler body behind
// POST /v1/models/{model}/infer: submit everything first (so a
// multi-input request fills batches), then collect in order, all under
// the client's request context. Errors map through httpError
// (400/429/503+Retry-After).
func (s *Server) serveInfer(w http.ResponseWriter, r *http.Request) {
	inputs, err := s.decodeInferRequest(r)
	if err != nil {
		httpError(w, err)
		return
	}
	id := requestID(w, r)
	ctx := r.Context()
	chans := make([]<-chan Result, len(inputs))
	for i, x := range inputs {
		ch, err := s.submit(ctx, x, id)
		if err != nil {
			httpError(w, err)
			return
		}
		chans[i] = ch
	}
	resp := InferResponse{Results: make([]InferResult, len(chans))}
	for i, ch := range chans {
		select {
		case res := <-ch:
			resp.Results[i] = InferResult{Class: res.Class, Logits: res.Logits}
		case <-ctx.Done():
			httpError(w, ctx.Err())
			return
		}
	}
	writeJSON(w, resp)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// writeJSONStatus is writeJSON with a non-200 status: the Content-Type
// header must land before WriteHeader freezes the header set.
func writeJSONStatus(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}
