package serve

import (
	"math"
	"sort"
	"time"

	"radar/internal/obs"
)

// Histogram bucket layouts. Latency buckets run 0.5ms–2.5s (the tiny
// models answer in single-digit ms; a fleet failover retry can stack a few
// hundred); occupancy buckets cover the power-of-two batch sizes up to the
// default MaxBatch and beyond.
var (
	latencyBuckets   = []float64{0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5}
	occupancyBuckets = []float64{1, 2, 4, 8, 16, 32}
)

// metrics holds one model runtime's live instruments, all children of the
// service-wide obs.Registry under this model's `model` label. Counters and
// histograms are pure atomics, so the inference hot path never shares a
// lock with a scrape — the mutex'd latency reservoir this replaced is
// gone.
type metrics struct {
	requests  *obs.Counter
	cancelled *obs.Counter
	batches   *obs.Counter
	batched   *obs.Counter

	scrubCycles  *obs.Counter
	scrubFlagged *obs.Counter
	scrubZeroed  *obs.Counter

	verifyHits    *obs.Counter
	verifyScans   *obs.Counter
	verifyFlagged *obs.Counter
	verifyZeroed  *obs.Counter

	injections *obs.Counter
	advFlips   *obs.Counter
	rekeys     *obs.Counter

	latency   *obs.Histogram // end-to-end seconds, enqueue to answer
	occupancy *obs.Histogram // requests per executed batch
}

// newMetrics registers this model's children on reg. Registration is
// idempotent at the family level, so every hosted model binds children of
// the same families.
func newMetrics(reg *obs.Registry, model string) *metrics {
	return &metrics{
		requests:      reg.Counter("radar_requests_total", "Inference requests answered.", "model").With(model),
		cancelled:     reg.Counter("radar_requests_cancelled_total", "Requests dropped before their forward pass because the submitter's context was cancelled.", "model").With(model),
		batches:       reg.Counter("radar_batches_total", "Batched forward passes executed.", "model").With(model),
		batched:       reg.Counter("radar_batched_requests_total", "Requests carried by batched forward passes.", "model").With(model),
		scrubCycles:   reg.Counter("radar_scrub_cycles_total", "Background scrub cycles completed.", "model").With(model),
		scrubFlagged:  reg.Counter("radar_scrub_flagged_total", "Groups flagged by scrub cycles.", "model").With(model),
		scrubZeroed:   reg.Counter("radar_scrub_zeroed_total", "Weights zeroed by scrub recovery.", "model").With(model),
		verifyHits:    reg.Counter("radar_verify_hits_total", "Verified fetches answered by the epoch cache.", "model").With(model),
		verifyScans:   reg.Counter("radar_verify_scans_total", "Verified fetches that rescanned the layer.", "model").With(model),
		verifyFlagged: reg.Counter("radar_verify_flagged_total", "Groups flagged by fetch-path verification.", "model").With(model),
		verifyZeroed:  reg.Counter("radar_verify_zeroed_total", "Weights zeroed by fetch-path recovery.", "model").With(model),
		injections:    reg.Counter("radar_injections_total", "Attack injection rounds mounted on the live model.", "model").With(model),
		advFlips:      reg.Counter("radar_adversary_flips_total", "Bit flips mounted on the live model by injected adversary volleys.", "model").With(model),
		rekeys:        reg.Counter("radar_rekeys_total", "Live rotations of the model's protection secrets.", "model").With(model),
		latency:       reg.Histogram("radar_request_latency_seconds", "End-to-end request latency, enqueue to answer.", latencyBuckets, "model").With(model),
		occupancy:     reg.Histogram("radar_batch_occupancy", "Requests coalesced per executed forward pass.", occupancyBuckets, "model").With(model),
	}
}

// observeLatency records one request's enqueue-to-answer latency.
func (m *metrics) observeLatency(d time.Duration) {
	m.latency.Observe(d.Seconds())
}

// registerFuncs binds the scrape-time function children for this server:
// the queue-depth gauge, the protector's core counters, the engine's GEMM
// stage clock, and the verifier's fetch-scan clock. Called once from
// newServerIn after the runtime's channels exist.
func (s *Server) registerFuncs(reg *obs.Registry, model string) {
	reg.Gauge("radar_queue_depth", "Requests waiting in the model's bounded batch queue.", "model").
		Func(func() float64 { return float64(len(s.reqs)) }, model)
	reg.Counter("radar_protector_scans_total", "Protection scans run (scrubber + verified fetch).", "model").
		Func(func() float64 { return float64(s.prot.Stats().Scans) }, model)
	reg.Counter("radar_scan_bytes_total", "Weight bytes covered by protection scans.", "model").
		Func(func() float64 { return float64(s.prot.Stats().BytesScanned) }, model)
	reg.Counter("radar_groups_flagged_total", "Signature mismatches across all scans.", "model").
		Func(func() float64 { return float64(s.prot.Stats().GroupsFlagged) }, model)
	reg.Counter("radar_groups_recovered_total", "Groups recovered (corrected or zeroed) after flagging.", "model").
		Func(func() float64 { return float64(s.prot.Stats().GroupsRecovered) }, model)
	reg.Counter("radar_groups_corrected_total", "Flagged groups repaired in place by the ECC correction path.", "model").
		Func(func() float64 { return float64(s.prot.Stats().GroupsCorrected) }, model)
	reg.Counter("radar_groups_zeroed_total", "Flagged groups recovered by zeroing.", "model").
		Func(func() float64 { return float64(s.prot.Stats().GroupsZeroed) }, model)
	reg.Counter("radar_weights_zeroed_total", "Individual weights zeroed during recovery.", "model").
		Func(func() float64 { return float64(s.prot.Stats().WeightsZeroed) }, model)
	reg.Counter("radar_gemm_stages_total", "Quantized conv stages executed.", "model").
		Func(func() float64 { st, _ := s.eng.StageStats(); return float64(st) }, model)
	reg.Counter("radar_gemm_stage_seconds_total", "Wall time inside int8 GEMM stage compute.", "model").
		Func(func() float64 { _, ns := s.eng.StageStats(); return float64(ns) / 1e9 }, model)
	reg.Counter("radar_verify_seconds_total", "Wall time spent in fetch-path verification scans.", "model").
		Func(func() float64 { return float64(s.ver.scanNs.Load()) / 1e9 }, model)
}

// quantiles returns nearest-rank quantiles (q in [0,1]) over samples,
// which need not be sorted; zeros when samples is empty. The rank is the
// standard ceil(q·n) (1-based), so p99 over a small sample set is the
// true 99th-percentile order statistic rather than one rank low — the old
// int(q·(n-1)) truncation biased small-n tails toward the median.
func quantiles(samples []time.Duration, qs ...float64) []time.Duration {
	out := make([]time.Duration, len(qs))
	if len(samples) == 0 {
		return out
	}
	sorted := append([]time.Duration(nil), samples...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	n := len(sorted)
	for i, q := range qs {
		k := int(math.Ceil(q*float64(n))) - 1
		if k < 0 {
			k = 0
		}
		if k > n-1 {
			k = n - 1
		}
		out[i] = sorted[k]
	}
	return out
}

// Snapshot is a point-in-time export of the server's metrics, shaped for
// JSON (GET /v1/models and the servescale benchmark artifact). The same
// figures are exposed in Prometheus form at GET /v1/metrics.
type Snapshot struct {
	// UptimeSeconds is the time since Start.
	UptimeSeconds float64 `json:"uptime_seconds"`
	// Requests counts answered requests; Batches the forward passes that
	// carried them; AvgBatch their ratio.
	Requests int64   `json:"requests"`
	Batches  int64   `json:"batches"`
	AvgBatch float64 `json:"avg_batch"`
	// Cancelled counts requests dropped before their forward pass because
	// the submitter's context was cancelled while they waited in the queue.
	Cancelled int64 `json:"cancelled"`
	// P50Ms / P99Ms are end-to-end request latency quantiles (enqueue to
	// answer, including batching wait), estimated from the latency
	// histogram by interpolating inside the bucket holding the rank.
	P50Ms float64 `json:"p50_ms"`
	P99Ms float64 `json:"p99_ms"`
	// ScrubCycles counts scrubber cycles; ScrubFlagged / ScrubZeroed what
	// they found and repaired.
	ScrubCycles  int64 `json:"scrub_cycles"`
	ScrubFlagged int64 `json:"scrub_flagged"`
	ScrubZeroed  int64 `json:"scrub_zeroed"`
	// VerifyHits counts fetches answered by the epoch cache; VerifyScans
	// fetches that rescanned the layer; VerifyFlagged / VerifyZeroed what
	// the fetch-path scans caught.
	VerifyHits    int64 `json:"verify_hits"`
	VerifyScans   int64 `json:"verify_scans"`
	VerifyFlagged int64 `json:"verify_flagged"`
	VerifyZeroed  int64 `json:"verify_zeroed"`
	// Injections counts Inject calls (live attack rounds).
	Injections int64 `json:"injections"`
	// Rekeys counts live admin re-keyings of this model's secrets.
	Rekeys int64 `json:"rekeys"`
	// ProtectorScans etc. mirror core.Protector.Stats for the whole
	// protector (scrubber + verified fetch combined).
	ProtectorScans  int64 `json:"protector_scans"`
	GroupsFlagged   int64 `json:"groups_flagged"`
	GroupsRecovered int64 `json:"groups_recovered"`
	// GroupsCorrected / GroupsZeroed split recoveries between the ECC
	// in-place repair path and the zeroing fallback (corrected is always 0
	// for models hosted without correction).
	GroupsCorrected int64 `json:"groups_corrected"`
	GroupsZeroed    int64 `json:"groups_zeroed"`
	WeightsZeroed   int64 `json:"weights_zeroed"`
	// ScanBytes counts weight bytes covered by all protection scans;
	// ScanBytesPerSec divides it by uptime — the sustained scan throughput
	// the SWAR kernel delivers on this server.
	ScanBytes       int64   `json:"scan_bytes"`
	ScanBytesPerSec float64 `json:"scan_bytes_per_sec"`
}

// Snapshot exports the current metrics. Safe to call at any time,
// including while traffic and scrubbing are live.
func (s *Server) Snapshot() Snapshot {
	st := s.prot.Stats()
	snap := Snapshot{
		Requests:        s.met.requests.Value(),
		Batches:         s.met.batches.Value(),
		Cancelled:       s.met.cancelled.Value(),
		P50Ms:           s.met.latency.Quantile(0.50) * 1e3,
		P99Ms:           s.met.latency.Quantile(0.99) * 1e3,
		ScrubCycles:     s.met.scrubCycles.Value(),
		ScrubFlagged:    s.met.scrubFlagged.Value(),
		ScrubZeroed:     s.met.scrubZeroed.Value(),
		VerifyHits:      s.met.verifyHits.Value(),
		VerifyScans:     s.met.verifyScans.Value(),
		VerifyFlagged:   s.met.verifyFlagged.Value(),
		VerifyZeroed:    s.met.verifyZeroed.Value(),
		Injections:      s.met.injections.Value(),
		Rekeys:          s.met.rekeys.Value(),
		ProtectorScans:  st.Scans,
		GroupsFlagged:   st.GroupsFlagged,
		GroupsRecovered: st.GroupsRecovered,
		GroupsCorrected: st.GroupsCorrected,
		GroupsZeroed:    st.GroupsZeroed,
		WeightsZeroed:   st.WeightsZeroed,
		ScanBytes:       st.BytesScanned,
	}
	if !s.start.IsZero() {
		snap.UptimeSeconds = time.Since(s.start).Seconds()
		if snap.UptimeSeconds > 0 {
			snap.ScanBytesPerSec = float64(snap.ScanBytes) / snap.UptimeSeconds
		}
	}
	if snap.Batches > 0 {
		snap.AvgBatch = float64(s.met.batched.Value()) / float64(snap.Batches)
	}
	return snap
}
