package serve

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// latencySamples is the size of the end-to-end latency reservoir the
// quantile snapshot is computed over (a ring of the most recent requests).
const latencySamples = 4096

// metrics holds the server's live counters. All fields are updated with
// atomics (or under the ring's own mutex), so the hot paths never share a
// lock with the snapshot reader.
type metrics struct {
	requests, batches, batched  atomic.Int64
	cancelled                   atomic.Int64
	scrubCycles                 atomic.Int64
	scrubFlagged, scrubZeroed   atomic.Int64
	verifyHits, verifyScans     atomic.Int64
	verifyFlagged, verifyZeroed atomic.Int64
	injections                  atomic.Int64
	rekeys                      atomic.Int64

	mu  sync.Mutex
	lat []time.Duration // ring buffer of recent request latencies
	idx int
	n   int
}

func newMetrics() *metrics {
	return &metrics{lat: make([]time.Duration, latencySamples)}
}

// observeLatency records one request's enqueue-to-answer latency.
func (m *metrics) observeLatency(d time.Duration) {
	m.mu.Lock()
	m.lat[m.idx] = d
	m.idx = (m.idx + 1) % len(m.lat)
	if m.n < len(m.lat) {
		m.n++
	}
	m.mu.Unlock()
}

// quantiles returns the requested latency quantiles (q in [0,1]) over the
// reservoir, or zeros when no requests have completed.
func (m *metrics) quantiles(qs ...float64) []time.Duration {
	m.mu.Lock()
	sorted := append([]time.Duration(nil), m.lat[:m.n]...)
	m.mu.Unlock()
	out := make([]time.Duration, len(qs))
	if len(sorted) == 0 {
		return out
	}
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	for i, q := range qs {
		k := int(q * float64(len(sorted)-1))
		out[i] = sorted[k]
	}
	return out
}

// Snapshot is a point-in-time export of the server's metrics, shaped for
// JSON (the /metrics endpoint and the servescale benchmark artifact).
type Snapshot struct {
	// UptimeSeconds is the time since Start.
	UptimeSeconds float64 `json:"uptime_seconds"`
	// Requests counts answered requests; Batches the forward passes that
	// carried them; AvgBatch their ratio.
	Requests int64   `json:"requests"`
	Batches  int64   `json:"batches"`
	AvgBatch float64 `json:"avg_batch"`
	// Cancelled counts requests dropped before their forward pass because
	// the submitter's context was cancelled while they waited in the queue.
	Cancelled int64 `json:"cancelled"`
	// P50Ms / P99Ms are end-to-end request latency quantiles over the most
	// recent requests (enqueue to answer, including batching wait).
	P50Ms float64 `json:"p50_ms"`
	P99Ms float64 `json:"p99_ms"`
	// ScrubCycles counts scrubber cycles; ScrubFlagged / ScrubZeroed what
	// they found and repaired.
	ScrubCycles  int64 `json:"scrub_cycles"`
	ScrubFlagged int64 `json:"scrub_flagged"`
	ScrubZeroed  int64 `json:"scrub_zeroed"`
	// VerifyHits counts fetches answered by the epoch cache; VerifyScans
	// fetches that rescanned the layer; VerifyFlagged / VerifyZeroed what
	// the fetch-path scans caught.
	VerifyHits    int64 `json:"verify_hits"`
	VerifyScans   int64 `json:"verify_scans"`
	VerifyFlagged int64 `json:"verify_flagged"`
	VerifyZeroed  int64 `json:"verify_zeroed"`
	// Injections counts Inject calls (live attack rounds).
	Injections int64 `json:"injections"`
	// Rekeys counts live admin re-keyings of this model's secrets.
	Rekeys int64 `json:"rekeys"`
	// ProtectorScans etc. mirror core.Protector.Stats for the whole
	// protector (scrubber + verified fetch combined).
	ProtectorScans  int64 `json:"protector_scans"`
	GroupsFlagged   int64 `json:"groups_flagged"`
	GroupsRecovered int64 `json:"groups_recovered"`
	WeightsZeroed   int64 `json:"weights_zeroed"`
	// ScanBytes counts weight bytes covered by all protection scans;
	// ScanBytesPerSec divides it by uptime — the sustained scan throughput
	// the SWAR kernel delivers on this server.
	ScanBytes       int64   `json:"scan_bytes"`
	ScanBytesPerSec float64 `json:"scan_bytes_per_sec"`
}

// Snapshot exports the current metrics. Safe to call at any time,
// including while traffic and scrubbing are live.
func (s *Server) Snapshot() Snapshot {
	qs := s.met.quantiles(0.50, 0.99)
	st := s.prot.Stats()
	snap := Snapshot{
		Requests:        s.met.requests.Load(),
		Batches:         s.met.batches.Load(),
		Cancelled:       s.met.cancelled.Load(),
		P50Ms:           float64(qs[0]) / float64(time.Millisecond),
		P99Ms:           float64(qs[1]) / float64(time.Millisecond),
		ScrubCycles:     s.met.scrubCycles.Load(),
		ScrubFlagged:    s.met.scrubFlagged.Load(),
		ScrubZeroed:     s.met.scrubZeroed.Load(),
		VerifyHits:      s.met.verifyHits.Load(),
		VerifyScans:     s.met.verifyScans.Load(),
		VerifyFlagged:   s.met.verifyFlagged.Load(),
		VerifyZeroed:    s.met.verifyZeroed.Load(),
		Injections:      s.met.injections.Load(),
		Rekeys:          s.met.rekeys.Load(),
		ProtectorScans:  st.Scans,
		GroupsFlagged:   st.GroupsFlagged,
		GroupsRecovered: st.GroupsRecovered,
		WeightsZeroed:   st.WeightsZeroed,
		ScanBytes:       st.BytesScanned,
	}
	if !s.start.IsZero() {
		snap.UptimeSeconds = time.Since(s.start).Seconds()
		if snap.UptimeSeconds > 0 {
			snap.ScanBytesPerSec = float64(snap.ScanBytes) / snap.UptimeSeconds
		}
	}
	if snap.Batches > 0 {
		snap.AvgBatch = float64(s.met.batched.Load()) / float64(snap.Batches)
	}
	return snap
}
