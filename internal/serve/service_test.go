package serve

import (
	"context"
	"errors"
	"reflect"
	"testing"
	"time"

	"radar/internal/core"
	"radar/internal/model"
	"radar/internal/qinfer"
	"radar/internal/quant"
	"radar/internal/tensor"
)

// tinyModelOption builds one independent tiny-model registration (fresh
// bundle per call, so tests may corrupt weights freely) and returns the
// bundle + protector alongside the option.
func tinyModelOption(t testing.TB, name string, opts ...ModelOption) (ServiceOption, *model.Bundle, *core.Protector) {
	t.Helper()
	b := model.Load(model.TinySpec())
	calib, _ := b.Attack.Batch(0, 64)
	eng, err := qinfer.Compile(b.Net, b.QModel, calib)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	prot := core.Protect(b.QModel, core.DefaultConfig(4))
	all := append([]ModelOption{
		WithInputShape(b.Spec.Data.Channels, b.Spec.Data.Size, b.Spec.Data.Size),
	}, opts...)
	return WithModel(name, eng, prot, all...), b, prot
}

// openTiny opens a service hosting n independent tiny models named
// m0..m{n-1}, with per-model extra options applied to all of them.
func openTiny(t testing.TB, n int, extra []ModelOption, svcOpts ...ServiceOption) (*Service, []*model.Bundle, []*core.Protector) {
	t.Helper()
	names := []string{"m0", "m1", "m2"}[:n]
	bundles := make([]*model.Bundle, n)
	prots := make([]*core.Protector, n)
	opts := append([]ServiceOption(nil), svcOpts...)
	for i, name := range names {
		var o ServiceOption
		o, bundles[i], prots[i] = tinyModelOption(t, name, extra...)
		opts = append(opts, o)
	}
	svc, err := Open(opts...)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	t.Cleanup(svc.Close)
	return svc, bundles, prots
}

// wedge write-locks every layer of the named model so its inference
// workers (and verifier) block, letting tests saturate queues
// deterministically. The returned func releases the wedge.
func wedge(t testing.TB, svc *Service, name string) func() {
	t.Helper()
	hm, err := svc.reg.lookup(name)
	if err != nil {
		t.Fatalf("lookup %q: %v", name, err)
	}
	hm.srv.guard.LockAll()
	released := false
	return func() {
		if !released {
			released = true
			hm.srv.guard.UnlockAll()
		}
	}
}

func TestOpenValidation(t *testing.T) {
	if _, err := Open(); err == nil {
		t.Fatal("Open with no models succeeded")
	}
	o1, _, _ := tinyModelOption(t, "dup")
	o2, _, _ := tinyModelOption(t, "dup")
	if _, err := Open(o1, o2); err == nil {
		t.Fatal("duplicate model names accepted")
	}
	bad, _, _ := tinyModelOption(t, "no/slashes")
	if _, err := Open(bad); err == nil {
		t.Fatal("non-URL-safe model name accepted")
	}
	if _, err := Open(WithModel("x", nil, nil)); err == nil {
		t.Fatal("nil engine/protector accepted")
	}
	if _, err := Open(WithJobCapacity(0)); err == nil {
		t.Fatal("zero job capacity accepted")
	}
}

// TestTwoModelsConcurrent serves two independently protected models from
// one service and checks that routed answers match each model's direct
// engine output, batch queues and metrics stay separate, and unknown
// names fail typed.
func TestTwoModelsConcurrent(t *testing.T) {
	o0, b0, _ := tinyModelOption(t, "m0")
	o1, b1, _ := tinyModelOption(t, "m1")

	// Reference answers before the engines are handed to the service.
	refs := make([]*tensor.Tensor, 2)
	for i, b := range []*model.Bundle{b0, b1} {
		calib, _ := b.Attack.Batch(0, 64)
		eng, err := qinfer.Compile(b.Net, b.QModel, calib)
		if err != nil {
			t.Fatal(err)
		}
		x, _ := b.Test.Batch(0, 8)
		refs[i] = eng.Forward(x)
	}

	svc, err := Open(o0, o1)
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	ctx := context.Background()
	x0, _ := b0.Test.Batch(0, 8)
	x1, _ := b1.Test.Batch(0, 8)
	type answer struct {
		model int
		idx   int
		res   Result
	}
	results := make(chan answer, 16)
	for i := 0; i < 8; i++ {
		go func(i int) {
			res, err := svc.Infer(ctx, Request{Model: "m0", Input: sample(x0, i)})
			if err != nil {
				t.Errorf("m0 %d: %v", i, err)
			}
			results <- answer{0, i, res}
		}(i)
		go func(i int) {
			res, err := svc.Infer(ctx, Request{Model: "m1", Input: sample(x1, i)})
			if err != nil {
				t.Errorf("m1 %d: %v", i, err)
			}
			results <- answer{1, i, res}
		}(i)
	}
	for n := 0; n < 16; n++ {
		a := <-results
		ref := refs[a.model]
		k := ref.Shape[1]
		if want := ref.Argmax(a.idx*k, k); a.res.Class != want {
			t.Fatalf("model m%d input %d: served class %d, direct engine %d",
				a.model, a.idx, a.res.Class, want)
		}
	}

	infos := svc.Models()
	if len(infos) != 2 || infos[0].Name != "m0" || infos[1].Name != "m1" {
		t.Fatalf("Models(): %+v", infos)
	}
	for _, info := range infos {
		if info.Metrics.Requests != 8 {
			t.Fatalf("model %s counted %d requests, want 8 (metrics must be per-model)",
				info.Name, info.Metrics.Requests)
		}
	}

	if _, err := svc.Infer(ctx, Request{Model: "nope", Input: sample(x0, 0)}); !errors.Is(err, ErrUnknownModel) {
		t.Fatalf("unknown model returned %v, want ErrUnknownModel", err)
	}
	// The empty name routes to the default (first-registered) model.
	if _, err := svc.Infer(ctx, Request{Input: sample(x0, 0)}); err != nil {
		t.Fatalf("default-model routing failed: %v", err)
	}
}

// TestIndependentScrubLoops: two live scrubbers, one per model; an attack
// on m0 is caught by m0's loop while m1's loop keeps cycling without ever
// flagging anything.
func TestIndependentScrubLoops(t *testing.T) {
	svc, _, _ := openTiny(t, 2, []ModelOption{
		WithScrub(2*time.Millisecond, 4),
		WithVerifiedFetch(false), // isolate the scrubbers
	})

	if err := svc.Inject("m0", func(m *quant.Model) {
		m.FlipBit(quant.BitAddress{LayerIndex: 0, WeightIndex: 5, Bit: quant.MSB})
	}); err != nil {
		t.Fatal(err)
	}

	deadline := time.Now().Add(10 * time.Second)
	for {
		snap, err := svc.Snapshot("m0")
		if err != nil {
			t.Fatal(err)
		}
		if snap.ScrubFlagged > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("m0's scrubber never caught the flip: %+v", snap)
		}
		time.Sleep(2 * time.Millisecond)
	}
	// m1's loop must cycle on its own schedule — and stay clean.
	var s1 Snapshot
	for {
		var err error
		s1, err = svc.Snapshot("m1")
		if err != nil {
			t.Fatal(err)
		}
		if s1.ScrubCycles > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("m1's scrubber never ran — loops are not independent")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if s1.ScrubFlagged != 0 || s1.GroupsFlagged != 0 {
		t.Fatalf("attack on m0 leaked into m1's accounting: %+v", s1)
	}
}

// TestInferContextCancellation is the acceptance check: with the queue
// saturated (workers wedged, bounded queue full), a cancelled context
// must make Infer return promptly instead of parking the caller.
func TestInferContextCancellation(t *testing.T) {
	svc, b, _ := openTiny(t, 1, []ModelOption{
		WithScrub(0, 0),
		WithWorkers(1),
		WithBatch(1, time.Millisecond),
		WithQueueDepth(1),
	})
	x, _ := b[0].Test.Batch(0, 4)
	release := wedge(t, svc, "m0")
	defer release()

	// Saturate: non-blocking submissions until the bounded queue refuses.
	deadline := time.Now().Add(10 * time.Second)
	for {
		_, err := svc.Submit(context.Background(), Request{Input: sample(x, 0)})
		if errors.Is(err, ErrQueueFull) {
			break
		}
		if err != nil {
			t.Fatalf("Submit: %v", err)
		}
		if time.Now().After(deadline) {
			t.Fatal("queue never saturated")
		}
	}

	// Already-cancelled context: the submit select must bail immediately.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	t0 := time.Now()
	if _, err := svc.Infer(ctx, Request{Input: sample(x, 1)}); !errors.Is(err, context.Canceled) {
		t.Fatalf("Infer on saturated queue returned %v, want context.Canceled", err)
	}
	if dt := time.Since(t0); dt > time.Second {
		t.Fatalf("cancelled Infer took %v to return", dt)
	}

	// Cancellation mid-flight: a request already accepted into the queue
	// must abandon its wait when the context dies.
	ctx2, cancel2 := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel2()
	t0 = time.Now()
	if _, err := svc.Infer(ctx2, Request{Input: sample(x, 2)}); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("deadline-bound Infer returned %v, want DeadlineExceeded", err)
	}
	if dt := time.Since(t0); dt > 5*time.Second {
		t.Fatalf("deadline-bound Infer took %v to return", dt)
	}

	release()
	// Drain so Close (t.Cleanup) does not inherit a wedged queue; the
	// cancelled requests are dropped by the workers without computation.
	snap, _ := svc.Snapshot("m0")
	_ = snap
}

// TestStoppingTyped: submissions racing Close fail with ErrStopping
// (errors.Is-able), on both the sync and async paths.
func TestStoppingTyped(t *testing.T) {
	svc, b, _ := openTiny(t, 1, []ModelOption{WithScrub(0, 0)})
	x, _ := b[0].Test.Batch(0, 1)
	svc.Close()
	if _, err := svc.Infer(context.Background(), Request{Input: sample(x, 0)}); !errors.Is(err, ErrStopping) {
		t.Fatalf("Infer after Close returned %v, want ErrStopping", err)
	}
	if _, err := svc.Submit(context.Background(), Request{Input: sample(x, 0)}); !errors.Is(err, ErrStopping) {
		t.Fatalf("Submit after Close returned %v, want ErrStopping", err)
	}
	svc.Close() // idempotent
}

// TestRekeyLive rotates a serving model's secrets mid-traffic: the
// schemes must actually change, answers must be unaffected, and a flip
// mounted after the rekey must still be detected and recovered by the
// new golden signatures.
func TestRekeyLive(t *testing.T) {
	svc, b, prots := openTiny(t, 1, []ModelOption{WithScrub(0, 0)})
	prot := prots[0]
	x, _ := b[0].Test.Batch(0, 4)
	ctx := context.Background()

	base, err := svc.Infer(ctx, Request{Input: sample(x, 0)})
	if err != nil {
		t.Fatal(err)
	}
	before := append([]core.Scheme(nil), prot.Schemes...)

	reports, err := svc.Rekey("m0")
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 1 || !reports[0].Rekeyed {
		t.Fatalf("rekey reports: %+v", reports)
	}
	if reflect.DeepEqual(before, prot.Schemes) {
		t.Fatal("rekey did not rotate the per-layer secrets")
	}

	// Clean weights + fresh golden: same answer, no false flags.
	res, err := svc.Infer(ctx, Request{Input: sample(x, 0)})
	if err != nil {
		t.Fatal(err)
	}
	if res.Class != base.Class {
		t.Fatalf("rekey changed a clean answer: %d -> %d", base.Class, res.Class)
	}
	snap, _ := svc.Snapshot("m0")
	if snap.VerifyFlagged != 0 {
		t.Fatalf("rekey produced false positives: %+v", snap)
	}

	// The new signatures must still defend the image.
	if err := svc.Inject("m0", func(m *quant.Model) {
		m.FlipBit(quant.BitAddress{LayerIndex: 0, WeightIndex: 3, Bit: quant.MSB})
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Infer(ctx, Request{Input: sample(x, 1)}); err != nil {
		t.Fatal(err)
	}
	snap, _ = svc.Snapshot("m0")
	if snap.VerifyFlagged == 0 || snap.VerifyZeroed == 0 {
		t.Fatalf("post-rekey flip was not detected: %+v", snap)
	}
	if flagged, _ := prot.DetectAndRecover(); len(flagged) != 0 {
		t.Fatalf("post-rekey corruption survived: %v", flagged)
	}

	snap, _ = svc.Snapshot("m0")
	if snap.Rekeys != 1 {
		t.Fatalf("rekey metric %d, want 1", snap.Rekeys)
	}
}

// TestAdminScrubAllModels: an empty model name fans the admin scrub out
// to every hosted model, and only the corrupted one reports findings —
// including corruption written past the model API (a true hardware flip).
func TestAdminScrubAllModels(t *testing.T) {
	svc, b, _ := openTiny(t, 2, []ModelOption{WithScrub(0, 0), WithVerifiedFetch(false)})
	l := b[0].QModel.Layers[1]
	if err := svc.Inject("m0", func(m *quant.Model) {
		l.Q[7] = quant.FlipBit(l.Q[7], quant.MSB) // direct write, no notify
	}); err != nil {
		t.Fatal(err)
	}
	reports, err := svc.Scrub("", true)
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 2 {
		t.Fatalf("scrub \"\" hit %d models, want 2", len(reports))
	}
	if reports[0].Model != "m0" || reports[0].Flagged == 0 || reports[0].Zeroed == 0 {
		t.Fatalf("m0's corruption missed: %+v", reports[0])
	}
	if reports[1].Model != "m1" || reports[1].Flagged != 0 {
		t.Fatalf("m1 falsely flagged: %+v", reports[1])
	}
	if _, err := svc.Scrub("nope", true); !errors.Is(err, ErrUnknownModel) {
		t.Fatalf("scrub of unknown model: %v", err)
	}
}

// TestHotAddRemoveModel grows and shrinks a running service's model set:
// an added model serves immediately, a removed model's name 404s while
// the survivors keep answering, and the structural guards (duplicate
// name, last model) fail typed.
func TestHotAddRemoveModel(t *testing.T) {
	svc, b, _ := openTiny(t, 1, []ModelOption{WithScrub(0, 0)})
	ctx := context.Background()
	x, _ := b[0].Test.Batch(0, 2)

	eng, prot, opts, err := tinyProvider("m9", "tiny")
	if err != nil {
		t.Fatal(err)
	}
	if err := svc.AddModel("m9", eng, prot, opts...); err != nil {
		t.Fatalf("AddModel: %v", err)
	}
	if _, err := svc.Infer(ctx, Request{Model: "m9", Input: sample(x, 0)}); err != nil {
		t.Fatalf("infer on hot-added model: %v", err)
	}
	if names := svc.reg.Names(); len(names) != 2 || names[1] != "m9" {
		t.Fatalf("registry after add: %v", names)
	}

	// Duplicate name is refused and must not wedge the fresh runtime.
	eng2, prot2, opts2, _ := tinyProvider("m9", "tiny")
	if err := svc.AddModel("m9", eng2, prot2, opts2...); !errors.Is(err, ErrModelExists) {
		t.Fatalf("duplicate AddModel: %v, want ErrModelExists", err)
	}

	if err := svc.RemoveModel("m9"); err != nil {
		t.Fatalf("RemoveModel: %v", err)
	}
	if _, err := svc.Infer(ctx, Request{Model: "m9", Input: sample(x, 0)}); !errors.Is(err, ErrUnknownModel) {
		t.Fatalf("infer on removed model: %v, want ErrUnknownModel", err)
	}
	if _, err := svc.Infer(ctx, Request{Model: "m0", Input: sample(x, 1)}); err != nil {
		t.Fatalf("survivor stopped serving after a remove: %v", err)
	}
	if err := svc.RemoveModel("m0"); !errors.Is(err, ErrLastModel) {
		t.Fatalf("removing the last model: %v, want ErrLastModel", err)
	}
	if err := svc.RemoveModel("ghost"); !errors.Is(err, ErrUnknownModel) {
		t.Fatalf("removing unknown model: %v, want ErrUnknownModel", err)
	}
}

// TestRemoveDefaultPromotes: removing the default (first-registered) model
// promotes the next-oldest registration, so the empty-name route always
// resolves.
func TestRemoveDefaultPromotes(t *testing.T) {
	svc, b, _ := openTiny(t, 2, []ModelOption{WithScrub(0, 0)})
	ctx := context.Background()
	x, _ := b[0].Test.Batch(0, 1)

	if err := svc.RemoveModel("m0"); err != nil {
		t.Fatalf("RemoveModel(m0): %v", err)
	}
	res, err := svc.Infer(ctx, Request{Input: sample(x, 0)})
	if err != nil {
		t.Fatalf("default route after removing the default: %v", err)
	}
	want, err := svc.Infer(ctx, Request{Model: "m1", Input: sample(x, 0)})
	if err != nil {
		t.Fatal(err)
	}
	if res.Class != want.Class {
		t.Fatalf("default did not promote to m1: class %d vs %d", res.Class, want.Class)
	}
}
