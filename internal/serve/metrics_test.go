package serve

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"testing"
	"time"

	"radar/internal/obs"
)

// TestQuantilesNearestRank pins the nearest-rank definition: the rank is
// ceil(q·n), so p99 over ten samples is the maximum, not one order
// statistic short of it (the old int(q·(n-1)) truncation returned 9ms
// here).
func TestQuantilesNearestRank(t *testing.T) {
	samples := make([]time.Duration, 10)
	for i := range samples {
		samples[i] = time.Duration(i+1) * time.Millisecond
	}
	got := quantiles(samples, 0.50, 0.90, 0.99, 1.0)
	want := []time.Duration{5 * time.Millisecond, 9 * time.Millisecond, 10 * time.Millisecond, 10 * time.Millisecond}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("quantile %d: got %v, want %v", i, got[i], want[i])
		}
	}
	if out := quantiles(nil, 0.5); out[0] != 0 {
		t.Errorf("empty samples: got %v, want 0", out[0])
	}
	if out := quantiles([]time.Duration{7 * time.Millisecond}, 0, 0.99); out[0] != 7*time.Millisecond || out[1] != 7*time.Millisecond {
		t.Errorf("single sample: got %v", out)
	}
}

// metricNameRE is the repo's naming convention: radar_ prefix, lowercase
// snake case, with the unit suffix (_total, _seconds, _bytes) optional —
// gauges and histogram families carry none.
var metricNameRE = regexp.MustCompile(`^radar_[a-z0-9]+(_[a-z0-9]+)*(_total|_seconds|_bytes)?$`)

// TestMetricNamingLint walks every family the service registers and
// rejects names outside the convention before they ship to a scraper.
func TestMetricNamingLint(t *testing.T) {
	svc, _, _ := openTiny(t, 1, []ModelOption{WithScrub(0, 0)})
	defer svc.Close()
	names := svc.MetricNames()
	if len(names) == 0 {
		t.Fatal("service registered no metric families")
	}
	for _, name := range names {
		if !metricNameRE.MatchString(name) {
			t.Errorf("metric family %q violates the radar_ naming convention", name)
		}
	}
	// The recovery-split and adversary families are load-bearing for the
	// smoke tooling; their absence is a wiring bug, not a style issue.
	have := make(map[string]bool, len(names))
	for _, name := range names {
		have[name] = true
	}
	for _, want := range []string{
		"radar_groups_corrected_total",
		"radar_groups_zeroed_total",
		"radar_adversary_flips_total",
	} {
		if !have[want] {
			t.Errorf("metric family %q is not registered", want)
		}
	}
}

// TestHTTPMetricsAndTraces drives the two observability endpoints over the
// wire: /v1/metrics answers the Prometheus content type with live series,
// and /v1/debug/traces returns JSON stage timings for requests that
// carried an X-Request-Id through the batch pipeline.
func TestHTTPMetricsAndTraces(t *testing.T) {
	svc, b, _ := openTiny(t, 1, []ModelOption{WithScrub(0, 0)})
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()
	x, _ := b[0].Test.Batch(0, 1)
	body := tinyBody(t, sample(x, 0))

	resp, err := http.Post(ts.URL+"/v1/models/m0/infer", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("warmup infer: %d", resp.StatusCode)
	}
	if resp.Header.Get(RequestIDHeader) == "" {
		t.Fatal("infer response carries no X-Request-Id")
	}

	resp, err = http.Get(ts.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/metrics → %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != obs.ExpositionContentType {
		t.Fatalf("metrics content type %q, want %q", ct, obs.ExpositionContentType)
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	text := string(raw)
	for _, want := range []string{
		`radar_requests_total{model="m0"} 1`,
		`# TYPE radar_request_latency_seconds histogram`,
		`radar_request_latency_seconds_bucket{model="m0",le="+Inf"} 1`,
		`radar_queue_depth{model="m0"}`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q", want)
		}
	}

	resp, err = http.Get(ts.URL + "/v1/debug/traces?n=8")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/debug/traces → %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Fatalf("traces content type %q, want application/json", ct)
	}
	var traces TracesResponse
	if err := json.NewDecoder(resp.Body).Decode(&traces); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if traces.Count != 1 || len(traces.Traces) != 1 {
		t.Fatalf("traces response: %+v", traces)
	}
	tr := traces.Traces[0]
	if tr.ID == "" || tr.Model != "m0" {
		t.Fatalf("trace identity: %+v", tr)
	}
	stages := make(map[string]bool, len(tr.Stages))
	for _, st := range tr.Stages {
		stages[st.Name] = true
	}
	for _, want := range []string{"queue", "batch", "verify", "forward"} {
		if !stages[want] {
			t.Errorf("trace missing stage %q (have %v)", want, tr.Stages)
		}
	}

	// Bad n → 400.
	resp, err = http.Get(ts.URL + "/v1/debug/traces?n=zero")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad n → %d, want 400", resp.StatusCode)
	}
}
