// Package radar is the public API of the RADAR reproduction — a run-time
// adversarial weight-attack detection and accuracy-recovery scheme for
// 8-bit quantized neural networks (Li et al., DATE 2021).
//
// The typical round trip:
//
//	qm := radar.Quantize(net)                     // int8 DRAM image of a trained model
//	p := radar.Protect(qm, radar.DefaultConfig(512)) // golden signatures in secure storage
//	...                                           // adversary flips bits in qm
//	flagged, zeroed := p.DetectAndRecover()       // scan, zero corrupted groups
//
// Scanning is parallel: Protect, Scan, ScanLayer, and RefreshAll shard each
// layer's group range across a bounded worker pool sized by Config.Workers
// (default: one worker per CPU), and DetectAndRecover overlaps scanning the
// next layer with recovering the previous one. Flagged groups come back
// sorted by layer then group and are byte-identical for every worker count.
// Protector.ScanDirty is the incremental variant: the protector observes
// writes made through the QuantModel API and re-scans only the layers
// touched since their last scan, skipping clean layers entirely.
//
// For deployment, serving.go re-exports the protected inference service
// (internal/serve): OpenService hosts any number of protected int8 models
// behind one context-aware client surface — sync Infer with deadlines
// honored into the batch queue, an async job API (Submit/Poll/Wait), and
// a versioned HTTP control plane with live admin scrub/rekey.
//
// The heavy machinery lives in internal packages: internal/core (the
// scheme), internal/quant (quantization and bit manipulation), internal/nn
// and internal/tensor (the inference/training stack), internal/attack
// (PBFA), internal/ecc (CRC/Hamming baselines), internal/memsim (timing
// simulation) and internal/rowhammer (DRAM fault injection). This package
// re-exports the stable surface a downstream user needs.
package radar

import (
	"radar/internal/core"
	"radar/internal/nn"
	"radar/internal/quant"
)

// Config selects the model-wide RADAR parameters; see core.Config.
type Config = core.Config

// Protector binds golden signatures to a quantized model; see
// core.Protector.
type Protector = core.Protector

// Scheme is the per-layer grouping/masking/signature configuration; see
// core.Scheme.
type Scheme = core.Scheme

// GroupID identifies one checksum group of a protected model.
type GroupID = core.GroupID

// StorageBreakdown itemizes secure-storage costs.
type StorageBreakdown = core.StorageBreakdown

// QuantModel is the int8 weight image of a network; see quant.Model.
type QuantModel = quant.Model

// BitAddress identifies one bit of one quantized weight.
type BitAddress = quant.BitAddress

// SecureStore is the serialized secure-storage image of a protector; see
// core.SecureStore.
type SecureStore = core.SecureStore

// DefaultConfig returns the paper's standard configuration for a group
// size: interleaving enabled, 2-bit signatures. Set Config.Workers to
// bound the scan engine's worker pool (zero means one worker per CPU).
func DefaultConfig(g int) Config { return core.DefaultConfig(g) }

// UnsealProtector reconstructs a protector for m from sealed secure-store
// state (the inverse of Protector.Seal).
func UnsealProtector(m *QuantModel, store SecureStore) (*Protector, error) {
	return core.UnsealProtector(m, store)
}

// Protect computes golden signatures for every quantized layer of m.
func Protect(m *QuantModel, cfg Config) *Protector { return core.Protect(m, cfg) }

// Quantize converts every conv/linear weight of net to an int8 symmetric
// quantized image wired back into the float network.
func Quantize(net *nn.Sequential) *QuantModel { return quant.Quantize(net) }

// StorageForWeights computes the signature storage for a layer-size
// inventory without instantiating a model (e.g. for capacity planning).
func StorageForWeights(layerWeights []int, g, sigBits int, interleave bool) StorageBreakdown {
	return core.StorageForWeights(layerWeights, g, sigBits, interleave)
}
