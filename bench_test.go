// Benchmarks regenerating every table and figure of the paper (DESIGN.md
// §3 maps experiment ids to modules). The statistical experiments run at
// the Quick scale here so `go test -bench=.` finishes in minutes; the
// EXPERIMENTS.md numbers come from `radar-bench -scale full`, which runs
// the identical code at the paper's round counts. Each benchmark logs the
// rendered artifact so the rows/series are visible in the bench output.
package radar_test

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"radar"
	"radar/internal/attack"
	"radar/internal/core"
	"radar/internal/ecc"
	"radar/internal/exp"
	"radar/internal/memsim"
	"radar/internal/model"
	"radar/internal/qinfer"
	"radar/internal/quant"
	"radar/internal/serve"
	"radar/internal/tensor"
)

var (
	ctxOnce  sync.Once
	benchCtx *exp.Context
)

// sharedCtx lazily builds one Quick-scale experiment context; the PBFA
// profiles it caches are shared by every table/figure benchmark.
func sharedCtx(b *testing.B) *exp.Context {
	b.Helper()
	ctxOnce.Do(func() { benchCtx = exp.NewContext(exp.Quick()) })
	return benchCtx
}

func BenchmarkTableI(b *testing.B) {
	ctx := sharedCtx(b)
	var out string
	for i := 0; i < b.N; i++ {
		out = exp.TableI(ctx).Render()
	}
	b.Log("\n" + out)
}

func BenchmarkTableII(b *testing.B) {
	ctx := sharedCtx(b)
	var out string
	for i := 0; i < b.N; i++ {
		out = exp.TableII(ctx).Render()
	}
	b.Log("\n" + out)
}

func BenchmarkFigure2(b *testing.B) {
	ctx := sharedCtx(b)
	var out string
	for i := 0; i < b.N; i++ {
		out = exp.Figure2(ctx).Render()
	}
	b.Log("\n" + out)
}

func BenchmarkFigure4(b *testing.B) {
	ctx := sharedCtx(b)
	var out string
	for i := 0; i < b.N; i++ {
		out = exp.Figure4(ctx).Render()
	}
	b.Log("\n" + out)
}

func BenchmarkMissRate(b *testing.B) {
	opt := exp.Quick()
	var out string
	for i := 0; i < b.N; i++ {
		out = exp.MissRate(opt).Render()
	}
	b.Log("\n" + out)
}

func BenchmarkTableIII(b *testing.B) {
	ctx := sharedCtx(b)
	var out string
	for i := 0; i < b.N; i++ {
		out = exp.TableIII(ctx).Render()
	}
	b.Log("\n" + out)
}

func BenchmarkFigure5(b *testing.B) {
	ctx := sharedCtx(b)
	t3 := exp.TableIII(ctx)
	var out string
	for i := 0; i < b.N; i++ {
		out = exp.Figure5(t3).Render()
	}
	b.Log("\n" + out)
}

func BenchmarkFigure6(b *testing.B) {
	ctx := sharedCtx(b)
	var out string
	for i := 0; i < b.N; i++ {
		out = exp.Figure6(ctx).Render()
	}
	b.Log("\n" + out)
}

func BenchmarkTableIV(b *testing.B) {
	var out string
	for i := 0; i < b.N; i++ {
		out = exp.TableIV().Render()
	}
	b.Log("\n" + out)
}

func BenchmarkTableV(b *testing.B) {
	var out string
	for i := 0; i < b.N; i++ {
		out = exp.TableV().Render()
	}
	b.Log("\n" + out)
}

func BenchmarkFigure7(b *testing.B) {
	ctx := sharedCtx(b)
	var out string
	for i := 0; i < b.N; i++ {
		out = exp.Figure7(ctx).Render()
	}
	b.Log("\n" + out)
}

func BenchmarkMSB1(b *testing.B) {
	ctx := sharedCtx(b)
	var out string
	for i := 0; i < b.N; i++ {
		out = exp.MSB1(ctx).Render()
	}
	b.Log("\n" + out)
}

func BenchmarkRowhammer(b *testing.B) {
	ctx := sharedCtx(b)
	var out string
	for i := 0; i < b.N; i++ {
		out = exp.Rowhammer(ctx).Render()
	}
	b.Log("\n" + out)
}

func BenchmarkAblationMasking(b *testing.B) {
	opt := exp.Quick()
	var out string
	for i := 0; i < b.N; i++ {
		out = exp.MaskingAblation(opt).Render()
	}
	b.Log("\n" + out)
}

func BenchmarkAblationSigBits(b *testing.B) {
	opt := exp.Quick()
	var out string
	for i := 0; i < b.N; i++ {
		out = exp.SigBitsAblation(opt).Render()
	}
	b.Log("\n" + out)
}

func BenchmarkAblationBatch(b *testing.B) {
	var out string
	for i := 0; i < b.N; i++ {
		out = exp.BatchAmortization().Render()
	}
	b.Log("\n" + out)
}

// --- Throughput microbenchmarks (the raw costs Tables IV/V model) ---

// BenchmarkScan sweeps the parallel scan engine's worker pool (1/2/4/N)
// over a synthetic full-scale ResNet-18 ImageNet weight image (11.7M
// weights, the paper's G=512 deployment point). Each sub-benchmark
// verifies the flagged-group output is identical to the workers=1 sweep,
// so any scheduling nondeterminism fails the benchmark rather than
// skewing it.
func BenchmarkScan(b *testing.B) {
	qm := model.SyntheticQuant(model.ResNet18ImageNetShapes())
	cfg := radar.DefaultConfig(512)
	cfg.Workers = 1
	prot := radar.Protect(qm, cfg)
	model.ScatterMSBFlips(qm, 64) // real mismatches for the scan to report
	var baseline []radar.GroupID
	for _, w := range exp.ScanWorkerSweep() {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			prot.SetWorkers(w)
			b.SetBytes(int64(qm.TotalWeights()))
			b.ResetTimer()
			var flagged []radar.GroupID
			for i := 0; i < b.N; i++ {
				flagged = prot.Scan()
			}
			b.StopTimer()
			if baseline == nil {
				baseline = flagged
			}
			if len(flagged) != len(baseline) {
				b.Fatalf("workers=%d flagged %d groups, workers=1 flagged %d",
					w, len(flagged), len(baseline))
			}
			for i := range flagged {
				if flagged[i] != baseline[i] {
					b.Fatalf("workers=%d diverges from workers=1 at %d: %v vs %v",
						w, i, flagged[i], baseline[i])
				}
			}
		})
	}
}

// BenchmarkScanDirty measures the incremental scan: one layer dirtied per
// iteration, the rest skipped — the steady-state cost of guarding a model
// that receives sparse writes.
func BenchmarkScanDirty(b *testing.B) {
	qm := model.SyntheticQuant(model.ResNet18ImageNetShapes())
	prot := radar.Protect(qm, radar.DefaultConfig(512))
	b.SetBytes(int64(len(qm.Layers[0].Q)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		qm.Layers[0].Q[i%len(qm.Layers[0].Q)] ^= 0 // keep weights clean…
		prot.MarkLayerDirty(0)                     // …but force a layer-0 rescan
		if flagged := prot.ScanDirty(); len(flagged) != 0 {
			b.Fatal("clean model flagged")
		}
	}
}

// BenchmarkSignatureScan measures RADAR's software checksum throughput —
// the SWAR kernel — over a 4 MiB weight image at G=512, interleaved.
func BenchmarkSignatureScan(b *testing.B) {
	q := make([]int8, 1<<22) // 4 MiB layer
	for i := range q {
		q[i] = int8(i * 31)
	}
	s := core.Scheme{G: 512, Interleave: true, Offset: 3, Key: 0xBEEF, SigBits: 2}
	b.SetBytes(int64(len(q)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Signatures(q)
	}
}

// BenchmarkSignatureScanPlain is the non-interleaved variant.
func BenchmarkSignatureScanPlain(b *testing.B) {
	q := make([]int8, 1<<22)
	for i := range q {
		q[i] = int8(i * 31)
	}
	s := core.Scheme{G: 512, Offset: 3, Key: 0xBEEF, SigBits: 2}
	b.SetBytes(int64(len(q)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Signatures(q)
	}
}

// BenchmarkSignatureScanRef runs the retained scalar row-walk kernel over
// the same image — the in-tree "old kernel" baseline the SWAR speedup is
// measured against (see also BENCH_scanscale.json's kernels record).
func BenchmarkSignatureScanRef(b *testing.B) {
	q := make([]int8, 1<<22)
	for i := range q {
		q[i] = int8(i * 31)
	}
	s := core.Scheme{G: 512, Interleave: true, Offset: 3, Key: 0xBEEF, SigBits: 2}
	b.SetBytes(int64(len(q)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.SignaturesRangeRef(q, 0, s.NumGroups(len(q)))
	}
}

// BenchmarkSignatureScanPlainRef is the scalar non-interleaved baseline.
func BenchmarkSignatureScanPlainRef(b *testing.B) {
	q := make([]int8, 1<<22)
	for i := range q {
		q[i] = int8(i * 31)
	}
	s := core.Scheme{G: 512, Offset: 3, Key: 0xBEEF, SigBits: 2}
	b.SetBytes(int64(len(q)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.SignaturesRangeRef(q, 0, s.NumGroups(len(q)))
	}
}

// BenchmarkCRC13Scan measures the bit-serial CRC-13 baseline over the same
// volume — the software analogue of Table V's time comparison.
func BenchmarkCRC13Scan(b *testing.B) {
	q := make([]int8, 1<<22)
	for i := range q {
		q[i] = int8(i * 31)
	}
	b.SetBytes(int64(len(q)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for off := 0; off < len(q); off += 512 {
			ecc.CRC13.ComputeInt8(q[off : off+512])
		}
	}
}

// BenchmarkServe measures the serving subsystem's request throughput on
// the tiny zoo model with the background scrubber and the verified
// weight-fetch path toggled — the software cost of continuous protection
// on a live server (requests arrive from GOMAXPROCS parallel clients and
// are coalesced by the batcher). radar-bench -exp servescale runs the same
// sweep under an active adversary and emits machine-readable JSON.
func BenchmarkServe(b *testing.B) {
	configs := []struct {
		name          string
		scrub, verify bool
	}{
		{"scrub=off/verify=off", false, false},
		{"scrub=on/verify=off", true, false},
		{"scrub=off/verify=on", false, true},
		{"scrub=on/verify=on", true, true},
	}
	for _, c := range configs {
		b.Run(c.name, func(b *testing.B) {
			bundle := model.Load(model.TinySpec())
			calib, _ := bundle.Attack.Batch(0, 64)
			eng, err := qinfer.Compile(bundle.Net, bundle.QModel, calib)
			if err != nil {
				b.Fatal(err)
			}
			prot := radar.Protect(bundle.QModel, radar.DefaultConfig(8))
			cfg := serve.DefaultConfig()
			cfg.VerifiedFetch = c.verify
			if c.scrub {
				cfg.ScrubInterval = 2 * time.Millisecond
			} else {
				cfg.ScrubInterval = 0
			}
			svc, err := serve.Open(serve.WithModel("bench", eng, prot, serve.WithConfig(cfg)))
			if err != nil {
				b.Fatal(err)
			}
			defer svc.Close()
			x, _ := bundle.Test.Batch(0, 1)
			in := tensor.New(x.Shape[1:]...)
			copy(in.Data, x.Data)
			ctx := context.Background()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					if _, err := svc.Infer(ctx, serve.Request{Input: in}); err != nil {
						b.Error(err)
						return
					}
				}
			})
			b.StopTimer()
			snap, _ := svc.Snapshot("")
			if snap.AvgBatch > 0 {
				b.ReportMetric(snap.AvgBatch, "reqs/batch")
			}
		})
	}
}

// BenchmarkProtectorScan measures a full-model run-time scan on the
// trained ResNet-18 substitute.
func BenchmarkProtectorScan(b *testing.B) {
	bundle := model.Load(model.ResNet18sSpec())
	prot := radar.Protect(bundle.QModel, radar.DefaultConfig(17))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if flagged := prot.Scan(); len(flagged) != 0 {
			b.Fatal("clean model flagged")
		}
	}
}

// BenchmarkPBFAFlip measures the cost of one progressive bit-search step
// on the ResNet-20 substitute (gradient pass + candidate ranking + trials).
func BenchmarkPBFAFlip(b *testing.B) {
	bundle := model.Load(model.ResNet20sSpec())
	cfg := attack.DefaultConfig(1)
	cfg.NumFlips = 1
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		attack.PBFA(bundle.QModel, bundle.Attack, cfg)
	}
}

// BenchmarkInferenceRN20 measures eval-mode inference throughput of the
// scaled ResNet-20 (batch 100).
func BenchmarkInferenceRN20(b *testing.B) {
	bundle := model.Load(model.ResNet20sSpec())
	x, _ := bundle.Test.Batch(0, 100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bundle.Net.Forward(x, false)
	}
}

// BenchmarkMemsimRADAR measures the cost-model evaluation itself (cheap;
// exists so the Table IV pipeline has a perf guard).
func BenchmarkMemsimRADAR(b *testing.B) {
	tab := model.ResNet18ImageNetShapes()
	cm := memsim.DefaultCostModel()
	for i := 0; i < b.N; i++ {
		cm.SimulateRADAR(tab, memsim.RADARConfig{G: 512, Interleave: true, SigBits: 2})
	}
}

// BenchmarkQuantizeRN20 measures model quantization.
func BenchmarkQuantizeRN20(b *testing.B) {
	bundle := model.Load(model.ResNet20sSpec())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		quant.Quantize(bundle.Net)
	}
}
