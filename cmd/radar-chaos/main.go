// Command radar-chaos is a fault-injecting reverse proxy for chaos
// testing the fleet: it sits between radar-fleet and one radar-serve
// replica and injects gray failures — hangs, TCP resets, blackholes,
// 5xx bursts, added latency, trickled bodies — on a deterministic
// seeded schedule.
//
// Usage:
//
//	radar-chaos -target http://127.0.0.1:8080 [-addr :8580] [-seed 1]
//	            [-p-delay 0] [-p-hang 0] [-p-reset 0] [-p-blackhole 0]
//	            [-p-err5xx 0] [-p-slowbody 0]
//	            [-delay-for 100ms] [-hang-for 0] [-slowbody-pause 20ms]
//
// All probabilities default to 0 — a freshly started radar-chaos is a
// pass-through proxy. Swap the fault mix at runtime:
//
//	curl -XPOST localhost:8580/chaos/config -d '{"hang":0.2,"hang_for":2000000000}'
//	curl localhost:8580/chaos/stats
//
// The /chaos/* control plane is answered locally and never faulted.
package main

import (
	"context"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"radar/internal/chaos"
)

func main() {
	var (
		addr   = flag.String("addr", ":8580", "HTTP listen address")
		target = flag.String("target", "", "backend base URL to proxy to (required)")
		seed   = flag.Int64("seed", 1, "seed for the deterministic fault schedule")

		pDelay     = flag.Float64("p-delay", 0, "per-request probability of added latency")
		pHang      = flag.Float64("p-hang", 0, "per-request probability of hanging without answering")
		pReset     = flag.Float64("p-reset", 0, "per-request probability of a TCP reset")
		pBlackhole = flag.Float64("p-blackhole", 0, "per-request probability of a blackhole (unread, unanswered)")
		pErr5xx    = flag.Float64("p-err5xx", 0, "per-request probability of an injected 502")
		pSlowBody  = flag.Float64("p-slowbody", 0, "per-request probability of a trickled response body")

		delayFor      = flag.Duration("delay-for", 100*time.Millisecond, "added latency of one delay fault")
		hangFor       = flag.Duration("hang-for", 0, "bound on hang/blackhole holds (0 holds until the client gives up)")
		slowBodyPause = flag.Duration("slowbody-pause", 20*time.Millisecond, "pause between trickled body chunks")
	)
	flag.Parse()
	if *target == "" {
		log.Fatal("-target is required")
	}

	p, err := chaos.New(chaos.Config{
		Target: *target,
		Seed:   *seed,
		Mix: chaos.Mix{
			Delay:         *pDelay,
			Hang:          *pHang,
			Reset:         *pReset,
			Blackhole:     *pBlackhole,
			Err5xx:        *pErr5xx,
			SlowBody:      *pSlowBody,
			DelayFor:      *delayFor,
			HangFor:       *hangFor,
			SlowBodyPause: *slowBodyPause,
		},
	})
	if err != nil {
		log.Fatalf("chaos: %v", err)
	}

	httpSrv := &http.Server{Addr: *addr, Handler: p.Handler()}
	go func() {
		log.Printf("chaos proxy on %s -> %s (seed=%d)", *addr, *target, *seed)
		if err := httpSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
			log.Fatalf("http: %v", err)
		}
	}()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	<-ctx.Done()
	log.Printf("shutting down")
	p.Close()
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		log.Printf("http shutdown: %v", err)
	}
}
