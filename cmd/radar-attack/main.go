// Command radar-attack runs the Progressive Bit-Flip Attack against a zoo
// model and prints the resulting vulnerable-bit profile with the paper's
// Table I/II characterization.
//
// Usage:
//
//	radar-attack [-model resnet20s|resnet18s] [-flips 10] [-seed 1] [-bit6] [-radar 0] [-workers 0]
//
// With -radar G > 0 the model is RADAR-protected (group size G) before the
// attack, and afterwards the parallel incremental scan (ScanDirty, pool
// sized by -workers, 0 = one per CPU) reports how many of the attack's
// flips the defense would catch.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"radar/internal/attack"
	"radar/internal/core"
	"radar/internal/model"
)

func main() {
	which := flag.String("model", "resnet20s", "target model: resnet20s or resnet18s")
	flips := flag.Int("flips", 10, "number of bit flips (N_BF)")
	seed := flag.Int64("seed", 1, "attack seed (selects the attack batch)")
	bit6 := flag.Bool("bit6", false, "restrict the attacker to MSB-1 (§VIII)")
	radarG := flag.Int("radar", 0, "RADAR group size for post-attack detection preview (0 = off)")
	workers := flag.Int("workers", 0, "scan worker pool size (0 = one per CPU)")
	flag.Parse()

	var spec model.Spec
	switch *which {
	case "resnet20s":
		spec = model.ResNet20sSpec()
	case "resnet18s":
		spec = model.ResNet18sSpec()
	default:
		fmt.Fprintf(os.Stderr, "unknown model %q\n", *which)
		os.Exit(2)
	}

	b := model.Load(spec)
	clean := model.Evaluate(b.Net, b.Test, 100)

	cfg := attack.DefaultConfig(*seed)
	cfg.NumFlips = *flips
	if *which == "resnet18s" {
		cfg.TopWeightsPerLayer, cfg.TrialCandidates, cfg.BatchSize = 40, 24, 64
	}
	if *bit6 {
		cfg.AllowedBits = []int{6}
	}

	var prot *core.Protector
	if *radarG > 0 {
		pcfg := core.DefaultConfig(*radarG)
		pcfg.Workers = *workers
		prot = core.Protect(b.QModel, pcfg)
	}

	t0 := time.Now()
	profile := attack.PBFA(b.QModel, b.Attack, cfg)
	elapsed := time.Since(t0)
	attacked := model.Evaluate(b.Net, b.Test, 100)

	fmt.Printf("model %s: clean %.2f%% → attacked %.2f%% (%d flips in %v)\n\n",
		spec.Name, 100*clean, 100*attacked, len(profile), elapsed.Round(time.Millisecond))
	fmt.Println("vulnerable-bit profile:")
	for i, f := range profile {
		fmt.Printf("  %2d. %-14s layer=%-32s %4d → %4d   batch loss %.3f\n",
			i+1, f.Addr, b.QModel.Layers[f.Addr.LayerIndex].Name, f.Before, f.After, f.LossAfter)
	}
	s := attack.Classify([]attack.Profile{profile})
	r := attack.ClassifyRanges([]attack.Profile{profile})
	fmt.Printf("\nbit positions: MSB(0→1)=%d MSB(1→0)=%d others=%d\n", s.MSB01, s.MSB10, s.Others)
	fmt.Printf("weight ranges: (-128,-32]=%d (-32,0]=%d (0,32)=%d [32,127)=%d\n",
		r.NegLarge, r.NegSmall, r.PosSmall, r.PosLarge)

	if prot != nil {
		// The PBFA trial loop dirtied the layers it touched; the
		// incremental scan re-checks only those.
		t1 := time.Now()
		flagged := prot.ScanDirty()
		detected := prot.CountDetected(profile.Addresses(), flagged)
		fmt.Printf("\nRADAR preview (G=%d, %d workers): incremental scan flagged %d groups in %v; %d/%d flips detected\n",
			*radarG, prot.Workers(), len(flagged), time.Since(t1).Round(time.Microsecond),
			detected, len(profile))
	}
}
