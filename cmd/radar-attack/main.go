// Command radar-attack runs the Progressive Bit-Flip Attack against a zoo
// model and prints the resulting vulnerable-bit profile with the paper's
// Table I/II characterization.
//
// Usage:
//
//	radar-attack [-model resnet20s|resnet18s] [-flips 10] [-seed 1] [-bit6] [-radar 0] [-workers 0]
//	radar-attack -adversary oblivious|scrub-timer|below-threshold|sigstore [-store ckpt.radar] [-flips 240] [-windows 12] [-full-every 4] [-scrub-ms 100] [-radar 32] [-correct] [-no-defense]
//
// With -radar G > 0 the model is RADAR-protected (group size G) before the
// attack, and afterwards the parallel incremental scan (ScanDirty, pool
// sized by -workers, 0 = one per CPU) reports how many of the attack's
// flips the defense would catch.
//
// With -adversary the command runs a defense-aware internal/adversary
// campaign instead of PBFA: the model is protected (-radar G, -correct
// selects ECC-corrected recovery over group zeroing), the campaign spends
// -flips bit flips over -windows scrub windows (full scan every
// -full-every-th window, rowhammer-priced at -scrub-ms per window; 0 =
// unpriced), and top-1 accuracy is reported clean, at the campaign horizon
// and after the defender settles. With -store the bundle's weights are
// mapped onto that checkpoint file (created from the trained zoo state
// when absent) and every repair is msync'd back to it — a campaign against
// a live weight file, not a RAM copy.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"radar/internal/adversary"
	"radar/internal/attack"
	"radar/internal/core"
	"radar/internal/model"
)

func main() {
	which := flag.String("model", "resnet20s", "target model: resnet20s or resnet18s")
	flips := flag.Int("flips", 10, "number of bit flips (N_BF; campaign budget with -adversary)")
	seed := flag.Int64("seed", 1, "attack seed (selects the attack batch / campaign plan)")
	bit6 := flag.Bool("bit6", false, "restrict the attacker to MSB-1 (§VIII)")
	radarG := flag.Int("radar", 0, "RADAR group size for post-attack detection preview (0 = off; campaign default 32)")
	workers := flag.Int("workers", 0, "scan worker pool size (0 = one per CPU)")
	adv := flag.String("adversary", "", "run a defense-aware campaign: oblivious, scrub-timer, below-threshold or sigstore")
	storePath := flag.String("store", "", "campaign: mmap the weights onto this store checkpoint and msync repairs back")
	windows := flag.Int("windows", 12, "campaign: scrub windows the budget is spread over")
	fullEvery := flag.Int("full-every", 4, "campaign: every n-th window's scrub is a full scan (others incremental)")
	scrubMs := flag.Int("scrub-ms", 100, "campaign: window length for rowhammer flip pricing (0 = unpriced)")
	correct := flag.Bool("correct", false, "campaign: ECC-corrected recovery instead of group zeroing")
	noDefense := flag.Bool("no-defense", false, "campaign: disable the defender (undefended baseline)")
	flag.Parse()

	var spec model.Spec
	switch *which {
	case "resnet20s":
		spec = model.ResNet20sSpec()
	case "resnet18s":
		spec = model.ResNet18sSpec()
	default:
		fmt.Fprintf(os.Stderr, "unknown model %q\n", *which)
		os.Exit(2)
	}

	if *adv != "" {
		g := *radarG
		if g <= 0 {
			g = 32
		}
		opt := adversary.Options{
			Flips:      *flips,
			Windows:    *windows,
			FullEvery:  *fullEvery,
			ScrubEvery: time.Duration(*scrubMs) * time.Millisecond,
			Rate:       adversary.DefaultRateModel(),
			NoDefense:  *noDefense,
			Seed:       *seed,
		}
		runCampaign(spec, *adv, *storePath, g, *workers, *correct, opt)
		return
	}

	b := model.Load(spec)
	clean := model.Evaluate(b.Net, b.Test, 100)

	cfg := attack.DefaultConfig(*seed)
	cfg.NumFlips = *flips
	if *which == "resnet18s" {
		cfg.TopWeightsPerLayer, cfg.TrialCandidates, cfg.BatchSize = 40, 24, 64
	}
	if *bit6 {
		cfg.AllowedBits = []int{6}
	}

	var prot *core.Protector
	if *radarG > 0 {
		pcfg := core.DefaultConfig(*radarG)
		pcfg.Workers = *workers
		prot = core.Protect(b.QModel, pcfg)
	}

	t0 := time.Now()
	profile := attack.PBFA(b.QModel, b.Attack, cfg)
	elapsed := time.Since(t0)
	attacked := model.Evaluate(b.Net, b.Test, 100)

	fmt.Printf("model %s: clean %.2f%% → attacked %.2f%% (%d flips in %v)\n\n",
		spec.Name, 100*clean, 100*attacked, len(profile), elapsed.Round(time.Millisecond))
	fmt.Println("vulnerable-bit profile:")
	for i, f := range profile {
		fmt.Printf("  %2d. %-14s layer=%-32s %4d → %4d   batch loss %.3f\n",
			i+1, f.Addr, b.QModel.Layers[f.Addr.LayerIndex].Name, f.Before, f.After, f.LossAfter)
	}
	s := attack.Classify([]attack.Profile{profile})
	r := attack.ClassifyRanges([]attack.Profile{profile})
	fmt.Printf("\nbit positions: MSB(0→1)=%d MSB(1→0)=%d others=%d\n", s.MSB01, s.MSB10, s.Others)
	fmt.Printf("weight ranges: (-128,-32]=%d (-32,0]=%d (0,32)=%d [32,127)=%d\n",
		r.NegLarge, r.NegSmall, r.PosSmall, r.PosLarge)

	if prot != nil {
		// The PBFA trial loop dirtied the layers it touched; the
		// incremental scan re-checks only those.
		t1 := time.Now()
		flagged := prot.ScanDirty()
		detected := prot.CountDetected(profile.Addresses(), flagged)
		fmt.Printf("\nRADAR preview (G=%d, %d workers): incremental scan flagged %d groups in %v; %d/%d flips detected\n",
			*radarG, prot.Workers(), len(flagged), time.Since(t1).Round(time.Microsecond),
			detected, len(profile))
	}
}

// runCampaign executes one defense-aware adversary campaign end to end and
// prints the engagement summary.
func runCampaign(spec model.Spec, name, storePath string, g, workers int, correct bool, opt adversary.Options) {
	atk, err := adversary.New(name)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	b := model.Load(spec)
	if storePath != "" {
		ck, err := model.MapCheckpoint(b, storePath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "map %s: %v\n", storePath, err)
			os.Exit(1)
		}
		defer func() {
			if err := ck.SyncDirty(); err != nil {
				fmt.Fprintf(os.Stderr, "sync %s: %v\n", storePath, err)
				os.Exit(1)
			}
			ck.Close()
		}()
		mode := "mmap"
		if !ck.Mapped() {
			mode = "in-RAM fallback"
		}
		fmt.Printf("store %s: %d layers, %d weight bytes (%s)\n",
			storePath, ck.NumLayers(), ck.WeightBytes(), mode)
	}
	clean := model.Evaluate(b.Net, b.Test, 100)

	cfg := core.DefaultConfig(g)
	cfg.Workers = workers
	cfg.Correct = correct
	p := core.Protect(b.QModel, cfg)

	recovery := "zeroing"
	if correct {
		recovery = "ECC-corrected"
	}
	defense := fmt.Sprintf("G=%d, %s recovery, full scan every %d of %d windows", g, recovery, opt.FullEvery, opt.Windows)
	if opt.NoDefense {
		defense = "none (undefended baseline)"
	}
	fmt.Printf("campaign %s vs %s: budget %d flips, defense %s\n", name, spec.Name, opt.Flips, defense)
	if cap := opt.CapPerWindow(); cap > 0 {
		fmt.Printf("rowhammer pricing: %.1f ms/flip → cap %d flips per %v window\n",
			1e3*opt.Rate.SecondsPerFlip(), cap, opt.ScrubEvery)
	}

	camp := adversary.NewCampaign(adversary.Target{Model: b.QModel, Prot: p}, atk, opt)
	t0 := time.Now()
	camp.Run()
	live := model.Evaluate(b.Net, b.Test, 100)
	camp.Settle()
	settled := model.Evaluate(b.Net, b.Test, 100)
	o := camp.Outcome()

	fmt.Printf("\nmounted %d weight + %d signature flips; detected %d+%d, survived %d (mean dwell %.1f windows)\n",
		o.Mounted, o.SigMounted, o.Detected, o.SigDetected, o.Survived, o.MeanDwellWindows)
	fmt.Printf("defender: %d groups flagged, %d corrected in place, %d zeroed (%d weights)\n",
		o.GroupsFlagged, o.GroupsCorrected, o.GroupsZeroed, o.WeightsZeroed)
	if o.CampaignSeconds > 0 {
		fmt.Printf("physical attack time: %.1f s at %.1f ms/flip\n", o.CampaignSeconds, 1e3*o.SecondsPerFlip)
	}
	fmt.Printf("top-1 accuracy: clean %.2f%% → horizon %.2f%% → settled %.2f%% (wall %v)\n",
		100*clean, 100*live, 100*settled, time.Since(t0).Round(time.Millisecond))
	if storePath != "" {
		fmt.Printf("msync'ing repaired sections back to %s\n", storePath)
	}
}
