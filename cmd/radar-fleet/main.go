// Command radar-fleet is the consistent-hash router in front of a set of
// radar-serve replicas. It exposes the same /v1 data plane as a single
// replica — clients cannot tell the difference — and routes each model's
// traffic to the replica that owns it on the hash ring, with automatic
// failover, health-based ejection, and a fleet admin plane.
//
// Usage:
//
//	radar-fleet -replica http://10.0.0.1:8080 -replica http://10.0.0.2:8080 \
//	            -replica http://10.0.0.3:8080 \
//	            [-addr :9090] [-vnodes 64] [-health-interval 1s]
//	            [-health-timeout 2s] [-fail-threshold 2] [-drain-wait 500ms]
//	            [-attempt-timeout 10s] [-retry-budget 3]
//	            [-backoff-base 10ms] [-backoff-max 500ms]
//	            [-max-body-bytes 8388608] [-shed-window 10s]
//	            [-shed-threshold 0.5] [-shed-min-samples 20]
//	            [-debug-addr :6061] [-log-requests]
//
// Endpoints:
//
//	POST   /v1/models/{name}/infer  routed by ring owner, failover retry
//	POST   /v1/models/{name}/jobs   routed by owner, job pinned to replica
//	GET    /v1/jobs/{id}            sticky poll on the minting replica
//	DELETE /v1/jobs/{id}            sticky cancel
//	GET    /v1/models               merged listing with per-model owners
//	GET    /v1/models/{name}        routed by owner
//	POST   /v1/admin/scrub          broadcast scrub sweep
//	POST   /v1/admin/rekey          zero-downtime rolling rekey
//	POST   /v1/admin/models/{name}  broadcast hot-add
//	DELETE /v1/admin/models/{name}  broadcast hot-remove
//	GET    /v1/fleet                replica health and ring membership
//	GET    /v1/metrics              router series + replica-labelled scrape
//	GET    /v1/debug/traces         merged per-request stage timings
//
// SIGINT/SIGTERM drains the HTTP listener, then stops the health prober.
package main

import (
	"context"
	"flag"
	"log"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"radar/internal/fleet"
	"radar/internal/obs"
	"radar/internal/serve"
)

// replicaFlag collects repeatable -replica base URLs.
type replicaFlag []string

func (r *replicaFlag) String() string { return strings.Join(*r, ",") }
func (r *replicaFlag) Set(v string) error {
	*r = append(*r, v)
	return nil
}

func main() {
	var replicas replicaFlag
	flag.Var(&replicas, "replica", "radar-serve replica base URL (e.g. http://10.0.0.1:8080); repeatable")
	var (
		addr           = flag.String("addr", ":9090", "HTTP listen address")
		vnodes         = flag.Int("vnodes", 64, "virtual nodes per replica on the hash ring")
		healthInterval = flag.Duration("health-interval", time.Second, "health probe interval")
		healthTimeout  = flag.Duration("health-timeout", 2*time.Second, "health probe timeout")
		failThreshold  = flag.Int("fail-threshold", 2, "consecutive probe failures before a replica is ejected")
		drainWait      = flag.Duration("drain-wait", 500*time.Millisecond, "settle time after draining a replica during rolling rekey")
		attemptTimeout = flag.Duration("attempt-timeout", 10*time.Second, "per-attempt deadline on proxied data-plane requests; a timeout with the client still live ejects the replica as slow and fails over (negative disables)")
		retryBudget    = flag.Int("retry-budget", 3, "failover replays allowed per request beyond the first attempt")
		backoffBase    = flag.Duration("backoff-base", 10*time.Millisecond, "full-jitter backoff base between failover attempts")
		backoffMax     = flag.Duration("backoff-max", 500*time.Millisecond, "full-jitter backoff ceiling between failover attempts")
		maxBodyBytes   = flag.Int64("max-body-bytes", 8<<20, "largest client request body buffered for failover replay; beyond it the client gets 413")
		shedWindow     = flag.Duration("shed-window", 10*time.Second, "sliding window for per-replica shed/error-rate tracking")
		shedThreshold  = flag.Float64("shed-threshold", 0.5, "bad-outcome fraction over the shed window beyond which a replica is soft-drained out of new sync traffic")
		shedMinSamples = flag.Int("shed-min-samples", 20, "attempts required in the shed window before a soft-drain verdict")
		debugAddr      = flag.String("debug-addr", "", "optional separate listen address for net/http/pprof (empty disables)")
		logReqs        = flag.Bool("log-requests", false, "log every HTTP request (id, method, path, status, duration) via slog")
	)
	flag.Parse()
	if len(replicas) == 0 {
		log.Fatal("at least one -replica is required")
	}

	f, err := fleet.New(fleet.Config{
		Replicas:       replicas,
		VNodes:         *vnodes,
		HealthInterval: *healthInterval,
		HealthTimeout:  *healthTimeout,
		FailThreshold:  *failThreshold,
		DrainWait:      *drainWait,
		AttemptTimeout: *attemptTimeout,
		RetryBudget:    *retryBudget,
		BackoffBase:    *backoffBase,
		BackoffMax:     *backoffMax,
		MaxBodyBytes:   *maxBodyBytes,
		ShedWindow:     *shedWindow,
		ShedRate:       *shedThreshold,
		ShedMinSamples: *shedMinSamples,
	})
	if err != nil {
		log.Fatalf("fleet: %v", err)
	}
	f.Start()

	var handler http.Handler = f.Handler()
	if *logReqs {
		handler = serve.LogRequests(handler, slog.Default())
	}
	if *debugAddr != "" {
		go func() {
			log.Printf("pprof on %s/debug/pprof/", *debugAddr)
			if err := http.ListenAndServe(*debugAddr, obs.PprofHandler()); err != nil && err != http.ErrServerClosed {
				log.Printf("debug listener: %v", err)
			}
		}()
	}

	httpSrv := &http.Server{Addr: *addr, Handler: handler}
	go func() {
		log.Printf("routing %d replica(s) [%s] on %s — vnodes=%d probe=%v eject-after=%d",
			len(replicas), strings.Join(replicas, ", "), *addr, *vnodes, *healthInterval, *failThreshold)
		if err := httpSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
			log.Fatalf("http: %v", err)
		}
	}()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	<-ctx.Done()
	log.Printf("shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		log.Printf("http shutdown: %v", err)
	}
	f.Stop()
}
