// Command radar-fleet is the consistent-hash router in front of a set of
// radar-serve replicas. It exposes the same /v1 data plane as a single
// replica — clients cannot tell the difference — and routes each model's
// traffic to the replica that owns it on the hash ring, with automatic
// failover, health-based ejection, and a fleet admin plane.
//
// Usage:
//
//	radar-fleet -replica http://10.0.0.1:8080 -replica http://10.0.0.2:8080 \
//	            -replica http://10.0.0.3:8080 \
//	            [-addr :9090] [-vnodes 64] [-health-interval 1s]
//	            [-health-timeout 2s] [-fail-threshold 2] [-drain-wait 500ms]
//	            [-debug-addr :6061] [-log-requests]
//
// Endpoints:
//
//	POST   /v1/models/{name}/infer  routed by ring owner, failover retry
//	POST   /v1/models/{name}/jobs   routed by owner, job pinned to replica
//	GET    /v1/jobs/{id}            sticky poll on the minting replica
//	DELETE /v1/jobs/{id}            sticky cancel
//	GET    /v1/models               merged listing with per-model owners
//	GET    /v1/models/{name}        routed by owner
//	POST   /v1/admin/scrub          broadcast scrub sweep
//	POST   /v1/admin/rekey          zero-downtime rolling rekey
//	POST   /v1/admin/models/{name}  broadcast hot-add
//	DELETE /v1/admin/models/{name}  broadcast hot-remove
//	GET    /v1/fleet                replica health and ring membership
//	GET    /v1/metrics              router series + replica-labelled scrape
//	GET    /v1/debug/traces         merged per-request stage timings
//
// SIGINT/SIGTERM drains the HTTP listener, then stops the health prober.
package main

import (
	"context"
	"flag"
	"log"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"radar/internal/fleet"
	"radar/internal/obs"
	"radar/internal/serve"
)

// replicaFlag collects repeatable -replica base URLs.
type replicaFlag []string

func (r *replicaFlag) String() string { return strings.Join(*r, ",") }
func (r *replicaFlag) Set(v string) error {
	*r = append(*r, v)
	return nil
}

func main() {
	var replicas replicaFlag
	flag.Var(&replicas, "replica", "radar-serve replica base URL (e.g. http://10.0.0.1:8080); repeatable")
	var (
		addr           = flag.String("addr", ":9090", "HTTP listen address")
		vnodes         = flag.Int("vnodes", 64, "virtual nodes per replica on the hash ring")
		healthInterval = flag.Duration("health-interval", time.Second, "health probe interval")
		healthTimeout  = flag.Duration("health-timeout", 2*time.Second, "health probe timeout")
		failThreshold  = flag.Int("fail-threshold", 2, "consecutive probe failures before a replica is ejected")
		drainWait      = flag.Duration("drain-wait", 500*time.Millisecond, "settle time after draining a replica during rolling rekey")
		debugAddr      = flag.String("debug-addr", "", "optional separate listen address for net/http/pprof (empty disables)")
		logReqs        = flag.Bool("log-requests", false, "log every HTTP request (id, method, path, status, duration) via slog")
	)
	flag.Parse()
	if len(replicas) == 0 {
		log.Fatal("at least one -replica is required")
	}

	f, err := fleet.New(fleet.Config{
		Replicas:       replicas,
		VNodes:         *vnodes,
		HealthInterval: *healthInterval,
		HealthTimeout:  *healthTimeout,
		FailThreshold:  *failThreshold,
		DrainWait:      *drainWait,
	})
	if err != nil {
		log.Fatalf("fleet: %v", err)
	}
	f.Start()

	var handler http.Handler = f.Handler()
	if *logReqs {
		handler = serve.LogRequests(handler, slog.Default())
	}
	if *debugAddr != "" {
		go func() {
			log.Printf("pprof on %s/debug/pprof/", *debugAddr)
			if err := http.ListenAndServe(*debugAddr, obs.PprofHandler()); err != nil && err != http.ErrServerClosed {
				log.Printf("debug listener: %v", err)
			}
		}()
	}

	httpSrv := &http.Server{Addr: *addr, Handler: handler}
	go func() {
		log.Printf("routing %d replica(s) [%s] on %s — vnodes=%d probe=%v eject-after=%d",
			len(replicas), strings.Join(replicas, ", "), *addr, *vnodes, *healthInterval, *failThreshold)
		if err := httpSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
			log.Fatalf("http: %v", err)
		}
	}()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	<-ctx.Done()
	log.Printf("shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		log.Printf("http shutdown: %v", err)
	}
	f.Stop()
}
