// Command radar-bench regenerates the paper's tables and figures (see
// DESIGN.md §3 for the experiment index) and prints them in the layout the
// paper uses. The -scale flag selects quick (test-sized) or full
// (EXPERIMENTS.md-sized) statistics.
//
// Usage:
//
//	radar-bench [-exp all|table1|table2|table3|table4|table5|fig2|fig4|fig5|fig6|fig7|missrate|msb1|rowhammer|ablation-*|scanscale|servescale|fleetscale|recoveryscale|bigscale] [-scale quick|full] [-json path]
//	radar-bench -gate -baseline DIR -fresh DIR [-fresh DIR ...] [-max-drop 10]
//
// The scanscale experiment sweeps the parallel scan engine's worker pool
// (1/2/4/GOMAXPROCS) over a full-scale ResNet-18 weight image and reports
// per-sweep throughput and speedup plus the single-thread old-vs-new
// checksum kernel comparison. The servescale experiment measures the
// protected inference server's requests/sec under a live bit-flip
// adversary with the scrubber and verified weight-fetch toggled. The
// fleetscale experiment boots three full services behind the radar-fleet
// consistent-hash router and measures routed throughput and availability
// through a mid-traffic replica kill and a rolling rekey. The bigscale
// experiment streams the full protect→scan→inject→recover pipeline over a
// synthetic mmap-backed store checkpoint (2 GiB at -scale full, 256 MiB at
// quick), reporting throughput, incremental-scan latency, and the peak-RSS
// to checkpoint-size ratio of the streaming reader. The recoveryscale
// experiment runs every internal/adversary campaign (oblivious,
// scrub-timer, below-threshold, sigstore) against the undefended,
// zeroing-recovery, and ECC-corrected deployments of the ResNet-20s model
// and reports detection/correction rates and top-1 accuracy-after-attack
// per cell. All five write machine-readable JSON artifacts —
// BENCH_scanscale.json, BENCH_servescale.json, BENCH_fleetscale.json,
// BENCH_bigscale.json, BENCH_recoveryscale.json — to per-experiment
// default paths, or to the -json path when set explicitly (meaningful only
// when running a single JSON-capable experiment).
//
// -gate compares the artifacts in -fresh against the committed baselines
// in -baseline and exits 1 when any tracked higher-is-better metric
// dropped more than -max-drop percent — the CI perf-regression gate.
// -fresh repeats: with several fresh directories (one per regeneration
// run) each metric is judged on its median across runs, so a single noisy
// run on a loaded CI host cannot flake the gate.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"radar/internal/exp"
)

// dirList collects a repeatable -fresh flag into a slice.
type dirList []string

func (d *dirList) String() string { return strings.Join(*d, ",") }

func (d *dirList) Set(v string) error {
	*d = append(*d, v)
	return nil
}

func main() {
	which := flag.String("exp", "all", "experiment id (see DESIGN.md per-experiment index)")
	scale := flag.String("scale", "full", "statistics scale: quick or full")
	jsonPath := flag.String("json", "", "output path for machine-readable results of JSON-capable experiments (scanscale, servescale, fleetscale); default BENCH_<exp>.json per experiment")
	gate := flag.Bool("gate", false, "perf-regression gate: compare -fresh artifacts against -baseline and exit 1 on regression")
	baselineDir := flag.String("baseline", ".", "gate: directory holding the committed baseline BENCH_*.json artifacts")
	var freshDirs dirList
	flag.Var(&freshDirs, "fresh", "gate: directory holding freshly generated BENCH_*.json artifacts (repeatable; with several, each metric is gated on its median across runs)")
	maxDrop := flag.Float64("max-drop", 10, "gate: tolerated drop in percent before a metric fails")
	flag.Parse()

	if *gate {
		if len(freshDirs) == 0 {
			fmt.Fprintln(os.Stderr, "-gate requires at least one -fresh DIR")
			os.Exit(2)
		}
		res, err := exp.GateArtifacts(*baselineDir, freshDirs, *maxDrop)
		if err != nil {
			fmt.Fprintf(os.Stderr, "gate: %v\n", err)
			os.Exit(2)
		}
		fmt.Print(res.Render())
		if res.Regressed {
			os.Exit(1)
		}
		return
	}

	var opt exp.Options
	switch *scale {
	case "quick":
		opt = exp.Quick()
	case "full":
		opt = exp.Full()
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q\n", *scale)
		os.Exit(2)
	}
	ctx := exp.NewContext(opt)

	type runner struct {
		id  string
		run func() string
	}
	var t3 *exp.TableIIIResult
	tableIII := func() exp.TableIIIResult {
		if t3 == nil {
			r := exp.TableIII(ctx)
			t3 = &r
		}
		return *t3
	}
	runners := []runner{
		{"table1", func() string { return exp.TableI(ctx).Render() }},
		{"table2", func() string { return exp.TableII(ctx).Render() }},
		{"fig2", func() string { return exp.Figure2(ctx).Render() }},
		{"fig4", func() string { return exp.Figure4(ctx).Render() }},
		{"missrate", func() string { return exp.MissRate(opt).Render() }},
		{"table3", func() string { return tableIII().Render() }},
		{"fig5", func() string { return exp.Figure5(tableIII()).Render() }},
		{"fig6", func() string { return exp.Figure6(ctx).Render() }},
		{"table4", func() string { return exp.TableIV().Render() }},
		{"table5", func() string { return exp.TableV().Render() }},
		{"fig7", func() string { return exp.Figure7(ctx).Render() }},
		{"msb1", func() string { return exp.MSB1(ctx).Render() }},
		{"rowhammer", func() string { return exp.Rowhammer(ctx).Render() }},
		{"ablation-masking", func() string { return exp.MaskingAblation(opt).Render() }},
		{"ablation-sigbits", func() string { return exp.SigBitsAblation(opt).Render() }},
		{"ablation-batch", func() string { return exp.BatchAmortization().Render() }},
		{"runtime", func() string { return exp.RuntimeDetection(ctx).Render() }},
		{"engine", func() string { return exp.EngineParity(ctx).Render() }},
		{"software", func() string { return exp.SoftwareOverhead().Render() }},
		{"scanscale", func() string {
			r := exp.ScanScaling()
			writeJSON(artifactPath(*jsonPath, "scanscale"), r.WriteJSON)
			return r.Render()
		}},
		{"servescale", func() string {
			r := exp.ServeScaling()
			writeJSON(artifactPath(*jsonPath, "servescale"), r.WriteJSON)
			return r.Render()
		}},
		{"fleetscale", func() string {
			r := exp.FleetScaling()
			writeJSON(artifactPath(*jsonPath, "fleetscale"), r.WriteJSON)
			return r.Render()
		}},
		{"recoveryscale", func() string {
			r := exp.RecoveryScale(ctx)
			writeJSON(artifactPath(*jsonPath, "recoveryscale"), r.WriteJSON)
			return r.Render()
		}},
		{"bigscale", func() string {
			size := int64(2) << 30 // full: a 2 GiB synthetic checkpoint
			if *scale == "quick" {
				size = 256 << 20 // CI-sized capped run
			}
			r := exp.BigScale(size)
			writeJSON(artifactPath(*jsonPath, "bigscale"), r.WriteJSON)
			return r.Render()
		}},
	}

	ran := 0
	for _, r := range runners {
		if *which != "all" && *which != r.id {
			continue
		}
		t0 := time.Now()
		out := r.run()
		fmt.Printf("=== %s (%v) ===\n%s\n", r.id, time.Since(t0).Round(time.Millisecond), out)
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *which)
		os.Exit(2)
	}
}

// artifactPath resolves the JSON artifact path: the -json override when
// set, otherwise the experiment's BENCH_<exp>.json default.
func artifactPath(override, expID string) string {
	if override != "" {
		return override
	}
	return "BENCH_" + expID + ".json"
}

func writeJSON(path string, write func(string) error) {
	if err := write(path); err != nil {
		fmt.Fprintf(os.Stderr, "write %s: %v\n", path, err)
	} else {
		fmt.Printf("wrote %s\n", path)
	}
}
