// Command radar-serve boots the protected inference server: an int8
// engine compiled from a zoo model, wrapped in RADAR protection, a request
// batcher, a background scrubber and (by default) the verified weight-
// fetch path, all behind a small HTTP API.
//
// Usage:
//
//	radar-serve -model tiny|resnet20s|resnet18s [-addr :8080] [-g 8]
//	            [-batch 8] [-batch-latency 2ms] [-workers N] [-queue 256]
//	            [-verify] [-scrub 100ms] [-scrub-full-every 8]
//	            [-scan-workers N]
//
// Endpoints:
//
//	POST /infer   {"input":[...]} or {"inputs":[[...],...]} (+optional "shape":[C,H,W])
//	GET  /healthz liveness, model identity, protection settings
//	GET  /metrics requests, batches, scrub cycles, verify cache stats,
//	              groups flagged/zeroed, p50/p99 latency — as JSON
//
// SIGINT/SIGTERM triggers a graceful shutdown: the HTTP listener drains,
// queued requests are answered, then the scrubber stops.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"radar/internal/core"
	"radar/internal/model"
	"radar/internal/qinfer"
	"radar/internal/serve"
)

func main() {
	var (
		name      = flag.String("model", "resnet20s", "zoo model: tiny, resnet20s or resnet18s (checkpoints load from testdata/models)")
		addr      = flag.String("addr", ":8080", "HTTP listen address")
		g         = flag.Int("g", 8, "RADAR group size (paper: 8 for ResNet-20, 512 for ResNet-18)")
		batch     = flag.Int("batch", 8, "max requests per inference batch")
		batchLat  = flag.Duration("batch-latency", 2*time.Millisecond, "max time a request waits for its batch to fill")
		workers   = flag.Int("workers", 0, "inference workers (0 = one per CPU)")
		queue     = flag.Int("queue", 256, "pending-request queue depth")
		verify    = flag.Bool("verify", true, "verify each layer's signatures at weight-fetch time (embedded detection)")
		scrub     = flag.Duration("scrub", 100*time.Millisecond, "background scrub interval (0 disables)")
		scrubFull = flag.Int("scrub-full-every", 8, "every Nth scrub cycle is a full scan")
		scanWk    = flag.Int("scan-workers", 0, "scan engine worker pool (0 = one per CPU)")
	)
	flag.Parse()

	var spec model.Spec
	switch *name {
	case "tiny":
		spec = model.TinySpec()
	case "resnet20s":
		spec = model.ResNet20sSpec()
	case "resnet18s":
		spec = model.ResNet18sSpec()
	default:
		fmt.Fprintf(os.Stderr, "unknown model %q\n", *name)
		os.Exit(2)
	}

	log.Printf("loading %s (training on first use; cached under testdata/models)", spec.Name)
	bundle := model.Load(spec)
	calib, _ := bundle.Attack.Batch(0, 64)
	eng, err := qinfer.Compile(bundle.Net, bundle.QModel, calib)
	if err != nil {
		log.Fatalf("compile int8 engine: %v", err)
	}

	pcfg := core.DefaultConfig(*g)
	pcfg.Workers = *scanWk
	prot := core.Protect(bundle.QModel, pcfg)

	cfg := serve.Config{
		MaxBatch:       *batch,
		MaxLatency:     *batchLat,
		Workers:        *workers,
		QueueDepth:     *queue,
		VerifiedFetch:  *verify,
		ScrubInterval:  *scrub,
		ScrubFullEvery: *scrubFull,
		InputShape:     []int{spec.Data.Channels, spec.Data.Size, spec.Data.Size},
	}
	srv := serve.New(eng, prot, cfg)
	srv.Start()

	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}
	go func() {
		log.Printf("serving %s on %s — %d layers, %d groups (G=%d), clean accuracy %s, verify=%v scrub=%v",
			spec.Name, *addr, len(bundle.QModel.Layers), prot.NumGroups(), *g,
			bundle.MustClean(), *verify, *scrub)
		if err := httpSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
			log.Fatalf("http: %v", err)
		}
	}()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	<-ctx.Done()
	log.Printf("shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		log.Printf("http shutdown: %v", err)
	}
	srv.Stop()
	snap := srv.Snapshot()
	log.Printf("served %d requests in %d batches; scrub cycles %d; groups flagged %d, recovered %d",
		snap.Requests, snap.Batches, snap.ScrubCycles, snap.GroupsFlagged, snap.GroupsRecovered)
}
